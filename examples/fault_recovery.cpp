// Fault recovery time series: what an outage looks like to an anycast
// service, minute by minute.
//
// Runs the paper model with one scheduled backbone outage, attaches a
// TimeSeriesProbe to the simulation kernel, and prints an ASCII strip chart
// of active flows and mean link utilization around the failure/repair —
// the view an operator's dashboard would show. Also demonstrates the CSV
// trace hook for offline analysis.
//
//   $ ./fault_recovery --fail-at=3000 --repair-at=4500
#include <iostream>

#include "src/sim/experiment.h"
#include "src/sim/faults.h"
#include "src/sim/timeseries.h"
#include "src/util/cli.h"
#include "src/util/strings.h"

namespace {

using namespace anyqos;

void strip_chart(const sim::TimeSeries& series, double fail_at, double repair_at) {
  double peak = 1.0;
  for (const double v : series.values) {
    peak = std::max(peak, v);
  }
  constexpr int kWidth = 60;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const int bar = static_cast<int>(series.values[i] / peak * kWidth);
    std::string line(static_cast<std::size_t>(bar), '#');
    const double t = series.times[i];
    const char* marker = "";
    if (t >= fail_at && t < fail_at + 120.0) {
      marker = "  <- LINK DOWN";
    } else if (t >= repair_at && t < repair_at + 120.0) {
      marker = "  <- REPAIRED";
    }
    std::cout << util::format_fixed(t, 0) << "s\t" << line
              << " " << util::format_fixed(series.values[i], 0) << marker << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags("fault_recovery", "Time series of an outage on the paper model");
  flags.add_double("lambda", 25.0, "arrival rate, requests/s");
  flags.add_double("fail-at", 3'000.0, "outage start, simulated seconds");
  flags.add_double("repair-at", 4'500.0, "outage end, simulated seconds");
  flags.add_double("horizon", 7'000.0, "total simulated seconds");
  flags.add_double("sample", 120.0, "sampling period, seconds");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }
  const double fail_at = flags.get_double("fail-at");
  const double repair_at = flags.get_double("repair-at");

  const sim::ExperimentModel model = sim::paper_model();
  sim::SimulationConfig config = model.base_config(flags.get_double("lambda"));
  config.algorithm = core::SelectionAlgorithm::kDistanceHistory;
  config.max_tries = 2;
  config.warmup_s = 1'000.0;
  config.measure_s = flags.get_double("horizon") - config.warmup_s;
  config.seed = 5;
  // Kill the busiest central link (CHI-DCA in the MCI-like map).
  config.faults.push_back(sim::single_fault(8, 12, fail_at, repair_at));

  sim::Simulation simulation(model.topology, config);
  sim::TimeSeriesProbe probe(simulation.simulator(), 0.0, flags.get_double("sample"));
  probe.add_gauge("active_flows",
                  [&] { return static_cast<double>(simulation.active_flows()); });
  probe.add_gauge("mean_utilization", [&] {
    double total = 0.0;
    for (net::LinkId id = 0; id < model.topology.link_count(); ++id) {
      total += simulation.ledger().utilization(id);
    }
    return 100.0 * total / static_cast<double>(model.topology.link_count());
  });
  probe.arm();

  const sim::SimulationResult result = simulation.run();
  probe.disarm();

  std::cout << "Outage of link CHI-DCA from t=" << fail_at << "s to t=" << repair_at
            << "s under <WD/D+H,2> at lambda=" << flags.get_double("lambda") << "/s\n\n"
            << "Active flows over time:\n";
  strip_chart(probe.series("active_flows"), fail_at, repair_at);
  std::cout << "\nMean link utilization (%) over time:\n";
  strip_chart(probe.series("mean_utilization"), fail_at, repair_at);
  std::cout << "\nRun summary: AP " << util::format_fixed(result.admission_probability, 4)
            << ", dropped by the outage " << result.dropped << " flows, avg tries "
            << util::format_fixed(result.average_attempts, 3) << "\n"
            << "\nThe dip at the failure is flows dropped mid-life; the recovery is\n"
            << "retrial control steering new flows to members the outage left\n"
            << "reachable. Repairing restores the original operating point.\n";
  return 0;
}
