// dacsim — the general-purpose simulation front end (ns-style tooling).
//
// Runs one fully flag-configured DAC simulation: any built-in or file-loaded
// topology, any group/source placement, any <A,R> system or baseline, with
// optional fault injection and a CSV event trace. Prints the aggregate
// results the paper reports plus this library's extra diagnostics.
//
//   $ ./dacsim --algorithm=WD/D+H --retries=2 --lambda=35
//   $ ./dacsim --topology=grid:4x5 --group=0,7,19 --sources=2,9,12 --lambda=8
//   $ ./dacsim --topology-file=mynet.topo --gdi --trace=/tmp/events.csv
//   $ ./dacsim --metrics-out=run.prom --spans-out=spans.jsonl --profile
//   $ ./dacsim --timeline-out=tl.csv --flight-recorder=flight.jsonl --fault-rate=1e-4
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/audit/auditor.h"
#include "src/control/directive.h"
#include "src/control/governor.h"
#include "src/net/reconvergence.h"
#include "src/net/topology_io.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/kernel_stats.h"
#include "src/obs/ops_server.h"
#include "src/obs/profiler.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/obs/timeline.h"
#include "src/sim/metrics_export.h"
#include "src/sim/experiment.h"
#include "src/sim/faults.h"
#include "src/sim/scenario.h"
#include "src/util/cli.h"
#include "src/util/require.h"
#include "src/util/strings.h"
#include "src/util/table.h"

namespace {

using namespace anyqos;

std::vector<net::NodeId> parse_nodes(const std::string& text, const char* what) {
  std::vector<net::NodeId> nodes;
  for (const std::string& field : util::split(text, ',')) {
    const auto value = util::parse_unsigned(field);
    util::require(value.has_value(), std::string(what) + " must be a comma list of node ids");
    nodes.push_back(static_cast<net::NodeId>(*value));
  }
  return nodes;
}

net::Topology build_topology(const std::string& spec, const std::string& file) {
  if (!file.empty()) {
    return net::load_topology(file);
  }
  if (spec == "mci") {
    return net::topologies::mci_backbone();
  }
  if (util::starts_with(spec, "line:")) {
    return net::topologies::line(util::parse_unsigned(spec.substr(5)).value());
  }
  if (util::starts_with(spec, "ring:")) {
    return net::topologies::ring(util::parse_unsigned(spec.substr(5)).value());
  }
  if (util::starts_with(spec, "star:")) {
    return net::topologies::star(util::parse_unsigned(spec.substr(5)).value());
  }
  if (util::starts_with(spec, "grid:")) {
    const auto dims = util::split(spec.substr(5), 'x');
    util::require(dims.size() == 2, "grid spec is grid:<rows>x<cols>");
    return net::topologies::grid(util::parse_unsigned(dims[0]).value(),
                                 util::parse_unsigned(dims[1]).value());
  }
  if (util::starts_with(spec, "waxman:")) {
    const auto parts = util::split(spec.substr(7), 'x');
    util::require(parts.size() == 2, "waxman spec is waxman:<n>x<seed>");
    return net::topologies::waxman(util::parse_unsigned(parts[0]).value(), 0.6, 0.5,
                                   util::parse_unsigned(parts[1]).value());
  }
  util::require(false, "unknown topology spec '" + spec +
                           "' (mci, line:N, ring:N, star:N, grid:RxC, waxman:NxSEED)");
  util::unreachable("build_topology");
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags("dacsim", "Configurable DAC anycast-flow simulation");
  flags.add_string("scenario", "",
                   "run this scenario file (sim/scenario.h); replaces the workload/system/"
                   "fault flags, observability flags still apply");
  flags.add_string("topology", "mci", "mci | line:N | ring:N | star:N | grid:RxC | waxman:NxSEED");
  flags.add_string("topology-file", "", "load a topology file instead (see topology_io.h)");
  flags.add_string("group", "0,4,8,12,16", "anycast member routers");
  flags.add_string("sources", "", "source routers (default: the paper's odd ids)");
  flags.add_string("algorithm", "ED", "ED | WD/D+H | WD/D+B | SP");
  flags.add_bool("gdi", false, "run the GDI oracle baseline instead of DAC");
  flags.add_unsigned("retries", 2, "R, the maximum destinations tried");
  flags.add_double("alpha", 0.5, "WD/D+H history discount");
  flags.add_double("lambda", 20.0, "total arrival rate, requests/s");
  flags.add_double("holding", 180.0, "mean flow lifetime, seconds");
  flags.add_double("bandwidth", 64'000.0, "per-flow bandwidth, bit/s");
  flags.add_double("share", 0.2, "fraction of link capacity available to anycast");
  flags.add_double("warmup", 2'000.0, "warm-up seconds discarded");
  flags.add_double("measure", 10'000.0, "measured seconds");
  flags.add_unsigned("seed", 1, "master RNG seed");
  flags.add_double("fault-rate", 0.0, "per-link failures/s (0 = no faults)");
  flags.add_double("fault-repair", 300.0, "mean outage duration, seconds");
  flags.add_double("node-mtbf", 0.0, "mean seconds between router crashes (0 = no crashes)");
  flags.add_double("node-mttr", 600.0, "mean router recovery time, seconds");
  flags.add_duration("reconverge-delay", 0.0,
                     "routing reconvergence lag after a topology change (0 = instant)");
  flags.add_bool("path-repair", false,
                 "re-signal broken flows over post-reconvergence routes (make-before-break)");
  flags.add_bool("resilient", false, "use the resilient signaling plane even at zero loss");
  flags.add_probability("loss", 0.0, "control-message loss probability (implies --resilient)");
  flags.add_duration("hop-delay", 0.0, "injected control-plane delay per hop, seconds");
  flags.add_duration("retransmit-timeout", 1.0, "wait before the first PATH retransmit, seconds");
  flags.add_unsigned("max-retransmits", 3, "PATH re-sends before giving up");
  flags.add_duration("orphan-hold", 30.0, "soft-state hold before orphan reclaim, seconds");
  flags.add_bool("adaptive", false, "AIMD-adapt the retrial bound from windowed feedback");
  flags.add_bool("breaker", false, "per-member circuit breakers (mask failing members)");
  flags.add_double("shed-budget", 0.0, "PATH-message budget/s; exhausted -> fast-reject (0 = off)");
  flags.add_double("shed-burst", 0.0, "shed bucket depth, messages (0 = 2 x budget)");
  flags.add_double("governor-window", 50.0, "feedback window for the overload governor, seconds");
  flags.add_unsigned("min-retries", 3, "floor the adaptive bound may tighten to");
  flags.add_unsigned("breaker-threshold", 5, "consecutive failures that trip a member breaker");
  flags.add_duration("breaker-cooldown", 60.0, "seconds a tripped breaker stays open");
  flags.add_double("churn-rate", 0.0, "per-member outages/s (0 = no churn)");
  flags.add_duration("churn-downtime", 300.0, "mean member outage duration, seconds");
  flags.add_bool("failover", true, "re-admit flows displaced by member churn");
  flags.add_bool("drain", false, "drain to quiescence after the measurement window");
  flags.add_unsigned("drain-max-events", 0,
                     "drain watchdog: abort the drain after this many events (0 = uncapped)");
  flags.add_duration("drain-max-sim", 0.0,
                     "drain watchdog: abort the drain this many sim-seconds past the horizon "
                     "(0 = uncapped)");
  flags.add_string("trace", "", "write a CSV event trace to this file");
  flags.add_bool("audit", true, "attach the runtime invariant auditor");
  flags.add_double("audit-interval", 100.0, "seconds between audit checkpoints");
  flags.add_string("metrics-out", "",
                   "write run metrics here (.prom = Prometheus text, else JSONL)");
  flags.add_string("spans-out", "", "write admission-decision spans here (JSONL)");
  flags.add_string("timeline-out", "",
                   "write the windowed telemetry timeline here (.csv = wide CSV, else JSONL)");
  flags.add_double("timeline-interval", 50.0, "simulated seconds between timeline samples");
  flags.add_string("flight-recorder", "",
                   "dump fault-triggered flight snapshots to this file (JSONL)");
  flags.add_string("kernel-stats-out", "",
                   "write per-category kernel event telemetry here (JSONL)");
  flags.add_unsigned("flight-depth", 256, "flight-recorder ring capacity, entries");
  flags.add_bool("profile", false, "print engine profiling summary after the run");
  flags.add_string("profile-out", "", "write the profiling summary + samples as JSON");
  flags.add_double("profile-interval", 50.0, "sim seconds between profiler checkpoints");
  flags.add_string("ops-port", "", "serve the live ops plane on this TCP port (0 = ephemeral)");
  flags.add_string("ops-log", "", "append applied control directives here (JSONL)");
  flags.add_string("ops-replay", "", "re-apply a recorded ops log (serverless re-run)");
  flags.add_double("ops-interval", 50.0, "simulated seconds between ops polls");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }

  // --scenario replaces the whole workload/system/fault surface with one
  // serialized run description; the flag-driven path below stays the
  // ns-style front end. Either way the rest of main sees one topology and
  // one config (references into whichever source was chosen).
  std::unique_ptr<sim::ScenarioRun> scenario_run;
  net::Topology flag_topology;
  sim::SimulationConfig flag_config;
  std::unique_ptr<net::ReconvergencePolicy> reconvergence;
  std::unique_ptr<control::OverloadGovernor> governor;
  if (!flags.get_string("scenario").empty()) {
    std::ifstream scenario_file(flags.get_string("scenario"));
    util::require(scenario_file.good(), "cannot open scenario file");
    std::ostringstream scenario_text;
    scenario_text << scenario_file.rdbuf();
    scenario_run = sim::make_scenario_run(sim::load_scenario(scenario_text.str()));
  } else {
    flag_topology = build_topology(flags.get_string("topology"), flags.get_string("topology-file"));
  }
  const net::Topology& topology = scenario_run != nullptr ? scenario_run->topology : flag_topology;
  sim::SimulationConfig& config = scenario_run != nullptr ? scenario_run->config : flag_config;
  if (scenario_run == nullptr) {
    config.traffic.arrival_rate = flags.get_double("lambda");
    config.traffic.mean_holding_s = flags.get_double("holding");
    config.traffic.flow_bandwidth_bps = flags.get_double("bandwidth");
    if (flags.get_string("sources").empty()) {
      for (net::NodeId id = 1; id < topology.router_count(); id += 2) {
        config.traffic.sources.push_back(id);
      }
    } else {
      config.traffic.sources = parse_nodes(flags.get_string("sources"), "--sources");
    }
    config.group_members = parse_nodes(flags.get_string("group"), "--group");
    config.anycast_share = flags.get_double("share");
    config.use_gdi = flags.get_bool("gdi");
    config.algorithm = core::parse_algorithm(flags.get_string("algorithm"));
    config.max_tries = flags.get_unsigned("retries");
    config.alpha = flags.get_double("alpha");
    config.warmup_s = flags.get_double("warmup");
    config.measure_s = flags.get_double("measure");
    config.seed = flags.get_unsigned("seed");
    // All three random fault axes come from the one shared scenario builder
    // (axis streams at seed+1..+3), the same draws a scenario file with the
    // equivalent `axes` block produces.
    sim::FaultAxes axes;
    axes.link_rate = flags.get_double("fault-rate");
    axes.link_mean_repair_s = flags.get_double("fault-repair");
    axes.churn_rate = flags.get_double("churn-rate");
    axes.churn_mean_down_s = flags.get_double("churn-downtime");
    if (flags.get_double("node-mtbf") > 0.0) {
      util::require(!config.use_gdi, "node faults require a DAC run (not --gdi)");
      axes.node_rate = 1.0 / flags.get_double("node-mtbf");
      axes.node_mean_repair_s = flags.get_double("node-mttr");
    }
    sim::ScenarioSchedules schedules = sim::scenario_schedules(
        topology, config.group_members.size(), config.warmup_s + config.measure_s, axes,
        config.seed);
    config.faults = std::move(schedules.link_faults);
    config.churn = std::move(schedules.churn);
    config.node_faults = std::move(schedules.node_faults);
    if (flags.get_bool("resilient") || flags.get_double("loss") > 0.0 ||
        flags.get_double("hop-delay") > 0.0) {
      signaling::ResilienceOptions resilience;
      resilience.faults.loss_probability = flags.get_double("loss");
      resilience.faults.hop_delay_s = flags.get_double("hop-delay");
      resilience.retransmit_timeout_s = flags.get_double("retransmit-timeout");
      resilience.max_retransmits = flags.get_unsigned("max-retransmits");
      resilience.orphan_hold_s = flags.get_double("orphan-hold");
      config.resilience = resilience;
    }
    config.failover_readmit = flags.get_bool("failover");
    config.drain_to_quiescence = flags.get_bool("drain");
    config.drain_max_events = flags.get_unsigned("drain-max-events");
    config.drain_max_sim_s = flags.get_double("drain-max-sim");
    // Any engaged failure-plane axis brings a reconvergence policy with it:
    // routes must eventually route around a dead router, and path repair
    // re-signals over the post-convergence table by definition.
    if (!config.node_faults.empty() || flags.get_bool("path-repair") ||
        flags.get_double("reconverge-delay") > 0.0) {
      util::require(!config.use_gdi, "reconvergence/path repair require a DAC run (not --gdi)");
      if (flags.get_double("reconverge-delay") > 0.0) {
        reconvergence =
            std::make_unique<net::FixedReconvergence>(flags.get_double("reconverge-delay"));
      } else {
        reconvergence = std::make_unique<net::InstantReconvergence>();
      }
      config.reconvergence = reconvergence.get();
      config.path_repair = flags.get_bool("path-repair");
    }
  }
  net::ReconvergencePolicy* reconvergence_in_use =
      scenario_run != nullptr ? scenario_run->reconvergence.get() : reconvergence.get();

  const std::string ops_port = flags.get_string("ops-port");
  const std::string ops_replay_path = flags.get_string("ops-replay");
  util::require(ops_port.empty() || ops_replay_path.empty(),
                "--ops-port and --ops-replay are mutually exclusive (a replay is serverless)");
  util::require(scenario_run == nullptr || ops_replay_path.empty(),
                "--ops-replay conflicts with --scenario (the scenario carries its own ops)");
  const bool ops_plane =
      !ops_port.empty() || !ops_replay_path.empty() || !flags.get_string("ops-log").empty();
  if (scenario_run != nullptr && ops_plane) {
    util::require(scenario_run->governor != nullptr,
                  "the ops plane on a scenario run needs the scenario's governor block");
  }

  const bool governor_flags = flags.get_bool("adaptive") || flags.get_bool("breaker") ||
                              flags.get_double("shed-budget") > 0.0;
  if (scenario_run == nullptr && (governor_flags || ops_plane)) {
    util::require(!config.use_gdi, "the overload governor requires a DAC run (not --gdi)");
    control::GovernorOptions governor_options;
    governor_options.window_s = flags.get_double("governor-window");
    // The ops plane steers through the governor, so an ops-enabled run gets
    // one even without governor flags — then with both mechanisms engaged.
    governor_options.adaptive_retrial = governor_flags ? flags.get_bool("adaptive") : true;
    governor_options.min_tries = flags.get_unsigned("min-retries");
    governor_options.member_breakers = governor_flags ? flags.get_bool("breaker") : true;
    governor_options.breaker.failure_threshold = flags.get_unsigned("breaker-threshold");
    governor_options.breaker.cooldown_s = flags.get_double("breaker-cooldown");
    governor_options.shed_budget_msgs_per_s = flags.get_double("shed-budget");
    governor_options.shed_burst_msgs = flags.get_double("shed-burst");
    governor = std::make_unique<control::OverloadGovernor>(governor_options);
    config.governor = governor.get();
  }
  control::OverloadGovernor* governor_in_use =
      scenario_run != nullptr ? scenario_run->governor.get() : governor.get();

  // --- Live ops plane (DESIGN.md §13) ---
  // The mailbox outlives the server: the accept thread's control handler
  // posts into it, so it must be destroyed after the server joins.
  control::DirectiveMailbox ops_mailbox;
  std::ofstream ops_log_file;
  std::unique_ptr<control::OpsLogWriter> ops_log;
  std::unique_ptr<obs::OpsServer> ops_server;
  if (!flags.get_string("ops-log").empty()) {
    ops_log_file.open(flags.get_string("ops-log"));
    util::require(ops_log_file.good(), "cannot open ops log file");
    ops_log = std::make_unique<control::OpsLogWriter>(ops_log_file);
    config.ops_log = ops_log.get();
  }
  if (!ops_replay_path.empty()) {
    std::ifstream replay_file(ops_replay_path);
    util::require(replay_file.good(), "cannot open ops replay file");
    config.ops_replay = control::load_ops_log(replay_file);
  }
  if (!ops_port.empty()) {
    const auto port = util::parse_unsigned(ops_port);
    util::require(port.has_value() && *port <= 65'535,
                  "--ops-port must be a TCP port number (0 = ephemeral)");
    obs::OpsServerOptions server_options;
    server_options.port = static_cast<std::uint16_t>(*port);
    ops_server = std::make_unique<obs::OpsServer>(server_options);
    ops_server->set_control_handler(
        [&ops_mailbox](const std::string& knob_name, const std::string& body) {
          obs::ControlOutcome outcome;
          const std::optional<control::Knob> knob = control::parse_knob(knob_name);
          if (!knob.has_value()) {
            outcome.status = 404;
            outcome.body = "{\"error\":\"unknown knob '" + util::json_escape(knob_name) +
                           "'\"}\n";
            return outcome;
          }
          const std::optional<double> value = util::parse_double(util::trim(body));
          if (!value.has_value()) {
            outcome.status = 422;
            outcome.body = "{\"error\":\"body must be a single number\"}\n";
            return outcome;
          }
          if (const auto error = control::validate_directive(*knob, *value)) {
            outcome.status = 422;
            outcome.body = "{\"error\":\"" + util::json_escape(*error) + "\"}\n";
            return outcome;
          }
          ops_mailbox.post({*knob, *value});
          outcome.body = "{\"queued\":{\"knob\":\"" + control::to_string(*knob) +
                         "\",\"value\":" + std::string(util::trim(body)) + "}}\n";
          return outcome;
        });
    ops_server->start();
    config.ops_server = ops_server.get();
    config.ops_mailbox = &ops_mailbox;
    // Flushed eagerly: scripts watching a redirected stdout need the port
    // (ephemeral with --ops-port=0) before the run finishes.
    std::cout << "ops server        http://127.0.0.1:" << ops_server->port()
              << "  (GET /metrics /healthz /status, POST /control/<knob>)" << std::endl;
  }
  if (ops_plane) {
    config.ops_interval_s = flags.get_double("ops-interval");
  }

  std::ofstream trace_file;
  std::unique_ptr<sim::CsvTraceSink> trace;
  if (!flags.get_string("trace").empty()) {
    trace_file.open(flags.get_string("trace"));
    util::require(trace_file.good(), "cannot open trace file");
    trace = std::make_unique<sim::CsvTraceSink>(trace_file);
    config.trace = trace.get();
  }

  std::ofstream spans_file;
  std::unique_ptr<obs::JsonlSpanSink> span_sink;
  obs::DecisionTracer tracer;
  if (!flags.get_string("spans-out").empty()) {
    util::require(!config.use_gdi, "--spans-out requires a DAC run (not --gdi)");
    spans_file.open(flags.get_string("spans-out"));
    util::require(spans_file.good(), "cannot open spans file");
    span_sink = std::make_unique<obs::JsonlSpanSink>(spans_file);
    tracer.set_sink(span_sink.get());
    config.tracer = &tracer;
  }

  std::unique_ptr<obs::KernelStats> kernel_stats;
  if (!flags.get_string("kernel-stats-out").empty()) {
    kernel_stats = std::make_unique<obs::KernelStats>();
    config.kernel_stats = kernel_stats.get();
  }

  std::unique_ptr<obs::Timeline> timeline;
  if (!flags.get_string("timeline-out").empty()) {
    obs::TimelineOptions timeline_options;
    timeline_options.interval_s = flags.get_double("timeline-interval");
    timeline = std::make_unique<obs::Timeline>(timeline_options);
    config.timeline = timeline.get();
  }

  std::ofstream flight_file;
  std::unique_ptr<obs::FlightRecorder> recorder;
  if (!flags.get_string("flight-recorder").empty()) {
    obs::FlightRecorderOptions flight_options;
    flight_options.depth = flags.get_unsigned("flight-depth");
    recorder = std::make_unique<obs::FlightRecorder>(flight_options);
    flight_file.open(flags.get_string("flight-recorder"));
    util::require(flight_file.good(), "cannot open flight-recorder file");
    recorder->set_output(&flight_file);
    config.flight_recorder = recorder.get();
    if (!config.use_gdi) {
      // Decision spans land in the ring; when --spans-out is also set the
      // ring tees every span on to the JSONL file, so both artifacts come
      // from the one tracer.
      recorder->set_forward(span_sink.get());  // nullptr detaches: ring only
      tracer.set_sink(&recorder->span_sink());
      config.tracer = &tracer;
    }
  }

  obs::EngineProfiler profiler(flags.get_double("profile-interval"));
  const bool profiling = flags.get_bool("profile") || !flags.get_string("profile-out").empty();
  if (profiling) {
    config.profiler = &profiler;
  }

  sim::Simulation simulation(topology, config);
  // The auditor escalates the first invariant violation as InvariantError,
  // so a corrupted run aborts loudly instead of printing plausible numbers.
  std::unique_ptr<audit::InvariantAuditor> auditor;
  if (flags.get_bool("audit")) {
    audit::AuditorOptions audit_options;
    audit_options.checkpoint_interval_s = flags.get_double("audit-interval");
    auditor = std::make_unique<audit::InvariantAuditor>(audit_options);
    auditor->attach(simulation);
    if (recorder != nullptr) {
      // A violation dumps the causal window before throw_on_violation aborts.
      auditor->set_violation_hook([&recorder](const audit::Violation& violation) {
        recorder->trigger(violation.sim_time, "audit " + audit::to_string(violation.check));
      });
    }
  }
  const sim::SimulationResult result = simulation.run();
  if (ops_server != nullptr) {
    ops_server->stop();  // free the port before summaries; documents stay published
  }

  std::cout << "system            " << result.system_label << "\n"
            << "topology          " << topology.router_count() << " routers, "
            << topology.duplex_link_count() << " duplex links\n"
            << "offered           " << result.offered << " requests (lambda "
            << config.traffic.arrival_rate << "/s over " << config.measure_s << " s)\n"
            << "admitted          " << result.admitted << "\n"
            << "admission prob    " << util::format_fixed(result.admission_probability, 6)
            << "  (95% CI ±" << util::format_fixed(result.admission_ci.half_width, 6) << ")\n"
            << "avg tries         " << util::format_fixed(result.average_attempts, 4) << "\n"
            << "msgs/request      " << util::format_fixed(result.average_messages, 2) << "\n"
            << "avg active flows  " << util::format_fixed(result.average_active_flows, 1) << "\n"
            << "link utilization  mean " << util::format_fixed(result.mean_link_utilization, 4)
            << ", max " << util::format_fixed(result.max_link_utilization, 4) << "\n"
            << "dropped flows     " << result.dropped << " (faults " << result.dropped_by_fault
            << ", churn " << result.dropped_by_churn << ")\n";
  if (simulation.drain_watchdog().tripped) {
    const sim::DrainWatchdogReport& watchdog = simulation.drain_watchdog();
    std::cout << "drain watchdog    TRIPPED (" << watchdog.reason << "): "
              << watchdog.pending_events << " events and " << watchdog.active_flows
              << " flows still pending at t=" << util::format_fixed(watchdog.sim_time_s, 1)
              << " after " << watchdog.drained_events << " drained events\n";
  }
  if (!config.churn.empty()) {
    std::cout << "churn events      " << config.churn.size() << " outages, failover "
              << result.failover_admitted << "/" << result.failover_attempts
              << " re-admitted\n";
  }
  if (reconvergence_in_use != nullptr) {
    std::cout << "failure plane     " << result.node_outages << " node outages, "
              << result.reconvergences << " reconvergences (" << reconvergence_in_use->name()
              << " policy)\n";
    if (config.path_repair) {
      std::cout << "path repair       " << result.repaired << " repaired, "
                << result.unrepairable << " unrepairable, " << simulation.pending_repairs()
                << " pending at end\n";
    }
  }
  if (config.resilience.has_value()) {
    std::cout << "control plane     " << result.resilience.retransmits << " retransmits, "
              << result.resilience.give_ups << " give-ups, "
              << result.resilience.messages_lost << " lost, "
              << result.resilience.orphans_reclaimed << " orphans reclaimed ("
              << util::format_fixed(result.resilience.orphaned_bandwidth_reclaimed_bps / 1e6, 2)
              << " Mbit/s)\n";
  }
  if (governor_in_use != nullptr) {
    const control::GovernorStats& gov = governor_in_use->stats();
    std::cout << "overload governor R " << governor_in_use->effective_max_tries() << "/"
              << governor_in_use->max_tries_ceiling() << " effective/ceiling, " << gov.windows
              << " windows (" << gov.tighten_steps << " tightened, " << gov.relax_steps
              << " relaxed)\n";
    if (governor_in_use->options().member_breakers) {
      std::cout << "member breakers   " << gov.breaker_trips << " trips, "
                << gov.breaker_probes << " probes, " << gov.breaker_closes << " closes, "
                << governor_in_use->open_breakers() << " open at end\n";
    }
    if (governor_in_use->options().shed_budget_msgs_per_s > 0.0) {
      std::cout << "load shedding     " << result.shed
                << " requests fast-rejected (measured window; lifetime " << gov.shed << ")\n";
    }
  }
  if (ops_server != nullptr) {
    std::cout << "ops server        " << ops_server->requests_served() << " requests served, "
              << simulation.ops_directives_applied() << " directives applied\n";
  }
  if (!ops_replay_path.empty()) {
    std::cout << "ops replay        " << simulation.ops_directives_applied() << "/"
              << config.ops_replay.size() << " directives re-applied from " << ops_replay_path
              << "\n";
  }
  if (ops_log != nullptr) {
    std::cout << "ops log           " << ops_log->entries() << " entries -> "
              << flags.get_string("ops-log") << "\n";
  }
  if (auditor != nullptr) {
    std::cout << "audit violations  " << auditor->log().size()
              << " (ledger conservation/pairing, weight norm, retrial, checkpoints every "
              << util::format_fixed(flags.get_double("audit-interval"), 0) << " s)\n";
  }

  util::TablePrinter per_dest({"member router", "admissions"});
  for (std::size_t i = 0; i < result.per_destination_admissions.size(); ++i) {
    per_dest.add_row({topology.router_name(config.group_members[i]),
                      std::to_string(result.per_destination_admissions[i])});
  }
  std::cout << "\n" << per_dest.to_text();

  util::TablePrinter msg({"message kind", "link traversals"});
  using signaling::MessageKind;
  for (const MessageKind kind :
       {MessageKind::kPath, MessageKind::kResv, MessageKind::kPathErr, MessageKind::kTear,
        MessageKind::kProbe, MessageKind::kProbeReply}) {
    msg.add_row({signaling::to_string(kind), std::to_string(result.messages.by_kind(kind))});
  }
  std::cout << "\n" << msg.to_text();
  if (trace != nullptr) {
    std::cout << "\ntrace written to " << flags.get_string("trace") << "\n";
  }

  if (!flags.get_string("metrics-out").empty()) {
    obs::MetricsRegistry registry;
    sim::export_metrics(simulation, config, result, registry);
    if (profiling) {
      profiler.export_to(registry);
    }
    const std::string& path = flags.get_string("metrics-out");
    std::ofstream metrics_file(path);
    util::require(metrics_file.good(), "cannot open metrics file");
    if (util::ends_with(path, ".prom")) {
      registry.write_prometheus(metrics_file);
    } else {
      registry.write_jsonl(metrics_file);
    }
    std::cout << "\nmetrics written to " << path << " (" << registry.series_count()
              << " series)\n";
  }
  if (span_sink != nullptr) {
    std::cout << "spans written to " << flags.get_string("spans-out") << " ("
              << tracer.spans_emitted() << " spans)\n";
  }
  if (timeline != nullptr) {
    const std::string& path = flags.get_string("timeline-out");
    std::ofstream timeline_file(path);
    util::require(timeline_file.good(), "cannot open timeline file");
    if (util::ends_with(path, ".csv")) {
      timeline->write_csv(timeline_file);
    } else {
      timeline->write_jsonl(timeline_file);
    }
    std::cout << "timeline written to " << path << " (" << timeline->samples().size()
              << " samples x " << timeline->columns().size() << " columns)\n";
  }
  if (kernel_stats != nullptr) {
    const std::string& path = flags.get_string("kernel-stats-out");
    std::ofstream kernel_file(path);
    util::require(kernel_file.good(), "cannot open kernel-stats file");
    kernel_stats->write_jsonl(kernel_file);
    std::cout << "kernel stats written to " << path << " ("
              << kernel_stats->total_scheduled() << " scheduled, "
              << kernel_stats->total_fired() << " fired, "
              << kernel_stats->total_cancelled() << " cancelled)\n";
  }
  if (recorder != nullptr) {
    std::cout << "flight recorder   " << recorder->triggers() << " triggers, "
              << recorder->dumps_written() << " snapshots -> "
              << flags.get_string("flight-recorder") << "\n";
  }
  if (profiling) {
    const obs::ProfileSummary summary = profiler.summary();
    std::cout << "\nengine profile    " << summary.events << " events in "
              << util::format_fixed(summary.wall_seconds, 3) << " s wall ("
              << util::format_fixed(summary.events_per_second / 1e6, 3) << " M events/s, "
              << util::format_fixed(summary.sim_seconds_per_wall_second, 0)
              << " sim-s per wall-s)\n"
              << "peak queue depth  " << summary.peak_queue_depth << "\n"
              << "peak active flows " << summary.peak_active_flows << "\n"
              << "phases            warmup "
              << util::format_fixed(profiler.phase_seconds("warmup"), 3) << " s, measure "
              << util::format_fixed(profiler.phase_seconds("measure"), 3) << " s\n";
    if (!flags.get_string("profile-out").empty()) {
      std::ofstream profile_file(flags.get_string("profile-out"));
      util::require(profile_file.good(), "cannot open profile file");
      profiler.write_json(profile_file);
      std::cout << "profile written to " << flags.get_string("profile-out") << "\n";
    }
  }
  return 0;
}
