// Quickstart: build a network, define an anycast group, and run the DAC
// procedure for a handful of flow requests by hand.
//
// This walks the public API at the lowest level — topology, ledger, routes,
// signaling, admission controller — the same pieces the simulator drives.
//
//   $ ./quickstart
#include <iostream>

#include "src/core/admission.h"
#include "src/core/retrial.h"
#include "src/net/topologies.h"

int main() {
  using namespace anyqos;

  // 1. The network: the paper's 19-router MCI-like backbone, 100 Mbit/s
  //    links with 20% set aside for anycast flows.
  const net::Topology topology = net::topologies::mci_backbone();
  net::BandwidthLedger ledger(topology, /*anycast_share=*/0.2);
  std::cout << "Network: " << topology.router_count() << " routers, "
            << topology.duplex_link_count() << " duplex links\n";

  // 2. The anycast group: five mirrored servers sharing one anycast address.
  const core::AnycastGroup group("anycast://mirrors", {0, 4, 8, 12, 16});

  // 3. Fixed routes from every router to every member (hop-count shortest
  //    paths, as the paper assumes the routing protocol provides).
  const net::RouteTable routes(topology, group.members());

  // 4. RSVP-like signaling against the ledger, with message accounting.
  signaling::MessageCounter messages;
  signaling::ReservationProtocol rsvp(ledger, messages);
  signaling::ProbeService probe(ledger, messages);

  // 5. An AC-router at node 9 running <WD/D+H, 2>: weighted destination
  //    selection by route distance + admission history, up to 2 tries.
  core::SelectorEnvironment env;
  env.source = 9;
  env.group = &group;
  env.routes = &routes;
  env.probe = &probe;
  env.alpha = 0.5;
  core::AdmissionController ac(
      9, group, routes, rsvp,
      core::make_selector(core::SelectionAlgorithm::kDistanceHistory, env),
      std::make_unique<core::CounterRetrialPolicy>(2));

  // 6. Offer a few 64 kbit/s flow requests and show the decisions.
  des::RandomStream rng(2026);
  std::cout << "\nAdmitting 5 anycast flows from router " << topology.router_name(9)
            << " to " << group.address() << ":\n";
  std::vector<core::AdmissionDecision> admitted;
  for (int i = 0; i < 5; ++i) {
    core::FlowRequest request;
    request.source = 9;
    request.bandwidth_bps = 64'000.0;
    const core::AdmissionDecision decision = ac.admit(request, rng);
    if (decision.admitted) {
      std::cout << "  flow " << i << ": ADMITTED -> member at router "
                << topology.router_name(group.member(*decision.destination_index)) << " ("
                << decision.route.hops() << " hops, " << decision.attempts << " attempt(s), "
                << decision.messages << " signaling msgs)\n";
      admitted.push_back(decision);
    } else {
      std::cout << "  flow " << i << ": REJECTED after " << decision.attempts
                << " attempts\n";
    }
  }

  std::cout << "\nReserved bandwidth in the network: " << ledger.total_reserved() / 1e6
            << " Mbit/s across links\n";

  // 7. Flows end: release their reservations (TEAR signaling).
  for (const auto& decision : admitted) {
    ac.release(decision, 64'000.0);
  }
  std::cout << "After teardown: " << ledger.total_reserved() << " bit/s reserved\n";
  std::cout << "Total signaling messages: " << messages.total() << "\n";
  return 0;
}
