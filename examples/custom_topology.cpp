// Custom topology + custom selection strategy: extending the library.
//
// Demonstrates the two extension points a downstream user needs most:
//   1. Building their own Topology (here: a two-datacenter dumbbell) instead
//      of the built-in generators.
//   2. Plugging a new DestinationSelector into the DAC procedure — here a
//      "sticky" selector that remembers the last member that worked and keeps
//      using it until it fails (a common load-balancer heuristic), compared
//      against the paper's algorithms on the same workload.
//
//   $ ./custom_topology --lambda=60
#include <iostream>
#include <optional>

#include "src/sim/simulation.h"
#include "src/util/cli.h"
#include "src/util/strings.h"
#include "src/util/table.h"

namespace {

using namespace anyqos;

// Two 4-router sites joined by a thin long-haul pair. Members live in both
// sites; sources in site A must pick wisely or saturate the dumbbell waist.
net::Topology dumbbell() {
  net::Topology topo;
  for (int i = 0; i < 8; ++i) {
    std::string name(i < 4 ? "A" : "B");  // append form: GCC 12 -Wrestrict, PR 105329
    name += std::to_string(i < 4 ? i : i - 4);
    topo.add_router(name);
  }
  const double lan = 100.0e6;
  const double wan = 40.0e6;  // thin waist
  // Site A full mesh-ish.
  topo.add_duplex_link(0, 1, lan);
  topo.add_duplex_link(1, 2, lan);
  topo.add_duplex_link(2, 3, lan);
  topo.add_duplex_link(0, 3, lan);
  // Site B.
  topo.add_duplex_link(4, 5, lan);
  topo.add_duplex_link(5, 6, lan);
  topo.add_duplex_link(6, 7, lan);
  topo.add_duplex_link(4, 7, lan);
  // The waist.
  topo.add_duplex_link(2, 4, wan);
  topo.add_duplex_link(3, 5, wan);
  return topo;
}

/// Sticky selector: keep returning the member that last succeeded; on
/// failure (or at first use) fall back to uniform choice over untried.
class StickySelector final : public core::DestinationSelector {
 public:
  explicit StickySelector(std::size_t group_size) : group_size_(group_size) {}

  std::optional<std::size_t> select(std::span<const bool> tried,
                                    des::RandomStream& rng) override {
    if (sticky_.has_value() && !tried[*sticky_]) {
      return sticky_;
    }
    std::vector<double> weights(group_size_, 0.0);
    bool any = false;
    for (std::size_t i = 0; i < group_size_; ++i) {
      if (!tried[i]) {
        weights[i] = 1.0;
        any = true;
      }
    }
    if (!any) {
      return std::nullopt;
    }
    return rng.weighted_index(weights);
  }

  void report(std::size_t index, bool admitted) override {
    if (admitted) {
      sticky_ = index;
    } else if (sticky_ == index) {
      sticky_.reset();
    }
  }

  [[nodiscard]] std::vector<double> weights() const override {
    std::vector<double> w(group_size_, 0.0);
    if (sticky_.has_value()) {
      w[*sticky_] = 1.0;
    } else {
      for (double& x : w) {
        x = 1.0 / static_cast<double>(group_size_);
      }
    }
    return w;
  }

  [[nodiscard]] std::string name() const override { return "STICKY"; }

 private:
  std::size_t group_size_;
  std::optional<std::size_t> sticky_;
};

// Run one system on the dumbbell by driving AdmissionControllers directly
// with a Poisson workload (the Simulation class wires built-in algorithms;
// a custom selector is wired at this level).
struct RunStats {
  double ap = 0.0;
  double avg_tries = 0.0;
};

RunStats run_custom(const net::Topology& topo, bool sticky,
                    core::SelectionAlgorithm fallback, double lambda) {
  const core::AnycastGroup group("anycast://svc", {1, 6});  // one member per site
  const net::RouteTable routes(topo, group.members());
  net::BandwidthLedger ledger(topo, 0.5);
  signaling::MessageCounter counter;
  signaling::ReservationProtocol rsvp(ledger, counter);
  signaling::ProbeService probe(ledger, counter);
  const std::vector<net::NodeId> sources = {0, 2, 3};

  des::SeedSequence seeds(7);
  des::Simulator simulator;
  sim::TrafficModel traffic;
  traffic.arrival_rate = lambda;
  traffic.mean_holding_s = 60.0;
  traffic.flow_bandwidth_bps = 256'000.0;  // chunky media flows
  traffic.sources = sources;
  sim::ArrivalProcess arrivals(traffic, seeds);
  des::RandomStream selection = seeds.stream("selection");

  std::vector<std::unique_ptr<core::AdmissionController>> acs(topo.router_count());
  const auto ac_for = [&](net::NodeId s) -> core::AdmissionController& {
    if (acs[s] == nullptr) {
      std::unique_ptr<core::DestinationSelector> selector;
      if (sticky) {
        selector = std::make_unique<StickySelector>(group.size());
      } else {
        core::SelectorEnvironment env;
        env.source = s;
        env.group = &group;
        env.routes = &routes;
        env.probe = &probe;
        env.flow_bandwidth = traffic.flow_bandwidth_bps;
        selector = core::make_selector(fallback, env);
      }
      acs[s] = std::make_unique<core::AdmissionController>(
          s, group, routes, rsvp, std::move(selector),
          std::make_unique<core::CounterRetrialPolicy>(2));
    }
    return *acs[s];
  };

  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t tries = 0;
  // Kernel category tags: free when no obs::KernelStats sink is attached,
  // and they make this model legible to the kernel telemetry plane.
  const des::EventCategory cat_arrival = simulator.category("sim.arrival");
  const des::EventCategory cat_departure = simulator.category("sim.departure");
  std::function<void()> arrival = [&] {
    simulator.schedule_in(arrivals.next_interarrival(), cat_arrival, arrival);
    core::FlowRequest request;
    request.source = arrivals.draw_source();
    request.bandwidth_bps = traffic.flow_bandwidth_bps;
    const auto decision = ac_for(request.source).admit(request, selection);
    ++offered;
    tries += decision.attempts;
    if (decision.admitted) {
      ++admitted;
      simulator.schedule_in(arrivals.draw_holding(), cat_departure,
                            [&rsvp, route = decision.route, &traffic] {
                              rsvp.teardown(route, traffic.flow_bandwidth_bps);
                            });
    }
  };
  simulator.schedule_in(arrivals.next_interarrival(), cat_arrival, arrival);
  simulator.run_until(4'000.0);

  RunStats stats;
  stats.ap = offered == 0 ? 0.0 : static_cast<double>(admitted) / static_cast<double>(offered);
  stats.avg_tries = offered == 0 ? 0.0 : static_cast<double>(tries) / static_cast<double>(offered);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags("custom_topology",
                       "Custom dumbbell topology with a user-defined selector");
  flags.add_double("lambda", 6.0, "requests per second");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }
  const double lambda = flags.get_double("lambda");
  const net::Topology topo = dumbbell();

  std::cout << "Dumbbell: two 4-router sites, 40 Mbit/s waist, members in both sites,\n"
            << "256 kbit/s flows at " << lambda << "/s from site A\n\n";

  util::TablePrinter table({"selector", "admitted", "avg tries"});
  const RunStats sticky = run_custom(topo, true, core::SelectionAlgorithm::kEvenDistribution,
                                     lambda);
  table.add_row({"STICKY (custom plug-in)", util::format_fixed(100.0 * sticky.ap, 1) + "%",
                 util::format_fixed(sticky.avg_tries, 3)});
  for (const auto algorithm :
       {core::SelectionAlgorithm::kEvenDistribution, core::SelectionAlgorithm::kDistanceHistory,
        core::SelectionAlgorithm::kDistanceBandwidth}) {
    const RunStats stats = run_custom(topo, false, algorithm, lambda);
    table.add_row({core::to_string(algorithm), util::format_fixed(100.0 * stats.ap, 1) + "%",
                   util::format_fixed(stats.avg_tries, 3)});
  }
  table.print(std::cout);
  std::cout << "\nThe sticky heuristic piles flows onto one member until it chokes the\n"
            << "waist; the paper's randomized/weighted selectors spread them across\n"
            << "sites. Writing a selector = subclassing DestinationSelector (~30 lines).\n";
  return 0;
}
