// Mirrored-services scenario: the paper's motivating application. An
// e-commerce provider runs five mirrored servers behind one anycast address;
// clients establish QoS flows (e-transactions, downloads) to "the service",
// not to a specific mirror. This example compares, at one load level, how the
// choice of DAC destination-selection algorithm affects the fraction of
// customer sessions the network can accept, how the mirrors share the load,
// and what the signaling bill is.
//
//   $ ./mirrored_services --lambda=35 --measure=20000
#include <iostream>

#include "src/sim/experiment.h"
#include "src/util/cli.h"
#include "src/util/strings.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace anyqos;

  util::CliFlags flags("mirrored_services",
                       "Compare DAC policies for a mirrored e-commerce service");
  flags.add_double("lambda", 35.0, "customer session requests per second");
  flags.add_double("warmup", 2'000.0, "warm-up seconds discarded");
  flags.add_double("measure", 10'000.0, "measured seconds");
  flags.add_unsigned("seed", 1, "master RNG seed");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }

  const sim::ExperimentModel model = sim::paper_model();
  const double lambda = flags.get_double("lambda");

  struct SystemSpec {
    std::string label;
    core::SelectionAlgorithm algorithm;
    std::size_t max_tries;
    bool use_gdi;
  };
  const std::vector<SystemSpec> systems = {
      {"SP (always nearest mirror)", core::SelectionAlgorithm::kShortestPath, 1, false},
      {"<ED,2>", core::SelectionAlgorithm::kEvenDistribution, 2, false},
      {"<WD/D+H,2>", core::SelectionAlgorithm::kDistanceHistory, 2, false},
      {"<WD/D+B,2>", core::SelectionAlgorithm::kDistanceBandwidth, 2, false},
      {"GDI (oracle bound)", core::SelectionAlgorithm::kEvenDistribution, 2, true},
  };

  std::cout << "Mirrored service: 5 mirrors at routers 0/4/8/12/16, sessions of 64 kbit/s,\n"
            << "mean lifetime 180 s, total demand " << lambda << " sessions/s\n\n";

  util::TablePrinter table({"system", "accepted", "avg tries", "msgs/request",
                            "mirror load split (admissions %)"});
  for (const SystemSpec& spec : systems) {
    sim::SimulationConfig config = model.base_config(lambda);
    config.algorithm = spec.algorithm;
    config.max_tries = spec.max_tries;
    config.use_gdi = spec.use_gdi;
    config.warmup_s = flags.get_double("warmup");
    config.measure_s = flags.get_double("measure");
    config.seed = flags.get_unsigned("seed");
    sim::Simulation simulation(model.topology, config);
    const sim::SimulationResult result = simulation.run();

    std::string split;
    double total = 0.0;
    for (const auto c : result.per_destination_admissions) {
      total += static_cast<double>(c);
    }
    for (std::size_t i = 0; i < result.per_destination_admissions.size(); ++i) {
      if (i > 0) {
        split += "/";
      }
      split += util::format_fixed(
          total == 0.0
              ? 0.0
              : 100.0 * static_cast<double>(result.per_destination_admissions[i]) / total,
          0);
    }
    table.add_row({spec.label, util::format_fixed(100.0 * result.admission_probability, 1) + "%",
                   util::format_fixed(result.average_attempts, 3),
                   util::format_fixed(result.average_messages, 1), split});
  }
  table.print(std::cout);

  std::cout << "\nReading the table: SP overloads the nearest mirror's routes (worst\n"
            << "acceptance, most skewed split); randomized DAC selection spreads the\n"
            << "sessions and approaches the GDI oracle at a fraction of its cost.\n";
  return 0;
}
