// Multiple anycast services sharing one backbone (multi-group extension).
//
// Three services with different footprints and flow sizes compete for the
// same 20% anycast share of the MCI-like backbone: a widely mirrored CDN
// (5 mirrors, thin flows), a two-site database (fat flows), and a
// single-node legacy service (unicast degenerate case). Shows how groups
// interact only through shared links, and how per-group policy choices pay
// off under contention.
//
//   $ ./multi_service --lambda=40
#include <iostream>

#include "src/net/topologies.h"
#include "src/sim/multi_group.h"
#include "src/util/cli.h"
#include "src/util/strings.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace anyqos;

  util::CliFlags flags("multi_service", "Three anycast services on one backbone");
  flags.add_double("lambda", 40.0, "total requests/s across all services");
  flags.add_double("measure", 8'000.0, "measured seconds");
  flags.add_unsigned("seed", 1, "master RNG seed");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }

  const net::Topology topology = net::topologies::mci_backbone();

  sim::MultiGroupConfig config;
  config.total_arrival_rate = flags.get_double("lambda");
  config.mean_holding_s = 180.0;
  for (net::NodeId id = 1; id < topology.router_count(); id += 2) {
    config.sources.push_back(id);
  }
  config.anycast_share = 0.2;
  config.warmup_s = 1'500.0;
  config.measure_s = flags.get_double("measure");
  config.seed = flags.get_unsigned("seed");

  sim::GroupSpec cdn;
  cdn.address = "anycast://cdn";
  cdn.members = {0, 4, 8, 12, 16};
  cdn.rate_share = 6.0;                 // most of the traffic
  cdn.algorithm = core::SelectionAlgorithm::kDistanceHistory;
  cdn.max_tries = 2;
  cdn.flow_bandwidth_bps = 64'000.0;

  sim::GroupSpec database;
  database.address = "anycast://db";
  database.members = {2, 14};
  database.rate_share = 1.0;
  database.algorithm = core::SelectionAlgorithm::kDistanceBandwidth;
  database.max_tries = 2;
  database.flow_bandwidth_bps = 512'000.0;  // fat transactional flows

  sim::GroupSpec legacy;
  legacy.address = "anycast://legacy";
  legacy.members = {18};                 // unicast: the degenerate K=1 case
  legacy.rate_share = 1.0;
  legacy.algorithm = core::SelectionAlgorithm::kShortestPath;
  legacy.max_tries = 1;
  legacy.flow_bandwidth_bps = 64'000.0;

  config.groups = {cdn, database, legacy};

  sim::MultiGroupSimulation simulation(topology, config);
  const sim::MultiGroupResult result = simulation.run();

  std::cout << "Three services sharing the backbone at a combined "
            << config.total_arrival_rate << " requests/s:\n\n";
  util::TablePrinter table({"service", "members", "flow kbit/s", "offered", "accepted",
                            "avg tries"});
  const std::vector<const sim::GroupSpec*> specs = {&cdn, &database, &legacy};
  for (std::size_t i = 0; i < result.groups.size(); ++i) {
    const auto& g = result.groups[i];
    table.add_row({g.address, std::to_string(specs[i]->members.size()),
                   util::format_fixed(specs[i]->flow_bandwidth_bps / 1000.0, 0),
                   std::to_string(g.offered),
                   util::format_fixed(100.0 * g.admission_probability, 1) + "%",
                   util::format_fixed(g.average_attempts, 3)});
  }
  table.print(std::cout);
  std::cout << "\naggregate acceptance "
            << util::format_fixed(100.0 * result.aggregate_admission_probability, 1)
            << "%, mean link utilization "
            << util::format_fixed(100.0 * result.mean_link_utilization, 1) << "%\n\n"
            << "Fat-flow and single-member services block first; the CDN's group\n"
            << "diversity plus history-weighted selection keeps its acceptance high\n"
            << "even while sharing every link with the competitors.\n";
  return 0;
}
