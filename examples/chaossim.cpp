// chaossim — chaos harness for the resilient signaling plane.
//
// Sweeps a fault matrix — control-message loss x injected hop delay x member
// churn x link faults x router crashes — and runs every cell to quiescence
// (arrivals stop after the measurement window, the calendar runs dry) under
// a non-throwing InvariantAuditor. A cell passes when it ends with an empty
// flow table, zero reserved bandwidth, zero pending orphans, an empty
// path-repair queue, a clean audit log, and — for probe-free runs started
// without warm-up — a signaling hop tally that reconciles exactly with the
// MessageCounter. Exits nonzero if any cell fails, which makes the binary a
// CI gate.
//
// Cells on the node-fault axis (--node-mtbfs entries > 0) run the full
// failure-domain plane: Poisson router crashes, link-state flooding
// reconvergence, and make-before-break path repair.
//
//   $ ./chaossim
//   $ ./chaossim --losses=0,0.1,0.3 --churn-rates=0,0.005 --fault-rate=1e-4
//   $ ./chaossim --node-mtbfs=0,4000 --node-mttr=120 --measure=2000
//   $ ./chaossim --topology=grid:3x3 --group=0,8 --measure=2000 --out=chaos.csv
//   $ ./chaossim --metrics-out=chaos.prom --spans-out=spans.jsonl --flight-prefix=/tmp/flight
//
// Every cell runs with a flight recorder by default: when a link fault,
// member churn, or audit finding fires, the cell's bounded causal snapshot
// is written to <flight-prefix>-cell<N>.jsonl (cells without a trigger write
// nothing).
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/audit/auditor.h"
#include "src/audit/chaos_oracle.h"
#include "src/control/directive.h"
#include "src/control/governor.h"
#include "src/net/reconvergence.h"
#include "src/net/topologies.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/kernel_stats.h"
#include "src/obs/ops_server.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/obs/timeline.h"
#include "src/sim/churn.h"
#include "src/sim/faults.h"
#include "src/sim/metrics_export.h"
#include "src/sim/scenario.h"
#include "src/sim/simulation.h"
#include "src/util/cli.h"
#include "src/util/require.h"
#include "src/util/strings.h"
#include "src/util/table.h"

namespace {

using namespace anyqos;

std::vector<net::NodeId> parse_nodes(const std::string& text, const char* what) {
  std::vector<net::NodeId> nodes;
  for (const std::string& field : util::split(text, ',')) {
    const auto value = util::parse_unsigned(field);
    util::require(value.has_value(), std::string(what) + " must be a comma list of node ids");
    nodes.push_back(static_cast<net::NodeId>(*value));
  }
  return nodes;
}

std::vector<double> parse_probabilities(const std::string& text, const char* what) {
  std::vector<double> values;
  for (const std::string& field : util::split(text, ',')) {
    const auto value = util::parse_double(field);
    util::require(value.has_value() && *value >= 0.0 && *value <= 1.0,
                  std::string(what) + " must be a comma list of probabilities in [0,1]");
    values.push_back(*value);
  }
  util::require(!values.empty(), std::string(what) + " must not be empty");
  return values;
}

std::vector<double> parse_rates(const std::string& text, const char* what) {
  std::vector<double> values;
  for (const std::string& field : util::split(text, ',')) {
    const auto value = util::parse_double(field);
    util::require(value.has_value() && *value >= 0.0,
                  std::string(what) + " must be a comma list of non-negative rates");
    values.push_back(*value);
  }
  util::require(!values.empty(), std::string(what) + " must not be empty");
  return values;
}

net::Topology build_topology(const std::string& spec) {
  if (spec == "mci") {
    return net::topologies::mci_backbone();
  }
  if (util::starts_with(spec, "line:")) {
    return net::topologies::line(util::parse_unsigned(spec.substr(5)).value());
  }
  if (util::starts_with(spec, "ring:")) {
    return net::topologies::ring(util::parse_unsigned(spec.substr(5)).value());
  }
  if (util::starts_with(spec, "grid:")) {
    const auto dims = util::split(spec.substr(5), 'x');
    util::require(dims.size() == 2, "grid spec is grid:<rows>x<cols>");
    return net::topologies::grid(util::parse_unsigned(dims[0]).value(),
                                 util::parse_unsigned(dims[1]).value());
  }
  util::require(false, "unknown topology spec '" + spec + "' (mci, line:N, ring:N, grid:RxC)");
  util::unreachable("build_topology");
}

struct CellVerdict {
  bool hung = false;            // the drain watchdog tripped before quiescence
  bool leaked = false;          // reserved bandwidth, orphans, or queued repairs survived
  bool violations = false;      // the auditor logged at least one finding
  bool unreconciled = false;    // hop mirror != MessageCounter (when checkable)
  bool breaker_open = false;    // a circuit breaker survived the drain Open
  [[nodiscard]] bool clean() const {
    return !hung && !leaked && !violations && !unreconciled && !breaker_open;
  }
};

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags("chaossim",
                       "Chaos matrix for the resilient signaling plane (CI gate)");
  flags.add_string("scenario", "",
                   "single-scenario mode: run this scenario file (sim/scenario.h) through the"
                   " chaos oracle instead of the matrix; exit 1 on any violation");
  flags.add_string("topology", "ring:8", "mci | line:N | ring:N | grid:RxC");
  flags.add_string("group", "0,4", "anycast member routers");
  flags.add_string("sources", "1,3,5,7", "source routers");
  flags.add_string("losses", "0,0.05,0.2", "comma list of loss probabilities to sweep");
  flags.add_string("churn-rates", "0,0.002", "comma list of per-member outage rates/s");
  flags.add_duration("hop-delay", 0.0005, "injected control-plane delay per hop, seconds");
  flags.add_double("fault-rate", 2e-4, "per-link failures/s for the faults-on half");
  flags.add_duration("fault-repair", 150.0, "mean link outage duration, seconds");
  flags.add_string("node-mtbfs", "0",
                   "comma list of router MTBFs (s) to sweep; 0 disables the node-fault axis,"
                   " entries > 0 run crashes + flooding reconvergence + path repair");
  flags.add_duration("node-mttr", 120.0, "mean router recovery time, seconds");
  flags.add_duration("reconverge-round", 1.0,
                     "seconds per link-state flooding round (node-fault cells)");
  flags.add_duration("churn-downtime", 120.0, "mean member outage duration, seconds");
  flags.add_duration("retransmit-timeout", 0.5, "wait before the first PATH retransmit");
  flags.add_unsigned("max-retransmits", 2, "PATH re-sends before giving up");
  flags.add_duration("orphan-hold", 20.0, "soft-state hold before orphan reclaim, seconds");
  flags.add_double("lambda", 8.0, "total arrival rate, requests/s");
  flags.add_duration("holding", 40.0, "mean flow lifetime, seconds");
  flags.add_double("bandwidth", 64'000.0, "per-flow bandwidth, bit/s");
  flags.add_duration("measure", 1'000.0, "measured seconds per cell (warm-up is zero so the"
                                         " message reconciliation stays exact)");
  flags.add_unsigned("seed", 101, "master RNG seed (each cell offsets it)");
  flags.add_unsigned("drain-max-events", 0,
                     "drain watchdog: abort a cell's drain after this many events; a tripped"
                     " watchdog fails the cell (0 = uncapped)");
  flags.add_duration("drain-max-sim", 0.0,
                     "drain watchdog: abort a cell's drain this many sim-seconds past the"
                     " horizon (0 = uncapped)");
  flags.add_string("out", "", "also write the matrix as CSV to this file");
  flags.add_string("metrics-out", "",
                   "write per-cell metrics here (.prom = Prometheus text, else JSONL); every"
                   " series carries a cell=<n> label");
  flags.add_string("spans-out", "", "write every cell's admission-decision spans here (JSONL)");
  flags.add_bool("flight-recorder", true, "arm a per-cell fault-triggered flight recorder");
  flags.add_string("flight-prefix", "chaos-flight",
                   "flight snapshots go to <prefix>-cell<N>.jsonl");
  flags.add_unsigned("flight-depth", 256, "flight-recorder ring capacity, entries");
  flags.add_bool("adaptive", false,
                 "run every cell under the overload governor (adaptive retrial + member"
                 " breakers); a breaker left Open after the drain fails the cell");
  flags.add_string("timeline-prefix", "",
                   "write each cell's windowed timeline to <prefix>-cell<N>.jsonl");
  flags.add_string("kernel-stats-prefix", "",
                   "write each cell's kernel event telemetry to <prefix>-cell<N>.jsonl");
  flags.add_double("timeline-interval", 50.0, "simulated seconds between timeline samples");
  flags.add_string("ops-port", "",
                   "serve the live ops plane on this TCP port (0 = ephemeral); one server for"
                   " the whole matrix, every series carries the running cell's cell=<n> label;"
                   " POST /control steers the governor and needs --adaptive");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }

  // Single-scenario mode: one replayable file, the full oracle stack, one
  // classified verdict. This is how a chaosfuzz-shrunk repro is re-judged
  // under the same gates CI applies to the matrix.
  if (!flags.get_string("scenario").empty()) {
    std::ifstream scenario_file(flags.get_string("scenario"));
    util::require(scenario_file.good(), "cannot open scenario file");
    std::ostringstream scenario_text;
    scenario_text << scenario_file.rdbuf();
    const sim::Scenario scenario = sim::load_scenario(scenario_text.str());
    const audit::ChaosOracleOutcome outcome = audit::run_chaos_oracle(scenario);
    if (outcome.clean()) {
      std::cout << "scenario '" << scenario.name << "' clean ("
                << scenario.fault_entries() << " fault entries, seed " << scenario.seed
                << ")\n";
      return 0;
    }
    std::cout << "scenario '" << scenario.name << "' FAILED: " << outcome.violation_class
              << "\n";
    if (!outcome.detail.empty()) {
      std::cout << outcome.detail << "\n";
    }
    if (!outcome.audit_log.empty()) {
      std::cout << outcome.audit_log;
    }
    if (!outcome.flight_dump.empty()) {
      std::string path = flags.get_string("flight-prefix");
      path += "-scenario.jsonl";
      std::ofstream dump(path);
      util::require(dump.good(), "cannot open flight dump file");
      dump << outcome.flight_dump;
      std::cout << "flight snapshot written to " << path << "\n";
    }
    return 1;
  }

  const net::Topology topology = build_topology(flags.get_string("topology"));
  const std::vector<double> losses =
      parse_probabilities(flags.get_string("losses"), "--losses");
  const std::vector<double> churn_rates =
      parse_rates(flags.get_string("churn-rates"), "--churn-rates");
  const std::vector<double> node_mtbfs =
      parse_rates(flags.get_string("node-mtbfs"), "--node-mtbfs");
  // One flooding policy for the whole matrix: every cell shares the
  // topology, so the O(diameter) convergence lag is the same for all.
  net::FloodingReconvergence reconvergence(flags.get_double("reconverge-round"));

  const bool flight_on = flags.get_bool("flight-recorder");
  std::ofstream spans_file;
  std::unique_ptr<obs::JsonlSpanSink> shared_spans;
  if (!flags.get_string("spans-out").empty()) {
    spans_file.open(flags.get_string("spans-out"));
    util::require(spans_file.good(), "cannot open spans file");
    shared_spans = std::make_unique<obs::JsonlSpanSink>(spans_file);
  }
  std::unique_ptr<obs::MetricsRegistry> registry;
  if (!flags.get_string("metrics-out").empty()) {
    registry = std::make_unique<obs::MetricsRegistry>();
  }
  std::vector<std::string> flight_files;
  std::uint64_t flight_triggers = 0;
  std::uint64_t spans_emitted = 0;
  std::size_t timeline_files = 0;
  std::size_t kernel_stats_files = 0;

  const bool adaptive = flags.get_bool("adaptive");

  // One ops server spans the whole matrix: each cell re-publishes /metrics
  // with its own cell=<n> label, so a scraper watching the sweep sees the
  // running cell. The mailbox only drains into cells that carry a governor.
  control::DirectiveMailbox ops_mailbox;
  std::unique_ptr<obs::OpsServer> ops_server;
  if (!flags.get_string("ops-port").empty()) {
    const auto port = util::parse_unsigned(flags.get_string("ops-port"));
    util::require(port.has_value() && *port <= 65'535,
                  "--ops-port must be a TCP port number (0 = ephemeral)");
    obs::OpsServerOptions server_options;
    server_options.port = static_cast<std::uint16_t>(*port);
    ops_server = std::make_unique<obs::OpsServer>(server_options);
    if (adaptive) {
      ops_server->set_control_handler(
          [&ops_mailbox](const std::string& knob_name, const std::string& body) {
            obs::ControlOutcome outcome;
            const std::optional<control::Knob> knob = control::parse_knob(knob_name);
            if (!knob.has_value()) {
              outcome.status = 404;
              outcome.body = "{\"error\":\"unknown knob '" + util::json_escape(knob_name) +
                             "'\"}\n";
              return outcome;
            }
            const std::optional<double> value = util::parse_double(util::trim(body));
            if (!value.has_value()) {
              outcome.status = 422;
              outcome.body = "{\"error\":\"body must be a single number\"}\n";
              return outcome;
            }
            if (const auto error = control::validate_directive(*knob, *value)) {
              outcome.status = 422;
              outcome.body = "{\"error\":\"" + util::json_escape(*error) + "\"}\n";
              return outcome;
            }
            ops_mailbox.post({*knob, *value});
            outcome.body = "{\"queued\":{\"knob\":\"" + control::to_string(*knob) + "\"}}\n";
            return outcome;
          });
    }
    ops_server->start();
    std::cout << "ops server        http://127.0.0.1:" << ops_server->port()
              << "  (one server, cell=<n> labels)" << std::endl;
  }

  util::TablePrinter table({"loss", "churn/s", "faults", "node mtbf", "AP", "retx", "orphans",
                            "dropped", "failover", "repair", "governor", "verdict"});
  std::ostringstream csv;
  csv << "loss,churn_rate,faults,node_mtbf,admission_probability,retransmits,"
         "orphans_reclaimed,dropped_by_fault,dropped_by_churn,failover_admitted,"
         "failover_attempts,node_outages,reconvergences,repaired,unrepairable,"
         "pending_repairs,adaptive,effective_r,breaker_trips,breaker_open,shed,leaked,"
         "violations,unreconciled\n";

  std::size_t failures = 0;
  std::uint64_t cell = 0;
  for (const double loss : losses) {
    for (const double churn_rate : churn_rates) {
      for (const bool faults_on : {false, true}) {
        for (const double node_mtbf : node_mtbfs) {
          ++cell;
          sim::SimulationConfig config;
          config.traffic.arrival_rate = flags.get_double("lambda");
          config.traffic.mean_holding_s = flags.get_double("holding");
          config.traffic.flow_bandwidth_bps = flags.get_double("bandwidth");
          config.traffic.sources = parse_nodes(flags.get_string("sources"), "--sources");
          config.group_members = parse_nodes(flags.get_string("group"), "--group");
          config.algorithm = core::SelectionAlgorithm::kEvenDistribution;  // probe-free
          config.max_tries = 2;
          // Zero warm-up: the MessageCounter is never reset mid-run, so the
          // resilient protocol's hop mirror must match it exactly.
          config.warmup_s = 0.0;
          config.measure_s = flags.get_double("measure");
          config.seed = flags.get_unsigned("seed") + cell;
          config.drain_to_quiescence = true;

          signaling::ResilienceOptions resilience;
          resilience.faults.loss_probability = loss;
          resilience.faults.hop_delay_s = flags.get_double("hop-delay");
          resilience.retransmit_timeout_s = flags.get_double("retransmit-timeout");
          resilience.max_retransmits = flags.get_unsigned("max-retransmits");
          resilience.orphan_hold_s = flags.get_double("orphan-hold");
          config.resilience = resilience;

          // All three random axes through the one shared scenario builder
          // (churn at seed+1, link faults at seed+2, node faults at seed+3 —
          // the same offsets every scenario file uses, so a cell's schedules
          // are exactly reproducible from an `axes` block).
          sim::FaultAxes axes;
          axes.churn_rate = churn_rate;
          axes.churn_mean_down_s = flags.get_double("churn-downtime");
          if (faults_on) {
            axes.link_rate = flags.get_double("fault-rate");
            axes.link_mean_repair_s = flags.get_double("fault-repair");
          }
          if (node_mtbf > 0.0) {
            axes.node_rate = 1.0 / node_mtbf;
            axes.node_mean_repair_s = flags.get_double("node-mttr");
          }
          sim::ScenarioSchedules schedules = sim::scenario_schedules(
              topology, config.group_members.size(), config.measure_s, axes, config.seed);
          config.churn = std::move(schedules.churn);
          config.faults = std::move(schedules.link_faults);
          config.node_faults = std::move(schedules.node_faults);
          if (node_mtbf > 0.0) {
            // The node-fault axis runs the full failure-domain plane: router
            // crashes, flooding reconvergence, and path repair together.
            config.reconvergence = &reconvergence;
            config.path_repair = true;
          }
          config.drain_max_events = flags.get_unsigned("drain-max-events");
          config.drain_max_sim_s = flags.get_double("drain-max-sim");

          // Arm the per-cell flight recorder: spans land in its ring (teeing to
          // the shared spans file when one is open) and snapshots buffer in
          // memory — the file is created only if this cell actually triggers.
          obs::DecisionTracer tracer;
          std::ostringstream flight_buffer;
          std::unique_ptr<obs::FlightRecorder> recorder;
          if (flight_on) {
            obs::FlightRecorderOptions flight_options;
            flight_options.depth = flags.get_unsigned("flight-depth");
            recorder = std::make_unique<obs::FlightRecorder>(flight_options);
            recorder->set_output(&flight_buffer);
            recorder->set_forward(shared_spans.get());  // nullptr detaches
            tracer.set_sink(&recorder->span_sink());
            config.tracer = &tracer;
            config.flight_recorder = recorder.get();
          } else if (shared_spans != nullptr) {
            tracer.set_sink(shared_spans.get());
            config.tracer = &tracer;
          }

          // The governor rides along when --adaptive is set: its floor drops to
          // 1 so AIMD has headroom even against this matrix's R = 2 cells, and
          // the cooldown is short enough that mid-run trips (churn!) probe and
          // close well before the drain.
          std::unique_ptr<control::OverloadGovernor> governor;
          if (adaptive) {
            control::GovernorOptions governor_options;
            governor_options.min_tries = 1;
            governor_options.breaker.cooldown_s = 30.0;
            governor = std::make_unique<control::OverloadGovernor>(governor_options);
            config.governor = governor.get();
          }

          if (ops_server != nullptr) {
            config.ops_server = ops_server.get();
            config.ops_labels = {{"cell", std::to_string(cell)}};
            if (governor != nullptr) {
              config.ops_mailbox = &ops_mailbox;
            }
          }

          std::unique_ptr<obs::KernelStats> kernel_stats;
          if (!flags.get_string("kernel-stats-prefix").empty()) {
            kernel_stats = std::make_unique<obs::KernelStats>();
            config.kernel_stats = kernel_stats.get();
          }

          std::unique_ptr<obs::Timeline> timeline;
          if (!flags.get_string("timeline-prefix").empty()) {
            obs::TimelineOptions timeline_options;
            timeline_options.interval_s = flags.get_double("timeline-interval");
            timeline = std::make_unique<obs::Timeline>(timeline_options);
            config.timeline = timeline.get();
          }

          sim::Simulation simulation(topology, config);
          audit::AuditorOptions audit_options;
          audit_options.throw_on_violation = false;  // survey the whole matrix
          audit_options.checkpoint_interval_s = 50.0;
          audit::InvariantAuditor auditor(audit_options);
          auditor.attach(simulation);
          if (recorder != nullptr) {
            auditor.set_violation_hook([&recorder](const audit::Violation& violation) {
              recorder->trigger(violation.sim_time, "audit " + audit::to_string(violation.check));
            });
          }
          const sim::SimulationResult result = simulation.run();
          spans_emitted += tracer.spans_emitted();

          CellVerdict verdict;
          verdict.hung = simulation.drain_watchdog().tripped;
          auto* resilient = simulation.resilient();
          util::ensure(resilient != nullptr, "chaos cells always run resilient");
          if (simulation.ledger().total_reserved() > 0.0 || simulation.active_flows() > 0 ||
              resilient->pending_orphans() > 0 || simulation.pending_repairs() > 0) {
            verdict.leaked = true;
            // Documented leak repair: reclaim whatever soft state survived the
            // drain so the next cell's numbers are not polluted. The cell still
            // fails — a drained run must not need this.
            (void)resilient->reclaim_pending();
          }
          verdict.violations = !auditor.log().empty();
          verdict.unreconciled =
              result.resilience.hops_counted != result.messages.total();
          // Cooldown timers are one-shot and fire through the drain, so an Open
          // breaker at quiescence means the half-open path broke — a CI-grade
          // failure, same as a ledger leak.
          verdict.breaker_open = governor != nullptr && governor->open_breakers() > 0;
          if (!verdict.clean()) {
            ++failures;
          }

          std::ostringstream drops;
          drops << result.dropped_by_fault << "/" << result.dropped_by_churn;
          std::ostringstream failover;
          failover << result.failover_admitted << "/" << result.failover_attempts;
          std::ostringstream repair;
          if (node_mtbf > 0.0) {
            repair << result.repaired << "/" << result.unrepairable << " conv="
                   << result.reconvergences;
          } else {
            repair << "-";
          }
          std::ostringstream gov;
          if (governor != nullptr) {
            gov << "R" << governor->effective_max_tries() << "/"
                << governor->max_tries_ceiling() << " trips=" << governor->stats().breaker_trips
                << " open=" << governor->open_breakers();
          } else {
            gov << "-";
          }
          table.add_row({util::format_fixed(loss, 2), util::format_fixed(churn_rate, 4),
                         faults_on ? "on" : "off",
                         node_mtbf > 0.0 ? util::format_fixed(node_mtbf, 0) : "off",
                         util::format_fixed(result.admission_probability, 4),
                         std::to_string(result.resilience.retransmits),
                         std::to_string(result.resilience.orphans_reclaimed), drops.str(),
                         failover.str(), repair.str(), gov.str(),
                         verdict.clean() ? "clean"
                                         : (std::string(verdict.hung ? " hang" : "") +
                                            (verdict.leaked ? " leak" : "") +
                                            (verdict.violations ? " audit" : "") +
                                            (verdict.unreconciled ? " msgs" : "") +
                                            (verdict.breaker_open ? " breaker" : ""))});
          csv << loss << ',' << churn_rate << ',' << (faults_on ? 1 : 0) << ',' << node_mtbf
              << ',' << result.admission_probability << ',' << result.resilience.retransmits
              << ',' << result.resilience.orphans_reclaimed << ',' << result.dropped_by_fault
              << ',' << result.dropped_by_churn << ',' << result.failover_admitted << ','
              << result.failover_attempts << ',' << result.node_outages << ','
              << result.reconvergences << ',' << result.repaired << ','
              << result.unrepairable << ',' << simulation.pending_repairs() << ','
              << (governor != nullptr ? 1 : 0) << ','
              << (governor != nullptr ? governor->effective_max_tries() : config.max_tries)
              << ',' << (governor != nullptr ? governor->stats().breaker_trips : 0) << ','
              << (verdict.breaker_open ? 1 : 0) << ',' << result.shed << ','
              << (verdict.leaked ? 1 : 0) << ',' << (verdict.violations ? 1 : 0) << ','
              << (verdict.unreconciled ? 1 : 0) << "\n";
          if (verdict.violations) {
            std::cerr << "audit findings (loss=" << loss << " churn=" << churn_rate
                      << " faults=" << (faults_on ? "on" : "off")
                      << " node_mtbf=" << node_mtbf << "):\n"
                      << auditor.log().to_text();
          }
          if (registry != nullptr) {
            sim::export_metrics(simulation, config, result, *registry,
                                {{"cell", std::to_string(cell)}});
          }
          if (recorder != nullptr) {
            flight_triggers += recorder->triggers();
            if (recorder->dumps_written() > 0) {
              std::string path = flags.get_string("flight-prefix");
              path += "-cell";
              path += std::to_string(cell);
              path += ".jsonl";
              std::ofstream dump(path);
              util::require(dump.good(), "cannot open flight dump file");
              dump << flight_buffer.str();
              flight_files.push_back(std::move(path));
            }
          }
          if (timeline != nullptr) {
            std::string path = flags.get_string("timeline-prefix");
            path += "-cell";
            path += std::to_string(cell);
            path += ".jsonl";
            std::ofstream out(path);
            util::require(out.good(), "cannot open timeline file");
            timeline->write_jsonl(out);
            ++timeline_files;
          }
          if (kernel_stats != nullptr) {
            std::string path = flags.get_string("kernel-stats-prefix");
            path += "-cell";
            path += std::to_string(cell);
            path += ".jsonl";
            std::ofstream out(path);
            util::require(out.good(), "cannot open kernel-stats file");
            kernel_stats->write_jsonl(out);
            ++kernel_stats_files;
          }
        }
      }
    }
  }

  std::cout << table.to_text() << "\n"
            << cell << " cells, " << failures << " failed ("
            << losses.size() << " loss x " << churn_rates.size()
            << " churn x 2 fault x " << node_mtbfs.size()
            << " node settings; drained to quiescence, audited)\n";
  if (!flags.get_string("out").empty()) {
    std::ofstream out(flags.get_string("out"));
    util::require(out.good(), "cannot open --out file");
    out << csv.str();
    std::cout << "matrix written to " << flags.get_string("out") << "\n";
  }
  if (registry != nullptr) {
    const std::string& path = flags.get_string("metrics-out");
    std::ofstream metrics_file(path);
    util::require(metrics_file.good(), "cannot open metrics file");
    if (util::ends_with(path, ".prom")) {
      registry->write_prometheus(metrics_file);
    } else {
      registry->write_jsonl(metrics_file);
    }
    std::cout << "metrics written to " << path << " (" << registry->series_count()
              << " series)\n";
  }
  if (shared_spans != nullptr) {
    std::cout << "spans written to " << flags.get_string("spans-out") << " (" << spans_emitted
              << " spans)\n";
  }
  if (flight_on) {
    std::cout << "flight recorder   " << flight_triggers << " triggers, "
              << flight_files.size() << " cells dumped";
    for (const std::string& path : flight_files) {
      std::cout << " " << path;
    }
    std::cout << "\n";
  }
  if (timeline_files > 0) {
    std::cout << "timelines written to " << flags.get_string("timeline-prefix")
              << "-cell<N>.jsonl (" << timeline_files << " cells)\n";
  }
  if (kernel_stats_files > 0) {
    std::cout << "kernel stats written to " << flags.get_string("kernel-stats-prefix")
              << "-cell<N>.jsonl (" << kernel_stats_files << " cells)\n";
  }
  if (ops_server != nullptr) {
    ops_server->stop();
    std::cout << "ops server        " << ops_server->requests_served()
              << " requests served across the matrix\n";
  }
  return failures == 0 ? 0 : 1;
}
