// Delay-constrained anycast flows (Section 6 extension).
//
// The paper's DAC handles bandwidth QoS and notes that, under rate-based
// schedulers such as WFQ, an end-to-end delay bound converts into a bandwidth
// requirement. This example admits flows that carry a *deadline* instead of a
// rate: for each candidate member the required rate depends on the route
// length (farther members need a larger reservation to hit the same
// deadline), so destination selection and QoS mapping interact.
//
//   $ ./delay_qos --deadline-ms=150
#include <iostream>

#include "src/core/admission.h"
#include "src/core/qos.h"
#include "src/core/retrial.h"
#include "src/net/topologies.h"
#include "src/util/cli.h"
#include "src/util/strings.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace anyqos;

  util::CliFlags flags("delay_qos", "Admit delay-bounded anycast flows via WFQ mapping");
  flags.add_double("deadline-ms", 150.0, "end-to-end delay bound in milliseconds");
  flags.add_double("floor-kbps", 64.0, "minimum rate floor in kbit/s");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }

  const net::Topology topology = net::topologies::mci_backbone();
  net::BandwidthLedger ledger(topology, 0.2);
  const core::AnycastGroup group("anycast://video", {0, 4, 8, 12, 16});
  const net::RouteTable routes(topology, group.members());
  signaling::MessageCounter messages;
  signaling::ReservationProtocol rsvp(ledger, messages);

  core::SchedulerModel scheduler;                 // WFQ-style
  scheduler.max_packet_bits = 1500.0 * 8.0;       // MTU packets
  scheduler.per_hop_latency_s = 0.004;            // 4 ms propagation/processing

  core::QosRequirement qos;
  qos.min_bandwidth_bps = flags.get_double("floor-kbps") * 1000.0;
  qos.max_delay_s = flags.get_double("deadline-ms") / 1000.0;

  const net::NodeId source = 9;
  std::cout << "Flow request from " << topology.router_name(source) << ": deadline "
            << *qos.max_delay_s * 1000.0 << " ms, rate floor " << qos.min_bandwidth_bps / 1000.0
            << " kbit/s\n\nPer-member requirements (WFQ delay -> bandwidth mapping):\n\n";

  util::TablePrinter table(
      {"member", "hops", "required kbit/s", "worst-case delay at that rate (ms)", "feasible"});
  std::optional<std::size_t> best;
  net::Bandwidth best_rate = 0.0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    const net::Path& route = routes.route(source, i);
    const auto rate = core::effective_bandwidth(qos, std::max<std::size_t>(route.hops(), 1),
                                                scheduler);
    std::string rate_text = "-";
    std::string delay_text = "-";
    std::string feasible = "no (deadline unreachable)";
    if (rate.has_value()) {
      rate_text = util::format_fixed(*rate / 1000.0, 1);
      delay_text = util::format_fixed(
          core::wfq_delay_bound(*rate, std::max<std::size_t>(route.hops(), 1), scheduler) *
              1000.0,
          1);
      feasible = "yes";
      if (!best.has_value() || *rate < best_rate) {
        best = i;
        best_rate = *rate;
      }
    }
    table.add_row({topology.router_name(group.member(i)), std::to_string(route.hops()),
                   rate_text, delay_text, feasible});
  }
  table.print(std::cout);

  if (!best.has_value()) {
    std::cout << "\nNo member can meet the deadline — the flow is rejected before any\n"
              << "reservation is attempted.\n";
    return 0;
  }

  // Reserve toward the cheapest feasible member (a delay-aware selection
  // policy would fold this into the weight assignment).
  const net::Path& route = routes.route(source, *best);
  const auto result = rsvp.reserve(route, best_rate);
  std::cout << "\nCheapest feasible member: " << topology.router_name(group.member(*best))
            << " at " << best_rate / 1000.0 << " kbit/s -> reservation "
            << (result.admitted ? "ADMITTED" : "REJECTED") << " (" << result.messages
            << " signaling messages)\n"
            << "\nNote how nearer members need less bandwidth for the same deadline:\n"
            << "delay-QoS gives the anycast destination choice a second lever beyond\n"
            << "load balancing.\n";
  if (result.admitted) {
    rsvp.teardown(route, best_rate);
  }
  return 0;
}
