// Routing protocol substrate demo: where the paper's "fixed routes" come
// from, and what happens to them when links fail.
//
// Section 3 assumes fixed source->member paths "obtained via the existing
// routing protocols". This example runs both implemented protocol families —
// RIP-style distance vector and OSPF-style link state — on the MCI-like
// backbone, shows that they converge to the same shortest routes the central
// RouteTable computes, then breaks a link and compares how many protocol
// rounds each needs to reconverge (the classic DV-vs-LS trade-off).
//
//   $ ./routing_protocols
#include <iostream>

#include "src/net/distance_vector.h"
#include "src/net/link_state.h"
#include "src/net/topologies.h"
#include "src/util/table.h"

int main() {
  using namespace anyqos;

  const net::Topology topo = net::topologies::mci_backbone();
  std::cout << "MCI-like backbone: " << topo.router_count() << " routers, "
            << topo.duplex_link_count() << " duplex links\n\n";

  // 1. Converge both protocols from cold start.
  net::DistanceVectorProtocol dv(topo);
  const std::size_t dv_rounds = dv.converge();
  net::LinkStateProtocol ls(topo);
  const std::size_t ls_rounds = ls.converge();
  std::cout << "Cold-start convergence: distance-vector " << dv_rounds
            << " rounds, link-state flooding " << ls_rounds << " rounds\n";

  // 2. Verify agreement with the centrally computed fixed routes.
  const net::RouteTable central(topo, {0, 4, 8, 12, 16});
  std::size_t checked = 0;
  std::size_t mismatches = 0;
  for (net::NodeId s = 0; s < topo.router_count(); ++s) {
    for (std::size_t i = 0; i < central.destination_count(); ++i) {
      ++checked;
      const net::NodeId member = central.destinations()[i];
      const auto dv_path = dv.path(s, member);
      const auto ls_path = ls.spf_path(s, member);
      if (!dv_path || dv_path->hops() != central.distance(s, i) ||
          !ls_path || ls_path->hops() != central.distance(s, i)) {
        ++mismatches;
      }
    }
  }
  std::cout << "Route agreement vs central shortest paths: " << (checked - mismatches) << "/"
            << checked << " source-member pairs\n\n";

  // 3. Fail the busiest core link and compare reconvergence.
  const net::LinkId broken = *topo.find_link(8, 12);  // CHI-DCA
  std::cout << "Failing link " << topo.router_name(8) << "-" << topo.router_name(12)
            << "...\n";
  dv.fail_duplex_link(broken);
  const std::size_t dv_reconverge = dv.converge();
  ls.fail_duplex_link(broken);
  const std::size_t ls_reconverge = ls.converge();

  util::TablePrinter table({"protocol", "cold start (rounds)", "reconvergence (rounds)",
                            "CHI->DCA detour (hops)"});
  const auto dv_detour = dv.path(8, 12);
  const auto ls_detour = ls.spf_path(8, 12);
  table.add_row({"distance vector (RIP-style)", std::to_string(dv_rounds),
                 std::to_string(dv_reconverge),
                 dv_detour ? std::to_string(dv_detour->hops()) : "-"});
  table.add_row({"link state (OSPF-style)", std::to_string(ls_rounds),
                 std::to_string(ls_reconverge),
                 ls_detour ? std::to_string(ls_detour->hops()) : "-"});
  table.print(std::cout);

  std::cout << "\nBoth protocols reroute CHI->DCA onto a detour; link-state learns the\n"
            << "outage in O(diameter) flooding rounds while distance-vector counts\n"
            << "down neighbour by neighbour. Feed either protocol's paths into the\n"
            << "DAC admission controllers and the whole evaluation runs on routes a\n"
            << "distributed protocol actually computed (distance_vector_routes()).\n";
  return 0;
}
