// Analytic what-if explorer: the Appendix-A machinery as an operator tool.
//
// For a chosen system and arrival rate, prints the reduced-load fixed point's
// view of the network: per-link offered load and blocking, the worst
// bottleneck links, per-source route rejection — and the analytic capacity
// (largest lambda meeting an AP target). No simulation: every number comes
// from the fixed point in milliseconds, which is exactly why the paper
// bothered with the analysis.
//
//   $ ./analysis_explorer --lambda=35 --system=ED --target=0.9
#include <algorithm>
#include <iostream>

#include "src/analysis/capacity.h"
#include "src/sim/experiment.h"
#include "src/util/cli.h"
#include "src/util/strings.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace anyqos;

  util::CliFlags flags("analysis_explorer", "Appendix-A fixed point as a what-if tool");
  flags.add_double("lambda", 35.0, "total arrival rate, requests/s");
  flags.add_string("system", "ED", "ED (= <ED,1>) or SP");
  flags.add_double("target", 0.9, "AP target for the capacity question");
  flags.add_unsigned("top", 8, "bottleneck links to list");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }

  const sim::ExperimentModel experiment = sim::paper_model();
  analysis::AnalyticModel model;
  model.topology = &experiment.topology;
  model.sources = experiment.sources;
  model.members = experiment.group_members;
  model.lambda_total = flags.get_double("lambda");
  model.mean_holding_s = experiment.mean_holding_s;
  model.flow_bandwidth_bps = experiment.flow_bandwidth_bps;
  model.anycast_share = experiment.anycast_share;

  const bool sp = flags.get_string("system") == "SP";
  const analysis::FixedPointOptions options;
  const analysis::ApAnalysis analysis =
      sp ? analysis::analyze_sp(model, options) : analysis::analyze_ed1(model, options);

  std::cout << "System " << (sp ? "SP" : "<ED,1>") << " at lambda = " << model.lambda_total
            << "/s on the MCI-like backbone\n"
            << "Admission probability (analysis): "
            << util::format_fixed(analysis.admission_probability, 6) << "  (fixed point: "
            << analysis.fixed_point.iterations << " iterations, "
            << (analysis.fixed_point.converged ? "converged" : "NOT CONVERGED") << ")\n\n";

  // Bottleneck links by blocking probability.
  std::vector<net::LinkId> links(experiment.topology.link_count());
  for (net::LinkId id = 0; id < links.size(); ++id) {
    links[id] = id;
  }
  std::sort(links.begin(), links.end(), [&](net::LinkId a, net::LinkId b) {
    return analysis.fixed_point.link_blocking[a] > analysis.fixed_point.link_blocking[b];
  });
  util::TablePrinter bottlenecks({"link", "offered erlangs", "blocking"});
  const std::size_t top = std::min<std::size_t>(flags.get_unsigned("top"), links.size());
  for (std::size_t i = 0; i < top; ++i) {
    const net::LinkId id = links[i];
    const net::Arc& arc = experiment.topology.link(id);
    bottlenecks.add_row({experiment.topology.router_name(arc.from) + "->" +
                             experiment.topology.router_name(arc.to),
                         util::format_fixed(analysis.fixed_point.link_reduced_load[id], 1),
                         util::format_fixed(analysis.fixed_point.link_blocking[id], 4)});
  }
  std::cout << "Hottest links (capacity 312 circuits each):\n" << bottlenecks.to_text();

  // Per-source route rejection summary.
  util::TablePrinter per_source({"source", "best route rejection", "worst route rejection"});
  const std::size_t k = model.members.size();
  for (std::size_t s = 0; s < model.sources.size(); ++s) {
    double best = 1.0;
    double worst = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double rejection = analysis.fixed_point.route_rejection[s * k + i];
      best = std::min(best, rejection);
      worst = std::max(worst, rejection);
    }
    per_source.add_row({experiment.topology.router_name(model.sources[s]),
                        util::format_fixed(best, 4), util::format_fixed(worst, 4)});
  }
  std::cout << "\nPer-source fixed-route rejection spread:\n" << per_source.to_text();

  // The capacity question, answered analytically.
  analysis::CapacityQuery query;
  query.system = sp ? analysis::AnalyzedSystem::kSp : analysis::AnalyzedSystem::kEd1;
  query.target_ap = flags.get_double("target");
  const double capacity = analysis::lambda_at_target_ap(model, query);
  std::cout << "\nLargest lambda with AP >= " << query.target_ap << ": "
            << util::format_fixed(capacity, 2) << " requests/s ("
            << util::format_fixed(capacity * model.mean_holding_s, 0)
            << " erlangs of anycast demand)\n";
  return 0;
}
