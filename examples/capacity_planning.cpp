// Capacity planning: what a network operator would do with this library.
//
// Two questions are answered for the paper's backbone:
//   1. Given the 20% anycast reservation, what demand (lambda) can each DAC
//      system carry while accepting at least `--target` of sessions?
//      (swept by simulation)
//   2. For a single bottleneck link, how many 64 kbit/s circuits does the
//      Erlang model say are needed at a given blocking target?
//      (answered analytically — exact Erlang-B dimensioning)
//
//   $ ./capacity_planning --target=0.95
#include <iostream>

#include "src/analysis/erlang.h"
#include "src/sim/experiment.h"
#include "src/util/cli.h"
#include "src/util/strings.h"
#include "src/util/table.h"

namespace {

double carried_lambda(const anyqos::sim::ExperimentModel& model,
                      anyqos::core::SelectionAlgorithm algorithm, bool use_gdi,
                      double target_ap, double warmup, double measure,
                      unsigned long long seed) {
  using namespace anyqos;
  // Bisection over lambda on the (noisy, but monotone-in-expectation) AP
  // curve; coarse tolerance is fine for planning purposes.
  double lo = 1.0;
  double hi = 120.0;
  for (int iteration = 0; iteration < 12; ++iteration) {
    const double mid = 0.5 * (lo + hi);
    sim::SimulationConfig config = model.base_config(mid);
    config.algorithm = algorithm;
    config.use_gdi = use_gdi;
    config.max_tries = 2;
    config.warmup_s = warmup;
    config.measure_s = measure;
    config.seed = seed;
    sim::Simulation simulation(model.topology, config);
    const double ap = simulation.run().admission_probability;
    if (ap >= target_ap) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace anyqos;

  util::CliFlags flags("capacity_planning", "Dimension the anycast service");
  flags.add_double("target", 0.95, "required admission probability");
  flags.add_double("warmup", 1'000.0, "warm-up seconds per probe run");
  flags.add_double("measure", 4'000.0, "measured seconds per probe run");
  flags.add_unsigned("seed", 1, "master RNG seed");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }
  const double target = flags.get_double("target");

  const sim::ExperimentModel model = sim::paper_model();
  std::cout << "Question 1: peak sessions/s each system carries at AP >= " << target
            << "\n(bisection over lambda; paper model, R = 2)\n\n";

  util::TablePrinter table({"system", "max lambda (sessions/s)", "erlangs carried"});
  struct Spec {
    std::string label;
    core::SelectionAlgorithm algorithm;
    bool gdi;
  };
  for (const Spec& spec : std::vector<Spec>{
           {"SP", core::SelectionAlgorithm::kShortestPath, false},
           {"<ED,2>", core::SelectionAlgorithm::kEvenDistribution, false},
           {"<WD/D+H,2>", core::SelectionAlgorithm::kDistanceHistory, false},
           {"<WD/D+B,2>", core::SelectionAlgorithm::kDistanceBandwidth, false},
           {"GDI", core::SelectionAlgorithm::kEvenDistribution, true},
       }) {
    const double lambda =
        carried_lambda(model, spec.algorithm, spec.gdi, target, flags.get_double("warmup"),
                       flags.get_double("measure"), flags.get_unsigned("seed"));
    table.add_row({spec.label, util::format_fixed(lambda, 1),
                   util::format_fixed(lambda * model.mean_holding_s, 0)});
  }
  table.print(std::cout);

  std::cout << "\nQuestion 2: single-link dimensioning (exact Erlang-B)\n\n";
  util::TablePrinter erl({"offered erlangs", "circuits @1% blocking", "circuits @0.1%",
                          "Mbit/s @1% (64k flows)"});
  for (const double erlangs : {50.0, 100.0, 200.0, 312.0, 500.0}) {
    const std::size_t c1 = analysis::dimension_capacity(erlangs, 0.01);
    const std::size_t c01 = analysis::dimension_capacity(erlangs, 0.001);
    erl.add_row({util::format_fixed(erlangs, 0), std::to_string(c1), std::to_string(c01),
                 util::format_fixed(static_cast<double>(c1) * 64'000.0 / 1.0e6, 1)});
  }
  erl.print(std::cout);
  std::cout << "\nThe 312-circuit row is the paper's per-link anycast capacity: at 1%\n"
            << "blocking a single link carries ~280 erlangs, which is why the network\n"
            << "saturates between lambda = 20 and 50 in the paper's figures.\n";
  return 0;
}
