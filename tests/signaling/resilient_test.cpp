#include "src/signaling/resilient.h"

#include <gtest/gtest.h>

#include "src/net/topologies.h"

namespace anyqos::signaling {
namespace {

struct Fixture {
  net::Topology topo = net::topologies::line(4);
  net::BandwidthLedger ledger{topo, 0.2};
  MessageCounter counter;
  des::Simulator simulator;
  des::RandomStream rng{2024};

  net::Path route3() {
    net::Path p;
    p.source = 0;
    p.destination = 3;
    p.links = {*topo.find_link(0, 1), *topo.find_link(1, 2), *topo.find_link(2, 3)};
    return p;
  }

  net::Path route1() {
    net::Path p;
    p.source = 0;
    p.destination = 1;
    p.links = {*topo.find_link(0, 1)};
    return p;
  }
};

ResilienceOptions perfect_network() {
  ResilienceOptions options;  // FaultPlane defaults are lossless
  options.backoff_jitter = 0.0;
  return options;
}

TEST(ResilientProtocol, PerfectNetworkMatchesTheBaseProtocol) {
  Fixture f;
  ResilientReservationProtocol rsvp(f.ledger, f.counter, f.simulator, f.rng,
                                    perfect_network());
  const ReservationResult result = rsvp.reserve(f.route3(), 64'000.0);
  EXPECT_TRUE(result.admitted);
  EXPECT_EQ(result.retransmits, 0u);
  EXPECT_EQ(result.messages, 6u);  // PATH 3 hops down + RESV 3 hops back
  EXPECT_EQ(f.counter.by_kind(MessageKind::kPath), 3u);
  EXPECT_EQ(f.counter.by_kind(MessageKind::kResv), 3u);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 3.0 * 64'000.0);

  rsvp.teardown(f.route3(), 64'000.0);
  EXPECT_EQ(f.counter.by_kind(MessageKind::kTear), 3u);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);

  const ResilienceStats stats = rsvp.stats();
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_EQ(stats.retransmits, 0u);
  EXPECT_EQ(stats.messages_lost, 0u);
  EXPECT_EQ(stats.hops_counted, f.counter.total());
  EXPECT_DOUBLE_EQ(rsvp.consume_pending_wait(), 0.0);
}

TEST(ResilientProtocol, TotalLossExhaustsTheRetransmitBudget) {
  Fixture f;
  ResilienceOptions options = perfect_network();
  options.faults.loss_probability = 1.0;
  options.max_retransmits = 3;
  ResilientReservationProtocol rsvp(f.ledger, f.counter, f.simulator, f.rng, options);
  const ReservationResult result = rsvp.reserve(f.route3(), 64'000.0);
  EXPECT_FALSE(result.admitted);
  EXPECT_EQ(result.retransmits, 3u);
  // Every PATH dies on its first hop: 4 sends x 1 charged hop each.
  EXPECT_EQ(result.messages, 4u);
  EXPECT_EQ(f.counter.by_kind(MessageKind::kPath), 4u);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);

  const ResilienceStats stats = rsvp.stats();
  EXPECT_EQ(stats.timeouts, 4u);
  EXPECT_EQ(stats.retransmits, 3u);
  EXPECT_EQ(stats.give_ups, 1u);
  EXPECT_EQ(stats.messages_lost, 4u);
  EXPECT_EQ(stats.hops_counted, f.counter.total());
}

TEST(ResilientProtocol, BackoffAccruesExponentialWait) {
  Fixture f;
  ResilienceOptions options = perfect_network();
  options.faults.loss_probability = 1.0;
  options.retransmit_timeout_s = 1.0;
  options.backoff_factor = 2.0;
  options.backoff_jitter = 0.0;
  options.max_retransmits = 3;
  ResilientReservationProtocol rsvp(f.ledger, f.counter, f.simulator, f.rng, options);
  (void)rsvp.reserve(f.route3(), 64'000.0);
  // Timeouts 1 + 2 + 4 + 8 for the original send and three retransmits.
  EXPECT_DOUBLE_EQ(rsvp.consume_pending_wait(), 15.0);
  EXPECT_DOUBLE_EQ(rsvp.consume_pending_wait(), 0.0);  // drained
}

TEST(ResilientProtocol, JitterBoundsTheBackoffWait) {
  Fixture f;
  ResilienceOptions options = perfect_network();
  options.faults.loss_probability = 1.0;
  options.retransmit_timeout_s = 1.0;
  options.backoff_factor = 2.0;
  options.backoff_jitter = 0.25;
  options.max_retransmits = 2;
  ResilientReservationProtocol rsvp(f.ledger, f.counter, f.simulator, f.rng, options);
  (void)rsvp.reserve(f.route3(), 64'000.0);
  const double wait = rsvp.consume_pending_wait();
  // Base 1 + 2 + 4 = 7, each inflated by [1, 1.25).
  EXPECT_GE(wait, 7.0);
  EXPECT_LT(wait, 7.0 * 1.25);
}

TEST(ResilientProtocol, LostResvOrphansTheReservationUntilSoftStateExpiry) {
  Fixture f;
  // Kill the RESV deterministically: its upstream hop (1 -> 0) is down. The
  // PATH (0 -> 1) is unaffected, so every send installs a reservation whose
  // confirmation then dies — an orphan per send.
  f.ledger.fail_link(f.topo.reverse_link(*f.topo.find_link(0, 1)));
  ResilienceOptions options = perfect_network();
  options.max_retransmits = 2;
  options.orphan_hold_s = 30.0;
  ResilientReservationProtocol rsvp(f.ledger, f.counter, f.simulator, f.rng, options);
  const ReservationResult result = rsvp.reserve(f.route1(), 64'000.0);
  EXPECT_FALSE(result.admitted);
  EXPECT_EQ(rsvp.pending_orphans(), 3u);  // one per send
  EXPECT_DOUBLE_EQ(rsvp.orphaned_bandwidth_bps(), 3.0 * 64'000.0);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 3.0 * 64'000.0);

  const ResilienceStats mid = rsvp.stats();
  EXPECT_EQ(mid.resv_orphans, 3u);
  EXPECT_EQ(mid.messages_killed_by_outage, 3u);
  EXPECT_EQ(mid.give_ups, 1u);

  // Soft-state expiry reclaims all three, silently (no TEAR).
  f.simulator.run_until(31.0);
  EXPECT_EQ(rsvp.pending_orphans(), 0u);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);
  EXPECT_EQ(f.counter.by_kind(MessageKind::kTear), 0u);
  const ResilienceStats stats = rsvp.stats();
  EXPECT_EQ(stats.orphans_reclaimed, 3u);
  EXPECT_DOUBLE_EQ(stats.orphaned_bandwidth_reclaimed_bps, 3.0 * 64'000.0);
  EXPECT_EQ(stats.hops_counted, f.counter.total());
}

TEST(ResilientProtocol, LostTearLeaksUntilReclaimed) {
  Fixture f;
  ResilienceOptions options = perfect_network();
  options.orphan_hold_s = 10.0;
  ResilientReservationProtocol rsvp(f.ledger, f.counter, f.simulator, f.rng, options);
  ASSERT_TRUE(rsvp.reserve(f.route3(), 64'000.0).admitted);

  // Now lose every message: the TEAR dies in flight and the bandwidth leaks.
  ResilienceOptions lossy = options;
  lossy.faults.loss_probability = 1.0;
  ResilientReservationProtocol lossy_rsvp(f.ledger, f.counter, f.simulator, f.rng, lossy);
  lossy_rsvp.teardown(f.route3(), 64'000.0);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 3.0 * 64'000.0);  // still held
  EXPECT_EQ(lossy_rsvp.pending_orphans(), 1u);
  EXPECT_EQ(lossy_rsvp.stats().tear_orphans, 1u);

  f.simulator.run_until(11.0);
  EXPECT_EQ(lossy_rsvp.pending_orphans(), 0u);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);
  EXPECT_EQ(lossy_rsvp.stats().orphans_reclaimed, 1u);
}

TEST(ResilientProtocol, LinkFailureReclaimsOrphansCrossingIt) {
  Fixture f;
  const net::LinkId forward = *f.topo.find_link(0, 1);
  f.ledger.fail_link(f.topo.reverse_link(forward));
  ResilienceOptions options = perfect_network();
  options.max_retransmits = 0;
  ResilientReservationProtocol rsvp(f.ledger, f.counter, f.simulator, f.rng, options);
  EXPECT_FALSE(rsvp.reserve(f.route1(), 64'000.0).admitted);
  ASSERT_EQ(rsvp.pending_orphans(), 1u);

  // The forward link is about to fail; its orphan must be reclaimed first so
  // the ledger's fail_link precondition (nothing reserved) holds.
  rsvp.on_link_failing(forward);
  EXPECT_EQ(rsvp.pending_orphans(), 0u);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);
  f.ledger.fail_link(forward);  // would throw if bandwidth were still held

  // The cancelled timer must not fire a second reclaim.
  f.simulator.run_until(1'000.0);
  EXPECT_EQ(rsvp.stats().orphans_reclaimed, 1u);
}

TEST(ResilientProtocol, ReclaimPendingRepairsAllLeaks) {
  Fixture f;
  f.ledger.fail_link(f.topo.reverse_link(*f.topo.find_link(0, 1)));
  ResilienceOptions options = perfect_network();
  options.max_retransmits = 1;
  ResilientReservationProtocol rsvp(f.ledger, f.counter, f.simulator, f.rng, options);
  EXPECT_FALSE(rsvp.reserve(f.route1(), 64'000.0).admitted);
  ASSERT_EQ(rsvp.pending_orphans(), 2u);
  EXPECT_EQ(rsvp.reclaim_pending(), 2u);
  EXPECT_EQ(rsvp.pending_orphans(), 0u);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);
  f.simulator.run_until(1'000.0);  // cancelled timers stay cancelled
  EXPECT_EQ(rsvp.stats().orphans_reclaimed, 2u);
}

TEST(ResilientProtocol, BlockedRouteStillRejectsDefinitively) {
  Fixture f;
  // Saturate the middle link so the PATH is blocked there; with a perfect
  // network the PATH_ERR always returns and no retransmission happens.
  const net::LinkId middle = *f.topo.find_link(1, 2);
  net::Path hog;
  hog.source = 1;
  hog.destination = 2;
  hog.links = {middle};
  ASSERT_TRUE(f.ledger.reserve(hog, f.ledger.capacity(middle)));
  ResilientReservationProtocol rsvp(f.ledger, f.counter, f.simulator, f.rng,
                                    perfect_network());
  const ReservationResult result = rsvp.reserve(f.route3(), 64'000.0);
  EXPECT_FALSE(result.admitted);
  EXPECT_EQ(result.retransmits, 0u);
  ASSERT_TRUE(result.blocking_link.has_value());
  EXPECT_EQ(*result.blocking_link, middle);
  // PATH walked 2 hops (blocked on the 2nd), PATH_ERR returned over 2 hops.
  EXPECT_EQ(result.messages, 4u);
  EXPECT_EQ(f.counter.by_kind(MessageKind::kPathErr), 2u);
  EXPECT_EQ(rsvp.stats().give_ups, 0u);
}

TEST(ResilientProtocol, ForcedTeardownIsMirroredInHopsCounted) {
  // force_teardown is non-virtual (it must always release immediately), but
  // its TEAR hops still have to appear in the reconciliation mirror.
  Fixture f;
  ResilientReservationProtocol rsvp(f.ledger, f.counter, f.simulator, f.rng,
                                    perfect_network());
  ASSERT_TRUE(rsvp.reserve(f.route3(), 64'000.0).admitted);
  rsvp.force_teardown(f.route3(), 64'000.0);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);
  EXPECT_EQ(f.counter.by_kind(MessageKind::kTear), 3u);
  EXPECT_EQ(rsvp.stats().hops_counted, f.counter.total());
}

TEST(ResilientProtocol, HopsCountedReconcilesWithTheSharedCounterUnderLoss) {
  Fixture f;
  ResilienceOptions options = perfect_network();
  options.faults.loss_probability = 0.2;
  options.max_retransmits = 4;
  ResilientReservationProtocol rsvp(f.ledger, f.counter, f.simulator, f.rng, options);
  for (int i = 0; i < 200; ++i) {
    const ReservationResult result = rsvp.reserve(f.route3(), 1'000.0);
    if (result.admitted) {
      rsvp.teardown(f.route3(), 1'000.0);
    }
  }
  f.simulator.run();  // let orphan reclaims finish
  // Nothing else shares the counter, so the mirror must match exactly.
  EXPECT_EQ(rsvp.stats().hops_counted, f.counter.total());
  EXPECT_GT(rsvp.stats().retransmits, 0u);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);
  EXPECT_EQ(rsvp.pending_orphans(), 0u);
}

TEST(ResilientProtocol, OptionsValidated) {
  Fixture f;
  ResilienceOptions bad = perfect_network();
  bad.retransmit_timeout_s = 0.0;
  EXPECT_THROW(
      ResilientReservationProtocol(f.ledger, f.counter, f.simulator, f.rng, bad),
      std::invalid_argument);
  bad = perfect_network();
  bad.backoff_factor = 0.5;
  EXPECT_THROW(
      ResilientReservationProtocol(f.ledger, f.counter, f.simulator, f.rng, bad),
      std::invalid_argument);
  bad = perfect_network();
  bad.backoff_jitter = -0.1;
  EXPECT_THROW(
      ResilientReservationProtocol(f.ledger, f.counter, f.simulator, f.rng, bad),
      std::invalid_argument);
  bad = perfect_network();
  bad.orphan_hold_s = 0.0;
  EXPECT_THROW(
      ResilientReservationProtocol(f.ledger, f.counter, f.simulator, f.rng, bad),
      std::invalid_argument);
  bad = perfect_network();
  bad.faults.loss_probability = 2.0;
  EXPECT_THROW(
      ResilientReservationProtocol(f.ledger, f.counter, f.simulator, f.rng, bad),
      std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::signaling
