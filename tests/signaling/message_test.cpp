#include "src/signaling/message.h"

#include <gtest/gtest.h>

namespace anyqos::signaling {
namespace {

TEST(MessageCounter, StartsAtZero) {
  const MessageCounter counter;
  EXPECT_EQ(counter.total(), 0u);
  EXPECT_EQ(counter.setup_total(), 0u);
  EXPECT_EQ(counter.by_kind(MessageKind::kPath), 0u);
}

TEST(MessageCounter, CountsPerKind) {
  MessageCounter counter;
  counter.count(MessageKind::kPath, 3);
  counter.count(MessageKind::kResv, 3);
  counter.count(MessageKind::kPath, 2);
  EXPECT_EQ(counter.by_kind(MessageKind::kPath), 5u);
  EXPECT_EQ(counter.by_kind(MessageKind::kResv), 3u);
  EXPECT_EQ(counter.total(), 8u);
}

TEST(MessageCounter, SetupTotalExcludesTeardown) {
  MessageCounter counter;
  counter.count(MessageKind::kPath, 4);
  counter.count(MessageKind::kTear, 4);
  counter.count(MessageKind::kProbe, 2);
  EXPECT_EQ(counter.total(), 10u);
  EXPECT_EQ(counter.setup_total(), 6u);
}

TEST(MessageCounter, ResetClears) {
  MessageCounter counter;
  counter.count(MessageKind::kResv, 9);
  counter.reset();
  EXPECT_EQ(counter.total(), 0u);
}

TEST(MessageCounter, MergeAddsTallies) {
  MessageCounter a;
  MessageCounter b;
  a.count(MessageKind::kPath, 1);
  b.count(MessageKind::kPath, 2);
  b.count(MessageKind::kProbeReply, 5);
  a.merge(b);
  EXPECT_EQ(a.by_kind(MessageKind::kPath), 3u);
  EXPECT_EQ(a.by_kind(MessageKind::kProbeReply), 5u);
}

TEST(MessageKindNames, AllDistinct) {
  EXPECT_EQ(to_string(MessageKind::kPath), "PATH");
  EXPECT_EQ(to_string(MessageKind::kResv), "RESV");
  EXPECT_EQ(to_string(MessageKind::kPathErr), "PATH_ERR");
  EXPECT_EQ(to_string(MessageKind::kTear), "TEAR");
  EXPECT_EQ(to_string(MessageKind::kProbe), "PROBE");
  EXPECT_EQ(to_string(MessageKind::kProbeReply), "PROBE_REPLY");
}

}  // namespace
}  // namespace anyqos::signaling
