#include "src/signaling/path_repair.h"

#include <gtest/gtest.h>

#include "src/net/topology.h"

namespace anyqos::signaling {
namespace {

struct Fixture {
  net::Topology topo;
  net::Path path;  // 0 -> 1 -> 2 -> 3

  Fixture() {
    for (int i = 0; i < 4; ++i) {
      topo.add_router();
    }
    topo.add_duplex_link(0, 1, 100.0e6);
    topo.add_duplex_link(1, 2, 100.0e6);
    topo.add_duplex_link(2, 3, 100.0e6);
    path.source = 0;
    path.destination = 3;
    path.links = {*topo.find_link(0, 1), *topo.find_link(1, 2), *topo.find_link(2, 3)};
  }

  BrokenFlow broken(std::uint64_t flow_id, net::LinkId dead) const {
    BrokenFlow flow;
    flow.flow_id = flow_id;
    flow.request_id = flow_id;
    flow.source = 0;
    flow.destination_index = 0;
    flow.bandwidth_bps = 64'000.0;
    for (const net::LinkId link : path.links) {
      if (link != dead) {
        flow.remnant.links.push_back(link);
      }
    }
    return flow;
  }
};

TEST(PathRepair, AddNarrowsTheHeldReservationToTheRemnant) {
  Fixture f;
  net::BandwidthLedger ledger(f.topo, 0.2);
  MessageCounter counter;
  ReservationProtocol rsvp(ledger, counter);
  ASSERT_TRUE(rsvp.reserve(f.path, 64'000.0).admitted);
  const net::LinkId dead = f.path.links[1];
  PathRepair repair(rsvp);
  repair.add(f.broken(7, dead), f.path);
  // The dead link's share is released (one TEAR traversal); survivors held.
  EXPECT_DOUBLE_EQ(ledger.available(dead), 20.0e6);
  EXPECT_DOUBLE_EQ(ledger.available(f.path.links[0]), 20.0e6 - 64'000.0);
  EXPECT_DOUBLE_EQ(ledger.available(f.path.links[2]), 20.0e6 - 64'000.0);
  EXPECT_EQ(counter.by_kind(MessageKind::kTear), 1u);
  EXPECT_TRUE(repair.contains(7));
  EXPECT_EQ(repair.pending(), 1u);
  EXPECT_EQ(repair.stats().broken, 1u);
  EXPECT_EQ(repair.stats().links_released, 1u);
}

TEST(PathRepair, OnLinkFailingNarrowsEveryQueuedRemnant) {
  Fixture f;
  net::BandwidthLedger ledger(f.topo, 0.2);
  MessageCounter counter;
  ReservationProtocol rsvp(ledger, counter);
  ASSERT_TRUE(rsvp.reserve(f.path, 64'000.0).admitted);
  ASSERT_TRUE(rsvp.reserve(f.path, 64'000.0).admitted);
  PathRepair repair(rsvp);
  const net::LinkId first_dead = f.path.links[1];
  repair.add(f.broken(1, first_dead), f.path);
  repair.add(f.broken(2, first_dead), f.path);
  // A second link dies while both flows wait: each remnant sheds it.
  repair.on_link_failing(f.path.links[0]);
  EXPECT_DOUBLE_EQ(ledger.available(f.path.links[0]), 20.0e6);
  EXPECT_DOUBLE_EQ(ledger.available(f.path.links[2]), 20.0e6 - 2 * 64'000.0);
  EXPECT_EQ(repair.stats().links_released, 4u);
  EXPECT_EQ(repair.broken(1).remnant.hops(), 1u);
  // A link no remnant crosses is a no-op.
  repair.on_link_failing(f.path.links[1]);
  EXPECT_EQ(repair.stats().links_released, 4u);
}

TEST(PathRepair, ResolveReleasesTheRemnantAndTalliesTheOutcome) {
  Fixture f;
  net::BandwidthLedger ledger(f.topo, 0.2);
  MessageCounter counter;
  ReservationProtocol rsvp(ledger, counter);
  ASSERT_TRUE(rsvp.reserve(f.path, 64'000.0).admitted);
  ASSERT_TRUE(rsvp.reserve(f.path, 64'000.0).admitted);
  ASSERT_TRUE(rsvp.reserve(f.path, 64'000.0).admitted);
  PathRepair repair(rsvp);
  const net::LinkId dead = f.path.links[1];
  repair.add(f.broken(1, dead), f.path);
  repair.add(f.broken(2, dead), f.path);
  repair.add(f.broken(3, dead), f.path);
  const BrokenFlow repaired = repair.resolve(1, PathRepair::Resolution::kRepaired);
  EXPECT_EQ(repaired.flow_id, 1u);
  const BrokenFlow dropped = repair.resolve(2, PathRepair::Resolution::kUnrepairable);
  EXPECT_EQ(dropped.flow_id, 2u);
  const BrokenFlow expired = repair.resolve(3, PathRepair::Resolution::kExpired);
  EXPECT_EQ(expired.flow_id, 3u);
  // Every remnant released: the ledger is fully idle again.
  EXPECT_DOUBLE_EQ(ledger.total_reserved(), 0.0);
  EXPECT_EQ(repair.pending(), 0u);
  EXPECT_EQ(repair.stats().repaired, 1u);
  EXPECT_EQ(repair.stats().unrepairable, 1u);
  EXPECT_EQ(repair.stats().expired_in_queue, 1u);
  // None of these held an empty remnant, so no break-before-make.
  EXPECT_EQ(repair.stats().break_before_make, 0u);
  EXPECT_THROW(repair.resolve(1, PathRepair::Resolution::kRepaired),
               std::invalid_argument);
}

TEST(PathRepair, SurrenderRemnantFreesCapacityButKeepsTheFlowQueued) {
  Fixture f;
  net::BandwidthLedger ledger(f.topo, 0.2);
  MessageCounter counter;
  ReservationProtocol rsvp(ledger, counter);
  ASSERT_TRUE(rsvp.reserve(f.path, 64'000.0).admitted);
  PathRepair repair(rsvp);
  repair.add(f.broken(9, f.path.links[1]), f.path);
  repair.surrender_remnant(9);
  EXPECT_DOUBLE_EQ(ledger.total_reserved(), 0.0);
  EXPECT_TRUE(repair.contains(9));
  EXPECT_TRUE(repair.broken(9).remnant.links.empty());
  EXPECT_EQ(repair.stats().links_released, 3u);  // 1 on add + 2 surrendered
  // Idempotent on an empty remnant.
  repair.surrender_remnant(9);
  EXPECT_EQ(repair.stats().links_released, 3u);
  // Resolving kRepaired with nothing held is the break-before-make case.
  (void)repair.resolve(9, PathRepair::Resolution::kRepaired);
  EXPECT_EQ(repair.stats().break_before_make, 1u);
}

TEST(PathRepair, PendingIdsAreAscendingAndAddRejectsDuplicates) {
  Fixture f;
  net::BandwidthLedger ledger(f.topo, 0.2);
  MessageCounter counter;
  ReservationProtocol rsvp(ledger, counter);
  ASSERT_TRUE(rsvp.reserve(f.path, 64'000.0).admitted);
  ASSERT_TRUE(rsvp.reserve(f.path, 64'000.0).admitted);
  PathRepair repair(rsvp);
  const net::LinkId dead = f.path.links[0];
  repair.add(f.broken(42, dead), f.path);
  repair.add(f.broken(7, dead), f.path);
  const std::vector<std::uint64_t> ids = repair.pending_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 7u);   // flow-id order, not insertion order: the
  EXPECT_EQ(ids[1], 42u);  // deterministic repair-pass sequence
  ASSERT_TRUE(rsvp.reserve(f.path, 64'000.0).admitted);
  EXPECT_THROW(repair.add(f.broken(7, dead), f.path), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::signaling
