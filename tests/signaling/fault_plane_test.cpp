#include "src/signaling/fault_plane.h"

#include <gtest/gtest.h>

#include "src/net/topologies.h"

namespace anyqos::signaling {
namespace {

struct Fixture {
  net::Topology topo = net::topologies::line(3);
  net::BandwidthLedger ledger{topo, 0.2};
  des::RandomStream rng{99};
  net::LinkId link01 = *topo.find_link(0, 1);
  net::LinkId link12 = *topo.find_link(1, 2);
};

TEST(FaultPlane, PerfectPlaneDeliversEverything) {
  Fixture f;
  FaultPlane plane(f.ledger, f.rng, {});
  EXPECT_TRUE(plane.perfect());
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_EQ(plane.traverse(f.link01), HopOutcome::kDelivered);
  }
  EXPECT_EQ(plane.messages_lost(), 0u);
  EXPECT_EQ(plane.messages_killed_by_outage(), 0u);
  EXPECT_DOUBLE_EQ(plane.delay_injected_s(), 0.0);
}

TEST(FaultPlane, CertainLossDropsEverything) {
  Fixture f;
  FaultPlaneOptions options;
  options.loss_probability = 1.0;
  FaultPlane plane(f.ledger, f.rng, options);
  EXPECT_FALSE(plane.perfect());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(plane.traverse(f.link01), HopOutcome::kLost);
  }
  EXPECT_EQ(plane.messages_lost(), 100u);
}

TEST(FaultPlane, LossRateIsRoughlyHonoured) {
  Fixture f;
  FaultPlaneOptions options;
  options.loss_probability = 0.3;
  FaultPlane plane(f.ledger, f.rng, options);
  int lost = 0;
  const int trials = 20'000;
  for (int i = 0; i < trials; ++i) {
    if (plane.traverse(f.link01) == HopOutcome::kLost) {
      ++lost;
    }
  }
  const double rate = static_cast<double>(lost) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
  EXPECT_EQ(plane.messages_lost(), static_cast<std::uint64_t>(lost));
}

TEST(FaultPlane, OutageKillsBeforeLossIsEvenRolled) {
  Fixture f;
  FaultPlaneOptions options;
  options.loss_probability = 0.5;
  FaultPlane plane(f.ledger, f.rng, options);
  f.ledger.fail_link(f.link01);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(plane.traverse(f.link01), HopOutcome::kLinkDown);
  }
  EXPECT_EQ(plane.messages_killed_by_outage(), 50u);
  EXPECT_EQ(plane.messages_lost(), 0u);  // the RNG never consulted for loss
  // The other link still behaves normally.
  f.ledger.restore_link(f.link01);
  EXPECT_NE(plane.traverse(f.link12), HopOutcome::kLinkDown);
}

TEST(FaultPlane, DeterministicDelayAccrues) {
  Fixture f;
  FaultPlaneOptions options;
  options.hop_delay_s = 0.01;
  FaultPlane plane(f.ledger, f.rng, options);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(plane.traverse(f.link01), HopOutcome::kDelivered);
  }
  EXPECT_DOUBLE_EQ(plane.delay_injected_s(), 0.1);
}

TEST(FaultPlane, JitterStaysWithinItsBound) {
  Fixture f;
  FaultPlaneOptions options;
  options.hop_delay_s = 0.01;
  options.hop_jitter_s = 0.005;
  FaultPlane plane(f.ledger, f.rng, options);
  double previous = 0.0;
  for (int i = 1; i <= 1'000; ++i) {
    EXPECT_EQ(plane.traverse(f.link01), HopOutcome::kDelivered);
    const double injected = plane.delay_injected_s() - previous;
    previous = plane.delay_injected_s();
    EXPECT_GE(injected, 0.01);
    EXPECT_LT(injected, 0.015);
  }
}

TEST(FaultPlane, OptionsValidated) {
  Fixture f;
  FaultPlaneOptions bad;
  bad.loss_probability = -0.1;
  EXPECT_THROW(FaultPlane(f.ledger, f.rng, bad), std::invalid_argument);
  bad.loss_probability = 1.1;
  EXPECT_THROW(FaultPlane(f.ledger, f.rng, bad), std::invalid_argument);
  bad = FaultPlaneOptions{};
  bad.hop_delay_s = -1.0;
  EXPECT_THROW(FaultPlane(f.ledger, f.rng, bad), std::invalid_argument);
  bad = FaultPlaneOptions{};
  bad.hop_jitter_s = -0.5;
  EXPECT_THROW(FaultPlane(f.ledger, f.rng, bad), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::signaling
