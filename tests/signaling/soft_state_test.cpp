#include "src/signaling/soft_state.h"

#include <gtest/gtest.h>

#include "src/net/topologies.h"
#include "src/signaling/rsvp.h"

namespace anyqos::signaling {
namespace {

struct Fixture {
  net::Topology topo = net::topologies::line(4);
  net::BandwidthLedger ledger{topo, 0.2};
  MessageCounter counter;
  ReservationProtocol rsvp{ledger, counter};
  des::Simulator simulator;
  des::RandomStream rng{77};

  net::Path route() {
    net::Path p;
    p.source = 0;
    p.destination = 3;
    p.links = {*topo.find_link(0, 1), *topo.find_link(1, 2), *topo.find_link(2, 3)};
    return p;
  }

  SessionId install(SoftStateManager& manager, SoftStateManager::ExpiryCallback cb = {}) {
    const net::Path r = route();
    EXPECT_TRUE(rsvp.reserve(r, 64'000.0).admitted);
    return manager.install(r, 64'000.0, std::move(cb));
  }
};

SoftStateOptions lossless() {
  SoftStateOptions options;
  options.refresh_interval_s = 30.0;
  options.lifetime_refreshes = 3;
  options.refresh_loss_probability = 0.0;
  return options;
}

TEST(SoftState, RefreshesChargeMessagesPeriodically) {
  Fixture f;
  SoftStateManager manager(f.simulator, f.ledger, f.counter, f.rng, lossless());
  (void)f.install(manager);
  const auto path_before = f.counter.by_kind(MessageKind::kPath);
  f.simulator.run_until(301.0);  // 10 refresh periods
  // Each refresh re-walks the 3-hop route with PATH and RESV.
  EXPECT_EQ(f.counter.by_kind(MessageKind::kPath) - path_before, 30u);
  EXPECT_EQ(manager.session_count(), 1u);
  EXPECT_EQ(manager.expired_count(), 0u);
}

TEST(SoftState, RemoveReleasesAndStopsRefreshing) {
  Fixture f;
  SoftStateManager manager(f.simulator, f.ledger, f.counter, f.rng, lossless());
  const SessionId id = f.install(manager);
  f.simulator.run_until(100.0);
  manager.remove(id);
  EXPECT_FALSE(manager.alive(id));
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);
  const auto messages_after_remove = f.counter.total();
  f.simulator.run_until(1'000.0);
  EXPECT_EQ(f.counter.total(), messages_after_remove);  // no more refreshes
  EXPECT_THROW(manager.remove(id), std::invalid_argument);
}

TEST(SoftState, LostRefreshesExpireTheSession) {
  Fixture f;
  SoftStateOptions options = lossless();
  options.refresh_loss_probability = 0.999999;  // effectively always lost
  SoftStateManager manager(f.simulator, f.ledger, f.counter, f.rng, options);
  bool expired = false;
  const SessionId id = f.install(manager, [&](SessionId) { expired = true; });
  // 3 consecutive losses at t = 30, 60, 90 expire the session.
  f.simulator.run_until(91.0);
  EXPECT_TRUE(expired);
  EXPECT_FALSE(manager.alive(id));
  EXPECT_EQ(manager.expired_count(), 1u);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);
  // Expiry is a timeout, not a teardown — no TEAR messages.
  EXPECT_EQ(f.counter.by_kind(MessageKind::kTear), 0u);
}

TEST(SoftState, OccasionalLossIsAbsorbed) {
  // With K=3 and moderate loss, sporadic misses never accumulate to expiry.
  Fixture f;
  SoftStateOptions options = lossless();
  options.refresh_loss_probability = 0.2;
  SoftStateManager manager(f.simulator, f.ledger, f.counter, f.rng, options);
  (void)f.install(manager);
  f.simulator.run_until(30.0 * 200.0);  // 200 refresh opportunities
  // P(3 consecutive losses somewhere in 200 trials) ≈ 1 - (1-0.008)^198 ≈ 0.8
  // ... so this COULD expire; assert only the bookkeeping stays consistent.
  if (manager.session_count() == 1) {
    EXPECT_EQ(manager.expired_count(), 0u);
    EXPECT_GT(f.ledger.total_reserved(), 0.0);
  } else {
    EXPECT_EQ(manager.expired_count(), 1u);
    EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);
  }
}

TEST(SoftState, SuccessfulRefreshResetsMissCounter) {
  // Deterministic alternating loss: with K = 3, loss-success alternation
  // never expires. Drive loss pattern via a crafted probability: use 0.5 and
  // a fixed seed — instead verify over many periods the session usually
  // survives far longer than the 3-consecutive bound would suggest if
  // misses accumulated without reset.
  Fixture f;
  SoftStateOptions options = lossless();
  options.refresh_loss_probability = 0.4;
  options.lifetime_refreshes = 5;
  SoftStateManager manager(f.simulator, f.ledger, f.counter, f.rng, options);
  (void)f.install(manager);
  // Without reset, 5 total misses would occur within ~13 periods whp. With
  // reset, P(5 consecutive) = 0.4^5 ≈ 1% per window; 30 periods survive whp.
  f.simulator.run_until(30.0 * 30.0);
  EXPECT_EQ(manager.session_count(), 1u);
}

TEST(SoftState, MultipleSessionsIndependent) {
  Fixture f;
  SoftStateManager manager(f.simulator, f.ledger, f.counter, f.rng, lossless());
  const SessionId a = f.install(manager);
  const SessionId b = f.install(manager);
  EXPECT_EQ(manager.session_count(), 2u);
  f.simulator.run_until(50.0);
  manager.remove(a);
  EXPECT_FALSE(manager.alive(a));
  EXPECT_TRUE(manager.alive(b));
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 3.0 * 64'000.0);  // b holds 3 links
}

TEST(SoftState, RemoveOfExpiredSessionInsideItsOwnExpiryCallbackThrows) {
  // The expiry callback sees a session that is already gone: the manager
  // erases state *before* notifying, so a confused owner calling remove(id)
  // from inside the callback gets the documented invalid_argument, not a
  // double release or a crash.
  Fixture f;
  SoftStateOptions options = lossless();
  options.refresh_loss_probability = 0.999999;
  SoftStateManager manager(f.simulator, f.ledger, f.counter, f.rng, options);
  bool callback_ran = false;
  (void)f.install(manager, [&](SessionId id) {
    callback_ran = true;
    EXPECT_FALSE(manager.alive(id));
    EXPECT_THROW(manager.remove(id), std::invalid_argument);
  });
  f.simulator.run_until(91.0);
  EXPECT_TRUE(callback_ran);
  EXPECT_EQ(manager.session_count(), 0u);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);
}

TEST(SoftState, RemoveOfAnotherSessionInsideExpiryCallbackWorks) {
  // A owns both sessions; when the first expires it tears the second down
  // from inside the callback. The manager must tolerate map mutation while
  // an expiry is being delivered.
  Fixture f;
  SoftStateOptions options = lossless();
  options.refresh_loss_probability = 0.999999;
  SoftStateManager manager(f.simulator, f.ledger, f.counter, f.rng, options);
  SessionId second = 0;
  (void)f.install(manager, [&](SessionId) {
    if (manager.alive(second)) {
      manager.remove(second);
    }
  });
  second = f.install(manager);
  f.simulator.run_until(91.0);
  EXPECT_EQ(manager.session_count(), 0u);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);
}

TEST(SoftState, InstallInsideExpiryCallbackIsSafe) {
  // Re-establishment: the owner reacts to an expiry by reserving and
  // installing a replacement session from inside the callback.
  Fixture f;
  SoftStateOptions options = lossless();
  options.refresh_loss_probability = 0.999999;
  SoftStateManager manager(f.simulator, f.ledger, f.counter, f.rng, options);
  SessionId replacement = 0;
  bool reinstalled = false;
  (void)f.install(manager, [&](SessionId) {
    if (reinstalled) {
      return;  // let the replacement expire without another round
    }
    reinstalled = true;
    const net::Path r = f.route();
    EXPECT_TRUE(f.rsvp.reserve(r, 64'000.0).admitted);
    replacement = manager.install(r, 64'000.0);
  });
  f.simulator.run_until(91.0);
  EXPECT_TRUE(reinstalled);
  EXPECT_TRUE(manager.alive(replacement));
  EXPECT_EQ(manager.session_count(), 1u);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 3.0 * 64'000.0);
  // The replacement keeps its own refresh schedule running.
  f.simulator.run_until(92.0 + 3.0 * 30.0);
  EXPECT_FALSE(manager.alive(replacement));  // it too expires under total loss
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);
}

TEST(SoftState, SimultaneousMissedRefreshesExpireInInstallOrder) {
  // Three sessions installed at t = 0 miss every refresh; all three cross
  // the K-miss threshold at the same simulated instant (t = 3 x 30). The
  // kernel breaks timestamp ties FIFO, so expiries are delivered in install
  // order — deterministic teardown ordering is what makes chaos runs
  // reproducible.
  Fixture f;
  SoftStateOptions options = lossless();
  options.refresh_loss_probability = 0.999999;
  SoftStateManager manager(f.simulator, f.ledger, f.counter, f.rng, options);
  std::vector<SessionId> expired_order;
  const auto record = [&](SessionId id) { expired_order.push_back(id); };
  const SessionId a = f.install(manager, record);
  const SessionId b = f.install(manager, record);
  const SessionId c = f.install(manager, record);
  f.simulator.run_until(91.0);
  ASSERT_EQ(expired_order.size(), 3u);
  EXPECT_EQ(expired_order[0], a);
  EXPECT_EQ(expired_order[1], b);
  EXPECT_EQ(expired_order[2], c);
  EXPECT_EQ(manager.expired_count(), 3u);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);
}

TEST(SoftState, OptionsValidated) {
  Fixture f;
  SoftStateOptions bad = lossless();
  bad.refresh_interval_s = 0.0;
  EXPECT_THROW(SoftStateManager(f.simulator, f.ledger, f.counter, f.rng, bad),
               std::invalid_argument);
  bad = lossless();
  bad.lifetime_refreshes = 0;
  EXPECT_THROW(SoftStateManager(f.simulator, f.ledger, f.counter, f.rng, bad),
               std::invalid_argument);
  bad = lossless();
  bad.refresh_loss_probability = 1.0;
  EXPECT_THROW(SoftStateManager(f.simulator, f.ledger, f.counter, f.rng, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::signaling
