#include "src/signaling/soft_state.h"

#include <gtest/gtest.h>

#include "src/net/topologies.h"
#include "src/signaling/rsvp.h"

namespace anyqos::signaling {
namespace {

struct Fixture {
  net::Topology topo = net::topologies::line(4);
  net::BandwidthLedger ledger{topo, 0.2};
  MessageCounter counter;
  ReservationProtocol rsvp{ledger, counter};
  des::Simulator simulator;
  des::RandomStream rng{77};

  net::Path route() {
    net::Path p;
    p.source = 0;
    p.destination = 3;
    p.links = {*topo.find_link(0, 1), *topo.find_link(1, 2), *topo.find_link(2, 3)};
    return p;
  }

  SessionId install(SoftStateManager& manager, SoftStateManager::ExpiryCallback cb = {}) {
    const net::Path r = route();
    EXPECT_TRUE(rsvp.reserve(r, 64'000.0).admitted);
    return manager.install(r, 64'000.0, std::move(cb));
  }
};

SoftStateOptions lossless() {
  SoftStateOptions options;
  options.refresh_interval_s = 30.0;
  options.lifetime_refreshes = 3;
  options.refresh_loss_probability = 0.0;
  return options;
}

TEST(SoftState, RefreshesChargeMessagesPeriodically) {
  Fixture f;
  SoftStateManager manager(f.simulator, f.ledger, f.counter, f.rng, lossless());
  (void)f.install(manager);
  const auto path_before = f.counter.by_kind(MessageKind::kPath);
  f.simulator.run_until(301.0);  // 10 refresh periods
  // Each refresh re-walks the 3-hop route with PATH and RESV.
  EXPECT_EQ(f.counter.by_kind(MessageKind::kPath) - path_before, 30u);
  EXPECT_EQ(manager.session_count(), 1u);
  EXPECT_EQ(manager.expired_count(), 0u);
}

TEST(SoftState, RemoveReleasesAndStopsRefreshing) {
  Fixture f;
  SoftStateManager manager(f.simulator, f.ledger, f.counter, f.rng, lossless());
  const SessionId id = f.install(manager);
  f.simulator.run_until(100.0);
  manager.remove(id);
  EXPECT_FALSE(manager.alive(id));
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);
  const auto messages_after_remove = f.counter.total();
  f.simulator.run_until(1'000.0);
  EXPECT_EQ(f.counter.total(), messages_after_remove);  // no more refreshes
  EXPECT_THROW(manager.remove(id), std::invalid_argument);
}

TEST(SoftState, LostRefreshesExpireTheSession) {
  Fixture f;
  SoftStateOptions options = lossless();
  options.refresh_loss_probability = 0.999999;  // effectively always lost
  SoftStateManager manager(f.simulator, f.ledger, f.counter, f.rng, options);
  bool expired = false;
  const SessionId id = f.install(manager, [&](SessionId) { expired = true; });
  // 3 consecutive losses at t = 30, 60, 90 expire the session.
  f.simulator.run_until(91.0);
  EXPECT_TRUE(expired);
  EXPECT_FALSE(manager.alive(id));
  EXPECT_EQ(manager.expired_count(), 1u);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);
  // Expiry is a timeout, not a teardown — no TEAR messages.
  EXPECT_EQ(f.counter.by_kind(MessageKind::kTear), 0u);
}

TEST(SoftState, OccasionalLossIsAbsorbed) {
  // With K=3 and moderate loss, sporadic misses never accumulate to expiry.
  Fixture f;
  SoftStateOptions options = lossless();
  options.refresh_loss_probability = 0.2;
  SoftStateManager manager(f.simulator, f.ledger, f.counter, f.rng, options);
  (void)f.install(manager);
  f.simulator.run_until(30.0 * 200.0);  // 200 refresh opportunities
  // P(3 consecutive losses somewhere in 200 trials) ≈ 1 - (1-0.008)^198 ≈ 0.8
  // ... so this COULD expire; assert only the bookkeeping stays consistent.
  if (manager.session_count() == 1) {
    EXPECT_EQ(manager.expired_count(), 0u);
    EXPECT_GT(f.ledger.total_reserved(), 0.0);
  } else {
    EXPECT_EQ(manager.expired_count(), 1u);
    EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);
  }
}

TEST(SoftState, SuccessfulRefreshResetsMissCounter) {
  // Deterministic alternating loss: with K = 3, loss-success alternation
  // never expires. Drive loss pattern via a crafted probability: use 0.5 and
  // a fixed seed — instead verify over many periods the session usually
  // survives far longer than the 3-consecutive bound would suggest if
  // misses accumulated without reset.
  Fixture f;
  SoftStateOptions options = lossless();
  options.refresh_loss_probability = 0.4;
  options.lifetime_refreshes = 5;
  SoftStateManager manager(f.simulator, f.ledger, f.counter, f.rng, options);
  (void)f.install(manager);
  // Without reset, 5 total misses would occur within ~13 periods whp. With
  // reset, P(5 consecutive) = 0.4^5 ≈ 1% per window; 30 periods survive whp.
  f.simulator.run_until(30.0 * 30.0);
  EXPECT_EQ(manager.session_count(), 1u);
}

TEST(SoftState, MultipleSessionsIndependent) {
  Fixture f;
  SoftStateManager manager(f.simulator, f.ledger, f.counter, f.rng, lossless());
  const SessionId a = f.install(manager);
  const SessionId b = f.install(manager);
  EXPECT_EQ(manager.session_count(), 2u);
  f.simulator.run_until(50.0);
  manager.remove(a);
  EXPECT_FALSE(manager.alive(a));
  EXPECT_TRUE(manager.alive(b));
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 3.0 * 64'000.0);  // b holds 3 links
}

TEST(SoftState, OptionsValidated) {
  Fixture f;
  SoftStateOptions bad = lossless();
  bad.refresh_interval_s = 0.0;
  EXPECT_THROW(SoftStateManager(f.simulator, f.ledger, f.counter, f.rng, bad),
               std::invalid_argument);
  bad = lossless();
  bad.lifetime_refreshes = 0;
  EXPECT_THROW(SoftStateManager(f.simulator, f.ledger, f.counter, f.rng, bad),
               std::invalid_argument);
  bad = lossless();
  bad.refresh_loss_probability = 1.0;
  EXPECT_THROW(SoftStateManager(f.simulator, f.ledger, f.counter, f.rng, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::signaling
