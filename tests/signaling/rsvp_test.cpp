#include "src/signaling/rsvp.h"

#include <gtest/gtest.h>

namespace anyqos::signaling {
namespace {

struct Fixture {
  net::Topology topo;
  net::Path path;  // 0 -> 1 -> 2 -> 3

  Fixture() {
    for (int i = 0; i < 4; ++i) {
      topo.add_router();
    }
    topo.add_duplex_link(0, 1, 100.0e6);
    topo.add_duplex_link(1, 2, 100.0e6);
    topo.add_duplex_link(2, 3, 100.0e6);
    path.source = 0;
    path.destination = 3;
    path.links = {*topo.find_link(0, 1), *topo.find_link(1, 2), *topo.find_link(2, 3)};
  }
};

TEST(ReservationProtocol, SuccessfulReservationChargesPathAndResv) {
  Fixture f;
  net::BandwidthLedger ledger(f.topo, 0.2);
  MessageCounter counter;
  ReservationProtocol rsvp(ledger, counter);
  const ReservationResult result = rsvp.reserve(f.path, 64'000.0);
  EXPECT_TRUE(result.admitted);
  EXPECT_FALSE(result.blocking_link.has_value());
  EXPECT_EQ(result.messages, 6u);  // 3 PATH + 3 RESV
  EXPECT_EQ(counter.by_kind(MessageKind::kPath), 3u);
  EXPECT_EQ(counter.by_kind(MessageKind::kResv), 3u);
  EXPECT_EQ(counter.by_kind(MessageKind::kPathErr), 0u);
  EXPECT_DOUBLE_EQ(ledger.available(f.path.links[0]), 20.0e6 - 64'000.0);
}

TEST(ReservationProtocol, BlockedAtFirstLink) {
  Fixture f;
  net::BandwidthLedger ledger(f.topo, 0.2);
  MessageCounter counter;
  ReservationProtocol rsvp(ledger, counter);
  // Saturate the first link.
  net::Path first;
  first.source = 0;
  first.destination = 1;
  first.links = {f.path.links[0]};
  ASSERT_TRUE(ledger.reserve(first, 20.0e6));
  const ReservationResult result = rsvp.reserve(f.path, 64'000.0);
  EXPECT_FALSE(result.admitted);
  ASSERT_TRUE(result.blocking_link.has_value());
  EXPECT_EQ(*result.blocking_link, f.path.links[0]);
  // PATH dies at hop 1, PATH_ERR returns over 1 link.
  EXPECT_EQ(result.messages, 2u);
  EXPECT_EQ(counter.by_kind(MessageKind::kPath), 1u);
  EXPECT_EQ(counter.by_kind(MessageKind::kPathErr), 1u);
  // Downstream links untouched.
  EXPECT_DOUBLE_EQ(ledger.available(f.path.links[1]), 20.0e6);
}

TEST(ReservationProtocol, BlockedMidPathUnwindsExactly) {
  Fixture f;
  net::BandwidthLedger ledger(f.topo, 0.2);
  MessageCounter counter;
  ReservationProtocol rsvp(ledger, counter);
  net::Path middle;
  middle.source = 1;
  middle.destination = 2;
  middle.links = {f.path.links[1]};
  ASSERT_TRUE(ledger.reserve(middle, 20.0e6));
  const ReservationResult result = rsvp.reserve(f.path, 64'000.0);
  EXPECT_FALSE(result.admitted);
  EXPECT_EQ(*result.blocking_link, f.path.links[1]);
  EXPECT_EQ(result.messages, 4u);  // 2 PATH out + 2 PATH_ERR back
  // Nothing stays reserved anywhere on the path.
  EXPECT_DOUBLE_EQ(ledger.available(f.path.links[0]), 20.0e6);
  EXPECT_DOUBLE_EQ(ledger.available(f.path.links[2]), 20.0e6);
}

TEST(ReservationProtocol, TeardownReleasesAndCounts) {
  Fixture f;
  net::BandwidthLedger ledger(f.topo, 0.2);
  MessageCounter counter;
  ReservationProtocol rsvp(ledger, counter);
  ASSERT_TRUE(rsvp.reserve(f.path, 64'000.0).admitted);
  rsvp.teardown(f.path, 64'000.0);
  EXPECT_EQ(counter.by_kind(MessageKind::kTear), 3u);
  EXPECT_DOUBLE_EQ(ledger.total_reserved(), 0.0);
}

TEST(ReservationProtocol, FillsLinkToExactCapacity) {
  Fixture f;
  net::BandwidthLedger ledger(f.topo, 0.2);
  MessageCounter counter;
  ReservationProtocol rsvp(ledger, counter);
  int admitted = 0;
  for (int i = 0; i < 400; ++i) {
    if (rsvp.reserve(f.path, 64'000.0).admitted) {
      ++admitted;
    }
  }
  EXPECT_EQ(admitted, 312);  // floor(20 Mbit / 64 kbit)
}

TEST(ReservationProtocol, EmptyRouteAdmitsWithZeroMessages) {
  Fixture f;
  net::BandwidthLedger ledger(f.topo, 0.2);
  MessageCounter counter;
  ReservationProtocol rsvp(ledger, counter);
  net::Path empty;
  empty.source = 2;
  empty.destination = 2;
  const ReservationResult result = rsvp.reserve(empty, 64'000.0);
  EXPECT_TRUE(result.admitted);
  EXPECT_EQ(result.messages, 0u);
}

TEST(ReservationProtocol, NonPositiveBandwidthRejected) {
  Fixture f;
  net::BandwidthLedger ledger(f.topo, 0.2);
  MessageCounter counter;
  ReservationProtocol rsvp(ledger, counter);
  EXPECT_THROW(static_cast<void>(rsvp.reserve(f.path, 0.0)), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::signaling
