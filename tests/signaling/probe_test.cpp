#include "src/signaling/probe.h"

#include <gtest/gtest.h>

#include <cmath>

namespace anyqos::signaling {
namespace {

TEST(ProbeService, ReturnsBottleneckAndCharges) {
  net::Topology topo;
  for (int i = 0; i < 3; ++i) {
    topo.add_router();
  }
  topo.add_duplex_link(0, 1, 100.0e6);
  topo.add_duplex_link(1, 2, 100.0e6);
  net::BandwidthLedger ledger(topo, 0.2);
  MessageCounter counter;
  ProbeService probe(ledger, counter);

  net::Path route;
  route.source = 0;
  route.destination = 2;
  route.links = {*topo.find_link(0, 1), *topo.find_link(1, 2)};

  // Consume some bandwidth on the second link to create a bottleneck.
  net::Path second;
  second.source = 1;
  second.destination = 2;
  second.links = {route.links[1]};
  ASSERT_TRUE(ledger.reserve(second, 5.0e6));

  EXPECT_DOUBLE_EQ(probe.route_bandwidth(route), 15.0e6);
  EXPECT_EQ(counter.by_kind(MessageKind::kProbe), 2u);
  EXPECT_EQ(counter.by_kind(MessageKind::kProbeReply), 2u);
  EXPECT_EQ(counter.total(), 4u);

  // Each probe charges again — the WD/D+B overhead the paper warns about.
  static_cast<void>(probe.route_bandwidth(route));
  EXPECT_EQ(counter.total(), 8u);
}

TEST(ProbeService, EmptyRouteCostsNothing) {
  net::Topology topo;
  topo.add_router();
  net::BandwidthLedger ledger(topo, 0.2);
  MessageCounter counter;
  ProbeService probe(ledger, counter);
  net::Path empty;
  empty.source = 0;
  empty.destination = 0;
  EXPECT_TRUE(std::isinf(probe.route_bandwidth(empty)));
  EXPECT_EQ(counter.total(), 0u);
}

}  // namespace
}  // namespace anyqos::signaling
