#include <gtest/gtest.h>

#include <functional>
#include <limits>

#include "src/des/simulator.h"

namespace anyqos::des {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(RunBounded, CompletedDrainEndsAtQuiescenceNotTheCap) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.5, [&] { ++fired; });
  EXPECT_EQ(sim.run_bounded(100.0, 10), 2U);
  EXPECT_EQ(fired, 2);
  // run_until would advance to 100; a bounded drain stops at the last event.
  EXPECT_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.pending_events(), 0U);
}

TEST(RunBounded, ZeroBudgetMeansUnlimited) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 5; ++i) {
    sim.schedule_at(static_cast<double>(i), [&] { ++fired; });
  }
  EXPECT_EQ(sim.run_bounded(kInf, 0), 5U);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 5.0);
}

TEST(RunBounded, EventBudgetStopsASelfRescheduler) {
  Simulator sim;
  // The pathology the watchdog exists for: a timer that never stops.
  std::function<void()> tick = [&] { sim.schedule_in(1.0, tick); };
  sim.schedule_at(1.0, tick);
  EXPECT_EQ(sim.run_bounded(kInf, 50), 50U);
  EXPECT_EQ(sim.now(), 50.0);            // clock at the last dispatched event
  EXPECT_EQ(sim.pending_events(), 1U);   // the next tick is still queued
  // The drain can resume where it left off.
  EXPECT_EQ(sim.run_bounded(kInf, 3), 3U);
  EXPECT_EQ(sim.now(), 53.0);
}

TEST(RunBounded, SimTimeCapStopsBeforeLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  EXPECT_EQ(sim.run_bounded(5.0, 0), 1U);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 5.0);           // stopped at the cap, not the next event
  EXPECT_EQ(sim.pending_events(), 1U);
}

TEST(RunBounded, CappedDrainThatCompletesMatchesUnboundedRun) {
  auto build = [](Simulator& sim, int& fired) {
    for (int i = 1; i <= 4; ++i) {
      sim.schedule_at(0.5 * i, [&fired] { ++fired; });
    }
  };
  Simulator bounded;
  Simulator unbounded;
  int bounded_fired = 0;
  int unbounded_fired = 0;
  build(bounded, bounded_fired);
  build(unbounded, unbounded_fired);
  EXPECT_EQ(bounded.run_bounded(kInf, 1000), unbounded.run());
  EXPECT_EQ(bounded_fired, unbounded_fired);
  EXPECT_EQ(bounded.now(), unbounded.now());
}

}  // namespace
}  // namespace anyqos::des
