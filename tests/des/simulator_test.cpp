#include "src/des/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace anyqos::des {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, RunUntilAdvancesClockToTarget) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Simulator, EventsSeeTheirOwnTimestamp) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(5.0, [&] { seen = sim.now(); });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(3.0, [&] {
    sim.schedule_in(2.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 5.0);
}

TEST(Simulator, RunUntilDoesNotFireLaterEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(10.0, [&] { fired = true; });
  const std::size_t count = sim.run_until(9.999);
  EXPECT_EQ(count, 0u);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(10.0);  // boundary is inclusive
  EXPECT_TRUE(fired);
}

TEST(Simulator, EventsChainRecursively) {
  Simulator sim;
  int hops = 0;
  std::function<void()> hop = [&] {
    ++hops;
    if (hops < 100) {
      sim.schedule_in(1.0, hop);
    }
  };
  sim.schedule_at(0.0, hop);
  sim.run();
  EXPECT_EQ(hops, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 99.0);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.run_until(10.0);
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilBackwardThrows) {
  Simulator sim;
  sim.run_until(10.0);
  EXPECT_THROW(sim.run_until(5.0), std::invalid_argument);
}

TEST(Simulator, CancelStopsPendingEvent) {
  Simulator sim;
  bool fired = false;
  const EventHandle handle = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(handle));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, StopHaltsDispatchingButKeepsQueue) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run_until(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(10.0);  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, DispatchedEventsAccumulate) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(static_cast<double>(i), [] {});
  }
  sim.run();
  EXPECT_EQ(sim.dispatched_events(), 5u);
}

TEST(Simulator, RunReturnsEventCountAndDrainsQueue) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);  // infinite target: clock rests at last event
}

TEST(Simulator, SameTimeEventsFifoAcrossScheduling) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(0); });
  sim.schedule_at(1.0, [&] {
    order.push_back(1);
    // An event scheduled *at the current time* from within an event runs
    // after already-queued same-time events.
    sim.schedule_at(1.0, [&] { order.push_back(3); });
  });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace anyqos::des
