#include "src/des/random.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace anyqos::des {
namespace {

TEST(RandomStream, Uniform01StaysInRange) {
  RandomStream rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RandomStream, Uniform01MeanIsHalf) {
  RandomStream rng(2);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform01();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RandomStream, UniformRespectsBounds) {
  RandomStream rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
  EXPECT_THROW(rng.uniform(1.0, 1.0), std::invalid_argument);
}

TEST(RandomStream, UniformIndexCoversRange) {
  RandomStream rng(4);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::size_t idx = rng.uniform_index(5);
    EXPECT_LT(idx, 5u);
    seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(RandomStream, ExponentialMeanMatches) {
  RandomStream rng(5);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    sum += rng.exponential(180.0);
  }
  EXPECT_NEAR(sum / n, 180.0, 2.0);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(RandomStream, ExponentialMemorylessTail) {
  // P(X > mean) = 1/e for an exponential.
  RandomStream rng(6);
  int above = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.exponential(10.0) > 10.0) {
      ++above;
    }
  }
  EXPECT_NEAR(static_cast<double>(above) / n, std::exp(-1.0), 0.01);
}

TEST(RandomStream, BernoulliFrequency) {
  RandomStream rng(7);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_THROW(rng.bernoulli(1.5), std::invalid_argument);
}

TEST(RandomStream, WeightedIndexMatchesWeights) {
  RandomStream rng(8);
  const std::array<double, 3> weights = {1.0, 2.0, 7.0};
  std::array<int, 3> counts{};
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.01);
}

TEST(RandomStream, WeightedIndexNeverPicksZeroWeight) {
  RandomStream rng(9);
  const std::array<double, 4> weights = {0.0, 1.0, 0.0, 1.0};
  for (int i = 0; i < 10'000; ++i) {
    const std::size_t idx = rng.weighted_index(weights);
    EXPECT_TRUE(idx == 1 || idx == 3);
  }
}

TEST(RandomStream, WeightedIndexRejectsDegenerateInput) {
  RandomStream rng(10);
  EXPECT_THROW(rng.weighted_index(std::array<double, 0>{}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index(std::array<double, 2>{0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index(std::array<double, 2>{-1.0, 2.0}), std::invalid_argument);
}

TEST(SeedSequence, SameNameSameSeed) {
  const SeedSequence seeds(99);
  EXPECT_EQ(seeds.derive("arrivals"), seeds.derive("arrivals"));
}

TEST(SeedSequence, DifferentNamesDifferentSeeds) {
  const SeedSequence seeds(99);
  EXPECT_NE(seeds.derive("arrivals"), seeds.derive("holding"));
  EXPECT_NE(seeds.derive("a"), seeds.derive("b"));
}

TEST(SeedSequence, DifferentMastersDifferentSeeds) {
  EXPECT_NE(SeedSequence(1).derive("x"), SeedSequence(2).derive("x"));
}

TEST(SeedSequence, StreamsAreReproducible) {
  const SeedSequence seeds(7);
  RandomStream a = seeds.stream("s");
  RandomStream b = seeds.stream("s");
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(SeedSequence, StreamsWithDistinctNamesDecorrelate) {
  const SeedSequence seeds(7);
  RandomStream a = seeds.stream("one");
  RandomStream b = seeds.stream("two");
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.uniform01() == b.uniform01()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace anyqos::des
