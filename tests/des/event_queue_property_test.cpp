// Randomized differential test: EventQueue against a trivially correct
// reference (a sorted multimap with FIFO buckets), over long random
// schedule/cancel/pop workloads.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <random>

#include "src/des/event_queue.h"

namespace anyqos::des {
namespace {

class ReferenceQueue {
 public:
  std::uint64_t schedule(double time) {
    const std::uint64_t id = next_id_++;
    buckets_[time].push_back(id);
    ++live_;
    return id;
  }

  bool cancel(std::uint64_t id) {
    for (auto& [time, bucket] : buckets_) {
      for (auto it = bucket.begin(); it != bucket.end(); ++it) {
        if (*it == id) {
          bucket.erase(it);
          --live_;
          return true;
        }
      }
    }
    return false;
  }

  std::pair<double, std::uint64_t> pop() {
    auto it = buckets_.begin();
    while (it->second.empty()) {
      it = buckets_.erase(it);
    }
    const double time = it->first;
    const std::uint64_t id = it->second.front();
    it->second.pop_front();
    --live_;
    return {time, id};
  }

  [[nodiscard]] std::size_t size() const { return live_; }

 private:
  std::map<double, std::deque<std::uint64_t>> buckets_;
  std::uint64_t next_id_ = 0;
  std::size_t live_ = 0;
};

class EventQueueDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(EventQueueDifferential, MatchesReferenceUnderRandomWorkload) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> time_dist(0.0, 100.0);
  EventQueue queue;
  ReferenceQueue reference;
  // Map reference ids -> (handle, fired order tag) for cancellation pairing.
  std::vector<std::pair<std::uint64_t, EventHandle>> live;  // (ref id, handle)
  std::vector<std::uint64_t> fired_real;
  std::vector<std::uint64_t> fired_ref;

  for (int step = 0; step < 20'000; ++step) {
    const double action = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    if (action < 0.5 || queue.empty()) {
      // Schedule; the action records which reference id fired.
      const double t = time_dist(rng);
      const std::uint64_t ref_id = reference.schedule(t);
      const EventHandle handle =
          queue.schedule(t, [&fired_real, ref_id] { fired_real.push_back(ref_id); });
      live.emplace_back(ref_id, handle);
    } else if (action < 0.65 && !live.empty()) {
      // Cancel a random live event in both queues.
      const std::size_t pick =
          std::uniform_int_distribution<std::size_t>(0, live.size() - 1)(rng);
      const auto [ref_id, handle] = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      const bool cancelled_real = queue.cancel(handle);
      const bool cancelled_ref = reference.cancel(ref_id);
      ASSERT_EQ(cancelled_real, cancelled_ref);
    } else {
      // Pop from both; same event must fire.
      auto fired = queue.pop();
      fired.action();
      const auto [ref_time, ref_id] = reference.pop();
      fired_ref.push_back(ref_id);
      ASSERT_DOUBLE_EQ(fired.time, ref_time);
      ASSERT_EQ(fired_real.back(), ref_id) << "at step " << step;
      // Drop the fired event from the live list.
      for (auto it = live.begin(); it != live.end(); ++it) {
        if (it->first == ref_id) {
          live.erase(it);
          break;
        }
      }
    }
    ASSERT_EQ(queue.size(), reference.size());
  }
  // Drain completely; full sequences must match.
  while (!queue.empty()) {
    queue.pop().action();
    fired_ref.push_back(reference.pop().second);
  }
  EXPECT_EQ(fired_real, fired_ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueDifferential, ::testing::Values(1u, 2u, 3u, 7u));

}  // namespace
}  // namespace anyqos::des
