#include "src/des/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace anyqos::des {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_THROW(static_cast<void>(queue.next_time()), std::invalid_argument);
  EXPECT_THROW(queue.pop(), std::invalid_argument);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(3.0, [&] { order.push_back(3); });
  queue.schedule(1.0, [&] { order.push_back(1); });
  queue.schedule(2.0, [&] { order.push_back(2); });
  while (!queue.empty()) {
    queue.pop().action();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) {
    queue.pop().action();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue queue;
  queue.schedule(7.0, [] {});
  queue.schedule(2.0, [] {});
  EXPECT_DOUBLE_EQ(queue.next_time(), 2.0);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue queue;
  bool fired = false;
  const EventHandle handle = queue.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(queue.cancel(handle));
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelledEventSkippedByPop) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(1.0, [&] { order.push_back(1); });
  const EventHandle second = queue.schedule(2.0, [&] { order.push_back(2); });
  queue.schedule(3.0, [&] { order.push_back(3); });
  queue.cancel(second);
  while (!queue.empty()) {
    queue.pop().action();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, DoubleCancelReturnsFalse) {
  EventQueue queue;
  const EventHandle handle = queue.schedule(1.0, [] {});
  EXPECT_TRUE(queue.cancel(handle));
  EXPECT_FALSE(queue.cancel(handle));
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue queue;
  const EventHandle handle = queue.schedule(1.0, [] {});
  queue.pop().action();
  EXPECT_FALSE(queue.cancel(handle));
}

TEST(EventQueue, InvalidHandleCancelReturnsFalse) {
  EventQueue queue;
  EXPECT_FALSE(queue.cancel(EventHandle{}));
}

TEST(EventQueue, SizeTracksLiveEventsOnly) {
  EventQueue queue;
  const EventHandle a = queue.schedule(1.0, [] {});
  queue.schedule(2.0, [] {});
  EXPECT_EQ(queue.size(), 2u);
  queue.cancel(a);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_DOUBLE_EQ(queue.next_time(), 2.0);  // tombstone skipped
}

TEST(EventQueue, EmptyActionRejected) {
  EventQueue queue;
  EXPECT_THROW(queue.schedule(1.0, EventQueue::Action{}), std::invalid_argument);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue queue;
  std::vector<double> fired;
  // Pseudo-random times, deterministic pattern.
  for (int i = 0; i < 5000; ++i) {
    const double t = static_cast<double>((i * 2654435761u) % 100'000) / 1000.0;
    queue.schedule(t, [&fired, t] { fired.push_back(t); });
  }
  while (!queue.empty()) {
    queue.pop().action();
  }
  ASSERT_EQ(fired.size(), 5000u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]);
  }
}

}  // namespace
}  // namespace anyqos::des
