// Cancellation edge cases for the lazy-tombstone event queue: the handle
// protocol (cancel-after-fire, double-cancel), FIFO tie-break stability
// around interleaved cancels, and the tombstone accounting the kernel
// telemetry plane reports (heap entries vs live size, tombstones_popped).
#include "src/des/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/des/simulator.h"

namespace anyqos::des {
namespace {

TEST(EventQueueCancel, CancelAfterFireReturnsFalse) {
  EventQueue queue;
  const EventHandle handle = queue.schedule(1.0, [] {});
  queue.pop().action();
  EXPECT_FALSE(queue.cancel(handle));
}

TEST(EventQueueCancel, DoubleCancelReturnsFalse) {
  EventQueue queue;
  const EventHandle handle = queue.schedule(1.0, [] {});
  EXPECT_TRUE(queue.cancel(handle));
  EXPECT_FALSE(queue.cancel(handle));
  EXPECT_FALSE(queue.cancel(handle));
}

TEST(EventQueueCancel, CancelInterleavedKeepsSameTimeFifoOrder) {
  EventQueue queue;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(queue.schedule(5.0, [&order, i] { order.push_back(i); }));
  }
  // Cancel alternating entries of the same-timestamp run; the survivors must
  // still fire in their original FIFO positions.
  for (int i = 1; i < 8; i += 2) {
    EXPECT_TRUE(queue.cancel(handles[static_cast<std::size_t>(i)]));
  }
  while (!queue.empty()) {
    queue.pop().action();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6}));
}

TEST(EventQueueCancel, TombstonesStayInHeapUntilPopped) {
  EventQueue queue;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 4; ++i) {
    handles.push_back(queue.schedule(1.0 + i, [] {}));
  }
  queue.cancel(handles[0]);
  queue.cancel(handles[2]);
  // Live size drops immediately; the heap keeps the tombstones until pop
  // walks over them.
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.heap_entries(), 4u);
  EXPECT_EQ(queue.tombstones_popped(), 0u);
  while (!queue.empty()) {
    queue.pop().action();
  }
  EXPECT_EQ(queue.tombstones_popped(), 2u);
  EXPECT_EQ(queue.heap_entries(), 0u);
}

TEST(EventQueueCancel, CancelEverythingLeavesEmptyQueue) {
  EventQueue queue;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 5; ++i) {
    handles.push_back(queue.schedule(2.0, [] {}));
  }
  for (const EventHandle& handle : handles) {
    EXPECT_TRUE(queue.cancel(handle));
  }
  EXPECT_TRUE(queue.empty());
  // Draining an all-tombstone heap must not surface a cancelled event.
  EXPECT_EQ(queue.tombstones_popped(), 0u);
}

TEST(SimulatorCancel, CancelAfterRunReturnsFalse) {
  Simulator simulator;
  int fired = 0;
  const EventHandle handle = simulator.schedule_at(1.0, [&] { ++fired; });
  simulator.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(simulator.cancel(handle));
  EXPECT_EQ(simulator.tombstones_popped(), 0u);
}

TEST(SimulatorCancel, TombstonesPoppedVisibleThroughSimulator) {
  Simulator simulator;
  const EventHandle doomed = simulator.schedule_at(1.0, [] {});
  simulator.schedule_at(2.0, [] {});
  EXPECT_TRUE(simulator.cancel(doomed));
  simulator.run();
  EXPECT_EQ(simulator.tombstones_popped(), 1u);
  EXPECT_EQ(simulator.dispatched_events(), 1u);
}

}  // namespace
}  // namespace anyqos::des
