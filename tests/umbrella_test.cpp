// The umbrella header must compile standalone and expose every layer.
#include "src/anyqos.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EveryLayerIsReachable) {
  using namespace anyqos;
  const net::Topology topo = net::topologies::ring(4);
  net::BandwidthLedger ledger(topo, 0.5);
  const core::AnycastGroup group("g", {2});
  const net::RouteTable routes(topo, group.members());
  signaling::MessageCounter counter;
  signaling::ReservationProtocol rsvp(ledger, counter);
  des::RandomStream rng(1);
  core::SelectorEnvironment env;
  env.source = 0;
  env.group = &group;
  env.routes = &routes;
  core::AdmissionController ac(0, group, routes, rsvp,
                               core::make_selector(core::SelectionAlgorithm::kEvenDistribution, env),
                               std::make_unique<core::CounterRetrialPolicy>(1));
  core::FlowRequest request;
  request.source = 0;
  request.bandwidth_bps = 1'000.0;
  const core::AdmissionDecision decision = ac.admit(request, rng);
  EXPECT_TRUE(decision.admitted);
  EXPECT_GT(analysis::erlang_b(10.0, 10), 0.0);
  stats::Accumulator acc;
  acc.add(1.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 1.0);
  sched::RateScheduler scheduler(sched::SchedulerKind::kWfq, 1'000.0);
  EXPECT_DOUBLE_EQ(scheduler.link_rate(), 1'000.0);
}

}  // namespace
