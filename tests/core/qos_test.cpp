#include "src/core/qos.h"

#include <gtest/gtest.h>

namespace anyqos::core {
namespace {

TEST(WfqDelayBound, ScalesWithHopsAndInverseRate) {
  SchedulerModel model;
  model.max_packet_bits = 12'000.0;  // 1500 bytes
  model.per_hop_latency_s = 0.0;
  EXPECT_DOUBLE_EQ(wfq_delay_bound(64'000.0, 1, model), 12'000.0 / 64'000.0);
  EXPECT_DOUBLE_EQ(wfq_delay_bound(64'000.0, 4, model), 4.0 * 12'000.0 / 64'000.0);
  EXPECT_DOUBLE_EQ(wfq_delay_bound(128'000.0, 4, model),
                   wfq_delay_bound(64'000.0, 4, model) / 2.0);
}

TEST(WfqDelayBound, IncludesFixedLatency) {
  SchedulerModel model;
  model.max_packet_bits = 8'000.0;
  model.per_hop_latency_s = 0.010;
  EXPECT_DOUBLE_EQ(wfq_delay_bound(8'000.0, 3, model), 3.0 * 1.0 + 0.030);
}

TEST(WfqDelayBound, Validation) {
  const SchedulerModel model;
  EXPECT_THROW(wfq_delay_bound(0.0, 1, model), std::invalid_argument);
  EXPECT_THROW(wfq_delay_bound(1.0, 0, model), std::invalid_argument);
}

TEST(RateForDelay, InvertsTheBound) {
  SchedulerModel model;
  model.max_packet_bits = 12'000.0;
  const auto rate = rate_for_delay(0.5, 4, model);
  ASSERT_TRUE(rate.has_value());
  // Plugging the rate back in meets the deadline exactly.
  EXPECT_NEAR(wfq_delay_bound(*rate, 4, model), 0.5, 1e-12);
}

TEST(RateForDelay, InfeasibleDeadlineReturnsNullopt) {
  SchedulerModel model;
  model.per_hop_latency_s = 0.1;
  // 3 hops of fixed latency = 0.3 s > 0.2 s deadline.
  EXPECT_FALSE(rate_for_delay(0.2, 3, model).has_value());
}

TEST(RateForDelay, TighterDeadlineNeedsMoreRate) {
  const SchedulerModel model;
  const auto loose = rate_for_delay(1.0, 3, model);
  const auto tight = rate_for_delay(0.1, 3, model);
  ASSERT_TRUE(loose && tight);
  EXPECT_GT(*tight, *loose);
}

TEST(EffectiveBandwidth, RateFloorDominatesLooseDeadline) {
  const SchedulerModel model;  // 12 kbit packets
  QosRequirement qos;
  qos.min_bandwidth_bps = 64'000.0;
  qos.max_delay_s = 100.0;  // trivially loose
  const auto bw = effective_bandwidth(qos, 4, model);
  ASSERT_TRUE(bw.has_value());
  EXPECT_DOUBLE_EQ(*bw, 64'000.0);
}

TEST(EffectiveBandwidth, DeadlineDominatesWhenTight) {
  const SchedulerModel model;
  QosRequirement qos;
  qos.min_bandwidth_bps = 64'000.0;
  qos.max_delay_s = 0.05;
  const auto bw = effective_bandwidth(qos, 4, model);
  ASSERT_TRUE(bw.has_value());
  EXPECT_GT(*bw, 64'000.0);
  EXPECT_DOUBLE_EQ(*bw, 4.0 * model.max_packet_bits / 0.05);
}

TEST(EffectiveBandwidth, GrowsWithRouteLength) {
  // The anycast angle: a nearer member needs a smaller reservation for the
  // same deadline, so destination selection interacts with delay QoS.
  const SchedulerModel model;
  QosRequirement qos;
  qos.min_bandwidth_bps = 1.0;
  qos.max_delay_s = 0.1;
  const auto near = effective_bandwidth(qos, 1, model);
  const auto far = effective_bandwidth(qos, 5, model);
  ASSERT_TRUE(near && far);
  EXPECT_GT(*far, *near);
  EXPECT_NEAR(*far / *near, 5.0, 1e-9);
}

TEST(EffectiveBandwidth, PureRateRequirementPassesThrough) {
  const SchedulerModel model;
  QosRequirement qos;
  qos.min_bandwidth_bps = 42'000.0;
  const auto bw = effective_bandwidth(qos, 3, model);
  ASSERT_TRUE(bw.has_value());
  EXPECT_DOUBLE_EQ(*bw, 42'000.0);
}

TEST(EffectiveBandwidth, InfeasibleDeadlinePropagates) {
  SchedulerModel model;
  model.per_hop_latency_s = 1.0;
  QosRequirement qos;
  qos.min_bandwidth_bps = 1'000.0;
  qos.max_delay_s = 0.5;
  EXPECT_FALSE(effective_bandwidth(qos, 2, model).has_value());
}

TEST(EffectiveBandwidth, UnconstrainedRequirementRejected) {
  const SchedulerModel model;
  const QosRequirement qos;  // neither rate nor delay
  EXPECT_THROW(effective_bandwidth(qos, 1, model), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::core
