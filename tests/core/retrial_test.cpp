#include "src/core/retrial.h"

#include <gtest/gtest.h>

namespace anyqos::core {
namespace {

TEST(CounterRetrial, R1MeansSingleAttempt) {
  const CounterRetrialPolicy policy(1);
  EXPECT_FALSE(policy.keep_going(1));
  EXPECT_EQ(policy.max_attempts(), 1u);
}

TEST(CounterRetrial, AllowsExactlyRAttempts) {
  const CounterRetrialPolicy policy(3);
  EXPECT_TRUE(policy.keep_going(1));
  EXPECT_TRUE(policy.keep_going(2));
  EXPECT_FALSE(policy.keep_going(3));
  EXPECT_FALSE(policy.keep_going(4));
}

TEST(CounterRetrial, ZeroRejected) {
  EXPECT_THROW(CounterRetrialPolicy(0), std::invalid_argument);
}

TEST(CounterRetrial, NameEncodesR) {
  EXPECT_EQ(CounterRetrialPolicy(2).name(), "counter(R=2)");
}

TEST(BoundedFailureRetrial, MinOfBothBoundsApplies) {
  const BoundedFailureRetrialPolicy policy(5, 2);
  EXPECT_TRUE(policy.keep_going(1));
  EXPECT_FALSE(policy.keep_going(2));  // failure bound hit first
  EXPECT_EQ(policy.max_attempts(), 5u);
}

TEST(BoundedFailureRetrial, EquivalentToCounterWhenBoundsMatch) {
  const BoundedFailureRetrialPolicy bounded(3, 3);
  const CounterRetrialPolicy counter(3);
  for (std::size_t attempts = 1; attempts <= 5; ++attempts) {
    EXPECT_EQ(bounded.keep_going(attempts), counter.keep_going(attempts));
  }
}

TEST(BoundedFailureRetrial, Validation) {
  EXPECT_THROW(BoundedFailureRetrialPolicy(0, 1), std::invalid_argument);
  EXPECT_THROW(BoundedFailureRetrialPolicy(1, 0), std::invalid_argument);
}

class CounterSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CounterSweep, AttemptsBoundedByR) {
  const std::size_t r = GetParam();
  const CounterRetrialPolicy policy(r);
  std::size_t attempts = 1;  // the DAC loop always makes one attempt
  while (policy.keep_going(attempts)) {
    ++attempts;
  }
  EXPECT_EQ(attempts, r);
}

INSTANTIATE_TEST_SUITE_P(RValues, CounterSweep, ::testing::Values(1, 2, 3, 4, 5, 10));

}  // namespace
}  // namespace anyqos::core
