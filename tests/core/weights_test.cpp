#include "src/core/weights.h"

#include <gtest/gtest.h>

#include <array>
#include <numeric>
#include <vector>

namespace anyqos::core {
namespace {

constexpr double kTol = 1e-12;

TEST(WeightVector, UniformSatisfiesEq2) {
  const WeightVector w = WeightVector::uniform(5);
  ASSERT_EQ(w.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(w.at(i), 0.2, kTol);  // W_i = 1/K
  }
  EXPECT_TRUE(w.normalized_within(kTol));
}

TEST(WeightVector, UniformRejectsEmpty) {
  EXPECT_THROW(WeightVector::uniform(0), std::invalid_argument);
}

TEST(WeightVector, InverseDistanceMatchesEq4) {
  const std::array<std::size_t, 3> distances = {1, 2, 4};
  const WeightVector w = WeightVector::inverse_distance(distances);
  // 1/D_i normalized: (1, 1/2, 1/4) / 1.75.
  EXPECT_NEAR(w.at(0), 1.0 / 1.75, kTol);
  EXPECT_NEAR(w.at(1), 0.5 / 1.75, kTol);
  EXPECT_NEAR(w.at(2), 0.25 / 1.75, kTol);
  EXPECT_TRUE(w.normalized_within(kTol));
}

TEST(WeightVector, InverseDistanceShorterIsHeavier) {
  const std::array<std::size_t, 4> distances = {5, 1, 3, 2};
  const WeightVector w = WeightVector::inverse_distance(distances);
  EXPECT_GT(w.at(1), w.at(3));
  EXPECT_GT(w.at(3), w.at(2));
  EXPECT_GT(w.at(2), w.at(0));
}

TEST(WeightVector, ZeroDistanceTreatedAsOne) {
  // Co-located member: weight stays finite and maximal.
  const std::array<std::size_t, 2> distances = {0, 2};
  const WeightVector w = WeightVector::inverse_distance(distances);
  EXPECT_NEAR(w.at(0), 1.0 / 1.5, kTol);
  EXPECT_GT(w.at(0), w.at(1));
}

TEST(WeightVector, BandwidthDistanceMatchesEq12) {
  const std::array<double, 3> bandwidths = {10.0e6, 5.0e6, 20.0e6};
  const std::array<std::size_t, 3> distances = {2, 1, 4};
  const WeightVector w = WeightVector::bandwidth_distance(bandwidths, distances);
  const double raw0 = 10.0e6 / 2;
  const double raw1 = 5.0e6 / 1;
  const double raw2 = 20.0e6 / 4;
  const double total = raw0 + raw1 + raw2;
  EXPECT_NEAR(w.at(0), raw0 / total, kTol);
  EXPECT_NEAR(w.at(1), raw1 / total, kTol);
  EXPECT_NEAR(w.at(2), raw2 / total, kTol);
}

TEST(WeightVector, AllZeroBandwidthFallsBackToDistance) {
  const std::array<double, 2> bandwidths = {0.0, 0.0};
  const std::array<std::size_t, 2> distances = {1, 3};
  const WeightVector w = WeightVector::bandwidth_distance(bandwidths, distances);
  const WeightVector expect = WeightVector::inverse_distance(distances);
  EXPECT_NEAR(w.at(0), expect.at(0), kTol);
  EXPECT_NEAR(w.at(1), expect.at(1), kTol);
}

TEST(WeightVector, MismatchedLengthsRejected) {
  const std::array<double, 2> bandwidths = {1.0, 2.0};
  const std::array<std::size_t, 3> distances = {1, 2, 3};
  EXPECT_THROW(WeightVector::bandwidth_distance(bandwidths, distances), std::invalid_argument);
}

TEST(WeightVector, NormalizedScalesArbitraryInput) {
  const WeightVector w = WeightVector::normalized({2.0, 6.0});
  EXPECT_NEAR(w.at(0), 0.25, kTol);
  EXPECT_NEAR(w.at(1), 0.75, kTol);
}

TEST(WeightVector, NormalizedRejectsBadInput) {
  EXPECT_THROW(WeightVector::normalized({}), std::invalid_argument);
  EXPECT_THROW(WeightVector::normalized({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(WeightVector::normalized({-1.0, 2.0}), std::invalid_argument);
}

TEST(WeightVector, MaskedRenormalizes) {
  const WeightVector w = WeightVector::normalized({1.0, 2.0, 1.0});
  const std::array<bool, 3> mask = {false, true, false};
  const WeightVector m = w.masked(mask);
  EXPECT_NEAR(m.at(0), 0.5, kTol);
  EXPECT_DOUBLE_EQ(m.at(1), 0.0);
  EXPECT_NEAR(m.at(2), 0.5, kTol);
  EXPECT_TRUE(m.normalized_within(kTol));
}

TEST(WeightVector, MaskedAllExcludedIsZero) {
  const WeightVector w = WeightVector::uniform(2);
  const std::array<bool, 2> mask = {true, true};
  const WeightVector m = w.masked(mask);
  EXPECT_TRUE(m.is_zero());
  EXPECT_FALSE(w.is_zero());
}

TEST(WeightVector, MaskedMismatchedLengthRejected) {
  const WeightVector w = WeightVector::uniform(3);
  const std::array<bool, 2> mask = {false, false};
  EXPECT_THROW(w.masked(mask), std::invalid_argument);
}

// --- Property sweep: constraint (1) holds for every construction across
// --- many shapes (the paper's invariant sum W_i = 1).

class WeightNormalizationProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WeightNormalizationProperty, AllConstructionsSumToOne) {
  const std::size_t k = GetParam();
  EXPECT_TRUE(WeightVector::uniform(k).normalized_within(kTol));

  std::vector<std::size_t> distances(k);
  for (std::size_t i = 0; i < k; ++i) {
    distances[i] = (i * 7 + 1) % 9 + 1;
  }
  EXPECT_TRUE(WeightVector::inverse_distance(distances).normalized_within(kTol));

  std::vector<double> bandwidths(k);
  for (std::size_t i = 0; i < k; ++i) {
    bandwidths[i] = static_cast<double>((i * 13) % 5) * 1.0e6;  // some zeros
  }
  EXPECT_TRUE(WeightVector::bandwidth_distance(bandwidths, distances).normalized_within(kTol));

  // Masking any single member keeps the rest normalized.
  const WeightVector w = WeightVector::inverse_distance(distances);
  for (std::size_t excluded = 0; excluded < k; ++excluded) {
    std::vector<bool> mask_bits(k, false);
    mask_bits[excluded] = true;
    std::unique_ptr<bool[]> mask(new bool[k]);
    for (std::size_t i = 0; i < k; ++i) {
      mask[i] = mask_bits[i];
    }
    const WeightVector m = w.masked(std::span<const bool>(mask.get(), k));
    if (k > 1) {
      EXPECT_TRUE(m.normalized_within(kTol));
      EXPECT_DOUBLE_EQ(m.at(excluded), 0.0);
    } else {
      EXPECT_TRUE(m.is_zero());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, WeightNormalizationProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 64));

}  // namespace
}  // namespace anyqos::core
