#include "src/core/selectors.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "src/net/topologies.h"

namespace anyqos::core {
namespace {

// Line 0-1-2-3-4: from source 0 the members {1, 2, 4} sit at distances 1,2,4.
struct Fixture {
  net::Topology topo = net::topologies::line(5);
  AnycastGroup group{"g", {1, 2, 4}};
  net::RouteTable routes{topo, {1, 2, 4}};
  net::BandwidthLedger ledger{topo, 0.2};
  signaling::MessageCounter counter;
  signaling::ProbeService probe{ledger, counter};
  des::RandomStream rng{12345};

  SelectorEnvironment env(double alpha = 0.5, bool mask = false) {
    SelectorEnvironment e;
    e.source = 0;
    e.group = &group;
    e.routes = &routes;
    e.probe = &probe;
    e.alpha = alpha;
    e.wdb_mask_infeasible = mask;
    e.flow_bandwidth = 64'000.0;
    return e;
  }
};

std::array<bool, 3> none_tried() { return {false, false, false}; }

TEST(EvenDistribution, WeightsAreUniform) {
  EvenDistributionSelector selector(4);
  const auto w = selector.weights();
  ASSERT_EQ(w.size(), 4u);
  for (const double x : w) {
    EXPECT_DOUBLE_EQ(x, 0.25);
  }
  EXPECT_EQ(selector.name(), "ED");
}

TEST(EvenDistribution, EmpiricalSelectionIsUniform) {
  Fixture f;
  EvenDistributionSelector selector(3);
  std::array<int, 3> counts{};
  const auto tried = none_tried();
  for (int i = 0; i < 30'000; ++i) {
    ++counts[*selector.select(tried, f.rng)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c / 30'000.0, 1.0 / 3.0, 0.02);
  }
}

TEST(EvenDistribution, ExcludesTriedMembers) {
  Fixture f;
  EvenDistributionSelector selector(3);
  std::array<bool, 3> tried = {true, false, true};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(*selector.select(tried, f.rng), 1u);
  }
}

TEST(EvenDistribution, AllTriedReturnsNullopt) {
  Fixture f;
  EvenDistributionSelector selector(3);
  const std::array<bool, 3> tried = {true, true, true};
  EXPECT_FALSE(selector.select(tried, f.rng).has_value());
}

TEST(DistanceHistory, InitialWeightsAreInverseDistance) {
  Fixture f;
  DistanceHistorySelector selector(0, f.routes, 0.5);
  const auto w = selector.weights();
  // distances 1, 2, 4 -> weights (1, .5, .25)/1.75.
  EXPECT_NEAR(w[0], 1.0 / 1.75, 1e-12);
  EXPECT_NEAR(w[1], 0.5 / 1.75, 1e-12);
  EXPECT_NEAR(w[2], 0.25 / 1.75, 1e-12);
  EXPECT_EQ(selector.name(), "WD/D+H");
  EXPECT_DOUBLE_EQ(selector.alpha(), 0.5);
}

TEST(DistanceHistory, FailuresShiftWeightAway) {
  Fixture f;
  DistanceHistorySelector selector(0, f.routes, 0.5);
  const double before = selector.weights()[0];
  selector.report(0, false);
  selector.report(0, false);
  // Trigger the pre-selection weight update.
  (void)selector.select(none_tried(), f.rng);
  const double after = selector.weights()[0];
  EXPECT_LT(after, before);
  EXPECT_EQ(selector.history().consecutive_failures(0), 2u);
}

TEST(DistanceHistory, SuccessHealsHistory) {
  Fixture f;
  DistanceHistorySelector selector(0, f.routes, 0.5);
  selector.report(0, false);
  selector.report(0, true);
  EXPECT_EQ(selector.history().consecutive_failures(0), 0u);
}

TEST(DistanceHistory, PersistentFailureDrivesSelectionElsewhere) {
  Fixture f;
  DistanceHistorySelector selector(0, f.routes, 0.25);
  // Simulate member 0 persistently blocked.
  for (int i = 0; i < 8; ++i) {
    selector.report(0, false);
  }
  std::array<int, 3> counts{};
  const auto tried = none_tried();
  for (int i = 0; i < 5000; ++i) {
    ++counts[*selector.select(tried, f.rng)];
  }
  // Member 0 started with the LARGEST weight (shortest route); after repeated
  // failures it must be selected less often than either alternative.
  EXPECT_LT(counts[0], counts[1]);
  EXPECT_LT(counts[0], counts[2]);
}

TEST(DistanceHistory, WeightsRemainNormalizedThroughChurn) {
  Fixture f;
  DistanceHistorySelector selector(0, f.routes, 0.5);
  const auto tried = none_tried();
  for (int i = 0; i < 500; ++i) {
    const auto idx = *selector.select(tried, f.rng);
    selector.report(idx, i % 3 == 0);
    double sum = 0.0;
    for (const double w : selector.weights()) {
      EXPECT_GE(w, 0.0);
      sum += w;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(DistanceBandwidth, WeightsFollowEq12) {
  Fixture f;
  DistanceBandwidthSelector selector(0, f.routes, f.probe, false, 64'000.0);
  // All links idle: B_i = 20 Mbit for every route; weights ∝ 1/D_i.
  const auto w = selector.weights();
  EXPECT_NEAR(w[0], 1.0 / 1.75, 1e-9);
  EXPECT_NEAR(w[1], 0.5 / 1.75, 1e-9);
  EXPECT_NEAR(w[2], 0.25 / 1.75, 1e-9);
  EXPECT_EQ(selector.name(), "WD/D+B");
}

TEST(DistanceBandwidth, LoadedRouteLosesWeight) {
  Fixture f;
  DistanceBandwidthSelector selector(0, f.routes, f.probe, false, 64'000.0);
  // Consume 75% of the first link (shared by every route from source 0).
  net::Path first_link;
  first_link.source = 0;
  first_link.destination = 1;
  first_link.links = {*f.topo.find_link(0, 1)};
  ASSERT_TRUE(f.ledger.reserve(first_link, 15.0e6));
  // Additionally load the 1->2 link down to 1 Mbit so the routes past node 1
  // bottleneck below member 0's route.
  net::Path second_link;
  second_link.source = 1;
  second_link.destination = 2;
  second_link.links = {*f.topo.find_link(1, 2)};
  ASSERT_TRUE(f.ledger.reserve(second_link, 19.0e6));
  const auto w = selector.weights();
  // Route to member 0 (node 1): bottleneck 5 Mbit, D=1 -> B/D = 5.0
  // Route to member 1 (node 2): bottleneck 1 Mbit, D=2 -> B/D = 0.5
  // Route to member 2 (node 4): bottleneck 1 Mbit, D=4 -> B/D = 0.25
  const double total = 5.0 + 0.5 + 0.25;
  EXPECT_NEAR(w[0], 5.0 / total, 1e-9);
  EXPECT_NEAR(w[1], 0.5 / total, 1e-9);
  EXPECT_NEAR(w[2], 0.25 / total, 1e-9);
}

TEST(DistanceBandwidth, ProbesChargeMessages) {
  Fixture f;
  DistanceBandwidthSelector selector(0, f.routes, f.probe, false, 64'000.0);
  const auto before = f.counter.total();
  (void)selector.select(none_tried(), f.rng);
  // Probing routes of length 1, 2, 4 = 7 links, out and back.
  EXPECT_EQ(f.counter.total() - before, 14u);
}

TEST(DistanceBandwidth, MaskingZeroesInfeasibleMembers) {
  Fixture f;
  DistanceBandwidthSelector selector(0, f.routes, f.probe, true, 64'000.0);
  // Saturate link 1->2: members at nodes 2 and 4 become infeasible.
  net::Path second_link;
  second_link.source = 1;
  second_link.destination = 2;
  second_link.links = {*f.topo.find_link(1, 2)};
  ASSERT_TRUE(f.ledger.reserve(second_link, 20.0e6 - 32'000.0));
  const auto w = selector.weights();
  EXPECT_NEAR(w[0], 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
  EXPECT_DOUBLE_EQ(w[2], 0.0);
  const auto tried = none_tried();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(*selector.select(tried, f.rng), 0u);
  }
}

TEST(DistanceBandwidth, AllInfeasibleMaskedFallsBackToUniformOverUntried) {
  Fixture f;
  DistanceBandwidthSelector selector(0, f.routes, f.probe, true, 64'000.0);
  // Saturate the first link: every member infeasible.
  net::Path first_link;
  first_link.source = 0;
  first_link.destination = 1;
  first_link.links = {*f.topo.find_link(0, 1)};
  ASSERT_TRUE(f.ledger.reserve(first_link, 20.0e6 - 32'000.0));
  // Selection still returns something (the DAC loop then fails and retries).
  const auto idx = selector.select(none_tried(), f.rng);
  ASSERT_TRUE(idx.has_value());
  EXPECT_LT(*idx, 3u);
}

TEST(ShortestPathPolicy, AlwaysNearestFirst) {
  Fixture f;
  ShortestPathSelector selector(0, f.routes);
  const auto tried = none_tried();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(*selector.select(tried, f.rng), 0u);  // member at distance 1
  }
  EXPECT_EQ(selector.name(), "SP");
  const auto w = selector.weights();
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
}

TEST(ShortestPathPolicy, WalksDistanceOrderUnderMask) {
  Fixture f;
  ShortestPathSelector selector(0, f.routes);
  std::array<bool, 3> tried = {true, false, false};
  EXPECT_EQ(*selector.select(tried, f.rng), 1u);
  tried[1] = true;
  EXPECT_EQ(*selector.select(tried, f.rng), 2u);
  tried[2] = true;
  EXPECT_FALSE(selector.select(tried, f.rng).has_value());
}

TEST(SelectorFactory, BuildsEveryAlgorithm) {
  Fixture f;
  for (const auto algorithm :
       {SelectionAlgorithm::kEvenDistribution, SelectionAlgorithm::kDistanceHistory,
        SelectionAlgorithm::kDistanceBandwidth, SelectionAlgorithm::kShortestPath}) {
    const auto selector = make_selector(algorithm, f.env());
    ASSERT_NE(selector, nullptr);
    EXPECT_EQ(selector->name(), to_string(algorithm));
    EXPECT_EQ(selector->weights().size(), 3u);
  }
}

TEST(SelectorFactory, WdbRequiresProbe) {
  Fixture f;
  SelectorEnvironment env = f.env();
  env.probe = nullptr;
  EXPECT_THROW(make_selector(SelectionAlgorithm::kDistanceBandwidth, env),
               std::invalid_argument);
  // Other algorithms tolerate a missing probe.
  EXPECT_NO_THROW(make_selector(SelectionAlgorithm::kEvenDistribution, env));
}

TEST(SelectorFactory, ValidatesEnvironment) {
  Fixture f;
  SelectorEnvironment env = f.env();
  env.group = nullptr;
  EXPECT_THROW(make_selector(SelectionAlgorithm::kEvenDistribution, env),
               std::invalid_argument);
}

TEST(AlgorithmNames, RoundTrip) {
  for (const auto algorithm :
       {SelectionAlgorithm::kEvenDistribution, SelectionAlgorithm::kDistanceHistory,
        SelectionAlgorithm::kDistanceBandwidth, SelectionAlgorithm::kShortestPath}) {
    EXPECT_EQ(parse_algorithm(to_string(algorithm)), algorithm);
  }
  EXPECT_THROW(parse_algorithm("NOPE"), std::invalid_argument);
}

// --- Property: every selector respects the tried-mask contract. ---

class SelectorMaskProperty : public ::testing::TestWithParam<SelectionAlgorithm> {};

TEST_P(SelectorMaskProperty, NeverSelectsTriedAndExhaustsExactlyOnce) {
  Fixture f;
  const auto selector = make_selector(GetParam(), f.env());
  std::array<bool, 3> tried = {false, false, false};
  std::array<bool, 3> seen = {false, false, false};
  for (int round = 0; round < 3; ++round) {
    const auto idx = selector->select(tried, f.rng);
    ASSERT_TRUE(idx.has_value());
    EXPECT_FALSE(tried[*idx]) << "selector returned an already-tried member";
    EXPECT_FALSE(seen[*idx]);
    tried[*idx] = true;
    seen[*idx] = true;
    selector->report(*idx, false);
  }
  EXPECT_FALSE(selector->select(tried, f.rng).has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, SelectorMaskProperty,
    ::testing::Values(SelectionAlgorithm::kEvenDistribution,
                      SelectionAlgorithm::kDistanceHistory,
                      SelectionAlgorithm::kDistanceBandwidth,
                      SelectionAlgorithm::kShortestPath));

}  // namespace
}  // namespace anyqos::core
