#include "src/core/delay_admission.h"

#include <gtest/gtest.h>

#include "src/net/topologies.h"

namespace anyqos::core {
namespace {

// Line 0-1-2-3-4 with members at {1, 4}: distances 1 and 4 from source 0.
struct Fixture {
  net::Topology topo = net::topologies::line(5);
  AnycastGroup group{"g", {1, 4}};
  net::RouteTable routes{topo, {1, 4}};
  net::BandwidthLedger ledger{topo, 0.2};
  signaling::MessageCounter counter;
  signaling::ReservationProtocol rsvp{ledger, counter};
  des::RandomStream rng{11};

  SchedulerModel scheduler() const {
    SchedulerModel model;
    model.max_packet_bits = 12'000.0;
    model.per_hop_latency_s = 0.0;
    return model;
  }

  DelayAdmissionController controller(std::size_t r = 2) {
    return DelayAdmissionController(0, group, routes, rsvp, scheduler(),
                                    std::make_unique<CounterRetrialPolicy>(r));
  }

  DelayFlowRequest request(double deadline_s, net::Bandwidth floor = 1.0) {
    DelayFlowRequest r;
    r.source = 0;
    r.qos.min_bandwidth_bps = floor;
    r.qos.max_delay_s = deadline_s;
    return r;
  }
};

TEST(DelayAdmission, RequiredRateScalesWithDistance) {
  Fixture f;
  auto controller = f.controller();
  const QosRequirement qos = f.request(0.1).qos;
  const auto near = controller.required_rate(qos, 0);  // 1 hop
  const auto far = controller.required_rate(qos, 1);   // 4 hops
  ASSERT_TRUE(near && far);
  EXPECT_NEAR(*far / *near, 4.0, 1e-9);
}

TEST(DelayAdmission, AdmitsAndReservesMemberSpecificRate) {
  Fixture f;
  auto controller = f.controller();
  const DelayAdmissionDecision decision = controller.admit(f.request(0.1), f.rng);
  ASSERT_TRUE(decision.admitted);
  ASSERT_TRUE(decision.destination_index.has_value());
  const auto expected = controller.required_rate(f.request(0.1).qos,
                                                 *decision.destination_index);
  ASSERT_TRUE(expected.has_value());
  EXPECT_DOUBLE_EQ(decision.reserved_bps, *expected);
  EXPECT_DOUBLE_EQ(f.ledger.reserved(decision.route.links[0]), *expected);
  controller.release(decision);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);
}

TEST(DelayAdmission, PrefersCheaperNearMember) {
  Fixture f;
  auto controller = f.controller();
  int near_count = 0;
  const int trials = 2'000;
  for (int i = 0; i < trials; ++i) {
    const DelayAdmissionDecision decision = controller.admit(f.request(0.5), f.rng);
    ASSERT_TRUE(decision.admitted);
    if (*decision.destination_index == 0) {
      ++near_count;
    }
    controller.release(decision);
  }
  // Weights 1/rate: near member is 4x cheaper => ~80% share.
  EXPECT_NEAR(near_count / static_cast<double>(trials), 0.8, 0.04);
}

TEST(DelayAdmission, InfeasibleDeadlineRejectedWithoutSignaling) {
  Fixture f;
  SchedulerModel slow = f.scheduler();
  slow.per_hop_latency_s = 0.2;  // 1 hop alone eats 0.2 s
  DelayAdmissionController controller(0, f.group, f.routes, f.rsvp, slow,
                                      std::make_unique<CounterRetrialPolicy>(2));
  const DelayAdmissionDecision decision = controller.admit(f.request(0.1), f.rng);
  EXPECT_FALSE(decision.admitted);
  EXPECT_EQ(decision.attempts, 0u);
  EXPECT_EQ(decision.messages, 0u);
}

TEST(DelayAdmission, OnlyFeasibleMembersAreTried) {
  Fixture f;
  SchedulerModel model = f.scheduler();
  model.per_hop_latency_s = 0.02;
  DelayAdmissionController controller(0, f.group, f.routes, f.rsvp, model,
                                      std::make_unique<CounterRetrialPolicy>(2));
  // Deadline 0.05 s: 4-hop member needs 0.08 s of fixed latency — infeasible;
  // 1-hop member is fine.
  for (int i = 0; i < 50; ++i) {
    const DelayAdmissionDecision decision = controller.admit(f.request(0.05), f.rng);
    ASSERT_TRUE(decision.admitted);
    EXPECT_EQ(*decision.destination_index, 0u);
    controller.release(decision);
  }
}

TEST(DelayAdmission, TightDeadlineConsumesMoreCapacity) {
  // The delay-QoS coupling: halving the deadline doubles the per-flow
  // reservation, so the same link fits half as many flows.
  Fixture f;
  auto controller = f.controller(1);
  int loose = 0;
  while (true) {
    const DelayAdmissionDecision decision = controller.admit(f.request(1.0), f.rng);
    if (!decision.admitted) {
      break;
    }
    ++loose;
    if (loose > 10'000) {
      FAIL() << "link never saturated";
    }
  }
  Fixture g;
  auto controller2 = g.controller(1);
  int tight = 0;
  while (true) {
    const DelayAdmissionDecision decision = controller2.admit(g.request(0.5), g.rng);
    if (!decision.admitted) {
      break;
    }
    ++tight;
    if (tight > 10'000) {
      FAIL() << "link never saturated";
    }
  }
  EXPECT_GT(loose, tight);
  EXPECT_NEAR(static_cast<double>(loose) / static_cast<double>(tight), 2.0, 0.3);
}

TEST(DelayAdmission, RetryFallsBackToFartherMember) {
  Fixture f;
  // Saturate the 0-1 link? That's shared. Saturate 1's incoming only... The
  // line's first link is shared by both routes; saturate link 3-4 instead so
  // the far member fails and traffic lands on the near one.
  net::Path far_link;
  far_link.source = 3;
  far_link.destination = 4;
  far_link.links = {*f.topo.find_link(3, 4)};
  ASSERT_TRUE(f.ledger.reserve(far_link, 20.0e6));
  auto controller = f.controller(2);
  for (int i = 0; i < 50; ++i) {
    const DelayAdmissionDecision decision = controller.admit(f.request(0.5), f.rng);
    ASSERT_TRUE(decision.admitted);
    EXPECT_EQ(*decision.destination_index, 0u);
    controller.release(decision);
  }
}

TEST(DelayAdmission, WrongSourceRejected) {
  Fixture f;
  auto controller = f.controller();
  DelayFlowRequest request = f.request(0.5);
  request.source = 2;
  EXPECT_THROW(controller.admit(request, f.rng), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::core
