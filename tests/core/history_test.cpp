#include "src/core/history.h"

#include <gtest/gtest.h>

#include <cmath>

namespace anyqos::core {
namespace {

constexpr double kTol = 1e-12;

TEST(AdmissionHistory, InitializesToZeroPerEq6) {
  const AdmissionHistory h(4);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(h.consecutive_failures(i), 0u);
  }
}

TEST(AdmissionHistory, FailureIncrementsPerEq7) {
  AdmissionHistory h(3);
  h.record(1, false);
  h.record(1, false);
  h.record(1, false);
  EXPECT_EQ(h.consecutive_failures(1), 3u);
  EXPECT_EQ(h.consecutive_failures(0), 0u);
}

TEST(AdmissionHistory, SuccessResetsPerEq7) {
  AdmissionHistory h(2);
  h.record(0, false);
  h.record(0, false);
  h.record(0, true);
  EXPECT_EQ(h.consecutive_failures(0), 0u);
}

TEST(AdmissionHistory, ResetClearsAll) {
  AdmissionHistory h(2);
  h.record(0, false);
  h.record(1, false);
  h.reset();
  EXPECT_EQ(h.consecutive_failures(0), 0u);
  EXPECT_EQ(h.consecutive_failures(1), 0u);
}

TEST(AdmissionHistory, BoundsChecked) {
  AdmissionHistory h(2);
  EXPECT_THROW(h.record(2, true), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(h.consecutive_failures(5)), std::invalid_argument);
  EXPECT_THROW(AdmissionHistory(0), std::invalid_argument);
}

TEST(ApplyHistory, CleanHistoryLeavesWeightsUnchanged) {
  const WeightVector w = WeightVector::normalized({0.5, 0.3, 0.2});
  const AdmissionHistory h(3);
  const WeightVector updated = apply_history(w, h, 0.5);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(updated.at(i), w.at(i), kTol);
  }
}

TEST(ApplyHistory, AlphaOneDisablesHistoryImpact) {
  // "if alpha is 1, no impact will the local admission history have."
  const WeightVector w = WeightVector::normalized({0.5, 0.3, 0.2});
  AdmissionHistory h(3);
  h.record(0, false);
  h.record(0, false);
  const WeightVector updated = apply_history(w, h, 1.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(updated.at(i), w.at(i), kTol);
  }
}

TEST(ApplyHistory, AlphaZeroMaximallyPunishes) {
  // "If alpha is 0, the local admission history has the maximum impact."
  const WeightVector w = WeightVector::normalized({0.5, 0.3, 0.2});
  AdmissionHistory h(3);
  h.record(0, false);
  const WeightVector updated = apply_history(w, h, 0.0);
  EXPECT_NEAR(updated.at(0), 0.0, kTol);
  // The failing member's mass moved to the clean ones, renormalized.
  EXPECT_TRUE(updated.normalized_within(kTol));
  EXPECT_GT(updated.at(1), w.at(1));
  EXPECT_GT(updated.at(2), w.at(2));
}

TEST(ApplyHistory, MatchesEquations8To10ByHand) {
  // W = (0.5, 0.3, 0.2), h = (1, 0, 2), alpha = 0.5.
  // AW = 0.5*(1-0.5) + 0 + 0.2*(1-0.25) = 0.25 + 0.15 = 0.4   (eq. 8)
  // W'_0 = 0.5*0.5 = 0.25; W'_1 = 0.3 + 0.4/1 = 0.7; W'_2 = 0.2*0.25 = 0.05 (eq. 9)
  // sum = 1.0 exactly, so eq. 10 leaves them as is.
  const WeightVector w = WeightVector::normalized({0.5, 0.3, 0.2});
  AdmissionHistory h(3);
  h.record(0, false);
  h.record(2, false);
  h.record(2, false);
  const WeightVector updated = apply_history(w, h, 0.5);
  EXPECT_NEAR(updated.at(0), 0.25, kTol);
  EXPECT_NEAR(updated.at(1), 0.70, kTol);
  EXPECT_NEAR(updated.at(2), 0.05, kTol);
}

TEST(ApplyHistory, AllFailingRenormalizesByDiscount) {
  // M = 0: no redistribution target; weights scale by alpha^{h_i} then
  // renormalize.
  const WeightVector w = WeightVector::normalized({0.5, 0.5});
  AdmissionHistory h(2);
  h.record(0, false);                   // h_0 = 1
  h.record(1, false);
  h.record(1, false);                   // h_1 = 2
  const WeightVector updated = apply_history(w, h, 0.5);
  // raw: 0.25, 0.125 -> normalized 2/3, 1/3.
  EXPECT_NEAR(updated.at(0), 2.0 / 3.0, kTol);
  EXPECT_NEAR(updated.at(1), 1.0 / 3.0, kTol);
}

TEST(ApplyHistory, AlphaZeroAllFailingKeepsPriorWeights) {
  // Degenerate corner: every weight would become zero; the update is a no-op.
  const WeightVector w = WeightVector::normalized({0.7, 0.3});
  AdmissionHistory h(2);
  h.record(0, false);
  h.record(1, false);
  const WeightVector updated = apply_history(w, h, 0.0);
  EXPECT_NEAR(updated.at(0), 0.7, kTol);
  EXPECT_NEAR(updated.at(1), 0.3, kTol);
}

TEST(ApplyHistory, ParameterValidation) {
  const WeightVector w = WeightVector::uniform(2);
  const AdmissionHistory h(2);
  EXPECT_THROW(apply_history(w, h, -0.1), std::invalid_argument);
  EXPECT_THROW(apply_history(w, h, 1.1), std::invalid_argument);
  const AdmissionHistory wrong_size(3);
  EXPECT_THROW(apply_history(w, wrong_size, 0.5), std::invalid_argument);
}

// --- Property sweep over alpha: normalization and monotone punishment. ---

class HistoryAlphaProperty : public ::testing::TestWithParam<double> {};

TEST_P(HistoryAlphaProperty, UpdateKeepsNormalizationAndPunishesFailures) {
  const double alpha = GetParam();
  const WeightVector w = WeightVector::normalized({0.4, 0.3, 0.2, 0.1});
  AdmissionHistory h(4);
  h.record(1, false);
  h.record(3, false);
  h.record(3, false);
  const WeightVector updated = apply_history(w, h, alpha);
  EXPECT_TRUE(updated.normalized_within(1e-9));
  if (alpha < 1.0) {
    // Failing members lose weight; clean members gain (or keep) weight.
    EXPECT_LT(updated.at(1), w.at(1) + kTol);
    EXPECT_LT(updated.at(3), w.at(3) + kTol);
    EXPECT_GE(updated.at(0), w.at(0) - kTol);
    EXPECT_GE(updated.at(2), w.at(2) - kTol);
    // The member with more consecutive failures is punished at least as hard
    // (relative to its base weight).
    EXPECT_LE(updated.at(3) / w.at(3), updated.at(1) / w.at(1) + kTol);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, HistoryAlphaProperty,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0));

}  // namespace
}  // namespace anyqos::core
