#include "src/core/multipath_admission.h"

#include <gtest/gtest.h>

#include "src/net/topologies.h"

namespace anyqos::core {
namespace {

// Ring of 6 with a single member at node 3: two disjoint fixed paths from 0
// (0-1-2-3 and 0-5-4-3), so multipath can survive one side saturating.
struct Fixture {
  net::Topology topo = net::topologies::ring(6);
  AnycastGroup group{"g", {3}};
  net::MultiPathRouteTable routes{topo, {3}, 2};
  net::BandwidthLedger ledger{topo, 0.2};
  signaling::MessageCounter counter;
  signaling::ReservationProtocol rsvp{ledger, counter};
  des::RandomStream rng{21};

  MultiPathAdmissionController controller(std::size_t r) {
    return MultiPathAdmissionController(0, group, routes, rsvp,
                                        std::make_unique<CounterRetrialPolicy>(r));
  }

  void saturate(net::NodeId a, net::NodeId b) {
    net::Path p;
    p.source = a;
    p.destination = b;
    p.links = {*topo.find_link(a, b)};
    ASSERT_TRUE(ledger.reserve(p, 20.0e6));
  }
};

TEST(MultiPathAdmission, ExposesAllAlternatives) {
  Fixture f;
  auto controller = f.controller(2);
  EXPECT_EQ(controller.alternatives(), 2u);  // both ring directions
}

TEST(MultiPathAdmission, AdmitsAndReleases) {
  Fixture f;
  auto controller = f.controller(2);
  const MultiPathDecision decision = controller.admit(64'000.0, f.rng);
  ASSERT_TRUE(decision.admitted);
  EXPECT_EQ(*decision.destination_index, 0u);
  f.topo.validate_path(decision.route);
  controller.release(decision, 64'000.0);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);
}

TEST(MultiPathAdmission, SurvivesPrimaryPathSaturation) {
  Fixture f;
  f.saturate(1, 2);  // kills 0-1-2-3
  auto controller = f.controller(2);
  for (int i = 0; i < 30; ++i) {
    const MultiPathDecision decision = controller.admit(64'000.0, f.rng);
    ASSERT_TRUE(decision.admitted);
    EXPECT_EQ(decision.route.links.front(), *f.topo.find_link(0, 5));
    controller.release(decision, 64'000.0);
  }
}

TEST(MultiPathAdmission, SinglePathControllerCannotSurvive) {
  // The contrast that motivates the extension: with only the shortest fixed
  // path available (k=1 behaviour emulated by R=1 + primary saturated and
  // alternatives() == 1 on a line), admission fails where multipath succeeds.
  Fixture f;
  f.saturate(1, 2);
  auto r1 = f.controller(1);  // one try: picks a path randomly, may fail
  int rejected = 0;
  for (int i = 0; i < 300; ++i) {
    const MultiPathDecision decision = r1.admit(64'000.0, f.rng);
    if (decision.admitted) {
      r1.release(decision, 64'000.0);
    } else {
      ++rejected;
    }
  }
  // Weights: path 0-1-2-3 (3 hops, w=1/3) vs 0-5-4-3 (3 hops, w=1/3): the
  // dead path is picked ~half the time and R=1 cannot recover.
  EXPECT_GT(rejected, 100);
  EXPECT_LT(rejected, 200);
}

TEST(MultiPathAdmission, AttemptsBoundedByRetrialAndAlternatives) {
  Fixture f;
  f.saturate(0, 1);
  f.saturate(0, 5);  // both exits dead: nothing feasible
  auto controller = f.controller(5);  // R exceeds the 2 alternatives
  const MultiPathDecision decision = controller.admit(64'000.0, f.rng);
  EXPECT_FALSE(decision.admitted);
  EXPECT_EQ(decision.attempts, 2u);  // exhausted alternatives, not R
}

TEST(MultiPathAdmission, ShorterAlternativesWeighHeavier) {
  // Member at 2 on the ring: paths 0-1-2 (2 hops) and 0-5-4-3-2 (4 hops);
  // weights 1/2 vs 1/4 => the short path carries ~2/3 of first tries.
  net::Topology topo = net::topologies::ring(6);
  AnycastGroup group("g", {2});
  net::MultiPathRouteTable routes(topo, {2}, 2);
  net::BandwidthLedger ledger(topo, 0.2);
  signaling::MessageCounter counter;
  signaling::ReservationProtocol rsvp(ledger, counter);
  MultiPathAdmissionController controller(0, group, routes, rsvp,
                                          std::make_unique<CounterRetrialPolicy>(1));
  des::RandomStream rng(5);
  int via_short = 0;
  const int trials = 3'000;
  for (int i = 0; i < trials; ++i) {
    const MultiPathDecision decision = controller.admit(64'000.0, rng);
    ASSERT_TRUE(decision.admitted);
    if (decision.route.hops() == 2) {
      ++via_short;
    }
    controller.release(decision, 64'000.0);
  }
  EXPECT_NEAR(via_short / static_cast<double>(trials), 2.0 / 3.0, 0.04);
}

TEST(MultiPathAdmission, Validation) {
  Fixture f;
  auto controller = f.controller(2);
  EXPECT_THROW(controller.admit(0.0, f.rng), std::invalid_argument);
  MultiPathDecision rejected;
  EXPECT_THROW(controller.release(rejected, 64'000.0), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::core
