#include "src/core/admission.h"

#include <gtest/gtest.h>

#include "src/net/topologies.h"

namespace anyqos::core {
namespace {

// Line 0-1-2-3-4, members at {1, 4}: route to member 0 is 1 hop, member 1 is
// 4 hops, and both share the 0-1 link from source 0.
struct Fixture {
  net::Topology topo = net::topologies::line(5);
  AnycastGroup group{"g", {1, 4}};
  net::RouteTable routes{topo, {1, 4}};
  net::BandwidthLedger ledger{topo, 0.2};
  signaling::MessageCounter counter;
  signaling::ReservationProtocol rsvp{ledger, counter};
  signaling::ProbeService probe{ledger, counter};
  des::RandomStream rng{99};

  std::unique_ptr<AdmissionController> controller(SelectionAlgorithm algorithm,
                                                  std::size_t max_tries) {
    SelectorEnvironment env;
    env.source = 0;
    env.group = &group;
    env.routes = &routes;
    env.probe = &probe;
    env.flow_bandwidth = 64'000.0;
    return std::make_unique<AdmissionController>(
        0, group, routes, rsvp, make_selector(algorithm, env),
        std::make_unique<CounterRetrialPolicy>(max_tries));
  }

  FlowRequest request(net::Bandwidth bw = 64'000.0) {
    FlowRequest r;
    r.source = 0;
    r.bandwidth_bps = bw;
    return r;
  }

  void saturate(net::NodeId a, net::NodeId b) {
    net::Path p;
    p.source = a;
    p.destination = b;
    p.links = {*topo.find_link(a, b)};
    ASSERT_TRUE(ledger.reserve(p, 20.0e6));
  }
};

TEST(AdmissionController, AdmitsWhenCapacityExists) {
  Fixture f;
  const auto controller = f.controller(SelectionAlgorithm::kEvenDistribution, 2);
  const AdmissionDecision decision = controller->admit(f.request(), f.rng);
  EXPECT_TRUE(decision.admitted);
  ASSERT_TRUE(decision.destination_index.has_value());
  EXPECT_EQ(decision.attempts, 1u);
  EXPECT_GT(decision.messages, 0u);
  f.topo.validate_path(decision.route);
  EXPECT_GT(f.ledger.total_reserved(), 0.0);
}

TEST(AdmissionController, ReservedBandwidthMatchesRoute) {
  Fixture f;
  const auto controller = f.controller(SelectionAlgorithm::kShortestPath, 1);
  const AdmissionDecision decision = controller->admit(f.request(), f.rng);
  ASSERT_TRUE(decision.admitted);
  EXPECT_EQ(*decision.destination_index, 0u);  // nearest member
  EXPECT_EQ(decision.route.hops(), 1u);
  EXPECT_DOUBLE_EQ(f.ledger.reserved(decision.route.links[0]), 64'000.0);
}

TEST(AdmissionController, ReleaseReturnsBandwidth) {
  Fixture f;
  const auto controller = f.controller(SelectionAlgorithm::kEvenDistribution, 2);
  const AdmissionDecision decision = controller->admit(f.request(), f.rng);
  ASSERT_TRUE(decision.admitted);
  controller->release(decision, 64'000.0);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);
  EXPECT_GT(f.counter.by_kind(signaling::MessageKind::kTear), 0u);
}

TEST(AdmissionController, ReleaseOfRejectedDecisionThrows) {
  Fixture f;
  const auto controller = f.controller(SelectionAlgorithm::kEvenDistribution, 2);
  AdmissionDecision rejected;
  EXPECT_THROW(controller->release(rejected, 64'000.0), std::invalid_argument);
}

TEST(AdmissionController, RejectsWhenSharedLinkSaturated) {
  Fixture f;
  f.saturate(0, 1);  // both routes start with this link
  const auto controller = f.controller(SelectionAlgorithm::kEvenDistribution, 2);
  const AdmissionDecision decision = controller->admit(f.request(), f.rng);
  EXPECT_FALSE(decision.admitted);
  EXPECT_EQ(decision.attempts, 2u);  // R = 2 tries, both blocked
  EXPECT_FALSE(decision.destination_index.has_value());
}

TEST(AdmissionController, RetryFindsAlternativeDestination) {
  Fixture f;
  f.saturate(3, 4);  // member 4's route dies at its last hop; member 1 fine
  const auto controller = f.controller(SelectionAlgorithm::kEvenDistribution, 2);
  // With R=2, every request must eventually land on member index 0.
  for (int i = 0; i < 20; ++i) {
    const AdmissionDecision decision = controller->admit(f.request(), f.rng);
    ASSERT_TRUE(decision.admitted);
    EXPECT_EQ(*decision.destination_index, 0u);
    controller->release(decision, 64'000.0);
  }
}

TEST(AdmissionController, R1NeverRetries) {
  Fixture f;
  f.saturate(3, 4);
  const auto controller = f.controller(SelectionAlgorithm::kEvenDistribution, 1);
  int rejected = 0;
  for (int i = 0; i < 200; ++i) {
    const AdmissionDecision decision = controller->admit(f.request(), f.rng);
    EXPECT_EQ(decision.attempts, 1u);
    if (!decision.admitted) {
      ++rejected;
    } else {
      controller->release(decision, 64'000.0);
    }
  }
  // ED picks the dead member ~half the time.
  EXPECT_GT(rejected, 50);
  EXPECT_LT(rejected, 150);
}

TEST(AdmissionController, AttemptsNeverExceedGroupSize) {
  Fixture f;
  f.saturate(0, 1);
  // R = 5 > K = 2: the loop must stop after exhausting the group.
  const auto controller = f.controller(SelectionAlgorithm::kEvenDistribution, 5);
  const AdmissionDecision decision = controller->admit(f.request(), f.rng);
  EXPECT_FALSE(decision.admitted);
  EXPECT_EQ(decision.attempts, 2u);
}

TEST(AdmissionController, WrongSourceRejected) {
  Fixture f;
  const auto controller = f.controller(SelectionAlgorithm::kEvenDistribution, 2);
  FlowRequest request;
  request.source = 3;
  request.bandwidth_bps = 64'000.0;
  EXPECT_THROW(controller->admit(request, f.rng), std::invalid_argument);
}

TEST(AdmissionController, NonPositiveBandwidthRejected) {
  Fixture f;
  const auto controller = f.controller(SelectionAlgorithm::kEvenDistribution, 2);
  EXPECT_THROW(controller->admit(f.request(0.0), f.rng), std::invalid_argument);
}

TEST(AdmissionController, MessagesAccumulateAcrossRetries) {
  Fixture f;
  f.saturate(0, 1);
  const auto controller = f.controller(SelectionAlgorithm::kEvenDistribution, 2);
  const AdmissionDecision decision = controller->admit(f.request(), f.rng);
  // Each attempt: PATH dies on link 1 (1 msg) + PATH_ERR (1 msg) = 2.
  EXPECT_EQ(decision.messages, 4u);
}

TEST(GlobalOracle, AdmitsViaAnyFeasiblePath) {
  Fixture f;
  GlobalAdmissionOracle oracle(f.topo, f.ledger, f.group);
  const AdmissionDecision decision = oracle.admit(f.request());
  ASSERT_TRUE(decision.admitted);
  EXPECT_EQ(decision.route.destination, 1u);  // nearest member
  EXPECT_EQ(decision.attempts, 1u);
  EXPECT_EQ(decision.messages, 0u);  // oracle bypasses signaling
  oracle.release(decision, 64'000.0);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);
}

TEST(GlobalOracle, FindsDetourWhenFixedRoutesBlocked) {
  // Ring topology: fixed shortest route blocked, but the long way exists.
  net::Topology ring = net::topologies::ring(6);
  AnycastGroup group("g", {3});
  net::BandwidthLedger ledger(ring, 0.2);
  GlobalAdmissionOracle oracle(ring, ledger, group);
  // Saturate link 1-2 (on the short path 0-1-2-3).
  net::Path block;
  block.source = 1;
  block.destination = 2;
  block.links = {*ring.find_link(1, 2)};
  ASSERT_TRUE(ledger.reserve(block, 20.0e6));
  FlowRequest request;
  request.source = 0;
  request.bandwidth_bps = 64'000.0;
  const AdmissionDecision decision = oracle.admit(request);
  ASSERT_TRUE(decision.admitted);
  EXPECT_EQ(decision.route.hops(), 3u);  // 0-5-4-3 the long way
}

TEST(GlobalOracle, RejectsOnlyWhenNoPathAnywhere) {
  Fixture f;
  GlobalAdmissionOracle oracle(f.topo, f.ledger, f.group);
  f.saturate(0, 1);  // the line's only exit from node 0
  const AdmissionDecision decision = oracle.admit(f.request());
  EXPECT_FALSE(decision.admitted);
}

TEST(GlobalOracle, SourceColocatedWithMemberAlwaysAdmits) {
  Fixture f;
  GlobalAdmissionOracle oracle(f.topo, f.ledger, f.group);
  FlowRequest request;
  request.source = 1;  // member router itself
  request.bandwidth_bps = 64'000.0;
  const AdmissionDecision decision = oracle.admit(request);
  ASSERT_TRUE(decision.admitted);
  EXPECT_TRUE(decision.route.empty());
}

}  // namespace
}  // namespace anyqos::core
