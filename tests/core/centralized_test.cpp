#include "src/core/centralized.h"

#include <gtest/gtest.h>

#include "src/des/random.h"
#include "src/net/topologies.h"

namespace anyqos::core {
namespace {

// Line 0-1-2-3-4 with members at {1, 4}.
struct Fixture {
  net::Topology topo = net::topologies::line(5);
  AnycastGroup group{"g", {1, 4}};
  net::RouteTable routes{topo, {1, 4}};
  net::BandwidthLedger ledger{topo, 0.2};
  signaling::MessageCounter counter;
  signaling::ReservationProtocol rsvp{ledger, counter};

  CentralizedController controller(net::NodeId at = 2, double rate = 1000.0) {
    return CentralizedController(topo, ledger, group, routes, rsvp, at, rate);
  }

  void saturate(net::NodeId a, net::NodeId b) {
    net::Path p;
    p.source = a;
    p.destination = b;
    p.links = {*topo.find_link(a, b)};
    ASSERT_TRUE(ledger.reserve(p, 20.0e6));
  }
};

TEST(Centralized, AdmitsOnNearestFeasibleRoute) {
  Fixture f;
  auto controller = f.controller();
  const CentralizedDecision decision = controller.admit(0.0, 0, 64'000.0);
  ASSERT_TRUE(decision.admitted);
  EXPECT_EQ(*decision.destination_index, 0u);  // 1 hop beats 4 hops
  EXPECT_EQ(decision.route.hops(), 1u);
  controller.release(decision, 64'000.0);
  EXPECT_DOUBLE_EQ(f.ledger.total_reserved(), 0.0);
}

TEST(Centralized, GlobalViewAvoidsDeadRoutesInOneShot) {
  Fixture f;
  f.saturate(0, 1);  // near member's route (and the far route's first hop)
  auto controller = f.controller();
  const CentralizedDecision decision = controller.admit(0.0, 0, 64'000.0);
  // Both fixed routes start with link 0-1 on a line: nothing is feasible.
  EXPECT_FALSE(decision.admitted);
  // From source 2 the routes diverge: 2->1 is fine.
  const CentralizedDecision from2 = controller.admit(0.0, 2, 64'000.0);
  ASSERT_TRUE(from2.admitted);
  EXPECT_EQ(*from2.destination_index, 0u);
}

TEST(Centralized, PicksFartherMemberWhenNearBlocked) {
  Fixture f;
  // From source 2: route to member 1 uses link 2->1; block it.
  f.saturate(2, 1);
  auto controller = f.controller();
  const CentralizedDecision decision = controller.admit(0.0, 2, 64'000.0);
  ASSERT_TRUE(decision.admitted);
  EXPECT_EQ(*decision.destination_index, 1u);  // member at node 4
}

TEST(Centralized, ControlMessagesScaleWithDistanceToAgency) {
  Fixture f;
  auto controller = f.controller(/*at=*/4);
  EXPECT_EQ(controller.control_distance(4), 0u);
  EXPECT_EQ(controller.control_distance(0), 4u);
  const CentralizedDecision near = controller.admit(0.0, 4, 64'000.0);
  const CentralizedDecision far = controller.admit(0.0, 0, 64'000.0);
  ASSERT_TRUE(near.admitted && far.admitted);
  // far pays 2*4 control messages more than a co-located source.
  EXPECT_EQ(far.messages - (far.route.hops() * 2), 8u);
  EXPECT_EQ(near.messages - (near.route.hops() * 2), 0u);
}

TEST(Centralized, DecisionServerQueues) {
  Fixture f;
  auto controller = f.controller(2, /*rate=*/10.0);  // 0.1 s per decision
  const CentralizedDecision first = controller.admit(0.0, 0, 64'000.0);
  const CentralizedDecision second = controller.admit(0.0, 0, 64'000.0);
  const CentralizedDecision third = controller.admit(0.05, 0, 64'000.0);
  EXPECT_NEAR(first.decision_delay_s, 0.1, 1e-12);
  EXPECT_NEAR(second.decision_delay_s, 0.2, 1e-12);   // queued behind first
  EXPECT_NEAR(third.decision_delay_s, 0.25, 1e-12);   // arrives at 0.05, done 0.3
  // An idle period drains the queue.
  const CentralizedDecision later = controller.admit(10.0, 0, 64'000.0);
  EXPECT_NEAR(later.decision_delay_s, 0.1, 1e-12);
}

TEST(Centralized, Validation) {
  Fixture f;
  EXPECT_THROW(CentralizedController(f.topo, f.ledger, f.group, f.routes, f.rsvp, 99, 100.0),
               std::invalid_argument);
  EXPECT_THROW(CentralizedController(f.topo, f.ledger, f.group, f.routes, f.rsvp, 0, 0.0),
               std::invalid_argument);
  auto controller = f.controller();
  EXPECT_THROW(controller.admit(0.0, 0, 0.0), std::invalid_argument);
  CentralizedDecision rejected;
  EXPECT_THROW(controller.release(rejected, 64'000.0), std::invalid_argument);
}

TEST(Centralized, AtLeastAsGoodAsAnyFixedRoutePolicy) {
  // Property: whenever some fixed route is feasible, CTRL admits.
  Fixture f;
  auto controller = f.controller();
  des::RandomStream rng(5);
  for (int i = 0; i < 2000; ++i) {
    const net::NodeId source = static_cast<net::NodeId>(rng.uniform_index(5));
    const CentralizedDecision decision = controller.admit(0.0, source, 64'000.0);
    bool any_feasible = false;
    for (std::size_t m = 0; m < f.group.size(); ++m) {
      if (f.ledger.can_reserve(f.routes.route(source, m), 64'000.0)) {
        any_feasible = true;
      }
    }
    if (decision.admitted) {
      // Occasionally release to keep churn going.
      if (rng.bernoulli(0.7)) {
        controller.release(decision, 64'000.0);
      }
    } else {
      EXPECT_FALSE(any_feasible) << "agency rejected despite a feasible route";
    }
  }
}

}  // namespace
}  // namespace anyqos::core
