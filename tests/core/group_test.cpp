#include "src/core/group.h"

#include <gtest/gtest.h>

namespace anyqos::core {
namespace {

TEST(AnycastGroup, BasicAccessors) {
  const AnycastGroup group("anycast://g", {0, 4, 8});
  EXPECT_EQ(group.address(), "anycast://g");
  EXPECT_EQ(group.size(), 3u);
  EXPECT_EQ(group.member(0), 0u);
  EXPECT_EQ(group.member(2), 8u);
  EXPECT_EQ(group.members().size(), 3u);
}

TEST(AnycastGroup, ContainsChecksMembership) {
  const AnycastGroup group("g", {1, 3});
  EXPECT_TRUE(group.contains(1));
  EXPECT_TRUE(group.contains(3));
  EXPECT_FALSE(group.contains(2));
}

TEST(AnycastGroup, UnicastIsGroupOfOne) {
  // "Traditional unicast flow is a special case of anycast flow."
  const AnycastGroup group("g", {7});
  EXPECT_EQ(group.size(), 1u);
  EXPECT_TRUE(group.contains(7));
}

TEST(AnycastGroup, EmptyGroupRejected) {
  EXPECT_THROW(AnycastGroup("g", {}), std::invalid_argument);
}

TEST(AnycastGroup, DuplicateMembersRejected) {
  EXPECT_THROW(AnycastGroup("g", {1, 2, 1}), std::invalid_argument);
}

TEST(AnycastGroup, MemberIndexOutOfRangeRejected) {
  const AnycastGroup group("g", {1});
  EXPECT_THROW(static_cast<void>(group.member(1)), std::invalid_argument);
}

TEST(AnycastGroup, MemberOrderIsPreserved) {
  const AnycastGroup group("g", {16, 0, 8});
  EXPECT_EQ(group.member(0), 16u);
  EXPECT_EQ(group.member(1), 0u);
  EXPECT_EQ(group.member(2), 8u);
}

}  // namespace
}  // namespace anyqos::core
