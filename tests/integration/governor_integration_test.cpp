// End-to-end contract of the overload-protection control plane: the
// governor is deterministic (same seed, same config -> byte-identical
// timeline artifacts, control actions included), a governor that never acts
// leaves the run indistinguishable from the static baseline, a chaos-grade
// drain ends with every breaker out of the Open state, shed requests are
// accounted separately from capacity rejections end to end (result, trace,
// spans, metrics export), and the resilient plane's recovery events pull
// the flight-recorder trigger with the causal window attached.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "src/control/governor.h"
#include "src/net/topologies.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/obs/timeline.h"
#include "src/sim/churn.h"
#include "src/sim/faults.h"
#include "src/sim/metrics_export.h"
#include "src/sim/simulation.h"
#include "src/sim/trace.h"

namespace anyqos {
namespace {

/// MCI backbone pushed hard enough that feedback windows classify hot.
sim::SimulationConfig overload_config() {
  sim::SimulationConfig config;
  config.traffic.arrival_rate = 60.0;
  config.traffic.mean_holding_s = 60.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {1, 3, 5, 7, 9, 11, 13, 15, 17};
  config.group_members = {0, 4, 8, 12, 16};
  config.algorithm = core::SelectionAlgorithm::kDistanceHistory;
  config.max_tries = 5;
  config.warmup_s = 100.0;
  config.measure_s = 500.0;
  config.seed = 7;
  return config;
}

TEST(GovernorIntegration, SameSeedRunsAreByteIdenticalWithControlEngaged) {
  const net::Topology topo = net::topologies::mci_backbone();
  control::GovernorStats first_stats;
  const auto render = [&topo, &first_stats] {
    sim::SimulationConfig config = overload_config();
    control::GovernorOptions options;
    options.window_s = 50.0;
    control::OverloadGovernor governor(options);
    config.governor = &governor;
    obs::Timeline timeline(obs::TimelineOptions{50.0});
    config.timeline = &timeline;
    sim::Simulation simulation(topo, config);
    (void)simulation.run();
    first_stats = governor.stats();
    std::ostringstream jsonl;
    timeline.write_jsonl(jsonl);
    return jsonl.str();
  };
  const std::string first = render();
  const control::GovernorStats stats = first_stats;
  const std::string second = render();
  EXPECT_EQ(first, second);
  // The determinism claim is only meaningful if the loop actually acted.
  EXPECT_GT(stats.tighten_steps, 0u);
  EXPECT_EQ(stats.tighten_steps, first_stats.tighten_steps);
  EXPECT_EQ(stats.relax_steps, first_stats.relax_steps);
  // The timeline carries the control-plane columns.
  EXPECT_NE(first.find("governor_effective_r"), std::string::npos);
  EXPECT_NE(first.find("governor_open_breakers"), std::string::npos);
}

TEST(GovernorIntegration, IdleGovernorMatchesTheStaticBaseline) {
  // Thresholds pushed out of reach: the adaptive bound stays at the ceiling
  // (where AdaptiveRetrialPolicy is CounterRetrialPolicy in disguise),
  // breakers never trip, no budget is configured. The run must then be
  // bit-identical to a governor-free run — control is pay-for-what-you-use.
  const net::Topology topo = net::topologies::mci_backbone();
  sim::SimulationConfig config = overload_config();
  sim::SimulationConfig baseline_config = config;

  control::GovernorOptions options;
  options.hot_rejection_rate = 1.0;
  options.hot_utilization = 1.0;
  options.cool_rejection_rate = 0.0;
  options.breaker.failure_threshold = 1'000'000;
  control::OverloadGovernor governor(options);
  config.governor = &governor;
  sim::Simulation with_governor(topo, config);
  const sim::SimulationResult a = with_governor.run();
  sim::Simulation baseline(topo, baseline_config);
  const sim::SimulationResult b = baseline.run();

  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.messages.total(), b.messages.total());
  EXPECT_DOUBLE_EQ(a.admission_probability, b.admission_probability);
  EXPECT_DOUBLE_EQ(a.average_attempts, b.average_attempts);
  EXPECT_DOUBLE_EQ(a.average_active_flows, b.average_active_flows);
  EXPECT_EQ(a.shed, 0u);
  EXPECT_EQ(governor.stats().tighten_steps, 0u);
  EXPECT_EQ(governor.stats().breaker_trips, 0u);
}

TEST(GovernorIntegration, ChaosDrainLeavesNoBreakerOpen) {
  // Chaos-grade run: message loss, two member outages, a link fault, full
  // governor. The churn trips breakers mid-run; cooldown timers are one-shot
  // and keep firing through the drain, so quiescence means no member is
  // still masked Open — the CI gate chaossim enforces the same invariant.
  const net::Topology topo = net::topologies::ring(6);
  sim::SimulationConfig config;
  config.traffic.arrival_rate = 5.0;
  config.traffic.mean_holding_s = 30.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {1, 2, 5};
  config.group_members = {0, 3};
  config.algorithm = core::SelectionAlgorithm::kEvenDistribution;
  config.max_tries = 2;
  config.warmup_s = 100.0;
  config.measure_s = 600.0;
  config.seed = 31;
  config.drain_to_quiescence = true;
  signaling::ResilienceOptions resilience;
  resilience.faults.loss_probability = 0.15;
  resilience.retransmit_timeout_s = 0.5;
  resilience.max_retransmits = 2;
  resilience.orphan_hold_s = 20.0;
  config.resilience = resilience;
  config.churn.push_back(sim::single_churn(0, 250.0, 350.0));
  config.churn.push_back(sim::single_churn(1, 450.0, 520.0));
  config.faults.push_back(sim::single_fault(1, 2, 300.0, 450.0));

  control::GovernorOptions options;
  options.breaker.cooldown_s = 30.0;
  control::OverloadGovernor governor(options);
  config.governor = &governor;

  sim::Simulation simulation(topo, config);
  const sim::SimulationResult result = simulation.run();

  EXPECT_GE(governor.stats().breaker_trips, 2u);  // one per churned member
  EXPECT_EQ(governor.open_breakers(), 0u);
  EXPECT_EQ(simulation.active_flows(), 0u);
  EXPECT_DOUBLE_EQ(simulation.ledger().total_reserved(), 0.0);
  EXPECT_GT(result.offered, 1'000u);
  EXPECT_EQ(result.shed, 0u);  // no budget configured
}

TEST(GovernorIntegration, ShedRequestsAreAccountedSeparatelyEndToEnd) {
  const net::Topology topo = net::topologies::mci_backbone();
  sim::SimulationConfig config = overload_config();
  config.warmup_s = 0.0;  // trace/span streams cover exactly the run
  config.measure_s = 300.0;

  control::GovernorOptions options;
  options.shed_budget_msgs_per_s = 20.0;  // far below the offered walk rate
  control::OverloadGovernor governor(options);
  config.governor = &governor;

  sim::MemoryTraceSink trace;
  config.trace = &trace;
  obs::MemorySpanSink spans;
  obs::DecisionTracer tracer;
  tracer.set_sink(&spans);
  config.tracer = &tracer;

  sim::Simulation simulation(topo, config);
  const sim::SimulationResult result = simulation.run();

  ASSERT_GT(result.shed, 0u);
  EXPECT_EQ(result.shed, governor.stats().shed);
  // Shed requests never join the offered tally or the AP denominator.
  EXPECT_EQ(trace.count(sim::TraceEventKind::kShed), result.shed);
  EXPECT_EQ(trace.count(sim::TraceEventKind::kAdmitted), result.admitted);
  EXPECT_EQ(trace.count(sim::TraceEventKind::kRejected), result.offered - result.admitted);
  // Every shed request still gets a decision span: zero attempts, zero
  // messages, algorithm "shed" — so span streams stay complete.
  const auto shed_spans = static_cast<std::uint64_t>(
      std::count_if(spans.decisions().begin(), spans.decisions().end(),
                    [](const obs::DecisionSpan& span) { return span.algorithm == "shed"; }));
  EXPECT_EQ(shed_spans, result.shed);
  EXPECT_EQ(spans.decisions().size(), result.offered + result.shed);
  for (const obs::DecisionSpan& span : spans.decisions()) {
    if (span.algorithm == "shed") {
      EXPECT_FALSE(span.admitted);
      EXPECT_EQ(span.attempts, 0u);
      EXPECT_EQ(span.messages, 0u);
    }
  }
  // The export grows an outcome="shed" row — and only when sheds happened.
  obs::MetricsRegistry registry;
  sim::export_metrics(simulation, config, result, registry);
  std::ostringstream prom;
  registry.write_prometheus(prom);
  EXPECT_NE(prom.str().find("outcome=\"shed\""), std::string::npos);
}

TEST(GovernorIntegration, RecoveryEventsPullTheFlightRecorderTrigger) {
  // High loss against a tight retransmit budget forces give-ups, and lost
  // RESV/TEAR messages strand reservations until the soft-state hold timer
  // expires: both recovery paths must pull the trigger with the victim's
  // decision spans already teed into the ring.
  const net::Topology topo = net::topologies::ring(6);
  sim::SimulationConfig config;
  config.traffic.arrival_rate = 5.0;
  config.traffic.mean_holding_s = 30.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {1, 2, 5};
  config.group_members = {0, 3};
  config.algorithm = core::SelectionAlgorithm::kEvenDistribution;
  config.max_tries = 2;
  config.warmup_s = 0.0;
  config.measure_s = 300.0;
  config.seed = 31;
  config.drain_to_quiescence = true;
  signaling::ResilienceOptions resilience;
  resilience.faults.loss_probability = 0.3;
  resilience.retransmit_timeout_s = 0.5;
  resilience.max_retransmits = 1;
  resilience.orphan_hold_s = 20.0;
  config.resilience = resilience;

  obs::FlightRecorder recorder(obs::FlightRecorderOptions{65536, 100'000});
  std::ostringstream dump;
  recorder.set_output(&dump);
  obs::DecisionTracer tracer;
  tracer.set_sink(&recorder.span_sink());
  config.flight_recorder = &recorder;
  config.tracer = &tracer;

  sim::Simulation simulation(topo, config);
  const sim::SimulationResult result = simulation.run();

  ASSERT_GT(result.resilience.give_ups, 0u);
  ASSERT_GT(result.resilience.orphans_reclaimed, 0u);
  EXPECT_GT(recorder.triggers(), 0u);
  const std::string text = dump.str();
  EXPECT_NE(text.find("\"reason\":\"retransmit_exhaustion dst="), std::string::npos);
  EXPECT_NE(text.find("\"reason\":\"orphan_expiry dst="), std::string::npos);
  // The causal window carries decision spans, not just the trigger note.
  EXPECT_NE(text.find("\"request\":"), std::string::npos);
}

}  // namespace
}  // namespace anyqos
