// Integration tests of the paper's qualitative claims (Section 5.2) on the
// full experiment model. Shorter runs than the benches, but long enough for
// the orderings to be statistically solid at the tested rates.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "src/sim/experiment.h"

namespace anyqos::sim {
namespace {

SimulationResult run_system(const ExperimentModel& model, double lambda,
                            core::SelectionAlgorithm algorithm, std::size_t r,
                            bool use_gdi = false) {
  SimulationConfig config = model.base_config(lambda);
  config.algorithm = algorithm;
  config.max_tries = r;
  config.use_gdi = use_gdi;
  config.warmup_s = 1'000.0;
  config.measure_s = 5'000.0;
  config.seed = 1;
  Simulation sim(model.topology, config);
  return sim.run();
}

SimulationResult run_centralized(const ExperimentModel& model, double lambda) {
  SimulationConfig config = model.base_config(lambda);
  config.use_centralized = true;
  config.controller_node = 8;
  config.warmup_s = 1'000.0;
  config.measure_s = 5'000.0;
  config.seed = 1;
  Simulation sim(model.topology, config);
  return sim.run();
}

class PaperProperties : public ::testing::Test {
 protected:
  ExperimentModel model_ = paper_model();
};

TEST_F(PaperProperties, VeryLowLoadAdmitsEssentiallyEverything) {
  // Figure 6: "in the cases of very low arrival rates ... all systems
  // perform equally" (at AP ~ 1).
  for (const auto algorithm :
       {core::SelectionAlgorithm::kEvenDistribution, core::SelectionAlgorithm::kShortestPath}) {
    const SimulationResult result = run_system(model_, 5.0, algorithm, 2);
    EXPECT_GT(result.admission_probability, 0.999) << to_string(algorithm);
  }
}

TEST_F(PaperProperties, ApDecreasesWithArrivalRate) {
  double previous = 1.01;
  for (const double lambda : {10.0, 25.0, 40.0}) {
    const SimulationResult result =
        run_system(model_, lambda, core::SelectionAlgorithm::kEvenDistribution, 2);
    EXPECT_LT(result.admission_probability, previous) << "lambda=" << lambda;
    previous = result.admission_probability;
  }
}

TEST_F(PaperProperties, RetrialsImproveAdmissionWithDiminishingReturns) {
  // Figure 3's two observations: AP grows with R; the 1->2 jump dominates.
  const double lambda = 35.0;
  std::vector<double> ap;
  for (std::size_t r = 1; r <= 5; ++r) {
    ap.push_back(run_system(model_, lambda, core::SelectionAlgorithm::kEvenDistribution, r)
                     .admission_probability);
  }
  EXPECT_GT(ap[1], ap[0] + 0.01);          // R=2 clearly beats R=1
  EXPECT_GE(ap[4], ap[1] - 0.02);          // no collapse at large R
  EXPECT_GT(ap[1] - ap[0], ap[4] - ap[3] - 0.005);  // diminishing returns
}

TEST_F(PaperProperties, SystemOrderingAtModerateLoad) {
  // Figure 6's ordering: GDI >= WD/D+B, WD/D+H >= ED >= SP (we allow small
  // statistical slack between adjacent systems, none across the whole span).
  const double lambda = 35.0;
  const double gdi =
      run_system(model_, lambda, core::SelectionAlgorithm::kEvenDistribution, 2, true)
          .admission_probability;
  const double wdb =
      run_system(model_, lambda, core::SelectionAlgorithm::kDistanceBandwidth, 2)
          .admission_probability;
  const double wdh =
      run_system(model_, lambda, core::SelectionAlgorithm::kDistanceHistory, 2)
          .admission_probability;
  const double ed = run_system(model_, lambda, core::SelectionAlgorithm::kEvenDistribution, 2)
                        .admission_probability;
  const double sp = run_system(model_, lambda, core::SelectionAlgorithm::kShortestPath, 1)
                        .admission_probability;
  const double slack = 0.02;
  EXPECT_GE(gdi, wdb - slack);
  EXPECT_GE(wdb, ed - slack);
  EXPECT_GE(wdh, ed - slack);
  EXPECT_GT(ed, sp + 0.02);   // ED clearly beats SP
  EXPECT_GT(gdi, sp + 0.05);  // the full span is wide
}

TEST_F(PaperProperties, InformedSelectorsNeedFewerRetries) {
  // Figure 7: average retrials ED > WD/D+H > WD/D+B.
  const double lambda = 40.0;
  const double ed = run_system(model_, lambda, core::SelectionAlgorithm::kEvenDistribution, 2)
                        .average_attempts;
  const double wdh =
      run_system(model_, lambda, core::SelectionAlgorithm::kDistanceHistory, 2)
          .average_attempts;
  const double wdb =
      run_system(model_, lambda, core::SelectionAlgorithm::kDistanceBandwidth, 2)
          .average_attempts;
  EXPECT_GT(ed, wdh - 0.005);
  EXPECT_GT(wdh, wdb - 0.005);
  EXPECT_GT(ed, wdb);  // the endpoints are strictly ordered
}

TEST_F(PaperProperties, GdiIsanUpperBoundAcrossLoads) {
  for (const double lambda : {20.0, 45.0}) {
    const double gdi =
        run_system(model_, lambda, core::SelectionAlgorithm::kEvenDistribution, 2, true)
            .admission_probability;
    for (const auto algorithm :
         {core::SelectionAlgorithm::kEvenDistribution, core::SelectionAlgorithm::kDistanceHistory,
          core::SelectionAlgorithm::kDistanceBandwidth}) {
      const double ap = run_system(model_, lambda, algorithm, 2).admission_probability;
      EXPECT_GE(gdi, ap - 0.015) << to_string(algorithm) << " lambda=" << lambda;
    }
  }
}

TEST_F(PaperProperties, SpConcentratesTrafficOnFewDestinations) {
  // The motivation for randomized selection: SP sends each source's flows to
  // one member, so some members starve.
  const SimulationResult sp =
      run_system(model_, 20.0, core::SelectionAlgorithm::kShortestPath, 1);
  const SimulationResult ed =
      run_system(model_, 20.0, core::SelectionAlgorithm::kEvenDistribution, 1);
  const auto spread = [](const std::vector<std::uint64_t>& counts) {
    std::uint64_t lo = counts[0];
    std::uint64_t hi = counts[0];
    for (const std::uint64_t c : counts) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    return std::pair{lo, hi};
  };
  const auto [sp_lo, sp_hi] = spread(sp.per_destination_admissions);
  const auto [ed_lo, ed_hi] = spread(ed.per_destination_admissions);
  // ED's min/max ratio is far more balanced than SP's.
  EXPECT_GT(static_cast<double>(ed_lo) / static_cast<double>(ed_hi),
            static_cast<double>(sp_lo) / static_cast<double>(std::max<std::uint64_t>(sp_hi, 1)) +
                0.2);
}

TEST_F(PaperProperties, CentralizedSitsBetweenDacAndGdi) {
  // Section 1's alternative, measured: the agency's global (fixed-route)
  // view upper-bounds every DAC system; GDI's free path choice bounds it.
  const double lambda = 35.0;
  const SimulationResult ctrl = run_centralized(model_, lambda);
  EXPECT_EQ(ctrl.system_label, "CTRL@8");
  const double wdb =
      run_system(model_, lambda, core::SelectionAlgorithm::kDistanceBandwidth, 2)
          .admission_probability;
  const double gdi =
      run_system(model_, lambda, core::SelectionAlgorithm::kEvenDistribution, 2, true)
          .admission_probability;
  EXPECT_GE(ctrl.admission_probability, wdb - 0.01);
  EXPECT_LE(ctrl.admission_probability, gdi + 0.01);
  // The bottleneck cost is visible: every request pays agency round trips.
  EXPECT_GT(ctrl.average_messages, 0.0);
  EXPECT_GE(ctrl.average_decision_delay_s, 0.0);
}

TEST_F(PaperProperties, SlowCentralAgencyAccumulatesDecisionDelay) {
  // The scalability argument quantified: at 10 decisions/s a lambda=20
  // request stream drowns the agency — admission still works (decisions are
  // just late) but the decision latency explodes relative to a fast agency.
  SimulationConfig config = model_.base_config(20.0);
  config.use_centralized = true;
  config.controller_node = 8;
  config.controller_rate = 10.0;  // half the offered request rate
  config.warmup_s = 500.0;
  config.measure_s = 2'000.0;
  Simulation slow(model_.topology, config);
  const SimulationResult slow_result = slow.run();
  EXPECT_GT(slow_result.average_decision_delay_s, 10.0);  // unbounded queue growth

  config.controller_rate = 1.0e6;
  Simulation fast(model_.topology, config);
  const SimulationResult fast_result = fast.run();
  EXPECT_LT(fast_result.average_decision_delay_s, 1e-3);
}

TEST_F(PaperProperties, WdbPaysProbesForItsFewRetries) {
  // The compatibility trade-off the paper highlights: WD/D+B retries least
  // but generates probe traffic the others do not.
  const SimulationResult wdb =
      run_system(model_, 35.0, core::SelectionAlgorithm::kDistanceBandwidth, 2);
  const SimulationResult wdh =
      run_system(model_, 35.0, core::SelectionAlgorithm::kDistanceHistory, 2);
  EXPECT_GT(wdb.messages.by_kind(signaling::MessageKind::kProbe), 0u);
  EXPECT_EQ(wdh.messages.by_kind(signaling::MessageKind::kProbe), 0u);
  EXPECT_GT(wdb.average_messages, wdh.average_messages);
}

}  // namespace
}  // namespace anyqos::sim
