// Chaos matrix: loss x churn x link faults, every run drained to quiescence
// under a throwing InvariantAuditor. The acceptance bar for the resilient
// signaling plane: whatever the fault mix, a drained run ends with an empty
// flow table, zero reserved bandwidth, zero pending orphans, a clean audit
// log, and — when messages can be lost — nonzero retransmission and
// orphan-reclaim activity whose hop tally reconciles exactly with the
// MessageCounter.
#include <gtest/gtest.h>

#include <sstream>

#include "src/audit/auditor.h"
#include "src/net/topologies.h"
#include "src/sim/churn.h"
#include "src/sim/faults.h"
#include "src/sim/simulation.h"

namespace anyqos::sim {
namespace {

SimulationConfig chaos_config(double loss) {
  SimulationConfig config;
  config.traffic.arrival_rate = 5.0;
  config.traffic.mean_holding_s = 30.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {1, 2, 5};
  config.group_members = {0, 3};
  config.algorithm = core::SelectionAlgorithm::kEvenDistribution;  // probe-free
  config.max_tries = 2;
  config.warmup_s = 100.0;
  config.measure_s = 600.0;
  config.seed = 31;
  config.drain_to_quiescence = true;

  signaling::ResilienceOptions resilience;
  resilience.faults.loss_probability = loss;
  resilience.retransmit_timeout_s = 0.5;
  resilience.max_retransmits = 2;
  resilience.orphan_hold_s = 20.0;
  config.resilience = resilience;
  return config;
}

void add_churn(SimulationConfig& config) {
  config.churn.push_back(single_churn(0, 250.0, 350.0));
  config.churn.push_back(single_churn(1, 450.0, 520.0));
}

void add_faults(SimulationConfig& config) {
  config.faults.push_back(single_fault(1, 2, 300.0, 450.0));
}

TEST(ChaosMatrix, EveryCellDrainsCleanUnderAudit) {
  const net::Topology topo = net::topologies::ring(6);
  const double losses[] = {0.0, 0.05, 0.2};
  for (const double loss : losses) {
    for (const bool churn : {false, true}) {
      for (const bool faults : {false, true}) {
        std::ostringstream label;
        label << "loss=" << loss << " churn=" << churn << " faults=" << faults;
        SCOPED_TRACE(label.str());

        SimulationConfig config = chaos_config(loss);
        if (churn) {
          add_churn(config);
        }
        if (faults) {
          add_faults(config);
        }
        Simulation sim(topo, config);
        audit::AuditorOptions audit_options;
        audit_options.checkpoint_interval_s = 50.0;
        audit::InvariantAuditor auditor(audit_options);  // throwing mode
        auditor.attach(sim);
        const SimulationResult result = sim.run();

        // Quiescence: nothing live, nothing leaked, nothing pending.
        EXPECT_EQ(sim.active_flows(), 0u);
        EXPECT_DOUBLE_EQ(sim.ledger().total_reserved(), 0.0);
        ASSERT_NE(sim.resilient(), nullptr);
        EXPECT_EQ(sim.resilient()->pending_orphans(), 0u);
        EXPECT_EQ(sim.resilient()->reclaim_pending(), 0u);  // nothing to repair
        EXPECT_TRUE(auditor.log().empty()) << auditor.log().to_text();
        EXPECT_EQ(auditor.open_reservations(), 0u);

        EXPECT_GT(result.offered, 1'000u);
        EXPECT_GT(result.admission_probability, 0.0);
        if (loss > 0.0) {
          // Lost messages must be visible as recovery work.
          EXPECT_GT(result.resilience.messages_lost, 0u);
          EXPECT_GT(result.resilience.retransmits, 0u);
          EXPECT_GT(result.resilience.timeouts, 0u);
          EXPECT_GT(result.resilience.orphans_reclaimed, 0u);
          EXPECT_GT(result.resilience.orphaned_bandwidth_reclaimed_bps, 0.0);
        } else {
          // Zero random loss: the only way to lose a message is a link
          // outage swallowing it, so without faults recovery is silent.
          EXPECT_EQ(result.resilience.messages_lost, 0u);
          if (!faults) {
            EXPECT_EQ(result.resilience.messages_killed_by_outage, 0u);
            EXPECT_EQ(result.resilience.retransmits, 0u);
            EXPECT_EQ(result.resilience.resv_orphans, 0u);
            EXPECT_EQ(result.resilience.tear_orphans, 0u);
          } else {
            EXPECT_GT(result.resilience.messages_killed_by_outage, 0u);
          }
        }
        if (churn) {
          EXPECT_GT(result.dropped_by_churn, 0u);
          EXPECT_EQ(result.failover_attempts, result.dropped_by_churn);
          EXPECT_GT(result.failover_admitted, 0u);
        } else {
          EXPECT_EQ(result.dropped_by_churn, 0u);
          EXPECT_EQ(result.failover_attempts, 0u);
        }
        if (faults) {
          EXPECT_GT(result.dropped_by_fault, 0u);
        } else {
          EXPECT_EQ(result.dropped_by_fault, 0u);
        }
      }
    }
  }
}

TEST(ChaosMatrix, RecoveryHopsReconcileExactlyWithTheMessageCounter) {
  // With zero warm-up the MessageCounter is never reset mid-run, and under
  // ED no probe traffic shares it — so the resilient protocol's own hop
  // mirror must equal the counter's total to the last hop, retries, error
  // unwinds, churn teardowns, and forced fault teardowns included.
  const net::Topology topo = net::topologies::ring(6);
  SimulationConfig config = chaos_config(0.15);
  config.warmup_s = 0.0;
  add_churn(config);
  add_faults(config);
  Simulation sim(topo, config);
  const SimulationResult result = sim.run();

  EXPECT_GT(result.resilience.retransmits, 0u);
  EXPECT_GT(result.resilience.orphans_reclaimed, 0u);
  EXPECT_EQ(result.resilience.hops_counted, result.messages.total());
  EXPECT_DOUBLE_EQ(sim.ledger().total_reserved(), 0.0);
}

TEST(ChaosMatrix, PerfectResilientPlaneMatchesTheBaseProtocolRun) {
  // Zero-loss resilience is the paper's fault-free walk in disguise: at
  // equal seed the run must be bit-identical to the non-resilient baseline.
  const net::Topology topo = net::topologies::ring(6);
  SimulationConfig config = chaos_config(0.0);
  Simulation resilient(topo, config);
  const SimulationResult a = resilient.run();

  config.resilience.reset();
  Simulation baseline(topo, config);
  const SimulationResult b = baseline.run();

  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.messages.total(), b.messages.total());
  EXPECT_DOUBLE_EQ(a.admission_probability, b.admission_probability);
  EXPECT_DOUBLE_EQ(a.average_attempts, b.average_attempts);
}

TEST(ChaosMatrix, AuditedDrainTerminates) {
  // Regression: the auditor's self-rescheduling checkpoint must stop
  // re-arming once the drain begins, or run-to-empty never returns.
  const net::Topology topo = net::topologies::ring(6);
  SimulationConfig config = chaos_config(0.1);
  config.measure_s = 200.0;
  Simulation sim(topo, config);
  audit::AuditorOptions audit_options;
  audit_options.checkpoint_interval_s = 10.0;  // many parked checkpoints
  audit::InvariantAuditor auditor(audit_options);
  auditor.attach(sim);
  const SimulationResult result = sim.run();
  EXPECT_GT(result.offered, 0u);
  EXPECT_TRUE(auditor.log().empty()) << auditor.log().to_text();
  EXPECT_EQ(sim.active_flows(), 0u);
}

}  // namespace
}  // namespace anyqos::sim
