// The InvariantAuditor attached to full simulation runs: a healthy system
// must produce zero violations across every paper invariant while the
// auditor shadows the ledger, observes each DAC loop, and checkpoints
// periodically. This is the machine-checked form of the correctness
// argument DESIGN.md makes in prose.
#include <gtest/gtest.h>

#include "src/audit/auditor.h"
#include "src/sim/experiment.h"

namespace anyqos::sim {
namespace {

SimulationConfig small_config(const ExperimentModel& model, double lambda) {
  SimulationConfig config = model.base_config(lambda);
  config.warmup_s = 200.0;
  config.measure_s = 1'000.0;
  config.seed = 11;
  return config;
}

class AuditedSimulation : public ::testing::Test {
 protected:
  ExperimentModel model_ = paper_model();
};

TEST_F(AuditedSimulation, EverySelectionAlgorithmRunsClean) {
  for (const auto algorithm :
       {core::SelectionAlgorithm::kEvenDistribution, core::SelectionAlgorithm::kDistanceHistory,
        core::SelectionAlgorithm::kDistanceBandwidth, core::SelectionAlgorithm::kShortestPath}) {
    SimulationConfig config = small_config(model_, 35.0);  // heavy load: retries happen
    config.algorithm = algorithm;
    config.max_tries = 3;
    Simulation simulation(model_.topology, config);
    audit::InvariantAuditor auditor;  // throwing mode: a violation aborts the run
    auditor.attach(simulation);
    const SimulationResult result = simulation.run();
    EXPECT_GT(result.offered, 0u) << to_string(algorithm);
    EXPECT_TRUE(auditor.log().empty()) << to_string(algorithm) << "\n"
                                       << auditor.log().to_text();
    EXPECT_EQ(auditor.open_reservations(), simulation.active_flows())
        << to_string(algorithm) << ": every open reservation belongs to an active flow";
  }
}

TEST_F(AuditedSimulation, GdiOracleRunsClean) {
  SimulationConfig config = small_config(model_, 35.0);
  config.use_gdi = true;
  Simulation simulation(model_.topology, config);
  audit::InvariantAuditor auditor;
  auditor.attach(simulation);
  const SimulationResult result = simulation.run();
  EXPECT_GT(result.admitted, 0u);
  EXPECT_TRUE(auditor.log().empty()) << auditor.log().to_text();
}

TEST_F(AuditedSimulation, FaultScheduleRunsClean) {
  // Link failures exercise the fail/restore observer paths and the
  // drop-then-fail teardown ordering.
  SimulationConfig config = small_config(model_, 25.0);
  config.algorithm = core::SelectionAlgorithm::kDistanceHistory;
  config.faults.push_back({12, 16, 400.0, 700.0});
  config.faults.push_back({15, 16, 500.0, 900.0});
  Simulation simulation(model_.topology, config);
  audit::InvariantAuditor auditor;
  auditor.attach(simulation);
  const SimulationResult result = simulation.run();
  EXPECT_GT(result.offered, 0u);
  EXPECT_TRUE(auditor.log().empty()) << auditor.log().to_text();
}

TEST_F(AuditedSimulation, CheckpointCadenceIsConfigurable) {
  SimulationConfig config = small_config(model_, 20.0);
  audit::AuditorOptions options;
  options.checkpoint_interval_s = 10.0;  // 120 checkpoints across the run
  Simulation simulation(model_.topology, config);
  audit::InvariantAuditor auditor(options);
  auditor.attach(simulation);
  const SimulationResult result = simulation.run();
  EXPECT_GT(result.offered, 0u);
  EXPECT_TRUE(auditor.log().empty()) << auditor.log().to_text();
}

}  // namespace
}  // namespace anyqos::sim
