// End-to-end contract of the live ops plane (DESIGN.md §13): steering a
// run over a real socket, scraping the published documents, and replaying
// the recorded ops log byte-identically — plus the zero-perturbation
// guarantee that an idle ops plane changes no artifact byte.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sstream>
#include <string>

#include "src/control/directive.h"
#include "src/control/governor.h"
#include "src/net/topologies.h"
#include "src/obs/ops_server.h"
#include "src/obs/timeline.h"
#include "src/sim/metrics_export.h"
#include "src/sim/simulation.h"
#include "src/sim/trace.h"

namespace anyqos {
namespace {

sim::SimulationConfig ops_config() {
  sim::SimulationConfig config;
  config.traffic.arrival_rate = 20.0;
  config.traffic.mean_holding_s = 60.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {1, 3, 5, 7, 9, 11, 13, 15, 17};
  config.group_members = {0, 4, 8, 12, 16};
  config.algorithm = core::SelectionAlgorithm::kEvenDistribution;
  config.max_tries = 2;
  config.warmup_s = 0.0;
  config.measure_s = 400.0;
  config.seed = 33;
  config.ops_interval_s = 50.0;
  return config;
}

// One blocking HTTP exchange against the loopback ops server.
std::string http_exchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)), 0);
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    EXPECT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (ssize_t n = 0; (n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0;) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& target) {
  return http_exchange(port, "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

std::string http_post(std::uint16_t port, const std::string& target, const std::string& body) {
  return http_exchange(port, "POST " + target + " HTTP/1.1\r\nHost: t\r\nContent-Length: " +
                            std::to_string(body.size()) + "\r\n\r\n" + body);
}

struct RunArtifacts {
  std::string trace;
  std::string timeline;
  std::string ops_log;
  std::uint64_t directives_applied = 0;
  sim::SimulationResult result;
};

// Runs the config once, with optional live mailbox/server wiring and an
// optional pre-recorded replay, capturing every byte-comparable artifact.
RunArtifacts run_once(sim::SimulationConfig config, obs::OpsServer* server,
                      control::DirectiveMailbox* mailbox,
                      std::vector<control::TimedDirective> replay) {
  const net::Topology topo = net::topologies::mci_backbone();
  control::OverloadGovernor governor;  // fresh per run: bind() is once-only
  config.governor = &governor;
  config.ops_server = server;
  config.ops_mailbox = mailbox;
  config.ops_replay = std::move(replay);

  std::ostringstream trace_out;
  sim::CsvTraceSink trace(trace_out);
  config.trace = &trace;
  obs::TimelineOptions timeline_options;
  timeline_options.interval_s = 50.0;
  obs::Timeline timeline(timeline_options);
  config.timeline = &timeline;
  std::ostringstream log_out;
  control::OpsLogWriter ops_log(log_out);
  config.ops_log = &ops_log;

  sim::Simulation simulation(topo, config);
  RunArtifacts artifacts;
  artifacts.result = simulation.run();
  artifacts.trace = trace_out.str();
  std::ostringstream timeline_out;
  timeline.write_jsonl(timeline_out);
  artifacts.timeline = timeline_out.str();
  artifacts.ops_log = log_out.str();
  artifacts.directives_applied = simulation.ops_directives_applied();
  return artifacts;
}

TEST(OpsPlaneIntegration, SteerScrapeAndReplayByteIdentically) {
  control::DirectiveMailbox mailbox;
  obs::OpsServer server;
  server.set_control_handler(
      [&mailbox](const std::string& knob_name, const std::string& body) {
        obs::ControlOutcome outcome;
        const auto knob = control::parse_knob(knob_name);
        if (!knob.has_value()) {
          outcome.status = 404;
          outcome.body = "{}\n";
          return outcome;
        }
        mailbox.post({*knob, std::stod(body)});
        outcome.body = "{\"queued\":true}\n";
        return outcome;
      });
  server.start();

  // Steer over the wire before the run starts: both directives sit in the
  // mailbox and drain at the first ops poll (t = 50), which makes the live
  // leg deterministic without any wall-clock coordination.
  EXPECT_NE(http_post(server.port(), "/control/shed-budget", "2").find("HTTP/1.1 200"),
            std::string::npos);
  EXPECT_NE(http_post(server.port(), "/control/retrial-ceiling", "1").find("HTTP/1.1 200"),
            std::string::npos);

  const RunArtifacts live = run_once(ops_config(), &server, &mailbox, {});
  EXPECT_EQ(live.directives_applied, 2u);
  ASSERT_FALSE(live.ops_log.empty());
  // Both directives were applied (and logged) at the first poll boundary.
  EXPECT_NE(live.ops_log.find("\"t\":50,\"knob\":\"shed-budget\",\"value\":2"),
            std::string::npos);
  EXPECT_NE(live.ops_log.find("\"t\":50,\"knob\":\"retrial-ceiling\",\"value\":1"),
            std::string::npos);
  EXPECT_GT(live.result.shed, 0u);  // budget 2 msgs/s under lambda 20 bites hard

  // The published documents describe the finished run, over a real socket.
  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("anyqos_sim_time_seconds"), std::string::npos);
  EXPECT_NE(metrics.find("anyqos_governor_effective_retries"), std::string::npos);
  EXPECT_NE(metrics.find("outcome=\"shed\""), std::string::npos);
  const std::string status = http_get(server.port(), "/status");
  EXPECT_NE(status.find("\"directives_applied\":2"), std::string::npos);
  EXPECT_NE(status.find("\"effective_max_tries\":1"), std::string::npos);
  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"draining\":false"), std::string::npos);
  server.stop();

  // Replay the recorded log in a serverless run: every artifact byte-matches
  // and the re-recorded ops log is a fixpoint.
  std::istringstream log_in(live.ops_log);
  const RunArtifacts replay =
      run_once(ops_config(), nullptr, nullptr, control::load_ops_log(log_in));
  EXPECT_EQ(replay.directives_applied, 2u);
  EXPECT_EQ(replay.trace, live.trace);
  EXPECT_EQ(replay.timeline, live.timeline);
  EXPECT_EQ(replay.ops_log, live.ops_log);
  EXPECT_EQ(replay.result.admitted, live.result.admitted);
  EXPECT_EQ(replay.result.shed, live.result.shed);
}

TEST(OpsPlaneIntegration, IdleOpsPlaneChangesNoArtifactByte) {
  // A scrape-only server (no directives) must not perturb the run: the ops
  // poll timer reads state and publishes but never mutates, so the trace
  // and timeline are byte-identical to a run with no ops plane at all.
  const net::Topology topo = net::topologies::mci_backbone();

  const auto run_plain = [&topo](sim::SimulationConfig config,
                                 obs::OpsServer* server) {
    control::OverloadGovernor governor;
    config.governor = &governor;
    config.ops_server = server;
    std::ostringstream trace_out;
    sim::CsvTraceSink trace(trace_out);
    config.trace = &trace;
    obs::TimelineOptions timeline_options;
    timeline_options.interval_s = 50.0;
    obs::Timeline timeline(timeline_options);
    config.timeline = &timeline;
    sim::Simulation simulation(topo, config);
    (void)simulation.run();
    std::ostringstream timeline_out;
    timeline.write_jsonl(timeline_out);
    return std::make_pair(trace_out.str(), timeline_out.str());
  };

  const auto baseline = run_plain(ops_config(), nullptr);
  obs::OpsServer server;
  server.start();
  const auto observed = run_plain(ops_config(), &server);
  server.stop();
  EXPECT_EQ(observed.first, baseline.first);
  EXPECT_EQ(observed.second, baseline.second);
}

TEST(OpsPlaneIntegration, ExportMetricsPassesExtraLabelsThrough) {
  // chaossim publishes one registry for the whole matrix with a cell=<n>
  // label per run; every exported series must carry the extra labels.
  const net::Topology topo = net::topologies::mci_backbone();
  sim::SimulationConfig config = ops_config();
  sim::Simulation simulation(topo, config);
  const sim::SimulationResult result = simulation.run();

  obs::MetricsRegistry registry;
  sim::export_metrics(simulation, config, result, registry, {{"cell", "7"}});
  EXPECT_EQ(registry
                .counter("anyqos_requests_total", "",
                         {{"system", result.system_label},
                          {"outcome", "admitted"},
                          {"cell", "7"}})
                .value(),
            result.admitted);

  std::ostringstream prom;
  registry.write_prometheus(prom);
  // Every series line (not HELP/TYPE comments) carries the cell label.
  std::istringstream lines(prom.str());
  std::size_t series_lines = 0;
  for (std::string line; std::getline(lines, line);) {
    if (line.empty() || line.front() == '#') {
      continue;
    }
    ++series_lines;
    EXPECT_NE(line.find("cell=\"7\""), std::string::npos) << line;
  }
  EXPECT_GT(series_lines, 20u);
}

}  // namespace
}  // namespace anyqos
