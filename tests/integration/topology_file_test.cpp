// End-to-end: a topology written to disk drives the identical evaluation as
// the built-in builder — the dacsim --topology-file workflow.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/net/topology_io.h"
#include "src/sim/experiment.h"

namespace anyqos {
namespace {

TEST(TopologyFileRoundTrip, LoadedBackboneReproducesBuiltInResults) {
  const sim::ExperimentModel model = sim::paper_model();
  const std::string path = ::testing::TempDir() + "/anyqos_mci_roundtrip.topo";
  net::save_topology(model.topology, path);
  const net::Topology loaded = net::load_topology(path);
  std::remove(path.c_str());

  sim::SimulationConfig config = model.base_config(30.0);
  config.algorithm = core::SelectionAlgorithm::kDistanceHistory;
  config.warmup_s = 300.0;
  config.measure_s = 1'500.0;
  config.seed = 12;

  sim::Simulation original(model.topology, config);
  sim::Simulation roundtripped(loaded, config);
  const sim::SimulationResult a = original.run();
  const sim::SimulationResult b = roundtripped.run();

  // Same topology + same seed => bit-identical runs.
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_DOUBLE_EQ(a.admission_probability, b.admission_probability);
  EXPECT_DOUBLE_EQ(a.average_attempts, b.average_attempts);
  EXPECT_EQ(a.messages.total(), b.messages.total());
  EXPECT_EQ(a.per_destination_admissions, b.per_destination_admissions);
}

TEST(TopologyFileRoundTrip, HandWrittenFileDrivesFullStack) {
  // A user-authored topology (not produced by save_topology) runs the whole
  // pipeline: parse -> routes -> simulate.
  const std::string text =
      "# tiny dumbbell\n"
      "node 0 left-a\n"
      "node 1 left-b\n"
      "node 2 right-a\n"
      "node 3 right-b\n"
      "link 0 1 100000000\n"
      "link 2 3 100000000\n"
      "link 1 2 20000000\n";
  const net::Topology topo = net::parse_topology_text(text);
  sim::SimulationConfig config;
  config.traffic.arrival_rate = 3.0;
  config.traffic.mean_holding_s = 30.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {0};
  config.group_members = {3};
  config.anycast_share = 0.5;
  config.warmup_s = 50.0;
  config.measure_s = 400.0;
  config.seed = 4;
  config.max_tries = 1;
  sim::Simulation simulation(topo, config);
  const sim::SimulationResult result = simulation.run();
  EXPECT_GT(result.offered, 0u);
  // 3/s * 30s = 90 erlangs over a 10 Mbit anycast waist (156 circuits): all in.
  EXPECT_GT(result.admission_probability, 0.99);
}

}  // namespace
}  // namespace anyqos
