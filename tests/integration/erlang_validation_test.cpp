// Cross-module validation: the discrete-event simulator reproduces textbook
// Erlang-B blocking on a single link, tying the des/sim stack to the
// analysis stack through independent mathematics.
#include <gtest/gtest.h>

#include "src/analysis/erlang.h"
#include "src/net/topologies.h"
#include "src/sim/simulation.h"

namespace anyqos {
namespace {

// Two routers, one duplex link; the anycast "group" is the far router, so
// every flow is a unicast M/M/C/C customer of that link.
struct SingleLink {
  net::Topology topo;
  SingleLink() {
    topo.add_router();
    topo.add_router();
    topo.add_duplex_link(0, 1, 100.0e6);
  }
};

class ErlangValidation : public ::testing::TestWithParam<double> {};

TEST_P(ErlangValidation, SimulatedBlockingMatchesErlangB) {
  const double offered_erlangs = GetParam();
  SingleLink net;
  sim::SimulationConfig config;
  // 20% share of 100 Mbit at 64 kbit flows = 312 circuits.
  config.anycast_share = 0.2;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.mean_holding_s = 100.0;
  config.traffic.arrival_rate = offered_erlangs / config.traffic.mean_holding_s;
  config.traffic.sources = {0};
  config.group_members = {1};
  config.max_tries = 1;
  config.warmup_s = 1'000.0;
  config.measure_s = 30'000.0;
  config.seed = 99;
  sim::Simulation simulation(net.topo, config);
  const sim::SimulationResult result = simulation.run();

  const double expected_blocking = analysis::erlang_b(offered_erlangs, 312);
  const double simulated_blocking = 1.0 - result.admission_probability;
  // Absolute tolerance: three sigma-ish at these run lengths.
  EXPECT_NEAR(simulated_blocking, expected_blocking, 0.01)
      << "offered=" << offered_erlangs;
}

INSTANTIATE_TEST_SUITE_P(OfferedLoads, ErlangValidation,
                         ::testing::Values(250.0, 312.0, 400.0, 600.0));

TEST(ErlangValidationLittle, LittlesLawHoldsOnTheSimulatedLink) {
  // L = lambda_effective * W: average active flows must equal the admitted
  // throughput times the mean holding time.
  SingleLink net;
  sim::SimulationConfig config;
  config.anycast_share = 0.2;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.mean_holding_s = 50.0;
  config.traffic.arrival_rate = 5.0;
  config.traffic.sources = {0};
  config.group_members = {1};
  config.max_tries = 1;
  config.warmup_s = 1'000.0;
  config.measure_s = 20'000.0;
  config.seed = 7;
  sim::Simulation simulation(net.topo, config);
  const sim::SimulationResult result = simulation.run();
  const double admitted_rate =
      static_cast<double>(result.admitted) / config.measure_s;
  const double little_l = admitted_rate * config.traffic.mean_holding_s;
  EXPECT_NEAR(result.average_active_flows / little_l, 1.0, 0.03);
}

TEST(ErlangValidationPasta, InsensitivityToHoldingScale) {
  // Erlang-B depends only on the offered load v = lambda/mu, not on the
  // holding-time scale. Halving the holding time while doubling the rate
  // must leave blocking unchanged (within noise).
  SingleLink net;
  const auto run = [&](double rate, double holding) {
    sim::SimulationConfig config;
    config.anycast_share = 0.2;
    config.traffic.flow_bandwidth_bps = 64'000.0;
    config.traffic.mean_holding_s = holding;
    config.traffic.arrival_rate = rate;
    config.traffic.sources = {0};
    config.group_members = {1};
    config.max_tries = 1;
    config.warmup_s = 500.0;
    config.measure_s = 20'000.0;
    config.seed = 3;
    sim::Simulation simulation(net.topo, config);
    return simulation.run().admission_probability;
  };
  const double slow = run(4.0, 100.0);   // 400 erlangs
  const double fast = run(8.0, 50.0);    // 400 erlangs
  EXPECT_NEAR(slow, fast, 0.01);
}

}  // namespace
}  // namespace anyqos
