// Scenario-plane end-to-end contract: a scenario that goes through the file
// format (save -> load) runs byte-identically to the in-memory original —
// same flow trace, same timeline — across seeds and across the
// materialize_random_axes expansion. This is what makes a committed repro
// file trustworthy: the artifact on disk IS the run.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/obs/timeline.h"
#include "src/sim/faults.h"
#include "src/sim/scenario.h"
#include "src/sim/simulation.h"
#include "src/sim/trace.h"

namespace anyqos {
namespace {

sim::Scenario chaos_scenario(std::uint64_t seed) {
  sim::Scenario scenario;
  scenario.name = "roundtrip";
  scenario.topology = "mci";
  scenario.seed = seed;
  scenario.lambda = 20.0;
  scenario.mean_holding_s = 40.0;
  scenario.sources = {0, 3, 5, 9, 13, 16};
  scenario.group = {2, 7, 11, 15, 18};
  scenario.max_tries = 2;
  scenario.warmup_s = 0.0;
  scenario.measure_s = 150.0;
  scenario.drain_max_events = 2'000'000;
  scenario.drain_max_sim_s = 2'000.0;
  scenario.resilience.emplace();
  scenario.resilience->loss_probability = 0.05;
  scenario.resilience->hop_delay_s = 0.01;
  scenario.reconvergence.emplace();
  scenario.reconvergence->policy = "flooding";
  scenario.reconvergence->param_s = 0.05;
  scenario.path_repair = true;
  scenario.governor.emplace();
  scenario.governor->min_tries = 1;
  scenario.governor->breaker_cooldown_s = 30.0;
  scenario.axes.link_rate = 0.01;
  scenario.axes.link_mean_repair_s = 30.0;
  scenario.link_faults.push_back(sim::single_fault(0, 1, 40.0, 80.0));
  scenario.churn.push_back(sim::single_churn(1, 60.0, 100.0));
  scenario.node_faults.push_back(sim::single_node_fault(9, 90.0, 120.0));
  control::TimedDirective directive;
  directive.apply_at = 70.0;
  directive.directive.knob = control::Knob::kRetrialCeiling;
  directive.directive.value = 2.0;
  scenario.ops.push_back(directive);
  return scenario;
}

struct RunArtifacts {
  std::string trace;
  std::string timeline;
};

RunArtifacts run_and_capture(const sim::Scenario& scenario) {
  auto run = sim::make_scenario_run(scenario);
  std::ostringstream trace_csv;
  sim::CsvTraceSink trace(trace_csv);
  obs::Timeline timeline(obs::TimelineOptions{25.0});
  run->config.trace = &trace;
  run->config.timeline = &timeline;
  sim::Simulation simulation(run->topology, run->config);
  (void)simulation.run();
  std::ostringstream timeline_jsonl;
  timeline.write_jsonl(timeline_jsonl);
  return RunArtifacts{trace_csv.str(), timeline_jsonl.str()};
}

TEST(ScenarioRoundtrip, SavedScenarioRunsByteIdenticallyAcrossSeeds) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 21ULL}) {
    const sim::Scenario original = chaos_scenario(seed);
    const sim::Scenario reloaded = sim::load_scenario(save_scenario(original));
    const RunArtifacts direct = run_and_capture(original);
    const RunArtifacts via_file = run_and_capture(reloaded);
    EXPECT_EQ(direct.trace, via_file.trace) << "trace diverged at seed " << seed;
    EXPECT_EQ(direct.timeline, via_file.timeline) << "timeline diverged at seed " << seed;
    // The artifacts are non-trivial: real flows flowed.
    EXPECT_GT(direct.trace.size(), 100U);
    EXPECT_NE(direct.trace.find("ADMITTED"), std::string::npos);
  }
}

TEST(ScenarioRoundtrip, MaterializedAxesRunByteIdenticallyToLazyAxes) {
  const sim::Scenario original = chaos_scenario(5);
  sim::Scenario expanded = original;
  const net::Topology topology = sim::build_scenario_topology(original.topology);
  sim::materialize_random_axes(expanded, topology);
  // The expanded scenario survives its own save/load and still matches.
  const sim::Scenario reloaded = sim::load_scenario(save_scenario(expanded));
  const RunArtifacts lazy = run_and_capture(original);
  const RunArtifacts eager = run_and_capture(reloaded);
  EXPECT_EQ(lazy.trace, eager.trace);
  EXPECT_EQ(lazy.timeline, eager.timeline);
}

}  // namespace
}  // namespace anyqos
