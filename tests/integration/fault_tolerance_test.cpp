// Fault-tolerance extension exercised on the full experiment model
// (Section 3 assumes no faults and notes the approach extends; we verify the
// DAC procedure degrades gracefully and recovers).
#include <gtest/gtest.h>

#include "src/sim/experiment.h"
#include "src/sim/faults.h"

namespace anyqos::sim {
namespace {

class FaultTolerance : public ::testing::Test {
 protected:
  ExperimentModel model_ = paper_model();

  SimulationConfig config(double lambda) {
    SimulationConfig c = model_.base_config(lambda);
    c.algorithm = core::SelectionAlgorithm::kDistanceHistory;
    c.max_tries = 2;
    c.warmup_s = 1'000.0;
    c.measure_s = 5'000.0;
    c.seed = 9;
    return c;
  }
};

TEST_F(FaultTolerance, SingleLinkOutageOnlyDentsAdmission) {
  // Fail one backbone link for a quarter of the measurement window. The
  // anycast group's redundancy plus retrials must keep AP high.
  SimulationConfig faulty = config(15.0);
  faulty.faults.push_back(single_fault(8, 12, 2'000.0, 3'250.0));
  Simulation with_fault(model_.topology, faulty);
  const SimulationResult result = with_fault.run();
  EXPECT_GT(result.dropped, 0u);          // flows crossing the link died
  EXPECT_GT(result.admission_probability, 0.9);  // but the system held up
}

TEST_F(FaultTolerance, OutageIsWorseThanNoOutage) {
  const SimulationResult clean = [&] {
    Simulation sim(model_.topology, config(30.0));
    return sim.run();
  }();
  SimulationConfig faulty = config(30.0);
  faulty.faults.push_back(single_fault(8, 12, 1'500.0, 6'000.0));
  faulty.faults.push_back(single_fault(7, 8, 1'500.0, 6'000.0));
  Simulation sim(model_.topology, faulty);
  const SimulationResult result = sim.run();
  EXPECT_LT(result.admission_probability, clean.admission_probability);
}

TEST_F(FaultTolerance, HistorySelectorRoutesAroundDeadMember) {
  // Isolate member router 16 by failing all its links: WD/D+H must learn to
  // stop selecting it, keeping AP near the 4-member level.
  SimulationConfig faulty = config(10.0);
  for (const auto& [a, b] : {std::pair{12, 16}, std::pair{15, 16}, std::pair{16, 17},
                            std::pair{16, 18}}) {
    faulty.faults.push_back(single_fault(static_cast<net::NodeId>(a),
                                         static_cast<net::NodeId>(b), 500.0, 7'000.0));
  }
  Simulation sim(model_.topology, faulty);
  const SimulationResult result = sim.run();
  // Member index 4 is router 16.
  const auto& per_dest = result.per_destination_admissions;
  ASSERT_EQ(per_dest.size(), 5u);
  EXPECT_EQ(per_dest[4], 0u);  // unreachable member admitted nothing
  EXPECT_GT(result.admission_probability, 0.85);
}

TEST_F(FaultTolerance, RandomOutageScheduleRunsToCompletion) {
  SimulationConfig faulty = config(20.0);
  faulty.faults =
      random_fault_schedule(model_.topology, 6'000.0, 5e-5, 300.0, 42);
  ASSERT_FALSE(faulty.faults.empty());
  Simulation sim(model_.topology, faulty);
  const SimulationResult result = sim.run();
  EXPECT_GT(result.offered, 0u);
  EXPECT_GT(result.admission_probability, 0.5);
  EXPECT_LE(result.admission_probability, 1.0);
}

}  // namespace
}  // namespace anyqos::sim
