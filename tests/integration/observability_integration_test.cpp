// End-to-end reconciliation of the observability layers: decision spans,
// the CSV/flow trace, the metrics registry, and the engine profiler must
// all describe the same run, exactly.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "src/net/topologies.h"
#include "src/obs/profiler.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/sim/faults.h"
#include "src/sim/metrics_export.h"
#include "src/sim/simulation.h"
#include "src/sim/trace.h"

namespace anyqos {
namespace {

sim::SimulationConfig small_mci_config() {
  sim::SimulationConfig config;
  config.traffic.arrival_rate = 20.0;
  config.traffic.mean_holding_s = 60.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {1, 3, 5, 7, 9, 11, 13, 15, 17};
  config.group_members = {0, 4, 8, 12, 16};
  config.algorithm = core::SelectionAlgorithm::kEvenDistribution;
  config.max_tries = 2;
  // No warm-up: spans cover every request, so span-derived statistics must
  // reconcile exactly with the measured aggregates.
  config.warmup_s = 0.0;
  config.measure_s = 400.0;
  config.seed = 21;
  return config;
}

TEST(ObservabilityIntegration, SpansReconcileExactlyWithMetrics) {
  const net::Topology topo = net::topologies::mci_backbone();
  sim::SimulationConfig config = small_mci_config();
  obs::MemorySpanSink spans;
  obs::DecisionTracer tracer;
  tracer.set_sink(&spans);
  config.tracer = &tracer;
  sim::MemoryTraceSink trace;
  config.trace = &trace;

  sim::Simulation simulation(topo, config);
  const sim::SimulationResult result = simulation.run();
  ASSERT_GT(result.offered, 100u);

  // One root span per offered request, each with its children accounted for.
  ASSERT_EQ(spans.decisions().size(), result.offered);
  std::uint64_t admitted = 0;
  std::uint64_t attempts_sum = 0;
  std::map<std::size_t, std::uint64_t> admissions_by_member;
  std::set<std::uint64_t> request_ids;
  for (const obs::DecisionSpan& root : spans.decisions()) {
    EXPECT_TRUE(request_ids.insert(root.request_id).second);
    EXPECT_GE(root.attempts, 1u);
    EXPECT_LE(root.attempts, config.max_tries);
    EXPECT_EQ(spans.attempts_for(root.request_id).size(), root.attempts);
    attempts_sum += root.attempts;
    if (root.admitted) {
      ++admitted;
      ASSERT_TRUE(root.destination_index.has_value());
      ++admissions_by_member[*root.destination_index];
    } else {
      EXPECT_FALSE(root.destination_index.has_value());
    }
  }

  // Exact agreement with the collector's aggregates.
  EXPECT_EQ(admitted, result.admitted);
  EXPECT_DOUBLE_EQ(static_cast<double>(admitted) / static_cast<double>(result.offered),
                   result.admission_probability);
  EXPECT_DOUBLE_EQ(static_cast<double>(attempts_sum) / static_cast<double>(result.offered),
                   result.average_attempts);
  for (std::size_t i = 0; i < result.per_destination_admissions.size(); ++i) {
    EXPECT_EQ(admissions_by_member[i], result.per_destination_admissions[i])
        << "member " << i;
  }

  // The flow trace joins against spans: every flow event's request id names
  // a decision span, and admitted/rejected counts line up.
  std::size_t traced_admitted = 0;
  std::size_t traced_rejected = 0;
  for (const sim::TraceEvent& event : trace.events()) {
    switch (event.kind) {
      case sim::TraceEventKind::kAdmitted:
        ++traced_admitted;
        EXPECT_EQ(request_ids.count(event.flow), 1u);
        break;
      case sim::TraceEventKind::kRejected:
        ++traced_rejected;
        EXPECT_EQ(request_ids.count(event.flow), 1u);
        break;
      case sim::TraceEventKind::kDeparted:
      case sim::TraceEventKind::kDropped:
        EXPECT_EQ(request_ids.count(event.flow), 1u);
        break;
      case sim::TraceEventKind::kFailover:
        EXPECT_EQ(request_ids.count(event.flow), 1u);
        break;
      case sim::TraceEventKind::kLinkDown:
      case sim::TraceEventKind::kLinkUp:
      case sim::TraceEventKind::kMemberDown:
      case sim::TraceEventKind::kMemberUp:
      case sim::TraceEventKind::kShed:          // no governor in this run
      case sim::TraceEventKind::kNodeDown:      // no node faults in this run
      case sim::TraceEventKind::kNodeUp:
      case sim::TraceEventKind::kReconverged:   // no reconvergence policy either
      case sim::TraceEventKind::kRepaired:
      case sim::TraceEventKind::kRepairFailed:
        break;
    }
  }
  EXPECT_EQ(traced_admitted, result.admitted);
  EXPECT_EQ(traced_admitted + traced_rejected, result.offered);

  // The exported registry repeats the same numbers.
  obs::MetricsRegistry registry;
  sim::export_metrics(simulation, config, result, registry);
  EXPECT_DOUBLE_EQ(
      registry.gauge("anyqos_admission_probability", "", {{"system", result.system_label}})
          .value(),
      result.admission_probability);
  EXPECT_EQ(registry
                .counter("anyqos_requests_total", "",
                         {{"system", result.system_label}, {"outcome", "admitted"}})
                .value(),
            result.admitted);
  EXPECT_EQ(registry.cardinality("anyqos_admissions_total"), config.group_members.size());
  EXPECT_EQ(registry.cardinality("anyqos_link_utilization"), topo.link_count());
  // The attempts histogram replay preserves count and mean.
  std::ostringstream prom;
  registry.write_prometheus(prom);
  EXPECT_NE(prom.str().find("anyqos_attempts_per_request_count"), std::string::npos);
}

TEST(ObservabilityIntegration, SpanIntegritySurvivesFaultInducedDrops) {
  const net::Topology topo = net::topologies::mci_backbone();
  sim::SimulationConfig config = small_mci_config();
  config.faults = sim::random_fault_schedule(topo, config.measure_s, 0.001, 50.0,
                                             config.seed + 1);
  obs::MemorySpanSink spans;
  obs::DecisionTracer tracer;
  tracer.set_sink(&spans);
  config.tracer = &tracer;
  sim::MemoryTraceSink trace;
  config.trace = &trace;

  sim::Simulation simulation(topo, config);
  const sim::SimulationResult result = simulation.run();
  ASSERT_EQ(spans.decisions().size(), result.offered);

  // Parent/child integrity holds even when faults tear flows down and drive
  // retrial exhaustion: children sum to the parents' attempt counts and no
  // span id repeats.
  std::set<std::uint64_t> span_ids;
  std::size_t attempts_total = 0;
  std::set<std::uint64_t> admitted_requests;
  for (const obs::DecisionSpan& root : spans.decisions()) {
    const auto children = spans.attempts_for(root.request_id);
    ASSERT_EQ(children.size(), root.attempts);
    for (std::size_t i = 0; i < children.size(); ++i) {
      EXPECT_EQ(children[i].attempt_number, i + 1);
      EXPECT_TRUE(span_ids.insert(children[i].span_id).second);
      ++attempts_total;
    }
    if (root.admitted) {
      admitted_requests.insert(root.request_id);
    }
  }
  EXPECT_EQ(spans.attempts().size(), attempts_total);

  // Every dropped flow in the trace refers back to an admitted decision.
  std::size_t dropped = 0;
  for (const sim::TraceEvent& event : trace.events()) {
    if (event.kind == sim::TraceEventKind::kDropped) {
      ++dropped;
      EXPECT_EQ(admitted_requests.count(event.flow), 1u);
    }
  }
  EXPECT_EQ(dropped, result.dropped);
}

TEST(ObservabilityIntegration, ProfilerObservesTheRunWithoutPerturbingIt) {
  const net::Topology topo = net::topologies::mci_backbone();
  sim::SimulationConfig config = small_mci_config();
  sim::Simulation plain(topo, config);
  const sim::SimulationResult baseline = plain.run();

  obs::EngineProfiler profiler(50.0);
  config.profiler = &profiler;
  sim::Simulation profiled(topo, config);
  const sim::SimulationResult observed = profiled.run();

  // Profiling is wall-clock-only: virtual-time results are unchanged.
  EXPECT_EQ(observed.offered, baseline.offered);
  EXPECT_EQ(observed.admitted, baseline.admitted);
  EXPECT_DOUBLE_EQ(observed.admission_probability, baseline.admission_probability);
  EXPECT_DOUBLE_EQ(observed.average_attempts, baseline.average_attempts);

  const obs::ProfileSummary summary = profiler.summary();
  EXPECT_GT(summary.events, 0u);
  EXPECT_GT(summary.events_per_second, 0.0);
  EXPECT_EQ(summary.checkpoints, 8u);  // 400 s / 50 s
  EXPECT_GT(summary.peak_queue_depth, 0u);
  EXPECT_GT(summary.peak_active_flows, 0u);
  EXPECT_GT(profiler.phase_seconds("measure"), 0.0);
  // warmup_s is 0, so the warmup phase is timed but essentially empty.
  EXPECT_LT(profiler.phase_seconds("warmup"), profiler.phase_seconds("measure"));
}

}  // namespace
}  // namespace anyqos
