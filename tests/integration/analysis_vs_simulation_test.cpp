// Appendix A.3 reproduced as a test: the fixed-point/UAA analysis and the
// discrete-event simulation must agree on the admission probability of
// systems <ED,1> and SP ("the values ... are almost identical").
#include <gtest/gtest.h>

#include "src/analysis/ap_analysis.h"
#include "src/analysis/retry_extension.h"
#include "src/sim/experiment.h"

namespace anyqos {
namespace {

analysis::AnalyticModel to_analytic(const sim::ExperimentModel& model, double lambda) {
  analysis::AnalyticModel analytic;
  analytic.topology = &model.topology;
  analytic.sources = model.sources;
  analytic.members = model.group_members;
  analytic.lambda_total = lambda;
  analytic.mean_holding_s = model.mean_holding_s;
  analytic.flow_bandwidth_bps = model.flow_bandwidth_bps;
  analytic.anycast_share = model.anycast_share;
  return analytic;
}

sim::SimulationResult simulate(const sim::ExperimentModel& model, double lambda,
                               core::SelectionAlgorithm algorithm, std::size_t r) {
  sim::SimulationConfig config = model.base_config(lambda);
  config.algorithm = algorithm;
  config.max_tries = r;
  config.warmup_s = 1'500.0;
  config.measure_s = 9'000.0;
  config.seed = 31;
  sim::Simulation simulation(model.topology, config);
  return simulation.run();
}

class AnalysisVsSimulation : public ::testing::TestWithParam<double> {
 protected:
  sim::ExperimentModel model_ = sim::paper_model();
};

TEST_P(AnalysisVsSimulation, Ed1AgreesWithinTolerance) {
  const double lambda = GetParam();
  const double analytic =
      analysis::analyze_ed1(to_analytic(model_, lambda), analysis::FixedPointOptions{})
          .admission_probability;
  const sim::SimulationResult simulated =
      simulate(model_, lambda, core::SelectionAlgorithm::kEvenDistribution, 1);
  // Paper Table 1 shows agreement to ~0.01; allow 0.02 at our run lengths.
  EXPECT_NEAR(simulated.admission_probability, analytic, 0.02) << "lambda=" << lambda;
}

TEST_P(AnalysisVsSimulation, SpAgreesWithinTolerance) {
  const double lambda = GetParam();
  const double analytic =
      analysis::analyze_sp(to_analytic(model_, lambda), analysis::FixedPointOptions{})
          .admission_probability;
  const sim::SimulationResult simulated =
      simulate(model_, lambda, core::SelectionAlgorithm::kShortestPath, 1);
  // Paper Table 2 agreement tolerance as above.
  EXPECT_NEAR(simulated.admission_probability, analytic, 0.02) << "lambda=" << lambda;
}

INSTANTIATE_TEST_SUITE_P(PaperRates, AnalysisVsSimulation,
                         ::testing::Values(5.0, 20.0, 35.0, 50.0));

TEST(RetryExtensionVsSimulation, Sp2ApproximationTracksSimulation) {
  // <SP,R>: the ShortestPathSelector walks members in distance order, which
  // is exactly what analyze_sp_retry models — the agreement should be tight.
  const sim::ExperimentModel model = sim::paper_model();
  const double lambda = 35.0;
  analysis::RetryAnalysisOptions options;
  const auto analytic = analysis::analyze_sp_retry(to_analytic(model, lambda), 2, options);
  const sim::SimulationResult simulated =
      simulate(model, lambda, core::SelectionAlgorithm::kShortestPath, 2);
  EXPECT_TRUE(analytic.converged);
  EXPECT_NEAR(simulated.admission_probability, analytic.admission_probability, 0.04);
  EXPECT_NEAR(simulated.average_attempts, analytic.average_attempts, 0.1);
}

TEST(RetryExtensionVsSimulation, Ed2ApproximationTracksSimulation) {
  // Our documented extension beyond the paper: <ED,R> analysis. Validate the
  // approximation stays within a few percent of simulation at a loaded point.
  const sim::ExperimentModel model = sim::paper_model();
  const double lambda = 35.0;
  analysis::RetryAnalysisOptions options;
  const auto analytic = analysis::analyze_ed_retry(to_analytic(model, lambda), 2, options);
  const sim::SimulationResult simulated =
      simulate(model, lambda, core::SelectionAlgorithm::kEvenDistribution, 2);
  EXPECT_TRUE(analytic.converged);
  EXPECT_NEAR(simulated.admission_probability, analytic.admission_probability, 0.04);
  EXPECT_NEAR(simulated.average_attempts, analytic.average_attempts, 0.1);
}

}  // namespace
}  // namespace anyqos
