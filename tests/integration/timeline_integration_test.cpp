// End-to-end contract of the telemetry plane: the Timeline's artifacts are
// deterministic and observation-only (same seed with or without a sampler
// gives the same run), the per-link high-water columns surface fault
// transients, and the FlightRecorder's snapshots carry the causal window —
// including the victim flow's spans — for faults, churn, and audit findings.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "src/audit/auditor.h"
#include "src/net/topologies.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/span.h"
#include "src/obs/timeline.h"
#include "src/sim/churn.h"
#include "src/sim/simulation.h"
#include "src/sim/trace.h"

namespace anyqos {
namespace {

sim::SimulationConfig busy_mci_config() {
  sim::SimulationConfig config;
  config.traffic.arrival_rate = 25.0;
  config.traffic.mean_holding_s = 60.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {1, 3, 5, 7, 9, 11, 13, 15, 17};
  config.group_members = {0, 4, 8, 12, 16};
  config.algorithm = core::SelectionAlgorithm::kEvenDistribution;
  config.max_tries = 2;
  config.warmup_s = 100.0;
  config.measure_s = 500.0;
  config.seed = 77;
  return config;
}

std::size_t column_index(const obs::Timeline& timeline, const std::string& name) {
  for (std::size_t i = 0; i < timeline.columns().size(); ++i) {
    if (timeline.columns()[i].name == name) {
      return i;
    }
  }
  ADD_FAILURE() << "timeline has no column named " << name;
  return 0;
}

TEST(TimelineIntegration, SameSeedRunsAreByteIdenticalAndAnnotateWarmup) {
  const net::Topology topo = net::topologies::mci_backbone();
  const auto render = [&topo] {
    sim::SimulationConfig config = busy_mci_config();
    config.faults.push_back(sim::LinkFault{1, 4, 250.0, 400.0});
    config.churn.push_back(sim::single_churn(1, 300.0, 450.0));
    obs::Timeline timeline(obs::TimelineOptions{50.0});
    config.timeline = &timeline;
    sim::Simulation simulation(topo, config);
    (void)simulation.run();
    std::ostringstream jsonl;
    timeline.write_jsonl(jsonl);
    std::ostringstream csv;
    timeline.write_csv(csv);
    // 600 simulated seconds at a 50 s interval: 12 rows, 2 of them warm-up.
    EXPECT_EQ(timeline.samples().size(), 12u);
    std::size_t warmup_rows = 0;
    for (const obs::TimelineSample& row : timeline.samples()) {
      warmup_rows += row.warmup ? 1 : 0;
    }
    EXPECT_EQ(warmup_rows, 2u);
    EXPECT_TRUE(timeline.measurement_start().has_value());
    return jsonl.str() + "\x1f" + csv.str();
  };
  const std::string first = render();
  const std::string second = render();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"measurement_start_s\":100"), std::string::npos);
}

TEST(TimelineIntegration, SamplerIsObservationOnly) {
  const net::Topology topo = net::topologies::mci_backbone();
  sim::SimulationConfig with_config = busy_mci_config();
  with_config.churn.push_back(sim::single_churn(0, 200.0, 350.0));
  sim::SimulationConfig without_config = with_config;

  obs::Timeline timeline(obs::TimelineOptions{25.0});
  with_config.timeline = &timeline;
  sim::Simulation with_timeline(topo, with_config);
  const sim::SimulationResult a = with_timeline.run();
  sim::Simulation without_timeline(topo, without_config);
  const sim::SimulationResult b = without_timeline.run();

  // Sampling must not touch the RNG streams or the event interleaving.
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.failover_attempts, b.failover_attempts);
  EXPECT_EQ(a.messages.total(), b.messages.total());
  EXPECT_DOUBLE_EQ(a.average_active_flows, b.average_active_flows);
  EXPECT_DOUBLE_EQ(a.mean_link_utilization, b.mean_link_utilization);
  ASSERT_GT(timeline.samples().size(), 0u);
}

TEST(TimelineIntegration, HighWaterColumnSurfacesTheFaultTransient) {
  const net::Topology topo = net::topologies::mci_backbone();
  sim::SimulationConfig config = busy_mci_config();
  // Fail and repair within one 100 s window: only the high-water mark can
  // see the outage, a point-sampled gauge at the window end reads repaired.
  config.faults.push_back(sim::LinkFault{1, 4, 210.0, 260.0});
  obs::Timeline timeline(obs::TimelineOptions{100.0});
  config.timeline = &timeline;
  sim::Simulation simulation(topo, config);
  (void)simulation.run();

  const std::string link = topo.router_name(1) + "->" + topo.router_name(4);
  const std::size_t hwm = column_index(timeline, "util_hwm:" + link);
  ASSERT_GE(timeline.samples().size(), 3u);
  // The t = 300 row covers (200, 300], which contains the outage.
  const obs::TimelineSample& outage_row = timeline.samples()[2];
  EXPECT_DOUBLE_EQ(outage_row.time, 300.0);
  EXPECT_DOUBLE_EQ(outage_row.values[hwm], 1.0);
  // Offered-rate sanity: roughly lambda once the system is busy.
  const std::size_t offered = column_index(timeline, "offered_per_s");
  EXPECT_GT(outage_row.values[offered], 0.5 * config.traffic.arrival_rate);
}

TEST(TimelineIntegration, FaultTriggerDumpsTheVictimFlowsCausalWindow) {
  const net::Topology topo = net::topologies::mci_backbone();
  sim::SimulationConfig config = busy_mci_config();
  // Zero warm-up so the tracer's span stream covers exactly the offered
  // requests, and a ring deep enough that nothing recorded before the
  // trigger has been evicted.
  config.warmup_s = 0.0;
  config.faults.push_back(sim::LinkFault{1, 4, 200.0, 500.0});

  obs::FlightRecorder recorder(obs::FlightRecorderOptions{65536, 16});
  std::ostringstream dump;
  recorder.set_output(&dump);
  obs::MemorySpanSink downstream;
  recorder.set_forward(&downstream);
  obs::DecisionTracer tracer;
  tracer.set_sink(&recorder.span_sink());
  sim::MemoryTraceSink trace;
  config.flight_recorder = &recorder;
  config.tracer = &tracer;
  config.trace = &trace;

  sim::Simulation simulation(topo, config);
  const sim::SimulationResult result = simulation.run();
  ASSERT_GT(result.dropped_by_fault, 0u);
  EXPECT_EQ(recorder.triggers(), 1u);
  EXPECT_EQ(recorder.dumps_written(), 1u);

  const std::string text = dump.str();
  EXPECT_NE(text.find("{\"flight\":\"snapshot\",\"reason\":\"link_fault 1->4\",\"t\":200"),
            std::string::npos);
  // Every victim appears twice in the snapshot: its DROPPED event note and
  // the decision span that originally admitted it (ring depth 4096 spans the
  // whole short run, so nothing was evicted).
  std::size_t drops_in_dump = 0;
  for (const sim::TraceEvent& event : trace.events()) {
    if (event.kind != sim::TraceEventKind::kDropped) {
      continue;
    }
    ++drops_in_dump;
    const std::string note = "\"detail\":\"flow=" + std::to_string(event.flow) + " ";
    EXPECT_NE(text.find(note), std::string::npos) << "missing drop note for " << event.flow;
    const std::string span = "\"request\":" + std::to_string(event.flow) + ",";
    EXPECT_NE(text.find(span), std::string::npos) << "missing span for " << event.flow;
  }
  EXPECT_EQ(drops_in_dump, result.dropped_by_fault);
  // The tee kept the full span stream for the downstream sink.
  EXPECT_EQ(downstream.decisions().size(), result.offered);
}

TEST(TimelineIntegration, ChurnTriggerDumpsOnePerOutage) {
  const net::Topology topo = net::topologies::mci_backbone();
  sim::SimulationConfig config = busy_mci_config();
  config.churn.push_back(sim::single_churn(2, 150.0, 300.0));
  config.churn.push_back(sim::single_churn(4, 350.0, 500.0));

  obs::FlightRecorder recorder;
  std::ostringstream dump;
  recorder.set_output(&dump);
  config.flight_recorder = &recorder;

  sim::Simulation simulation(topo, config);
  const sim::SimulationResult result = simulation.run();
  ASSERT_GT(result.dropped_by_churn, 0u);
  EXPECT_EQ(recorder.triggers(), 2u);
  EXPECT_NE(dump.str().find("\"reason\":\"member_churn member=2 node=8\""),
            std::string::npos);
  EXPECT_NE(dump.str().find("\"reason\":\"member_churn member=4 node=16\""),
            std::string::npos);
}

TEST(TimelineIntegration, AuditorViolationHookTriggersTheRecorder) {
  audit::AuditorOptions options;
  options.throw_on_violation = false;
  audit::InvariantAuditor auditor(options);
  obs::FlightRecorder recorder;
  std::ostringstream dump;
  recorder.set_output(&dump);
  recorder.note(9.0, "context", "state before the violation");
  auditor.set_violation_hook([&recorder](const audit::Violation& violation) {
    recorder.trigger(violation.sim_time, "audit " + audit::to_string(violation.check));
  });

  // A release with no matching reserve is a ledger-pairing violation; with
  // throw_on_violation off it is logged, and the hook must still fire.
  net::Path path;
  path.source = 0;
  path.destination = 1;
  path.links = {0};
  auditor.on_release(path, 64'000.0);

  ASSERT_EQ(auditor.log().size(), 1u);
  EXPECT_EQ(recorder.triggers(), 1u);
  EXPECT_EQ(recorder.dumps_written(), 1u);
  EXPECT_NE(dump.str().find("\"reason\":\"audit ledger-pairing\""), std::string::npos);
  EXPECT_NE(dump.str().find("state before the violation"), std::string::npos);

  auditor.set_violation_hook(nullptr);  // detaching must be safe
  auditor.on_release(path, 64'000.0);
  EXPECT_EQ(recorder.triggers(), 1u);
}

}  // namespace
}  // namespace anyqos
