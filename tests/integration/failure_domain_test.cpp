// Failure-domain plane acceptance: a crash/recovery storm over the paper's
// backbone — router crashes on top of message loss, member churn, and link
// faults, with live reconvergence and path repair — drains to quiescence
// under a throwing InvariantAuditor with zero leaked bandwidth, an empty
// repair queue, and no breaker stuck Open. Same-seed reruns are
// byte-identical, and a run without the plane carries no residue of it.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/audit/auditor.h"
#include "src/control/governor.h"
#include "src/net/reconvergence.h"
#include "src/net/topologies.h"
#include "src/obs/timeline.h"
#include "src/sim/churn.h"
#include "src/sim/faults.h"
#include "src/sim/simulation.h"
#include "src/sim/trace.h"

namespace anyqos::sim {
namespace {

SimulationConfig storm_config(const net::Topology& topo) {
  SimulationConfig config;
  config.traffic.arrival_rate = 5.0;
  config.traffic.mean_holding_s = 30.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {1, 5, 9, 13, 17};
  config.group_members = {0, 4, 9, 14, 18};
  config.algorithm = core::SelectionAlgorithm::kEvenDistribution;  // probe-free
  config.max_tries = 2;
  config.warmup_s = 0.0;
  config.measure_s = 600.0;
  config.seed = 31;
  config.drain_to_quiescence = true;
  // Aggressive per-router MTBF (~600 s) with quick recovery: several
  // concurrent outages over the run, including crashes of source and member
  // routers.
  config.node_faults =
      random_node_fault_schedule(topo, config.measure_s, 1.0 / 600.0, 60.0, 77);
  return config;
}

TEST(FailureDomain, CrashRecoveryStormDrainsCleanUnderAudit) {
  const net::Topology topo = net::topologies::mci_backbone();
  SimulationConfig config = storm_config(topo);
  ASSERT_GT(config.node_faults.size(), 3u) << "storm must actually storm";
  // Layer the rest of the chaos stack on top.
  signaling::ResilienceOptions resilience;
  resilience.faults.loss_probability = 0.05;
  resilience.retransmit_timeout_s = 0.5;
  resilience.max_retransmits = 2;
  resilience.orphan_hold_s = 20.0;
  config.resilience = resilience;
  config.churn.push_back(single_churn(1, 250.0, 350.0));
  config.faults.push_back(single_fault(0, 1, 300.0, 450.0));
  net::FloodingReconvergence flooding(0.5);
  config.reconvergence = &flooding;
  config.path_repair = true;
  control::GovernorOptions governor_options;
  control::OverloadGovernor governor(governor_options);
  config.governor = &governor;

  Simulation sim(topo, config);
  audit::AuditorOptions audit_options;
  audit_options.checkpoint_interval_s = 50.0;
  audit::InvariantAuditor auditor(audit_options);  // throwing mode
  auditor.attach(sim);
  const SimulationResult result = sim.run();

  // The storm actually exercised the plane.
  EXPECT_GT(result.node_outages, 0u);
  EXPECT_GT(result.reconvergences, 0u);
  EXPECT_GT(result.repaired + result.unrepairable, 0u);

  // Quiescence: nothing live, nothing leaked, nothing queued, clean audit.
  EXPECT_EQ(sim.active_flows(), 0u);
  EXPECT_DOUBLE_EQ(sim.ledger().total_reserved(), 0.0);
  EXPECT_EQ(sim.pending_repairs(), 0u);
  ASSERT_NE(sim.resilient(), nullptr);
  EXPECT_EQ(sim.resilient()->pending_orphans(), 0u);
  EXPECT_TRUE(auditor.log().empty()) << auditor.log().to_text();
  EXPECT_EQ(auditor.open_reservations(), 0u);

  // Breakers tripped for members behind dead routers, and none is stuck
  // Open after the drain (recovered routers pass their half-open probes or
  // sit harmlessly HalfOpen/Closed with no traffic).
  EXPECT_GT(governor.stats().breaker_trips, 0u);
  EXPECT_EQ(governor.open_breakers(), 0u);
}

TEST(FailureDomain, SameSeedStormRunsAreByteIdentical) {
  const net::Topology topo = net::topologies::mci_backbone();
  auto run_once = [&topo](std::string& timeline_out, std::string& trace_out,
                          SimulationResult& result) {
    SimulationConfig config = storm_config(topo);
    net::FixedReconvergence fixed(1.0);
    config.reconvergence = &fixed;
    config.path_repair = true;
    obs::TimelineOptions timeline_options;
    timeline_options.interval_s = 50.0;
    obs::Timeline timeline(timeline_options);
    config.timeline = &timeline;
    std::ostringstream trace_csv;
    CsvTraceSink trace(trace_csv);
    config.trace = &trace;
    Simulation sim(topo, config);
    result = sim.run();
    std::ostringstream timeline_jsonl;
    timeline.write_jsonl(timeline_jsonl);
    timeline_out = timeline_jsonl.str();
    trace_out = trace_csv.str();
  };
  std::string timeline_a;
  std::string timeline_b;
  std::string trace_a;
  std::string trace_b;
  SimulationResult result_a;
  SimulationResult result_b;
  run_once(timeline_a, trace_a, result_a);
  run_once(timeline_b, trace_b, result_b);
  EXPECT_EQ(timeline_a, timeline_b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(result_a.admitted, result_b.admitted);
  EXPECT_EQ(result_a.repaired, result_b.repaired);
  EXPECT_EQ(result_a.unrepairable, result_b.unrepairable);
  EXPECT_EQ(result_a.messages.total(), result_b.messages.total());
  // The new timeline columns are present on an attached run.
  EXPECT_NE(timeline_a.find("routes_stale"), std::string::npos);
  EXPECT_NE(timeline_a.find("nodes_down"), std::string::npos);
  EXPECT_NE(timeline_a.find("repairs_per_s"), std::string::npos);
}

TEST(FailureDomain, UnattachedRunsCarryNoFailureDomainResidue) {
  // Zero-perturbation contract: without node faults / reconvergence / path
  // repair the result carries zeros, the timeline omits the new columns,
  // and attaching an idle plane (policy set, no topology change ever) does
  // not perturb a single admission decision.
  const net::Topology topo = net::topologies::mci_backbone();
  auto base = [&topo] {
    SimulationConfig config;
    config.traffic.arrival_rate = 5.0;
    config.traffic.mean_holding_s = 30.0;
    config.traffic.flow_bandwidth_bps = 64'000.0;
    config.traffic.sources = {1, 5, 9};
    config.group_members = {0, 14};
    config.warmup_s = 100.0;
    config.measure_s = 400.0;
    config.seed = 13;
    return config;
  };

  SimulationConfig unattached = base();
  obs::Timeline timeline;
  unattached.timeline = &timeline;
  Simulation plain(topo, unattached);
  const SimulationResult plain_result = plain.run();
  EXPECT_EQ(plain_result.repaired, 0u);
  EXPECT_EQ(plain_result.unrepairable, 0u);
  EXPECT_EQ(plain_result.reconvergences, 0u);
  EXPECT_EQ(plain_result.node_outages, 0u);
  EXPECT_EQ(plain.pending_repairs(), 0u);
  EXPECT_FALSE(plain.routes_stale());
  std::ostringstream jsonl;
  timeline.write_jsonl(jsonl);
  EXPECT_EQ(jsonl.str().find("routes_stale"), std::string::npos);
  EXPECT_EQ(jsonl.str().find("nodes_down"), std::string::npos);
  EXPECT_EQ(jsonl.str().find("repairs_per_s"), std::string::npos);

  SimulationConfig idle = base();
  net::InstantReconvergence instant;
  idle.reconvergence = &instant;
  idle.path_repair = true;  // armed but never triggered: no faults scheduled
  Simulation armed(topo, idle);
  const SimulationResult armed_result = armed.run();
  EXPECT_EQ(armed_result.admitted, plain_result.admitted);
  EXPECT_EQ(armed_result.offered, plain_result.offered);
  EXPECT_EQ(armed_result.messages.total(), plain_result.messages.total());
  EXPECT_DOUBLE_EQ(armed_result.admission_probability, plain_result.admission_probability);
  EXPECT_EQ(armed_result.reconvergences, 0u);
}

}  // namespace
}  // namespace anyqos::sim
