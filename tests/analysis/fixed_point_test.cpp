#include "src/analysis/fixed_point.h"

#include <gtest/gtest.h>

#include "src/analysis/erlang.h"

namespace anyqos::analysis {
namespace {

FixedPointOptions exact_options() {
  FixedPointOptions options;
  options.model = BlockingModel::kErlangB;
  return options;
}

TEST(FixedPoint, SingleLinkReducesToErlangB) {
  // One route over one link: no thinning, B must equal Erlang-B directly.
  std::vector<RouteLoad> routes(1);
  routes[0].links = {0};
  routes[0].offered_erlangs = 300.0;
  const auto result = solve_fixed_point(1, {312.0}, routes, exact_options());
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.link_blocking[0], erlang_b(300.0, 312), 1e-8);
  EXPECT_NEAR(result.route_rejection[0], result.link_blocking[0], 1e-12);
  EXPECT_NEAR(result.link_reduced_load[0], 300.0, 1e-9);
}

TEST(FixedPoint, UnloadedLinksStayUnblocked) {
  std::vector<RouteLoad> routes(1);
  routes[0].links = {1};
  routes[0].offered_erlangs = 100.0;
  const auto result = solve_fixed_point(3, {312.0, 312.0, 312.0}, routes, exact_options());
  EXPECT_DOUBLE_EQ(result.link_blocking[0], 0.0);
  EXPECT_DOUBLE_EQ(result.link_blocking[2], 0.0);
}

TEST(FixedPoint, TwoHopRouteRejectionFollowsEq17) {
  std::vector<RouteLoad> routes(1);
  routes[0].links = {0, 1};
  routes[0].offered_erlangs = 300.0;
  const auto result = solve_fixed_point(2, {312.0, 312.0}, routes, exact_options());
  EXPECT_TRUE(result.converged);
  const double b0 = result.link_blocking[0];
  const double b1 = result.link_blocking[1];
  EXPECT_NEAR(result.route_rejection[0], 1.0 - (1.0 - b0) * (1.0 - b1), 1e-12);
  // Symmetric links must block identically.
  EXPECT_NEAR(b0, b1, 1e-9);
  // Thinning: each link sees less than the raw offered load.
  EXPECT_LT(result.link_reduced_load[0], 300.0);
}

TEST(FixedPoint, ThinningSelfConsistency) {
  // v_l = rho * (1 - B_other) must hold at the fixed point.
  std::vector<RouteLoad> routes(1);
  routes[0].links = {0, 1};
  routes[0].offered_erlangs = 320.0;
  const auto result = solve_fixed_point(2, {312.0, 312.0}, routes, exact_options());
  const double expected_load = 320.0 * (1.0 - result.link_blocking[1]);
  EXPECT_NEAR(result.link_reduced_load[0], expected_load, 1e-6);
}

TEST(FixedPoint, SharedBottleneckCouplesRoutes) {
  // Routes A: {0,1}, B: {0,2}. Link 0 carries both; its blocking must exceed
  // that of the leaf links.
  std::vector<RouteLoad> routes(2);
  routes[0].links = {0, 1};
  routes[0].offered_erlangs = 200.0;
  routes[1].links = {0, 2};
  routes[1].offered_erlangs = 200.0;
  const auto result = solve_fixed_point(3, {312.0, 312.0, 312.0}, routes, exact_options());
  EXPECT_GT(result.link_blocking[0], result.link_blocking[1]);
  EXPECT_GT(result.route_rejection[0], 0.0);
  EXPECT_NEAR(result.route_rejection[0], result.route_rejection[1], 1e-9);
}

TEST(FixedPoint, UaaAndErlangAgreeAtScale) {
  std::vector<RouteLoad> routes(2);
  routes[0].links = {0, 1};
  routes[0].offered_erlangs = 250.0;
  routes[1].links = {1};
  routes[1].offered_erlangs = 100.0;
  FixedPointOptions uaa = exact_options();
  uaa.model = BlockingModel::kUaa;
  const auto exact = solve_fixed_point(2, {312.0, 312.0}, routes, exact_options());
  const auto approx = solve_fixed_point(2, {312.0, 312.0}, routes, uaa);
  for (int l = 0; l < 2; ++l) {
    EXPECT_NEAR(approx.link_blocking[static_cast<std::size_t>(l)],
                exact.link_blocking[static_cast<std::size_t>(l)], 0.01);
  }
}

TEST(FixedPoint, ZeroLoadEverywhereGivesZeroBlocking) {
  std::vector<RouteLoad> routes(1);
  routes[0].links = {0};
  routes[0].offered_erlangs = 0.0;
  const auto result = solve_fixed_point(1, {312.0}, routes, exact_options());
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.link_blocking[0], 0.0);
  EXPECT_DOUBLE_EQ(result.route_rejection[0], 0.0);
}

TEST(FixedPoint, DampingVariantsConverge) {
  std::vector<RouteLoad> routes(2);
  routes[0].links = {0, 1};
  routes[0].offered_erlangs = 400.0;
  routes[1].links = {1, 0};
  routes[1].offered_erlangs = 400.0;
  for (const double damping : {0.1, 0.5, 1.0}) {
    FixedPointOptions options = exact_options();
    options.damping = damping;
    const auto result = solve_fixed_point(2, {312.0, 312.0}, routes, options);
    EXPECT_TRUE(result.converged) << "damping=" << damping;
    EXPECT_GT(result.link_blocking[0], 0.1);
  }
}

TEST(FixedPoint, SolutionIndependentOfDamping) {
  std::vector<RouteLoad> routes(1);
  routes[0].links = {0, 1};
  routes[0].offered_erlangs = 350.0;
  FixedPointOptions a = exact_options();
  a.damping = 1.0;
  FixedPointOptions b = exact_options();
  b.damping = 0.2;
  const auto ra = solve_fixed_point(2, {312.0, 312.0}, routes, a);
  const auto rb = solve_fixed_point(2, {312.0, 312.0}, routes, b);
  EXPECT_NEAR(ra.link_blocking[0], rb.link_blocking[0], 1e-6);
}

TEST(FixedPoint, Validation) {
  std::vector<RouteLoad> routes(1);
  routes[0].links = {5};
  routes[0].offered_erlangs = 1.0;
  EXPECT_THROW(solve_fixed_point(1, {312.0}, routes, exact_options()),
               std::invalid_argument);
  routes[0].links = {0};
  routes[0].offered_erlangs = -1.0;
  EXPECT_THROW(solve_fixed_point(1, {312.0}, routes, exact_options()),
               std::invalid_argument);
  routes[0].offered_erlangs = 1.0;
  EXPECT_THROW(solve_fixed_point(2, {312.0}, routes, exact_options()),
               std::invalid_argument);  // capacity vector too short
  FixedPointOptions bad = exact_options();
  bad.damping = 0.0;
  EXPECT_THROW(solve_fixed_point(1, {312.0}, routes, bad), std::invalid_argument);
}

TEST(AdmissionProbabilityEq15, LoadWeightedAverage) {
  std::vector<RouteLoad> routes(2);
  routes[0].offered_erlangs = 30.0;
  routes[1].offered_erlangs = 10.0;
  const std::vector<double> rejection = {0.2, 0.4};
  // AP = (30*0.8 + 10*0.6) / 40 = 0.75.
  EXPECT_NEAR(admission_probability(routes, rejection), 0.75, 1e-12);
}

TEST(AdmissionProbabilityEq15, ZeroLoadRoutesIgnored) {
  std::vector<RouteLoad> routes(2);
  routes[0].offered_erlangs = 10.0;
  routes[1].offered_erlangs = 0.0;
  const std::vector<double> rejection = {0.1, 1.0};
  EXPECT_NEAR(admission_probability(routes, rejection), 0.9, 1e-12);
}

TEST(AdmissionProbabilityEq15, Validation) {
  std::vector<RouteLoad> routes(1);
  routes[0].offered_erlangs = 0.0;
  EXPECT_THROW(admission_probability(routes, {0.5}), std::invalid_argument);
  routes[0].offered_erlangs = 1.0;
  EXPECT_THROW(admission_probability(routes, {0.5, 0.5}), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::analysis
