#include "src/analysis/ap_analysis.h"

#include <gtest/gtest.h>

#include "src/net/topologies.h"

namespace anyqos::analysis {
namespace {

AnalyticModel paper_like(const net::Topology& topo, double lambda) {
  AnalyticModel model;
  model.topology = &topo;
  for (net::NodeId id = 1; id < topo.router_count(); id += 2) {
    model.sources.push_back(id);
  }
  model.members = {0, 4, 8, 12, 16};
  model.lambda_total = lambda;
  return model;
}

TEST(AnalyticModel, CapacityCircuitsFloors) {
  const net::Topology topo = net::topologies::mci_backbone();
  AnalyticModel model = paper_like(topo, 10.0);
  const auto capacities = model.capacity_circuits();
  ASSERT_EQ(capacities.size(), topo.link_count());
  // 100 Mbit * 0.2 / 64 kbit = 312.5 -> 312 whole circuits.
  for (const double c : capacities) {
    EXPECT_DOUBLE_EQ(c, 312.0);
  }
}

TEST(AnalyticModel, PerSourceErlangs) {
  const net::Topology topo = net::topologies::mci_backbone();
  AnalyticModel model = paper_like(topo, 18.0);
  // 9 sources: each gets rate 2/s, intensity 2 * 180 = 360 erlangs.
  EXPECT_DOUBLE_EQ(model.per_source_erlangs(), 360.0);
}

TEST(AnalyzeEd1, LowLoadAdmitsEverything) {
  const net::Topology topo = net::topologies::mci_backbone();
  const auto analysis = analyze_ed1(paper_like(topo, 5.0), FixedPointOptions{});
  EXPECT_GT(analysis.admission_probability, 0.9999);
  EXPECT_TRUE(analysis.fixed_point.converged);
}

TEST(AnalyzeEd1, ApDecreasesWithLoad) {
  const net::Topology topo = net::topologies::mci_backbone();
  double previous = 1.1;
  for (const double lambda : {5.0, 20.0, 35.0, 50.0}) {
    const auto analysis = analyze_ed1(paper_like(topo, lambda), FixedPointOptions{});
    EXPECT_LT(analysis.admission_probability, previous);
    previous = analysis.admission_probability;
  }
  // At the paper's top rate blocking is substantial (Table 1 reports 0.44).
  EXPECT_LT(previous, 0.8);
  EXPECT_GT(previous, 0.2);
}

TEST(AnalyzeEd1, RouteLoadsAreUniformPerSource) {
  const net::Topology topo = net::topologies::mci_backbone();
  const auto analysis = analyze_ed1(paper_like(topo, 18.0), FixedPointOptions{});
  // 9 sources x 5 members = 45 routes, each with rho_s / 5 = 72 erlangs.
  ASSERT_EQ(analysis.routes.size(), 45u);
  for (const auto& route : analysis.routes) {
    EXPECT_DOUBLE_EQ(route.offered_erlangs, 72.0);
  }
}

TEST(AnalyzeSp, AllLoadOnShortestRoute) {
  const net::Topology topo = net::topologies::mci_backbone();
  const auto analysis = analyze_sp(paper_like(topo, 18.0), FixedPointOptions{});
  ASSERT_EQ(analysis.routes.size(), 45u);
  // Per source: exactly one route with the full 360 erlangs, four with zero.
  for (std::size_t s = 0; s < 9; ++s) {
    int loaded = 0;
    for (std::size_t i = 0; i < 5; ++i) {
      const double rho = analysis.routes[s * 5 + i].offered_erlangs;
      if (rho > 0.0) {
        ++loaded;
        EXPECT_DOUBLE_EQ(rho, 360.0);
      }
    }
    EXPECT_EQ(loaded, 1);
  }
}

TEST(AnalyzeSp, WorseThanEd1UnderLoad) {
  // The paper's central qualitative claim for the baselines (Figure 6):
  // concentrating traffic on shortest paths congests them.
  const net::Topology topo = net::topologies::mci_backbone();
  for (const double lambda : {25.0, 35.0, 50.0}) {
    const double ed = analyze_ed1(paper_like(topo, lambda), FixedPointOptions{})
                          .admission_probability;
    const double sp = analyze_sp(paper_like(topo, lambda), FixedPointOptions{})
                          .admission_probability;
    EXPECT_LT(sp, ed) << "lambda=" << lambda;
  }
}

TEST(AnalyzeBoth, ErlangAndUaaModelsAgree) {
  const net::Topology topo = net::topologies::mci_backbone();
  FixedPointOptions uaa;
  uaa.model = BlockingModel::kUaa;
  FixedPointOptions exact;
  exact.model = BlockingModel::kErlangB;
  for (const double lambda : {20.0, 35.0}) {
    const double a = analyze_ed1(paper_like(topo, lambda), uaa).admission_probability;
    const double b = analyze_ed1(paper_like(topo, lambda), exact).admission_probability;
    EXPECT_NEAR(a, b, 0.01) << "lambda=" << lambda;
  }
}

TEST(AnalyzeBoth, Validation) {
  const net::Topology topo = net::topologies::mci_backbone();
  AnalyticModel model = paper_like(topo, 10.0);
  model.lambda_total = 0.0;
  EXPECT_THROW(analyze_ed1(model, FixedPointOptions{}), std::invalid_argument);
  model = paper_like(topo, 10.0);
  model.sources.clear();
  EXPECT_THROW(analyze_sp(model, FixedPointOptions{}), std::invalid_argument);
  model = paper_like(topo, 10.0);
  model.topology = nullptr;
  EXPECT_THROW(analyze_ed1(model, FixedPointOptions{}), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::analysis
