#include "src/analysis/uaa.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/analysis/erlang.h"

namespace anyqos::analysis {
namespace {

TEST(Uaa, BoundariesAndValidation) {
  EXPECT_DOUBLE_EQ(uaa_blocking(0.0, 312.0), 0.0);
  EXPECT_THROW(uaa_blocking(-1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(uaa_blocking(5.0, 0.5), std::invalid_argument);  // eq. (23)
}

TEST(Uaa, ResultAlwaysInUnitInterval) {
  for (double v = 0.5; v < 2000.0; v *= 1.7) {
    for (double c = 1.0; c <= 1024.0; c *= 2.0) {
      const double b = uaa_blocking(v, c);
      EXPECT_GE(b, 0.0) << "v=" << v << " c=" << c;
      EXPECT_LE(b, 1.0) << "v=" << v << " c=" << c;
    }
  }
}

TEST(Uaa, CriticalLoadMatchesExactErlang) {
  // z* = 1 exactly — the branch the paper's printed formula garbles.
  for (const double c : {50.0, 100.0, 312.0, 1000.0}) {
    const double exact = erlang_b(c, static_cast<std::size_t>(c));
    const double approx = uaa_blocking(c, c);
    EXPECT_NEAR(approx / exact, 1.0, 0.02) << "C=" << c;
  }
}

TEST(Uaa, NearCriticalSeriesBranchIsContinuous) {
  // The series branch (|1-z*| < 1e-4) must join the direct branch smoothly.
  const double c = 312.0;
  const double inside = uaa_blocking(c / (1.0 - 0.5e-4), c);
  const double outside = uaa_blocking(c / (1.0 - 2.0e-4), c);
  EXPECT_NEAR(inside / outside, 1.0, 0.01);
}

TEST(Uaa, DeepOverloadLimit) {
  // B -> 1 - C/v for v >> C.
  EXPECT_NEAR(uaa_blocking(3120.0, 312.0), 1.0 - 0.1, 0.01);
  EXPECT_NEAR(uaa_blocking(1000.0, 100.0), 0.9, 0.01);
}

TEST(Uaa, LightLoadVanishes) {
  EXPECT_LT(uaa_blocking(10.0, 312.0), 1e-100);
  EXPECT_LT(uaa_blocking(200.0, 312.0), 1e-3);
}

// --- Property sweep: UAA tracks exact Erlang-B across the operating range
// --- the paper's fixed point visits (C = 312, loads around capacity).

class UaaAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(UaaAccuracy, CloseToExactErlangAtPaperCapacity) {
  const double load_ratio = GetParam();  // v / C
  const double c = 312.0;
  const double v = load_ratio * c;
  const double exact = erlang_b(v, 312);
  const double approx = uaa_blocking(v, c);
  if (exact < 1e-12) {
    EXPECT_LT(approx, 1e-9);
  } else {
    // Relative accuracy: UAA is an O(1/C) approximation; 3% is ample at C=312
    // and is far below the effect sizes in Tables 1-2.
    EXPECT_NEAR(approx / exact, 1.0, 0.03) << "v/C=" << load_ratio;
  }
}

INSTANTIATE_TEST_SUITE_P(LoadRatios, UaaAccuracy,
                         ::testing::Values(0.8, 0.9, 0.95, 1.0, 1.05, 1.1, 1.25, 1.5,
                                           2.0, 3.0));

class UaaAccuracyAcrossCapacities : public ::testing::TestWithParam<double> {};

TEST_P(UaaAccuracyAcrossCapacities, CloseToExactErlangAtCriticalAndOverload) {
  const double c = GetParam();
  for (const double ratio : {1.0, 1.2, 2.0}) {
    const double v = ratio * c;
    const double exact = erlang_b(v, static_cast<std::size_t>(c));
    const double approx = uaa_blocking(v, c);
    // Accuracy degrades as C shrinks (it is an asymptotic method); allow a
    // looser envelope for tiny capacities.
    const double tolerance = c >= 64.0 ? 0.03 : 0.15;
    EXPECT_NEAR(approx / exact, 1.0, tolerance) << "C=" << c << " ratio=" << ratio;
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, UaaAccuracyAcrossCapacities,
                         ::testing::Values(16.0, 64.0, 128.0, 312.0, 625.0, 1000.0));

}  // namespace
}  // namespace anyqos::analysis
