#include "src/analysis/wdb_meanfield.h"

#include <gtest/gtest.h>

#include "src/net/topologies.h"
#include "src/sim/experiment.h"

namespace anyqos::analysis {
namespace {

AnalyticModel paper_like(const net::Topology& topo, double lambda) {
  AnalyticModel model;
  model.topology = &topo;
  for (net::NodeId id = 1; id < topo.router_count(); id += 2) {
    model.sources.push_back(id);
  }
  model.members = {0, 4, 8, 12, 16};
  model.lambda_total = lambda;
  return model;
}

TEST(WdbMeanField, ConvergesAcrossThePaperRateRange) {
  const net::Topology topo = net::topologies::mci_backbone();
  for (const double lambda : {10.0, 20.0, 35.0, 50.0}) {
    const auto mf = analyze_wdb1_meanfield(paper_like(topo, lambda), MeanFieldOptions{});
    EXPECT_TRUE(mf.converged) << "lambda=" << lambda;
    EXPECT_GE(mf.admission_probability, 0.0);
    EXPECT_LE(mf.admission_probability, 1.0);
  }
}

TEST(WdbMeanField, WeightsAreNormalizedPerSource) {
  const net::Topology topo = net::topologies::mci_backbone();
  const auto mf = analyze_wdb1_meanfield(paper_like(topo, 35.0), MeanFieldOptions{});
  const std::size_t k = 5;
  for (std::size_t s = 0; s < 9; ++s) {
    double total = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double w = mf.weights[s * k + i];
      EXPECT_GE(w, 0.0);
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
}

TEST(WdbMeanField, BeatsEd1ByRebalancingLoad) {
  // The static-rebalancing share of WD/D+B's advantage: the mean-field AP
  // must exceed <ED,1>'s at loaded rates.
  const net::Topology topo = net::topologies::mci_backbone();
  for (const double lambda : {20.0, 35.0, 50.0}) {
    const AnalyticModel model = paper_like(topo, lambda);
    const double mf = analyze_wdb1_meanfield(model, MeanFieldOptions{}).admission_probability;
    const double ed1 = analyze_ed1(model, FixedPointOptions{}).admission_probability;
    EXPECT_GT(mf, ed1) << "lambda=" << lambda;
  }
}

TEST(WdbMeanField, TracksSimulatedWdb1Closely) {
  // The headline validation: mean-field vs the simulated <WD/D+B,1> system.
  const sim::ExperimentModel experiment = sim::paper_model();
  for (const double lambda : {20.0, 35.0}) {
    const double mf =
        analyze_wdb1_meanfield(paper_like(experiment.topology, lambda), MeanFieldOptions{})
            .admission_probability;
    sim::SimulationConfig config = experiment.base_config(lambda);
    config.algorithm = core::SelectionAlgorithm::kDistanceBandwidth;
    config.max_tries = 1;
    config.warmup_s = 1'000.0;
    config.measure_s = 6'000.0;
    config.seed = 2;
    sim::Simulation simulation(experiment.topology, config);
    const double simulated = simulation.run().admission_probability;
    // The approximation omits instantaneous avoidance, so it may sit a bit
    // below the simulation; 0.03 absolute covers both bias and noise here.
    EXPECT_NEAR(mf, simulated, 0.03) << "lambda=" << lambda;
    EXPECT_LE(mf, simulated + 0.01) << "mean-field should not beat the real system";
  }
}

TEST(WdbMeanField, IdleNetworkKeepsInverseDistanceWeights) {
  // At negligible load every route has full free capacity, so the weights
  // must stay at the inverse-distance profile (eq. 12 with equal B_i).
  const net::Topology topo = net::topologies::mci_backbone();
  const auto mf = analyze_wdb1_meanfield(paper_like(topo, 0.1), MeanFieldOptions{});
  const net::RouteTable table(topo, {0, 4, 8, 12, 16});
  const std::size_t k = 5;
  // Compare source 1's weights with plain 1/D normalization.
  double total = 0.0;
  std::vector<double> expected(k);
  for (std::size_t i = 0; i < k; ++i) {
    expected[i] = 1.0 / static_cast<double>(std::max<std::size_t>(table.distance(1, i), 1));
    total += expected[i];
  }
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_NEAR(mf.weights[0 * k + i], expected[i] / total, 0.01);
  }
}

TEST(WdbMeanField, Validation) {
  const net::Topology topo = net::topologies::mci_backbone();
  AnalyticModel model = paper_like(topo, 20.0);
  MeanFieldOptions options;
  options.damping = 0.0;
  EXPECT_THROW(analyze_wdb1_meanfield(model, options), std::invalid_argument);
  options = MeanFieldOptions{};
  model.lambda_total = 0.0;
  EXPECT_THROW(analyze_wdb1_meanfield(model, options), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::analysis
