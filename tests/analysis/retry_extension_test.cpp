#include "src/analysis/retry_extension.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/net/topologies.h"

namespace anyqos::analysis {
namespace {

AnalyticModel paper_like(const net::Topology& topo, double lambda) {
  AnalyticModel model;
  model.topology = &topo;
  for (net::NodeId id = 1; id < topo.router_count(); id += 2) {
    model.sources.push_back(id);
  }
  model.members = {0, 4, 8, 12, 16};
  model.lambda_total = lambda;
  return model;
}

TEST(ElementarySymmetricMean, KnownValues) {
  const std::vector<double> v = {0.1, 0.2, 0.3};
  EXPECT_DOUBLE_EQ(elementary_symmetric_mean(v, 0), 1.0);
  EXPECT_NEAR(elementary_symmetric_mean(v, 1), 0.2, 1e-12);  // mean
  // e_2 = 0.1*0.2 + 0.1*0.3 + 0.2*0.3 = 0.11; / C(3,2)=3.
  EXPECT_NEAR(elementary_symmetric_mean(v, 2), 0.11 / 3.0, 1e-12);
  // e_3 = product.
  EXPECT_NEAR(elementary_symmetric_mean(v, 3), 0.006, 1e-12);
}

TEST(ElementarySymmetricMean, EqualValuesGivePowers) {
  const std::vector<double> v(5, 0.4);
  for (std::size_t j = 0; j <= 5; ++j) {
    EXPECT_NEAR(elementary_symmetric_mean(v, j), std::pow(0.4, static_cast<double>(j)),
                1e-12);
  }
}

TEST(ElementarySymmetricMean, SubsetTooLargeThrows) {
  EXPECT_THROW(elementary_symmetric_mean({0.5}, 2), std::invalid_argument);
}

TEST(RetryAnalysis, R1MatchesEd1Analysis) {
  const net::Topology topo = net::topologies::mci_backbone();
  const AnalyticModel model = paper_like(topo, 35.0);
  const auto direct = analyze_ed1(model, FixedPointOptions{});
  RetryAnalysisOptions options;
  const auto retry = analyze_ed_retry(model, 1, options);
  EXPECT_TRUE(retry.converged);
  EXPECT_NEAR(retry.admission_probability, direct.admission_probability, 1e-3);
  EXPECT_DOUBLE_EQ(retry.average_attempts, 1.0);
}

TEST(RetryAnalysis, ApIncreasesWithR) {
  const net::Topology topo = net::topologies::mci_backbone();
  const AnalyticModel model = paper_like(topo, 35.0);
  RetryAnalysisOptions options;
  double previous = 0.0;
  for (std::size_t r = 1; r <= 5; ++r) {
    const auto result = analyze_ed_retry(model, r, options);
    EXPECT_TRUE(result.converged) << "R=" << r;
    EXPECT_GE(result.admission_probability, previous - 1e-9) << "R=" << r;
    previous = result.admission_probability;
  }
}

TEST(RetryAnalysis, GainShrinksWithR) {
  // Figure 3's observation: the 1->2 jump dominates, by 5 it's flat.
  const net::Topology topo = net::topologies::mci_backbone();
  const AnalyticModel model = paper_like(topo, 35.0);
  RetryAnalysisOptions options;
  std::vector<double> ap;
  for (std::size_t r = 1; r <= 5; ++r) {
    ap.push_back(analyze_ed_retry(model, r, options).admission_probability);
  }
  const double gain12 = ap[1] - ap[0];
  const double gain45 = ap[4] - ap[3];
  EXPECT_GT(gain12, gain45);
  EXPECT_GT(gain12, 0.01);
  EXPECT_LT(gain45, 0.02);
}

TEST(RetryAnalysis, AttemptsBetweenOneAndR) {
  const net::Topology topo = net::topologies::mci_backbone();
  const AnalyticModel model = paper_like(topo, 50.0);
  RetryAnalysisOptions options;
  const auto result = analyze_ed_retry(model, 3, options);
  EXPECT_GT(result.average_attempts, 1.0);
  EXPECT_LT(result.average_attempts, 3.0);
}

TEST(RetryAnalysis, LowLoadNeedsNoRetries) {
  const net::Topology topo = net::topologies::mci_backbone();
  const AnalyticModel model = paper_like(topo, 5.0);
  RetryAnalysisOptions options;
  const auto result = analyze_ed_retry(model, 3, options);
  EXPECT_GT(result.admission_probability, 0.9999);
  EXPECT_NEAR(result.average_attempts, 1.0, 1e-3);
}

TEST(RetryAnalysis, UaaAndErlangModelsAgree) {
  // The retry calculus sits on top of the link-blocking model; swapping UAA
  // for exact Erlang-B must not move the answer at C = 312.
  const net::Topology topo = net::topologies::mci_backbone();
  const AnalyticModel model = paper_like(topo, 35.0);
  RetryAnalysisOptions uaa;
  uaa.fixed_point.model = BlockingModel::kUaa;
  RetryAnalysisOptions exact;
  exact.fixed_point.model = BlockingModel::kErlangB;
  const auto a = analyze_ed_retry(model, 2, uaa);
  const auto b = analyze_ed_retry(model, 2, exact);
  EXPECT_NEAR(a.admission_probability, b.admission_probability, 0.002);
  EXPECT_NEAR(a.average_attempts, b.average_attempts, 0.005);
}

TEST(SpRetryAnalysis, R1MatchesSpAnalysis) {
  const net::Topology topo = net::topologies::mci_backbone();
  const AnalyticModel model = paper_like(topo, 35.0);
  const auto direct = analyze_sp(model, FixedPointOptions{});
  RetryAnalysisOptions options;
  const auto retry = analyze_sp_retry(model, 1, options);
  EXPECT_TRUE(retry.converged);
  EXPECT_NEAR(retry.admission_probability, direct.admission_probability, 1e-3);
  EXPECT_DOUBLE_EQ(retry.average_attempts, 1.0);
}

TEST(SpRetryAnalysis, RetriesLiftSpSubstantially) {
  // SP,1 is the paper's worst system; letting it fall back to the 2nd-nearest
  // member recovers a large share of ED,2's advantage.
  const net::Topology topo = net::topologies::mci_backbone();
  const AnalyticModel model = paper_like(topo, 35.0);
  RetryAnalysisOptions options;
  const double sp1 = analyze_sp_retry(model, 1, options).admission_probability;
  const double sp2 = analyze_sp_retry(model, 2, options).admission_probability;
  const double sp5 = analyze_sp_retry(model, 5, options).admission_probability;
  EXPECT_GT(sp2, sp1 + 0.03);
  EXPECT_GE(sp5, sp2 - 1e-9);
}

TEST(SpRetryAnalysis, AttemptsBetweenOneAndR) {
  const net::Topology topo = net::topologies::mci_backbone();
  const AnalyticModel model = paper_like(topo, 50.0);
  RetryAnalysisOptions options;
  const auto result = analyze_sp_retry(model, 3, options);
  EXPECT_GT(result.average_attempts, 1.0);
  EXPECT_LT(result.average_attempts, 3.0);
}

TEST(SpRetryAnalysis, BoundsValidated) {
  const net::Topology topo = net::topologies::mci_backbone();
  const AnalyticModel model = paper_like(topo, 20.0);
  RetryAnalysisOptions options;
  EXPECT_THROW(analyze_sp_retry(model, 0, options), std::invalid_argument);
  EXPECT_THROW(analyze_sp_retry(model, 6, options), std::invalid_argument);
}

TEST(RetryAnalysis, RBoundsValidated) {
  const net::Topology topo = net::topologies::mci_backbone();
  const AnalyticModel model = paper_like(topo, 20.0);
  RetryAnalysisOptions options;
  EXPECT_THROW(analyze_ed_retry(model, 0, options), std::invalid_argument);
  EXPECT_THROW(analyze_ed_retry(model, 6, options), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::analysis
