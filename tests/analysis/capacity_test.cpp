#include "src/analysis/capacity.h"

#include <gtest/gtest.h>

#include "src/net/topologies.h"

namespace anyqos::analysis {
namespace {

AnalyticModel paper_like(const net::Topology& topo) {
  AnalyticModel model;
  model.topology = &topo;
  for (net::NodeId id = 1; id < topo.router_count(); id += 2) {
    model.sources.push_back(id);
  }
  model.members = {0, 4, 8, 12, 16};
  model.lambda_total = 1.0;  // ignored by the solver
  return model;
}

TEST(AnalyticCapacity, SolvesToTargetWithinTolerance) {
  const net::Topology topo = net::topologies::mci_backbone();
  AnalyticModel model = paper_like(topo);
  CapacityQuery query;
  query.system = AnalyzedSystem::kEd1;
  query.target_ap = 0.95;
  const double lambda = lambda_at_target_ap(model, query);
  // Verify the solution brackets the target.
  model.lambda_total = lambda;
  EXPECT_GE(analyze_ed1(model, query.fixed_point).admission_probability, 0.95);
  model.lambda_total = lambda + 2.0 * query.tolerance;
  EXPECT_LT(analyze_ed1(model, query.fixed_point).admission_probability, 0.95);
}

TEST(AnalyticCapacity, RetriesRaiseCapacity) {
  const net::Topology topo = net::topologies::mci_backbone();
  const AnalyticModel model = paper_like(topo);
  CapacityQuery ed1;
  ed1.system = AnalyzedSystem::kEd1;
  ed1.target_ap = 0.9;
  CapacityQuery ed2 = ed1;
  ed2.system = AnalyzedSystem::kEdRetry;
  ed2.max_tries = 2;
  const double lambda1 = lambda_at_target_ap(model, ed1);
  const double lambda2 = lambda_at_target_ap(model, ed2);
  EXPECT_GT(lambda2, lambda1 + 0.5);  // a retry buys real capacity
}

TEST(AnalyticCapacity, Ed1VsSpCrossoverIsWhereFigure6PutsIt) {
  // On this backbone ED,1 wastes capacity on long routes, so SP carries MORE
  // demand at loose loads (high AP targets) and ED,1 wins once the short
  // routes congest — the crossover Figure 6 shows around AP ~ 0.7.
  const net::Topology topo = net::topologies::mci_backbone();
  const AnalyticModel model = paper_like(topo);
  const auto capacity = [&](AnalyzedSystem system, double target) {
    CapacityQuery query;
    query.system = system;
    query.target_ap = target;
    return lambda_at_target_ap(model, query);
  };
  EXPECT_GT(capacity(AnalyzedSystem::kSp, 0.9), capacity(AnalyzedSystem::kEd1, 0.9));
  EXPECT_LT(capacity(AnalyzedSystem::kSp, 0.5), capacity(AnalyzedSystem::kEd1, 0.5));
}

TEST(AnalyticCapacity, StricterTargetsLowerCapacity) {
  const net::Topology topo = net::topologies::mci_backbone();
  const AnalyticModel model = paper_like(topo);
  CapacityQuery loose;
  loose.system = AnalyzedSystem::kEd1;
  loose.target_ap = 0.8;
  CapacityQuery strict = loose;
  strict.target_ap = 0.99;
  EXPECT_LT(lambda_at_target_ap(model, strict), lambda_at_target_ap(model, loose));
}

TEST(AnalyticCapacity, BadBracketsRejected) {
  const net::Topology topo = net::topologies::mci_backbone();
  const AnalyticModel model = paper_like(topo);
  CapacityQuery query;
  query.target_ap = 0.95;
  query.lambda_low = 100.0;  // already over capacity at the low end
  query.lambda_high = 200.0;
  EXPECT_THROW(lambda_at_target_ap(model, query), std::invalid_argument);
  query.lambda_low = 0.1;
  query.lambda_high = 0.2;  // still under target at the high end
  EXPECT_THROW(lambda_at_target_ap(model, query), std::invalid_argument);
  query.lambda_high = 100.0;
  query.target_ap = 1.5;
  EXPECT_THROW(lambda_at_target_ap(model, query), std::invalid_argument);
}

TEST(AnalyticCapacity, AnalyticApDispatchesAllSystems) {
  const net::Topology topo = net::topologies::mci_backbone();
  AnalyticModel model = paper_like(topo);
  model.lambda_total = 35.0;
  const FixedPointOptions options;
  const double ed1 = analytic_ap(model, AnalyzedSystem::kEd1, 1, options);
  const double ed2 = analytic_ap(model, AnalyzedSystem::kEdRetry, 2, options);
  const double sp = analytic_ap(model, AnalyzedSystem::kSp, 1, options);
  EXPECT_GT(ed2, ed1);
  EXPECT_GT(ed1, sp);
}

}  // namespace
}  // namespace anyqos::analysis
