#include "src/analysis/erlang.h"

#include <gtest/gtest.h>

#include <cmath>

namespace anyqos::analysis {
namespace {

TEST(ErlangB, ClosedFormSmallCases) {
  // B(a, 1) = a / (1 + a).
  EXPECT_NEAR(erlang_b(1.0, 1), 0.5, 1e-12);
  EXPECT_NEAR(erlang_b(2.0, 1), 2.0 / 3.0, 1e-12);
  // B(a, 2) = (a^2/2) / (1 + a + a^2/2).
  EXPECT_NEAR(erlang_b(1.0, 2), 0.5 / 2.5, 1e-12);
  EXPECT_NEAR(erlang_b(2.0, 2), 2.0 / 5.0, 1e-12);
}

TEST(ErlangB, TextbookValues) {
  // Classic traffic-engineering table entries.
  EXPECT_NEAR(erlang_b(10.0, 10), 0.21460, 1e-4);
  EXPECT_NEAR(erlang_b(20.0, 30), 0.00846, 1e-4);
  EXPECT_NEAR(erlang_b(100.0, 100), 0.07570, 1e-4);
}

TEST(ErlangB, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(erlang_b(0.0, 10), 0.0);
  EXPECT_DOUBLE_EQ(erlang_b(5.0, 0), 1.0);
  EXPECT_THROW(erlang_b(-1.0, 3), std::invalid_argument);
}

TEST(ErlangB, MonotoneIncreasingInLoad) {
  double previous = 0.0;
  for (double v = 1.0; v <= 500.0; v += 7.0) {
    const double b = erlang_b(v, 312);
    EXPECT_GE(b, previous);
    previous = b;
  }
}

TEST(ErlangB, MonotoneDecreasingInCapacity) {
  double previous = 1.0;
  for (std::size_t c = 1; c <= 400; c += 13) {
    const double b = erlang_b(200.0, c);
    EXPECT_LE(b, previous);
    previous = b;
  }
}

TEST(ErlangB, DeepOverloadLimit) {
  // For v >> C, B -> 1 - C/v.
  EXPECT_NEAR(erlang_b(3120.0, 312), 1.0 - 312.0 / 3120.0, 1e-2);
}

TEST(ErlangB, StableAtHugeCapacity) {
  // The recursion must not overflow or lose accuracy at large C.
  const double b = erlang_b(10'000.0, 10'000);
  EXPECT_GT(b, 0.0);
  EXPECT_LT(b, 0.02);
  EXPECT_TRUE(std::isfinite(b));
}

TEST(DimensionCapacity, FindsMinimalCapacity) {
  const std::size_t c = dimension_capacity(10.0, 0.01);
  // Known: 10 erlangs at 1% blocking needs 18 circuits.
  EXPECT_EQ(c, 18u);
  EXPECT_LE(erlang_b(10.0, c), 0.01);
  EXPECT_GT(erlang_b(10.0, c - 1), 0.01);
}

TEST(DimensionCapacity, ZeroLoadNeedsNothing) {
  EXPECT_EQ(dimension_capacity(0.0, 0.01), 0u);
}

TEST(DimensionCapacity, Validation) {
  EXPECT_THROW(dimension_capacity(10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(dimension_capacity(10.0, 1.0), std::invalid_argument);
  EXPECT_THROW(dimension_capacity(-1.0, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::analysis
