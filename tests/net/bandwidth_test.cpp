#include "src/net/bandwidth.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/require.h"

namespace anyqos::net {
namespace {

Topology line3() {
  Topology topo;
  topo.add_router();
  topo.add_router();
  topo.add_router();
  topo.add_duplex_link(0, 1, 100.0e6);
  topo.add_duplex_link(1, 2, 100.0e6);
  return topo;
}

Path path_0_to_2(const Topology& topo) {
  Path path;
  path.source = 0;
  path.destination = 2;
  path.links = {*topo.find_link(0, 1), *topo.find_link(1, 2)};
  return path;
}

TEST(BandwidthLedger, AppliesAnycastShare) {
  const Topology topo = line3();
  const BandwidthLedger ledger(topo, 0.2);
  for (LinkId id = 0; id < topo.link_count(); ++id) {
    EXPECT_DOUBLE_EQ(ledger.capacity(id), 20.0e6);
    EXPECT_DOUBLE_EQ(ledger.available(id), 20.0e6);
    EXPECT_DOUBLE_EQ(ledger.reserved(id), 0.0);
    EXPECT_DOUBLE_EQ(ledger.utilization(id), 0.0);
  }
}

TEST(BandwidthLedger, ShareMustBeInRange) {
  const Topology topo = line3();
  EXPECT_THROW(BandwidthLedger(topo, 0.0), std::invalid_argument);
  EXPECT_THROW(BandwidthLedger(topo, 1.5), std::invalid_argument);
  EXPECT_NO_THROW(BandwidthLedger(topo, 1.0));
}

TEST(BandwidthLedger, ReserveConsumesEveryPathLink) {
  const Topology topo = line3();
  BandwidthLedger ledger(topo, 0.2);
  const Path path = path_0_to_2(topo);
  ASSERT_TRUE(ledger.reserve(path, 64'000.0));
  EXPECT_DOUBLE_EQ(ledger.available(path.links[0]), 20.0e6 - 64'000.0);
  EXPECT_DOUBLE_EQ(ledger.available(path.links[1]), 20.0e6 - 64'000.0);
  // The reverse directions are untouched.
  EXPECT_DOUBLE_EQ(ledger.available(topo.reverse_link(path.links[0])), 20.0e6);
}

TEST(BandwidthLedger, ReserveIsAtomicOnFailure) {
  const Topology topo = line3();
  BandwidthLedger ledger(topo, 0.2);
  const Path path = path_0_to_2(topo);
  // Saturate only the second link.
  Path second_only;
  second_only.source = 1;
  second_only.destination = 2;
  second_only.links = {path.links[1]};
  ASSERT_TRUE(ledger.reserve(second_only, 20.0e6));
  // Now the full path must fail and leave the first link untouched.
  EXPECT_FALSE(ledger.reserve(path, 64'000.0));
  EXPECT_DOUBLE_EQ(ledger.available(path.links[0]), 20.0e6);
}

TEST(BandwidthLedger, CapacityIsExactlyExhaustible) {
  const Topology topo = line3();
  BandwidthLedger ledger(topo, 0.2);
  Path one_link;
  one_link.source = 0;
  one_link.destination = 1;
  one_link.links = {*topo.find_link(0, 1)};
  // 20 Mbit / 64 kbit = 312.5 -> exactly 312 whole flows fit.
  for (int i = 0; i < 312; ++i) {
    ASSERT_TRUE(ledger.reserve(one_link, 64'000.0)) << "flow " << i;
  }
  EXPECT_FALSE(ledger.reserve(one_link, 64'000.0));
  EXPECT_TRUE(ledger.can_reserve(one_link, 32'000.0));  // half flow still fits
}

TEST(BandwidthLedger, ReleaseRestoresAvailability) {
  const Topology topo = line3();
  BandwidthLedger ledger(topo, 0.2);
  const Path path = path_0_to_2(topo);
  ASSERT_TRUE(ledger.reserve(path, 64'000.0));
  ledger.release(path, 64'000.0);
  EXPECT_DOUBLE_EQ(ledger.available(path.links[0]), 20.0e6);
  EXPECT_DOUBLE_EQ(ledger.total_reserved(), 0.0);
}

TEST(BandwidthLedger, OverReleaseThrowsAndChangesNothing) {
  const Topology topo = line3();
  BandwidthLedger ledger(topo, 0.2);
  const Path path = path_0_to_2(topo);
  EXPECT_THROW(ledger.release(path, 64'000.0), util::InvariantError);
  EXPECT_DOUBLE_EQ(ledger.available(path.links[0]), 20.0e6);
}

TEST(BandwidthLedger, ManyReserveReleaseCyclesStayExact) {
  // Floating-point drift must not leak capacity over millions of operations.
  const Topology topo = line3();
  BandwidthLedger ledger(topo, 0.2);
  const Path path = path_0_to_2(topo);
  for (int i = 0; i < 100'000; ++i) {
    ASSERT_TRUE(ledger.reserve(path, 64'000.0));
    ledger.release(path, 64'000.0);
  }
  EXPECT_DOUBLE_EQ(ledger.available(path.links[0]), 20.0e6);
}

TEST(BandwidthLedger, BottleneckIsPathMinimum) {
  const Topology topo = line3();
  BandwidthLedger ledger(topo, 0.2);
  const Path path = path_0_to_2(topo);
  Path second_only;
  second_only.source = 1;
  second_only.destination = 2;
  second_only.links = {path.links[1]};
  ASSERT_TRUE(ledger.reserve(second_only, 5.0e6));
  EXPECT_DOUBLE_EQ(ledger.bottleneck(path), 15.0e6);
  const Path empty;
  EXPECT_TRUE(std::isinf(ledger.bottleneck(empty)));
}

TEST(BandwidthLedger, EmptyPathReservationIsTrivial) {
  const Topology topo = line3();
  BandwidthLedger ledger(topo, 0.2);
  Path empty;
  empty.source = 0;
  empty.destination = 0;
  EXPECT_TRUE(ledger.reserve(empty, 64'000.0));
  EXPECT_DOUBLE_EQ(ledger.total_reserved(), 0.0);
}

TEST(BandwidthLedger, FailAndRestoreLink) {
  const Topology topo = line3();
  BandwidthLedger ledger(topo, 0.2);
  const LinkId link = *topo.find_link(0, 1);
  ledger.fail_link(link);
  EXPECT_TRUE(ledger.is_failed(link));
  EXPECT_DOUBLE_EQ(ledger.available(link), 0.0);
  EXPECT_DOUBLE_EQ(ledger.utilization(link), 1.0);
  Path one_link;
  one_link.source = 0;
  one_link.destination = 1;
  one_link.links = {link};
  EXPECT_FALSE(ledger.reserve(one_link, 64'000.0));
  ledger.restore_link(link);
  EXPECT_FALSE(ledger.is_failed(link));
  EXPECT_DOUBLE_EQ(ledger.available(link), 20.0e6);
  EXPECT_TRUE(ledger.reserve(one_link, 64'000.0));
}

TEST(BandwidthLedger, FailWithReservationsRejected) {
  const Topology topo = line3();
  BandwidthLedger ledger(topo, 0.2);
  const Path path = path_0_to_2(topo);
  ASSERT_TRUE(ledger.reserve(path, 64'000.0));
  EXPECT_THROW(ledger.fail_link(path.links[0]), std::invalid_argument);
}

TEST(BandwidthLedger, DoubleFailAndBadRestoreRejected) {
  const Topology topo = line3();
  BandwidthLedger ledger(topo, 0.2);
  const LinkId link = *topo.find_link(0, 1);
  ledger.fail_link(link);
  EXPECT_THROW(ledger.fail_link(link), std::invalid_argument);
  ledger.restore_link(link);
  EXPECT_THROW(ledger.restore_link(link), std::invalid_argument);
}

TEST(BandwidthLedger, NonPositiveAmountsRejected) {
  const Topology topo = line3();
  BandwidthLedger ledger(topo, 0.2);
  const Path path = path_0_to_2(topo);
  EXPECT_THROW((void)ledger.reserve(path, 0.0), std::invalid_argument);
  EXPECT_THROW(ledger.release(path, -1.0), std::invalid_argument);
  EXPECT_THROW((void)ledger.can_reserve(path, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::net
