#include "src/net/topologies.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/net/routing.h"

namespace anyqos::net::topologies {
namespace {

TEST(MciBackbone, HasPaperScale) {
  const Topology topo = mci_backbone();
  EXPECT_EQ(topo.router_count(), 19u);       // "There are 19 nodes"
  EXPECT_EQ(topo.duplex_link_count(), 33u);  // MCI-era backbone link count
  EXPECT_TRUE(topo.connected());
}

TEST(MciBackbone, DefaultCapacityIs100Mbps) {
  const Topology topo = mci_backbone();
  for (LinkId id = 0; id < topo.link_count(); ++id) {
    EXPECT_DOUBLE_EQ(topo.capacity(id), 100.0e6);
  }
}

TEST(MciBackbone, CustomCapacityApplies) {
  const Topology topo = mci_backbone(10.0e6);
  EXPECT_DOUBLE_EQ(topo.capacity(0), 10.0e6);
}

TEST(MciBackbone, RouteLengthsAreHeterogeneous) {
  // The evaluation depends on sources having members at different distances;
  // check the group members {0,4,8,12,16} span several hop counts from a
  // corner source.
  const Topology topo = mci_backbone();
  const RouteTable table(topo, {0, 4, 8, 12, 16});
  std::size_t min_d = 100;
  std::size_t max_d = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    min_d = std::min(min_d, table.distance(1, i));
    max_d = std::max(max_d, table.distance(1, i));
  }
  EXPECT_LE(min_d, 2u);
  EXPECT_GE(max_d, 3u);
}

TEST(MciBackbone, NamesAreCities) {
  const Topology topo = mci_backbone();
  EXPECT_EQ(topo.router_name(0), "SEA");
  EXPECT_EQ(topo.router_name(18), "RDU");
}

TEST(Line, StructureAndBounds) {
  const Topology topo = line(5);
  EXPECT_EQ(topo.router_count(), 5u);
  EXPECT_EQ(topo.duplex_link_count(), 4u);
  EXPECT_TRUE(topo.connected());
  const auto dist = hop_distances(topo, 0);
  EXPECT_EQ(dist[4], 4u);
  EXPECT_THROW(line(1), std::invalid_argument);
}

TEST(Ring, StructureAndBounds) {
  const Topology topo = ring(6);
  EXPECT_EQ(topo.router_count(), 6u);
  EXPECT_EQ(topo.duplex_link_count(), 6u);
  EXPECT_TRUE(topo.connected());
  const auto dist = hop_distances(topo, 0);
  EXPECT_EQ(dist[3], 3u);  // halfway around
  EXPECT_EQ(dist[5], 1u);  // wraps
  EXPECT_THROW(ring(2), std::invalid_argument);
}

TEST(Star, StructureAndBounds) {
  const Topology topo = star(7);
  EXPECT_EQ(topo.router_count(), 7u);
  EXPECT_EQ(topo.duplex_link_count(), 6u);
  const auto dist = hop_distances(topo, 1);
  EXPECT_EQ(dist[0], 1u);
  EXPECT_EQ(dist[6], 2u);  // leaf to leaf via hub
  EXPECT_THROW(star(1), std::invalid_argument);
}

TEST(Grid, StructureAndDistances) {
  const Topology topo = grid(3, 4);
  EXPECT_EQ(topo.router_count(), 12u);
  // 3*3 horizontal + 2*4 vertical = 17 duplex links.
  EXPECT_EQ(topo.duplex_link_count(), 17u);
  EXPECT_TRUE(topo.connected());
  const auto dist = hop_distances(topo, 0);
  EXPECT_EQ(dist[11], 5u);  // Manhattan distance corner to corner
  EXPECT_THROW(grid(1, 1), std::invalid_argument);
}

TEST(Waxman, ConnectedAndDeterministic) {
  const Topology a = waxman(30, 0.6, 0.4, 17);
  const Topology b = waxman(30, 0.6, 0.4, 17);
  EXPECT_TRUE(a.connected());
  EXPECT_EQ(a.router_count(), 30u);
  EXPECT_EQ(a.duplex_link_count(), b.duplex_link_count());
  // The spanning tree guarantees at least n-1 links.
  EXPECT_GE(a.duplex_link_count(), 29u);
}

TEST(Waxman, DifferentSeedsDiffer) {
  const Topology a = waxman(30, 0.6, 0.4, 1);
  const Topology b = waxman(30, 0.6, 0.4, 2);
  // Overwhelmingly likely to differ in link count.
  EXPECT_TRUE(a.duplex_link_count() != b.duplex_link_count() ||
              a.find_link(0, 5).has_value() != b.find_link(0, 5).has_value());
}

TEST(Waxman, HigherAlphaDensifies) {
  const Topology sparse = waxman(40, 0.1, 0.3, 5);
  const Topology dense = waxman(40, 0.9, 0.9, 5);
  EXPECT_GT(dense.duplex_link_count(), sparse.duplex_link_count());
}

TEST(Waxman, ParameterValidation) {
  EXPECT_THROW(waxman(1, 0.5, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(waxman(10, 0.0, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(waxman(10, 0.5, 1.5, 1), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::net::topologies
