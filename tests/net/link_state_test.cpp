#include "src/net/link_state.h"

#include <gtest/gtest.h>

#include "src/net/topologies.h"

namespace anyqos::net {
namespace {

TEST(LinkState, StartsWithLocalKnowledgeOnly) {
  const Topology topo = topologies::line(4);
  LinkStateProtocol protocol(topo);
  // Router 0 knows its own link, not the far one.
  EXPECT_EQ(protocol.record(0, *topo.find_link(0, 1)).sequence, 1u);
  EXPECT_EQ(protocol.record(0, *topo.find_link(2, 3)).sequence, 0u);
  EXPECT_FALSE(protocol.database_complete(0));
}

TEST(LinkState, FloodingCompletesInDiameterRounds) {
  const Topology topo = topologies::line(5);  // diameter 4
  LinkStateProtocol protocol(topo);
  const std::size_t rounds = protocol.converge();
  EXPECT_TRUE(protocol.converged());
  // An LSA at one end needs diameter-1 forwarding rounds to reach the other
  // end, plus the final no-change round.
  EXPECT_LE(rounds, 5u);
  for (NodeId r = 0; r < topo.router_count(); ++r) {
    EXPECT_TRUE(protocol.database_complete(r)) << "router " << r;
  }
}

TEST(LinkState, SpfMatchesCentralShortestPathExactly) {
  const Topology topo = topologies::mci_backbone();
  LinkStateProtocol protocol(topo);
  protocol.converge();
  for (NodeId s = 0; s < topo.router_count(); ++s) {
    ASSERT_TRUE(protocol.database_complete(s));
    for (NodeId d = 0; d < topo.router_count(); ++d) {
      const auto spf = protocol.spf_path(s, d);
      const auto central = shortest_path(topo, s, d);
      ASSERT_TRUE(spf.has_value());
      ASSERT_TRUE(central.has_value());
      // Same deterministic traversal => identical link sequences.
      EXPECT_EQ(spf->links, central->links) << s << "->" << d;
    }
  }
}

TEST(LinkState, PartialDatabaseGivesPartialReachability) {
  const Topology topo = topologies::line(4);
  LinkStateProtocol protocol(topo);
  // No flooding yet: router 0 only sees its own link.
  EXPECT_TRUE(protocol.spf_path(0, 1).has_value());
  EXPECT_FALSE(protocol.spf_path(0, 3).has_value());
  protocol.step();  // one round: learns 1's links
  EXPECT_TRUE(protocol.spf_path(0, 2).has_value());
  EXPECT_FALSE(protocol.spf_path(0, 3).has_value());
}

TEST(LinkState, FailureRefloodsAndReroutes) {
  const Topology topo = topologies::ring(6);
  LinkStateProtocol protocol(topo);
  protocol.converge();
  const LinkId link = *topo.find_link(0, 1);
  protocol.fail_duplex_link(link);
  protocol.converge();
  EXPECT_TRUE(protocol.converged());
  const auto rerouted = protocol.spf_path(0, 1);
  ASSERT_TRUE(rerouted.has_value());
  EXPECT_EQ(rerouted->hops(), 5u);  // around the ring
  // Every router agrees the link is down.
  for (NodeId r = 0; r < topo.router_count(); ++r) {
    EXPECT_FALSE(protocol.record(r, link).up) << "router " << r;
  }
}

TEST(LinkState, RestoreRefloodsUpLsa) {
  const Topology topo = topologies::ring(6);
  LinkStateProtocol protocol(topo);
  protocol.converge();
  const LinkId link = *topo.find_link(0, 1);
  protocol.fail_duplex_link(link);
  protocol.converge();
  protocol.restore_duplex_link(link);
  protocol.converge();
  const auto path = protocol.spf_path(0, 1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops(), 1u);
  EXPECT_TRUE(protocol.record(3, link).up);
  EXPECT_EQ(protocol.record(3, link).sequence, 3u);  // up, down, up again
}

TEST(LinkState, PartitionIsolatesLsas) {
  // Failing the middle link partitions a line: new LSAs cannot cross, so the
  // sides keep stale views of each other's links (a real link-state
  // property) while their own sides stay correct.
  const Topology topo = topologies::line(4);
  LinkStateProtocol protocol(topo);
  protocol.converge();
  const LinkId middle = *topo.find_link(1, 2);
  protocol.fail_duplex_link(middle);
  protocol.converge();
  EXPECT_FALSE(protocol.spf_path(0, 3).has_value());
  // Now fail 2-3 too: routers 0 and 1 never learn (flooding can't cross the
  // dead middle link), router 2's view updates.
  const LinkId far = *topo.find_link(2, 3);
  protocol.fail_duplex_link(far);
  protocol.converge();
  EXPECT_TRUE(protocol.record(0, far).up);    // stale view on the cut-off side
  EXPECT_FALSE(protocol.record(2, far).up);   // fresh view locally
}

TEST(LinkState, FailureValidation) {
  const Topology topo = topologies::line(3);
  LinkStateProtocol protocol(topo);
  const LinkId link = *topo.find_link(0, 1);
  protocol.fail_duplex_link(link);
  EXPECT_THROW(protocol.fail_duplex_link(link), std::invalid_argument);
  protocol.restore_duplex_link(link);
  EXPECT_THROW(protocol.restore_duplex_link(link), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(protocol.record(0, 999)), std::invalid_argument);
  EXPECT_THROW(protocol.spf_path(9, 0), std::invalid_argument);
}

// Property: flooding always completes on connected topologies, and SPF then
// agrees with central BFS distances.
class LsEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(LsEquivalence, FloodedSpfMatchesBfs) {
  Topology topo = [&]() -> Topology {
    switch (GetParam()) {
      case 0:
        return topologies::line(6);
      case 1:
        return topologies::ring(7);
      case 2:
        return topologies::star(8);
      case 3:
        return topologies::grid(4, 3);
      default:
        return topologies::waxman(18, 0.6, 0.5, 3);
    }
  }();
  LinkStateProtocol protocol(topo);
  protocol.converge();
  for (NodeId s = 0; s < topo.router_count(); ++s) {
    EXPECT_TRUE(protocol.database_complete(s));
    const auto central = hop_distances(topo, s);
    for (NodeId d = 0; d < topo.router_count(); ++d) {
      const auto path = protocol.spf_path(s, d);
      ASSERT_TRUE(path.has_value());
      EXPECT_EQ(path->hops(), central[d]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, LsEquivalence, ::testing::Values(0, 1, 2, 3, 4));

TEST(LinkState, RepairPathsEqualFreshSpfAfterFailAndRestore) {
  // The path-repair plane's core assumption: after a fail + restore cycle
  // and full reconvergence, every router's SPF answer is indistinguishable
  // from a freshly computed one — stale "down" LSAs must not linger. Swept
  // across the paper's backbone, a grid, and a random Waxman graph.
  const Topology topologies[] = {
      topologies::mci_backbone(),
      topologies::grid(4, 4),
      topologies::waxman(16, 0.6, 0.4, 42),
  };
  for (const Topology& topo : topologies) {
    LinkStateProtocol protocol(topo);
    protocol.converge();
    // Fail and later restore a handful of links spread over the graph.
    for (LinkId link = 0; link < topo.link_count(); link += 10) {
      protocol.fail_duplex_link(link);
      protocol.converge();
      protocol.restore_duplex_link(link);
      protocol.converge();
    }
    ASSERT_TRUE(protocol.converged());
    for (NodeId s = 0; s < topo.router_count(); ++s) {
      ASSERT_TRUE(protocol.database_complete(s)) << "router " << s;
      for (NodeId d = 0; d < topo.router_count(); ++d) {
        const auto spf = protocol.spf_path(s, d);
        const auto central = shortest_path(topo, s, d);
        ASSERT_EQ(spf.has_value(), central.has_value()) << s << "->" << d;
        if (spf.has_value()) {
          EXPECT_EQ(spf->links, central->links) << s << "->" << d;
        }
      }
    }
  }
}

TEST(LinkState, RoutesDuringOutageEqualSpfOnThePrunedTopology) {
  // Mid-outage (failure flooded, link still down) every reachable pair's
  // route must avoid the dead link — the invariant Simulation::reconverge
  // relies on when it recomputes the static route table.
  const Topology topo = topologies::grid(4, 4);
  LinkStateProtocol protocol(topo);
  protocol.converge();
  const LinkId victim = *topo.find_link(5, 6);
  protocol.fail_duplex_link(victim);
  protocol.converge();
  const LinkId reverse = topo.reverse_link(victim);
  for (NodeId s = 0; s < topo.router_count(); ++s) {
    for (NodeId d = 0; d < topo.router_count(); ++d) {
      const auto spf = protocol.spf_path(s, d);
      if (!spf.has_value()) {
        continue;  // grid stays connected, but keep the check general
      }
      for (const LinkId link : spf->links) {
        EXPECT_NE(link, victim) << s << "->" << d;
        EXPECT_NE(link, reverse) << s << "->" << d;
      }
    }
  }
}

}  // namespace
}  // namespace anyqos::net
