#include "src/net/metrics.h"

#include <gtest/gtest.h>

#include "src/net/topologies.h"

namespace anyqos::net {
namespace {

TEST(GraphMetrics, LineDiameterAndDegrees) {
  const Topology topo = topologies::line(5);
  EXPECT_EQ(diameter(topo), 4u);
  const auto deg = degrees(topo);
  EXPECT_EQ(deg[0], 1u);
  EXPECT_EQ(deg[2], 2u);
  EXPECT_EQ(deg[4], 1u);
  EXPECT_DOUBLE_EQ(average_degree(topo), 2.0 * 4.0 / 5.0);
}

TEST(GraphMetrics, RingIsSymmetric) {
  const Topology topo = topologies::ring(8);
  EXPECT_EQ(diameter(topo), 4u);
  for (const std::size_t d : degrees(topo)) {
    EXPECT_EQ(d, 2u);
  }
  EXPECT_DOUBLE_EQ(average_degree(topo), 2.0);
}

TEST(GraphMetrics, StarHasDiameterTwo) {
  const Topology topo = topologies::star(10);
  EXPECT_EQ(diameter(topo), 2u);
  EXPECT_EQ(degrees(topo)[0], 9u);
}

TEST(GraphMetrics, MciBackboneShape) {
  const Topology topo = topologies::mci_backbone();
  // 33 duplex links over 19 routers: average degree ~3.47.
  EXPECT_NEAR(average_degree(topo), 2.0 * 33.0 / 19.0, 1e-12);
  const std::size_t d = diameter(topo);
  EXPECT_GE(d, 4u);
  EXPECT_LE(d, 7u);
  EXPECT_GT(mean_distance(topo), 1.5);
  EXPECT_LT(mean_distance(topo), static_cast<double>(d));
}

TEST(GraphMetrics, MeanDistanceLine) {
  // Line of 3: distances 1,2,1,1,2,1 -> mean 8/6.
  const Topology topo = topologies::line(3);
  EXPECT_NEAR(mean_distance(topo), 8.0 / 6.0, 1e-12);
}

TEST(GraphMetrics, DisconnectedRejected) {
  Topology topo;
  topo.add_router();
  topo.add_router();
  EXPECT_THROW(diameter(topo), std::invalid_argument);
  EXPECT_THROW(mean_distance(topo), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::net
