#include "src/net/graph.h"

#include <gtest/gtest.h>

namespace anyqos::net {
namespace {

TEST(Graph, StartsWithRequestedNodes) {
  Graph g(3);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.arc_count(), 0u);
}

TEST(Graph, AddNodeReturnsSequentialIds) {
  Graph g;
  EXPECT_EQ(g.add_node(), 0u);
  EXPECT_EQ(g.add_node(), 1u);
  EXPECT_EQ(g.add_node(), 2u);
}

TEST(Graph, AddArcTracksEndpointsAndAdjacency) {
  Graph g(3);
  const LinkId a = g.add_arc(0, 1);
  const LinkId b = g.add_arc(1, 2);
  EXPECT_EQ(g.arc(a).from, 0u);
  EXPECT_EQ(g.arc(a).to, 1u);
  ASSERT_EQ(g.out_arcs(0).size(), 1u);
  EXPECT_EQ(g.out_arcs(0)[0], a);
  ASSERT_EQ(g.in_arcs(2).size(), 1u);
  EXPECT_EQ(g.in_arcs(2)[0], b);
  EXPECT_TRUE(g.out_arcs(2).empty());
}

TEST(Graph, SelfLoopRejected) {
  Graph g(2);
  EXPECT_THROW(g.add_arc(1, 1), std::invalid_argument);
}

TEST(Graph, OutOfRangeNodesRejected) {
  Graph g(2);
  EXPECT_THROW(g.add_arc(0, 5), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(g.out_arcs(9)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(g.arc(0)), std::invalid_argument);
}

TEST(Graph, FindArcLocatesFirstMatch) {
  Graph g(3);
  const LinkId a = g.add_arc(0, 1);
  g.add_arc(0, 2);
  EXPECT_EQ(g.find_arc(0, 1), a);
  EXPECT_EQ(g.find_arc(1, 0), kInvalidLink);
}

TEST(Graph, ParallelArcsAllowed) {
  Graph g(2);
  const LinkId first = g.add_arc(0, 1);
  const LinkId second = g.add_arc(0, 1);
  EXPECT_NE(first, second);
  EXPECT_EQ(g.out_arcs(0).size(), 2u);
  EXPECT_EQ(g.find_arc(0, 1), first);  // first match wins
}

TEST(Graph, StronglyConnectedTrivialCases) {
  EXPECT_TRUE(Graph(0).strongly_connected());
  EXPECT_TRUE(Graph(1).strongly_connected());
}

TEST(Graph, DirectedCycleIsStronglyConnected) {
  Graph g(3);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.add_arc(2, 0);
  EXPECT_TRUE(g.strongly_connected());
}

TEST(Graph, OneWayChainIsNotStronglyConnected) {
  Graph g(3);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  EXPECT_FALSE(g.strongly_connected());
}

TEST(Graph, IsolatedNodeBreaksConnectivity) {
  Graph g(3);
  g.add_arc(0, 1);
  g.add_arc(1, 0);
  EXPECT_FALSE(g.strongly_connected());
}

}  // namespace
}  // namespace anyqos::net
