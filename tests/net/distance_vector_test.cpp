#include "src/net/distance_vector.h"

#include <gtest/gtest.h>

#include "src/net/topologies.h"

namespace anyqos::net {
namespace {

TEST(DistanceVector, SeedsSelfRoutes) {
  const Topology topo = topologies::line(3);
  DistanceVectorProtocol protocol(topo);
  for (NodeId r = 0; r < 3; ++r) {
    EXPECT_EQ(protocol.entry(r, r).distance, 0u);
  }
  EXPECT_EQ(protocol.entry(0, 2).distance, kUnreachable);
}

TEST(DistanceVector, ConvergesOnLine) {
  const Topology topo = topologies::line(5);
  DistanceVectorProtocol protocol(topo);
  const std::size_t rounds = protocol.converge();
  EXPECT_TRUE(protocol.converged());
  // Information travels one hop per round: distance-4 routes need 4 rounds
  // plus the final no-change round.
  EXPECT_EQ(rounds, 5u);
  EXPECT_EQ(protocol.entry(0, 4).distance, 4u);
  EXPECT_EQ(protocol.entry(4, 0).distance, 4u);
}

TEST(DistanceVector, MatchesCentralizedShortestPathsOnMci) {
  const Topology topo = topologies::mci_backbone();
  DistanceVectorProtocol protocol(topo);
  protocol.converge();
  for (NodeId s = 0; s < topo.router_count(); ++s) {
    const auto central = hop_distances(topo, s);
    for (NodeId d = 0; d < topo.router_count(); ++d) {
      EXPECT_EQ(protocol.entry(s, d).distance, central[d]) << s << "->" << d;
    }
  }
}

TEST(DistanceVector, PathsAreValidAndShortest) {
  const Topology topo = topologies::mci_backbone();
  DistanceVectorProtocol protocol(topo);
  protocol.converge();
  for (NodeId s = 0; s < topo.router_count(); ++s) {
    for (NodeId d = 0; d < topo.router_count(); ++d) {
      const auto path = protocol.path(s, d);
      ASSERT_TRUE(path.has_value());
      topo.validate_path(*path);
      EXPECT_EQ(path->hops(), hop_distances(topo, s)[d]);
    }
  }
}

TEST(DistanceVector, DistanceVectorRoutesHelper) {
  const Topology topo = topologies::mci_backbone();
  const std::vector<NodeId> members = {0, 4, 8, 12, 16};
  const auto routes = distance_vector_routes(topo, members);
  const RouteTable central(topo, members);
  ASSERT_EQ(routes.size(), topo.router_count() * members.size());
  for (NodeId s = 0; s < topo.router_count(); ++s) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      // Hop counts must agree with the centrally computed fixed routes (the
      // concrete links may differ when several shortest paths exist).
      EXPECT_EQ(routes[s * members.size() + i].hops(), central.distance(s, i));
    }
  }
}

TEST(DistanceVector, ReconvergesAfterLinkFailure) {
  const Topology topo = topologies::ring(6);
  DistanceVectorProtocol protocol(topo);
  protocol.converge();
  EXPECT_EQ(protocol.entry(0, 3).distance, 3u);
  // Fail the 0-1 link: reaching 3 must flip to the other direction (0-5-4-3).
  const LinkId link = *topo.find_link(0, 1);
  protocol.fail_duplex_link(link);
  protocol.converge();
  EXPECT_TRUE(protocol.converged());
  EXPECT_EQ(protocol.entry(0, 1).distance, 5u);  // long way round
  EXPECT_EQ(protocol.entry(0, 3).distance, 3u);  // unchanged (other arc)
  const auto path = protocol.path(0, 1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops(), 5u);
}

TEST(DistanceVector, RestoreBringsShortRoutesBack) {
  const Topology topo = topologies::ring(6);
  DistanceVectorProtocol protocol(topo);
  protocol.converge();
  const LinkId link = *topo.find_link(0, 1);
  protocol.fail_duplex_link(link);
  protocol.converge();
  protocol.restore_duplex_link(link);
  protocol.converge();
  EXPECT_EQ(protocol.entry(0, 1).distance, 1u);
}

TEST(DistanceVector, CountToInfinityBoundedByDiameterCap) {
  // Partition a line: the far side must become unreachable rather than
  // counting up forever (RIP's metric-16 behaviour).
  const Topology topo = topologies::line(4);
  DistanceVectorProtocol protocol(topo, /*max_diameter=*/8);
  protocol.converge();
  const LinkId link = *topo.find_link(1, 2);
  protocol.fail_duplex_link(link);
  const std::size_t rounds = protocol.converge(200);
  EXPECT_TRUE(protocol.converged());
  EXPECT_LE(rounds, 20u);  // bounded count-down, not 200
  EXPECT_EQ(protocol.entry(0, 3).distance, kUnreachable);
  EXPECT_FALSE(protocol.path(0, 3).has_value());
}

TEST(DistanceVector, FailureValidation) {
  const Topology topo = topologies::line(3);
  DistanceVectorProtocol protocol(topo);
  const LinkId link = *topo.find_link(0, 1);
  protocol.fail_duplex_link(link);
  EXPECT_THROW(protocol.fail_duplex_link(link), std::invalid_argument);
  protocol.restore_duplex_link(link);
  EXPECT_THROW(protocol.restore_duplex_link(link), std::invalid_argument);
  EXPECT_THROW(protocol.fail_duplex_link(999), std::invalid_argument);
}

TEST(DistanceVector, QueriesValidated) {
  const Topology topo = topologies::line(3);
  const DistanceVectorProtocol protocol(topo);
  EXPECT_THROW(static_cast<void>(protocol.entry(5, 0)), std::invalid_argument);
  EXPECT_THROW(protocol.path(0, 9), std::invalid_argument);
  EXPECT_THROW(DistanceVectorProtocol(topo, 0), std::invalid_argument);
}

// Property: on every topology family, converged distances equal BFS.
class DvEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DvEquivalence, ConvergedTablesMatchBfs) {
  Topology topo = [&]() -> Topology {
    switch (GetParam()) {
      case 0:
        return topologies::line(7);
      case 1:
        return topologies::ring(8);
      case 2:
        return topologies::star(9);
      case 3:
        return topologies::grid(3, 4);
      default:
        return topologies::waxman(20, 0.5, 0.5, 77);
    }
  }();
  DistanceVectorProtocol protocol(topo);
  protocol.converge();
  ASSERT_TRUE(protocol.converged());
  for (NodeId s = 0; s < topo.router_count(); ++s) {
    const auto central = hop_distances(topo, s);
    for (NodeId d = 0; d < topo.router_count(); ++d) {
      EXPECT_EQ(protocol.entry(s, d).distance, central[d]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, DvEquivalence, ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace anyqos::net
