#include "src/net/multipath.h"

#include <gtest/gtest.h>

#include <set>

#include "src/net/topologies.h"

namespace anyqos::net {
namespace {

TEST(MultiPathRouteTable, FirstRankEqualsShortestPathLength) {
  const Topology topo = topologies::mci_backbone();
  const MultiPathRouteTable multi(topo, {0, 4, 8, 12, 16}, 3);
  const RouteTable single(topo, {0, 4, 8, 12, 16});
  for (NodeId s = 0; s < topo.router_count(); ++s) {
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(multi.path(s, i, 0).hops(), single.distance(s, i));
    }
  }
}

TEST(MultiPathRouteTable, RanksAreNonDecreasingAndDistinct) {
  const Topology topo = topologies::mci_backbone();
  const MultiPathRouteTable multi(topo, {16}, 4);
  for (NodeId s = 0; s < topo.router_count(); ++s) {
    std::set<std::vector<LinkId>> seen;
    for (std::size_t rank = 0; rank < multi.path_count(s, 0); ++rank) {
      const Path& p = multi.path(s, 0, rank);
      topo.validate_path(p);
      EXPECT_TRUE(seen.insert(p.links).second);
      if (rank > 0) {
        EXPECT_GE(p.hops(), multi.path(s, 0, rank - 1).hops());
      }
    }
  }
}

TEST(MultiPathRouteTable, PathCountCappedByTopology) {
  // A line has exactly one loopless path per pair regardless of k.
  const Topology topo = topologies::line(5);
  const MultiPathRouteTable multi(topo, {4}, 5);
  for (NodeId s = 0; s < 4; ++s) {
    EXPECT_EQ(multi.path_count(s, 0), 1u);
  }
  EXPECT_EQ(multi.alternatives(0), 1u);
}

TEST(MultiPathRouteTable, AlternativesSumAcrossMembers) {
  const Topology topo = topologies::ring(6);
  // A ring has exactly two loopless paths between distinct nodes.
  const MultiPathRouteTable multi(topo, {0, 3}, 4);
  EXPECT_EQ(multi.alternatives(1), 4u);  // 2 members x 2 ring paths
}

TEST(MultiPathRouteTable, Validation) {
  const Topology topo = topologies::line(3);
  EXPECT_THROW(MultiPathRouteTable(topo, {}, 2), std::invalid_argument);
  EXPECT_THROW(MultiPathRouteTable(topo, {1}, 0), std::invalid_argument);
  const MultiPathRouteTable multi(topo, {2}, 2);
  EXPECT_THROW(static_cast<void>(multi.path(0, 0, 5)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(multi.path(9, 0, 0)), std::invalid_argument);
  Topology split;
  split.add_router();
  split.add_router();
  EXPECT_THROW(MultiPathRouteTable(split, {1}, 2), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::net
