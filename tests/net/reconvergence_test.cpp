#include "src/net/reconvergence.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/net/routing.h"
#include "src/net/topologies.h"

namespace anyqos::net {
namespace {

TEST(ReconvergencePolicy, InstantIsZeroEverywhere) {
  InstantReconvergence policy;
  EXPECT_DOUBLE_EQ(policy.delay_s(topologies::line(2)), 0.0);
  EXPECT_DOUBLE_EQ(policy.delay_s(topologies::mci_backbone()), 0.0);
  EXPECT_EQ(policy.name(), "instant");
}

TEST(ReconvergencePolicy, FixedIgnoresTopologyShape) {
  FixedReconvergence policy(2.5);
  EXPECT_DOUBLE_EQ(policy.delay_s(topologies::line(2)), 2.5);
  EXPECT_DOUBLE_EQ(policy.delay_s(topologies::grid(5, 5)), 2.5);
  EXPECT_EQ(policy.name(), "fixed");
  EXPECT_THROW(FixedReconvergence(-1.0), std::invalid_argument);
}

TEST(ReconvergencePolicy, FloodingScalesWithDiameter) {
  // delay = (diameter + 1) rounds: the LSA reaches the farthest router in
  // `diameter` flooding rounds, plus one round for the local SPF.
  FloodingReconvergence policy(0.1);
  const Topology line5 = topologies::line(5);  // diameter 4
  EXPECT_DOUBLE_EQ(policy.delay_s(line5), 0.5);
  FloodingReconvergence ring_policy(0.1);
  const Topology ring8 = topologies::ring(8);  // diameter 4
  EXPECT_DOUBLE_EQ(ring_policy.delay_s(ring8), 0.5);
  EXPECT_EQ(policy.name(), "flooding");
  EXPECT_THROW(FloodingReconvergence(0.0), std::invalid_argument);
}

TEST(TopologyDiameter, MatchesKnownShapes) {
  EXPECT_EQ(topology_diameter(topologies::line(6)), 5u);
  EXPECT_EQ(topology_diameter(topologies::ring(6)), 3u);
  EXPECT_EQ(topology_diameter(topologies::star(5)), 2u);
  EXPECT_EQ(topology_diameter(topologies::grid(3, 3)), 4u);
}

TEST(RouteTableRecompute, AllLinksUpReproducesTheInitialTable) {
  // The determinism cornerstone: recompute with everything in service must
  // be byte-for-byte the constructor's table (same BFS tie-break).
  const Topology topo = topologies::mci_backbone();
  RouteTable fresh(topo, {0, 4, 9, 14});
  RouteTable cycled(topo, {0, 4, 9, 14});
  const std::vector<char> all_up(topo.link_count() / 2, 1);
  cycled.recompute(topo, all_up);
  for (NodeId s = 0; s < topo.router_count(); ++s) {
    for (std::size_t i = 0; i < fresh.destination_count(); ++i) {
      ASSERT_TRUE(cycled.has_route(s, i));
      EXPECT_EQ(cycled.route(s, i).links, fresh.route(s, i).links) << s << "->" << i;
    }
  }
}

TEST(RouteTableRecompute, RoutesAvoidDownLinksAndMatchPrunedBfs) {
  const Topology topo = topologies::grid(4, 4);
  RouteTable table(topo, {0, 15});
  std::vector<char> duplex_up(topo.link_count() / 2, 1);
  const LinkId victim = *topo.find_link(5, 6);
  duplex_up[victim / 2] = 0;
  table.recompute(topo, duplex_up);
  for (NodeId s = 0; s < topo.router_count(); ++s) {
    for (std::size_t i = 0; i < table.destination_count(); ++i) {
      ASSERT_TRUE(table.has_route(s, i)) << "grid stays connected";
      for (const LinkId link : table.route(s, i).links) {
        EXPECT_NE(link / 2, victim / 2) << s << "->" << i;
      }
    }
  }
}

TEST(RouteTableRecompute, PartitionKeepsStalePathButClearsHasRoute) {
  // Line 0-1-2: cutting 1-2 strands destination index 1 (router 2) for
  // sources 0 and 1. The stale path must survive (distance() stays defined
  // for selectors) while has_route() reports the partition.
  const Topology topo = topologies::line(3);
  RouteTable table(topo, {0, 2});
  const Path before = table.route(0, 1);
  std::vector<char> duplex_up(topo.link_count() / 2, 1);
  duplex_up[*topo.find_link(1, 2) / 2] = 0;
  table.recompute(topo, duplex_up);
  EXPECT_FALSE(table.has_route(0, 1));
  EXPECT_FALSE(table.has_route(1, 1));
  EXPECT_TRUE(table.has_route(0, 0));
  EXPECT_EQ(table.route(0, 1).links, before.links);  // stale but defined
  // shortest_destination skips the stranded member.
  EXPECT_EQ(table.shortest_destination(1), 0u);
  // Reconnecting restores reachability and the original route.
  duplex_up[*topo.find_link(1, 2) / 2] = 1;
  table.recompute(topo, duplex_up);
  EXPECT_TRUE(table.has_route(0, 1));
  EXPECT_EQ(table.route(0, 1).links, before.links);
}

}  // namespace
}  // namespace anyqos::net
