#include "src/net/topology.h"

#include <gtest/gtest.h>

namespace anyqos::net {
namespace {

Topology triangle() {
  Topology topo;
  topo.add_router("A");
  topo.add_router("B");
  topo.add_router();
  topo.add_duplex_link(0, 1, 100.0e6);
  topo.add_duplex_link(1, 2, 50.0e6);
  topo.add_duplex_link(2, 0, 25.0e6);
  return topo;
}

TEST(Topology, CountsRoutersAndLinks) {
  const Topology topo = triangle();
  EXPECT_EQ(topo.router_count(), 3u);
  EXPECT_EQ(topo.link_count(), 6u);          // directed
  EXPECT_EQ(topo.duplex_link_count(), 3u);
}

TEST(Topology, DuplexLinkCreatesBothDirections) {
  Topology topo;
  topo.add_router();
  topo.add_router();
  const auto [fwd, bwd] = topo.add_duplex_link(0, 1, 1.0e6);
  EXPECT_EQ(topo.link(fwd).from, 0u);
  EXPECT_EQ(topo.link(fwd).to, 1u);
  EXPECT_EQ(topo.link(bwd).from, 1u);
  EXPECT_EQ(topo.link(bwd).to, 0u);
  EXPECT_EQ(topo.reverse_link(fwd), bwd);
  EXPECT_EQ(topo.reverse_link(bwd), fwd);
}

TEST(Topology, CapacityPerDirection) {
  const Topology topo = triangle();
  const LinkId ab = *topo.find_link(0, 1);
  const LinkId ba = *topo.find_link(1, 0);
  EXPECT_DOUBLE_EQ(topo.capacity(ab), 100.0e6);
  EXPECT_DOUBLE_EQ(topo.capacity(ba), 100.0e6);
}

TEST(Topology, RouterNamesFallBackToIds) {
  const Topology topo = triangle();
  EXPECT_EQ(topo.router_name(0), "A");
  EXPECT_EQ(topo.router_name(2), "r2");
  EXPECT_THROW(topo.router_name(9), std::invalid_argument);
}

TEST(Topology, FindLinkIsDirectional) {
  const Topology topo = triangle();
  EXPECT_TRUE(topo.find_link(0, 1).has_value());
  EXPECT_TRUE(topo.find_link(1, 0).has_value());
  EXPECT_NE(*topo.find_link(0, 1), *topo.find_link(1, 0));
  Topology two;
  two.add_router();
  two.add_router();
  EXPECT_FALSE(two.find_link(0, 1).has_value());
}

TEST(Topology, DuplicateDuplexLinkRejected) {
  Topology topo;
  topo.add_router();
  topo.add_router();
  topo.add_duplex_link(0, 1, 1.0e6);
  EXPECT_THROW(topo.add_duplex_link(0, 1, 1.0e6), std::invalid_argument);
  EXPECT_THROW(topo.add_duplex_link(1, 0, 1.0e6), std::invalid_argument);
}

TEST(Topology, NonPositiveCapacityRejected) {
  Topology topo;
  topo.add_router();
  topo.add_router();
  EXPECT_THROW(topo.add_duplex_link(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(topo.add_duplex_link(0, 1, -5.0), std::invalid_argument);
}

TEST(Topology, ValidatePathAcceptsContiguousRoute) {
  const Topology topo = triangle();
  Path path;
  path.source = 0;
  path.destination = 2;
  path.links = {*topo.find_link(0, 1), *topo.find_link(1, 2)};
  EXPECT_NO_THROW(topo.validate_path(path));
  EXPECT_EQ(path.hops(), 2u);
}

TEST(Topology, ValidatePathRejectsGapsAndWrongEndpoints) {
  const Topology topo = triangle();
  Path gap;
  gap.source = 0;
  gap.destination = 2;
  gap.links = {*topo.find_link(0, 1), *topo.find_link(2, 0)};  // not contiguous
  EXPECT_THROW(topo.validate_path(gap), std::invalid_argument);

  Path wrong_end;
  wrong_end.source = 0;
  wrong_end.destination = 2;
  wrong_end.links = {*topo.find_link(0, 1)};
  EXPECT_THROW(topo.validate_path(wrong_end), std::invalid_argument);
}

TEST(Topology, EmptyPathRequiresSameEndpoints) {
  const Topology topo = triangle();
  Path loop;
  loop.source = 1;
  loop.destination = 1;
  EXPECT_NO_THROW(topo.validate_path(loop));
  EXPECT_TRUE(loop.empty());
  Path broken;
  broken.source = 0;
  broken.destination = 1;
  EXPECT_THROW(topo.validate_path(broken), std::invalid_argument);
}

TEST(Topology, TriangleIsConnected) { EXPECT_TRUE(triangle().connected()); }

TEST(Topology, DisconnectedDetected) {
  Topology topo;
  topo.add_router();
  topo.add_router();
  topo.add_router();
  topo.add_duplex_link(0, 1, 1.0e6);
  EXPECT_FALSE(topo.connected());
}

}  // namespace
}  // namespace anyqos::net
