// Randomized cross-validation of the routing algorithms against brute-force
// enumeration on small random topologies.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "src/des/random.h"
#include "src/net/routing.h"
#include "src/net/topologies.h"

namespace anyqos::net {
namespace {

/// All loopless paths source->destination by DFS (exponential; small n only).
void enumerate_paths(const Topology& topo, NodeId at, NodeId destination,
                     std::vector<LinkId>& prefix, std::vector<char>& visited,
                     std::vector<std::vector<LinkId>>& out) {
  if (at == destination) {
    out.push_back(prefix);
    return;
  }
  for (const LinkId id : topo.graph().out_arcs(at)) {
    const NodeId next = topo.link(id).to;
    if (visited[next] != 0) {
      continue;
    }
    visited[next] = 1;
    prefix.push_back(id);
    enumerate_paths(topo, next, destination, prefix, visited, out);
    prefix.pop_back();
    visited[next] = 0;
  }
}

std::vector<std::vector<LinkId>> all_paths(const Topology& topo, NodeId s, NodeId d) {
  std::vector<std::vector<LinkId>> out;
  std::vector<LinkId> prefix;
  std::vector<char> visited(topo.router_count(), 0);
  visited[s] = 1;
  enumerate_paths(topo, s, d, prefix, visited, out);
  return out;
}

class RoutingBruteForce : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Topology topo_ = topologies::waxman(9, 0.7, 0.6, GetParam());
};

TEST_P(RoutingBruteForce, ShortestPathIsTrulyShortest) {
  for (NodeId s = 0; s < topo_.router_count(); ++s) {
    for (NodeId d = 0; d < topo_.router_count(); ++d) {
      if (s == d) {
        continue;
      }
      const auto enumerated = all_paths(topo_, s, d);
      const auto bfs = shortest_path(topo_, s, d);
      if (enumerated.empty()) {
        EXPECT_FALSE(bfs.has_value());
        continue;
      }
      ASSERT_TRUE(bfs.has_value());
      std::size_t best = enumerated.front().size();
      for (const auto& p : enumerated) {
        best = std::min(best, p.size());
      }
      EXPECT_EQ(bfs->hops(), best) << s << "->" << d;
    }
  }
}

TEST_P(RoutingBruteForce, KShortestEnumeratesTheTrueTopK) {
  const NodeId s = 0;
  const NodeId d = static_cast<NodeId>(topo_.router_count() - 1);
  auto enumerated = all_paths(topo_, s, d);
  ASSERT_FALSE(enumerated.empty());
  std::sort(enumerated.begin(), enumerated.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  const std::size_t k = std::min<std::size_t>(6, enumerated.size());
  const auto yen = k_shortest_paths(topo_, s, d, k);
  ASSERT_EQ(yen.size(), k);
  // Hop-count multiset of the top-k must match (the concrete paths may tie).
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(yen[i].hops(), enumerated[i].size()) << "rank " << i;
  }
  // And every returned path must genuinely exist and be distinct.
  std::set<std::vector<LinkId>> seen;
  for (const Path& p : yen) {
    topo_.validate_path(p);
    EXPECT_TRUE(seen.insert(p.links).second);
  }
}

TEST_P(RoutingBruteForce, WidestPathHasMaximumBottleneck) {
  // Randomize link loads, then verify widest_path finds the max-bottleneck
  // value among all enumerated paths.
  BandwidthLedger ledger(topo_, 1.0);
  des::RandomStream rng(GetParam() * 13 + 1);
  for (LinkId id = 0; id < topo_.link_count(); ++id) {
    const double load = rng.uniform(0.0, 0.95) * ledger.capacity(id);
    Path one;
    one.source = topo_.link(id).from;
    one.destination = topo_.link(id).to;
    one.links = {id};
    ASSERT_TRUE(ledger.reserve(one, load));
  }
  const NodeId s = 1;
  const NodeId d = static_cast<NodeId>(topo_.router_count() - 2);
  const auto enumerated = all_paths(topo_, s, d);
  if (enumerated.empty()) {
    GTEST_SKIP() << "disconnected pair";
  }
  double best = 0.0;
  for (const auto& links : enumerated) {
    double bottleneck = std::numeric_limits<double>::infinity();
    for (const LinkId id : links) {
      bottleneck = std::min(bottleneck, ledger.available(id));
    }
    best = std::max(best, bottleneck);
  }
  const auto widest = widest_path(topo_, ledger, s, d);
  ASSERT_TRUE(widest.has_value());
  EXPECT_NEAR(ledger.bottleneck(*widest), best, 1e-6);
}

TEST_P(RoutingBruteForce, FeasiblePathAgreesWithEnumeration) {
  BandwidthLedger ledger(topo_, 1.0);
  des::RandomStream rng(GetParam() * 31 + 5);
  // Saturate a random third of the links.
  for (LinkId id = 0; id < topo_.link_count(); ++id) {
    if (rng.bernoulli(0.33)) {
      Path one;
      one.source = topo_.link(id).from;
      one.destination = topo_.link(id).to;
      one.links = {id};
      ASSERT_TRUE(ledger.reserve(one, ledger.capacity(id)));
    }
  }
  const double demand = 64'000.0;
  for (NodeId s = 0; s < topo_.router_count(); ++s) {
    for (NodeId d = 0; d < topo_.router_count(); ++d) {
      if (s == d) {
        continue;
      }
      bool exists = false;
      for (const auto& links : all_paths(topo_, s, d)) {
        bool ok = true;
        for (const LinkId id : links) {
          if (ledger.available(id) < demand) {
            ok = false;
            break;
          }
        }
        if (ok) {
          exists = true;
          break;
        }
      }
      EXPECT_EQ(shortest_feasible_path(topo_, ledger, s, d, demand).has_value(), exists)
          << s << "->" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingBruteForce, ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace anyqos::net
