#include "src/net/routing.h"

#include <gtest/gtest.h>

#include <set>

#include "src/net/topologies.h"

namespace anyqos::net {
namespace {

// 0 - 1 - 2
//  \     /
//   - 3 -      (square with a diagonal-free 4-cycle plus chord 0-2? no: plain cycle)
Topology square() {
  Topology topo;
  for (int i = 0; i < 4; ++i) {
    topo.add_router();
  }
  topo.add_duplex_link(0, 1, 100.0e6);
  topo.add_duplex_link(1, 2, 100.0e6);
  topo.add_duplex_link(0, 3, 100.0e6);
  topo.add_duplex_link(3, 2, 100.0e6);
  return topo;
}

TEST(ShortestPath, TrivialSelfPath) {
  const Topology topo = square();
  const auto path = shortest_path(topo, 1, 1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops(), 0u);
  EXPECT_EQ(path->source, 1u);
  EXPECT_EQ(path->destination, 1u);
}

TEST(ShortestPath, FindsMinimumHops) {
  const Topology topo = square();
  const auto path = shortest_path(topo, 0, 2);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops(), 2u);
  topo.validate_path(*path);
}

TEST(ShortestPath, DeterministicTieBreak) {
  const Topology topo = square();
  // Two 2-hop routes 0->2 exist (via 1, via 3); link insertion order makes
  // the via-1 route the stable winner.
  const auto a = shortest_path(topo, 0, 2);
  const auto b = shortest_path(topo, 0, 2);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(a->links, b->links);
  EXPECT_EQ(topo.link(a->links[0]).to, 1u);
}

TEST(ShortestPath, DisconnectedReturnsNullopt) {
  Topology topo;
  topo.add_router();
  topo.add_router();
  EXPECT_FALSE(shortest_path(topo, 0, 1).has_value());
}

TEST(HopDistances, ComputesAllDistances) {
  const Topology topo = square();
  const auto dist = hop_distances(topo, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], 1u);
}

TEST(HopDistances, UnreachableMarked) {
  Topology topo;
  topo.add_router();
  topo.add_router();
  const auto dist = hop_distances(topo, 0);
  EXPECT_EQ(dist[1], kUnreachable);
}

TEST(ShortestFeasiblePath, RespectsAvailability) {
  const Topology topo = square();
  BandwidthLedger ledger(topo, 1.0);
  // Block the direct 0->1 link so the feasible route detours via 3.
  Path block;
  block.source = 0;
  block.destination = 1;
  block.links = {*topo.find_link(0, 1)};
  ASSERT_TRUE(ledger.reserve(block, 100.0e6));
  const auto path = shortest_feasible_path(topo, ledger, 0, 2, 64'000.0);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops(), 2u);
  EXPECT_EQ(topo.link(path->links[0]).to, 3u);
}

TEST(ShortestFeasiblePath, NulloptWhenSaturated) {
  const Topology topo = square();
  BandwidthLedger ledger(topo, 1.0);
  for (const auto& [a, b] : {std::pair{0, 1}, std::pair{0, 3}}) {
    Path block;
    block.source = static_cast<NodeId>(a);
    block.destination = static_cast<NodeId>(b);
    block.links = {*topo.find_link(static_cast<NodeId>(a), static_cast<NodeId>(b))};
    ASSERT_TRUE(ledger.reserve(block, 100.0e6));
  }
  EXPECT_FALSE(shortest_feasible_path(topo, ledger, 0, 2, 64'000.0).has_value());
}

TEST(ShortestFeasiblePathToAny, PicksNearestFeasibleMember) {
  const Topology topo = square();
  BandwidthLedger ledger(topo, 1.0);
  const std::vector<NodeId> members = {2, 1};
  const auto path = shortest_feasible_path_to_any(topo, ledger, 0, members, 64'000.0);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->destination, 1u);  // 1 hop beats 2 hops
}

TEST(ShortestFeasiblePathToAny, FallsBackWhenNearestBlocked) {
  const Topology topo = square();
  BandwidthLedger ledger(topo, 1.0);
  Path block;
  block.source = 0;
  block.destination = 1;
  block.links = {*topo.find_link(0, 1)};
  ASSERT_TRUE(ledger.reserve(block, 100.0e6));
  const std::vector<NodeId> members = {1, 3};
  const auto path = shortest_feasible_path_to_any(topo, ledger, 0, members, 64'000.0);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->destination, 3u);
}

TEST(WidestPath, PrefersLargerBottleneck) {
  const Topology topo = square();
  BandwidthLedger ledger(topo, 1.0);
  // Load the 0-1 link: route via 3 now has the wider bottleneck.
  Path load;
  load.source = 0;
  load.destination = 1;
  load.links = {*topo.find_link(0, 1)};
  ASSERT_TRUE(ledger.reserve(load, 60.0e6));
  const auto path = widest_path(topo, ledger, 0, 2);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(topo.link(path->links[0]).to, 3u);
  EXPECT_DOUBLE_EQ(ledger.bottleneck(*path), 100.0e6);
}

TEST(WidestPath, FewerHopsBreakWidthTies) {
  const Topology topo = square();
  const BandwidthLedger ledger(topo, 1.0);
  const auto path = widest_path(topo, ledger, 0, 1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops(), 1u);
}

TEST(WidestPath, SelfAndDisconnected) {
  const Topology topo = square();
  const BandwidthLedger ledger(topo, 1.0);
  const auto self = widest_path(topo, ledger, 2, 2);
  ASSERT_TRUE(self.has_value());
  EXPECT_TRUE(self->empty());

  Topology split;
  split.add_router();
  split.add_router();
  const BandwidthLedger ledger2(split, 1.0);
  EXPECT_FALSE(widest_path(split, ledger2, 0, 1).has_value());
}

TEST(KShortestPaths, EnumeratesDistinctLooplessPaths) {
  const Topology topo = square();
  const auto paths = k_shortest_paths(topo, 0, 2, 5);
  ASSERT_EQ(paths.size(), 2u);  // only two loopless routes exist
  EXPECT_EQ(paths[0].hops(), 2u);
  EXPECT_EQ(paths[1].hops(), 2u);
  EXPECT_NE(paths[0].links, paths[1].links);
  for (const Path& p : paths) {
    topo.validate_path(p);
  }
}

TEST(KShortestPaths, NonDecreasingLengths) {
  const Topology topo = topologies::mci_backbone();
  const auto paths = k_shortest_paths(topo, 1, 16, 8);
  ASSERT_GE(paths.size(), 3u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].hops(), paths[i - 1].hops());
  }
  // All distinct.
  std::set<std::vector<LinkId>> seen;
  for (const Path& p : paths) {
    EXPECT_TRUE(seen.insert(p.links).second);
  }
}

TEST(KShortestPaths, DisconnectedGivesEmpty) {
  Topology topo;
  topo.add_router();
  topo.add_router();
  EXPECT_TRUE(k_shortest_paths(topo, 0, 1, 3).empty());
}

TEST(RouteTable, StoresFixedRoutes) {
  const Topology topo = square();
  const RouteTable table(topo, {2, 1});
  EXPECT_EQ(table.destination_count(), 2u);
  EXPECT_EQ(table.route(0, 0).destination, 2u);
  EXPECT_EQ(table.route(0, 1).destination, 1u);
  EXPECT_EQ(table.distance(0, 0), 2u);
  EXPECT_EQ(table.distance(0, 1), 1u);
  EXPECT_EQ(table.distance(2, 0), 0u);  // member co-located
}

TEST(RouteTable, ShortestDestinationWithTieTowardLowerIndex) {
  const Topology topo = square();
  const RouteTable table(topo, {1, 3});
  // From node 0 both members are 1 hop away; index 0 wins.
  EXPECT_EQ(table.shortest_destination(0), 0u);
  // From node 2 both are 1 hop away as well; index 0 wins.
  EXPECT_EQ(table.shortest_destination(2), 0u);
  // From node 1 itself member 0 is 0 hops.
  EXPECT_EQ(table.shortest_destination(1), 0u);
}

TEST(RouteTable, DisconnectedTopologyRejected) {
  Topology topo;
  topo.add_router();
  topo.add_router();
  EXPECT_THROW(RouteTable(topo, {1}), std::invalid_argument);
}

TEST(RouteTable, OutOfRangeQueriesRejected) {
  const Topology topo = square();
  const RouteTable table(topo, {2});
  EXPECT_THROW(static_cast<void>(table.route(9, 0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(table.route(0, 5)), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::net
