#include "src/net/topology_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/net/bandwidth.h"
#include "src/net/routing.h"
#include "src/net/topologies.h"

namespace anyqos::net {
namespace {

constexpr const char* kTriangle = R"(# a comment
node 0 SEA
node 1 SFO
node 2

link 0 1 100000000
link 1 2 50000000
link 2 0 25000000
)";

TEST(TopologyIo, ParsesNodesLinksAndComments) {
  const Topology topo = parse_topology_text(kTriangle);
  EXPECT_EQ(topo.router_count(), 3u);
  EXPECT_EQ(topo.duplex_link_count(), 3u);
  EXPECT_EQ(topo.router_name(0), "SEA");
  EXPECT_EQ(topo.router_name(2), "r2");  // unnamed
  EXPECT_DOUBLE_EQ(topo.capacity(*topo.find_link(1, 2)), 50.0e6);
}

TEST(TopologyIo, RoundTripsThroughText) {
  const Topology original = topologies::mci_backbone();
  const std::string text = topology_to_text(original);
  const Topology parsed = parse_topology_text(text);
  EXPECT_EQ(parsed.router_count(), original.router_count());
  EXPECT_EQ(parsed.duplex_link_count(), original.duplex_link_count());
  for (NodeId id = 0; id < original.router_count(); ++id) {
    EXPECT_EQ(parsed.router_name(id), original.router_name(id));
  }
  for (LinkId id = 0; id < original.link_count(); ++id) {
    const Arc& arc = original.link(id);
    const auto found = parsed.find_link(arc.from, arc.to);
    ASSERT_TRUE(found.has_value());
    EXPECT_DOUBLE_EQ(parsed.capacity(*found), original.capacity(id));
  }
}

TEST(TopologyIo, RejectsOutOfOrderNodeIds) {
  EXPECT_THROW(parse_topology_text("node 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_topology_text("node 0\nnode 0\n"), std::invalid_argument);
}

TEST(TopologyIo, RejectsMalformedRecords) {
  EXPECT_THROW(parse_topology_text("node\n"), std::invalid_argument);
  EXPECT_THROW(parse_topology_text("node 0\nlink 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_topology_text("node 0\nnode 1\nlink 0 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_topology_text("frobnicate 1 2\n"), std::invalid_argument);
}

TEST(TopologyIo, RejectsSemanticErrors) {
  EXPECT_THROW(parse_topology_text("node 0\nnode 1\nlink 0 5 1000\n"),
               std::invalid_argument);  // undeclared node
  EXPECT_THROW(parse_topology_text("node 0\nnode 1\nlink 0 1 0\n"),
               std::invalid_argument);  // zero capacity
  EXPECT_THROW(parse_topology_text("node 0\nnode 1\nlink 0 1 10 junk\n"),
               std::invalid_argument);  // trailing garbage
  EXPECT_THROW(parse_topology_text("node 0\nnode 1\nlink 0 1 10\nlink 1 0 10\n"),
               std::invalid_argument);  // duplicate duplex link
  EXPECT_THROW(parse_topology_text("# only comments\n"), std::invalid_argument);
}

TEST(TopologyIo, ErrorMessagesCarryLineNumbers) {
  try {
    parse_topology_text("node 0\nnode 1\nlink 0 9 100\n");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos);
  }
}

TEST(TopologyIo, SaveAndLoadFile) {
  const Topology original = topologies::grid(2, 3);
  const std::string path = ::testing::TempDir() + "/anyqos_topo_test.txt";
  save_topology(original, path);
  const Topology loaded = load_topology(path);
  EXPECT_EQ(loaded.router_count(), original.router_count());
  EXPECT_EQ(loaded.duplex_link_count(), original.duplex_link_count());
  std::remove(path.c_str());
}

TEST(TopologyIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_topology("/nonexistent/path/topo.txt"), std::invalid_argument);
}

TEST(TopologyIo, ParsedTopologyIsFullyFunctional) {
  // A loaded topology must drive the whole stack: routes + ledger.
  const Topology topo = parse_topology_text(kTriangle);
  const RouteTable routes(topo, {2});
  EXPECT_EQ(routes.distance(0, 0), 1u);
  BandwidthLedger ledger(topo, 0.5);
  EXPECT_TRUE(ledger.reserve(routes.route(0, 0), 64'000.0));
}

}  // namespace
}  // namespace anyqos::net
