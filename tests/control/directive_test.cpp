// Unit tests for the runtime-control directive layer: wire names,
// validation, the HTTP->DES mailbox, the ops log round trip, and the
// governor's clamping seam.
#include "src/control/directive.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <stdexcept>

#include "src/control/governor.h"

namespace anyqos::control {
namespace {

TEST(Knobs, WireNamesRoundTrip) {
  for (const Knob knob : {Knob::kRetrialCeiling, Knob::kRetrialFloor, Knob::kShedBudget,
                          Knob::kShedBurst, Knob::kBreakerThreshold, Knob::kBreakerCooldown}) {
    const auto parsed = parse_knob(to_string(knob));
    ASSERT_TRUE(parsed.has_value()) << to_string(knob);
    EXPECT_EQ(*parsed, knob);
  }
  EXPECT_EQ(parse_knob("shed-budget"), Knob::kShedBudget);
  EXPECT_FALSE(parse_knob("shed_budget").has_value());
  EXPECT_FALSE(parse_knob("").has_value());
  EXPECT_FALSE(parse_knob("retries").has_value());
}

TEST(Validate, EnforcesPerKnobDomains) {
  // Integer >= 1 knobs.
  for (const Knob knob : {Knob::kRetrialCeiling, Knob::kRetrialFloor, Knob::kBreakerThreshold}) {
    EXPECT_FALSE(validate_directive(knob, 1.0).has_value());
    EXPECT_FALSE(validate_directive(knob, 7.0).has_value());
    EXPECT_TRUE(validate_directive(knob, 0.0).has_value());
    EXPECT_TRUE(validate_directive(knob, 2.5).has_value());
    EXPECT_TRUE(validate_directive(knob, -1.0).has_value());
  }
  // Non-negative real knobs (0 = off / derive).
  for (const Knob knob : {Knob::kShedBudget, Knob::kShedBurst}) {
    EXPECT_FALSE(validate_directive(knob, 0.0).has_value());
    EXPECT_FALSE(validate_directive(knob, 3.25).has_value());
    EXPECT_TRUE(validate_directive(knob, -0.5).has_value());
  }
  // Positive real knob.
  EXPECT_FALSE(validate_directive(Knob::kBreakerCooldown, 0.1).has_value());
  EXPECT_TRUE(validate_directive(Knob::kBreakerCooldown, 0.0).has_value());
  // Non-finite values never validate.
  EXPECT_TRUE(validate_directive(Knob::kShedBudget,
                                 std::numeric_limits<double>::infinity()).has_value());
  EXPECT_TRUE(validate_directive(Knob::kShedBudget,
                                 std::numeric_limits<double>::quiet_NaN()).has_value());
}

TEST(Mailbox, DrainsInPostOrderAndCounts) {
  DirectiveMailbox mailbox;
  EXPECT_TRUE(mailbox.drain().empty());
  mailbox.post({Knob::kShedBudget, 5.0});
  mailbox.post({Knob::kRetrialCeiling, 2.0});
  const auto drained = mailbox.drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].knob, Knob::kShedBudget);
  EXPECT_EQ(drained[1].knob, Knob::kRetrialCeiling);
  EXPECT_TRUE(mailbox.drain().empty());  // drain takes everything
  EXPECT_EQ(mailbox.posted(), 2u);
}

TEST(OpsLog, WritesOneJsonObjectPerDirective) {
  std::ostringstream out;
  OpsLogWriter writer(out);
  writer.record(150.0, {Knob::kShedBudget, 5.0}, 5.0);
  writer.record(200.5, {Knob::kRetrialCeiling, 9.0}, 4.0);  // clamped apply
  EXPECT_EQ(out.str(),
            "{\"ops\":\"directive\",\"t\":150,\"knob\":\"shed-budget\",\"value\":5,"
            "\"applied\":5}\n"
            "{\"ops\":\"directive\",\"t\":200.5,\"knob\":\"retrial-ceiling\",\"value\":9,"
            "\"applied\":4}\n");
  EXPECT_EQ(writer.entries(), 2u);
}

TEST(OpsLog, RoundTripsThroughLoad) {
  std::ostringstream out;
  OpsLogWriter writer(out);
  // A time that needs full round-trip precision.
  writer.record(1.0 / 3.0, {Knob::kShedBurst, 0.1}, 0.1);
  writer.record(100.0, {Knob::kBreakerCooldown, 12.5}, 12.5);
  std::istringstream in(out.str());
  const std::vector<TimedDirective> replay = load_ops_log(in);
  ASSERT_EQ(replay.size(), 2u);
  EXPECT_EQ(replay[0].apply_at, 1.0 / 3.0);  // exact, not approximate
  EXPECT_EQ(replay[0].directive.knob, Knob::kShedBurst);
  EXPECT_EQ(replay[0].directive.value, 0.1);
  EXPECT_EQ(replay[1].apply_at, 100.0);
}

TEST(OpsLog, LoadRejectsMalformedAndOutOfOrderEntries) {
  {
    std::istringstream in("{\"ops\":\"directive\",\"t\":10,\"knob\":\"nope\",\"value\":1}\n");
    EXPECT_THROW(load_ops_log(in), std::invalid_argument);
  }
  {
    std::istringstream in("not json\n");
    EXPECT_THROW(load_ops_log(in), std::invalid_argument);
  }
  {
    // Valid knob, invalid value for its domain.
    std::istringstream in(
        "{\"ops\":\"directive\",\"t\":10,\"knob\":\"retrial-ceiling\",\"value\":0}\n");
    EXPECT_THROW(load_ops_log(in), std::invalid_argument);
  }
  {
    std::istringstream in(
        "{\"ops\":\"directive\",\"t\":20,\"knob\":\"shed-budget\",\"value\":1}\n"
        "{\"ops\":\"directive\",\"t\":10,\"knob\":\"shed-budget\",\"value\":2}\n");
    EXPECT_THROW(load_ops_log(in), std::invalid_argument);
  }
}

TEST(GovernorDirectives, CeilingClampsToBindTimeR) {
  OverloadGovernor governor;
  governor.bind(3, 4);
  // Requests above the bind-time R clamp down: the auditor and span budgets
  // were sized against R = 4 and stay valid.
  EXPECT_EQ(governor.apply_directive({Knob::kRetrialCeiling, 99.0}), 4.0);
  EXPECT_EQ(governor.max_tries_ceiling(), 4u);
  EXPECT_EQ(governor.apply_directive({Knob::kRetrialCeiling, 2.0}), 2.0);
  EXPECT_EQ(governor.max_tries_ceiling(), 2u);
  // Tightening the ceiling drags the floor and effective bound under it.
  EXPECT_LE(governor.min_tries_floor(), 2u);
  EXPECT_LE(governor.effective_max_tries(), 2u);
}

TEST(GovernorDirectives, FloorClampsToCurrentCeiling) {
  OverloadGovernor governor;
  governor.bind(3, 5);
  EXPECT_EQ(governor.apply_directive({Knob::kRetrialFloor, 99.0}), 5.0);
  EXPECT_EQ(governor.min_tries_floor(), 5u);
  EXPECT_EQ(governor.effective_max_tries(), 5u);  // raised to the floor
  EXPECT_EQ(governor.apply_directive({Knob::kRetrialFloor, 1.0}), 1.0);
  EXPECT_EQ(governor.min_tries_floor(), 1u);
}

TEST(GovernorDirectives, ShedBudgetEngagesAndDisengagesTheBucket) {
  OverloadGovernor governor;  // defaults: shedding off
  governor.bind(2, 2);
  EXPECT_FALSE(governor.shedding());
  EXPECT_EQ(governor.apply_directive({Knob::kShedBudget, 5.0}), 5.0);
  ASSERT_TRUE(governor.shedding());
  // A fresh bucket starts full: depth defaults to 2 x budget.
  EXPECT_EQ(governor.shed_tokens(0.0), 10.0);
  EXPECT_EQ(governor.apply_directive({Knob::kShedBurst, 3.0}), 3.0);
  EXPECT_EQ(governor.shed_tokens(0.0), 3.0);
  EXPECT_EQ(governor.apply_directive({Knob::kShedBudget, 0.0}), 0.0);
  EXPECT_FALSE(governor.shedding());
}

TEST(GovernorDirectives, BreakerKnobsPropagate) {
  OverloadGovernor governor;
  governor.bind(2, 2);
  EXPECT_EQ(governor.apply_directive({Knob::kBreakerThreshold, 2.0}), 2.0);
  EXPECT_EQ(governor.options().breaker.failure_threshold, 2u);
  // Two consecutive failures now trip a member (default threshold is 5).
  signaling::ReservationResult rejected;
  rejected.admitted = false;
  rejected.blocking_link = 3;  // a definitive capacity block, not a give-up
  governor.on_member_result(0, rejected);
  governor.on_member_result(0, rejected);
  EXPECT_EQ(governor.breaker_state(0), BreakerState::kOpen);
  EXPECT_EQ(governor.apply_directive({Knob::kBreakerCooldown, 7.5}), 7.5);
  EXPECT_EQ(governor.options().breaker.cooldown_s, 7.5);
}

TEST(GovernorDirectives, InvalidDirectiveThrows) {
  OverloadGovernor governor;
  governor.bind(2, 2);
  EXPECT_THROW(governor.apply_directive({Knob::kRetrialCeiling, 0.0}), std::invalid_argument);
  EXPECT_THROW(governor.apply_directive({Knob::kShedBudget, -1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::control
