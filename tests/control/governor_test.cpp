#include "src/control/governor.h"

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>

#include "src/control/adaptive_retrial.h"
#include "src/des/simulator.h"
#include "src/signaling/rsvp.h"

namespace anyqos::control {
namespace {

signaling::ReservationResult capacity_block() {
  signaling::ReservationResult result;
  result.admitted = false;
  result.blocking_link = net::LinkId{0};  // the walk named its bottleneck
  return result;
}

signaling::ReservationResult give_up() {
  signaling::ReservationResult result;
  result.admitted = false;  // no blocking link: retransmit budget exhausted
  return result;
}

signaling::ReservationResult success() {
  signaling::ReservationResult result;
  result.admitted = true;
  return result;
}

/// Feed `offered` walks into the current window, `rejected` of them failing.
void offer(OverloadGovernor& governor, std::uint64_t offered, std::uint64_t rejected,
           double now = 0.0) {
  for (std::uint64_t i = 0; i < offered; ++i) {
    governor.on_decision(now, /*admitted=*/i >= rejected, /*path_messages=*/0);
  }
}

TEST(Governor, BindSetsCeilingFloorAndStartsWideOpen) {
  OverloadGovernor governor;
  governor.bind(/*group_size=*/3, /*max_tries=*/5);
  EXPECT_TRUE(governor.bound());
  EXPECT_EQ(governor.max_tries_ceiling(), 5u);
  EXPECT_EQ(governor.effective_max_tries(), 5u);
  EXPECT_EQ(governor.open_breakers(), 0u);
}

TEST(Governor, FloorClampsToTheCeiling) {
  GovernorOptions options;
  options.min_tries = 3;
  OverloadGovernor governor(options);
  governor.bind(2, /*max_tries=*/2);  // R below the configured floor
  offer(governor, 10, 10);
  governor.note_utilization(1.0);
  governor.advance_window();
  EXPECT_EQ(governor.effective_max_tries(), 2u);  // floor = min(3, R) = 2
  EXPECT_EQ(governor.stats().tighten_steps, 0u);  // already at the floor
}

TEST(Governor, HotWindowHalvesTowardFloor) {
  GovernorOptions options;
  options.min_tries = 3;
  OverloadGovernor governor(options);
  governor.bind(2, /*max_tries=*/16);
  // Hot: rejection 0.5 >= 0.30 and hwm 0.95 >= 0.90.
  offer(governor, 10, 5);
  governor.note_utilization(0.95);
  governor.advance_window();
  EXPECT_EQ(governor.effective_max_tries(), 8u);
  offer(governor, 10, 5);
  governor.note_utilization(0.95);
  governor.advance_window();
  EXPECT_EQ(governor.effective_max_tries(), 4u);
  offer(governor, 10, 5);
  governor.note_utilization(0.95);
  governor.advance_window();
  EXPECT_EQ(governor.effective_max_tries(), 3u);  // clamped at the floor, not 2
  offer(governor, 10, 5);
  governor.note_utilization(0.95);
  governor.advance_window();
  EXPECT_EQ(governor.effective_max_tries(), 3u);  // stays there
  EXPECT_EQ(governor.stats().tighten_steps, 3u);
  EXPECT_EQ(governor.stats().windows, 4u);
}

TEST(Governor, HotNeedsBothSignals) {
  OverloadGovernor governor;
  governor.bind(2, 8);
  // High rejection but idle links: not hot (and not cool at 0.5 > 0.15).
  offer(governor, 10, 5);
  governor.note_utilization(0.50);
  governor.advance_window();
  EXPECT_EQ(governor.effective_max_tries(), 8u);
  // Saturated links but low-but-not-cool rejection: hold as well.
  offer(governor, 10, 2);
  governor.note_utilization(0.99);
  governor.advance_window();
  EXPECT_EQ(governor.effective_max_tries(), 8u);
  EXPECT_EQ(governor.stats().tighten_steps, 0u);
  EXPECT_EQ(governor.stats().relax_steps, 0u);
}

TEST(Governor, CoolWindowsRelaxBackToCeiling) {
  OverloadGovernor governor;
  governor.bind(2, 8);
  offer(governor, 10, 5);
  governor.note_utilization(1.0);
  governor.advance_window();
  ASSERT_EQ(governor.effective_max_tries(), 4u);
  for (int window = 0; window < 10; ++window) {
    offer(governor, 10, 1);  // rejection 0.1 <= 0.15: cool
    governor.advance_window();
  }
  EXPECT_EQ(governor.effective_max_tries(), 8u);  // additive increase, capped at R
  EXPECT_EQ(governor.stats().relax_steps, 4u);
}

TEST(Governor, EmptyWindowHoldsTheBound) {
  OverloadGovernor governor;
  governor.bind(2, 8);
  offer(governor, 10, 5);
  governor.note_utilization(1.0);
  governor.advance_window();
  ASSERT_EQ(governor.effective_max_tries(), 4u);
  governor.note_utilization(1.0);  // utilization alone, no walked requests
  governor.advance_window();
  EXPECT_EQ(governor.effective_max_tries(), 4u);  // no evidence, no adaptation
  EXPECT_EQ(governor.stats().windows, 2u);
}

TEST(Governor, WindowCountersResetBetweenWindows) {
  OverloadGovernor governor;
  governor.bind(2, 8);
  offer(governor, 10, 5);
  governor.note_utilization(1.0);
  governor.advance_window();
  ASSERT_EQ(governor.effective_max_tries(), 4u);
  // The hot evidence must not leak: an empty follow-up window holds.
  governor.advance_window();
  EXPECT_EQ(governor.effective_max_tries(), 4u);
}

TEST(Governor, AdaptiveRetrialDisabledHoldsCeiling) {
  GovernorOptions options;
  options.adaptive_retrial = false;
  OverloadGovernor governor(options);
  governor.bind(2, 8);
  offer(governor, 10, 10);
  governor.note_utilization(1.0);
  governor.advance_window();
  EXPECT_EQ(governor.effective_max_tries(), 8u);
}

TEST(Governor, NoBudgetNeverSheds) {
  OverloadGovernor governor;
  governor.bind(2, 5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(governor.admit_request(0.0));
  }
  EXPECT_EQ(governor.stats().shed, 0u);
}

TEST(Governor, BudgetShedsWhenExhaustedAndRefills) {
  GovernorOptions options;
  options.shed_budget_msgs_per_s = 10.0;
  options.shed_burst_msgs = 5.0;
  OverloadGovernor governor(options);
  governor.bind(2, 5);
  // Drain the 5-message bucket with one expensive walk at t = 0.
  EXPECT_TRUE(governor.admit_request(0.0));
  governor.on_decision(0.0, /*admitted=*/false, /*path_messages=*/5);
  EXPECT_FALSE(governor.admit_request(0.0));  // empty: fast-reject
  EXPECT_EQ(governor.stats().shed, 1u);
  // 0.1 s at 10 msgs/s refills one token: admit again.
  EXPECT_TRUE(governor.admit_request(0.1));
}

TEST(Governor, WalkPaymentFloorsAtZero) {
  GovernorOptions options;
  options.shed_budget_msgs_per_s = 10.0;
  options.shed_burst_msgs = 4.0;
  OverloadGovernor governor(options);
  governor.bind(2, 5);
  // A 100-message walk against a 4-token bucket pays 4 and stops: the
  // bucket floors at zero instead of going into debt for minutes.
  governor.on_decision(0.0, /*admitted=*/true, /*path_messages=*/100);
  EXPECT_FALSE(governor.admit_request(0.0));
  EXPECT_TRUE(governor.admit_request(0.1));  // one token back after 0.1 s, not 10 s
}

TEST(Governor, DerivedBurstIsTwiceTheBudget) {
  GovernorOptions options;
  options.shed_budget_msgs_per_s = 3.0;  // derived depth 6
  OverloadGovernor governor(options);
  governor.bind(2, 5);
  governor.on_decision(0.0, true, 5);
  EXPECT_TRUE(governor.admit_request(0.0));  // one of six tokens left
  governor.on_decision(0.0, true, 1);
  EXPECT_FALSE(governor.admit_request(0.0));
}

TEST(Governor, StreakOfCapacityFailuresTripsBreaker) {
  GovernorOptions options;
  options.breaker.failure_threshold = 3;
  OverloadGovernor governor(options);
  governor.bind(2, 5);
  for (int i = 0; i < 2; ++i) {
    governor.on_member_result(0, capacity_block());
  }
  EXPECT_TRUE(governor.allow_member(0));
  governor.on_member_result(0, capacity_block());
  EXPECT_FALSE(governor.allow_member(0));
  EXPECT_EQ(governor.breaker_state(0), BreakerState::kOpen);
  EXPECT_EQ(governor.open_breakers(), 1u);
  EXPECT_EQ(governor.stats().breaker_trips, 1u);
  EXPECT_TRUE(governor.allow_member(1));  // the other member is untouched
}

TEST(Governor, SuccessBreaksTheStreak) {
  GovernorOptions options;
  options.breaker.failure_threshold = 2;
  OverloadGovernor governor(options);
  governor.bind(1, 5);
  governor.on_member_result(0, capacity_block());
  governor.on_member_result(0, success());
  governor.on_member_result(0, capacity_block());
  EXPECT_TRUE(governor.allow_member(0));  // never two in a row
}

TEST(Governor, GiveUpTripsImmediately) {
  GovernorOptions options;
  options.breaker.failure_threshold = 5;
  OverloadGovernor governor(options);
  governor.bind(2, 5);
  governor.on_member_result(1, give_up());  // retransmit exhaustion: no streak needed
  EXPECT_EQ(governor.breaker_state(1), BreakerState::kOpen);
  EXPECT_EQ(governor.stats().breaker_trips, 1u);
}

TEST(Governor, ChurnTripsTheBreaker) {
  OverloadGovernor governor;
  governor.bind(3, 5);
  governor.on_member_churn(2);
  EXPECT_FALSE(governor.allow_member(2));
  EXPECT_EQ(governor.stats().breaker_trips, 1u);
  governor.on_member_churn(2);  // repeated churn on an Open breaker: no double count
  EXPECT_EQ(governor.stats().breaker_trips, 1u);
  EXPECT_THROW(governor.on_member_churn(3), std::invalid_argument);
}

TEST(Governor, ChurnIgnoredWhenBreakersDisabled) {
  GovernorOptions options;
  options.member_breakers = false;
  OverloadGovernor governor(options);
  governor.bind(2, 5);
  governor.on_member_churn(0);
  EXPECT_TRUE(governor.allow_member(0));
  EXPECT_EQ(governor.stats().breaker_trips, 0u);
}

TEST(Governor, CooldownTimerHalfOpensAndProbeCloses) {
  GovernorOptions options;
  options.breaker.failure_threshold = 1;
  options.breaker.cooldown_s = 10.0;
  OverloadGovernor governor(options);
  governor.bind(1, 5);
  des::Simulator simulator;
  governor.attach(simulator, [] { return true; });  // window timer fires once only
  governor.on_member_result(0, capacity_block());
  ASSERT_EQ(governor.breaker_state(0), BreakerState::kOpen);
  simulator.run_until(9.9);
  EXPECT_EQ(governor.breaker_state(0), BreakerState::kOpen);
  simulator.run_until(10.1);
  EXPECT_EQ(governor.breaker_state(0), BreakerState::kHalfOpen);
  EXPECT_TRUE(governor.allow_member(0));
  governor.on_member_result(0, success());  // the probe
  EXPECT_EQ(governor.breaker_state(0), BreakerState::kClosed);
  EXPECT_EQ(governor.stats().breaker_probes, 1u);
  EXPECT_EQ(governor.stats().breaker_closes, 1u);
}

TEST(Governor, FailedProbeReopensAndRunsAFreshCooldown) {
  GovernorOptions options;
  options.breaker.failure_threshold = 1;
  options.breaker.cooldown_s = 10.0;
  OverloadGovernor governor(options);
  governor.bind(1, 5);
  des::Simulator simulator;
  governor.attach(simulator, [] { return true; });
  governor.on_member_result(0, capacity_block());
  simulator.run_until(10.5);
  ASSERT_EQ(governor.breaker_state(0), BreakerState::kHalfOpen);
  governor.on_member_result(0, capacity_block());  // probe fails at t = 10.5
  EXPECT_EQ(governor.breaker_state(0), BreakerState::kOpen);
  EXPECT_EQ(governor.stats().breaker_trips, 2u);
  simulator.run_until(20.4);  // fresh cooldown ends at 20.5, not at 20.0
  EXPECT_EQ(governor.breaker_state(0), BreakerState::kOpen);
  simulator.run();
  EXPECT_EQ(governor.breaker_state(0), BreakerState::kHalfOpen);
}

TEST(Governor, StaleCooldownTimerCannotEndANewerTrip) {
  GovernorOptions options;
  options.breaker.failure_threshold = 1;
  options.breaker.cooldown_s = 10.0;
  OverloadGovernor governor(options);
  governor.bind(1, 5);
  des::Simulator simulator;
  governor.attach(simulator, [] { return true; });
  // Trip at t = 0 (cooldown due t = 10), probe-fail at t = 5 via churn after
  // a manual half-open is impossible here, so re-trip through the generation
  // path: cooldown fires at 10, probe fails at 10 -> new cooldown due 20.
  governor.on_member_result(0, capacity_block());
  simulator.run_until(10.0);
  governor.on_member_result(0, capacity_block());
  // The first timer is long gone; only the generation-2 timer may half-open.
  simulator.run_until(19.9);
  EXPECT_EQ(governor.breaker_state(0), BreakerState::kOpen);
  simulator.run_until(20.1);
  EXPECT_EQ(governor.breaker_state(0), BreakerState::kHalfOpen);
}

TEST(Governor, WindowTimerDrivesAimdOnTheKernel) {
  GovernorOptions options;
  options.window_s = 5.0;
  OverloadGovernor governor(options);
  governor.bind(2, 8);
  des::Simulator simulator;
  bool stop = false;
  governor.attach(simulator, [&stop] { return stop; });
  offer(governor, 10, 5);
  governor.note_utilization(1.0);
  simulator.run_until(5.0);  // first window closes hot
  EXPECT_EQ(governor.effective_max_tries(), 4u);
  EXPECT_EQ(governor.stats().windows, 1u);
  stop = true;  // drain: the timer fires once more, then stops rearming
  simulator.run();
  EXPECT_EQ(simulator.pending_events(), 0u);
}

TEST(Governor, OptionValidation) {
  const auto bad = [](auto mutate) {
    GovernorOptions options;
    mutate(options);
    EXPECT_THROW(OverloadGovernor{options}, std::invalid_argument);
  };
  bad([](GovernorOptions& o) { o.window_s = 0.0; });
  bad([](GovernorOptions& o) { o.min_tries = 0; });
  bad([](GovernorOptions& o) { o.hot_rejection_rate = 0.0; });
  bad([](GovernorOptions& o) { o.hot_rejection_rate = 1.5; });
  bad([](GovernorOptions& o) { o.hot_utilization = 0.0; });
  bad([](GovernorOptions& o) { o.cool_rejection_rate = 0.30; });  // not below hot
  bad([](GovernorOptions& o) { o.shed_budget_msgs_per_s = -1.0; });
  bad([](GovernorOptions& o) { o.shed_burst_msgs = -1.0; });
}

TEST(Governor, LifecycleValidation) {
  OverloadGovernor governor;
  EXPECT_THROW(governor.advance_window(), std::invalid_argument);
  des::Simulator simulator;
  EXPECT_THROW(governor.attach(simulator), std::invalid_argument);
  governor.bind(2, 5);
  EXPECT_THROW(governor.bind(2, 5), std::invalid_argument);
  EXPECT_THROW(OverloadGovernor{}.bind(0, 5), std::invalid_argument);
  EXPECT_THROW(OverloadGovernor{}.bind(2, 0), std::invalid_argument);
}

TEST(AdaptiveRetrial, TracksTheGovernorsEffectiveBound) {
  OverloadGovernor governor;
  governor.bind(2, 8);
  const AdaptiveRetrialPolicy policy(governor);
  EXPECT_EQ(policy.max_attempts(), 8u);  // always the static ceiling
  EXPECT_TRUE(policy.keep_going(7));
  EXPECT_FALSE(policy.keep_going(8));
  offer(governor, 10, 5);
  governor.note_utilization(1.0);
  governor.advance_window();
  ASSERT_EQ(governor.effective_max_tries(), 4u);
  EXPECT_TRUE(policy.keep_going(3));
  EXPECT_FALSE(policy.keep_going(4));  // tightened live, no rebind needed
  EXPECT_EQ(policy.max_attempts(), 8u);  // ceiling unchanged: spans stay sized
  EXPECT_EQ(policy.name(), "adaptive(R<=8)");
}

TEST(AdaptiveRetrial, RequiresABoundGovernor) {
  const OverloadGovernor governor;
  EXPECT_THROW(AdaptiveRetrialPolicy{governor}, std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::control
