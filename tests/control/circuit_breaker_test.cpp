#include "src/control/circuit_breaker.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace anyqos::control {
namespace {

BreakerOptions options(std::size_t threshold, double cooldown = 60.0) {
  BreakerOptions o;
  o.failure_threshold = threshold;
  o.cooldown_s = cooldown;
  return o;
}

TEST(CircuitBreaker, StartsClosedAndAllowing) {
  const CircuitBreaker breaker;
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allows());
  EXPECT_EQ(breaker.consecutive_failures(), 0u);
}

TEST(CircuitBreaker, TripsAtFailureThreshold) {
  CircuitBreaker breaker(options(3));
  EXPECT_FALSE(breaker.record_failure());
  EXPECT_FALSE(breaker.record_failure());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.record_failure());  // third consecutive failure trips
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allows());
}

TEST(CircuitBreaker, SuccessResetsTheStreak) {
  CircuitBreaker breaker(options(2));
  EXPECT_FALSE(breaker.record_failure());
  EXPECT_FALSE(breaker.record_success());  // Closed stays Closed: not a close event
  EXPECT_EQ(breaker.consecutive_failures(), 0u);
  EXPECT_FALSE(breaker.record_failure());  // streak restarted, below threshold again
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, TripForcesOpenOnce) {
  CircuitBreaker breaker(options(5));
  EXPECT_TRUE(breaker.trip());
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.trip());  // already Open: owner must not restart cooldown
}

TEST(CircuitBreaker, CooldownMovesOpenToHalfOpen) {
  CircuitBreaker breaker(options(1));
  EXPECT_TRUE(breaker.record_failure());
  breaker.half_open();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allows());  // probes are admitted
}

TEST(CircuitBreaker, HalfOpenIsNoOpUnlessOpen) {
  CircuitBreaker breaker(options(2));
  breaker.half_open();  // stale timer against a Closed breaker
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.trip());
  breaker.half_open();
  EXPECT_TRUE(breaker.record_success());  // probe passes, breaker Closed
  breaker.half_open();  // stale timer again: must not resurrect HalfOpen
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, ProbeSuccessClosesAndReportsIt) {
  CircuitBreaker breaker(options(1));
  EXPECT_TRUE(breaker.record_failure());
  breaker.half_open();
  EXPECT_TRUE(breaker.record_success());  // the close event
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0u);
}

TEST(CircuitBreaker, ProbeFailureReopensImmediately) {
  CircuitBreaker breaker(options(3));
  EXPECT_TRUE(breaker.trip());
  breaker.half_open();
  EXPECT_TRUE(breaker.record_failure());  // one failed probe suffices, not threshold
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST(CircuitBreaker, OptionValidation) {
  EXPECT_THROW(CircuitBreaker(options(0)), std::invalid_argument);
  EXPECT_THROW(CircuitBreaker(options(1, 0.0)), std::invalid_argument);
  EXPECT_THROW(CircuitBreaker(options(1, -1.0)), std::invalid_argument);
}

TEST(CircuitBreaker, StateNames) {
  EXPECT_EQ(to_string(BreakerState::kClosed), "closed");
  EXPECT_EQ(to_string(BreakerState::kOpen), "open");
  EXPECT_EQ(to_string(BreakerState::kHalfOpen), "half_open");
}

}  // namespace
}  // namespace anyqos::control
