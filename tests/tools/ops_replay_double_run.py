#!/usr/bin/env python3
"""Ops-replay determinism regression: replay one ops log twice, byte-compare.

The live ops plane applies operator directives at DES poll boundaries and
logs each application with the simulated clock (DESIGN.md §13). Replaying
that log with --ops-replay must steer the run identically every time: two
replays of the same log at the same seed must produce byte-identical trace
and timeline artifacts, and each replay's re-recorded ops log must be a
byte-identical fixpoint of its input. A directive applied off its recorded
boundary — or any wall-clock leak from the HTTP layer into the model —
shows up here as a byte diff.

Usage: ops_replay_double_run.py <path-to-dacsim> [workdir]
Registered via ctest (see examples/CMakeLists.txt).
"""

import filecmp
import os
import subprocess
import sys
import tempfile

ARGS = [
    "--lambda=25", "--warmup=100", "--measure=600", "--seed=11",
    "--timeline-interval=50",
]

# A handwritten steering script: throttle the retrial bound mid-run, then
# engage a tight shedding budget. Both land at ops-poll boundaries (the
# default poll interval divides 150 and 250) and both visibly change the
# run, so an off-boundary application cannot hide.
OPS_LOG = (
    '{"ops":"directive","t":150,"knob":"retrial-ceiling","value":1,"applied":1}\n'
    '{"ops":"directive","t":250,"knob":"shed-budget","value":2,"applied":2}\n'
)


def replay_once(dacsim, replay, workdir, tag):
    trace = os.path.join(workdir, f"trace-{tag}.csv")
    timeline = os.path.join(workdir, f"timeline-{tag}.jsonl")
    ops_log = os.path.join(workdir, f"ops-{tag}.jsonl")
    cmd = [dacsim, *ARGS, f"--ops-replay={replay}", f"--ops-log={ops_log}",
           f"--trace={trace}", f"--timeline-out={timeline}"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"dacsim replay {tag} failed with {proc.returncode}")
    if "2/2 directives re-applied" not in proc.stdout:
        sys.stderr.write(proc.stdout)
        raise SystemExit(f"replay {tag} did not re-apply both directives")
    for artifact in (trace, timeline, ops_log):
        if not os.path.exists(artifact) or os.path.getsize(artifact) == 0:
            raise SystemExit(f"replay {tag} left no artifact {artifact}")
    return trace, timeline, ops_log


def first_diff(path_a, path_b):
    with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
        for lineno, (line_a, line_b) in enumerate(zip(fa, fb), start=1):
            if line_a != line_b:
                return (lineno, line_a.decode(errors="replace").rstrip(),
                        line_b.decode(errors="replace").rstrip())
    return None


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    dacsim = sys.argv[1]
    if not os.path.exists(dacsim):
        print(f"ops_replay_double_run: no such binary {dacsim}", file=sys.stderr)
        return 2
    workdir = sys.argv[2] if len(sys.argv) > 2 else tempfile.mkdtemp(
        prefix="anyqos-ops-replay-")
    os.makedirs(workdir, exist_ok=True)

    replay = os.path.join(workdir, "steering.jsonl")
    with open(replay, "w", encoding="utf-8") as out:
        out.write(OPS_LOG)

    trace_a, timeline_a, log_a = replay_once(dacsim, replay, workdir, "a")
    trace_b, timeline_b, log_b = replay_once(dacsim, replay, workdir, "b")

    failures = []
    for label, a, b in (("trace", trace_a, trace_b),
                        ("timeline", timeline_a, timeline_b),
                        ("ops log", log_a, log_b)):
        if filecmp.cmp(a, b, shallow=False):
            print(f"ops replay: {label} byte-identical "
                  f"({os.path.getsize(a)} bytes)")
            continue
        diff = first_diff(a, b)
        where = (f"line {diff[0]}:\n  run a: {diff[1]}\n  run b: {diff[2]}"
                 if diff else "file sizes differ")
        failures.append(f"{label} artifacts diverge at {where}")

    # Fixpoint: re-applying the log reproduces it byte for byte.
    with open(log_a, encoding="utf-8") as recorded:
        if recorded.read() != OPS_LOG:
            failures.append("re-recorded ops log is not a fixpoint of its input")

    if failures:
        for failure in failures:
            print(f"OPS REPLAY VIOLATION: {failure}", file=sys.stderr)
        return 1
    print("ops replay: double run OK (same log => same bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
