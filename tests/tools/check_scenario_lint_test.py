#!/usr/bin/env python3
"""Fixture suite for scripts/check-scenario.py.

The linter must accept the fuzzer's built-in base scenario (the canonical
well-formed document) and reject one fixture per error class: unknown keys,
inverted fault windows, unsorted ops, ops without a governor, and a wrong
schema tag.

Usage: check_scenario_lint_test.py <chaosfuzz-binary> <check-scenario.py>
"""

import json
import pathlib
import subprocess
import sys
import tempfile


def run(argv):
    return subprocess.run(argv, capture_output=True, text=True, timeout=120)


def fail(message, proc):
    sys.stderr.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    sys.stderr.write("FAIL: %s\n" % message)
    sys.exit(1)


def lint(check_scenario, path):
    return run([sys.executable, check_scenario, str(path)])


def expect_rejected(check_scenario, tmp, name, document, needle):
    path = pathlib.Path(tmp) / (name + ".json")
    path.write_text(json.dumps(document), encoding="utf-8")
    proc = lint(check_scenario, path)
    if proc.returncode == 0:
        fail("linter accepted fixture %s" % name, proc)
    if needle not in proc.stderr:
        fail("fixture %s: expected %r in linter output" % (name, needle), proc)


def main():
    if len(sys.argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    chaosfuzz = sys.argv[1]
    check_scenario = sys.argv[2]

    with tempfile.TemporaryDirectory(prefix="scenario-lint-") as tmp:
        base_path = pathlib.Path(tmp) / "base.json"
        save = run([chaosfuzz, "--save-default=%s" % base_path])
        if save.returncode != 0:
            fail("chaosfuzz --save-default failed", save)
        clean = lint(check_scenario, base_path)
        if clean.returncode != 0:
            fail("linter rejected the built-in base scenario", clean)

        base = json.loads(base_path.read_text(encoding="utf-8"))

        wrong_schema = dict(base)
        wrong_schema["schema"] = "anyqos.scenario/999"
        expect_rejected(check_scenario, tmp, "wrong-schema", wrong_schema, "schema")

        unknown_key = dict(base)
        unknown_key["surprise"] = 1
        expect_rejected(check_scenario, tmp, "unknown-key", unknown_key, "unknown key")

        bad_window = json.loads(json.dumps(base))
        bad_window["link_faults"][0]["fail_at"] = (
            bad_window["link_faults"][0]["repair_at"] + 10
        )
        expect_rejected(check_scenario, tmp, "bad-window", bad_window, "repair_at")

        unsorted_ops = json.loads(json.dumps(base))
        unsorted_ops.setdefault("governor", {})
        unsorted_ops["ops"] = [
            {"t": 60, "knob": "retrial-ceiling", "value": 2},
            {"t": 50, "knob": "retrial-ceiling", "value": 3},
        ]
        expect_rejected(check_scenario, tmp, "unsorted-ops", unsorted_ops, "sorted")

        orphan_ops = json.loads(json.dumps(base))
        orphan_ops.pop("governor", None)
        orphan_ops["ops"] = [{"t": 50, "knob": "retrial-ceiling", "value": 2}]
        expect_rejected(check_scenario, tmp, "orphan-ops", orphan_ops, "governor")

    print("check-scenario fixtures: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
