#!/usr/bin/env python3
"""Golden-fixture tests for tools/detlint.

Each fixture tree under fixtures/ is a miniature repository (a src/
directory) probing one rule: a positive file that must fire, a suppressed
file whose ANYQOS_DETLINT_ALLOW must silence the finding (with its reason
surfaced in the report), and a clean file that must stay quiet. The hygiene
tree checks the suppression mechanism itself (unused / empty-reason /
unknown-rule ALLOWs are findings). Run directly or through ctest.
"""

import json
import os
import subprocess
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.normpath(os.path.join(HERE, "..", "..", ".."))
DETLINT = os.path.join(REPO_ROOT, "tools", "detlint", "detlint.py")
FIXTURES = os.path.join(HERE, "fixtures")


def run_detlint(tree):
    proc = subprocess.run(
        [sys.executable, DETLINT, "--root", os.path.join(FIXTURES, tree),
         "--format", "json"],
        capture_output=True, text=True)
    try:
        report = json.loads(proc.stdout)
    except json.JSONDecodeError as error:  # pragma: no cover - debugging aid
        raise AssertionError(
            f"detlint emitted invalid JSON for {tree}:\n{proc.stdout}\n"
            f"{proc.stderr}") from error
    return proc.returncode, report


def findings_for(report, filename):
    return [f for f in report["findings"] if f["file"].endswith(filename)]


class RuleFixtureTest(unittest.TestCase):
    """One (tree, rule) pair per detlint rule: positive + suppressed + clean."""

    CASES = {
        "global_state": ("global-state", ".cpp", 2, 2),
        "rng_ownership": ("rng-ownership", ".cpp", 3, 1),
        "wall_clock": ("wall-clock", ".cpp", 2, 1),
        "unordered": ("unordered-artifact-iteration", ".cpp", 1, 1),
        "hot_path": ("hot-path-std-function", ".h", 2, 2),
    }

    def check_tree(self, tree, rule, ext, n_positive, n_suppressed):
        code, report = run_detlint(tree)
        self.assertEqual(code, 1, f"{tree}: positive findings must fail the run")

        positive = findings_for(report, "positive" + ext)
        self.assertEqual(len(positive), n_positive,
                         f"{tree}: expected {n_positive} findings in the "
                         f"positive file, got {json.dumps(positive, indent=2)}")
        for finding in positive:
            self.assertEqual(finding["rule"], rule)
            self.assertFalse(finding["suppressed"])

        suppressed = findings_for(report, "suppressed" + ext)
        self.assertEqual(len(suppressed), n_suppressed,
                         f"{tree}: expected {n_suppressed} suppressed "
                         f"findings, got {json.dumps(suppressed, indent=2)}")
        for finding in suppressed:
            self.assertEqual(finding["rule"], rule)
            self.assertTrue(finding["suppressed"],
                            f"{tree}: ALLOW did not suppress {finding}")
            self.assertTrue(finding["reason"].strip(),
                            f"{tree}: suppression lost its reason")

        clean = findings_for(report, "clean" + ext)
        self.assertEqual(clean, [],
                         f"{tree}: clean file fired {json.dumps(clean, indent=2)}")

        # The suppressed file alone must not fail: unsuppressed findings all
        # come from the positive file.
        unsuppressed = [f for f in report["findings"] if not f["suppressed"]]
        self.assertTrue(all(f["file"].endswith("positive" + ext)
                            for f in unsuppressed),
                        f"{tree}: unexpected unsuppressed findings "
                        f"{json.dumps(unsuppressed, indent=2)}")

    def test_rule_fixtures(self):
        for tree, (rule, ext, n_pos, n_sup) in self.CASES.items():
            with self.subTest(tree=tree):
                self.check_tree(tree, rule, ext, n_pos, n_sup)


class OpsWaiverFixtureTest(unittest.TestCase):
    """Mixed-rule tree mirroring the ops-plane listener's two waiver shapes
    (src/obs/ops_server.cpp): a process-global one-time guard and a
    scrape-side wall-clock read. One tree, two rules — so it gets custom
    asserts instead of a RuleFixtureTest.CASES row."""

    def test_ops_waiver_tree(self):
        code, report = run_detlint("ops_waivers")
        self.assertEqual(code, 1, "positive findings must fail the run")

        positive = findings_for(report, "positive.cpp")
        self.assertEqual(sorted(f["rule"] for f in positive),
                         ["global-state", "wall-clock"],
                         json.dumps(positive, indent=2))
        self.assertTrue(all(not f["suppressed"] for f in positive))

        suppressed = findings_for(report, "suppressed.cpp")
        self.assertEqual(sorted(f["rule"] for f in suppressed),
                         ["global-state", "wall-clock"],
                         json.dumps(suppressed, indent=2))
        for finding in suppressed:
            self.assertTrue(finding["suppressed"],
                            f"ALLOW did not suppress {finding}")
            self.assertTrue(finding["reason"].strip())

        self.assertEqual(findings_for(report, "clean.cpp"), [])


class SuppressionHygieneTest(unittest.TestCase):
    def test_hygiene_tree_fails(self):
        code, report = run_detlint("hygiene")
        self.assertEqual(code, 1)

        unused = findings_for(report, "unused_allow.cpp")
        self.assertEqual(len(unused), 1)
        self.assertIn("unused", unused[0]["message"])

        empty = findings_for(report, "empty_reason.cpp")
        self.assertEqual(len(empty), 1)
        self.assertIn("empty reason", empty[0]["message"])

        unknown = findings_for(report, "unknown_rule.cpp")
        self.assertEqual(len(unknown), 1)
        self.assertIn("unknown rule", unknown[0]["message"])


class RealTreeTest(unittest.TestCase):
    """The repository's own src/ must be clean: zero unsuppressed findings,
    and every surviving suppression carries a reason."""

    def test_src_tree_is_clean(self):
        proc = subprocess.run(
            [sys.executable, DETLINT, "--root", REPO_ROOT, "--format", "json"],
            capture_output=True, text=True)
        report = json.loads(proc.stdout)
        unsuppressed = [f for f in report["findings"] if not f["suppressed"]]
        self.assertEqual(
            proc.returncode, 0,
            "detlint must pass on the tree; unsuppressed findings:\n" +
            json.dumps(unsuppressed, indent=2))
        for finding in report["findings"]:
            self.assertTrue(finding.get("reason", "").strip(),
                            f"suppression without a reason: {finding}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
