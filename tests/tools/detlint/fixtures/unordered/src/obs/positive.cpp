// Fixture: unordered iteration in an artifact-path file must fire.
#include <unordered_map>
namespace fixture {
struct Writer {
  std::unordered_map<int, double> cells_;
  double dump() {
    double total = 0.0;
    for (const auto& [key, value] : cells_) {
      total += value + key;
    }
    return total;
  }
};
}  // namespace fixture
