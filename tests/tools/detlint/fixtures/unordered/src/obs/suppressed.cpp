// Fixture: a documented ALLOW (sorted-key extraction) silences the rule.
#include <algorithm>
#include <unordered_map>
#include <vector>
namespace fixture {
struct Writer {
  std::unordered_map<int, double> cells_;
  std::vector<int> sorted_keys() {
    std::vector<int> keys;
    ANYQOS_DETLINT_ALLOW(unordered_artifact_iteration, "sorted-key extraction");
    for (const auto& [key, value] : cells_) {
      keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  }
};
}  // namespace fixture
