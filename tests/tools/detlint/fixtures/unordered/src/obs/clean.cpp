// Fixture: ordered maps and keyed unordered lookups must not fire.
#include <map>
#include <unordered_map>
namespace fixture {
struct Writer {
  std::map<int, double> ordered_;
  std::unordered_map<int, double> index_;
  double dump(int key) {
    double total = 0.0;
    for (const auto& [k, value] : ordered_) {
      total += value + k;
    }
    const auto it = index_.find(key);  // keyed access: order-free
    return it == index_.end() ? total : total + it->second;
  }
};
}  // namespace fixture
