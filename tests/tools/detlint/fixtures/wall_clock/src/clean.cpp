// Fixture: DES-clock reads and identifiers containing "time" must not fire.
namespace fixture {
struct Simulator { double now() const; double next_time() const; };
double sample(const Simulator& sim) {
  return sim.now() + sim.next_time();  // the only clock is the DES clock
}
}  // namespace fixture
