// Fixture: a documented ALLOW silences rule wall-clock.
#include <chrono>
namespace fixture {
double sample() {
  ANYQOS_DETLINT_ALLOW(wall_clock, "fixture: wall profiler measures itself");
  const auto wall = std::chrono::steady_clock::now();
  return wall.time_since_epoch().count();
}
}  // namespace fixture
