// Fixture: host clock reads must fire rule wall-clock.
#include <chrono>
#include <ctime>
namespace fixture {
double sample() {
  const auto wall = std::chrono::steady_clock::now();
  const auto stamp = time(nullptr);
  return static_cast<double>(stamp) + wall.time_since_epoch().count();
}
}  // namespace fixture
