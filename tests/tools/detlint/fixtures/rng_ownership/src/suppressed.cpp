// Fixture: a documented ALLOW silences rule rng-ownership.
#include <random>
namespace fixture {
int draw() {
  ANYQOS_DETLINT_ALLOW(rng_ownership, "fixture: deliberate engine for testing");
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}
}  // namespace fixture
