// Fixture: engine construction and C rand() outside src/des/random must fire.
#include <random>
namespace fixture {
int draw() {
  std::mt19937 gen(42);
  std::random_device entropy;
  return static_cast<int>(gen() + entropy() + rand());
}
}  // namespace fixture
