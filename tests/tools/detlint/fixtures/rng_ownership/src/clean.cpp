// Fixture: distributions fed by an injected stream are the supported idiom.
#include <random>
namespace fixture {
struct Stream { unsigned long long next(); };
double draw(Stream& stream) {
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  (void)uniform;
  return static_cast<double>(stream.next());  // rng comes from the simulator
}
}  // namespace fixture
