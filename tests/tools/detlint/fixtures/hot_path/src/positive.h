// detlint: hot-path
// Fixture: std::function in a hot-path-annotated file must fire.
#pragma once
#include <functional>
namespace fixture {
using Callback = std::function<void()>;
}  // namespace fixture
