// detlint: hot-path
// Fixture: documented ALLOWs silence rule hot-path-std-function, including
// the comment form for positions where a statement cannot appear.
#pragma once
// ANYQOS_DETLINT_ALLOW(hot_path_std_function, "fixture: cold include seam")
#include <functional>
namespace fixture {
ANYQOS_DETLINT_ALLOW(hot_path_std_function, "fixture: cold registration API");
using Callback = std::function<void()>;
}  // namespace fixture
