// detlint: hot-path
// Fixture: a hot-path file with inline callables only must stay clean.
#pragma once
namespace fixture {
struct Action {
  void (*invoke)(void*) = nullptr;
  void* state = nullptr;
  void operator()() { invoke(state); }
};
}  // namespace fixture
