// Fixture: the waiver-free way to publish health — the DES clock and
// caller-owned state need no suppressions.
#include <cstdint>
namespace fixture {
struct Simulator {
  double now() const;
};
struct HealthDoc {
  double sim_time_s = 0.0;
  std::uint64_t events = 0;
};
HealthDoc render_health(const Simulator& sim, std::uint64_t events) {
  HealthDoc doc;
  doc.sim_time_s = sim.now();  // the only clock is the DES clock
  doc.events = events;
  return doc;
}
}  // namespace fixture
