// Fixture: the documented single-line waivers that make the ops-plane
// listener lint-clean — process-global signal disposition and a wall-clock
// read that never feeds back into model state.
#include <chrono>
#include <cstdint>
#include <mutex>
namespace fixture {
ANYQOS_DETLINT_ALLOW(global_state, "fixture: signal disposition is process-global by nature");
std::once_flag install_once;
double events_per_second(std::uint64_t events) {
  ANYQOS_DETLINT_ALLOW(wall_clock, "fixture: scrape-side rate display only, never reaches model state");
  const auto now = std::chrono::steady_clock::now();
  return static_cast<double>(events) /
         std::chrono::duration<double>(now.time_since_epoch()).count();
}
}  // namespace fixture
