// Fixture: an ops-plane-style HTTP listener leaks both a process-global
// (one-time signal guard) and a wall-clock read (events/s rate) when
// unwaived — the two waiver shapes src/obs/ops_server.cpp relies on.
#include <chrono>
#include <cstdint>
#include <mutex>
namespace fixture {
std::once_flag install_once;
double events_per_second(std::uint64_t events) {
  const auto now = std::chrono::steady_clock::now();
  return static_cast<double>(events) /
         std::chrono::duration<double>(now.time_since_epoch()).count();
}
}  // namespace fixture
