// Fixture: an ALLOW with no finding under it is itself a finding.
namespace fixture {
ANYQOS_DETLINT_ALLOW(wall_clock, "fixture: nothing here reads a clock");
constexpr int kFine = 1;
}  // namespace fixture
