// Fixture: an ALLOW naming an unknown rule is rejected.
namespace fixture {
ANYQOS_DETLINT_ALLOW(made_up_rule, "fixture: no such rule exists");
constexpr int kFine = 1;
}  // namespace fixture
