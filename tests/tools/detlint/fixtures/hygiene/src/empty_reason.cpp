// Fixture: an ALLOW with an empty reason is rejected.
namespace fixture {
ANYQOS_DETLINT_ALLOW(wall_clock, "");
constexpr int kFine = 1;
}  // namespace fixture
