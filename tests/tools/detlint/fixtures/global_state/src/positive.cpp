// Fixture: rule global-state must fire on namespace-scope and function-local
// mutable state.
namespace fixture {
int request_counter = 0;
void bump() {
  static int calls = 0;
  ++calls;
  ++request_counter;
}
}  // namespace fixture
