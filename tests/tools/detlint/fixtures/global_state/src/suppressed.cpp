// Fixture: a documented ALLOW silences rule global-state.
namespace fixture {
ANYQOS_DETLINT_ALLOW(global_state, "fixture: intentional global for testing");
int request_counter = 0;
void bump() {
  ANYQOS_DETLINT_ALLOW(global_state, "fixture: memoized pure lookup");
  static int calls = 0;
  ++calls;
}
}  // namespace fixture
