// Fixture: immutable globals, static member functions, and instance state
// must not fire rule global-state.
namespace fixture {
constexpr int kLimit = 8;
const double kShare = 0.2;
static constexpr int kBatch = 20;
struct Widget {
  static Widget uniform(int k);
  int count = 0;
};
void bump(Widget& w) { ++w.count; }
}  // namespace fixture
