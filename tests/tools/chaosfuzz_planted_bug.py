#!/usr/bin/env python3
"""End-to-end gate for the chaosfuzz planted-bug contract.

With the duplex-outage idempotency guard defeated (--defeat-duplex-
idempotency), the fuzzer must, within a CI-sized budget:

  1. find a violation of the planted class ("exception:link is already
     failed") and shrink it,
  2. emit a repro scenario that scripts/check-scenario.py accepts,
  3. replay that repro deterministically: two replays exit nonzero with
     byte-identical verdicts and flight dumps, and
  4. replay clean (exit 0) once the guard is back in place — the failure
     belongs to the planted bug, not to the scenario.

Usage: chaosfuzz_planted_bug.py <chaosfuzz-binary> <check-scenario.py>
"""

import pathlib
import subprocess
import sys
import tempfile

PLANTED_CLASS = "exception:link is already failed"
# Pinned fuzz seed: seed 1 finds the planted bug within a couple of
# candidates; the iteration cap is just a backstop for the gate.
FUZZ_SEED = "1"
ITERATIONS = "20"
SHRINK_BUDGET = "150"


def run(argv, **kwargs):
    return subprocess.run(argv, capture_output=True, text=True, timeout=600, **kwargs)


def fail(message, *procs):
    for proc in procs:
        sys.stderr.write("--- command: %s (exit %d)\n" % (" ".join(proc.args), proc.returncode))
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
    sys.stderr.write("FAIL: %s\n" % message)
    sys.exit(1)


def main():
    if len(sys.argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    chaosfuzz = sys.argv[1]
    check_scenario = sys.argv[2]

    with tempfile.TemporaryDirectory(prefix="chaosfuzz-gate-") as tmp:
        prefix = str(pathlib.Path(tmp) / "cf")

        # 1. Find + shrink within budget.
        hunt = run([
            chaosfuzz,
            "--defeat-duplex-idempotency",
            "--seed=" + FUZZ_SEED,
            "--iterations=" + ITERATIONS,
            "--shrink-budget=" + SHRINK_BUDGET,
            "--out-prefix=" + prefix,
            "--quiet",
        ])
        if hunt.returncode != 1:
            fail("fuzzer did not find the planted bug (exit %d)" % hunt.returncode, hunt)
        if "verdict: " + PLANTED_CLASS not in hunt.stdout:
            fail("shrunk verdict is not the planted class", hunt)
        repro = pathlib.Path(prefix + "-repro.json")
        flight = pathlib.Path(prefix + "-flight.jsonl")
        if not repro.is_file():
            fail("no repro scenario written", hunt)
        if not flight.is_file():
            fail("no flight dump written", hunt)

        # 2. The repro lints clean.
        lint = run([sys.executable, check_scenario, str(repro)])
        if lint.returncode != 0:
            fail("repro fails the scenario linter", lint)

        # 3. Deterministic replay: same exit, same verdict, same flight bytes.
        replays = []
        dumps = []
        for attempt in range(2):
            replay_prefix = str(pathlib.Path(tmp) / ("replay%d" % attempt))
            replay = run([
                chaosfuzz,
                "--defeat-duplex-idempotency",
                "--replay=" + str(repro),
                "--out-prefix=" + replay_prefix,
            ])
            if replay.returncode != 1:
                fail("replay %d did not reproduce (exit %d)" % (attempt, replay.returncode),
                     replay)
            if "verdict: " + PLANTED_CLASS not in replay.stdout:
                fail("replay %d verdict drifted from the planted class" % attempt, replay)
            replays.append(replay)
            dumps.append(pathlib.Path(replay_prefix + "-flight.jsonl").read_bytes())
        if dumps[0] != dumps[1]:
            fail("replay flight dumps differ between runs", *replays)

        # 4. With the guard restored, the same repro is clean.
        guarded = run([chaosfuzz, "--replay=" + str(repro)])
        if guarded.returncode != 0:
            fail("repro is not clean with the idempotency guard enabled", guarded)
        if "verdict: clean" not in guarded.stdout:
            fail("guarded replay did not report clean", guarded)

    print("chaosfuzz planted-bug gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
