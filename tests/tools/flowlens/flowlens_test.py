#!/usr/bin/env python3
"""Golden-fixture tests for tools/flowlens.

fixtures/clean/ is a miniature but fully consistent artifact set covering
every lifecycle shape flowlens understands: plain admit/depart, reject,
shed (with its zero-attempt marker span), repair continuation, churn
failover under a fresh request id, and a rejected failover that never
enters the trace. fixtures/broken/ holds one deliberately inconsistent
artifact per check class; each must drive the exit code to 1 and name its
check. Run directly or through ctest.
"""

import os
import subprocess
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.normpath(os.path.join(HERE, "..", "..", ".."))
FLOWLENS = os.path.join(REPO_ROOT, "tools", "flowlens", "flowlens.py")
CLEAN = os.path.join(HERE, "fixtures", "clean")
BROKEN = os.path.join(HERE, "fixtures", "broken")


def run_flowlens(*args):
    return subprocess.run([sys.executable, FLOWLENS] + list(args),
                          capture_output=True, text=True)


def clean(name):
    return os.path.join(CLEAN, name)


def broken(name):
    return os.path.join(BROKEN, name)


class CleanFixture(unittest.TestCase):
    def test_full_artifact_set_is_consistent(self):
        proc = run_flowlens("--trace", clean("trace.csv"),
                            "--spans", clean("spans.jsonl"),
                            "--timeline", clean("timeline.jsonl"),
                            "--ops", clean("ops.jsonl"),
                            "--kernel", clean("kernel.jsonl"))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("flowlens: consistent", proc.stdout)

    def test_each_artifact_passes_alone(self):
        for flag, name in (("--trace", "trace.csv"),
                           ("--spans", "spans.jsonl"),
                           ("--timeline", "timeline.jsonl"),
                           ("--ops", "ops.jsonl"),
                           ("--kernel", "kernel.jsonl")):
            proc = run_flowlens(flag, clean(name))
            self.assertEqual(proc.returncode, 0,
                             "%s alone failed:\n%s" % (name, proc.stderr))

    def test_summary_reconstructs_chains(self):
        proc = run_flowlens("--trace", clean("trace.csv"),
                            "--spans", clean("spans.jsonl"), "--chains", "10")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("ADMITTED@0.5 -> DROPPED@3", proc.stdout)
        self.assertIn("REPAIRED@2.6 -> DEPARTED@4", proc.stdout)
        self.assertIn("FAILOVER@3 -> DEPARTED@5", proc.stdout)


class BrokenFixtures(unittest.TestCase):
    def assert_violation(self, proc, check):
        self.assertEqual(proc.returncode, 1,
                         "expected exit 1, got %d:\n%s%s" %
                         (proc.returncode, proc.stdout, proc.stderr))
        self.assertIn("[%s]" % check, proc.stderr)

    def test_repaired_flow_counted_dropped(self):
        proc = run_flowlens("--trace", broken("repaired_after_drop.csv"))
        self.assert_violation(proc, "chain-after-terminal")

    def test_span_without_trace_events(self):
        proc = run_flowlens("--trace", clean("trace.csv"),
                            "--spans", broken("span_unmatched.jsonl"))
        self.assert_violation(proc, "span-unmatched")

    def test_shed_flow_in_offered_stream(self):
        proc = run_flowlens("--trace", clean("trace.csv"),
                            "--spans", broken("shed_offered.jsonl"))
        self.assert_violation(proc, "shed-offered")

    def test_kernel_fired_disagrees_with_engine(self):
        proc = run_flowlens("--kernel", broken("kernel_dispatch.jsonl"))
        self.assert_violation(proc, "kernel-dispatch")

    def test_kernel_category_does_not_reconcile(self):
        proc = run_flowlens("--kernel", broken("kernel_reconcile.jsonl"))
        self.assert_violation(proc, "kernel-reconcile")


class UnusableInput(unittest.TestCase):
    def test_malformed_trace_exits_2(self):
        proc = run_flowlens("--trace", broken("malformed_trace.csv"))
        self.assertEqual(proc.returncode, 2, proc.stderr)

    def test_missing_file_exits_2(self):
        proc = run_flowlens("--kernel", os.path.join(BROKEN, "nope.jsonl"))
        self.assertEqual(proc.returncode, 2, proc.stderr)

    def test_no_artifacts_exits_2(self):
        proc = run_flowlens()
        self.assertEqual(proc.returncode, 2, proc.stderr)


if __name__ == "__main__":
    unittest.main()
