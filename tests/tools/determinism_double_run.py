#!/usr/bin/env python3
"""Dynamic determinism regression: run dacsim twice at one seed, byte-compare.

The determinism contract (DESIGN.md §12) is enforced statically by
tools/detlint; this test enforces it dynamically: two runs of the same
configuration must produce byte-identical artifacts — the event trace CSV
and the windowed timeline JSONL. A rule-4 violation (hash-order reaching an
artifact) or any hidden global/RNG/wall-clock leak shows up here as a byte
diff even if the static pass missed it.

Usage: determinism_double_run.py <path-to-dacsim> [workdir]
Registered via ctest (see examples/CMakeLists.txt).
"""

import filecmp
import os
import subprocess
import sys
import tempfile

BASE_ARGS = [
    "--lambda=25", "--warmup=100", "--measure=600", "--seed=11",
    "--fault-rate=0.0003", "--churn-rate=0.002",
    "--timeline-interval=50",
]

FAULT_ARGS = BASE_ARGS + [
    "--node-mtbf=2000", "--node-mttr=120",
    "--reconverge-delay=0.5", "--path-repair",
]

# Each scenario is double-run independently. "node-faults" layers the
# failure-domain plane (router crashes, delayed reconvergence, path repair)
# on top of the link-fault + churn mix: repairs re-signal through the same
# seeded streams, so they must be just as replayable. "kernel-stats" is the
# same run with the kernel introspection sink attached: the kernel-stats
# artifact itself must double-run byte-identical, and — the attach-gating
# contract — attaching the sink must not move a single byte of the trace
# relative to the unattached "node-faults" run.
SCENARIOS = [
    ("base", BASE_ARGS, False),
    ("node-faults", FAULT_ARGS, False),
    ("kernel-stats", FAULT_ARGS, True),
]


def run_once(dacsim, workdir, tag, args, kernel):
    trace = os.path.join(workdir, f"trace-{tag}.csv")
    timeline = os.path.join(workdir, f"timeline-{tag}.jsonl")
    cmd = [dacsim, *args, f"--trace={trace}", f"--timeline-out={timeline}"]
    artifacts = [trace, timeline]
    if kernel:
        kernel_out = os.path.join(workdir, f"kernel-{tag}.jsonl")
        cmd.append(f"--kernel-stats-out={kernel_out}")
        artifacts.append(kernel_out)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"dacsim run {tag} failed with {proc.returncode}")
    for artifact in artifacts:
        if not os.path.exists(artifact) or os.path.getsize(artifact) == 0:
            raise SystemExit(f"dacsim run {tag} left no artifact {artifact}")
    return artifacts


def first_diff(path_a, path_b):
    with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
        for lineno, (line_a, line_b) in enumerate(zip(fa, fb), start=1):
            if line_a != line_b:
                return (lineno, line_a.decode(errors="replace").rstrip(),
                        line_b.decode(errors="replace").rstrip())
    return None


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    dacsim = sys.argv[1]
    if not os.path.exists(dacsim):
        print(f"determinism_double_run: no such binary {dacsim}", file=sys.stderr)
        return 2
    workdir = sys.argv[2] if len(sys.argv) > 2 else tempfile.mkdtemp(
        prefix="anyqos-determinism-")
    os.makedirs(workdir, exist_ok=True)

    failures = []
    traces = {}
    labels = ("trace", "timeline", "kernel")
    for scenario, args, kernel in SCENARIOS:
        run_a = run_once(dacsim, workdir, f"{scenario}-a", args, kernel)
        run_b = run_once(dacsim, workdir, f"{scenario}-b", args, kernel)
        traces[scenario] = run_a[0]
        for label, a, b in zip(labels, run_a, run_b):
            if filecmp.cmp(a, b, shallow=False):
                print(f"determinism[{scenario}]: {label} byte-identical "
                      f"({os.path.getsize(a)} bytes)")
                continue
            diff = first_diff(a, b)
            where = (f"line {diff[0]}:\n  run a: {diff[1]}\n  run b: {diff[2]}"
                     if diff else "file sizes differ")
            failures.append(f"[{scenario}] {label} artifacts diverge at {where}")

    # Attach-gating: the kernel sink observes, it must not steer. The traced
    # flow history with the sink attached must byte-match the unattached run
    # of the identical configuration.
    if filecmp.cmp(traces["node-faults"], traces["kernel-stats"], shallow=False):
        print("determinism[attach-gating]: kernel sink left the trace untouched")
    else:
        diff = first_diff(traces["node-faults"], traces["kernel-stats"])
        where = (f"line {diff[0]}:\n  unattached: {diff[1]}\n  attached: {diff[2]}"
                 if diff else "file sizes differ")
        failures.append(f"[attach-gating] kernel sink perturbed the trace at {where}")

    if failures:
        for failure in failures:
            print(f"DETERMINISM VIOLATION: {failure}", file=sys.stderr)
        return 1
    print("determinism: double run OK (same seed => same bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
