#include "src/util/strings.h"

#include <gtest/gtest.h>

namespace anyqos::util {
namespace {

TEST(Split, SplitsOnSeparator) {
  const auto fields = split("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto fields = split("a,,c,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(Split, SingleFieldWithoutSeparator) {
  const auto fields = split("plain", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "plain");
}

TEST(Split, EmptyInputGivesOneEmptyField) {
  const auto fields = split("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Trim, AllWhitespaceBecomesEmpty) {
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(ParseDouble, ParsesPlainAndNegativeNumbers) {
  EXPECT_DOUBLE_EQ(parse_double("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(parse_double("-1.5").value(), -1.5);
  EXPECT_DOUBLE_EQ(parse_double(" 42 ").value(), 42.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

TEST(ParseUnsigned, ParsesAndRejectsSigns) {
  EXPECT_EQ(parse_unsigned("17").value(), 17ull);
  EXPECT_EQ(parse_unsigned("0").value(), 0ull);
  EXPECT_FALSE(parse_unsigned("-1").has_value());
  EXPECT_FALSE(parse_unsigned("+1").has_value());
  EXPECT_FALSE(parse_unsigned("12.5").has_value());
}

TEST(StartsWith, MatchesPrefixes) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(FormatFixed, FormatsRequestedDigits) {
  EXPECT_EQ(format_fixed(0.8379, 2), "0.84");
  EXPECT_EQ(format_fixed(1.0, 6), "1.000000");
  EXPECT_EQ(format_fixed(-2.5, 1), "-2.5");
}

}  // namespace
}  // namespace anyqos::util
