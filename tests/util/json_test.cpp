#include "src/util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

namespace anyqos::util {
namespace {

TEST(Json, BuildsAndDumpsEveryKind) {
  JsonValue doc = JsonValue::object();
  doc.set("flag", JsonValue::boolean(true));
  doc.set("nothing", JsonValue::null());
  doc.set("count", JsonValue::number(3.0));
  doc.set("label", JsonValue::string("hi"));
  JsonValue list = JsonValue::array();
  list.push_back(JsonValue::number(1.0));
  list.push_back(JsonValue::number(2.5));
  doc.set("list", std::move(list));
  EXPECT_EQ(doc.dump(),
            R"({"flag":true,"nothing":null,"count":3,"label":"hi","list":[1,2.5]})");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  JsonValue doc = JsonValue::object();
  doc.set("zebra", JsonValue::number(1.0));
  doc.set("alpha", JsonValue::number(2.0));
  doc.set("mid", JsonValue::number(3.0));
  EXPECT_EQ(doc.dump(), R"({"zebra":1,"alpha":2,"mid":3})");
  // Overwrite keeps the original position.
  doc.set("alpha", JsonValue::number(9.0));
  EXPECT_EQ(doc.dump(), R"({"zebra":1,"alpha":9,"mid":3})");
}

TEST(Json, ParseRoundTripsCompactAndPretty) {
  const std::string text =
      R"({"a":1,"b":[true,false,null],"c":{"nested":"x\n\"y\""},"d":0.125})";
  const JsonValue parsed = parse_json(text);
  EXPECT_EQ(parsed.dump(), text);
  // Pretty output re-parses to the same document.
  EXPECT_EQ(parse_json(parsed.dump(true)).dump(), text);
}

TEST(Json, NumbersRoundTripExactly) {
  // Integral doubles render as integers; non-integral via %.17g.
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-7.0), "-7");
  EXPECT_EQ(json_number(0.0), "0");
  const double awkward = 0.1 + 0.2;  // 0.30000000000000004
  const std::string rendered = json_number(awkward);
  EXPECT_EQ(parse_json(rendered).as_number(), awkward);
  const double tiny = 5e-324;  // smallest denormal survives the trip
  EXPECT_EQ(parse_json(json_number(tiny)).as_number(), tiny);
}

TEST(Json, AccessorsThrowOnKindMismatch) {
  const JsonValue number = JsonValue::number(1.0);
  EXPECT_THROW((void)number.as_string(), std::invalid_argument);
  EXPECT_THROW((void)number.as_object(), std::invalid_argument);
  const JsonValue doc = parse_json(R"({"k":1})");
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW((void)doc.at("missing"), std::invalid_argument);
  EXPECT_EQ(doc.at("k").as_number(), 1.0);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_json(""), std::invalid_argument);
  EXPECT_THROW(parse_json("{"), std::invalid_argument);
  EXPECT_THROW(parse_json("[1,]"), std::invalid_argument);
  EXPECT_THROW(parse_json("{\"a\":1,}"), std::invalid_argument);
  EXPECT_THROW(parse_json("{'a':1}"), std::invalid_argument);
  EXPECT_THROW(parse_json("[1] trailing"), std::invalid_argument);
  EXPECT_THROW(parse_json("+1"), std::invalid_argument);
  EXPECT_THROW(parse_json("nul"), std::invalid_argument);
  EXPECT_THROW(parse_json("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(parse_json("1e999"), std::invalid_argument);  // non-finite
}

TEST(Json, RejectsDuplicateKeys) {
  EXPECT_THROW(parse_json(R"({"a":1,"a":2})"), std::invalid_argument);
}

TEST(Json, DepthCapStopsAdversarialNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) {
    deep += '[';
  }
  for (int i = 0; i < 200; ++i) {
    deep += ']';
  }
  EXPECT_THROW(parse_json(deep), std::invalid_argument);
}

TEST(Json, ErrorsCarryByteOffsets) {
  try {
    parse_json("{\"a\": }");
    FAIL() << "expected a parse error";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("at byte"), std::string::npos) << error.what();
  }
}

TEST(Json, ParsesUnicodeEscapes) {
  EXPECT_EQ(parse_json("[\"\\u00e9\"]").as_array()[0].as_string(), "\xC3\xA9");
  EXPECT_EQ(parse_json("[\"\\u2192\"]").as_array()[0].as_string(),
            "\xE2\x86\x92");
  // Raw UTF-8 passes through untouched.
  EXPECT_EQ(parse_json(R"(["Aé"])").as_array()[0].as_string(), "A\xC3\xA9");
  // Surrogate halves are not representable.
  EXPECT_THROW(parse_json(R"(["\ud800"])"), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::util
