#include "src/util/require.h"

#include <gtest/gtest.h>

namespace anyqos::util {
namespace {

TEST(Require, PassesOnTrue) { EXPECT_NO_THROW(require(true, "fine")); }

TEST(Require, ThrowsInvalidArgumentOnFalse) {
  EXPECT_THROW(require(false, "bad input"), std::invalid_argument);
}

TEST(Require, MessageIsPreserved) {
  try {
    require(false, "specific message");
    FAIL() << "require should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "specific message");
  }
}

TEST(Ensure, PassesOnTrue) { EXPECT_NO_THROW(ensure(true, "fine")); }

TEST(Ensure, ThrowsInvariantErrorOnFalse) {
  EXPECT_THROW(ensure(false, "broken invariant"), InvariantError);
}

TEST(Ensure, InvariantErrorIsALogicError) {
  EXPECT_THROW(ensure(false, "broken"), std::logic_error);
}

TEST(Unreachable, AlwaysThrows) { EXPECT_THROW(unreachable("spot"), InvariantError); }

TEST(Unreachable, MentionsLocation) {
  try {
    unreachable("switch arm");
    FAIL() << "unreachable should have thrown";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("switch arm"), std::string::npos);
  }
}

}  // namespace
}  // namespace anyqos::util
