#include "src/util/require.h"

#include <gtest/gtest.h>

namespace anyqos::util {
namespace {

TEST(Require, PassesOnTrue) { EXPECT_NO_THROW(require(true, "fine")); }

TEST(Require, ThrowsInvalidArgumentOnFalse) {
  EXPECT_THROW(require(false, "bad input"), std::invalid_argument);
}

TEST(Require, MessageIsPreserved) {
  try {
    require(false, "specific message");
    FAIL() << "require should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "specific message");
  }
}

TEST(Require, DistinctFromInvariantError) {
  // A precondition failure is the caller's fault, not a library invariant:
  // it must NOT be catchable as InvariantError.
  EXPECT_THROW(
      {
        try {
          require(false, "caller error");
        } catch (const InvariantError&) {
          FAIL() << "require must not throw InvariantError";
        }
      },
      std::invalid_argument);
}

TEST(Ensure, PassesOnTrue) { EXPECT_NO_THROW(ensure(true, "fine")); }

TEST(Ensure, ThrowsInvariantErrorOnFalse) {
  EXPECT_THROW(ensure(false, "broken invariant"), InvariantError);
}

TEST(Ensure, InvariantErrorIsALogicError) {
  EXPECT_THROW(ensure(false, "broken"), std::logic_error);
}

TEST(Ensure, MessageIsPreserved) {
  try {
    ensure(false, "ledger out of balance");
    FAIL() << "ensure should have thrown";
  } catch (const InvariantError& e) {
    EXPECT_STREQ(e.what(), "ledger out of balance");
  }
}

TEST(Ensure, CatchableAsLogicErrorWithMessage) {
  try {
    ensure(false, "specific invariant");
    FAIL() << "ensure should have thrown";
  } catch (const std::logic_error& e) {  // the documented base-class contract
    EXPECT_STREQ(e.what(), "specific invariant");
  }
}

TEST(InvariantErrorType, ConstructibleAndCatchableAsLogicError) {
  const InvariantError error("direct construction");
  EXPECT_STREQ(error.what(), "direct construction");
  try {
    throw InvariantError("thrown directly");
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "thrown directly");
  }
}

TEST(Unreachable, AlwaysThrows) { EXPECT_THROW(unreachable("spot"), InvariantError); }

TEST(Unreachable, MentionsLocation) {
  try {
    unreachable("switch arm");
    FAIL() << "unreachable should have thrown";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("switch arm"), std::string::npos);
  }
}

}  // namespace
}  // namespace anyqos::util
