#include "src/util/cli.h"

#include <gtest/gtest.h>

namespace anyqos::util {
namespace {

CliFlags standard_flags() {
  CliFlags flags("prog", "test program");
  flags.add_double("rate", 1.5, "a rate");
  flags.add_unsigned("count", 7, "a count");
  flags.add_string("label", "x", "a label");
  flags.add_bool("verbose", false, "a switch");
  return flags;
}

void parse(CliFlags& flags, std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  flags.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliFlags, DefaultsApplyWithoutArguments) {
  CliFlags flags = standard_flags();
  parse(flags, {});
  EXPECT_DOUBLE_EQ(flags.get_double("rate"), 1.5);
  EXPECT_EQ(flags.get_unsigned("count"), 7u);
  EXPECT_EQ(flags.get_string("label"), "x");
  EXPECT_FALSE(flags.get_bool("verbose"));
}

TEST(CliFlags, EqualsFormParsesAllTypes) {
  CliFlags flags = standard_flags();
  parse(flags, {"--rate=2.25", "--count=42", "--label=hello", "--verbose=true"});
  EXPECT_DOUBLE_EQ(flags.get_double("rate"), 2.25);
  EXPECT_EQ(flags.get_unsigned("count"), 42u);
  EXPECT_EQ(flags.get_string("label"), "hello");
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(CliFlags, SpaceSeparatedFormParses) {
  CliFlags flags = standard_flags();
  parse(flags, {"--rate", "0.5", "--label", "abc"});
  EXPECT_DOUBLE_EQ(flags.get_double("rate"), 0.5);
  EXPECT_EQ(flags.get_string("label"), "abc");
}

TEST(CliFlags, BareBoolFlagSetsTrue) {
  CliFlags flags = standard_flags();
  parse(flags, {"--verbose"});
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(CliFlags, BoolFalseLiteral) {
  CliFlags flags("p", "d");
  flags.add_bool("on", true, "switch");
  parse(flags, {"--on=false"});
  EXPECT_FALSE(flags.get_bool("on"));
}

TEST(CliFlags, UnknownFlagThrows) {
  CliFlags flags = standard_flags();
  EXPECT_THROW(parse(flags, {"--nope=1"}), std::invalid_argument);
}

TEST(CliFlags, MalformedNumberThrows) {
  CliFlags flags = standard_flags();
  EXPECT_THROW(parse(flags, {"--rate=abc"}), std::invalid_argument);
  EXPECT_THROW(parse(flags, {"--count=-3"}), std::invalid_argument);
}

TEST(CliFlags, MissingValueThrows) {
  CliFlags flags = standard_flags();
  EXPECT_THROW(parse(flags, {"--rate"}), std::invalid_argument);
}

TEST(CliFlags, NonFlagArgumentThrows) {
  CliFlags flags = standard_flags();
  EXPECT_THROW(parse(flags, {"positional"}), std::invalid_argument);
}

TEST(CliFlags, HelpIsDetected) {
  CliFlags flags = standard_flags();
  parse(flags, {"--help"});
  EXPECT_TRUE(flags.help_requested());
}

TEST(CliFlags, HelpTextMentionsEveryFlag) {
  const CliFlags flags = standard_flags();
  const std::string help = flags.help_text();
  EXPECT_NE(help.find("--rate"), std::string::npos);
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("--label"), std::string::npos);
  EXPECT_NE(help.find("--verbose"), std::string::npos);
}

TEST(CliFlags, WrongTypeAccessThrows) {
  CliFlags flags = standard_flags();
  parse(flags, {});
  EXPECT_THROW(static_cast<void>(flags.get_double("count")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(flags.get_bool("rate")), std::invalid_argument);
}

TEST(CliFlags, DuplicateDeclarationThrows) {
  CliFlags flags("p", "d");
  flags.add_double("x", 0, "first");
  EXPECT_THROW(flags.add_string("x", "", "second"), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::util
