#include "src/util/cli.h"

#include <gtest/gtest.h>

namespace anyqos::util {
namespace {

CliFlags standard_flags() {
  CliFlags flags("prog", "test program");
  flags.add_double("rate", 1.5, "a rate");
  flags.add_unsigned("count", 7, "a count");
  flags.add_string("label", "x", "a label");
  flags.add_bool("verbose", false, "a switch");
  return flags;
}

void parse(CliFlags& flags, std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  flags.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliFlags, DefaultsApplyWithoutArguments) {
  CliFlags flags = standard_flags();
  parse(flags, {});
  EXPECT_DOUBLE_EQ(flags.get_double("rate"), 1.5);
  EXPECT_EQ(flags.get_unsigned("count"), 7u);
  EXPECT_EQ(flags.get_string("label"), "x");
  EXPECT_FALSE(flags.get_bool("verbose"));
}

TEST(CliFlags, EqualsFormParsesAllTypes) {
  CliFlags flags = standard_flags();
  parse(flags, {"--rate=2.25", "--count=42", "--label=hello", "--verbose=true"});
  EXPECT_DOUBLE_EQ(flags.get_double("rate"), 2.25);
  EXPECT_EQ(flags.get_unsigned("count"), 42u);
  EXPECT_EQ(flags.get_string("label"), "hello");
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(CliFlags, SpaceSeparatedFormParses) {
  CliFlags flags = standard_flags();
  parse(flags, {"--rate", "0.5", "--label", "abc"});
  EXPECT_DOUBLE_EQ(flags.get_double("rate"), 0.5);
  EXPECT_EQ(flags.get_string("label"), "abc");
}

TEST(CliFlags, BareBoolFlagSetsTrue) {
  CliFlags flags = standard_flags();
  parse(flags, {"--verbose"});
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(CliFlags, BoolFalseLiteral) {
  CliFlags flags("p", "d");
  flags.add_bool("on", true, "switch");
  parse(flags, {"--on=false"});
  EXPECT_FALSE(flags.get_bool("on"));
}

TEST(CliFlags, UnknownFlagThrows) {
  CliFlags flags = standard_flags();
  EXPECT_THROW(parse(flags, {"--nope=1"}), std::invalid_argument);
}

TEST(CliFlags, MalformedNumberThrows) {
  CliFlags flags = standard_flags();
  EXPECT_THROW(parse(flags, {"--rate=abc"}), std::invalid_argument);
  EXPECT_THROW(parse(flags, {"--count=-3"}), std::invalid_argument);
}

TEST(CliFlags, MissingValueThrows) {
  CliFlags flags = standard_flags();
  EXPECT_THROW(parse(flags, {"--rate"}), std::invalid_argument);
}

TEST(CliFlags, NonFlagArgumentThrows) {
  CliFlags flags = standard_flags();
  EXPECT_THROW(parse(flags, {"positional"}), std::invalid_argument);
}

TEST(CliFlags, HelpIsDetected) {
  CliFlags flags = standard_flags();
  parse(flags, {"--help"});
  EXPECT_TRUE(flags.help_requested());
}

TEST(CliFlags, HelpTextMentionsEveryFlag) {
  const CliFlags flags = standard_flags();
  const std::string help = flags.help_text();
  EXPECT_NE(help.find("--rate"), std::string::npos);
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("--label"), std::string::npos);
  EXPECT_NE(help.find("--verbose"), std::string::npos);
}

TEST(CliFlags, WrongTypeAccessThrows) {
  CliFlags flags = standard_flags();
  parse(flags, {});
  EXPECT_THROW(static_cast<void>(flags.get_double("count")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(flags.get_bool("rate")), std::invalid_argument);
}

TEST(CliFlags, DuplicateDeclarationThrows) {
  CliFlags flags("p", "d");
  flags.add_double("x", 0, "first");
  EXPECT_THROW(flags.add_string("x", "", "second"), std::invalid_argument);
}

CliFlags constrained_flags() {
  CliFlags flags("p", "d");
  flags.add_probability("loss", 0.0, "message loss probability");
  flags.add_duration("timeout", 1.0, "retransmit timeout");
  return flags;
}

TEST(CliFlags, ProbabilityAcceptsTheFullClosedRange) {
  for (const char* value : {"0", "0.5", "1", "1.0"}) {
    CliFlags flags = constrained_flags();
    parse(flags, {"--loss", value});
    EXPECT_GE(flags.get_double("loss"), 0.0);
    EXPECT_LE(flags.get_double("loss"), 1.0);
  }
}

TEST(CliFlags, ProbabilityRejectsOutOfRangeValues) {
  for (const char* value : {"-0.1", "1.01", "2", "-1", "nan"}) {
    CliFlags flags = constrained_flags();
    EXPECT_THROW(parse(flags, {"--loss", value}), std::invalid_argument) << value;
  }
}

TEST(CliFlags, ProbabilityErrorNamesTheExpectedRange) {
  CliFlags flags = constrained_flags();
  try {
    parse(flags, {"--loss=1.5"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("--loss"), std::string::npos);
    EXPECT_NE(message.find("[0,1]"), std::string::npos);
    EXPECT_NE(message.find("1.5"), std::string::npos);
  }
}

TEST(CliFlags, DurationRejectsNegativeValues) {
  for (const char* value : {"-1", "-0.001", "nan"}) {
    CliFlags flags = constrained_flags();
    EXPECT_THROW(parse(flags, {"--timeout", value}), std::invalid_argument) << value;
  }
  CliFlags flags = constrained_flags();
  try {
    parse(flags, {"--timeout=-3"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("--timeout"), std::string::npos);
    EXPECT_NE(message.find("non-negative"), std::string::npos);
  }
}

TEST(CliFlags, DurationAcceptsZeroAndPositive) {
  CliFlags flags = constrained_flags();
  parse(flags, {"--timeout=0", "--loss=0.25"});
  EXPECT_DOUBLE_EQ(flags.get_double("timeout"), 0.0);
  EXPECT_DOUBLE_EQ(flags.get_double("loss"), 0.25);
}

TEST(CliFlags, ConstrainedDefaultsAreValidated) {
  CliFlags flags("p", "d");
  EXPECT_THROW(flags.add_probability("bad", 1.5, "oops"), std::invalid_argument);
  EXPECT_THROW(flags.add_duration("worse", -1.0, "oops"), std::invalid_argument);
}

TEST(CliFlags, ConstrainedHelpShowsTheRange) {
  const CliFlags flags = constrained_flags();
  const std::string help = flags.help_text();
  EXPECT_NE(help.find("[0,1]"), std::string::npos);
  EXPECT_NE(help.find(">= 0"), std::string::npos);
}

}  // namespace
}  // namespace anyqos::util
