#include "src/util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace anyqos::util {
namespace {

TEST(TablePrinter, RendersHeaderAndRows) {
  TablePrinter table({"lambda", "AP"});
  table.add_row({"5", "1.000"});
  table.add_row({"20", "0.834"});
  const std::string text = table.to_text();
  EXPECT_NE(text.find("lambda"), std::string::npos);
  EXPECT_NE(text.find("0.834"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.column_count(), 2u);
}

TEST(TablePrinter, ColumnsAreAligned) {
  TablePrinter table({"a", "long-header"});
  table.add_row({"wide-value", "x"});
  const std::string text = table.to_text();
  // Every line must be equally long (trailing padding keeps columns square).
  std::istringstream lines(text);
  std::string first;
  std::getline(lines, first);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.size(), first.size());
  }
}

TEST(TablePrinter, RowWidthMismatchThrows) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TablePrinter, EmptyHeaderThrows) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinter, NumericRowFormatting) {
  TablePrinter table({"x", "y"});
  table.add_numeric_row({1.23456, 2.0}, 3);
  const std::string text = table.to_text();
  EXPECT_NE(text.find("1.235"), std::string::npos);
  EXPECT_NE(text.find("2.000"), std::string::npos);
}

TEST(TablePrinter, CsvBasic) {
  TablePrinter table({"a", "b"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.to_csv(), "a,b\n1,2\n");
}

TEST(TablePrinter, CsvEscapesCommasAndQuotes) {
  TablePrinter table({"name"});
  table.add_row({"a,b"});
  table.add_row({"say \"hi\""});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TablePrinter, PrintWritesToStream) {
  TablePrinter table({"h"});
  table.add_row({"v"});
  std::ostringstream out;
  table.print(out);
  EXPECT_EQ(out.str(), table.to_text());
}

}  // namespace
}  // namespace anyqos::util
