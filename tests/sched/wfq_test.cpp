#include "src/sched/wfq.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/core/qos.h"
#include "src/des/random.h"

namespace anyqos::sched {
namespace {

TEST(RateScheduler, Validation) {
  EXPECT_THROW(RateScheduler(SchedulerKind::kWfq, 0.0), std::invalid_argument);
  RateScheduler sched(SchedulerKind::kWfq, 1'000.0);
  EXPECT_THROW(sched.add_flow(0.0), std::invalid_argument);
  const FlowHandle f = sched.add_flow(600.0);
  EXPECT_THROW(sched.add_flow(600.0), std::invalid_argument);  // over capacity
  EXPECT_THROW(sched.enqueue(9, 100.0, 0.0), std::invalid_argument);
  sched.enqueue(f, 100.0, 5.0);
  EXPECT_THROW(sched.enqueue(f, 100.0, 4.0), std::invalid_argument);  // time goes back
  (void)sched.drain();
  EXPECT_THROW(sched.drain(), std::invalid_argument);  // single-shot
}

TEST(RateScheduler, SinglePacketTransmitsImmediately) {
  for (const SchedulerKind kind : {SchedulerKind::kWfq, SchedulerKind::kVirtualClock}) {
    RateScheduler sched(kind, 1'000.0);
    const FlowHandle f = sched.add_flow(500.0);
    sched.enqueue(f, 100.0, 2.0);
    const auto departures = sched.drain();
    ASSERT_EQ(departures.size(), 1u);
    EXPECT_DOUBLE_EQ(departures[0].start_time, 2.0);
    EXPECT_DOUBLE_EQ(departures[0].finish_time, 2.0 + 100.0 / 1'000.0);
  }
}

TEST(RateScheduler, WorkConservingAcrossIdleGaps) {
  RateScheduler sched(SchedulerKind::kWfq, 1'000.0);
  const FlowHandle f = sched.add_flow(1'000.0);
  sched.enqueue(f, 500.0, 0.0);   // busy 0..0.5
  sched.enqueue(f, 500.0, 10.0);  // idle gap, then busy 10..10.5
  const auto departures = sched.drain();
  ASSERT_EQ(departures.size(), 2u);
  EXPECT_DOUBLE_EQ(departures[0].finish_time, 0.5);
  EXPECT_DOUBLE_EQ(departures[1].start_time, 10.0);
}

TEST(RateScheduler, FifoWithinAFlow) {
  RateScheduler sched(SchedulerKind::kWfq, 1'000.0);
  const FlowHandle f = sched.add_flow(1'000.0);
  for (int i = 0; i < 10; ++i) {
    sched.enqueue(f, 100.0, 0.0);
  }
  const auto departures = sched.drain();
  ASSERT_EQ(departures.size(), 10u);
  for (std::size_t i = 1; i < departures.size(); ++i) {
    EXPECT_LT(departures[i - 1].packet.sequence, departures[i].packet.sequence);
  }
}

TEST(RateScheduler, GreedyFlowsShareInProportionToRates) {
  // Two permanently backlogged flows with rates 3:1 must receive service in
  // ~3:1 proportion under both schedulers.
  for (const SchedulerKind kind : {SchedulerKind::kWfq, SchedulerKind::kVirtualClock}) {
    RateScheduler sched(kind, 4'000.0);
    const FlowHandle heavy = sched.add_flow(3'000.0);
    const FlowHandle light = sched.add_flow(1'000.0);
    // Both dump their whole burst at t = 0.
    for (int i = 0; i < 400; ++i) {
      sched.enqueue(heavy, 1'000.0, 0.0);
      sched.enqueue(light, 1'000.0, 0.0);
    }
    const auto departures = sched.drain();
    // Look at the first half of the schedule (both still backlogged).
    std::map<FlowHandle, int> served;
    for (std::size_t i = 0; i < departures.size() / 2; ++i) {
      ++served[departures[i].packet.flow];
    }
    const double ratio = static_cast<double>(served[heavy]) /
                         static_cast<double>(std::max(served[light], 1));
    EXPECT_NEAR(ratio, 3.0, 0.35) << "kind=" << static_cast<int>(kind);
  }
}

TEST(RateScheduler, ConformingFlowMeetsWfqDelayBoundUnderAttack) {
  // The Section-6 guarantee: a flow sending within its reserved rate keeps
  // its delay bound no matter how the competing flows misbehave.
  RateScheduler sched(SchedulerKind::kWfq, 10'000.0);
  const double reserved = 2'000.0;
  const double packet_bits = 400.0;
  const FlowHandle good = sched.add_flow(reserved);
  const FlowHandle attacker = sched.add_flow(8'000.0);

  // Attacker floods; the conforming flow sends exactly at its rate.
  des::RandomStream rng(4);
  double attack_t = 0.0;
  double good_t = 0.05;
  std::vector<std::pair<double, FlowHandle>> arrivals;
  while (attack_t < 20.0) {
    arrivals.emplace_back(attack_t, attacker);
    attack_t += 1'000.0 / 8'000.0 * 0.25;  // 4x its reserved rate
  }
  while (good_t < 20.0) {
    arrivals.emplace_back(good_t, good);
    good_t += packet_bits / reserved;  // exactly conforming
  }
  std::sort(arrivals.begin(), arrivals.end());
  for (const auto& [t, flow] : arrivals) {
    sched.enqueue(flow, flow == good ? packet_bits : 1'000.0, t);
  }

  const auto departures = sched.drain();
  double worst = 0.0;
  for (const Departure& d : departures) {
    if (d.packet.flow == good) {
      worst = std::max(worst, d.delay());
    }
  }
  // Single-hop PGPS bound: L/r + Lmax/C.
  core::SchedulerModel model;
  model.max_packet_bits = packet_bits;
  model.per_hop_latency_s = 0.0;
  const double bound =
      core::wfq_delay_bound(reserved, 1, model) + 1'000.0 / 10'000.0;
  EXPECT_LE(worst, bound + 1e-9);
  EXPECT_GT(worst, 0.0);
}

TEST(RateScheduler, VirtualClockAlsoProtectsConformingFlow) {
  RateScheduler sched(SchedulerKind::kVirtualClock, 10'000.0);
  const double reserved = 2'000.0;
  const double packet_bits = 400.0;
  const FlowHandle good = sched.add_flow(reserved);
  const FlowHandle attacker = sched.add_flow(8'000.0);
  std::vector<std::pair<double, FlowHandle>> arrivals;
  for (double t = 0.0; t < 20.0; t += 0.03125) {
    arrivals.emplace_back(t, attacker);
  }
  for (double t = 0.05; t < 20.0; t += packet_bits / reserved) {
    arrivals.emplace_back(t, good);
  }
  std::sort(arrivals.begin(), arrivals.end());
  for (const auto& [t, flow] : arrivals) {
    sched.enqueue(flow, flow == good ? packet_bits : 1'000.0, t);
  }
  const auto departures = sched.drain();
  double worst = 0.0;
  for (const Departure& d : departures) {
    if (d.packet.flow == good) {
      worst = std::max(worst, d.delay());
    }
  }
  const double bound = packet_bits / reserved + 1'000.0 / 10'000.0;
  EXPECT_LE(worst, bound + 1e-9);
}

TEST(RateScheduler, DrainOutputIsTimeOrderedAndComplete) {
  RateScheduler sched(SchedulerKind::kWfq, 5'000.0);
  const FlowHandle a = sched.add_flow(2'000.0);
  const FlowHandle b = sched.add_flow(3'000.0);
  des::RandomStream rng(9);
  double t = 0.0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    t += rng.exponential(0.01);
    sched.enqueue(rng.bernoulli(0.5) ? a : b, rng.uniform(100.0, 1'500.0), t);
  }
  EXPECT_EQ(sched.backlog(), static_cast<std::size_t>(n));
  const auto departures = sched.drain();
  ASSERT_EQ(departures.size(), static_cast<std::size_t>(n));
  for (std::size_t i = 1; i < departures.size(); ++i) {
    EXPECT_GE(departures[i].start_time, departures[i - 1].finish_time - 1e-12);
  }
  for (const Departure& d : departures) {
    EXPECT_GE(d.start_time, d.packet.arrival_time);  // causality
  }
}

// Property sweep: the delay bound holds across reservation levels.
class WfqBoundSweep : public ::testing::TestWithParam<double> {};

TEST_P(WfqBoundSweep, ConformingDelayWithinBound) {
  const double reserved_fraction = GetParam();
  const double link = 10'000.0;
  const double reserved = reserved_fraction * link;
  RateScheduler sched(SchedulerKind::kWfq, link);
  const double packet_bits = 500.0;
  const FlowHandle good = sched.add_flow(reserved);
  FlowHandle cross = 0;
  const double cross_rate = link - reserved;
  const bool has_cross = cross_rate > 0.0;
  if (has_cross) {
    cross = sched.add_flow(cross_rate);
  }
  std::vector<std::pair<double, FlowHandle>> arrivals;
  for (double t = 0.01; t < 30.0; t += packet_bits / reserved) {
    arrivals.emplace_back(t, good);
  }
  if (has_cross) {
    for (double t = 0.0; t < 30.0; t += 1'000.0 / cross_rate * 0.5) {  // 2x greedy
      arrivals.emplace_back(t, cross);
    }
  }
  std::sort(arrivals.begin(), arrivals.end());
  for (const auto& [t, flow] : arrivals) {
    sched.enqueue(flow, flow == good ? packet_bits : 1'000.0, t);
  }
  double worst = 0.0;
  for (const Departure& d : sched.drain()) {
    if (d.packet.flow == good) {
      worst = std::max(worst, d.delay());
    }
  }
  const double bound = packet_bits / reserved + 1'000.0 / link;
  EXPECT_LE(worst, bound + 1e-9) << "fraction=" << reserved_fraction;
}

INSTANTIATE_TEST_SUITE_P(ReservedFractions, WfqBoundSweep,
                         ::testing::Values(0.1, 0.2, 0.5, 0.8, 1.0));

}  // namespace
}  // namespace anyqos::sched
