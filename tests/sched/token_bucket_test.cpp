#include "src/sched/token_bucket.h"

#include <gtest/gtest.h>

#include "src/sched/wfq.h"

namespace anyqos::sched {
namespace {

TEST(TokenBucket, StartsFullAndRefills) {
  TokenBucket bucket(1'000.0, 500.0);
  EXPECT_DOUBLE_EQ(bucket.tokens_at(0.0), 500.0);
  EXPECT_TRUE(bucket.police(0.0, 500.0));
  EXPECT_DOUBLE_EQ(bucket.tokens_at(0.0), 0.0);
  // Refills at 1000 bits/s, capped at depth.
  EXPECT_DOUBLE_EQ(bucket.tokens_at(0.25), 250.0);
  EXPECT_DOUBLE_EQ(bucket.tokens_at(10.0), 500.0);
}

TEST(TokenBucket, PolicingDropsNonConformingWithoutConsuming) {
  TokenBucket bucket(1'000.0, 300.0);
  EXPECT_TRUE(bucket.police(0.0, 200.0));   // 100 left
  EXPECT_FALSE(bucket.police(0.0, 200.0));  // non-conforming
  EXPECT_DOUBLE_EQ(bucket.tokens_at(0.0), 100.0);  // untouched by the drop
  EXPECT_TRUE(bucket.police(0.1, 200.0));   // 100 + 100 refilled
}

TEST(TokenBucket, ConformsMatchesPoliceOutcome) {
  TokenBucket bucket(500.0, 400.0);
  EXPECT_TRUE(bucket.conforms(0.0, 400.0));
  EXPECT_FALSE(bucket.conforms(0.0, 401.0));
  EXPECT_TRUE(bucket.police(0.0, 400.0));
  EXPECT_FALSE(bucket.conforms(0.0, 1.0));
  EXPECT_TRUE(bucket.conforms(1.0, 400.0));  // refilled to the depth cap
}

TEST(TokenBucket, ShapeReleasesAtEarliestConformingInstant) {
  TokenBucket bucket(1'000.0, 200.0);
  EXPECT_DOUBLE_EQ(bucket.shape(0.0, 200.0), 0.0);   // bucket full
  // Next 200-bit packet must wait for a full refill: 0.2 s.
  EXPECT_DOUBLE_EQ(bucket.shape(0.0, 200.0), 0.2);
  EXPECT_DOUBLE_EQ(bucket.shape(0.2, 100.0), 0.3);
}

TEST(TokenBucket, LongRunShapedRateApproachesTokenRate) {
  TokenBucket bucket(2'000.0, 1'000.0);
  double t = 0.0;
  const int packets = 1'000;
  for (int i = 0; i < packets; ++i) {
    t = bucket.shape(t, 500.0);
  }
  // 1000 * 500 bits at 2000 bit/s ~ 250 s (minus the initial burst credit).
  EXPECT_NEAR(t, 500.0 * packets / 2'000.0, 1.0);
}

TEST(TokenBucket, OversizedPacketRejected) {
  TokenBucket bucket(1'000.0, 100.0);
  EXPECT_THROW(bucket.shape(0.0, 101.0), std::invalid_argument);
  EXPECT_FALSE(bucket.conforms(100.0, 101.0));
}

TEST(TokenBucket, TimeMonotonicityEnforced) {
  TokenBucket bucket(1'000.0, 100.0);
  EXPECT_TRUE(bucket.police(5.0, 50.0));
  EXPECT_THROW(bucket.police(4.0, 10.0), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(bucket.tokens_at(4.0)), std::invalid_argument);
}

TEST(TokenBucket, Validation) {
  EXPECT_THROW(TokenBucket(0.0, 100.0), std::invalid_argument);
  EXPECT_THROW(TokenBucket(100.0, 0.0), std::invalid_argument);
  TokenBucket bucket(100.0, 100.0);
  EXPECT_THROW(bucket.police(0.0, 0.0), std::invalid_argument);
}

TEST(TokenBucket, ShapedFlowConformsThroughWfq) {
  // End-to-end IntServ story: a greedy flow shaped by its TSpec bucket then
  // scheduled by WFQ at its reserved rate keeps the b/r + L/r delay bound.
  const double rate = 2'000.0;
  const double depth = 800.0;
  const double packet = 400.0;
  TokenBucket shaper(rate, depth);
  RateScheduler scheduler(SchedulerKind::kWfq, 10'000.0);
  const FlowHandle shaped = scheduler.add_flow(rate);
  const FlowHandle cross = scheduler.add_flow(8'000.0);

  std::vector<std::pair<double, FlowHandle>> arrivals;
  // Greedy source: wants to send every 0.05 s; the shaper queues and spaces
  // its packets (each is offered at max(its own time, previous release)).
  double t = 0.0;
  double shaper_free = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double release = shaper.shape(std::max(t, shaper_free), packet);
    shaper_free = release;
    arrivals.emplace_back(release, shaped);
    t += 0.05;
  }
  for (double ct = 0.0; ct < 12.0; ct += 0.0625) {  // 2x greedy cross traffic
    arrivals.emplace_back(ct, cross);
  }
  std::sort(arrivals.begin(), arrivals.end());
  for (const auto& [at, flow] : arrivals) {
    scheduler.enqueue(flow, flow == shaped ? packet : 1'000.0, at);
  }
  double worst = 0.0;
  for (const Departure& d : scheduler.drain()) {
    if (d.packet.flow == shaped) {
      worst = std::max(worst, d.delay());
    }
  }
  // Shaped (b,r) flow through a rate-r WFQ server: delay <= b/r + Lmax/C.
  EXPECT_LE(worst, depth / rate + 1'000.0 / 10'000.0 + 1e-9);
}

}  // namespace
}  // namespace anyqos::sched
