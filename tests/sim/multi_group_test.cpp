#include "src/sim/multi_group.h"

#include <gtest/gtest.h>

#include "src/net/topologies.h"

namespace anyqos::sim {
namespace {

MultiGroupConfig base_config(double lambda) {
  MultiGroupConfig config;
  config.total_arrival_rate = lambda;
  config.mean_holding_s = 60.0;
  config.sources = {1, 3, 5, 7, 9};
  config.anycast_share = 0.2;
  config.warmup_s = 200.0;
  config.measure_s = 1'000.0;
  config.seed = 17;
  return config;
}

GroupSpec group(std::string address, std::vector<net::NodeId> members, double share) {
  GroupSpec spec;
  spec.address = std::move(address);
  spec.members = std::move(members);
  spec.rate_share = share;
  return spec;
}

TEST(MultiGroup, SingleGroupBehavesLikeBasicSimulation) {
  const net::Topology topo = net::topologies::mci_backbone();
  MultiGroupConfig config = base_config(10.0);
  config.groups.push_back(group("svc", {0, 4, 8, 12, 16}, 1.0));
  MultiGroupSimulation sim(topo, config);
  const MultiGroupResult result = sim.run();
  ASSERT_EQ(result.groups.size(), 1u);
  EXPECT_GT(result.groups[0].offered, 1'000u);
  EXPECT_GT(result.aggregate_admission_probability, 0.99);  // light load
}

TEST(MultiGroup, SharesSplitTraffic) {
  const net::Topology topo = net::topologies::mci_backbone();
  MultiGroupConfig config = base_config(20.0);
  config.groups.push_back(group("big", {0, 4, 8}, 3.0));
  config.groups.push_back(group("small", {12, 16}, 1.0));
  MultiGroupSimulation sim(topo, config);
  const MultiGroupResult result = sim.run();
  ASSERT_EQ(result.groups.size(), 2u);
  const double ratio = static_cast<double>(result.groups[0].offered) /
                       static_cast<double>(result.groups[1].offered);
  EXPECT_NEAR(ratio, 3.0, 0.3);
}

TEST(MultiGroup, GroupsContendForSharedLinks) {
  // A group alone admits more than the same group sharing the network with a
  // second heavy group.
  const net::Topology topo = net::topologies::mci_backbone();
  MultiGroupConfig alone = base_config(40.0);
  alone.groups.push_back(group("svc", {0, 4, 8, 12, 16}, 1.0));
  MultiGroupSimulation sim_alone(topo, alone);
  const double ap_alone = sim_alone.run().groups[0].admission_probability;

  MultiGroupConfig shared = base_config(80.0);  // same svc rate + equal competitor
  shared.groups.push_back(group("svc", {0, 4, 8, 12, 16}, 1.0));
  shared.groups.push_back(group("rival", {2, 10, 18}, 1.0));
  MultiGroupSimulation sim_shared(topo, shared);
  const MultiGroupResult result = sim_shared.run();
  const double ap_shared = result.groups[0].admission_probability;
  EXPECT_LT(ap_shared, ap_alone - 0.02);
}

TEST(MultiGroup, PerGroupAlgorithmsApply) {
  const net::Topology topo = net::topologies::mci_backbone();
  MultiGroupConfig config = base_config(60.0);
  GroupSpec ed = group("ed", {0, 4, 8, 12, 16}, 1.0);
  ed.algorithm = core::SelectionAlgorithm::kEvenDistribution;
  GroupSpec wdb = group("wdb", {0, 4, 8, 12, 16}, 1.0);
  wdb.algorithm = core::SelectionAlgorithm::kDistanceBandwidth;
  config.groups = {ed, wdb};
  MultiGroupSimulation sim(topo, config);
  const MultiGroupResult result = sim.run();
  // Identical members/demand: the informed selector needs fewer tries.
  EXPECT_LT(result.groups[1].average_attempts, result.groups[0].average_attempts + 1e-9);
}

TEST(MultiGroup, HeterogeneousBandwidths) {
  const net::Topology topo = net::topologies::mci_backbone();
  MultiGroupConfig config = base_config(30.0);
  GroupSpec thin = group("thin", {0, 8, 16}, 1.0);
  thin.flow_bandwidth_bps = 64'000.0;
  GroupSpec fat = group("fat", {4, 12}, 1.0);
  fat.flow_bandwidth_bps = 1'000'000.0;  // 1 Mbit flows block much earlier
  config.groups = {thin, fat};
  MultiGroupSimulation sim(topo, config);
  const MultiGroupResult result = sim.run();
  EXPECT_LT(result.groups[1].admission_probability,
            result.groups[0].admission_probability);
  EXPECT_GT(result.mean_link_utilization, 0.0);
}

TEST(MultiGroup, AggregateIsOfferWeighted) {
  const net::Topology topo = net::topologies::mci_backbone();
  MultiGroupConfig config = base_config(30.0);
  config.groups.push_back(group("a", {0, 4, 8, 12, 16}, 1.0));
  config.groups.push_back(group("b", {2, 10, 18}, 1.0));
  MultiGroupSimulation sim(topo, config);
  const MultiGroupResult result = sim.run();
  const double expected =
      (static_cast<double>(result.groups[0].admitted) +
       static_cast<double>(result.groups[1].admitted)) /
      (static_cast<double>(result.groups[0].offered) +
       static_cast<double>(result.groups[1].offered));
  EXPECT_NEAR(result.aggregate_admission_probability, expected, 1e-12);
}

TEST(MultiGroup, Validation) {
  const net::Topology topo = net::topologies::mci_backbone();
  MultiGroupConfig config = base_config(10.0);
  EXPECT_THROW(MultiGroupSimulation(topo, config), std::invalid_argument);  // no groups
  config.groups.push_back(group("svc", {0}, 0.0));  // zero share
  EXPECT_THROW(MultiGroupSimulation(topo, config), std::invalid_argument);
  config.groups[0].rate_share = 1.0;
  config.total_arrival_rate = 0.0;
  EXPECT_THROW(MultiGroupSimulation(topo, config), std::invalid_argument);
}

TEST(MultiGroup, RunsOnce) {
  const net::Topology topo = net::topologies::ring(5);
  MultiGroupConfig config = base_config(2.0);
  config.sources = {1, 2};
  config.groups.push_back(group("svc", {0}, 1.0));
  MultiGroupSimulation sim(topo, config);
  (void)sim.run();
  EXPECT_THROW(sim.run(), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::sim
