#include "src/sim/churn.h"

#include <gtest/gtest.h>

#include "src/net/topologies.h"
#include "src/sim/simulation.h"

namespace anyqos::sim {
namespace {

TEST(SingleChurn, BuildsValidatedEvent) {
  const MemberChurnEvent event = single_churn(2, 10.0, 40.0);
  EXPECT_EQ(event.member_index, 2u);
  EXPECT_DOUBLE_EQ(event.down_at, 10.0);
  EXPECT_DOUBLE_EQ(event.up_at, 40.0);
  EXPECT_THROW(single_churn(0, 40.0, 10.0), std::invalid_argument);
  EXPECT_THROW(single_churn(0, 10.0, 10.0), std::invalid_argument);
  EXPECT_THROW(single_churn(0, -1.0, 10.0), std::invalid_argument);
}

TEST(RandomChurnSchedule, DeterministicAndOrdered) {
  const auto a = random_churn_schedule(4, 10'000.0, 1e-3, 200.0, 17);
  const auto b = random_churn_schedule(4, 10'000.0, 1e-3, 200.0, 17);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].member_index, b[i].member_index);
    EXPECT_DOUBLE_EQ(a[i].down_at, b[i].down_at);
    EXPECT_DOUBLE_EQ(a[i].up_at, b[i].up_at);
  }
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a[i - 1].down_at, a[i].down_at);
  }
}

TEST(RandomChurnSchedule, PerMemberOutagesNeverOverlap) {
  const auto schedule = random_churn_schedule(3, 50'000.0, 5e-3, 500.0, 9);
  EXPECT_FALSE(schedule.empty());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    for (std::size_t j = i + 1; j < schedule.size(); ++j) {
      if (schedule[i].member_index != schedule[j].member_index) {
        continue;
      }
      const bool disjoint = schedule[j].down_at >= schedule[i].up_at ||
                            schedule[i].down_at >= schedule[j].up_at;
      EXPECT_TRUE(disjoint);
    }
  }
}

TEST(RandomChurnSchedule, EventsStayWithinBounds) {
  const double horizon = 10'000.0;
  const double mean_downtime = 300.0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    for (const MemberChurnEvent& event : random_churn_schedule(5, horizon, 2e-3,
                                                               mean_downtime, seed)) {
      EXPECT_LT(event.member_index, 5u);
      EXPECT_GE(event.down_at, 0.0);
      EXPECT_LT(event.down_at, horizon);
      EXPECT_GT(event.up_at, event.down_at);
      EXPECT_LE(event.up_at, horizon + mean_downtime);
    }
  }
}

TEST(RandomChurnSchedule, ZeroRateOrHorizonYieldsEmptySchedule) {
  EXPECT_TRUE(random_churn_schedule(3, 0.0, 1e-3, 100.0, 1).empty());
  EXPECT_TRUE(random_churn_schedule(3, 100.0, 0.0, 100.0, 1).empty());
  EXPECT_TRUE(random_churn_schedule(3, 0.0, 0.0, 0.0, 1).empty());
}

TEST(RandomChurnSchedule, ValidatesParameters) {
  EXPECT_THROW(random_churn_schedule(0, 100.0, 1e-3, 100.0, 1), std::invalid_argument);
  EXPECT_THROW(random_churn_schedule(3, -1.0, 1e-3, 100.0, 1), std::invalid_argument);
  EXPECT_THROW(random_churn_schedule(3, 100.0, -1.0, 100.0, 1), std::invalid_argument);
  EXPECT_THROW(random_churn_schedule(3, 100.0, 1e-3, 0.0, 1), std::invalid_argument);
}

// --- End-to-end churn in the simulation -----------------------------------

SimulationConfig churn_config() {
  SimulationConfig config;
  config.traffic.arrival_rate = 5.0;
  config.traffic.mean_holding_s = 30.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {1, 2, 5};
  config.group_members = {0, 3};
  config.warmup_s = 100.0;
  config.measure_s = 500.0;
  config.seed = 21;
  return config;
}

TEST(ChurnedSimulation, OutageDropsFlowsAndFailsThemOver) {
  const net::Topology topo = net::topologies::ring(6);
  SimulationConfig config = churn_config();
  config.churn.push_back(single_churn(0, 300.0, 400.0));
  MemoryTraceSink trace;
  config.trace = &trace;
  Simulation sim(topo, config);
  const SimulationResult result = sim.run();

  EXPECT_GT(result.dropped_by_churn, 0u);
  EXPECT_EQ(result.dropped, result.dropped_by_churn);  // no link faults here
  // Every displaced flow gets exactly one failover attempt, and with only
  // light load on the surviving member most are re-admitted.
  EXPECT_EQ(result.failover_attempts, result.dropped_by_churn);
  EXPECT_GT(result.failover_admitted, 0u);
  EXPECT_LE(result.failover_admitted, result.failover_attempts);

  bool saw_down = false;
  bool saw_up = false;
  bool saw_failover = false;
  for (const TraceEvent& event : trace.events()) {
    if (event.kind == TraceEventKind::kMemberDown) {
      saw_down = true;
      EXPECT_DOUBLE_EQ(event.time, 300.0);
    }
    if (event.kind == TraceEventKind::kMemberUp) {
      saw_up = true;
      EXPECT_DOUBLE_EQ(event.time, 400.0);
    }
    if (event.kind == TraceEventKind::kFailover) {
      saw_failover = true;
    }
  }
  EXPECT_TRUE(saw_down);
  EXPECT_TRUE(saw_up);
  EXPECT_TRUE(saw_failover);
}

TEST(ChurnedSimulation, DownMemberReceivesNoAdmissions) {
  // Member 0 is down for the whole measurement window: every admission in
  // the window must land on member 3 (group index 1).
  const net::Topology topo = net::topologies::ring(6);
  SimulationConfig config = churn_config();
  config.churn.push_back(single_churn(0, 90.0, 650.0));
  Simulation sim(topo, config);
  const SimulationResult result = sim.run();
  ASSERT_EQ(result.per_destination_admissions.size(), 2u);
  EXPECT_EQ(result.per_destination_admissions[0], 0u);
  EXPECT_GT(result.per_destination_admissions[1], 0u);
  EXPECT_GT(result.admission_probability, 0.9);  // one member suffices here
}

TEST(ChurnedSimulation, FailoverCanBeDisabled) {
  const net::Topology topo = net::topologies::ring(6);
  SimulationConfig config = churn_config();
  config.churn.push_back(single_churn(0, 300.0, 400.0));
  config.failover_readmit = false;
  Simulation sim(topo, config);
  const SimulationResult result = sim.run();
  EXPECT_GT(result.dropped_by_churn, 0u);
  EXPECT_EQ(result.failover_attempts, 0u);
  EXPECT_EQ(result.failover_admitted, 0u);
}

TEST(ChurnedSimulation, AllMembersDownRejectsWithoutAttempts) {
  // During the joint outage there is nobody to try: requests are rejected
  // with zero destination attempts, so AP drops but attempt counts stay sane.
  const net::Topology topo = net::topologies::ring(6);
  SimulationConfig config = churn_config();
  config.churn.push_back(single_churn(0, 200.0, 500.0));
  config.churn.push_back(single_churn(1, 200.0, 500.0));
  config.failover_readmit = false;
  Simulation sim(topo, config);
  const SimulationResult result = sim.run();
  EXPECT_LT(result.admission_probability, 0.9);
  EXPECT_GT(result.admission_probability, 0.0);
  EXPECT_GT(result.dropped_by_churn, 0u);
}

TEST(ChurnedSimulation, SameSeedIsFullyReproducible) {
  const net::Topology topo = net::topologies::ring(6);
  SimulationConfig config = churn_config();
  config.churn = random_churn_schedule(config.group_members.size(), 600.0, 2e-3, 100.0, 4);
  Simulation a(topo, config);
  Simulation b(topo, config);
  const SimulationResult ra = a.run();
  const SimulationResult rb = b.run();
  EXPECT_EQ(ra.offered, rb.offered);
  EXPECT_EQ(ra.admitted, rb.admitted);
  EXPECT_EQ(ra.dropped_by_churn, rb.dropped_by_churn);
  EXPECT_EQ(ra.failover_admitted, rb.failover_admitted);
  EXPECT_EQ(ra.messages.total(), rb.messages.total());
}

TEST(ChurnedSimulation, ChurnEventsAreValidatedAgainstTheGroup) {
  const net::Topology topo = net::topologies::ring(6);
  SimulationConfig config = churn_config();
  MemberChurnEvent bad;  // bypass single_churn on purpose: up_at <= down_at
  bad.member_index = 0;
  bad.down_at = 10.0;
  bad.up_at = 5.0;
  config.churn.push_back(bad);
  EXPECT_THROW(Simulation(topo, config), std::invalid_argument);

  config.churn.clear();
  config.churn.push_back(single_churn(2, 10.0, 20.0));  // only 2 members
  EXPECT_THROW(Simulation(topo, config), std::invalid_argument);
}

TEST(ChurnedSimulation, ChurnAndResilienceAreDacOnly) {
  const net::Topology topo = net::topologies::ring(6);
  SimulationConfig config = churn_config();
  config.churn.push_back(single_churn(0, 300.0, 400.0));
  config.use_gdi = true;
  EXPECT_THROW(Simulation(topo, config), std::invalid_argument);

  config = churn_config();
  config.resilience = signaling::ResilienceOptions{};
  config.use_centralized = true;
  EXPECT_THROW(Simulation(topo, config), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::sim
