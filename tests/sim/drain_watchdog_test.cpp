// Drain watchdog: caps on the drain-to-quiescence tail so a drain that never
// empties (a bug once arrivals stop) surfaces as a diagnosable trip report
// instead of a hung process, while capped drains that complete stay
// byte-identical to unbounded ones.
#include <gtest/gtest.h>

#include "src/net/topologies.h"
#include "src/sim/simulation.h"

namespace anyqos::sim {
namespace {

/// Tiny overloaded cell whose flows outlive the window by orders of
/// magnitude: at the end of measurement ~every admitted flow still holds
/// bandwidth, so an uncapped drain would run another ~10^4 simulated
/// seconds before quiescing.
SimulationConfig sticky_config() {
  SimulationConfig config;
  config.traffic.arrival_rate = 2.0;
  config.traffic.mean_holding_s = 10'000.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {2};
  config.group_members = {0};
  config.warmup_s = 0.0;
  config.measure_s = 50.0;
  config.seed = 11;
  config.drain_to_quiescence = true;
  return config;
}

TEST(DrainWatchdog, SimTimeCapTripsWithDiagnostics) {
  const net::Topology topo = net::topologies::ring(5);
  SimulationConfig config = sticky_config();
  config.drain_max_sim_s = 20.0;
  Simulation sim(topo, config);
  (void)sim.run();
  const DrainWatchdogReport& report = sim.drain_watchdog();
  ASSERT_TRUE(report.tripped);
  EXPECT_EQ(report.reason, "sim-time cap reached");
  EXPECT_GT(report.pending_events, 0U);
  EXPECT_GT(report.active_flows, 0U);
  // The drain stops exactly drain_max_sim_s past the measurement window.
  EXPECT_DOUBLE_EQ(report.sim_time_s, 70.0);
}

TEST(DrainWatchdog, EventBudgetTrips) {
  const net::Topology topo = net::topologies::ring(5);
  SimulationConfig config = sticky_config();
  config.drain_max_events = 1;
  Simulation sim(topo, config);
  (void)sim.run();
  const DrainWatchdogReport& report = sim.drain_watchdog();
  ASSERT_TRUE(report.tripped);
  EXPECT_EQ(report.reason, "event budget exhausted");
  EXPECT_EQ(report.drained_events, 1U);
  EXPECT_GT(report.pending_events, 0U);
}

TEST(DrainWatchdog, GenerousCapsNeverTripAndMatchUnbounded) {
  const net::Topology topo = net::topologies::ring(5);
  SimulationConfig capped_config = sticky_config();
  capped_config.drain_max_events = 10'000'000;
  capped_config.drain_max_sim_s = 1.0e6;
  Simulation capped(topo, capped_config);
  const SimulationResult capped_result = capped.run();
  EXPECT_FALSE(capped.drain_watchdog().tripped);

  Simulation unbounded(topo, sticky_config());
  const SimulationResult unbounded_result = unbounded.run();
  EXPECT_EQ(capped_result.offered, unbounded_result.offered);
  EXPECT_EQ(capped_result.admitted, unbounded_result.admitted);
  EXPECT_EQ(capped_result.explicit_teardowns, unbounded_result.explicit_teardowns);
  EXPECT_DOUBLE_EQ(capped_result.admission_probability,
                   unbounded_result.admission_probability);
}

TEST(DrainWatchdog, NoDrainMeansNoTrip) {
  const net::Topology topo = net::topologies::ring(5);
  SimulationConfig config = sticky_config();
  config.drain_to_quiescence = false;
  config.drain_max_events = 1;  // caps are inert without a drain
  config.drain_max_sim_s = 0.001;
  Simulation sim(topo, config);
  (void)sim.run();
  EXPECT_FALSE(sim.drain_watchdog().tripped);
}

}  // namespace
}  // namespace anyqos::sim
