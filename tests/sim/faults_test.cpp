#include "src/sim/faults.h"

#include <gtest/gtest.h>

#include "src/net/topologies.h"
#include "src/sim/simulation.h"

namespace anyqos::sim {
namespace {

TEST(SingleFault, BuildsValidatedFault) {
  const LinkFault fault = single_fault(0, 1, 10.0, 20.0);
  EXPECT_EQ(fault.a, 0u);
  EXPECT_EQ(fault.b, 1u);
  EXPECT_DOUBLE_EQ(fault.fail_at, 10.0);
  EXPECT_DOUBLE_EQ(fault.repair_at, 20.0);
  EXPECT_THROW(single_fault(0, 1, 20.0, 10.0), std::invalid_argument);
  EXPECT_THROW(single_fault(0, 1, -1.0, 10.0), std::invalid_argument);
}

TEST(RandomFaultSchedule, DeterministicAndOrdered) {
  const net::Topology topo = net::topologies::ring(6);
  const auto a = random_fault_schedule(topo, 10'000.0, 1e-4, 100.0, 11);
  const auto b = random_fault_schedule(topo, 10'000.0, 1e-4, 100.0, 11);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].fail_at, b[i].fail_at);
  }
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a[i - 1].fail_at, a[i].fail_at);
  }
}

TEST(RandomFaultSchedule, NoOverlapPerLink) {
  const net::Topology topo = net::topologies::ring(6);
  const auto schedule = random_fault_schedule(topo, 100'000.0, 1e-3, 500.0, 3);
  EXPECT_FALSE(schedule.empty());
  // Group by link and check outages are disjoint.
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    for (std::size_t j = i + 1; j < schedule.size(); ++j) {
      if (schedule[i].a == schedule[j].a && schedule[i].b == schedule[j].b) {
        const bool disjoint = schedule[j].fail_at >= schedule[i].repair_at ||
                              schedule[i].fail_at >= schedule[j].repair_at;
        EXPECT_TRUE(disjoint);
      }
    }
  }
}

TEST(RandomFaultSchedule, ValidatesParameters) {
  const net::Topology topo = net::topologies::ring(6);
  EXPECT_THROW(random_fault_schedule(topo, -1.0, 1e-3, 100.0, 1), std::invalid_argument);
  EXPECT_THROW(random_fault_schedule(topo, 100.0, -1.0, 100.0, 1), std::invalid_argument);
  EXPECT_THROW(random_fault_schedule(topo, 100.0, 1e-3, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(random_fault_schedule(topo, 100.0, 1e-3, -5.0, 1), std::invalid_argument);
}

TEST(RandomFaultSchedule, ZeroRateOrHorizonYieldsEmptySchedule) {
  const net::Topology topo = net::topologies::ring(6);
  // Degenerate-but-valid corners: nothing can fail, so nothing does, and the
  // (unused) repair-time parameter is not validated.
  EXPECT_TRUE(random_fault_schedule(topo, 0.0, 1e-3, 100.0, 1).empty());
  EXPECT_TRUE(random_fault_schedule(topo, 100.0, 0.0, 100.0, 1).empty());
  EXPECT_TRUE(random_fault_schedule(topo, 0.0, 0.0, 0.0, 1).empty());
}

TEST(FaultedSimulation, DropsFlowsAndRecovers) {
  // Line 0-1-2: member at 2, source at 0. Failing link 1-2 mid-run drops the
  // flows crossing it and blocks admission until repair.
  const net::Topology topo = net::topologies::line(3);
  SimulationConfig config;
  config.traffic.arrival_rate = 5.0;
  config.traffic.mean_holding_s = 50.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {0};
  config.group_members = {2};
  config.warmup_s = 100.0;
  config.measure_s = 400.0;
  config.seed = 5;
  config.max_tries = 1;
  config.faults.push_back(single_fault(1, 2, 200.0, 300.0));
  Simulation sim(topo, config);
  const SimulationResult result = sim.run();
  EXPECT_GT(result.dropped, 0u);
  // During the 100 s outage every request is rejected, so AP sits well
  // below 1 but recovers after repair — overall between 0.5 and 0.95.
  EXPECT_LT(result.admission_probability, 0.95);
  EXPECT_GT(result.admission_probability, 0.5);
  // After repair the link is usable again: reserved bandwidth is consistent.
  EXPECT_GE(sim.ledger().available(*topo.find_link(1, 2)), 0.0);
}

TEST(FaultedSimulation, OutageOutsideMeasurementLeavesApIntact) {
  const net::Topology topo = net::topologies::line(3);
  SimulationConfig config;
  config.traffic.arrival_rate = 2.0;
  config.traffic.mean_holding_s = 20.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {0};
  config.group_members = {2};
  config.warmup_s = 200.0;
  config.measure_s = 300.0;
  config.seed = 6;
  // Fault entirely inside warm-up.
  config.faults.push_back(single_fault(1, 2, 50.0, 100.0));
  Simulation sim(topo, config);
  const SimulationResult result = sim.run();
  EXPECT_DOUBLE_EQ(result.admission_probability, 1.0);
  EXPECT_EQ(result.dropped, 0u);
}

TEST(FaultedSimulation, DuplexFaultListedInBothDirectionsIsIdempotent) {
  // Regression: a schedule naming the same duplex link as (a,b) AND (b,a)
  // with overlapping windows must take the link down once and bring it back
  // only when the LAST outage ends. The old code failed the ledger twice
  // (fail_link requires an in-service link) and double-released the crossing
  // flows; hold counts make the second fault a no-op and the first repair a
  // decrement.
  const net::Topology topo = net::topologies::line(3);
  SimulationConfig config;
  config.traffic.arrival_rate = 5.0;
  config.traffic.mean_holding_s = 50.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {0};
  config.group_members = {2};
  config.warmup_s = 100.0;
  config.measure_s = 400.0;
  config.seed = 5;
  config.max_tries = 1;
  config.faults.push_back(single_fault(1, 2, 200.0, 300.0));
  config.faults.push_back(single_fault(2, 1, 250.0, 350.0));
  MemoryTraceSink trace;
  config.trace = &trace;
  Simulation sim(topo, config);
  const SimulationResult result = sim.run();
  // Exactly one down/up transition pair despite four fault events.
  ASSERT_EQ(trace.count(TraceEventKind::kLinkDown), 1u);
  ASSERT_EQ(trace.count(TraceEventKind::kLinkUp), 1u);
  double down_at = 0.0;
  double up_at = 0.0;
  for (const TraceEvent& event : trace.events()) {
    if (event.kind == TraceEventKind::kLinkDown) {
      down_at = event.time;
    } else if (event.kind == TraceEventKind::kLinkUp) {
      up_at = event.time;
    }
  }
  EXPECT_DOUBLE_EQ(down_at, 200.0);
  EXPECT_DOUBLE_EQ(up_at, 350.0);  // the overlapping outage extends the window
  // Flows crossing at 200 s were torn down exactly once; the run stays
  // consistent and admissions resume after 350 s.
  EXPECT_GT(result.dropped, 0u);
  EXPECT_GE(sim.ledger().available(*topo.find_link(1, 2)), 0.0);
}

TEST(FaultedSimulation, SameInstantDuplexDuplicateTearsFlowsOnce) {
  // The tightest duplicate: both directions fail AND repair at the same
  // instants. Every crossing flow must be released exactly once — a double
  // release would underflow the ledger and fail its conservation audit.
  const net::Topology topo = net::topologies::line(3);
  SimulationConfig config;
  config.traffic.arrival_rate = 5.0;
  config.traffic.mean_holding_s = 50.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {0};
  config.group_members = {2};
  config.warmup_s = 100.0;
  config.measure_s = 400.0;
  config.seed = 5;
  config.max_tries = 1;
  config.faults.push_back(single_fault(1, 2, 200.0, 300.0));
  config.faults.push_back(single_fault(2, 1, 200.0, 300.0));
  MemoryTraceSink trace;
  config.trace = &trace;
  Simulation sim(topo, config);
  const SimulationResult result = sim.run();
  EXPECT_EQ(trace.count(TraceEventKind::kLinkDown), 1u);
  EXPECT_EQ(trace.count(TraceEventKind::kLinkUp), 1u);
  // The duplicated schedule behaves exactly like the single-fault run.
  SimulationConfig single = config;
  single.faults.clear();
  single.faults.push_back(single_fault(1, 2, 200.0, 300.0));
  single.trace = nullptr;
  Simulation reference(topo, single);
  const SimulationResult expected = reference.run();
  EXPECT_EQ(result.admitted, expected.admitted);
  EXPECT_EQ(result.dropped, expected.dropped);
  EXPECT_DOUBLE_EQ(result.admission_probability, expected.admission_probability);
}

TEST(FaultedSimulation, GdiRoutesAroundFailures) {
  // Ring: GDI should keep admitting during a single-link outage because an
  // alternative path always exists.
  const net::Topology topo = net::topologies::ring(5);
  SimulationConfig config;
  config.traffic.arrival_rate = 2.0;
  config.traffic.mean_holding_s = 20.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {2};
  config.group_members = {0};
  config.warmup_s = 100.0;
  config.measure_s = 300.0;
  config.seed = 7;
  config.use_gdi = true;
  config.faults.push_back(single_fault(1, 2, 150.0, 350.0));
  Simulation sim(topo, config);
  const SimulationResult result = sim.run();
  EXPECT_DOUBLE_EQ(result.admission_probability, 1.0);
}

}  // namespace
}  // namespace anyqos::sim
