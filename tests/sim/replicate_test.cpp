#include "src/sim/replicate.h"

#include <gtest/gtest.h>

#include "src/net/topologies.h"

namespace anyqos::sim {
namespace {

SimulationConfig quick_config(double lambda) {
  SimulationConfig config;
  config.traffic.arrival_rate = lambda;
  config.traffic.mean_holding_s = 30.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {1, 2, 5};
  config.group_members = {0, 3};
  config.warmup_s = 100.0;
  config.measure_s = 400.0;
  config.seed = 10;
  return config;
}

TEST(Replicate, SingleReplicationIsDegenerate) {
  const net::Topology topo = net::topologies::ring(6);
  const auto result = replicate(topo, quick_config(50.0), 1);
  EXPECT_EQ(result.replications, 1u);
  EXPECT_DOUBLE_EQ(result.admission_probability.ci.half_width, 0.0);
  EXPECT_DOUBLE_EQ(result.admission_probability.min,
                   result.admission_probability.max);
}

TEST(Replicate, CiCoversEveryReplicationMeanRange) {
  const net::Topology topo = net::topologies::ring(6);
  const auto result = replicate(topo, quick_config(100.0), 5);
  EXPECT_EQ(result.replications, 5u);
  EXPECT_LT(result.admission_probability.min, result.admission_probability.max);
  EXPECT_GE(result.admission_probability.mean, result.admission_probability.min);
  EXPECT_LE(result.admission_probability.mean, result.admission_probability.max);
  EXPECT_GT(result.admission_probability.ci.half_width, 0.0);
  // The seed-to-seed spread at this run length stays small.
  EXPECT_LT(result.admission_probability.max - result.admission_probability.min, 0.1);
}

TEST(Replicate, SeedsAdvancePerReplication) {
  // Replication must not reuse the seed: min != max at heavy load whp.
  const net::Topology topo = net::topologies::ring(6);
  const auto result = replicate(topo, quick_config(150.0), 3);
  EXPECT_NE(result.admission_probability.min, result.admission_probability.max);
}

TEST(Replicate, MetricsAreMutuallyConsistent) {
  const net::Topology topo = net::topologies::ring(6);
  const auto result = replicate(topo, quick_config(120.0), 3);
  EXPECT_GE(result.average_attempts.mean, 1.0);
  EXPECT_LE(result.average_attempts.mean, 2.0);  // R = 2 default
  EXPECT_GT(result.average_messages.mean, 0.0);
}

TEST(Replicate, Validation) {
  const net::Topology topo = net::topologies::ring(6);
  EXPECT_THROW(replicate(topo, quick_config(10.0), 0), std::invalid_argument);
  EXPECT_THROW(replicate(topo, quick_config(10.0), 2, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::sim
