// Node crash/recovery fault domains: a router crash fails every incident
// link atomically, takes co-located group members down, interacts with
// overlapping link faults through hold counts, and (with a reconvergence
// policy + path repair) broken flows are re-signaled over the new routes.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/net/reconvergence.h"
#include "src/net/topologies.h"
#include "src/sim/faults.h"
#include "src/sim/simulation.h"
#include "src/sim/trace.h"

namespace anyqos::sim {
namespace {

SimulationConfig base_config() {
  SimulationConfig config;
  config.traffic.arrival_rate = 2.0;
  config.traffic.mean_holding_s = 20.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {2};
  config.group_members = {0};
  config.warmup_s = 100.0;
  config.measure_s = 300.0;
  config.seed = 9;
  return config;
}

TEST(NodeFaults, CrashFailsEveryIncidentLinkAndRecoveryRestoresThem) {
  // Ring of 5: node 1 touches duplex links 0-1 and 1-2. Its crash must take
  // both out in the same event batch and its recovery must bring both back.
  const net::Topology topo = net::topologies::ring(5);
  SimulationConfig config = base_config();
  config.node_faults.push_back(single_node_fault(1, 150.0, 250.0));
  MemoryTraceSink trace;
  config.trace = &trace;
  Simulation sim(topo, config);
  const SimulationResult result = sim.run();
  EXPECT_EQ(result.node_outages, 1u);
  EXPECT_EQ(trace.count(TraceEventKind::kNodeDown), 1u);
  EXPECT_EQ(trace.count(TraceEventKind::kNodeUp), 1u);
  EXPECT_EQ(trace.count(TraceEventKind::kLinkDown), 2u);
  EXPECT_EQ(trace.count(TraceEventKind::kLinkUp), 2u);
  // Static routes (no reconvergence): route 2-1-0 is fixed, so flows
  // crossing the dead router are dropped and admissions fail until repair.
  EXPECT_GT(result.dropped_by_fault, 0u);
  EXPECT_LT(result.admission_probability, 1.0);
  // Both incident links are back in service at the end.
  EXPECT_GE(sim.ledger().available(*topo.find_link(0, 1)), 0.0);
  EXPECT_GE(sim.ledger().available(*topo.find_link(1, 2)), 0.0);
}

TEST(NodeFaults, ReconvergenceAndRepairRouteAroundTheCrash) {
  // Same crash, but with an instant reconvergence policy and path repair:
  // broken flows re-signal over 2-3-4-0 and nothing is dropped; admissions
  // during the outage use the detour, so AP stays 1.
  const net::Topology topo = net::topologies::ring(5);
  SimulationConfig config = base_config();
  config.node_faults.push_back(single_node_fault(1, 150.0, 250.0));
  net::InstantReconvergence instant;
  config.reconvergence = &instant;
  config.path_repair = true;
  MemoryTraceSink trace;
  config.trace = &trace;
  Simulation sim(topo, config);
  const SimulationResult result = sim.run();
  EXPECT_EQ(result.node_outages, 1u);
  EXPECT_EQ(result.reconvergences, 2u);  // crash batch + recovery batch
  EXPECT_GT(result.repaired, 0u);
  EXPECT_EQ(result.unrepairable, 0u);
  EXPECT_EQ(result.dropped_by_fault, 0u);
  EXPECT_DOUBLE_EQ(result.admission_probability, 1.0);
  EXPECT_EQ(trace.count(TraceEventKind::kReconverged), 2u);
  EXPECT_EQ(trace.count(TraceEventKind::kRepaired), result.repaired);
  EXPECT_EQ(trace.count(TraceEventKind::kRepairFailed), 0u);
  EXPECT_EQ(sim.pending_repairs(), 0u);
}

TEST(NodeFaults, CrashTakesColocatedMembersDownAndRecoveryRevivesThem) {
  // Members at 1 and 3; crashing router 1 must tear its member's flows down
  // (churn accounting) and fail requests over to member 3.
  const net::Topology topo = net::topologies::ring(5);
  SimulationConfig config = base_config();
  config.traffic.sources = {0};
  config.group_members = {1, 3};
  config.node_faults.push_back(single_node_fault(1, 150.0, 250.0));
  MemoryTraceSink trace;
  config.trace = &trace;
  Simulation sim(topo, config);
  const SimulationResult result = sim.run();
  EXPECT_EQ(trace.count(TraceEventKind::kMemberDown), 1u);
  EXPECT_EQ(trace.count(TraceEventKind::kMemberUp), 1u);
  EXPECT_GT(result.dropped_by_churn, 0u);
  EXPECT_GT(result.failover_attempts, 0u);
  // The surviving member keeps the group admitting throughout.
  EXPECT_DOUBLE_EQ(result.admission_probability, 1.0);
}

TEST(NodeFaults, OverlappingLinkFaultAndCrashReleaseTheLinkOnlyOnce) {
  // Link 1-2 fails 120-200 s; node 1 is down 150-250 s. The duplex is held
  // down by two owners: exactly one kLinkDown at 120 and one kLinkUp at 250
  // (when the LAST hold clears) — the ledger never double-fails.
  const net::Topology topo = net::topologies::ring(5);
  SimulationConfig config = base_config();
  config.faults.push_back(single_fault(1, 2, 120.0, 200.0));
  config.node_faults.push_back(single_node_fault(1, 150.0, 250.0));
  MemoryTraceSink trace;
  config.trace = &trace;
  Simulation sim(topo, config);
  (void)sim.run();
  std::size_t downs_1_2 = 0;
  std::size_t ups_1_2 = 0;
  double last_up_at = 0.0;
  for (const TraceEvent& event : trace.events()) {
    const bool on_1_2 = (event.source == 1 && event.destination == 2) ||
                        (event.source == 2 && event.destination == 1);
    if (event.kind == TraceEventKind::kLinkDown && on_1_2) {
      ++downs_1_2;
    } else if (event.kind == TraceEventKind::kLinkUp && on_1_2) {
      ++ups_1_2;
      last_up_at = event.time;
    }
  }
  EXPECT_EQ(downs_1_2, 1u);
  EXPECT_EQ(ups_1_2, 1u);
  EXPECT_DOUBLE_EQ(last_up_at, 250.0);
}

TEST(NodeFaults, MemberChurnCannotReviveAMemberWhoseRouterIsDown) {
  // Churn brings member 0 (router 1) back at 180 s, inside the router's
  // 150-250 s crash window: the revival must be suppressed; the member
  // returns only with the router.
  const net::Topology topo = net::topologies::ring(5);
  SimulationConfig config = base_config();
  config.traffic.sources = {3};
  config.group_members = {1, 4};
  MemberChurnEvent churn;
  churn.member_index = 0;
  churn.down_at = 110.0;
  churn.up_at = 180.0;
  config.churn.push_back(churn);
  config.node_faults.push_back(single_node_fault(1, 150.0, 250.0));
  MemoryTraceSink trace;
  config.trace = &trace;
  Simulation sim(topo, config);
  (void)sim.run();
  // Down at 110 (churn); the churn revival at 180 is swallowed, so the only
  // kMemberUp is the router recovery at 250.
  ASSERT_EQ(trace.count(TraceEventKind::kMemberDown), 1u);
  ASSERT_EQ(trace.count(TraceEventKind::kMemberUp), 1u);
  for (const TraceEvent& event : trace.events()) {
    if (event.kind == TraceEventKind::kMemberUp) {
      EXPECT_DOUBLE_EQ(event.time, 250.0);
    }
  }
}

TEST(NodeFaults, ConfigValidation) {
  const net::Topology topo = net::topologies::ring(5);
  // Crash/repair ordering and node range.
  EXPECT_THROW(single_node_fault(1, 20.0, 10.0), std::invalid_argument);
  EXPECT_THROW(single_node_fault(1, -1.0, 10.0), std::invalid_argument);
  {
    SimulationConfig config = base_config();
    config.node_faults.push_back(single_node_fault(99, 10.0, 20.0));
    EXPECT_THROW(Simulation(topo, config), std::invalid_argument);
  }
  {
    // Path repair requires a reconvergence policy (stale routes can never
    // heal, so the queue would starve).
    SimulationConfig config = base_config();
    config.path_repair = true;
    EXPECT_THROW(Simulation(topo, config), std::invalid_argument);
  }
  {
    // The failure-domain plane is DAC-only, like churn.
    SimulationConfig config = base_config();
    config.use_gdi = true;
    config.node_faults.push_back(single_node_fault(1, 10.0, 20.0));
    EXPECT_THROW(Simulation(topo, config), std::invalid_argument);
  }
}

}  // namespace
}  // namespace anyqos::sim
