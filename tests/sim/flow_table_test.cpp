#include "src/sim/flow_table.h"

#include <gtest/gtest.h>

namespace anyqos::sim {
namespace {

ActiveFlow flow_on_links(std::initializer_list<net::LinkId> links) {
  ActiveFlow flow;
  flow.source = 0;
  flow.destination_index = 0;
  flow.bandwidth_bps = 64'000.0;
  flow.route.source = 0;
  flow.route.destination = 1;
  flow.route.links.assign(links);
  return flow;
}

TEST(FlowTable, InsertAssignsFreshIds) {
  FlowTable table;
  const FlowId a = table.insert(flow_on_links({0}));
  const FlowId b = table.insert(flow_on_links({1}));
  EXPECT_NE(a, b);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_TRUE(table.contains(a));
}

TEST(FlowTable, TakeRemovesAndReturns) {
  FlowTable table;
  const FlowId id = table.insert(flow_on_links({3, 4}));
  const ActiveFlow flow = table.take(id);
  EXPECT_EQ(flow.id, id);
  EXPECT_EQ(flow.route.links.size(), 2u);
  EXPECT_FALSE(table.contains(id));
  EXPECT_TRUE(table.empty());
}

TEST(FlowTable, TakeMissingThrows) {
  FlowTable table;
  EXPECT_THROW(table.take(42), std::invalid_argument);
  const FlowId id = table.insert(flow_on_links({0}));
  table.take(id);
  EXPECT_THROW(table.take(id), std::invalid_argument);
}

TEST(FlowTable, GetWithoutRemoving) {
  FlowTable table;
  const FlowId id = table.insert(flow_on_links({7}));
  EXPECT_EQ(table.get(id).route.links[0], 7u);
  EXPECT_TRUE(table.contains(id));
  EXPECT_THROW(static_cast<void>(table.get(id + 1)), std::invalid_argument);
}

TEST(FlowTable, FlowsUsingLinkFindsExactlyMatching) {
  FlowTable table;
  const FlowId a = table.insert(flow_on_links({1, 2}));
  table.insert(flow_on_links({3}));
  const FlowId c = table.insert(flow_on_links({2, 4}));
  const auto on_2 = table.flows_using_link(2);
  ASSERT_EQ(on_2.size(), 2u);
  EXPECT_EQ(on_2[0], a);  // ascending id order
  EXPECT_EQ(on_2[1], c);
  EXPECT_TRUE(table.flows_using_link(99).empty());
}

TEST(FlowTable, ForEachVisitsInIdOrder) {
  FlowTable table;
  table.insert(flow_on_links({0}));
  table.insert(flow_on_links({1}));
  table.insert(flow_on_links({2}));
  std::vector<FlowId> seen;
  table.for_each([&](const ActiveFlow& flow) { seen.push_back(flow.id); });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_LT(seen[0], seen[1]);
  EXPECT_LT(seen[1], seen[2]);
}

TEST(FlowTable, IdsNotReusedAfterRemoval) {
  FlowTable table;
  const FlowId a = table.insert(flow_on_links({0}));
  table.take(a);
  const FlowId b = table.insert(flow_on_links({0}));
  EXPECT_GT(b, a);
}

}  // namespace
}  // namespace anyqos::sim
