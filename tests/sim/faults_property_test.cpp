// Property sweep for random_fault_schedule: whatever the seed, schedules are
// sorted, bounded, and per-link outages never overlap. Complements the
// example-based checks in faults_test.cpp.
#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "src/net/topologies.h"
#include "src/sim/faults.h"

namespace anyqos::sim {
namespace {

struct Params {
  double horizon_s;
  double failure_rate;
  double mean_repair_s;
};

const Params kGrid[] = {
    {1'000.0, 1e-2, 50.0},    // frequent short outages
    {10'000.0, 1e-3, 500.0},  // moderate
    {50'000.0, 1e-4, 5'000.0},  // rare long outages
    {100.0, 1.0, 1.0},        // pathological: near-continuous churn
};

TEST(RandomFaultScheduleProperty, SortedBoundedAndDisjointForManySeeds) {
  const net::Topology topo = net::topologies::ring(6);
  for (const Params& p : kGrid) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
      const auto schedule =
          random_fault_schedule(topo, p.horizon_s, p.failure_rate, p.mean_repair_s, seed);
      // Sorted by failure time.
      for (std::size_t i = 1; i < schedule.size(); ++i) {
        ASSERT_LE(schedule[i - 1].fail_at, schedule[i].fail_at);
      }
      // Each fault within bounds, on a real link, repair after failure.
      std::map<std::pair<net::NodeId, net::NodeId>, std::vector<std::pair<double, double>>>
          per_link;
      for (const LinkFault& fault : schedule) {
        ASSERT_TRUE(topo.find_link(fault.a, fault.b).has_value());
        ASSERT_GE(fault.fail_at, 0.0);
        ASSERT_LT(fault.fail_at, p.horizon_s);
        ASSERT_GT(fault.repair_at, fault.fail_at);
        // Repairs are capped so a drained run always sees the link return.
        ASSERT_LE(fault.repair_at, p.horizon_s + p.mean_repair_s);
        per_link[{fault.a, fault.b}].emplace_back(fault.fail_at, fault.repair_at);
      }
      // Outages of the same duplex link are pairwise disjoint; because the
      // schedule is globally sorted, checking neighbours suffices.
      for (const auto& [link, outages] : per_link) {
        for (std::size_t i = 1; i < outages.size(); ++i) {
          ASSERT_GE(outages[i].first, outages[i - 1].second)
              << "overlapping outages on link " << link.first << "-" << link.second
              << " (seed " << seed << ")";
        }
      }
    }
  }
}

TEST(RandomFaultScheduleProperty, DeterministicInSeedAcrossTheGrid) {
  const net::Topology topo = net::topologies::grid(3, 3);
  for (const Params& p : kGrid) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto a =
          random_fault_schedule(topo, p.horizon_s, p.failure_rate, p.mean_repair_s, seed);
      const auto b =
          random_fault_schedule(topo, p.horizon_s, p.failure_rate, p.mean_repair_s, seed);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].a, b[i].a);
        ASSERT_EQ(a[i].b, b[i].b);
        ASSERT_DOUBLE_EQ(a[i].fail_at, b[i].fail_at);
        ASSERT_DOUBLE_EQ(a[i].repair_at, b[i].repair_at);
      }
    }
  }
}

TEST(RandomFaultScheduleProperty, ZeroRateOrZeroHorizonYieldsEmptySchedule) {
  // Degenerate but well-defined corners: no randomness is consumed, nothing
  // is scheduled, and mean_repair_s is never validated (0.0 is accepted).
  const net::Topology topo = net::topologies::ring(6);
  EXPECT_TRUE(random_fault_schedule(topo, 0.0, 1e-2, 50.0, 7).empty());
  EXPECT_TRUE(random_fault_schedule(topo, 1'000.0, 0.0, 50.0, 7).empty());
  EXPECT_TRUE(random_fault_schedule(topo, 0.0, 0.0, 0.0, 7).empty());
  EXPECT_TRUE(random_node_fault_schedule(topo, 0.0, 1e-2, 50.0, 7).empty());
  EXPECT_TRUE(random_node_fault_schedule(topo, 1'000.0, 0.0, 50.0, 7).empty());
  EXPECT_TRUE(random_node_fault_schedule(topo, 0.0, 0.0, 0.0, 7).empty());
}

TEST(RandomNodeFaultScheduleProperty, SortedBoundedAndDisjointForManySeeds) {
  // Same renewal-process invariants as the link generator, per router: the
  // crash/recover windows of one router never overlap, crashes land inside
  // the horizon, and recoveries are capped for drained runs.
  const net::Topology topo = net::topologies::grid(3, 3);
  for (const Params& p : kGrid) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
      const auto schedule = random_node_fault_schedule(topo, p.horizon_s, p.failure_rate,
                                                       p.mean_repair_s, seed);
      for (std::size_t i = 1; i < schedule.size(); ++i) {
        ASSERT_LE(schedule[i - 1].fail_at, schedule[i].fail_at);
      }
      std::map<net::NodeId, std::vector<std::pair<double, double>>> per_node;
      for (const NodeFault& fault : schedule) {
        ASSERT_LT(fault.node, topo.router_count());
        ASSERT_GE(fault.fail_at, 0.0);
        ASSERT_LT(fault.fail_at, p.horizon_s);
        ASSERT_GT(fault.repair_at, fault.fail_at);
        ASSERT_LE(fault.repair_at, p.horizon_s + p.mean_repair_s);
        per_node[fault.node].emplace_back(fault.fail_at, fault.repair_at);
      }
      for (const auto& [node, outages] : per_node) {
        for (std::size_t i = 1; i < outages.size(); ++i) {
          ASSERT_GE(outages[i].first, outages[i - 1].second)
              << "overlapping outages on router " << node << " (seed " << seed << ")";
        }
      }
    }
  }
}

TEST(RandomNodeFaultScheduleProperty, DeterministicInSeedAcrossTheGrid) {
  const net::Topology topo = net::topologies::grid(3, 3);
  for (const Params& p : kGrid) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto a = random_node_fault_schedule(topo, p.horizon_s, p.failure_rate,
                                                p.mean_repair_s, seed);
      const auto b = random_node_fault_schedule(topo, p.horizon_s, p.failure_rate,
                                                p.mean_repair_s, seed);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].node, b[i].node);
        ASSERT_DOUBLE_EQ(a[i].fail_at, b[i].fail_at);
        ASSERT_DOUBLE_EQ(a[i].repair_at, b[i].repair_at);
      }
    }
  }
}

TEST(RandomNodeFaultScheduleProperty, BusyGridsActuallyProduceCrashes) {
  const net::Topology topo = net::topologies::grid(3, 3);
  std::size_t total = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    total += random_node_fault_schedule(topo, 1'000.0, 1e-2, 50.0, seed).size();
  }
  EXPECT_GT(total, 100u);
}

TEST(RegionalOutageProperty, RadiusNestsFromEpicenterToWholeNetwork) {
  // A regional outage is the closed hop-ball around the epicenter: radius 0
  // is the epicenter alone, radii nest monotonically, and a radius at least
  // the network diameter takes every router down.
  const net::Topology topo = net::topologies::grid(3, 3);
  for (net::NodeId epicenter = 0; epicenter < topo.router_count(); ++epicenter) {
    std::size_t previous = 0;
    for (std::size_t radius = 0; radius <= 4; ++radius) {
      const auto outage = regional_outage(topo, epicenter, radius, 10.0, 20.0);
      if (radius == 0) {
        ASSERT_EQ(outage.size(), 1u);
        ASSERT_EQ(outage.front().node, epicenter);
      }
      ASSERT_GE(outage.size(), previous);
      for (const NodeFault& fault : outage) {
        ASSERT_DOUBLE_EQ(fault.fail_at, 10.0);
        ASSERT_DOUBLE_EQ(fault.repair_at, 20.0);
      }
      previous = outage.size();
    }
    // Grid(3,3) has diameter 4: the widest ball is the whole network.
    ASSERT_EQ(regional_outage(topo, epicenter, 4, 10.0, 20.0).size(), topo.router_count());
  }
}

TEST(RandomFaultScheduleProperty, BusyGridsActuallyProduceFaults) {
  // Guard against a silently empty sweep: the busy corner of the grid must
  // generate work, otherwise the properties above are vacuously true.
  const net::Topology topo = net::topologies::ring(6);
  std::size_t total = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    total += random_fault_schedule(topo, 1'000.0, 1e-2, 50.0, seed).size();
  }
  EXPECT_GT(total, 100u);
}

}  // namespace
}  // namespace anyqos::sim
