#include "src/sim/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace anyqos::sim {
namespace {

TEST(MetricsCollector, IgnoresEverythingBeforeMeasurement) {
  MetricsCollector metrics(3);
  metrics.record_decision(true, 1, 4, 0);
  metrics.record_decision(false, 2, 8, 0);
  EXPECT_EQ(metrics.offered(), 0u);
  metrics.begin_measurement(100.0);
  metrics.record_decision(true, 1, 4, 2);
  EXPECT_EQ(metrics.offered(), 1u);
  EXPECT_EQ(metrics.admitted(), 1u);
}

TEST(MetricsCollector, RejectsOutOfRangeDestinationIndex) {
  MetricsCollector metrics(3);
  metrics.begin_measurement(0.0);
  metrics.record_decision(true, 1, 4, 1);
  // destination_index must index the group, for admissions and rejections
  // alike; a bad call must leave the collector untouched.
  EXPECT_THROW(metrics.record_decision(true, 1, 4, 3), std::invalid_argument);
  EXPECT_THROW(metrics.record_decision(false, 2, 8, 99), std::invalid_argument);
  EXPECT_EQ(metrics.offered(), 1u);
  EXPECT_EQ(metrics.admitted(), 1u);
  EXPECT_EQ(metrics.per_destination_admissions()[1], 1u);
  // The guard also applies before measurement starts (fail fast, not
  // fail-only-when-measuring).
  MetricsCollector warmup(2);
  EXPECT_THROW(warmup.record_decision(true, 1, 2, 5), std::invalid_argument);
  EXPECT_THROW(warmup.record_decision(true, 0, 2, 0), std::invalid_argument);
}

TEST(MetricsCollector, AdmissionProbability) {
  MetricsCollector metrics(2);
  metrics.begin_measurement(0.0);
  for (int i = 0; i < 100; ++i) {
    metrics.record_decision(i < 83, 1, 2, 0);
  }
  EXPECT_DOUBLE_EQ(metrics.admission_probability(), 0.83);
  EXPECT_EQ(metrics.offered(), 100u);
  EXPECT_EQ(metrics.admitted(), 83u);
}

TEST(MetricsCollector, AttemptStatistics) {
  MetricsCollector metrics(2);
  metrics.begin_measurement(0.0);
  metrics.record_decision(true, 1, 2, 0);
  metrics.record_decision(true, 2, 6, 1);
  metrics.record_decision(false, 2, 4, 0);
  EXPECT_DOUBLE_EQ(metrics.average_attempts(), (1.0 + 2.0 + 2.0) / 3.0);
  EXPECT_EQ(metrics.attempts_histogram().count(1), 1u);
  EXPECT_EQ(metrics.attempts_histogram().count(2), 2u);
  EXPECT_DOUBLE_EQ(metrics.average_messages(), 4.0);
}

TEST(MetricsCollector, PerDestinationTallyCountsAdmittedOnly) {
  MetricsCollector metrics(3);
  metrics.begin_measurement(0.0);
  metrics.record_decision(true, 1, 2, 1);
  metrics.record_decision(true, 1, 2, 1);
  metrics.record_decision(false, 3, 6, 2);  // rejected: not tallied
  metrics.record_decision(true, 1, 2, 0);
  const auto& per_dest = metrics.per_destination_admissions();
  EXPECT_EQ(per_dest[0], 1u);
  EXPECT_EQ(per_dest[1], 2u);
  EXPECT_EQ(per_dest[2], 0u);
}

TEST(MetricsCollector, ActiveFlowsTimeAverage) {
  MetricsCollector metrics(1);
  metrics.begin_measurement(0.0);
  metrics.record_active_flows(0.0, 0);
  metrics.record_active_flows(10.0, 4);   // 0 flows for [0,10), 4 for [10,20)
  EXPECT_DOUBLE_EQ(metrics.average_active_flows(20.0), 2.0);
}

TEST(MetricsCollector, ConfidenceIntervalCoversPointEstimate) {
  MetricsCollector metrics(2, 10);
  metrics.begin_measurement(0.0);
  for (unsigned i = 0; i < 1000; ++i) {
    // Irregular ~75% admission pattern: batch means must differ so the
    // interval has positive width.
    const bool admitted = ((i * 2654435761u) >> 16) % 4 != 0;
    metrics.record_decision(admitted, 1, 2, 0);
  }
  const auto ci = metrics.admission_ci(0.95);
  EXPECT_TRUE(ci.contains(metrics.admission_probability()));
  EXPECT_GT(ci.half_width, 0.0);
  EXPECT_LT(ci.half_width, 0.1);
}

TEST(MetricsCollector, CiBeforeReadyIsDegenerate) {
  MetricsCollector metrics(2, 10);
  metrics.begin_measurement(0.0);
  metrics.record_decision(true, 1, 2, 0);
  const auto ci = metrics.admission_ci(0.95);
  EXPECT_DOUBLE_EQ(ci.mean, 1.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(MetricsCollector, DroppedFlowsCounted) {
  MetricsCollector metrics(1);
  metrics.record_dropped_flow();  // pre-measurement: ignored
  metrics.begin_measurement(0.0);
  metrics.record_dropped_flow();
  metrics.record_dropped_flow();
  EXPECT_EQ(metrics.dropped_flows(), 2u);
}

TEST(MetricsCollector, ZeroAttemptRejectionIsLegal) {
  // With every group member down (churn), a request is rejected without a
  // single destination attempt; the collector must accept that shape.
  MetricsCollector metrics(2);
  metrics.begin_measurement(0.0);
  metrics.record_decision(false, 0, 0, 0);
  EXPECT_EQ(metrics.offered(), 1u);
  EXPECT_EQ(metrics.admitted(), 0u);
  EXPECT_EQ(metrics.attempts_histogram().count(0), 1u);
  EXPECT_DOUBLE_EQ(metrics.average_attempts(), 0.0);
}

TEST(MetricsCollector, TeardownCausesCountedSeparately) {
  MetricsCollector metrics(1);
  metrics.record_teardown(TeardownCause::kChurn);  // pre-measurement: ignored
  metrics.begin_measurement(0.0);
  metrics.record_teardown(TeardownCause::kExplicit);
  metrics.record_teardown(TeardownCause::kExplicit);
  metrics.record_teardown(TeardownCause::kLinkFault);
  metrics.record_teardown(TeardownCause::kChurn);
  metrics.record_teardown(TeardownCause::kChurn);
  metrics.record_teardown(TeardownCause::kChurn);
  EXPECT_EQ(metrics.teardowns(TeardownCause::kExplicit), 2u);
  EXPECT_EQ(metrics.teardowns(TeardownCause::kLinkFault), 1u);
  EXPECT_EQ(metrics.teardowns(TeardownCause::kChurn), 3u);
  // Only involuntary teardowns feed the paper-facing dropped tally.
  EXPECT_EQ(metrics.dropped_flows(), 4u);
}

TEST(MetricsCollector, FailoverTalliedWhileMeasuringOnly) {
  MetricsCollector metrics(1);
  metrics.record_failover(true);  // pre-measurement: ignored
  metrics.begin_measurement(0.0);
  metrics.record_failover(true);
  metrics.record_failover(false);
  metrics.record_failover(true);
  EXPECT_EQ(metrics.failover_attempts(), 3u);
  EXPECT_EQ(metrics.failover_admitted(), 2u);
}

TEST(MetricsCollector, Validation) {
  EXPECT_THROW(MetricsCollector(0), std::invalid_argument);
  MetricsCollector metrics(2);
  metrics.begin_measurement(0.0);
  EXPECT_THROW(metrics.begin_measurement(1.0), std::invalid_argument);
  EXPECT_THROW(metrics.record_decision(true, 0, 0, 0), std::invalid_argument);
  EXPECT_THROW(metrics.record_decision(true, 1, 0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::sim
