#include "src/sim/scenario.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace anyqos::sim {
namespace {

/// A scenario exercising every block and entry list the format defines.
Scenario full_scenario() {
  Scenario scenario;
  scenario.name = "kitchen-sink";
  scenario.topology = "mci";
  scenario.seed = 7;
  scenario.lambda = 25.0;
  scenario.mean_holding_s = 60.0;
  scenario.flow_bandwidth_bps = 64'000.0;
  scenario.sources = {0, 3, 5};
  scenario.algorithm = "WD/D+H";
  scenario.max_tries = 3;
  scenario.alpha = 0.25;
  scenario.anycast_share = 0.4;
  scenario.group = {2, 11, 18};
  scenario.failover_readmit = true;
  scenario.path_repair = true;
  scenario.warmup_s = 10.0;
  scenario.measure_s = 200.0;
  scenario.drain_max_events = 1'000'000;
  scenario.drain_max_sim_s = 500.0;
  scenario.resilience.emplace();
  scenario.resilience->loss_probability = 0.05;
  scenario.resilience->hop_delay_s = 0.01;
  scenario.reconvergence.emplace();
  scenario.reconvergence->policy = "flooding";
  scenario.reconvergence->param_s = 0.05;
  scenario.governor.emplace();
  scenario.governor->min_tries = 1;
  scenario.governor->breaker_cooldown_s = 30.0;
  scenario.axes.link_rate = 0.02;
  scenario.axes.link_mean_repair_s = 40.0;
  scenario.link_faults.push_back(single_fault(0, 1, 40.0, 80.0));
  scenario.churn.push_back(single_churn(1, 60.0, 100.0));
  scenario.node_faults.push_back(single_node_fault(9, 150.0, 190.0));
  scenario.regional_outages.push_back(RegionalOutageSpec{17, 1, 120.0, 160.0});
  control::TimedDirective directive;
  directive.apply_at = 50.0;
  directive.directive.knob = control::Knob::kRetrialCeiling;
  directive.directive.value = 2.0;
  scenario.ops.push_back(directive);
  return scenario;
}

TEST(Scenario, SaveLoadRoundTripIsByteIdentical) {
  const std::string first = save_scenario(full_scenario());
  const std::string second = save_scenario(load_scenario(first));
  EXPECT_EQ(first, second);
}

TEST(Scenario, DefaultScenarioRoundTrips) {
  const Scenario scenario;
  EXPECT_EQ(save_scenario(scenario), save_scenario(load_scenario(save_scenario(scenario))));
}

TEST(Scenario, OmitsAbsentOptionalBlocks) {
  const std::string text = save_scenario(Scenario{});
  EXPECT_EQ(text.find("resilience"), std::string::npos);
  EXPECT_EQ(text.find("governor"), std::string::npos);
  EXPECT_EQ(text.find("axes"), std::string::npos);
  EXPECT_EQ(text.find("link_faults"), std::string::npos);
  const Scenario loaded = load_scenario(text);
  EXPECT_FALSE(loaded.resilience.has_value());
  EXPECT_FALSE(loaded.governor.has_value());
  EXPECT_EQ(loaded.fault_entries(), 0U);
}

TEST(Scenario, RejectsMissingOrWrongSchema) {
  EXPECT_THROW(load_scenario("{}"), std::invalid_argument);
  EXPECT_THROW(load_scenario(R"({"schema":"anyqos.scenario/999"})"),
               std::invalid_argument);
  EXPECT_THROW(load_scenario("[]"), std::invalid_argument);
}

TEST(Scenario, RejectsUnknownKeys) {
  // Root level.
  std::string text = save_scenario(Scenario{});
  text.insert(text.rfind('}'), R"(,"surprise": 1)");
  EXPECT_THROW(load_scenario(text), std::invalid_argument);
  // Nested block: misspelled workload knob.
  Scenario scenario;
  std::string nested = save_scenario(scenario);
  const std::string needle = "\"lambda\"";
  nested.replace(nested.find(needle), needle.size(), "\"lamdba\"");
  EXPECT_THROW(load_scenario(nested), std::invalid_argument);
}

TEST(Scenario, RejectsInvalidFaultWindows) {
  std::string text = save_scenario(full_scenario());
  // Flip the seeded link fault's window: fail after repair (40/80 -> 90/80).
  const std::string fail_key = "\"fail_at\": 40";
  ASSERT_NE(text.find(fail_key), std::string::npos);
  text.replace(text.find(fail_key), fail_key.size(), "\"fail_at\": 90");
  EXPECT_THROW(load_scenario(text), std::invalid_argument);
}

TEST(Scenario, RejectsBadOps) {
  const std::string base = save_scenario(full_scenario());
  // Unsorted directives.
  std::string unsorted = base;
  const std::string ops_entry = R"("t": 50,)";
  ASSERT_NE(unsorted.find(ops_entry), std::string::npos);
  std::string doubled = unsorted;
  doubled.replace(
      doubled.find("\"ops\": ["), 8,
      "\"ops\": [{\"t\": 60, \"knob\": \"retrial-ceiling\", \"value\": 2},");
  EXPECT_THROW(load_scenario(doubled), std::invalid_argument);
  // Unknown knob.
  std::string unknown = base;
  const std::string knob = "retrial-ceiling";
  unknown.replace(unknown.find(knob), knob.size(), "warp-factor");
  EXPECT_THROW(load_scenario(unknown), std::invalid_argument);
  // Out-of-domain value (retrial-ceiling must be a positive integer).
  std::string zero = base;
  const std::string value = "\"value\": 2";
  zero.replace(zero.find(value), value.size(), "\"value\": 0");
  EXPECT_THROW(load_scenario(zero), std::invalid_argument);
}

TEST(Scenario, RejectsBadReconvergencePolicy) {
  std::string text = save_scenario(full_scenario());
  const std::string policy = "\"policy\": \"flooding\"";
  text.replace(text.find(policy), policy.size(), "\"policy\": \"psychic\"");
  EXPECT_THROW(load_scenario(text), std::invalid_argument);
}

TEST(Scenario, BuildsEveryTopologyFamily) {
  EXPECT_EQ(build_scenario_topology("mci").router_count(), 19U);
  EXPECT_EQ(build_scenario_topology("line:4").router_count(), 4U);
  EXPECT_EQ(build_scenario_topology("ring:5").router_count(), 5U);
  EXPECT_EQ(build_scenario_topology("star:6").router_count(), 6U);
  EXPECT_EQ(build_scenario_topology("grid:2x3").router_count(), 6U);
  EXPECT_THROW(build_scenario_topology("torus:4"), std::invalid_argument);
  EXPECT_THROW(build_scenario_topology("grid:4"), std::invalid_argument);
}

TEST(Scenario, MakeScenarioRunValidatesCrossFieldConstraints) {
  Scenario scenario = full_scenario();
  scenario.group.clear();
  EXPECT_THROW(make_scenario_run(scenario), std::invalid_argument);

  scenario = full_scenario();
  scenario.reconvergence.reset();  // path_repair still set
  EXPECT_THROW(make_scenario_run(scenario), std::invalid_argument);

  scenario = full_scenario();
  scenario.governor.reset();  // ops still present
  EXPECT_THROW(make_scenario_run(scenario), std::invalid_argument);
}

TEST(Scenario, MaterializeRandomAxesMatchesLazyExpansion) {
  Scenario original = full_scenario();
  original.axes.link_rate = 0.05;
  original.axes.churn_rate = 0.02;
  original.axes.node_rate = 0.01;

  Scenario expanded = original;
  const net::Topology topology = build_scenario_topology(original.topology);
  materialize_random_axes(expanded, topology);
  EXPECT_EQ(expanded.axes.link_rate, 0.0);
  EXPECT_EQ(expanded.axes.churn_rate, 0.0);
  EXPECT_EQ(expanded.axes.node_rate, 0.0);
  EXPECT_GE(expanded.fault_entries(), original.fault_entries());

  // Idempotent once the axes are zero.
  Scenario again = expanded;
  materialize_random_axes(again, topology);
  EXPECT_EQ(save_scenario(again), save_scenario(expanded));

  // The lowered configs draw identical schedules either way.
  const auto lazy = make_scenario_run(original);
  const auto eager = make_scenario_run(expanded);
  ASSERT_EQ(lazy->config.faults.size(), eager->config.faults.size());
  for (std::size_t i = 0; i < lazy->config.faults.size(); ++i) {
    EXPECT_EQ(lazy->config.faults[i].a, eager->config.faults[i].a);
    EXPECT_EQ(lazy->config.faults[i].b, eager->config.faults[i].b);
    EXPECT_EQ(lazy->config.faults[i].fail_at, eager->config.faults[i].fail_at);
    EXPECT_EQ(lazy->config.faults[i].repair_at, eager->config.faults[i].repair_at);
  }
  ASSERT_EQ(lazy->config.churn.size(), eager->config.churn.size());
  for (std::size_t i = 0; i < lazy->config.churn.size(); ++i) {
    EXPECT_EQ(lazy->config.churn[i].member_index, eager->config.churn[i].member_index);
    EXPECT_EQ(lazy->config.churn[i].down_at, eager->config.churn[i].down_at);
    EXPECT_EQ(lazy->config.churn[i].up_at, eager->config.churn[i].up_at);
  }
  ASSERT_EQ(lazy->config.node_faults.size(), eager->config.node_faults.size());
  for (std::size_t i = 0; i < lazy->config.node_faults.size(); ++i) {
    EXPECT_EQ(lazy->config.node_faults[i].node, eager->config.node_faults[i].node);
    EXPECT_EQ(lazy->config.node_faults[i].fail_at, eager->config.node_faults[i].fail_at);
    EXPECT_EQ(lazy->config.node_faults[i].repair_at,
              eager->config.node_faults[i].repair_at);
  }
}

}  // namespace
}  // namespace anyqos::sim
