#include "src/sim/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/net/topologies.h"
#include "src/sim/faults.h"
#include "src/sim/simulation.h"

namespace anyqos::sim {
namespace {

TEST(TraceEventKindNames, AllDistinct) {
  EXPECT_EQ(to_string(TraceEventKind::kAdmitted), "ADMITTED");
  EXPECT_EQ(to_string(TraceEventKind::kRejected), "REJECTED");
  EXPECT_EQ(to_string(TraceEventKind::kDeparted), "DEPARTED");
  EXPECT_EQ(to_string(TraceEventKind::kDropped), "DROPPED");
  EXPECT_EQ(to_string(TraceEventKind::kLinkDown), "LINK_DOWN");
  EXPECT_EQ(to_string(TraceEventKind::kLinkUp), "LINK_UP");
}

TEST(MemoryTraceSink, RecordsAndCounts) {
  MemoryTraceSink sink;
  TraceEvent event;
  event.kind = TraceEventKind::kAdmitted;
  sink.record(event);
  event.kind = TraceEventKind::kDeparted;
  sink.record(event);
  sink.record(event);
  EXPECT_EQ(sink.events().size(), 3u);
  EXPECT_EQ(sink.count(TraceEventKind::kAdmitted), 1u);
  EXPECT_EQ(sink.count(TraceEventKind::kDeparted), 2u);
  EXPECT_EQ(sink.count(TraceEventKind::kDropped), 0u);
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
}

TEST(CsvTraceSink, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvTraceSink sink(out);
  TraceEvent event;
  event.time = 1.5;
  event.kind = TraceEventKind::kAdmitted;
  event.flow = 17;
  event.source = 3;
  event.destination = 8;
  event.attempts = 2;
  event.bandwidth_bps = 64000;
  event.active_flows = 41;
  sink.record(event);
  TraceEvent fault;
  fault.time = 2.0;
  fault.kind = TraceEventKind::kLinkDown;
  fault.source = 0;
  fault.destination = 1;
  sink.record(fault);
  const std::string text = out.str();
  EXPECT_NE(text.find("time,kind,flow,source,destination,attempts,bandwidth_bps,active\n"),
            std::string::npos);
  EXPECT_NE(text.find("1.5,ADMITTED,17,3,8,2,64000,41"), std::string::npos);
  // Link events carry no request id or bandwidth.
  EXPECT_NE(text.find("2,LINK_DOWN,-,0,1,0,0,0"), std::string::npos);
}

TEST(SimulationTracing, FlowEventsCarryRequestIdAndBandwidth) {
  const net::Topology topo = net::topologies::ring(6);
  SimulationConfig config;
  config.traffic.arrival_rate = 5.0;
  config.traffic.mean_holding_s = 30.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {1, 2};
  config.group_members = {0, 3};
  config.warmup_s = 0.0;
  config.measure_s = 100.0;
  config.seed = 7;
  MemoryTraceSink sink;
  config.trace = &sink;
  Simulation sim(topo, config);
  (void)sim.run();

  std::uint64_t last_arrival_id = 0;
  for (const TraceEvent& event : sink.events()) {
    switch (event.kind) {
      case TraceEventKind::kAdmitted:
      case TraceEventKind::kRejected:
        // Arrival sequence numbers start at 1 and strictly increase.
        EXPECT_EQ(event.flow, last_arrival_id + 1);
        last_arrival_id = event.flow;
        EXPECT_DOUBLE_EQ(event.bandwidth_bps, 64'000.0);
        break;
      case TraceEventKind::kDeparted:
      case TraceEventKind::kDropped:
        // Departures reference a previously seen arrival.
        EXPECT_GE(event.flow, 1u);
        EXPECT_LE(event.flow, last_arrival_id);
        EXPECT_DOUBLE_EQ(event.bandwidth_bps, 64'000.0);
        break;
      case TraceEventKind::kLinkDown:
      case TraceEventKind::kLinkUp:
      case TraceEventKind::kMemberDown:
      case TraceEventKind::kMemberUp:
        EXPECT_EQ(event.flow, 0u);
        break;
      case TraceEventKind::kFailover:
        EXPECT_GE(event.flow, 1u);
        EXPECT_DOUBLE_EQ(event.bandwidth_bps, 64'000.0);
        break;
      case TraceEventKind::kShed:
        // Shed requests consume an arrival sequence number but walk nothing.
        EXPECT_EQ(event.flow, last_arrival_id + 1);
        last_arrival_id = event.flow;
        EXPECT_EQ(event.attempts, 0u);
        break;
      case TraceEventKind::kNodeDown:
      case TraceEventKind::kNodeUp:
      case TraceEventKind::kReconverged:
        EXPECT_EQ(event.flow, 0u);
        break;
      case TraceEventKind::kRepaired:
      case TraceEventKind::kRepairFailed:
        // Repair outcomes reference a previously admitted flow's request.
        EXPECT_GE(event.flow, 1u);
        EXPECT_DOUBLE_EQ(event.bandwidth_bps, 64'000.0);
        break;
    }
  }
  EXPECT_GT(last_arrival_id, 0u);
}

TEST(SimulationTracing, EventStreamIsConsistent) {
  const net::Topology topo = net::topologies::ring(6);
  SimulationConfig config;
  config.traffic.arrival_rate = 5.0;
  config.traffic.mean_holding_s = 30.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {1, 2};
  config.group_members = {0, 3};
  config.warmup_s = 50.0;
  config.measure_s = 200.0;
  config.seed = 3;
  MemoryTraceSink sink;
  config.trace = &sink;
  Simulation sim(topo, config);
  const SimulationResult result = sim.run();

  const std::size_t admitted = sink.count(TraceEventKind::kAdmitted);
  const std::size_t departed = sink.count(TraceEventKind::kDeparted);
  const std::size_t dropped = sink.count(TraceEventKind::kDropped);
  // Every departure/drop corresponds to an earlier admission; flows still
  // active at the end account for the difference.
  EXPECT_GE(admitted, departed + dropped);
  EXPECT_GT(admitted, 0u);
  // Trace covers warm-up too, so it sees at least the measured admissions.
  EXPECT_GE(admitted, result.admitted);

  // Timestamps are non-decreasing and the active-flow counter never jumps by
  // more than one per flow event.
  double last_time = 0.0;
  for (const TraceEvent& event : sink.events()) {
    EXPECT_GE(event.time, last_time);
    last_time = event.time;
  }
}

TEST(SimulationTracing, FaultEventsAppearInOrder) {
  const net::Topology topo = net::topologies::ring(6);
  SimulationConfig config;
  config.traffic.arrival_rate = 2.0;
  config.traffic.mean_holding_s = 20.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {2};
  config.group_members = {0};
  config.warmup_s = 10.0;
  config.measure_s = 200.0;
  config.seed = 4;
  config.faults.push_back(single_fault(0, 1, 50.0, 100.0));
  MemoryTraceSink sink;
  config.trace = &sink;
  Simulation sim(topo, config);
  (void)sim.run();

  ASSERT_EQ(sink.count(TraceEventKind::kLinkDown), 1u);
  ASSERT_EQ(sink.count(TraceEventKind::kLinkUp), 1u);
  double down_time = -1.0;
  double up_time = -1.0;
  for (const TraceEvent& event : sink.events()) {
    if (event.kind == TraceEventKind::kLinkDown) {
      down_time = event.time;
      EXPECT_EQ(event.source, 0u);
      EXPECT_EQ(event.destination, 1u);
    }
    if (event.kind == TraceEventKind::kLinkUp) {
      up_time = event.time;
    }
  }
  EXPECT_DOUBLE_EQ(down_time, 50.0);
  EXPECT_DOUBLE_EQ(up_time, 100.0);
}

TEST(SimulationTracing, NoSinkMeansNoOverheadPath) {
  // Smoke: runs identically with tracing disabled (results must match a
  // traced run — tracing is observation only).
  const net::Topology topo = net::topologies::ring(6);
  SimulationConfig config;
  config.traffic.arrival_rate = 5.0;
  config.traffic.mean_holding_s = 30.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {1, 2};
  config.group_members = {0, 3};
  config.warmup_s = 50.0;
  config.measure_s = 200.0;
  config.seed = 5;
  Simulation untraced(topo, config);
  const SimulationResult a = untraced.run();
  MemoryTraceSink sink;
  config.trace = &sink;
  Simulation traced(topo, config);
  const SimulationResult b = traced.run();
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_DOUBLE_EQ(a.admission_probability, b.admission_probability);
}

}  // namespace
}  // namespace anyqos::sim
