#include "src/sim/timeseries.h"

#include <gtest/gtest.h>

namespace anyqos::sim {
namespace {

TEST(TimeSeriesProbe, SamplesOnSchedule) {
  des::Simulator sim;
  double gauge_value = 0.0;
  TimeSeriesProbe probe(sim, 10.0, 5.0);
  probe.add_gauge("load", [&] { return gauge_value; });
  probe.arm();
  sim.schedule_at(12.0, [&] { gauge_value = 3.0; });
  sim.schedule_at(22.0, [&] { gauge_value = 7.0; });
  sim.run_until(30.0);

  const TimeSeries& series = probe.series("load");
  // Samples at t = 10, 15, 20, 25, 30.
  ASSERT_EQ(series.size(), 5u);
  EXPECT_DOUBLE_EQ(series.times[0], 10.0);
  EXPECT_DOUBLE_EQ(series.values[0], 0.0);
  EXPECT_DOUBLE_EQ(series.values[1], 3.0);   // t=15, after the 12.0 change
  EXPECT_DOUBLE_EQ(series.values[4], 7.0);   // t=30
}

TEST(TimeSeriesProbe, MultipleGauges) {
  des::Simulator sim;
  TimeSeriesProbe probe(sim, 0.0, 1.0);
  probe.add_gauge("time", [&] { return sim.now(); });
  probe.add_gauge("const", [] { return 42.0; });
  probe.arm();
  sim.run_until(3.0);
  EXPECT_EQ(probe.series().size(), 2u);
  const TimeSeries& t = probe.series("time");
  ASSERT_EQ(t.size(), 4u);  // 0,1,2,3
  EXPECT_DOUBLE_EQ(t.values[2], 2.0);
  EXPECT_DOUBLE_EQ(probe.series("const").values[3], 42.0);
}

TEST(TimeSeriesProbe, DisarmStopsSampling) {
  des::Simulator sim;
  TimeSeriesProbe probe(sim, 0.0, 1.0);
  probe.add_gauge("g", [] { return 1.0; });
  probe.arm();
  sim.schedule_at(2.5, [&] { probe.disarm(); });
  sim.run_until(10.0);
  EXPECT_EQ(probe.series("g").size(), 3u);  // 0, 1, 2
}

TEST(TimeSeriesProbe, Validation) {
  des::Simulator sim;
  EXPECT_THROW(TimeSeriesProbe(sim, 0.0, 0.0), std::invalid_argument);
  TimeSeriesProbe probe(sim, 0.0, 1.0);
  EXPECT_THROW(probe.arm(), std::invalid_argument);  // no gauges
  probe.add_gauge("g", [] { return 0.0; });
  probe.arm();
  EXPECT_THROW(probe.arm(), std::invalid_argument);  // double arm
  EXPECT_THROW(probe.add_gauge("late", [] { return 0.0; }), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(probe.series("missing")), std::invalid_argument);
}

TEST(TimeSeriesProbe, StartInPastRejected) {
  des::Simulator sim;
  sim.run_until(5.0);
  EXPECT_THROW(TimeSeriesProbe(sim, 1.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::sim
