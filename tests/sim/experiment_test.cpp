#include "src/sim/experiment.h"

#include <gtest/gtest.h>

namespace anyqos::sim {
namespace {

TEST(PaperModel, MatchesSection51) {
  const ExperimentModel model = paper_model();
  EXPECT_EQ(model.topology.router_count(), 19u);
  // Sources at odd router ids.
  ASSERT_EQ(model.sources.size(), 9u);
  for (const net::NodeId s : model.sources) {
    EXPECT_EQ(s % 2, 1u);
  }
  EXPECT_EQ(model.group_members, (std::vector<net::NodeId>{0, 4, 8, 12, 16}));
  EXPECT_DOUBLE_EQ(model.flow_bandwidth_bps, 64'000.0);
  EXPECT_DOUBLE_EQ(model.mean_holding_s, 180.0);
  EXPECT_DOUBLE_EQ(model.anycast_share, 0.2);
}

TEST(PaperModel, BaseConfigCarriesModelIntoSimulationConfig) {
  const ExperimentModel model = paper_model();
  const SimulationConfig config = model.base_config(35.0);
  EXPECT_DOUBLE_EQ(config.traffic.arrival_rate, 35.0);
  EXPECT_DOUBLE_EQ(config.traffic.mean_holding_s, 180.0);
  EXPECT_EQ(config.traffic.sources.size(), 9u);
  EXPECT_EQ(config.group_members.size(), 5u);
  EXPECT_DOUBLE_EQ(config.anycast_share, 0.2);
  EXPECT_THROW(model.base_config(0.0), std::invalid_argument);
}

TEST(DefaultLambdaGrid, TenPointsFiveToFifty) {
  const auto grid = default_lambda_grid();
  ASSERT_EQ(grid.size(), 10u);
  EXPECT_DOUBLE_EQ(grid.front(), 5.0);
  EXPECT_DOUBLE_EQ(grid.back(), 50.0);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(grid[i] - grid[i - 1], 5.0);
  }
}

TEST(RunControlsHelper, AppliesAndValidates) {
  const ExperimentModel model = paper_model();
  SimulationConfig config = model.base_config(10.0);
  RunControls controls;
  controls.warmup_s = 123.0;
  controls.measure_s = 456.0;
  controls.seed = 99;
  apply_run_controls(config, controls);
  EXPECT_DOUBLE_EQ(config.warmup_s, 123.0);
  EXPECT_DOUBLE_EQ(config.measure_s, 456.0);
  EXPECT_EQ(config.seed, 99u);
  controls.measure_s = 0.0;
  EXPECT_THROW(apply_run_controls(config, controls), std::invalid_argument);
}

TEST(SweepLambda, RunsEveryPointWithConfigurator) {
  ExperimentModel model = paper_model();
  const std::vector<double> lambdas = {3.0, 6.0};
  const auto points = sweep_lambda(model, lambdas, [](SimulationConfig& config) {
    config.warmup_s = 50.0;
    config.measure_s = 200.0;
    config.max_tries = 1;
  });
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].lambda, 3.0);
  EXPECT_DOUBLE_EQ(points[1].lambda, 6.0);
  for (const SweepPoint& point : points) {
    EXPECT_GT(point.result.offered, 0u);
    EXPECT_GT(point.result.admission_probability, 0.9);  // light loads
  }
  EXPECT_THROW(sweep_lambda(model, {}, nullptr), std::invalid_argument);
}

TEST(SweepLambda, NullConfiguratorUsesDefaults) {
  ExperimentModel model = paper_model();
  // Shrink the run through the model's base config is not possible without a
  // configurator, so pass one that only shortens the run (the default
  // algorithm settings stay).
  const auto points = sweep_lambda(model, {2.0}, [](SimulationConfig& config) {
    config.warmup_s = 10.0;
    config.measure_s = 50.0;
  });
  EXPECT_EQ(points[0].result.system_label, "<ED,2>");
}

}  // namespace
}  // namespace anyqos::sim
