#include "src/sim/traffic.h"

#include <gtest/gtest.h>

#include <map>

namespace anyqos::sim {
namespace {

TrafficModel paper_traffic() {
  TrafficModel model;
  model.arrival_rate = 20.0;
  model.mean_holding_s = 180.0;
  model.flow_bandwidth_bps = 64'000.0;
  model.sources = {1, 3, 5, 7, 9};
  return model;
}

TEST(TrafficModel, ValidationCatchesNonsense) {
  TrafficModel model = paper_traffic();
  EXPECT_NO_THROW(model.validate());
  model.arrival_rate = 0.0;
  EXPECT_THROW(model.validate(), std::invalid_argument);
  model = paper_traffic();
  model.mean_holding_s = -1.0;
  EXPECT_THROW(model.validate(), std::invalid_argument);
  model = paper_traffic();
  model.sources.clear();
  EXPECT_THROW(model.validate(), std::invalid_argument);
}

TEST(TrafficModel, OfferedErlangs) {
  const TrafficModel model = paper_traffic();
  EXPECT_DOUBLE_EQ(model.offered_erlangs(), 20.0 * 180.0);
}

TEST(ArrivalProcess, InterarrivalMeanMatchesRate) {
  const des::SeedSequence seeds(1);
  ArrivalProcess arrivals(paper_traffic(), seeds);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    sum += arrivals.next_interarrival();
  }
  EXPECT_NEAR(sum / n, 1.0 / 20.0, 0.001);
}

TEST(ArrivalProcess, HoldingMeanMatches) {
  const des::SeedSequence seeds(2);
  ArrivalProcess arrivals(paper_traffic(), seeds);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    sum += arrivals.draw_holding();
  }
  EXPECT_NEAR(sum / n, 180.0, 2.0);
}

TEST(ArrivalProcess, SourcesDrawnUniformly) {
  const des::SeedSequence seeds(3);
  ArrivalProcess arrivals(paper_traffic(), seeds);
  std::map<net::NodeId, int> counts;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    ++counts[arrivals.draw_source()];
  }
  ASSERT_EQ(counts.size(), 5u);
  for (const auto& [source, count] : counts) {
    EXPECT_NEAR(count / static_cast<double>(n), 0.2, 0.01) << "source " << source;
  }
}

TEST(ArrivalProcess, StreamsAreIndependentOfConsumptionOrder) {
  // Drawing extra holdings must not change the arrival sequence — the
  // common-random-numbers property used to compare systems fairly.
  const des::SeedSequence seeds(4);
  ArrivalProcess a(paper_traffic(), seeds);
  ArrivalProcess b(paper_traffic(), seeds);
  (void)b.draw_holding();
  (void)b.draw_holding();
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.next_interarrival(), b.next_interarrival());
  }
}

TEST(ArrivalProcess, ReproducibleAcrossConstructions) {
  const des::SeedSequence seeds(5);
  ArrivalProcess a(paper_traffic(), seeds);
  ArrivalProcess b(paper_traffic(), seeds);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.next_interarrival(), b.next_interarrival());
    EXPECT_EQ(a.draw_source(), b.draw_source());
    EXPECT_DOUBLE_EQ(a.draw_holding(), b.draw_holding());
  }
}

TEST(ArrivalProcess, InvalidModelRejectedAtConstruction) {
  const des::SeedSequence seeds(6);
  TrafficModel bad = paper_traffic();
  bad.flow_bandwidth_bps = 0.0;
  EXPECT_THROW(ArrivalProcess(bad, seeds), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::sim
