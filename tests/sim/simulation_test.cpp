#include "src/sim/simulation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/net/topologies.h"

namespace anyqos::sim {
namespace {

// A small, fast model: 6-node ring, two members, three sources.
SimulationConfig small_config(double lambda) {
  SimulationConfig config;
  config.traffic.arrival_rate = lambda;
  config.traffic.mean_holding_s = 30.0;
  config.traffic.flow_bandwidth_bps = 64'000.0;
  config.traffic.sources = {1, 2, 5};
  config.group_members = {0, 3};
  config.anycast_share = 0.2;
  config.warmup_s = 100.0;
  config.measure_s = 500.0;
  config.seed = 7;
  return config;
}

TEST(Simulation, ProducesSaneResultsUnderLightLoad) {
  const net::Topology topo = net::topologies::ring(6);
  Simulation sim(topo, small_config(1.0));
  const SimulationResult result = sim.run();
  EXPECT_GT(result.offered, 100u);
  EXPECT_GE(result.admission_probability, 0.99);  // far below capacity
  EXPECT_LE(result.admission_probability, 1.0);
  EXPECT_GE(result.average_attempts, 1.0);
  EXPECT_EQ(result.dropped, 0u);
  EXPECT_GT(result.average_active_flows, 0.0);
}

TEST(Simulation, HeavyLoadBlocksSomeFlows) {
  // Ring links hold 312 flows; at lambda = 200, offered ≈ 6000 erlangs.
  const net::Topology topo = net::topologies::ring(6);
  Simulation sim(topo, small_config(200.0));
  const SimulationResult result = sim.run();
  EXPECT_LT(result.admission_probability, 0.9);
  EXPECT_GT(result.admission_probability, 0.0);
  EXPECT_GT(result.mean_link_utilization, 0.1);
  EXPECT_LE(result.max_link_utilization, 1.0 + 1e-9);
}

TEST(Simulation, SameSeedIsFullyReproducible) {
  const net::Topology topo = net::topologies::ring(6);
  Simulation a(topo, small_config(50.0));
  Simulation b(topo, small_config(50.0));
  const SimulationResult ra = a.run();
  const SimulationResult rb = b.run();
  EXPECT_EQ(ra.offered, rb.offered);
  EXPECT_EQ(ra.admitted, rb.admitted);
  EXPECT_DOUBLE_EQ(ra.admission_probability, rb.admission_probability);
  EXPECT_DOUBLE_EQ(ra.average_attempts, rb.average_attempts);
  EXPECT_EQ(ra.messages.total(), rb.messages.total());
}

TEST(Simulation, CommonRandomNumbersAcrossSystems) {
  // The fairness property behind every comparison bench: at equal seed,
  // different systems face the exact same request stream — same number of
  // offered requests in the window, same source sequence (checked via
  // identical per-source offered counts using the trace).
  const net::Topology topo = net::topologies::ring(6);
  SimulationConfig config = small_config(50.0);
  MemoryTraceSink trace_a;
  config.trace = &trace_a;
  config.algorithm = core::SelectionAlgorithm::kEvenDistribution;
  Simulation a(topo, config);
  const SimulationResult ra = a.run();

  MemoryTraceSink trace_b;
  config.trace = &trace_b;
  config.algorithm = core::SelectionAlgorithm::kDistanceBandwidth;
  Simulation b(topo, config);
  const SimulationResult rb = b.run();

  EXPECT_EQ(ra.offered, rb.offered);
  // Decision events (admitted + rejected) must occur at identical times.
  std::vector<double> times_a;
  for (const TraceEvent& e : trace_a.events()) {
    if (e.kind == TraceEventKind::kAdmitted || e.kind == TraceEventKind::kRejected) {
      times_a.push_back(e.time);
    }
  }
  std::vector<double> times_b;
  for (const TraceEvent& e : trace_b.events()) {
    if (e.kind == TraceEventKind::kAdmitted || e.kind == TraceEventKind::kRejected) {
      times_b.push_back(e.time);
    }
  }
  ASSERT_EQ(times_a.size(), times_b.size());
  for (std::size_t i = 0; i < times_a.size(); ++i) {
    ASSERT_DOUBLE_EQ(times_a[i], times_b[i]);
  }
}

TEST(Simulation, DifferentSeedsDifferButAgreeStatistically) {
  const net::Topology topo = net::topologies::ring(6);
  SimulationConfig config = small_config(50.0);
  Simulation a(topo, config);
  config.seed = 8;
  Simulation b(topo, config);
  const SimulationResult ra = a.run();
  const SimulationResult rb = b.run();
  EXPECT_NE(ra.offered, rb.offered);
  EXPECT_NEAR(ra.admission_probability, rb.admission_probability, 0.1);
}

TEST(Simulation, ReservedBandwidthMatchesActiveFlows) {
  const net::Topology topo = net::topologies::ring(6);
  Simulation sim(topo, small_config(20.0));
  (void)sim.run();
  // Whatever is still reserved must be whole flows' worth on some links.
  const double reserved = sim.ledger().total_reserved();
  const double per_flow = 64'000.0;
  EXPECT_NEAR(std::fmod(reserved, per_flow), 0.0, 1.0);
}

TEST(Simulation, GdiModeRunsAndBeatsNothingness) {
  const net::Topology topo = net::topologies::ring(6);
  SimulationConfig config = small_config(100.0);
  config.use_gdi = true;
  Simulation sim(topo, config);
  const SimulationResult result = sim.run();
  EXPECT_EQ(result.system_label, "GDI");
  EXPECT_GT(result.admission_probability, 0.0);
  EXPECT_DOUBLE_EQ(result.average_messages, 0.0);  // oracle has no signaling
  EXPECT_DOUBLE_EQ(result.average_attempts, 1.0);
}

TEST(Simulation, SystemLabels) {
  SimulationConfig config = small_config(1.0);
  config.algorithm = core::SelectionAlgorithm::kEvenDistribution;
  config.max_tries = 2;
  EXPECT_EQ(Simulation::system_label(config), "<ED,2>");
  config.algorithm = core::SelectionAlgorithm::kDistanceHistory;
  config.max_tries = 3;
  EXPECT_EQ(Simulation::system_label(config), "<WD/D+H,3>");
  config.algorithm = core::SelectionAlgorithm::kShortestPath;
  config.max_tries = 1;
  EXPECT_EQ(Simulation::system_label(config), "SP");
  config.use_gdi = true;
  EXPECT_EQ(Simulation::system_label(config), "GDI");
}

TEST(Simulation, AttemptsRespectRetryBudget) {
  const net::Topology topo = net::topologies::ring(6);
  SimulationConfig config = small_config(300.0);
  config.max_tries = 2;
  Simulation sim(topo, config);
  const SimulationResult result = sim.run();
  EXPECT_LE(result.attempts_histogram.max_value(), 2u);
  EXPECT_GE(result.average_attempts, 1.0);
  EXPECT_LE(result.average_attempts, 2.0);
}

TEST(Simulation, MessageAccountingConsistent) {
  const net::Topology topo = net::topologies::ring(6);
  Simulation sim(topo, small_config(30.0));
  const SimulationResult result = sim.run();
  using signaling::MessageKind;
  // Every admitted flow sent PATH+RESV over its route; failures added
  // PATH/PATH_ERR pairs; teardowns happen per departure. RESV hop total can
  // never exceed PATH hop total.
  EXPECT_LE(result.messages.by_kind(MessageKind::kResv),
            result.messages.by_kind(MessageKind::kPath));
  EXPECT_EQ(result.messages.by_kind(MessageKind::kProbe), 0u);  // ED probes nothing
}

TEST(Simulation, WdbProbesGenerateMessages) {
  const net::Topology topo = net::topologies::ring(6);
  SimulationConfig config = small_config(30.0);
  config.algorithm = core::SelectionAlgorithm::kDistanceBandwidth;
  Simulation sim(topo, config);
  const SimulationResult result = sim.run();
  EXPECT_GT(result.messages.by_kind(signaling::MessageKind::kProbe), 0u);
}

TEST(Simulation, RunTwiceRejected) {
  const net::Topology topo = net::topologies::ring(6);
  Simulation sim(topo, small_config(1.0));
  (void)sim.run();
  EXPECT_THROW(sim.run(), std::invalid_argument);
}

TEST(Simulation, ConfigValidation) {
  const net::Topology topo = net::topologies::ring(6);
  SimulationConfig config = small_config(1.0);
  config.group_members = {99};
  EXPECT_THROW(Simulation(topo, config), std::invalid_argument);
  config = small_config(1.0);
  config.traffic.sources = {99};
  EXPECT_THROW(Simulation(topo, config), std::invalid_argument);
  config = small_config(1.0);
  config.measure_s = 0.0;
  EXPECT_THROW(Simulation(topo, config), std::invalid_argument);
  config = small_config(1.0);
  config.faults.push_back(LinkFault{0, 2, 10.0, 20.0});  // no such link on the ring
  EXPECT_THROW(Simulation(topo, config), std::invalid_argument);
}

TEST(Simulation, PerDestinationSplitRoughlyEvenForEdOnSymmetricRing) {
  const net::Topology topo = net::topologies::ring(6);
  SimulationConfig config = small_config(10.0);
  config.traffic.sources = {1, 2, 4, 5};  // symmetric w.r.t. members {0, 3}
  Simulation sim(topo, config);
  const SimulationResult result = sim.run();
  const auto& per_dest = result.per_destination_admissions;
  ASSERT_EQ(per_dest.size(), 2u);
  const double total = static_cast<double>(per_dest[0] + per_dest[1]);
  EXPECT_NEAR(per_dest[0] / total, 0.5, 0.05);
}

}  // namespace
}  // namespace anyqos::sim
