#include "src/obs/timeline.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "src/des/simulator.h"

namespace anyqos::obs {
namespace {

TEST(Timeline, RejectsInvalidOptionsAndRegistration) {
  EXPECT_THROW(Timeline(TimelineOptions{0.0}), std::invalid_argument);
  EXPECT_THROW(Timeline(TimelineOptions{-1.0}), std::invalid_argument);

  Timeline timeline;
  EXPECT_THROW(timeline.add_gauge("", [] { return 0.0; }), std::invalid_argument);
  EXPECT_THROW(timeline.add_gauge("g", nullptr), std::invalid_argument);
  EXPECT_THROW(timeline.sample(), std::invalid_argument);
  EXPECT_THROW(timeline.mark_measurement_start(0.0), std::invalid_argument);

  des::Simulator simulator;
  timeline.add_gauge("g", [] { return 1.0; });
  timeline.attach(simulator);
  EXPECT_TRUE(timeline.active());
  EXPECT_THROW(timeline.add_gauge("late", [] { return 0.0; }), std::invalid_argument);
  EXPECT_THROW(timeline.attach(simulator), std::invalid_argument);
  timeline.mark_measurement_start(0.0);
  EXPECT_THROW(timeline.mark_measurement_start(0.0), std::invalid_argument);
}

TEST(Timeline, SamplesGaugeRateAndWatermarkPerWindow) {
  des::Simulator simulator;
  Timeline timeline(TimelineOptions{10.0});
  double gauge = 0.0;
  double counter = 0.0;
  double floor = 0.4;
  timeline.add_gauge("gauge", [&] { return gauge; });
  timeline.add_counter("rate", [&] { return counter; });
  const Timeline::ColumnId hwm = timeline.add_watermark("hwm", [&] { return floor; });

  // note() before attach is a guarded no-op.
  timeline.note(hwm, 99.0);
  EXPECT_FALSE(timeline.active());
  timeline.attach(simulator);

  simulator.schedule_at(3.0, [&] {
    gauge = 5.0;
    counter = 20.0;
    timeline.note(hwm, 0.9);  // spike inside window 1, gone by the sample
    timeline.note(hwm, 0.2);  // lower than the running max: ignored
  });
  simulator.run_until(20.0);

  ASSERT_EQ(timeline.samples().size(), 2u);
  const TimelineSample& first = timeline.samples()[0];
  EXPECT_DOUBLE_EQ(first.time, 10.0);
  EXPECT_DOUBLE_EQ(first.window_s, 10.0);
  EXPECT_TRUE(first.warmup);
  EXPECT_DOUBLE_EQ(first.values[0], 5.0);  // gauge: point sample
  EXPECT_DOUBLE_EQ(first.values[1], 2.0);  // rate: 20 / 10 s
  EXPECT_DOUBLE_EQ(first.values[2], 0.9);  // watermark: noted spike wins

  // Window 2 saw no activity: the rate drops to zero and the watermark
  // falls back to the probe floor (the noted max resets every window).
  const TimelineSample& second = timeline.samples()[1];
  EXPECT_DOUBLE_EQ(second.values[1], 0.0);
  EXPECT_DOUBLE_EQ(second.values[2], 0.4);
}

TEST(Timeline, MeasurementStartRebaselinesCountersAndFlagsWarmup) {
  des::Simulator simulator;
  Timeline timeline(TimelineOptions{10.0});
  double counter = 0.0;
  timeline.add_counter("rate", [&] { return counter; });
  timeline.attach(simulator);

  simulator.schedule_at(5.0, [&] { counter = 100.0; });
  simulator.run_until(10.0);
  // Warm-up boundary mid-window with a counter reset (the simulation resets
  // its MessageCounter there): rebaselining keeps the next rate non-negative.
  simulator.schedule_at(15.0, [&] {
    counter = 0.0;
    timeline.mark_measurement_start(simulator.now());
  });
  simulator.schedule_at(18.0, [&] { counter = 30.0; });
  simulator.run_until(20.0);

  ASSERT_EQ(timeline.samples().size(), 2u);
  EXPECT_TRUE(timeline.samples()[0].warmup);
  EXPECT_DOUBLE_EQ(timeline.samples()[0].values[0], 10.0);  // 100 / 10 s
  const TimelineSample& measured = timeline.samples()[1];
  EXPECT_FALSE(measured.warmup);
  EXPECT_DOUBLE_EQ(measured.window_s, 5.0);  // window restarted at t = 15
  EXPECT_DOUBLE_EQ(measured.values[0], 6.0);  // 30 / 5 s, not (30 - 100) / 5
  ASSERT_TRUE(timeline.measurement_start().has_value());
  EXPECT_DOUBLE_EQ(*timeline.measurement_start(), 15.0);
}

TEST(Timeline, StopRearmingGuardEmptiesTheCalendar) {
  des::Simulator simulator;
  Timeline timeline(TimelineOptions{10.0});
  timeline.add_gauge("g", [] { return 1.0; });
  bool stop = false;
  timeline.attach(simulator, [&] { return stop; });
  simulator.schedule_at(15.0, [&] { stop = true; });
  // The t = 20 sample sees the guard and parks no successor, so run() (to
  // calendar exhaustion, the drain-to-quiescence contract) terminates.
  simulator.run();
  EXPECT_EQ(timeline.samples().size(), 2u);
  EXPECT_DOUBLE_EQ(simulator.now(), 20.0);
}

TEST(Timeline, WritesJsonlHeaderAndRows) {
  des::Simulator simulator;
  Timeline timeline(TimelineOptions{10.0});
  double counter = 0.0;
  timeline.add_gauge("active", [] { return 3.0; });
  timeline.add_counter("offered_per_s", [&] { return counter; });
  timeline.attach(simulator);
  simulator.schedule_at(4.0, [&] { counter = 5.0; });
  simulator.run_until(10.0);

  std::ostringstream out;
  timeline.write_jsonl(out);
  EXPECT_EQ(out.str(),
            "{\"timeline\":\"header\",\"interval_s\":10,\"measurement_start_s\":null,"
            "\"columns\":[{\"name\":\"active\",\"kind\":\"gauge\"},"
            "{\"name\":\"offered_per_s\",\"kind\":\"rate\"}]}\n"
            "{\"timeline\":\"sample\",\"t\":10,\"window_s\":10,\"warmup\":true,"
            "\"values\":[3,0.5]}\n");
}

TEST(Timeline, WritesWideCsv) {
  des::Simulator simulator;
  Timeline timeline(TimelineOptions{5.0});
  timeline.add_gauge("util", [] { return 0.25; });
  timeline.attach(simulator);
  simulator.run_until(10.0);
  timeline.mark_measurement_start(10.0);
  simulator.run_until(15.0);

  std::ostringstream out;
  timeline.write_csv(out);
  EXPECT_EQ(out.str(),
            "time,window_s,warmup,util\n"
            "5,5,1,0.25\n"
            "10,5,1,0.25\n"
            "15,5,0,0.25\n");
}

TEST(Timeline, SameInputsProduceByteIdenticalArtifacts) {
  const auto render = [] {
    des::Simulator simulator;
    Timeline timeline(TimelineOptions{7.0});
    double counter = 0.0;
    timeline.add_gauge("g", [&] { return counter / 3.0; });
    timeline.add_counter("c", [&] { return counter; });
    const Timeline::ColumnId hwm = timeline.add_watermark("w", [&] { return counter / 7.0; });
    timeline.attach(simulator);
    for (int i = 1; i <= 9; ++i) {
      simulator.schedule_at(2.5 * i, [&timeline, &counter, hwm, i] {
        counter += 1.0 / i;
        timeline.note(hwm, counter);
      });
    }
    simulator.run_until(25.0);
    std::ostringstream jsonl;
    timeline.write_jsonl(jsonl);
    std::ostringstream csv;
    timeline.write_csv(csv);
    return jsonl.str() + csv.str();
  };
  EXPECT_EQ(render(), render());
}

}  // namespace
}  // namespace anyqos::obs
