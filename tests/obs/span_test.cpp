#include "src/obs/span.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

#include "src/core/admission.h"
#include "src/net/topologies.h"

namespace anyqos::obs {
namespace {

// Line 0-1-2-3-4, members at {1, 4}: both routes from source 0 share the
// 0-1 link, so saturating it refuses every member (retrial exhaustion).
struct Fixture {
  net::Topology topo = net::topologies::line(5);
  core::AnycastGroup group{"g", {1, 4}};
  net::RouteTable routes{topo, {1, 4}};
  net::BandwidthLedger ledger{topo, 0.2};
  signaling::MessageCounter counter;
  signaling::ReservationProtocol rsvp{ledger, counter};
  signaling::ProbeService probe{ledger, counter};
  des::RandomStream rng{99};
  MemorySpanSink sink;
  DecisionTracer tracer;

  std::unique_ptr<core::AdmissionController> controller(std::size_t max_tries) {
    core::SelectorEnvironment env;
    env.source = 0;
    env.group = &group;
    env.routes = &routes;
    env.probe = &probe;
    env.flow_bandwidth = 64'000.0;
    auto c = std::make_unique<core::AdmissionController>(
        0, group, routes, rsvp,
        core::make_selector(core::SelectionAlgorithm::kEvenDistribution, env),
        std::make_unique<core::CounterRetrialPolicy>(max_tries));
    tracer.set_sink(&sink);
    c->set_tracer(&tracer);
    return c;
  }

  core::FlowRequest request(std::uint64_t id) {
    core::FlowRequest r;
    r.source = 0;
    r.bandwidth_bps = 64'000.0;
    r.request_id = id;
    return r;
  }

  void saturate_shared_link() {
    net::Path p;
    p.source = 0;
    p.destination = 1;
    p.links = {*topo.find_link(0, 1)};
    ASSERT_TRUE(ledger.reserve(p, ledger.available(p.links[0])));
  }
};

TEST(DecisionTracer, AdmittedRequestProducesRootAndChildSpans) {
  Fixture f;
  const auto controller = f.controller(2);
  const core::AdmissionDecision decision = controller->admit(f.request(7), f.rng);
  ASSERT_TRUE(decision.admitted);

  ASSERT_EQ(f.sink.decisions().size(), 1u);
  const DecisionSpan& root = f.sink.decisions().front();
  EXPECT_EQ(root.request_id, 7u);
  EXPECT_EQ(root.source, 0u);
  EXPECT_DOUBLE_EQ(root.bandwidth_bps, 64'000.0);
  EXPECT_EQ(root.algorithm, "ED");
  EXPECT_TRUE(root.admitted);
  EXPECT_EQ(root.destination_index, decision.destination_index);
  EXPECT_EQ(root.attempts, decision.attempts);
  EXPECT_EQ(root.messages, decision.messages);
  EXPECT_EQ(root.max_attempts, 2u);
  EXPECT_EQ(root.group_size, 2u);

  ASSERT_EQ(f.sink.attempts().size(), 1u);
  const AttemptSpan& child = f.sink.attempts().front();
  EXPECT_EQ(child.request_id, root.request_id);
  EXPECT_EQ(child.attempt_number, 1u);
  EXPECT_EQ(child.member_index, *decision.destination_index);
  EXPECT_EQ(child.member_node, f.group.member(*decision.destination_index));
  EXPECT_EQ(child.weights.size(), f.group.size());  // snapshot at selection time
  EXPECT_EQ(child.route_hops, decision.route.hops());
  EXPECT_TRUE(child.admitted);
  EXPECT_FALSE(child.blocking_link.has_value());
  EXPECT_GT(child.messages, 0u);
  EXPECT_EQ(child.retries_remaining, 1u);  // R=2, one attempt spent
  // The PATH walk saw the pre-reservation availability of the route.
  EXPECT_GT(child.bottleneck_bps, 0.0);
  EXPECT_TRUE(std::isfinite(child.bottleneck_bps));
}

TEST(DecisionTracer, RetrialExhaustionKeepsParentChildIntegrity) {
  Fixture f;
  const auto controller = f.controller(2);  // R = K = 2
  f.saturate_shared_link();
  const core::AdmissionDecision decision = controller->admit(f.request(11), f.rng);
  ASSERT_FALSE(decision.admitted);
  ASSERT_EQ(decision.attempts, 2u);

  ASSERT_EQ(f.sink.decisions().size(), 1u);
  const DecisionSpan& root = f.sink.decisions().front();
  EXPECT_FALSE(root.admitted);
  EXPECT_FALSE(root.destination_index.has_value());
  EXPECT_EQ(root.attempts, 2u);

  const auto children = f.sink.attempts_for(11);
  ASSERT_EQ(children.size(), 2u);
  std::set<std::size_t> members;
  std::set<std::uint64_t> span_ids;
  for (std::size_t i = 0; i < children.size(); ++i) {
    EXPECT_EQ(children[i].request_id, root.request_id);
    EXPECT_EQ(children[i].attempt_number, i + 1);
    EXPECT_FALSE(children[i].admitted);
    ASSERT_TRUE(children[i].blocking_link.has_value());
    // Every route starts at the saturated 0-1 link, so the PATH walk saw
    // zero available bandwidth there.
    EXPECT_DOUBLE_EQ(children[i].bottleneck_bps, 0.0);
    // Retry budget counts down to exhaustion: R - attempt_number.
    EXPECT_EQ(children[i].retries_remaining, 2u - (i + 1));
    members.insert(children[i].member_index);
    span_ids.insert(children[i].span_id);
  }
  // Retrial control never re-tries a member within one request.
  EXPECT_EQ(members.size(), 2u);
  EXPECT_EQ(span_ids.size(), 2u);
}

TEST(DecisionTracer, InactiveTracerEmitsNothing) {
  Fixture f;
  const auto controller = f.controller(2);
  f.tracer.set_sink(nullptr);  // controller keeps the tracer, but it is idle
  const core::AdmissionDecision decision = controller->admit(f.request(1), f.rng);
  EXPECT_TRUE(decision.admitted);
  EXPECT_EQ(f.tracer.spans_emitted(), 0u);
  EXPECT_TRUE(f.sink.decisions().empty());
  EXPECT_TRUE(f.sink.attempts().empty());
  // Direct tracer calls without a sink are a contract violation.
  EXPECT_THROW(f.tracer.begin_request(1, 0, 1.0, "ED", 2, 2), std::invalid_argument);
}

TEST(DecisionTracer, StateMachineRejectsMisuse) {
  MemorySpanSink sink;
  DecisionTracer tracer;
  tracer.set_sink(&sink);
  EXPECT_THROW(tracer.end_request(false, std::nullopt, 0), std::invalid_argument);
  EXPECT_THROW(tracer.record_attempt(0, 0, {}, 1, 0.0, false, std::nullopt, 0, 0, 0),
               std::invalid_argument);
  tracer.begin_request(1, 0, 1.0, "ED", 2, 2);
  EXPECT_THROW(tracer.begin_request(2, 0, 1.0, "ED", 2, 2), std::invalid_argument);
  tracer.end_request(false, std::nullopt, 0);
  EXPECT_EQ(sink.decisions().size(), 1u);
}

TEST(DecisionTracer, ClockStampsSpans) {
  MemorySpanSink sink;
  DecisionTracer tracer;
  tracer.set_sink(&sink);
  double now = 12.5;
  tracer.set_clock([&now] { return now; });
  tracer.begin_request(1, 0, 1.0, "ED", 2, 2);
  now = 13.0;
  tracer.record_attempt(0, 0, {0.5, 0.5}, 1, 1e6, true, std::nullopt, 2, 0, 1);
  tracer.end_request(true, 0, 2);
  EXPECT_DOUBLE_EQ(sink.decisions().front().start_time, 12.5);
  EXPECT_DOUBLE_EQ(sink.attempts().front().time, 13.0);
}

TEST(JsonlSpanSink, OneTaggedLinePerSpan) {
  std::ostringstream out;
  JsonlSpanSink sink(out);
  DecisionTracer tracer;
  tracer.set_sink(&sink);
  tracer.begin_request(5, 3, 64'000.0, "WD/D+H", 2, 3);
  tracer.record_attempt(1, 4, {0.25, 0.5, 0.25}, 2, 1.5e6, false, net::LinkId{7}, 4, 1, 1);
  tracer.record_attempt(0, 1, {0.25, 0.5, 0.25}, 1, 2e6, true, std::nullopt, 3, 0, 0);
  tracer.end_request(true, 0, 7);
  EXPECT_EQ(tracer.spans_emitted(), 3u);

  std::istringstream in(out.str());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 3u);
  // Children precede their parent; every line is a tagged JSON object.
  EXPECT_NE(lines[0].find("\"span\":\"attempt\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"request\":5"), std::string::npos);
  EXPECT_NE(lines[0].find("\"blocking_link\":7"), std::string::npos);
  EXPECT_NE(lines[0].find("\"retransmits\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"span\":\"attempt\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"retransmits\":0"), std::string::npos);
  EXPECT_NE(lines[1].find("\"blocking_link\":null"), std::string::npos);
  EXPECT_NE(lines[2].find("\"span\":\"decision\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"algorithm\":\"WD/D+H\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"attempts\":2"), std::string::npos);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

}  // namespace
}  // namespace anyqos::obs
