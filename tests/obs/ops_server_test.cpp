// Socket-level tests for obs::OpsServer: a real loopback connection per
// exchange, exercising the GET document path, the POST control path, and
// the error statuses. The HTTP parsing itself is covered in http_test.
#include "src/obs/ops_server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "src/control/directive.h"

namespace anyqos::obs {
namespace {

// One blocking HTTP exchange against 127.0.0.1:port; returns the raw
// response bytes (the server closes the connection after responding).
std::string http_exchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)), 0);
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    EXPECT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      break;
    }
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string get(std::uint16_t port, const std::string& target) {
  return http_exchange(port, "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

std::string post(std::uint16_t port, const std::string& target, const std::string& body) {
  return http_exchange(port, "POST " + target + " HTTP/1.1\r\nHost: t\r\nContent-Length: " +
                            std::to_string(body.size()) + "\r\n\r\n" + body);
}

TEST(OpsServer, ServesPublishedDocuments) {
  OpsServer server;  // ephemeral loopback port
  server.start();
  ASSERT_NE(server.port(), 0);

  server.publish("/metrics", "text/plain", "anyqos_up 1\n");
  const std::string response = get(server.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(response.find("anyqos_up 1\n"), std::string::npos);

  // Re-publishing replaces the whole document.
  server.publish("/metrics", "text/plain", "anyqos_up 0\n");
  EXPECT_NE(get(server.port(), "/metrics").find("anyqos_up 0\n"), std::string::npos);

  EXPECT_NE(get(server.port(), "/missing").find("HTTP/1.1 404"), std::string::npos);
  EXPECT_GE(server.requests_served(), 3u);
  server.stop();
}

TEST(OpsServer, IndexListsPublishedPaths) {
  OpsServer server;
  server.start();
  server.publish("/healthz", "application/json", "{}\n");
  server.publish("/status", "application/json", "{}\n");
  const std::string response = get(server.port(), "/");
  EXPECT_NE(response.find("/healthz"), std::string::npos);
  EXPECT_NE(response.find("/status"), std::string::npos);
  server.stop();
}

TEST(OpsServer, HealthEndpointCarriesSimTimeAndDrainState) {
  OpsServer server;
  server.start();
  server.publish_health(123.5, 42, false);
  const std::string response = get(server.port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"sim_time_s\":123.500000"), std::string::npos);
  EXPECT_NE(response.find("\"events_dispatched\":42"), std::string::npos);
  EXPECT_NE(response.find("\"draining\":false"), std::string::npos);
  server.publish_health(200.0, 99, true);
  EXPECT_NE(get(server.port(), "/healthz").find("\"draining\":true"), std::string::npos);
  server.stop();
}

TEST(OpsServer, ControlPostsRunThroughTheHandler) {
  control::DirectiveMailbox mailbox;
  OpsServer server;
  server.set_control_handler(
      [&mailbox](const std::string& knob_name, const std::string& body) {
        ControlOutcome outcome;
        const auto knob = control::parse_knob(knob_name);
        if (!knob.has_value()) {
          outcome.status = 404;
          outcome.body = "{\"error\":\"unknown knob\"}\n";
          return outcome;
        }
        mailbox.post({*knob, std::stod(body)});
        outcome.body = "{\"queued\":true}\n";
        return outcome;
      });
  server.start();

  EXPECT_NE(post(server.port(), "/control/shed-budget", "5").find("HTTP/1.1 200"),
            std::string::npos);
  EXPECT_NE(post(server.port(), "/control/bogus", "5").find("HTTP/1.1 404"),
            std::string::npos);
  const auto drained = mailbox.drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].knob, control::Knob::kShedBudget);
  EXPECT_EQ(drained[0].value, 5.0);
  server.stop();
}

TEST(OpsServer, ControlWithoutHandlerIs503) {
  OpsServer server;
  server.start();
  EXPECT_NE(post(server.port(), "/control/shed-budget", "5").find("HTTP/1.1 503"),
            std::string::npos);
  server.stop();
}

TEST(OpsServer, RejectsWrongMethodsAndOversizedRequests) {
  OpsServerOptions options;
  options.max_request_bytes = 512;  // the smallest cap the server accepts
  OpsServer server(options);
  server.start();
  server.publish("/metrics", "text/plain", "x\n");
  // POST off the control path / GET of an unpublished path: 404.
  EXPECT_NE(post(server.port(), "/metrics", "1").find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(get(server.port(), "/control/shed-budget").find("HTTP/1.1 404"),
            std::string::npos);
  // Any method beyond GET/POST: 405.
  EXPECT_NE(http_exchange(server.port(), "DELETE /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);
  // A request head beyond max_request_bytes: 413.
  const std::string padding(1'024, 'x');
  EXPECT_NE(http_exchange(server.port(),
                     "GET /metrics HTTP/1.1\r\nX-Pad: " + padding + "\r\n\r\n")
                .find("HTTP/1.1 413"),
            std::string::npos);
  // Garbage that never parses: 400.
  EXPECT_NE(http_exchange(server.port(), "NOT-HTTP\r\n\r\n").find("HTTP/1.1 400"),
            std::string::npos);
  server.stop();
}

TEST(OpsServer, StopIsIdempotentAndFreesThePort) {
  OpsServer server;
  server.start();
  const std::uint16_t port = server.port();
  server.stop();
  server.stop();  // second stop is a no-op
  EXPECT_FALSE(server.running());
  // The port is free again: a second server can claim it.
  OpsServerOptions options;
  options.port = port;
  OpsServer next(options);
  next.start();
  EXPECT_EQ(next.port(), port);
  next.stop();
}

}  // namespace
}  // namespace anyqos::obs
