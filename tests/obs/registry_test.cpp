#include "src/obs/registry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace anyqos::obs {
namespace {

TEST(MetricsRegistry, SameIdentityReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("requests", "help", {{"system", "<ED,2>"}});
  a.increment(3);
  // Label order must not matter: identity is the sorted label set.
  Counter& b = registry.counter("requests", "help", {{"system", "<ED,2>"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  Counter& two_labels =
      registry.counter("requests", "help", {{"b", "2"}, {"a", "1"}});
  Counter& two_labels_reordered =
      registry.counter("requests", "help", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&two_labels, &two_labels_reordered);
}

TEST(MetricsRegistry, CardinalityCountsDistinctLabelSets) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.cardinality("admissions"), 0u);
  registry.counter("admissions", "help", {{"member", "Ra"}});
  registry.counter("admissions", "help", {{"member", "Rb"}});
  registry.counter("admissions", "help", {{"member", "Ra"}});  // same series
  registry.counter("admissions", "help", {});                  // unlabelled series
  EXPECT_EQ(registry.cardinality("admissions"), 3u);
  EXPECT_EQ(registry.family_count(), 1u);
  registry.gauge("ap", "help");
  EXPECT_EQ(registry.family_count(), 2u);
  EXPECT_EQ(registry.series_count(), 4u);
}

TEST(MetricsRegistry, FamiliesAreTypeStable) {
  MetricsRegistry registry;
  registry.counter("requests", "help");
  EXPECT_THROW(registry.gauge("requests", "help"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("requests", "help", {1.0}), std::invalid_argument);
  registry.gauge("ap", "help");
  EXPECT_THROW(registry.counter("ap", "help"), std::invalid_argument);
}

TEST(MetricsRegistry, RejectsDuplicateLabelKeys) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter("x", "help", {{"k", "1"}, {"k", "2"}}),
               std::invalid_argument);
}

TEST(Histogram, BucketBoundariesUseLeSemantics) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // exactly on a boundary: belongs to the le=1 bucket
  h.observe(1.001); // <= 2
  h.observe(2.0);   // <= 2 (boundary again)
  h.observe(4.9);   // <= 5
  h.observe(5.1);   // +Inf
  h.observe(100.0); // +Inf
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 2u);  // +Inf bucket
  EXPECT_EQ(h.cumulative_count(0), 2u);
  EXPECT_EQ(h.cumulative_count(1), 4u);
  EXPECT_EQ(h.cumulative_count(2), 5u);
  EXPECT_EQ(h.cumulative_count(3), 7u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 2.0 + 4.9 + 5.1 + 100.0);
}

TEST(Histogram, WeightedObserveReplaysAggregates) {
  Histogram h({1.0, 2.0});
  h.observe(1.0, 10);
  h.observe(2.0, 4);
  EXPECT_EQ(h.bucket_count(0), 10u);
  EXPECT_EQ(h.bucket_count(1), 4u);
  EXPECT_EQ(h.count(), 14u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0 + 8.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, HistogramBoundsMustMatchOnRelookup) {
  MetricsRegistry registry;
  registry.histogram("tries", "help", {1.0, 2.0});
  EXPECT_NO_THROW(registry.histogram("tries", "help", {1.0, 2.0}));
  EXPECT_THROW(registry.histogram("tries", "help", {1.0, 3.0}), std::invalid_argument);
}

TEST(MetricsRegistry, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.counter("anyqos_requests_total", "Requests seen.", {{"system", "<ED,2>"}})
      .increment(7);
  registry.gauge("anyqos_ap", "Admission probability.").set(0.5);
  registry.histogram("anyqos_tries", "Tries.", {1.0, 2.0}).observe(1.0, 3);

  std::ostringstream out;
  registry.write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# HELP anyqos_requests_total Requests seen.\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE anyqos_requests_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("anyqos_requests_total{system=\"<ED,2>\"} 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE anyqos_ap gauge\n"), std::string::npos);
  EXPECT_NE(text.find("anyqos_ap 0.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE anyqos_tries histogram\n"), std::string::npos);
  EXPECT_NE(text.find("anyqos_tries_bucket{le=\"1\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("anyqos_tries_bucket{le=\"2\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("anyqos_tries_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("anyqos_tries_sum 3\n"), std::string::npos);
  EXPECT_NE(text.find("anyqos_tries_count 3\n"), std::string::npos);
}

TEST(MetricsRegistry, PrometheusEscapesLabelValues) {
  MetricsRegistry registry;
  registry.counter("m", "help", {{"k", "a\\b\"c\nd"}}).increment();
  std::ostringstream out;
  registry.write_prometheus(out);
  // Backslash, double quote, and newline must be escaped in label values.
  EXPECT_NE(out.str().find("m{k=\"a\\\\b\\\"c\\nd\"} 1\n"), std::string::npos);
}

TEST(MetricsRegistry, EmptyRegistryRendersNothing) {
  MetricsRegistry registry;
  std::ostringstream prom;
  registry.write_prometheus(prom);
  EXPECT_EQ(prom.str(), "");
  std::ostringstream jsonl;
  registry.write_jsonl(jsonl);
  EXPECT_EQ(jsonl.str(), "");
  EXPECT_EQ(registry.family_count(), 0u);
  EXPECT_EQ(registry.series_count(), 0u);
}

TEST(MetricsRegistry, LabelEscapingRoundTripsAcrossFormats) {
  // One value exercising every escape class: backslash, double quote,
  // newline, and a literal that must survive untouched.
  const std::string raw = "a\\b\"c\nd,e{f}";
  MetricsRegistry registry;
  registry.counter("m", "help", {{"k", raw}}).increment();

  std::ostringstream prom;
  registry.write_prometheus(prom);
  EXPECT_NE(prom.str().find("m{k=\"a\\\\b\\\"c\\nd,e{f}\"} 1\n"), std::string::npos);

  std::ostringstream jsonl;
  registry.write_jsonl(jsonl);
  EXPECT_NE(jsonl.str().find("\"labels\":{\"k\":\"a\\\\b\\\"c\\nd,e{f}\"}"),
            std::string::npos);

  // Round-trip: the escaped value still identifies the same series.
  Counter& again = registry.counter("m", "help", {{"k", raw}});
  EXPECT_EQ(again.value(), 1u);
  EXPECT_EQ(registry.series_count(), 1u);
}

TEST(MetricsRegistry, PrometheusSpellsNonFiniteValues) {
  const double inf = std::numeric_limits<double>::infinity();
  MetricsRegistry registry;
  registry.gauge("pos", "help").set(inf);
  registry.gauge("neg", "help").set(-inf);
  registry.gauge("nan", "help").set(std::nan(""));

  std::ostringstream out;
  registry.write_prometheus(out);
  const std::string text = out.str();
  // The exposition format requires +Inf/-Inf/NaN, not printf's inf/nan.
  EXPECT_NE(text.find("pos +Inf\n"), std::string::npos);
  EXPECT_NE(text.find("neg -Inf\n"), std::string::npos);
  EXPECT_NE(text.find("nan NaN\n"), std::string::npos);

  // JSON cannot carry non-finite numbers: all three map to null.
  std::ostringstream jsonl;
  registry.write_jsonl(jsonl);
  std::size_t nulls = 0;
  for (std::size_t at = jsonl.str().find("\"value\":null"); at != std::string::npos;
       at = jsonl.str().find("\"value\":null", at + 1)) {
    ++nulls;
  }
  EXPECT_EQ(nulls, 3u);
}

TEST(MetricsRegistry, HistogramInfObservationsRenderAcrossFormats) {
  const double inf = std::numeric_limits<double>::infinity();
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat", "help", {1.0});
  h.observe(0.5);
  h.observe(inf);  // lands in the +Inf bucket and poisons the sum

  std::ostringstream prom;
  registry.write_prometheus(prom);
  const std::string text = prom.str();
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum +Inf\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 2\n"), std::string::npos);

  std::ostringstream jsonl;
  registry.write_jsonl(jsonl);
  EXPECT_NE(jsonl.str().find("\"sum\":null"), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"count\":2"), std::string::npos);
}

TEST(MetricsRegistry, ExplicitInfLastBoundEmitsOneInfBucket) {
  // An explicit +Inf last bound must merge with the implicit +Inf bucket:
  // exactly one le="+Inf" line, equal to _count, never two.
  const double inf = std::numeric_limits<double>::infinity();
  MetricsRegistry registry;
  Histogram& h = registry.histogram("tries", "attempts", {1.0, 2.0, inf});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(99.0);  // beyond every finite bound

  std::ostringstream prom;
  registry.write_prometheus(prom);
  const std::string text = prom.str();
  std::size_t inf_lines = 0;
  for (std::size_t at = text.find("le=\"+Inf\""); at != std::string::npos;
       at = text.find("le=\"+Inf\"", at + 1)) {
    ++inf_lines;
  }
  EXPECT_EQ(inf_lines, 1u);
  EXPECT_EQ(text,
            "# HELP tries attempts\n"
            "# TYPE tries histogram\n"
            "tries_bucket{le=\"1\"} 1\n"
            "tries_bucket{le=\"2\"} 2\n"
            "tries_bucket{le=\"+Inf\"} 3\n"
            "tries_sum 101\n"
            "tries_count 3\n");

  // The JSONL writer likewise skips the non-finite bound instead of
  // emitting an unparsable {"le":inf} key.
  std::ostringstream jsonl;
  registry.write_jsonl(jsonl);
  EXPECT_EQ(jsonl.str().find("inf"), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"buckets\":[{\"le\":1,\"count\":1},{\"le\":2,\"count\":2}]"),
            std::string::npos);
}

TEST(MetricsRegistry, HistogramExpositionIsCumulativeAndConsistent) {
  MetricsRegistry registry;
  // Exact binary fractions so %.17g renders them shortest-form.
  Histogram& h = registry.histogram("lat", "latency", {0.25, 0.5, 1.0}, {{"sys", "ED"}});
  h.observe(0.125);
  h.observe(0.375);
  h.observe(0.375);
  h.observe(2.0);

  std::ostringstream prom;
  registry.write_prometheus(prom);
  // Exact format lock: cumulative buckets, a mandatory +Inf bucket equal to
  // _count, labels merged with le, and _sum/_count closing the family.
  EXPECT_EQ(prom.str(),
            "# HELP lat latency\n"
            "# TYPE lat histogram\n"
            "lat_bucket{sys=\"ED\",le=\"0.25\"} 1\n"
            "lat_bucket{sys=\"ED\",le=\"0.5\"} 3\n"
            "lat_bucket{sys=\"ED\",le=\"1\"} 3\n"
            "lat_bucket{sys=\"ED\",le=\"+Inf\"} 4\n"
            "lat_sum{sys=\"ED\"} 2.875\n"
            "lat_count{sys=\"ED\"} 4\n");
}

TEST(Histogram, RejectsNanBounds) {
  EXPECT_THROW(Histogram({std::numeric_limits<double>::quiet_NaN()}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, std::numeric_limits<double>::quiet_NaN()}),
               std::invalid_argument);
}

TEST(Histogram, SnapshotMatchesAccessors) {
  Histogram h({1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(3.0);
  const Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.cumulative.size(), 3u);  // one per bound plus +Inf
  EXPECT_EQ(snap.cumulative[0], h.cumulative_count(0));
  EXPECT_EQ(snap.cumulative[1], h.cumulative_count(1));
  EXPECT_EQ(snap.cumulative[2], h.count());
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 5.0);
}

TEST(MetricsRegistry, JsonlSnapshotIsOneObjectPerLine) {
  MetricsRegistry registry;
  registry.counter("c", "help", {{"k", "v"}}).increment(2);
  registry.gauge("g", "help").set(1.5);
  registry.histogram("h", "help", {1.0}).observe(0.5);
  std::ostringstream out;
  registry.write_jsonl(out);
  const std::string text = out.str();
  std::size_t lines = 0;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(text.find("\"name\":\"c\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(text.find("\"labels\":{\"k\":\"v\"}"), std::string::npos);
  EXPECT_NE(text.find("\"value\":2"), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(text.find("\"count\":1"), std::string::npos);
}

}  // namespace
}  // namespace anyqos::obs
