#include "src/obs/profiler.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "src/des/simulator.h"

namespace anyqos::obs {
namespace {

// Schedules a self-perpetuating chain of events, one per simulated second.
void install_event_chain(des::Simulator& sim, int count) {
  if (count <= 0) {
    return;
  }
  sim.schedule_in(1.0, [&sim, count] { install_event_chain(sim, count - 1); });
}

TEST(EngineProfiler, ChecksSampleAndSummaryPreconditions) {
  EngineProfiler profiler(0.0);
  EXPECT_THROW(profiler.sample(), std::invalid_argument);
  EXPECT_THROW((void)profiler.summary(), std::invalid_argument);
  des::Simulator sim;
  profiler.attach(sim);
  EXPECT_THROW(profiler.attach(sim), std::invalid_argument);
}

TEST(EngineProfiler, PeriodicCheckpointsSampleThroughput) {
  des::Simulator sim;
  install_event_chain(sim, 100);
  EngineProfiler profiler(10.0);
  std::size_t flows = 5;
  profiler.attach(sim, [&flows] { return flows; });
  sim.run_until(100.5);

  // 100 s of chain / 10 s interval = 10 checkpoints.
  EXPECT_EQ(profiler.samples().size(), 10u);
  EXPECT_DOUBLE_EQ(profiler.samples().front().sim_time_s, 10.0);
  EXPECT_DOUBLE_EQ(profiler.samples().back().sim_time_s, 100.0);
  for (const ProfileSample& sample : profiler.samples()) {
    EXPECT_EQ(sample.active_flows, 5u);
    EXPECT_GE(sample.wall_seconds, 0.0);
  }

  const ProfileSummary summary = profiler.summary();
  // 100 chain events + 10 checkpoint events fired so far.
  EXPECT_EQ(summary.events, 110u);
  EXPECT_EQ(summary.checkpoints, 10u);
  EXPECT_GT(summary.wall_seconds, 0.0);
  EXPECT_GT(summary.events_per_second, 0.0);
  EXPECT_GT(summary.sim_seconds_per_wall_second, 0.0);
  EXPECT_EQ(summary.peak_active_flows, 5u);
  EXPECT_GE(summary.peak_queue_depth, 1u);
}

TEST(EngineProfiler, DisabledIntervalMeansManualSamplesOnly) {
  des::Simulator sim;
  install_event_chain(sim, 10);
  EngineProfiler profiler(0.0);
  profiler.attach(sim);
  sim.run_until(20.0);
  EXPECT_TRUE(profiler.samples().empty());
  profiler.sample();
  ASSERT_EQ(profiler.samples().size(), 1u);
  EXPECT_EQ(profiler.samples().front().events_dispatched, 10u);
}

TEST(EngineProfiler, AttachBaselineExcludesEarlierEvents) {
  des::Simulator sim;
  install_event_chain(sim, 10);
  sim.run_until(5.5);  // 5 events before the profiler exists
  EngineProfiler profiler(0.0);
  profiler.attach(sim);
  sim.run_until(100.0);
  EXPECT_EQ(profiler.summary().events, 5u);  // only the 5 after attach
}

TEST(EngineProfiler, PhaseScopesAccumulateWallTime) {
  EngineProfiler profiler(0.0);
  {
    const auto scope = profiler.phase("warmup");
    (void)scope;
  }
  {
    const auto scope = profiler.phase("measure");
    (void)scope;
  }
  {
    const auto scope = profiler.phase("measure");  // repeats add up
    (void)scope;
  }
  ASSERT_EQ(profiler.phases().size(), 2u);
  EXPECT_EQ(profiler.phases()[0].first, "warmup");
  EXPECT_EQ(profiler.phases()[1].first, "measure");
  EXPECT_GE(profiler.phase_seconds("warmup"), 0.0);
  EXPECT_GE(profiler.phase_seconds("measure"), 0.0);
  EXPECT_DOUBLE_EQ(profiler.phase_seconds("never-timed"), 0.0);
}

TEST(EngineProfiler, SummaryUsesKernelQueueHighWaterMark) {
  des::Simulator sim;
  // Burst of simultaneous events: queue depth spikes to 50 with no
  // checkpoint anywhere near — the kernel high-water mark must catch it.
  for (int i = 0; i < 50; ++i) {
    sim.schedule_in(1.0 + 0.001 * i, [] {});
  }
  EngineProfiler profiler(0.0);
  profiler.attach(sim);
  sim.run_until(10.0);
  EXPECT_EQ(profiler.summary().peak_queue_depth, 50u);
}

TEST(EngineProfiler, ExportsEngineGaugesToRegistry) {
  des::Simulator sim;
  install_event_chain(sim, 20);
  EngineProfiler profiler(0.0);
  profiler.attach(sim);
  {
    const auto scope = profiler.phase("measure");
    sim.run_until(30.0);
  }
  MetricsRegistry registry;
  profiler.export_to(registry);
  EXPECT_DOUBLE_EQ(registry.gauge("anyqos_engine_events_total", "").value(), 20.0);
  EXPECT_GT(registry.gauge("anyqos_engine_events_per_second", "").value(), 0.0);
  EXPECT_EQ(registry.cardinality("anyqos_engine_phase_seconds"), 1u);
  EXPECT_GE(
      registry.gauge("anyqos_engine_phase_seconds", "", {{"phase", "measure"}}).value(), 0.0);
}

TEST(EngineProfiler, WritesJsonReport) {
  des::Simulator sim;
  install_event_chain(sim, 5);
  EngineProfiler profiler(2.0);
  profiler.attach(sim);
  {
    const auto scope = profiler.phase("measure");
    sim.run_until(5.5);
  }
  std::ostringstream out;
  profiler.write_json(out);
  const std::string text = out.str();
  EXPECT_EQ(text.front(), '{');
  EXPECT_NE(text.find("\"summary\":{"), std::string::npos);
  EXPECT_NE(text.find("\"events\":"), std::string::npos);
  EXPECT_NE(text.find("\"phases\":{\"measure\":"), std::string::npos);
  EXPECT_NE(text.find("\"samples\":["), std::string::npos);
  EXPECT_NE(text.find("\"queue_depth\":"), std::string::npos);
}

}  // namespace
}  // namespace anyqos::obs
