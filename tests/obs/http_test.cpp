// Unit tests for the dependency-free HTTP/1.1 message handling the ops
// plane is built on — pure string functions, no sockets (ops_server_test
// covers the wire).
#include "src/obs/http.h"

#include <gtest/gtest.h>

namespace anyqos::obs {
namespace {

TEST(HttpParse, ParsesRequestLineAndHeaders) {
  const auto request = parse_request_head(
      "GET /metrics HTTP/1.1\r\nHost: localhost:9000\r\nAccept: */*\r\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->target, "/metrics");
  EXPECT_EQ(request->version, "HTTP/1.1");
  ASSERT_EQ(request->headers.size(), 2u);
  EXPECT_EQ(request->headers[0].first, "host");  // names lower-cased
  EXPECT_EQ(request->headers[0].second, "localhost:9000");
}

TEST(HttpParse, AcceptsBareLfLineEndings) {
  const auto request = parse_request_head("POST /control/shed-budget HTTP/1.1\nContent-Length: 2\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->method, "POST");
  EXPECT_EQ(content_length(*request), 2u);
}

TEST(HttpParse, TrimsOptionalWhitespaceAroundHeaderValues) {
  const auto request = parse_request_head("GET / HTTP/1.1\r\nX-Pad:   spaced out  \r\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->headers[0].second, "spaced out");
}

TEST(HttpParse, HeaderLookupIsCaseInsensitive) {
  const auto request = parse_request_head("GET / HTTP/1.1\r\nContent-Type: text/plain\r\n");
  ASSERT_TRUE(request.has_value());
  const auto value = find_header(*request, "CONTENT-type");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "text/plain");
  EXPECT_FALSE(find_header(*request, "absent").has_value());
}

TEST(HttpParse, RejectsMalformedRequestLines) {
  EXPECT_FALSE(parse_request_head("").has_value());
  EXPECT_FALSE(parse_request_head("GET\r\n").has_value());
  EXPECT_FALSE(parse_request_head("GET /metrics\r\n").has_value());  // no version
  EXPECT_FALSE(parse_request_head("GET  /metrics HTTP/1.1\r\n").has_value());  // double space
  EXPECT_FALSE(parse_request_head("GET /a b HTTP/1.1\r\n").has_value());
}

TEST(HttpParse, RejectsWhitespaceInHeaderNames) {
  // RFC 9112 §5.1: no whitespace between the field name and the colon.
  EXPECT_FALSE(parse_request_head("GET / HTTP/1.1\r\nHost : x\r\n").has_value());
  EXPECT_FALSE(parse_request_head("GET / HTTP/1.1\r\nno-colon-line\r\n").has_value());
}

TEST(HttpContentLength, AbsentMeansZeroMalformedMeansNullopt) {
  const auto none = parse_request_head("GET / HTTP/1.1\r\n");
  ASSERT_TRUE(none.has_value());
  EXPECT_EQ(content_length(*none), 0u);

  const auto bad = parse_request_head("POST / HTTP/1.1\r\nContent-Length: -3\r\n");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(content_length(*bad).has_value());

  const auto word = parse_request_head("POST / HTTP/1.1\r\nContent-Length: two\r\n");
  ASSERT_TRUE(word.has_value());
  EXPECT_FALSE(content_length(*word).has_value());
}

TEST(HttpRender, EmitsStatusLineHeadersAndBody) {
  const std::string response = render_response(200, "text/plain", "ok\n");
  EXPECT_EQ(response,
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain\r\n"
            "Content-Length: 3\r\n"
            "Connection: close\r\n"
            "\r\n"
            "ok\n");
}

TEST(HttpRender, KnowsTheOpsPlaneStatusCodes) {
  EXPECT_EQ(status_reason(200), "OK");
  EXPECT_EQ(status_reason(400), "Bad Request");
  EXPECT_EQ(status_reason(404), "Not Found");
  EXPECT_EQ(status_reason(405), "Method Not Allowed");
  EXPECT_EQ(status_reason(413), "Content Too Large");
  EXPECT_EQ(status_reason(422), "Unprocessable Content");
  EXPECT_EQ(status_reason(503), "Service Unavailable");
  EXPECT_EQ(status_reason(299), "Unknown");
}

}  // namespace
}  // namespace anyqos::obs
