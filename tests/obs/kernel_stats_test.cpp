// Kernel telemetry sink: per-category tallies, virtual-clock histograms,
// burst runs, the attach protocol, and — the property the artifact gate
// leans on — reconciliation: every event the sink saw scheduled is fired,
// cancelled, or still pending, per category and in total, under a chaotic
// schedule/cancel churn.
#include "src/obs/kernel_stats.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/des/simulator.h"
#include "src/obs/registry.h"

namespace anyqos::obs {
namespace {

TEST(KernelStats, AttachProtocolRejectsDoubleUse) {
  des::Simulator simulator;
  KernelStats stats;
  stats.attach(simulator);
  EXPECT_TRUE(stats.attached());
  EXPECT_THROW(stats.attach(simulator), std::invalid_argument);
  KernelStats second;
  EXPECT_THROW(second.attach(simulator), std::invalid_argument);
}

TEST(KernelStats, CategoryInterningIsStableAndOrdered) {
  des::Simulator simulator;
  const des::EventCategory a = simulator.category("model.a");
  const des::EventCategory b = simulator.category("model.b");
  EXPECT_EQ(simulator.category("model.a").id, a.id);
  EXPECT_NE(a.id, b.id);
  EXPECT_EQ(simulator.category_names()[0], "uncategorized");
  EXPECT_EQ(simulator.category_names()[a.id], "model.a");
  EXPECT_EQ(simulator.category_names()[b.id], "model.b");
  EXPECT_TRUE(des::EventCategory{}.uncategorized());
  EXPECT_FALSE(a.uncategorized());
}

TEST(KernelStats, TalliesScheduleFireCancelPerCategory) {
  des::Simulator simulator;
  KernelStats stats;
  stats.attach(simulator);
  const des::EventCategory arrivals = simulator.category("arrivals");
  const des::EventCategory timers = simulator.category("timers");

  simulator.schedule_at(1.0, arrivals, [] {});
  simulator.schedule_at(2.0, arrivals, [] {});
  const des::EventHandle doomed = simulator.schedule_at(3.0, timers, [] {});
  simulator.schedule_at(10.0, timers, [] {});
  EXPECT_TRUE(simulator.cancel(doomed));
  simulator.run_until(5.0);

  const std::vector<KernelStats::CategoryStats>& per = stats.categories();
  ASSERT_GT(per.size(), timers.id);
  EXPECT_EQ(per[arrivals.id].scheduled, 2u);
  EXPECT_EQ(per[arrivals.id].fired, 2u);
  EXPECT_EQ(per[arrivals.id].cancelled, 0u);
  EXPECT_EQ(per[timers.id].scheduled, 2u);
  EXPECT_EQ(per[timers.id].fired, 0u);
  EXPECT_EQ(per[timers.id].cancelled, 1u);
  EXPECT_EQ(per[timers.id].still_pending(), 1u);
  EXPECT_EQ(stats.total_scheduled(), 4u);
  EXPECT_EQ(stats.total_fired(), 2u);
  EXPECT_EQ(stats.total_cancelled(), 1u);
  EXPECT_EQ(stats.still_pending(), 1u);
}

TEST(KernelStats, HorizonAndWaitTrackVirtualClock) {
  des::Simulator simulator;
  KernelStats stats;
  stats.attach(simulator);
  const des::EventCategory cat = simulator.category("c");
  // Scheduled at t=0 for t=5: horizon 5. Fires at 5, wait 5. The nested
  // event is scheduled at t=5 for t=5.5: horizon 0.5, wait 0.5.
  simulator.schedule_at(5.0, cat, [&] { simulator.schedule_in(0.5, cat, [] {}); });
  simulator.run();
  const KernelStats::CategoryStats& tallies = stats.categories()[cat.id];
  EXPECT_EQ(tallies.horizon.total(), 2u);
  EXPECT_DOUBLE_EQ(tallies.horizon.sum, 5.5);
  EXPECT_EQ(tallies.wait.total(), 2u);
  EXPECT_DOUBLE_EQ(tallies.wait.sum, 5.5);
}

TEST(KernelStats, BurstHistogramCountsSameTimestampRuns) {
  des::Simulator simulator;
  KernelStats stats;
  stats.attach(simulator);
  const des::EventCategory cat = simulator.category("c");
  for (int i = 0; i < 3; ++i) {
    simulator.schedule_at(1.0, cat, [] {});
  }
  simulator.schedule_at(2.0, cat, [] {});
  for (int i = 0; i < 2; ++i) {
    simulator.schedule_at(3.0, cat, [] {});
  }
  simulator.run();
  // Runs: 3 @ t=1, 1 @ t=2, 2 @ t=3 (the last one closed on demand).
  const KernelStats::BucketCounts burst = stats.burst_histogram();
  EXPECT_EQ(burst.total(), 3u);
  EXPECT_DOUBLE_EQ(burst.sum, 6.0);
}

TEST(KernelStats, ReconciliationHoldsUnderCancelChurn) {
  des::Simulator simulator(17);
  KernelStats stats;
  stats.attach(simulator);
  const std::vector<des::EventCategory> categories = {
      simulator.category("storm.a"), simulator.category("storm.b"),
      simulator.category("storm.c")};

  // Deterministic churn: a spread of timestamps (Weyl sequence, so plenty of
  // duplicates and interleavings), every third event cancelled, every fifth
  // event rescheduling into its own category when it fires.
  std::vector<des::EventHandle> handles;
  for (std::uint64_t i = 0; i < 600; ++i) {
    const des::EventCategory cat = categories[i % categories.size()];
    const double when = static_cast<double>((i * 2654435761u) % 1000) / 10.0;
    if (i % 5 == 0) {
      handles.push_back(simulator.schedule_at(when, cat, [&simulator, cat] {
        simulator.schedule_in(1.0, cat, [] {});
      }));
    } else {
      handles.push_back(simulator.schedule_at(when, cat, [] {}));
    }
  }
  for (std::size_t i = 0; i < handles.size(); i += 3) {
    simulator.cancel(handles[i]);
  }
  simulator.run_until(60.0);

  std::uint64_t pending_sum = 0;
  for (const KernelStats::CategoryStats& tallies : stats.categories()) {
    EXPECT_EQ(tallies.scheduled, tallies.fired + tallies.cancelled +
                                     tallies.still_pending());
    pending_sum += tallies.still_pending();
  }
  EXPECT_EQ(pending_sum, stats.still_pending());
  EXPECT_EQ(stats.still_pending(), simulator.pending_events());
  EXPECT_EQ(stats.total_fired(), simulator.dispatched_events());
  EXPECT_EQ(stats.total_scheduled(),
            stats.total_fired() + stats.total_cancelled() + stats.still_pending());
  EXPECT_GT(stats.total_cancelled(), 0u);
  EXPECT_GT(stats.still_pending(), 0u);
  EXPECT_GE(stats.queue_depth_high_water(), stats.still_pending());
}

TEST(KernelStats, WriteJsonlEmitsEveryCategoryAndASummary) {
  des::Simulator simulator;
  KernelStats stats;
  stats.attach(simulator);
  const des::EventCategory used = simulator.category("used");
  simulator.category("never-scheduled");
  simulator.schedule_at(1.0, used, [] {});
  simulator.run();

  std::ostringstream out;
  stats.write_jsonl(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"schema\":\"anyqos-kernel-stats/1\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"uncategorized\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"used\""), std::string::npos);
  // Late-interned categories that never scheduled still get a (zero) row, so
  // equal-seed runs render byte-identical artifacts.
  EXPECT_NE(text.find("\"name\":\"never-scheduled\""), std::string::npos);
  EXPECT_NE(text.find("\"kernel\":\"summary\""), std::string::npos);
  EXPECT_NE(text.find("\"dispatched\":1"), std::string::npos);
}

TEST(KernelStats, ExportToRegistryEmitsKernelFamilies) {
  des::Simulator simulator;
  KernelStats stats;
  stats.attach(simulator);
  simulator.schedule_at(1.0, simulator.category("c"), [] {});
  simulator.run();

  MetricsRegistry registry;
  stats.export_to(registry, {{"system", "test"}});
  std::ostringstream out;
  registry.write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("anyqos_kernel_events_total"), std::string::npos);
  EXPECT_NE(text.find("anyqos_kernel_horizon_seconds"), std::string::npos);
  EXPECT_NE(text.find("anyqos_kernel_wait_seconds"), std::string::npos);
  EXPECT_NE(text.find("anyqos_kernel_burst_length"), std::string::npos);
  EXPECT_NE(text.find("anyqos_kernel_queue_depth_hwm"), std::string::npos);
  EXPECT_NE(text.find("category=\"c\""), std::string::npos);
  EXPECT_NE(text.find("outcome=\"fired\""), std::string::npos);
}

TEST(KernelStats, TombstoneRatioReflectsCancelledPops) {
  des::Simulator simulator;
  KernelStats stats;
  stats.attach(simulator);
  const des::EventCategory cat = simulator.category("c");
  const des::EventHandle doomed = simulator.schedule_at(1.0, cat, [] {});
  simulator.schedule_at(2.0, cat, [] {});
  simulator.cancel(doomed);
  simulator.run();
  // One tombstone walked over, one real fire: ratio 1/2.
  EXPECT_EQ(stats.tombstones_popped(), 1u);
  EXPECT_DOUBLE_EQ(stats.tombstone_ratio(), 0.5);
}

}  // namespace
}  // namespace anyqos::obs
