#include "src/obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "src/obs/span.h"

namespace anyqos::obs {
namespace {

DecisionSpan decision_span(std::uint64_t request_id) {
  DecisionSpan span;
  span.request_id = request_id;
  span.algorithm = "ED";
  return span;
}

AttemptSpan attempt_span(std::uint64_t request_id) {
  AttemptSpan span;
  span.request_id = request_id;
  return span;
}

TEST(FlightRecorder, RejectsZeroDepth) {
  EXPECT_THROW(FlightRecorder(FlightRecorderOptions{0, 1}), std::invalid_argument);
}

TEST(FlightRecorder, RingKeepsTheMostRecentDepthEntries) {
  FlightRecorder recorder(FlightRecorderOptions{3, 16});
  for (std::uint64_t id = 1; id <= 5; ++id) {
    recorder.span_sink().on_decision(decision_span(id));
  }
  EXPECT_EQ(recorder.entries(), 3u);

  std::ostringstream out;
  recorder.set_output(&out);
  EXPECT_EQ(recorder.trigger(10.0, "probe"), 3u);
  // Oldest-first: requests 1 and 2 were overwritten by the wrap.
  const std::string text = out.str();
  EXPECT_EQ(text.find("\"request\":1,"), std::string::npos);
  EXPECT_EQ(text.find("\"request\":2,"), std::string::npos);
  const std::size_t third = text.find("\"request\":3");
  const std::size_t fourth = text.find("\"request\":4");
  const std::size_t fifth = text.find("\"request\":5");
  ASSERT_NE(third, std::string::npos);
  ASSERT_NE(fourth, std::string::npos);
  ASSERT_NE(fifth, std::string::npos);
  EXPECT_LT(third, fourth);
  EXPECT_LT(fourth, fifth);
}

TEST(FlightRecorder, ForwardsSpansToTheDownstreamSink) {
  FlightRecorder recorder;
  MemorySpanSink downstream;
  recorder.set_forward(&downstream);
  recorder.span_sink().on_attempt(attempt_span(7));
  recorder.span_sink().on_decision(decision_span(7));
  EXPECT_EQ(recorder.entries(), 2u);
  ASSERT_EQ(downstream.attempts().size(), 1u);
  ASSERT_EQ(downstream.decisions().size(), 1u);
  EXPECT_EQ(downstream.decisions()[0].request_id, 7u);

  recorder.set_forward(nullptr);
  recorder.span_sink().on_decision(decision_span(8));
  EXPECT_EQ(recorder.entries(), 3u);
  EXPECT_EQ(downstream.decisions().size(), 1u);  // detached: ring only
}

TEST(FlightRecorder, SnapshotCarriesHeaderSpansAndEvents) {
  FlightRecorder recorder;
  recorder.span_sink().on_attempt(attempt_span(42));
  recorder.span_sink().on_decision(decision_span(42));
  recorder.note(12.5, "link_down", "r0->r1");

  std::ostringstream out;
  recorder.set_output(&out);
  EXPECT_EQ(recorder.trigger(13.0, "link_fault 0->1"), 3u);
  EXPECT_EQ(recorder.triggers(), 1u);
  EXPECT_EQ(recorder.dumps_written(), 1u);

  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line,
            "{\"flight\":\"snapshot\",\"reason\":\"link_fault 0->1\",\"t\":13,"
            "\"seq\":1,\"entries\":3}");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"span\":\"attempt\""), std::string::npos);
  EXPECT_NE(line.find("\"request\":42"), std::string::npos);
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"span\":\"decision\""), std::string::npos);
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line,
            "{\"flight\":\"event\",\"t\":12.5,\"kind\":\"link_down\","
            "\"detail\":\"r0->r1\"}");
  EXPECT_FALSE(std::getline(lines, line));

  // The ring is not cleared by a trigger: a second one sees the same window.
  out.str("");
  EXPECT_EQ(recorder.trigger(14.0, "again"), 3u);
  EXPECT_NE(out.str().find("\"seq\":2"), std::string::npos);
}

TEST(FlightRecorder, SuppressesDumpsWithoutOutputOrPastTheCap) {
  FlightRecorder recorder(FlightRecorderOptions{8, 2});
  recorder.note(1.0, "noted", "x");
  // No output attached: the trigger counts but writes nothing.
  EXPECT_EQ(recorder.trigger(1.0, "early"), 0u);
  EXPECT_EQ(recorder.triggers(), 1u);
  EXPECT_EQ(recorder.dumps_written(), 0u);

  std::ostringstream out;
  recorder.set_output(&out);
  EXPECT_EQ(recorder.trigger(2.0, "first"), 1u);
  EXPECT_EQ(recorder.trigger(3.0, "second"), 1u);
  // max_dumps = 2 exhausted: later triggers only count.
  EXPECT_EQ(recorder.trigger(4.0, "third"), 0u);
  EXPECT_EQ(recorder.triggers(), 4u);
  EXPECT_EQ(recorder.dumps_written(), 2u);
  EXPECT_EQ(out.str().find("third"), std::string::npos);
}

TEST(FlightRecorder, ClearDropsEntriesButKeepsCounters) {
  FlightRecorder recorder(FlightRecorderOptions{2, 16});
  recorder.note(1.0, "a", "");
  recorder.note(2.0, "b", "");
  recorder.note(3.0, "c", "");  // wraps
  std::ostringstream out;
  recorder.set_output(&out);
  EXPECT_EQ(recorder.trigger(3.0, "full"), 2u);

  recorder.clear();
  EXPECT_EQ(recorder.entries(), 0u);
  out.str("");
  EXPECT_EQ(recorder.trigger(4.0, "empty"), 0u);  // header-only snapshot
  EXPECT_NE(out.str().find("\"entries\":0"), std::string::npos);
  EXPECT_EQ(recorder.triggers(), 2u);
  EXPECT_EQ(recorder.dumps_written(), 2u);
  // Post-clear pushes start a fresh ring (no stale rotation).
  recorder.note(5.0, "d", "");
  out.str("");
  EXPECT_EQ(recorder.trigger(5.0, "fresh"), 1u);
  EXPECT_EQ(recorder.triggers(), 3u);
  EXPECT_EQ(recorder.dumps_written(), 3u);
  EXPECT_NE(out.str().find("\"kind\":\"d\""), std::string::npos);
}

}  // namespace
}  // namespace anyqos::obs
