// Concurrency contract of obs::MetricsRegistry (registry.h "Threading"
// doc block): one thread records while another scrapes. Run under TSan
// (preset tsan / ANYQOS_SANITIZE=thread) this is a data-race detector; in
// a plain build it still checks snapshot consistency invariants.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "src/obs/registry.h"

namespace anyqos::obs {
namespace {

TEST(RegistryConcurrency, ScrapeWhileRecording) {
  MetricsRegistry registry;
  Counter& admitted = registry.counter("anyqos_admitted_total", "admitted requests");
  Gauge& active = registry.gauge("anyqos_active_flows", "active flows");
  Histogram& tries = registry.histogram("anyqos_tries", "attempts per request",
                                        {1.0, 2.0, 3.0});

  constexpr int kWrites = 20'000;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < kWrites; ++i) {
      admitted.increment();
      active.add(1.0);
      tries.observe(static_cast<double>(i % 5));
    }
    done.store(true);
  });

  // The scraper thread renders the full exposition and takes histogram
  // snapshots while the writer is mid-flight.
  std::uint64_t scrapes = 0;
  // At least 25 scrapes even if the writer finishes first, and keep
  // scraping as long as it is still writing.
  while (scrapes < 25 || !done.load()) {
    std::ostringstream prometheus;
    registry.write_prometheus(prometheus);
    EXPECT_NE(prometheus.str().find("anyqos_admitted_total"), std::string::npos);
    const Histogram::Snapshot snap = tries.snapshot();
    // Snapshot invariants hold at every instant: cumulative buckets are
    // monotone and the +Inf bucket equals the count.
    for (std::size_t i = 1; i < snap.cumulative.size(); ++i) {
      EXPECT_LE(snap.cumulative[i - 1], snap.cumulative[i]);
    }
    ASSERT_FALSE(snap.cumulative.empty());
    EXPECT_EQ(snap.cumulative.back(), snap.count);
    ++scrapes;
  }
  writer.join();
  EXPECT_GT(scrapes, 0u);

  // Quiesced totals are exact: nothing was lost to the concurrent scrapes.
  EXPECT_EQ(admitted.value(), static_cast<std::uint64_t>(kWrites));
  EXPECT_EQ(active.value(), static_cast<double>(kWrites));
  EXPECT_EQ(tries.snapshot().count, static_cast<std::uint64_t>(kWrites));
}

TEST(RegistryConcurrency, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 200; ++i) {
        // Same family, distinct label per thread: exercises the registry
        // map lock against concurrent find-or-create.
        registry
            .counter("anyqos_worker_ops_total", "ops per worker",
                     {{"worker", std::to_string(t)}})
            .increment();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  std::ostringstream out;
  registry.write_prometheus(out);
  for (int t = 0; t < 4; ++t) {
    EXPECT_NE(out.str().find("worker=\"" + std::to_string(t) + "\"} 200"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace anyqos::obs
