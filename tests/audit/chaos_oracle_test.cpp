// The chaos oracle classifies one scenario run into a violation class (or
// clean). The class string is the shrinker's preservation target, so its
// exact spelling and the severity ordering are contract, not cosmetics.
#include "src/audit/chaos_oracle.h"

#include <gtest/gtest.h>

#include <string>

#include "src/sim/faults.h"
#include "src/sim/trace.h"

namespace anyqos::audit {
namespace {

/// Small MCI scenario that survives the full oracle stack cleanly.
sim::Scenario clean_scenario() {
  sim::Scenario scenario;
  scenario.name = "oracle-clean";
  scenario.topology = "mci";
  scenario.seed = 3;
  scenario.lambda = 10.0;
  scenario.mean_holding_s = 30.0;
  scenario.sources = {0, 5, 13};
  scenario.group = {2, 11, 18};
  scenario.max_tries = 2;
  scenario.warmup_s = 0.0;
  scenario.measure_s = 120.0;
  scenario.link_faults.push_back(sim::single_fault(0, 1, 40.0, 80.0));
  return scenario;
}

TEST(ChaosOracle, CleanScenarioIsClean) {
  const ChaosOracleOutcome outcome = run_chaos_oracle(clean_scenario());
  EXPECT_TRUE(outcome.clean()) << outcome.violation_class << ": " << outcome.detail;
  EXPECT_TRUE(outcome.ran);
  EXPECT_GT(outcome.result.offered, 0U);
  EXPECT_TRUE(outcome.audit_log.empty());
}

TEST(ChaosOracle, IsDeterministic) {
  const ChaosOracleOutcome first = run_chaos_oracle(clean_scenario());
  const ChaosOracleOutcome second = run_chaos_oracle(clean_scenario());
  EXPECT_EQ(first.violation_class, second.violation_class);
  EXPECT_EQ(first.detail, second.detail);
  EXPECT_EQ(first.result.offered, second.result.offered);
  EXPECT_EQ(first.result.admitted, second.result.admitted);
  EXPECT_DOUBLE_EQ(first.result.admission_probability,
                   second.result.admission_probability);
}

TEST(ChaosOracle, InvalidScenarioClassifiesAsInvalidNotException) {
  sim::Scenario scenario = clean_scenario();
  scenario.link_faults.push_back(sim::single_fault(2, 7, 10.0, 20.0));  // not an MCI edge
  const ChaosOracleOutcome outcome = run_chaos_oracle(scenario);
  EXPECT_FALSE(outcome.clean());
  EXPECT_EQ(outcome.violation_class.rfind("invalid:", 0), 0U) << outcome.violation_class;
  EXPECT_FALSE(outcome.ran);
}

TEST(ChaosOracle, PlantedBugClassifiesAsException) {
  // Overlapping outages of the same duplex link: harmless with the hold-count
  // guard, a double fail_link once the guard is defeated.
  sim::Scenario scenario = clean_scenario();
  scenario.link_faults.push_back(sim::single_fault(0, 1, 50.0, 90.0));

  const ChaosOracleOutcome guarded = run_chaos_oracle(scenario);
  EXPECT_TRUE(guarded.clean()) << guarded.violation_class;

  ChaosOracleOptions defeat;
  defeat.defeat_duplex_idempotency = true;
  const ChaosOracleOutcome outcome = run_chaos_oracle(scenario, defeat);
  EXPECT_EQ(outcome.violation_class, "exception:link is already failed");
  EXPECT_FALSE(outcome.ran);
  EXPECT_FALSE(outcome.flight_dump.empty());
}

TEST(ChaosOracle, FallbackWatchdogClassifiesNonQuiescenceAsHang) {
  // Holding times far past any cap: with the oracle's fallback sim-time cap
  // tightened, the drain cannot quiesce and must classify as hang:, not leak:.
  sim::Scenario scenario = clean_scenario();
  scenario.link_faults.clear();
  scenario.mean_holding_s = 50'000.0;
  scenario.measure_s = 60.0;
  ChaosOracleOptions options;
  options.fallback_drain_max_sim_s = 10.0;
  const ChaosOracleOutcome outcome = run_chaos_oracle(scenario, options);
  EXPECT_EQ(outcome.violation_class.rfind("hang:", 0), 0U) << outcome.violation_class;
  EXPECT_TRUE(outcome.ran);
}

TEST(ChaosOracle, ForwardsTraceSink) {
  sim::MemoryTraceSink trace;
  ChaosOracleOptions options;
  options.trace = &trace;
  const ChaosOracleOutcome outcome = run_chaos_oracle(clean_scenario(), options);
  EXPECT_TRUE(outcome.clean());
  EXPECT_GT(trace.events().size(), 0U);
}

}  // namespace
}  // namespace anyqos::audit
