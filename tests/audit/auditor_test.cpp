#include "src/audit/auditor.h"

#include <gtest/gtest.h>

#include <string>

#include "src/audit/violation.h"
#include "src/des/random.h"
#include "src/des/simulator.h"
#include "src/net/bandwidth.h"
#include "src/net/topology.h"
#include "src/signaling/message.h"
#include "src/signaling/soft_state.h"
#include "src/util/require.h"

namespace anyqos::audit {
namespace {

net::Topology line3() {
  net::Topology topo;
  topo.add_router();
  topo.add_router();
  topo.add_router();
  topo.add_duplex_link(0, 1, 100.0e6);
  topo.add_duplex_link(1, 2, 100.0e6);
  return topo;
}

net::Path one_link(const net::Topology& topo, net::NodeId a, net::NodeId b) {
  net::Path path;
  path.source = a;
  path.destination = b;
  path.links = {*topo.find_link(a, b)};
  return path;
}

net::Path path_0_to_2(const net::Topology& topo) {
  net::Path path;
  path.source = 0;
  path.destination = 2;
  path.links = {*topo.find_link(0, 1), *topo.find_link(1, 2)};
  return path;
}

AuditorOptions lenient() {
  AuditorOptions options;
  options.throw_on_violation = false;
  return options;
}

TEST(ViolationLog, RecordsAndCounts) {
  ViolationLog log;
  EXPECT_TRUE(log.empty());
  log.add({AuditCheck::kLedgerPairing, 1.5, "first"});
  log.add({AuditCheck::kWeightNormalization, 2.0, "second"});
  log.add({AuditCheck::kLedgerPairing, 3.0, "third"});
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.count(AuditCheck::kLedgerPairing), 2u);
  EXPECT_EQ(log.count(AuditCheck::kSoftStateExpiry), 0u);
  const std::string text = log.to_text();
  EXPECT_NE(text.find("ledger-pairing: first"), std::string::npos);
  EXPECT_NE(text.find("weight-normalization: second"), std::string::npos);
  log.clear();
  EXPECT_TRUE(log.empty());
}

TEST(ViolationLog, EveryCheckHasAName) {
  for (const AuditCheck check :
       {AuditCheck::kLedgerConservation, AuditCheck::kLedgerPairing,
        AuditCheck::kWeightNormalization, AuditCheck::kRetrialDisjointness,
        AuditCheck::kSoftStateExpiry}) {
    EXPECT_FALSE(to_string(check).empty());
  }
}

TEST(InvariantAuditor, CleanReserveReleaseCycleStaysQuiet) {
  const net::Topology topo = line3();
  net::BandwidthLedger ledger(topo, 0.2);
  InvariantAuditor auditor;
  auditor.watch_ledger(ledger);
  const net::Path path = path_0_to_2(topo);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(ledger.reserve(path, 64'000.0));
  }
  EXPECT_EQ(auditor.open_reservations(), 100u);
  for (int i = 0; i < 100; ++i) {
    ledger.release(path, 64'000.0);
  }
  EXPECT_EQ(auditor.open_reservations(), 0u);
  EXPECT_EQ(auditor.checkpoint(0.0), 0u);
  EXPECT_TRUE(auditor.log().empty());
}

TEST(InvariantAuditor, WatchRequiresIdleLedger) {
  const net::Topology topo = line3();
  net::BandwidthLedger ledger(topo, 0.2);
  ASSERT_TRUE(ledger.reserve(path_0_to_2(topo), 64'000.0));
  InvariantAuditor auditor;
  EXPECT_THROW(auditor.watch_ledger(ledger), std::invalid_argument);
}

// The death/regression test for the tentpole: a double release that the
// ledger's own bounds checks CANNOT see (another flow's reservation masks
// it) must still produce an InvariantError plus a structured record.
TEST(InvariantAuditor, MaskedDoubleReleaseIsDetected) {
  const net::Topology topo = line3();
  net::BandwidthLedger ledger(topo, 0.2);
  InvariantAuditor auditor;
  auditor.watch_ledger(ledger);
  const net::Path flow_a = one_link(topo, 0, 1);   // 0->1 only
  const net::Path flow_b = path_0_to_2(topo);      // 0->1->2, shares link 0->1
  ASSERT_TRUE(ledger.reserve(flow_a, 64'000.0));
  ASSERT_TRUE(ledger.reserve(flow_b, 64'000.0));
  ledger.release(flow_a, 64'000.0);
  // Flow B still holds 64 kbit/s on the shared link, so the ledger itself
  // accepts this corrupt second release...
  EXPECT_THROW(ledger.release(flow_a, 64'000.0), util::InvariantError);
  // ...but the auditor caught it, logged it, and left the ledger untouched.
  ASSERT_EQ(auditor.log().count(AuditCheck::kLedgerPairing), 1u);
  EXPECT_NE(auditor.log().entries().front().detail.find("double release"),
            std::string::npos);
  EXPECT_DOUBLE_EQ(ledger.reserved(flow_a.links[0]), 64'000.0);
  // The untouched ledger still balances against the shadow account.
  ledger.release(flow_b, 64'000.0);
  EXPECT_EQ(auditor.log().size(), 1u);  // no further findings
}

TEST(InvariantAuditor, NonThrowingModeOnlyLogs) {
  const net::Topology topo = line3();
  net::BandwidthLedger ledger(topo, 0.2);
  InvariantAuditor auditor(lenient());
  auditor.watch_ledger(ledger);
  const net::Path path = one_link(topo, 0, 1);
  ASSERT_TRUE(ledger.reserve(path, 64'000.0));
  ASSERT_TRUE(ledger.reserve(path_0_to_2(topo), 64'000.0));
  ledger.release(path, 64'000.0);
  EXPECT_NO_THROW(ledger.release(path, 64'000.0));  // logged, not escalated
  EXPECT_EQ(auditor.log().count(AuditCheck::kLedgerPairing), 1u);
}

TEST(InvariantAuditor, CheckpointDetectsUnobservedDrift) {
  const net::Topology topo = line3();
  net::BandwidthLedger ledger(topo, 0.2);
  InvariantAuditor auditor(lenient());
  auditor.watch_ledger(ledger);
  // Detach the observer and smuggle a reservation past the shadow account —
  // models any state mutation that bypasses the audited interface.
  ledger.set_observer(nullptr);
  ASSERT_TRUE(ledger.reserve(one_link(topo, 0, 1), 1.0e6));
  ledger.set_observer(&auditor);
  EXPECT_GE(auditor.checkpoint(0.0), 1u);
  EXPECT_GE(auditor.log().count(AuditCheck::kLedgerConservation), 1u);
  EXPECT_NE(auditor.log().entries().front().detail.find("drift"), std::string::npos);
}

TEST(InvariantAuditor, RetrialDuplicateAttemptIsDetected) {
  InvariantAuditor auditor(lenient());
  auditor.on_request_begin(3);
  auditor.on_attempt(3, 0);
  auditor.on_attempt(3, 1);
  auditor.on_attempt(3, 0);  // the same destination retried
  EXPECT_EQ(auditor.log().count(AuditCheck::kRetrialDisjointness), 1u);
}

TEST(InvariantAuditor, AttemptBudgetOverrunIsDetected) {
  InvariantAuditor auditor(lenient());
  core::AdmissionDecision decision;
  decision.attempts = 3;
  auditor.on_request_begin(3);
  auditor.on_decision(3, decision, /*max_attempts=*/2, /*group_size=*/5);
  EXPECT_EQ(auditor.log().count(AuditCheck::kRetrialDisjointness), 1u);
  // Attempts beyond the group size is a second, distinct finding.
  InvariantAuditor auditor2(lenient());
  decision.attempts = 6;
  auditor2.on_decision(3, decision, /*max_attempts=*/8, /*group_size=*/5);
  EXPECT_EQ(auditor2.log().count(AuditCheck::kRetrialDisjointness), 1u);
}

TEST(InvariantAuditor, DisjointAttemptsAcrossRequestsAreFine) {
  InvariantAuditor auditor;  // throwing mode: any violation would throw
  core::AdmissionDecision decision;
  decision.attempts = 2;
  for (int request = 0; request < 3; ++request) {
    auditor.on_request_begin(3);
    auditor.on_attempt(3, 0);  // same member every request — legal across requests
    auditor.on_attempt(3, 1);
    auditor.on_decision(3, decision, 2, 5);
  }
  EXPECT_TRUE(auditor.log().empty());
}

TEST(InvariantAuditor, SoftStateSessionsAreCheckedAgainstLedger) {
  const net::Topology topo = line3();
  net::BandwidthLedger ledger(topo, 0.2);
  des::Simulator simulator;
  signaling::MessageCounter counter;
  des::RandomStream rng(7);
  signaling::SoftStateManager manager(simulator, ledger, counter, rng, {});

  InvariantAuditor auditor(lenient());
  auditor.watch_ledger(ledger);
  auditor.watch_soft_state(manager);

  const net::Path route = path_0_to_2(topo);
  ASSERT_TRUE(ledger.reserve(route, 64'000.0));
  const signaling::SessionId id = manager.install(route, 64'000.0);
  EXPECT_EQ(auditor.checkpoint(simulator.now()), 0u);

  // Corrupt the world: the session's bandwidth evaporates from the ledger
  // while the session stays alive. Expiry consistency must flag it.
  ledger.release(route, 64'000.0);
  EXPECT_GE(auditor.checkpoint(simulator.now()), 1u);
  EXPECT_GE(auditor.log().count(AuditCheck::kSoftStateExpiry), 1u);
  EXPECT_TRUE(manager.alive(id));
}

TEST(InvariantAuditor, DetachesFromLedgerOnDestruction) {
  const net::Topology topo = line3();
  net::BandwidthLedger ledger(topo, 0.2);
  {
    InvariantAuditor auditor;
    auditor.watch_ledger(ledger);
    EXPECT_EQ(ledger.observer(), &auditor);
  }
  EXPECT_EQ(ledger.observer(), nullptr);
  // The ledger keeps working without its observer.
  EXPECT_TRUE(ledger.reserve(one_link(topo, 0, 1), 64'000.0));
}

}  // namespace
}  // namespace anyqos::audit
