#include "src/stats/accumulator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace anyqos::stats {
namespace {

TEST(Accumulator, EmptyStateIsSane) {
  Accumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(3.5);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 3.5);
  EXPECT_DOUBLE_EQ(acc.max(), 3.5);
}

TEST(Accumulator, KnownMeanAndVariance) {
  Accumulator acc;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    acc.add(v);
  }
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance with n-1: sum of squared deviations = 32, /7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, NumericallyStableForLargeOffsets) {
  // Classic catastrophic-cancellation case: tiny variance on a huge mean.
  Accumulator acc;
  const double base = 1.0e9;
  for (const double v : {base + 1.0, base + 2.0, base + 3.0}) {
    acc.add(v);
  }
  EXPECT_NEAR(acc.variance(), 1.0, 1e-6);
}

TEST(Accumulator, MergeMatchesSequentialFeed) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-5.0, 5.0);
  Accumulator all;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 1000; ++i) {
    const double v = dist(rng);
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmptySidesIsIdentity) {
  Accumulator filled;
  filled.add(1.0);
  filled.add(2.0);
  Accumulator empty;
  Accumulator copy = filled;
  copy.merge(empty);
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_DOUBLE_EQ(copy.mean(), 1.5);
  empty.merge(filled);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Accumulator, ResetClearsEverything) {
  Accumulator acc;
  acc.add(10.0);
  acc.reset();
  EXPECT_TRUE(acc.empty());
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
}

TEST(ProportionAccumulator, CountsSuccessesAndTrials) {
  ProportionAccumulator acc;
  acc.add(true);
  acc.add(false);
  acc.add(true);
  acc.add(true);
  EXPECT_EQ(acc.trials(), 4u);
  EXPECT_EQ(acc.successes(), 3u);
  EXPECT_DOUBLE_EQ(acc.proportion(), 0.75);
}

TEST(ProportionAccumulator, StandardErrorFormula) {
  ProportionAccumulator acc;
  for (int i = 0; i < 50; ++i) {
    acc.add(i < 20);
  }
  const double p = 0.4;
  EXPECT_NEAR(acc.standard_error(), std::sqrt(p * (1 - p) / 50.0), 1e-12);
}

TEST(ProportionAccumulator, EmptyAndDegenerate) {
  ProportionAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.proportion(), 0.0);
  EXPECT_DOUBLE_EQ(acc.standard_error(), 0.0);
  acc.add(true);
  EXPECT_DOUBLE_EQ(acc.standard_error(), 0.0);  // <2 trials
  acc.reset();
  EXPECT_EQ(acc.trials(), 0u);
}

}  // namespace
}  // namespace anyqos::stats
