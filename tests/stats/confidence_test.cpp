#include "src/stats/confidence.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace anyqos::stats {
namespace {

TEST(NormalCritical, MatchesKnownQuantiles) {
  EXPECT_NEAR(normal_critical(0.95), 1.959964, 1e-4);
  EXPECT_NEAR(normal_critical(0.90), 1.644854, 1e-4);
  EXPECT_NEAR(normal_critical(0.99), 2.575829, 1e-4);
}

TEST(NormalCritical, RejectsBadLevels) {
  EXPECT_THROW(normal_critical(0.0), std::invalid_argument);
  EXPECT_THROW(normal_critical(1.0), std::invalid_argument);
  EXPECT_THROW(normal_critical(-0.5), std::invalid_argument);
}

TEST(StudentT, MatchesTablesAt95) {
  EXPECT_NEAR(student_t_critical(1, 0.95), 12.706, 1e-3);
  EXPECT_NEAR(student_t_critical(5, 0.95), 2.571, 1e-3);
  EXPECT_NEAR(student_t_critical(10, 0.95), 2.228, 1e-3);
  EXPECT_NEAR(student_t_critical(30, 0.95), 2.042, 1e-3);
}

TEST(StudentT, ApproachesNormalForLargeDof) {
  EXPECT_NEAR(student_t_critical(10'000, 0.95), normal_critical(0.95), 1e-3);
}

TEST(StudentT, LargeDofNon95LevelsUseExpansion) {
  // t_{0.99, 60} = 2.660 from tables.
  EXPECT_NEAR(student_t_critical(60, 0.99), 2.660, 5e-3);
}

TEST(ConfidenceInterval, BoundsAndContainment) {
  ConfidenceInterval ci;
  ci.mean = 10.0;
  ci.half_width = 2.0;
  EXPECT_DOUBLE_EQ(ci.lower(), 8.0);
  EXPECT_DOUBLE_EQ(ci.upper(), 12.0);
  EXPECT_TRUE(ci.contains(8.0));
  EXPECT_TRUE(ci.contains(12.0));
  EXPECT_FALSE(ci.contains(7.999));
  EXPECT_FALSE(ci.contains(12.001));
}

TEST(MeanConfidence, DegenerateForFewSamples) {
  Accumulator acc;
  acc.add(5.0);
  const auto ci = mean_confidence(acc, 0.95);
  EXPECT_DOUBLE_EQ(ci.mean, 5.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(MeanConfidence, CoversTrueMeanAtRoughlyNominalRate) {
  // Property check: ~95% of CIs over repeated N(0,1) samples contain 0.
  std::mt19937_64 rng(42);
  std::normal_distribution<double> dist(0.0, 1.0);
  int covered = 0;
  const int reps = 400;
  for (int r = 0; r < reps; ++r) {
    Accumulator acc;
    for (int i = 0; i < 30; ++i) {
      acc.add(dist(rng));
    }
    if (mean_confidence(acc, 0.95).contains(0.0)) {
      ++covered;
    }
  }
  const double rate = static_cast<double>(covered) / reps;
  EXPECT_GT(rate, 0.90);
  EXPECT_LT(rate, 0.99);
}

TEST(ProportionConfidence, WaldFormula) {
  ProportionAccumulator acc;
  for (int i = 0; i < 100; ++i) {
    acc.add(i < 30);
  }
  const auto ci = proportion_confidence(acc, 0.95);
  EXPECT_DOUBLE_EQ(ci.mean, 0.3);
  EXPECT_NEAR(ci.half_width, 1.959964 * std::sqrt(0.3 * 0.7 / 100.0), 1e-6);
}

TEST(BatchMeans, RequiresAtLeastTwoBatches) {
  EXPECT_THROW(BatchMeans(1), std::invalid_argument);
}

TEST(BatchMeans, NotReadyUntilOnePerBatch) {
  BatchMeans bm(4);
  bm.add(1.0);
  bm.add(2.0);
  bm.add(3.0);
  EXPECT_FALSE(bm.ready());
  bm.add(4.0);
  EXPECT_TRUE(bm.ready());
  EXPECT_THROW(static_cast<void>(BatchMeans(4).confidence(0.95)), std::invalid_argument);
}

TEST(BatchMeans, MeanMatchesOverallMean) {
  BatchMeans bm(5);
  for (int i = 1; i <= 100; ++i) {
    bm.add(static_cast<double>(i));
  }
  EXPECT_NEAR(bm.mean(), 50.5, 1e-12);
  EXPECT_EQ(bm.count(), 100u);
}

TEST(BatchMeans, TightIntervalForConstantSeries) {
  BatchMeans bm(10);
  for (int i = 0; i < 200; ++i) {
    bm.add(7.0);
  }
  const auto ci = bm.confidence(0.95);
  EXPECT_DOUBLE_EQ(ci.mean, 7.0);
  EXPECT_NEAR(ci.half_width, 0.0, 1e-12);
}

TEST(BatchMeans, WiderIntervalForCorrelatedSeries) {
  // AR(1)-ish series: batch means must see the long-range variability that a
  // naive i.i.d. CI would underestimate.
  std::mt19937_64 rng(3);
  std::normal_distribution<double> noise(0.0, 1.0);
  BatchMeans bm(10);
  Accumulator naive;
  double x = 0.0;
  for (int i = 0; i < 20'000; ++i) {
    x = 0.99 * x + noise(rng);
    bm.add(x);
    naive.add(x);
  }
  const double batch_hw = bm.confidence(0.95).half_width;
  const double naive_hw = mean_confidence(naive, 0.95).half_width;
  EXPECT_GT(batch_hw, 3.0 * naive_hw);
}

}  // namespace
}  // namespace anyqos::stats
