#include "src/stats/histogram.h"

#include <gtest/gtest.h>

namespace anyqos::stats {
namespace {

TEST(CountHistogram, EmptyState) {
  CountHistogram hist;
  EXPECT_EQ(hist.total(), 0u);
  EXPECT_EQ(hist.count(3), 0u);
  EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
  EXPECT_EQ(hist.max_value(), 0u);
}

TEST(CountHistogram, CountsAndFractions) {
  CountHistogram hist;
  hist.add(1);
  hist.add(1);
  hist.add(2);
  hist.add(5);
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_EQ(hist.count(1), 2u);
  EXPECT_EQ(hist.count(2), 1u);
  EXPECT_EQ(hist.count(3), 0u);
  EXPECT_EQ(hist.count(5), 1u);
  EXPECT_DOUBLE_EQ(hist.fraction(1), 0.5);
  EXPECT_EQ(hist.max_value(), 5u);
  EXPECT_DOUBLE_EQ(hist.mean(), (1 + 1 + 2 + 5) / 4.0);
}

TEST(CountHistogram, SupportGrowsAutomatically) {
  CountHistogram hist;
  hist.add(100);
  EXPECT_EQ(hist.count(100), 1u);
  EXPECT_EQ(hist.count(99), 0u);
}

TEST(CountHistogram, ToStringListsNonEmptyBins) {
  CountHistogram hist;
  hist.add(0);
  hist.add(2);
  const std::string text = hist.to_string();
  EXPECT_NE(text.find("0: 1"), std::string::npos);
  EXPECT_NE(text.find("2: 1"), std::string::npos);
  EXPECT_EQ(text.find("1: "), std::string::npos);
}

TEST(RangeHistogram, BinsValuesUniformly) {
  RangeHistogram hist(0.0, 10.0, 5);
  hist.add(0.0);   // bin 0
  hist.add(1.99);  // bin 0
  hist.add(2.0);   // bin 1
  hist.add(9.99);  // bin 4
  EXPECT_EQ(hist.bin_count(0), 2u);
  EXPECT_EQ(hist.bin_count(1), 1u);
  EXPECT_EQ(hist.bin_count(4), 1u);
  EXPECT_EQ(hist.total(), 4u);
}

TEST(RangeHistogram, BinEdges) {
  RangeHistogram hist(1.0, 3.0, 4);
  EXPECT_DOUBLE_EQ(hist.bin_lower(0), 1.0);
  EXPECT_DOUBLE_EQ(hist.bin_lower(1), 1.5);
  EXPECT_DOUBLE_EQ(hist.bin_lower(3), 2.5);
}

TEST(RangeHistogram, OutOfRangeClampedAndCounted) {
  RangeHistogram hist(0.0, 1.0, 2);
  hist.add(-5.0);
  hist.add(2.0);
  EXPECT_EQ(hist.underflow(), 1u);
  EXPECT_EQ(hist.overflow(), 1u);
  EXPECT_EQ(hist.bin_count(0), 1u);
  EXPECT_EQ(hist.bin_count(1), 1u);
  EXPECT_EQ(hist.total(), 2u);
}

TEST(RangeHistogram, RejectsBadConstruction) {
  EXPECT_THROW(RangeHistogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(RangeHistogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(RangeHistogram, BinIndexOutOfRangeThrows) {
  RangeHistogram hist(0.0, 1.0, 2);
  EXPECT_THROW(static_cast<void>(hist.bin_count(2)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(hist.bin_lower(2)), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::stats
