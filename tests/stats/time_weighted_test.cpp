#include "src/stats/time_weighted.h"

#include <gtest/gtest.h>

namespace anyqos::stats {
namespace {

TEST(TimeWeighted, ZeroBeforeAnyUpdate) {
  TimeWeighted tw;
  EXPECT_FALSE(tw.started());
  EXPECT_DOUBLE_EQ(tw.mean(10.0), 0.0);
  EXPECT_DOUBLE_EQ(tw.max(), 0.0);
}

TEST(TimeWeighted, ConstantSignal) {
  TimeWeighted tw;
  tw.update(0.0, 4.0);
  EXPECT_DOUBLE_EQ(tw.mean(10.0), 4.0);
  EXPECT_DOUBLE_EQ(tw.current(), 4.0);
}

TEST(TimeWeighted, PiecewiseConstantAverage) {
  TimeWeighted tw;
  tw.update(0.0, 0.0);
  tw.update(2.0, 10.0);   // 0 for [0,2), 10 for [2,6)
  EXPECT_DOUBLE_EQ(tw.mean(6.0), (0.0 * 2.0 + 10.0 * 4.0) / 6.0);
}

TEST(TimeWeighted, MaxTracksPeak) {
  TimeWeighted tw;
  tw.update(0.0, 1.0);
  tw.update(1.0, 9.0);
  tw.update(2.0, 3.0);
  EXPECT_DOUBLE_EQ(tw.max(), 9.0);
}

TEST(TimeWeighted, SameTimeUpdateOverrides) {
  TimeWeighted tw;
  tw.update(0.0, 1.0);
  tw.update(5.0, 2.0);
  tw.update(5.0, 3.0);  // zero-width interval at value 2
  EXPECT_DOUBLE_EQ(tw.mean(10.0), (1.0 * 5.0 + 3.0 * 5.0) / 10.0);
}

TEST(TimeWeighted, DecreasingTimeThrows) {
  TimeWeighted tw;
  tw.update(5.0, 1.0);
  EXPECT_THROW(tw.update(4.0, 2.0), std::invalid_argument);
}

TEST(TimeWeighted, QueryBeforeLastUpdateThrows) {
  TimeWeighted tw;
  tw.update(0.0, 1.0);
  tw.update(5.0, 2.0);
  EXPECT_THROW(static_cast<void>(tw.mean(4.0)), std::invalid_argument);
}

TEST(TimeWeighted, RestartKeepsValueDiscardsHistory) {
  TimeWeighted tw;
  tw.update(0.0, 100.0);   // would dominate the mean if kept
  tw.update(10.0, 2.0);
  tw.restart(10.0);
  EXPECT_DOUBLE_EQ(tw.mean(20.0), 2.0);
  EXPECT_DOUBLE_EQ(tw.current(), 2.0);
  EXPECT_DOUBLE_EQ(tw.max(), 2.0);  // peak history forgotten too
}

TEST(TimeWeighted, RestartOnFreshObjectIsNoop) {
  TimeWeighted tw;
  tw.restart(5.0);
  EXPECT_FALSE(tw.started());
}

}  // namespace
}  // namespace anyqos::stats
