#include "src/stats/fairness.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace anyqos::stats {
namespace {

TEST(JainIndex, PerfectlyEvenIsOne) {
  const std::array<double, 4> even = {5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jain_index(even), 1.0);
}

TEST(JainIndex, FullyConcentratedIsOneOverN) {
  const std::array<double, 5> skewed = {10.0, 0.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(skewed), 0.2);
}

TEST(JainIndex, KnownIntermediateValue) {
  // x = (1, 2, 3): (6)^2 / (3 * 14) = 36/42.
  const std::array<double, 3> mixed = {1.0, 2.0, 3.0};
  EXPECT_NEAR(jain_index(mixed), 36.0 / 42.0, 1e-12);
}

TEST(JainIndex, ScaleInvariant) {
  const std::array<double, 3> base = {1.0, 2.0, 3.0};
  const std::array<double, 3> scaled = {100.0, 200.0, 300.0};
  EXPECT_NEAR(jain_index(base), jain_index(scaled), 1e-12);
}

TEST(JainIndex, AllZeroIsVacuouslyFair) {
  const std::array<double, 3> zeros = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(zeros), 1.0);
}

TEST(JainIndex, SingleMemberIsAlwaysOne) {
  const std::array<double, 1> one = {7.0};
  EXPECT_DOUBLE_EQ(jain_index(one), 1.0);
}

TEST(JainIndex, IntegerOverloadMatchesDouble) {
  const std::vector<std::uint64_t> tallies = {120, 80, 100, 95, 105};
  std::vector<double> as_double(tallies.begin(), tallies.end());
  EXPECT_DOUBLE_EQ(jain_index(tallies), jain_index(std::span<const double>(as_double)));
  EXPECT_GT(jain_index(tallies), 0.95);  // nearly even
}

TEST(JainIndex, Validation) {
  EXPECT_THROW(jain_index(std::span<const double>{}), std::invalid_argument);
  const std::array<double, 2> negative = {1.0, -1.0};
  EXPECT_THROW(jain_index(negative), std::invalid_argument);
}

}  // namespace
}  // namespace anyqos::stats
