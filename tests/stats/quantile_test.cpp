#include "src/stats/quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

namespace anyqos::stats {
namespace {

double exact_quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  return values[std::max<std::size_t>(rank, 1) - 1];
}

TEST(P2Quantile, RejectsBadParameters) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
  P2Quantile p(0.5);
  EXPECT_THROW(static_cast<void>(p.value()), std::invalid_argument);  // empty stream
  EXPECT_THROW(p.add(std::numeric_limits<double>::infinity()), std::invalid_argument);
}

TEST(P2Quantile, ExactForFewSamples) {
  P2Quantile median(0.5);
  median.add(5.0);
  EXPECT_DOUBLE_EQ(median.value(), 5.0);
  median.add(1.0);
  median.add(9.0);
  EXPECT_DOUBLE_EQ(median.value(), 5.0);  // exact median of {1,5,9}
  EXPECT_EQ(median.count(), 3u);
}

TEST(P2Quantile, MedianOfUniform) {
  P2Quantile median(0.5);
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> dist(0.0, 100.0);
  for (int i = 0; i < 50'000; ++i) {
    median.add(dist(rng));
  }
  EXPECT_NEAR(median.value(), 50.0, 1.5);
}

TEST(P2Quantile, TailQuantileOfExponential) {
  P2Quantile p95(0.95);
  std::mt19937_64 rng(2);
  std::exponential_distribution<double> dist(1.0);
  std::vector<double> all;
  for (int i = 0; i < 100'000; ++i) {
    const double v = dist(rng);
    p95.add(v);
    all.push_back(v);
  }
  const double exact = exact_quantile(all, 0.95);
  EXPECT_NEAR(p95.value() / exact, 1.0, 0.05);
  // Theory: the 95th percentile of Exp(1) is -ln(0.05) ≈ 2.996.
  EXPECT_NEAR(p95.value(), 2.996, 0.15);
}

TEST(P2Quantile, MonotoneShiftTracksDistribution) {
  // Feed a low block then a high block: the estimate must move up.
  P2Quantile median(0.5);
  for (int i = 0; i < 1'000; ++i) {
    median.add(1.0);
  }
  const double before = median.value();
  for (int i = 0; i < 10'000; ++i) {
    median.add(100.0);
  }
  EXPECT_LT(before, 2.0);
  EXPECT_GT(median.value(), 50.0);
}

class P2Accuracy : public ::testing::TestWithParam<double> {};

TEST_P(P2Accuracy, WithinFivePercentOfExactOnNormal) {
  const double q = GetParam();
  P2Quantile estimator(q);
  std::mt19937_64 rng(7);
  std::normal_distribution<double> dist(10.0, 2.0);
  std::vector<double> all;
  for (int i = 0; i < 50'000; ++i) {
    const double v = dist(rng);
    estimator.add(v);
    all.push_back(v);
  }
  const double exact = exact_quantile(all, q);
  EXPECT_NEAR(estimator.value() / exact, 1.0, 0.05) << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2Accuracy,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.99));

}  // namespace
}  // namespace anyqos::stats
