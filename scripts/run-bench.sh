#!/usr/bin/env bash
# Engine performance snapshot: runs the google-benchmark kernel microbench
# plus one small figure bench with --perf-out, and folds both into a single
# BENCH_engine.json (schema anyqos-bench-engine/1).
#
#   scripts/run-bench.sh [--allow-debug] [BUILD_DIR] [OUT]
#
# BUILD_DIR defaults to ./build, OUT to ./BENCH_engine.json. Exits non-zero
# if either bench fails or the combined record is empty/malformed.
#
# The record carries the anyqos library's CMAKE_BUILD_TYPE as a top-level
# "build_type" field, and a non-Release build is refused outright unless
# --allow-debug is given: debug numbers silently committed as a baseline
# poison every later comparison (compare-bench.py exits 2 on a build-type
# mismatch for the same reason).
set -euo pipefail

ALLOW_DEBUG=0
if [[ "${1:-}" == "--allow-debug" ]]; then
  ALLOW_DEBUG=1
  shift
fi

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_engine.json}"

CACHE="${BUILD_DIR}/CMakeCache.txt"
if [[ ! -f "$CACHE" ]]; then
  echo "run-bench.sh: no CMakeCache.txt in $BUILD_DIR (configure first)" >&2
  exit 1
fi
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$CACHE")"
BUILD_TYPE="${BUILD_TYPE:-unspecified}"
if [[ "$BUILD_TYPE" != "Release" && "$ALLOW_DEBUG" -ne 1 ]]; then
  echo "run-bench.sh: $BUILD_DIR is a '$BUILD_TYPE' build; benchmark numbers" >&2
  echo "from non-Release builds are not comparable. Rebuild with" >&2
  echo "-DCMAKE_BUILD_TYPE=Release or pass --allow-debug to record anyway." >&2
  exit 1
fi

MICRO="${BUILD_DIR}/bench/micro_engine"
FIG="${BUILD_DIR}/bench/fig3_ed_sensitivity"
for bin in "$MICRO" "$FIG"; do
  if [[ ! -x "$bin" ]]; then
    echo "run-bench.sh: missing benchmark binary $bin (build first)" >&2
    exit 1
  fi
done

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "== micro_engine (google-benchmark, short run) ==" >&2
"$MICRO" --benchmark_min_time=0.01 \
         --benchmark_filter='-BM_SimulatedSecond' \
         --benchmark_format=json >"$workdir/micro.json"

# The attached-overhead gate pair is a same-process *ratio*, so it gets a
# longer, repeated, randomly interleaved measurement: compare-bench.py
# takes the best of the repetitions, making the <=5% budget robust to a
# couple of preempted reps (scheduler noise is strictly additive).
echo "== micro_engine (kernel-telemetry overhead pair, interleaved) ==" >&2
"$MICRO" --benchmark_min_time=0.5 --benchmark_repetitions=5 \
         --benchmark_enable_random_interleaving=true \
         --benchmark_filter='BM_SimulatedSecond' \
         --benchmark_format=json >"$workdir/pair.json"

# Merge the pair's benchmark entries into the main record.
python3 - "$workdir/micro.json" "$workdir/pair.json" <<'EOF'
import json, sys
micro_path, pair_path = sys.argv[1], sys.argv[2]
with open(micro_path) as f:
    micro = json.load(f)
with open(pair_path) as f:
    pair = json.load(f)
micro["benchmarks"].extend(pair.get("benchmarks", []))
with open(micro_path, "w") as f:
    json.dump(micro, f)
EOF

echo "== fig3_ed_sensitivity (DES engine throughput) ==" >&2
"$FIG" --lambdas=20,35 --warmup=200 --measure=1000 \
       --perf-out="$workdir/engine.json" >/dev/null

for part in micro.json engine.json; do
  if [[ ! -s "$workdir/$part" ]]; then
    echo "run-bench.sh: $part is empty" >&2
    exit 1
  fi
done

# Assemble {"schema":...,"engine":{...},"microbench":{...}} without extra
# tooling: both parts are self-produced JSON objects.
{
  printf '{"schema":"anyqos-bench-engine/1","build_type":"%s","engine":' "$BUILD_TYPE"
  tr -d '\n' <"$workdir/engine.json"
  printf ',"microbench":'
  tr -d '\n' <"$workdir/micro.json"
  printf '}\n'
} >"$OUT"

grep -q '"events_per_second":' "$OUT" || {
  echo "run-bench.sh: $OUT lacks events_per_second" >&2
  exit 1
}
grep -q '"benchmarks":' "$OUT" || {
  echo "run-bench.sh: $OUT lacks microbench results" >&2
  exit 1
}
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$OUT" >/dev/null || {
    echo "run-bench.sh: $OUT is not valid JSON" >&2
    exit 1
  }
fi

echo "wrote $OUT" >&2
