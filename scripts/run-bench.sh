#!/usr/bin/env bash
# Engine performance snapshot: runs the google-benchmark kernel microbench
# plus one small figure bench with --perf-out, and folds both into a single
# BENCH_engine.json (schema anyqos-bench-engine/1).
#
#   scripts/run-bench.sh [BUILD_DIR] [OUT]
#
# BUILD_DIR defaults to ./build, OUT to ./BENCH_engine.json. Exits non-zero
# if either bench fails or the combined record is empty/malformed.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_engine.json}"

MICRO="${BUILD_DIR}/bench/micro_engine"
FIG="${BUILD_DIR}/bench/fig3_ed_sensitivity"
for bin in "$MICRO" "$FIG"; do
  if [[ ! -x "$bin" ]]; then
    echo "run-bench.sh: missing benchmark binary $bin (build first)" >&2
    exit 1
  fi
done

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "== micro_engine (google-benchmark, short run) ==" >&2
"$MICRO" --benchmark_min_time=0.01 \
         --benchmark_format=json >"$workdir/micro.json"

echo "== fig3_ed_sensitivity (DES engine throughput) ==" >&2
"$FIG" --lambdas=20,35 --warmup=200 --measure=1000 \
       --perf-out="$workdir/engine.json" >/dev/null

for part in micro.json engine.json; do
  if [[ ! -s "$workdir/$part" ]]; then
    echo "run-bench.sh: $part is empty" >&2
    exit 1
  fi
done

# Assemble {"schema":...,"engine":{...},"microbench":{...}} without extra
# tooling: both parts are self-produced JSON objects.
{
  printf '{"schema":"anyqos-bench-engine/1","engine":'
  tr -d '\n' <"$workdir/engine.json"
  printf ',"microbench":'
  tr -d '\n' <"$workdir/micro.json"
  printf '}\n'
} >"$OUT"

grep -q '"events_per_second":' "$OUT" || {
  echo "run-bench.sh: $OUT lacks events_per_second" >&2
  exit 1
}
grep -q '"benchmarks":' "$OUT" || {
  echo "run-bench.sh: $OUT lacks microbench results" >&2
  exit 1
}
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$OUT" >/dev/null || {
    echo "run-bench.sh: $OUT is not valid JSON" >&2
    exit 1
  }
fi

echo "wrote $OUT" >&2
