#!/usr/bin/env python3
"""Compare a fresh BENCH_engine.json against a committed baseline.

Two signals are diffed, both from the anyqos-bench-engine/1 schema:

  * engine.events_per_second  -- DES engine throughput (higher is better)
  * microbench.benchmarks[].real_time, keyed by name (lower is better)

Regressions beyond --tolerance are reported. The default mode is warn-only
(exit 0 on regressions) because CI runners have noisy clocks; pass --strict
to turn regressions into a nonzero exit for local A/B runs on quiet
machines. Missing or malformed input files are exit 2 in BOTH modes — a
typo'd artifact path must fail the build, not silently "pass" the diff.
A build-type mismatch (the records' top-level "build_type", stamped by
run-bench.sh from CMAKE_BUILD_TYPE) is also exit 2 in both modes: debug
and Release numbers are not comparable, so the diff would be meaningless.

--attached-overhead RATIO additionally asserts that the kernel-telemetry
benchmark pair in the CURRENT record (BM_SimulatedSecondKernelStats vs
BM_SimulatedSecond — the full paper model with and without a sink, where
real event work amortizes the sink's counters) stays within the given
relative overhead. Being a same-process ratio it is far less
clock-sensitive than cross-run deltas, so a violation is exit 1 even in
warn-only mode. The trivial-chain pair (BM_SimulatorEventChainAttached)
stays visible in the normal diff but is not budgeted: against a do-nothing
event every counter bump is relatively enormous.

  scripts/compare-bench.py --baseline bench/BENCH_baseline.json \
      --current BENCH_engine.json [--tolerance 0.25] [--strict] \
      [--attached-overhead 0.05]
"""

import argparse
import json
import sys


def load_record(path):
    with open(path) as f:
        record = json.load(f)
    schema = record.get("schema", "")
    if schema != "anyqos-bench-engine/1":
        raise ValueError(f"{path}: unexpected schema {schema!r}")
    return record


def microbench_times(record):
    """name -> real_time (ns) for plain benchmarks (skip aggregates).

    A name may appear several times when run-bench.sh measured it with
    --benchmark_repetitions (it does for the attached-overhead gate pair);
    repeated entries collapse to their minimum. Scheduler noise is strictly
    additive, so best-of-N is the estimator closest to the true cost — a
    couple of preempted repetitions cannot flip a ratio check.
    """
    samples = {}
    benches = record.get("microbench", {}).get("benchmarks")
    if not isinstance(benches, list):
        raise ValueError("record has no microbench.benchmarks list")
    for bench in benches:
        if bench.get("run_type", "iteration") != "iteration":
            continue
        samples.setdefault(bench["name"], []).append(float(bench["real_time"]))
    return {name: min(values) for name, values in samples.items()}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="committed BENCH_baseline.json")
    parser.add_argument("--current", required=True, help="freshly produced BENCH_engine.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative slack before a delta counts as a regression "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on regressions instead of warning")
    parser.add_argument("--attached-overhead", type=float, default=None,
                        metavar="RATIO",
                        help="also assert the attached kernel-telemetry chain "
                             "benchmark is within RATIO of the detached one "
                             "(always enforced, e.g. 0.05 = 5%%)")
    args = parser.parse_args()
    if args.tolerance < 0:
        parser.error("--tolerance must be non-negative")
    if args.attached_overhead is not None and args.attached_overhead < 0:
        parser.error("--attached-overhead must be non-negative")

    # Input problems are always fatal (exit 2), even in warn-only mode:
    # warn-only covers noisy-clock *regressions*, never a comparison that
    # silently never happened.
    try:
        baseline = load_record(args.baseline)
        current = load_record(args.current)
        base_times = microbench_times(baseline)
        cur_times = microbench_times(current)
        base_eps = float(baseline["engine"]["events_per_second"])
        cur_eps = float(current["engine"]["events_per_second"])
    except (OSError, ValueError, KeyError, TypeError, IndexError) as error:
        print(f"ERROR: unusable benchmark record: {error}", file=sys.stderr)
        return 2
    if base_eps <= 0:
        print(f"ERROR: {args.baseline}: non-positive baseline throughput",
              file=sys.stderr)
        return 2

    base_build = baseline.get("build_type", "unknown")
    cur_build = current.get("build_type", "unknown")
    print(f"build_type: baseline={base_build} current={cur_build}")
    if base_build != cur_build:
        print(f"ERROR: build-type mismatch ({base_build} baseline vs "
              f"{cur_build} current): the numbers are not comparable",
              file=sys.stderr)
        return 2
    regressions = []

    delta = (cur_eps - base_eps) / base_eps
    print(f"engine events_per_second: {base_eps:,.0f} -> {cur_eps:,.0f} ({delta:+.1%})")
    if delta < -args.tolerance:
        regressions.append(f"engine throughput fell {-delta:.1%} "
                           f"(tolerance {args.tolerance:.0%})")

    for name in sorted(base_times):
        if name not in cur_times:
            print(f"microbench {name}: missing from current run")
            regressions.append(f"{name} missing from current run")
            continue
        delta = (cur_times[name] - base_times[name]) / base_times[name]
        print(f"microbench {name}: {base_times[name]:.1f} -> "
              f"{cur_times[name]:.1f} ns ({delta:+.1%})")
        if delta > args.tolerance:
            regressions.append(f"{name} slowed {delta:.1%} "
                               f"(tolerance {args.tolerance:.0%})")
    for name in sorted(set(cur_times) - set(base_times)):
        print(f"microbench {name}: new (no baseline)")

    if args.attached_overhead is not None:
        detached = cur_times.get("BM_SimulatedSecond")
        attached = cur_times.get("BM_SimulatedSecondKernelStats")
        if detached is None or attached is None or detached <= 0:
            print("ERROR: current record lacks the BM_SimulatedSecond / "
                  "BM_SimulatedSecondKernelStats pair needed for "
                  "--attached-overhead", file=sys.stderr)
            return 2
        overhead = (attached - detached) / detached
        print(f"kernel telemetry attached overhead: {detached:.1f} -> "
              f"{attached:.1f} ns ({overhead:+.1%}, budget "
              f"{args.attached_overhead:.0%})")
        if overhead > args.attached_overhead:
            print(f"FAIL: attached kernel telemetry costs {overhead:.1%} "
                  f"(budget {args.attached_overhead:.0%})", file=sys.stderr)
            return 1

    if not regressions:
        print("bench comparison: OK (within tolerance)")
        return 0
    for item in regressions:
        print(f"REGRESSION: {item}", file=sys.stderr)
    if args.strict:
        return 1
    print("warn-only mode: not failing the build (use --strict to enforce)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
