#!/usr/bin/env python3
"""Compare two timeline artifacts (JSONL or CSV) window by window.

Timelines from `obs::Timeline` are deterministic for a fixed seed and
config, so two runs of the same experiment should be byte-identical. This
script diffs them structurally instead of with `cmp` so a divergence is
reported as *when* and *which signal* drifted, not just "files differ":

  * first divergent window: time, column name, both values
  * per-column maximum absolute delta across all shared windows

Values within --tolerance (absolute) are treated as equal; the default 0
demands exact agreement, which is what same-seed determinism promises.
The default mode is warn-only (exit 0 on divergence) so CI can surface
drift without blocking; pass --strict to turn any divergence into a nonzero
exit. Missing, empty, or malformed timelines are exit 2 in BOTH modes — a
typo'd artifact path must fail the build, not silently "pass" the diff.

--forbid-columns enforces the zero-perturbation contract: optional planes
(path repair, reconvergence, node faults) register their timeline columns
only when attached, so a run that should not have them must not show them.
Any listed column present in EITHER timeline is exit 1 — always, even
without --strict (a leaked column is a wiring bug, not numeric drift).

  scripts/compare-timeline.py --baseline a.jsonl --current b.jsonl \
      [--tolerance 0.0] [--strict] [--forbid-columns routes_stale,nodes_down]
"""

import argparse
import json
import sys


def load_timeline(path):
    """Return (columns, samples) where samples is a list of (t, [values]).

    JSONL: first line is the header record ({"timeline":"header",...}),
    the rest are sample records keyed on "t". CSV: header row is
    time,window_s,warmup,<columns>.
    """
    with open(path) as f:
        first = f.readline()
        if not first.strip():
            raise ValueError(f"{path}: empty file")
        if first.lstrip().startswith("{"):
            header = json.loads(first)
            if header.get("timeline") != "header":
                raise ValueError(f"{path}: first record is not a timeline header")
            columns = [col["name"] for col in header["columns"]]
            samples = []
            for line in f:
                record = json.loads(line)
                if record.get("timeline") != "sample":
                    continue
                samples.append((float(record["t"]), [float(v) for v in record["values"]]))
            return columns, samples
        fields = first.rstrip("\n").split(",")
        if fields[:3] != ["time", "window_s", "warmup"]:
            raise ValueError(f"{path}: not a timeline CSV (header {fields[:3]})")
        columns = fields[3:]
        samples = []
        for line in f:
            row = line.rstrip("\n").split(",")
            samples.append((float(row[0]), [float(v) for v in row[3:]]))
        return columns, samples


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="reference timeline (.jsonl or .csv)")
    parser.add_argument("--current", required=True, help="timeline to compare against it")
    parser.add_argument("--tolerance", type=float, default=0.0,
                        help="absolute slack before two values count as divergent "
                             "(default 0 = exact, the same-seed guarantee)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on divergence instead of warning")
    parser.add_argument("--forbid-columns", default="",
                        help="comma-separated column names that must not appear in "
                             "either timeline; any hit is exit 1 even without --strict")
    args = parser.parse_args()
    if args.tolerance < 0:
        parser.error("--tolerance must be non-negative")
    forbidden = [name for name in args.forbid_columns.split(",") if name]

    # Input problems are always fatal (exit 2), even in warn-only mode:
    # warn-only covers *divergences*, never a comparison that silently never
    # happened against a missing or garbled artifact.
    try:
        base_cols, base_samples = load_timeline(args.baseline)
        cur_cols, cur_samples = load_timeline(args.current)
    except (OSError, ValueError, IndexError) as error:
        print(f"ERROR: unusable timeline: {error}", file=sys.stderr)
        return 2
    if not base_samples:
        print(f"ERROR: {args.baseline}: no sample windows", file=sys.stderr)
        return 2
    if not cur_samples:
        print(f"ERROR: {args.current}: no sample windows", file=sys.stderr)
        return 2

    leaked = [(label, name)
              for label, cols in (("baseline", base_cols), ("current", cur_cols))
              for name in forbidden if name in cols]
    if leaked:
        for label, name in leaked:
            print(f"ERROR: forbidden column '{name}' present in {label} timeline",
                  file=sys.stderr)
        return 1

    divergences = []
    if base_cols != cur_cols:
        only_base = [c for c in base_cols if c not in cur_cols]
        only_cur = [c for c in cur_cols if c not in base_cols]
        divergences.append(f"column sets differ (baseline-only {only_base}, "
                           f"current-only {only_cur})")
        print(f"columns: baseline has {len(base_cols)}, current has {len(cur_cols)}")
    if len(base_samples) != len(cur_samples):
        divergences.append(f"window counts differ "
                           f"({len(base_samples)} vs {len(cur_samples)})")
    shared_cols = min(len(base_cols), len(cur_cols))
    shared = min(len(base_samples), len(cur_samples))
    print(f"comparing {shared} windows x {shared_cols} columns")

    first_divergence = None
    max_delta = {}  # column name -> (delta, time)
    for (bt, bvals), (ct, cvals) in zip(base_samples, cur_samples):
        if bt != ct:
            divergences.append(f"window times diverge ({bt} vs {ct})")
            break
        for i in range(shared_cols):
            delta = abs(cvals[i] - bvals[i])
            if delta <= args.tolerance:
                continue
            name = base_cols[i]
            if first_divergence is None:
                first_divergence = (bt, name, bvals[i], cvals[i])
            if name not in max_delta or delta > max_delta[name][0]:
                max_delta[name] = (delta, bt)

    if first_divergence is not None:
        t, name, bval, cval = first_divergence
        divergences.append(f"first divergent window at t={t:g}: "
                           f"{name} {bval:g} -> {cval:g}")
        print(f"first divergence: t={t:g} column={name} "
              f"baseline={bval:g} current={cval:g}")
        for name in sorted(max_delta):
            delta, t = max_delta[name]
            print(f"max delta {name}: {delta:g} (at t={t:g})")

    if not divergences:
        print("timeline comparison: OK (runs agree within tolerance)")
        return 0
    for item in divergences:
        print(f"DIVERGENCE: {item}", file=sys.stderr)
    if args.strict:
        return 1
    print("warn-only mode: not failing the build (use --strict to enforce)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
