#!/usr/bin/env python3
"""Validate a Prometheus text-format (0.0.4) exposition file.

Stdlib-only linter for the expositions the simulators emit (dacsim
--metrics-out, the live /metrics scrape). Checks, per file:

  * every line is a comment (# HELP / # TYPE), blank, or a sample;
  * metric and label names are legal, label values are properly quoted;
  * # TYPE precedes the samples of its family and appears at most once;
  * sample values parse as Go-style floats (including +Inf/-Inf/NaN);
  * no duplicate series (same name + identical label set);
  * histogram families are internally consistent per series:
      - bucket counts are cumulative (monotone non-decreasing by le),
      - exactly one le="+Inf" bucket, equal to the _count sample,
      - _count and _sum are present.

Usage: check-prometheus.py <file> [<file> ...]   (exit 1 on any violation)
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# One label pair: name="value" with \\, \" and \n escapes allowed inside.
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)(\s+\S+)?$")


def parse_value(token):
    if token in ("+Inf", "Inf"):
        return float("inf")
    if token == "-Inf":
        return float("-inf")
    if token == "NaN":
        return float("nan")
    return float(token)  # raises ValueError on garbage


def parse_labels(raw, complain):
    """Returns the labels as a sorted tuple of (name, value) pairs."""
    labels = []
    rest = raw.strip()
    while rest:
        match = LABEL_PAIR.match(rest)
        if match is None:
            complain(f"malformed label block near {rest!r}")
            return None
        labels.append((match.group(1), match.group(2)))
        rest = rest[match.end():].lstrip()
        if rest.startswith(","):
            rest = rest[1:].lstrip()
        elif rest:
            complain(f"expected ',' between labels near {rest!r}")
            return None
    names = [name for name, _ in labels]
    if len(names) != len(set(names)):
        complain("duplicate label name in one series")
        return None
    return tuple(sorted(labels))


def base_family(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)], suffix
    return name, ""


def check_file(path):
    errors = []
    types = {}          # family name -> declared type
    seen_series = set()  # (name, labels) of every sample line
    histograms = {}      # (family, labels-sans-le) -> {buckets, count, sum}

    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.rstrip("\n")

            def complain(message, lineno=lineno):
                errors.append(f"{path}:{lineno}: {message}")

            if not line.strip():
                continue
            if line.startswith("#"):
                parts = line.split(None, 3)
                if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                    if len(parts) < 3 or not METRIC_NAME.match(parts[2]):
                        complain(f"bad {parts[1]} comment")
                    elif parts[1] == "TYPE":
                        kind = parts[3].strip() if len(parts) > 3 else ""
                        if kind not in ("counter", "gauge", "histogram",
                                        "summary", "untyped"):
                            complain(f"unknown TYPE {kind!r}")
                        elif parts[2] in types:
                            complain(f"duplicate TYPE for {parts[2]}")
                        else:
                            types[parts[2]] = kind
                continue

            match = SAMPLE.match(line)
            if match is None:
                complain(f"unparsable sample line: {line!r}")
                continue
            name, _, raw_labels, value_token, _ = match.groups()
            labels = parse_labels(raw_labels or "", complain)
            if labels is None:
                continue
            try:
                value = parse_value(value_token)
            except ValueError:
                complain(f"bad sample value {value_token!r}")
                continue

            series = (name, labels)
            if series in seen_series:
                complain(f"duplicate series {name}{dict(labels)}")
            seen_series.add(series)

            family, suffix = base_family(name)
            declared = types.get(family)
            if declared == "histogram" and suffix:
                key_labels = tuple(p for p in labels if p[0] != "le")
                entry = histograms.setdefault((family, key_labels), {
                    "buckets": [], "count": None, "sum": None, "line": lineno,
                })
                if suffix == "_bucket":
                    le = dict(labels).get("le")
                    if le is None:
                        complain(f"{name} sample without le label")
                        continue
                    entry["buckets"].append((lineno, le, value))
                elif suffix == "_count":
                    entry["count"] = (lineno, value)
                else:
                    entry["sum"] = (lineno, value)
            elif types.get(name) is None and declared is None:
                complain(f"sample {name} precedes its # TYPE")

    for (family, labels), entry in histograms.items():
        where = f"{path}:{entry['line']}"
        label_note = f"{family}{dict(labels)}"
        if entry["count"] is None or entry["sum"] is None:
            errors.append(f"{where}: histogram {label_note} missing _count/_sum")
            continue
        inf_buckets = [b for b in entry["buckets"] if b[1] == "+Inf"]
        if len(inf_buckets) != 1:
            errors.append(f"{where}: histogram {label_note} has "
                          f"{len(inf_buckets)} le=\"+Inf\" buckets (want 1)")
            continue
        if inf_buckets[0][2] != entry["count"][1]:
            errors.append(f"{where}: histogram {label_note} +Inf bucket "
                          f"{inf_buckets[0][2]} != _count {entry['count'][1]}")
        previous = None
        for lineno, le, value in entry["buckets"]:
            if previous is not None and value < previous:
                errors.append(f"{path}:{lineno}: histogram {label_note} "
                              f"bucket le={le} not cumulative "
                              f"({value} < {previous})")
            previous = value

    return errors


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    failures = []
    for path in sys.argv[1:]:
        failures.extend(check_file(path))
    for failure in failures:
        print(f"PROMETHEUS FORMAT: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(f"check-prometheus: {len(sys.argv) - 1} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
