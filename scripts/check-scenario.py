#!/usr/bin/env python3
"""Validate anyqos scenario files (schema anyqos.scenario/1).

Stdlib-only linter for the scenario plane (src/sim/scenario.h): the JSON
documents consumed by `dacsim --scenario`, `chaossim --scenario`, and
written by tools/chaosfuzz as shrunk repros. Checks, per file:

  * the document is a JSON object carrying the exact schema tag;
  * no unknown keys at any level (typo safety for hand-edited repros);
  * required blocks (workload, system, run) with sane domains: positive
    rates/holding/bandwidth, alpha and shares in range, non-empty group
    and sources, max_tries >= 1;
  * optional blocks (resilience, reconvergence, governor, axes) key-by-key;
  * fault entries ordered (fail_at < repair_at, down_at < up_at), node ids
    non-negative integers, churn member indices inside the group;
  * ops directives sorted by time, knob names known, values in each knob's
    domain, and a governor block present when ops exist;
  * path_repair only with a reconvergence block.

Usage: check-scenario.py <file> [<file> ...]   (exit 1 on any violation)
"""

import json
import sys

SCHEMA = "anyqos.scenario/1"
RECONVERGENCE_POLICIES = ("instant", "fixed", "flooding")
# Knob name -> (minimum, must_be_integer); mirrors control::validate_directive.
KNOBS = {
    "retrial-ceiling": (1, True),
    "retrial-floor": (1, True),
    "shed-budget": (0, False),
    "shed-burst": (0, False),
    "breaker-threshold": (1, True),
    "breaker-cooldown": (1e-308, False),  # strictly positive
}

errors = []


def complain(path, what):
    errors.append(f"{path}: {what}")


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_keys(path, obj, where, required, optional=()):
    """Flags unknown keys and missing required keys; returns True when usable."""
    if not isinstance(obj, dict):
        complain(path, f"{where} must be a JSON object")
        return False
    ok = True
    for key in obj:
        if key not in required and key not in optional:
            complain(path, f"{where}: unknown key '{key}'")
            ok = False
    for key in required:
        if key not in obj:
            complain(path, f"{where}: missing required key '{key}'")
            ok = False
    return ok


def check_number(path, obj, where, key, minimum=None, maximum=None,
                 integer=False, exclusive_min=False):
    value = obj.get(key)
    if value is None:
        return None
    if not is_number(value) or (integer and value != int(value)):
        kind = "an integer" if integer else "a number"
        complain(path, f"{where}.{key} must be {kind}, got {value!r}")
        return None
    if minimum is not None and (value <= minimum if exclusive_min else value < minimum):
        op = ">" if exclusive_min else ">="
        complain(path, f"{where}.{key} must be {op} {minimum}, got {value}")
        return None
    if maximum is not None and value > maximum:
        complain(path, f"{where}.{key} must be <= {maximum}, got {value}")
        return None
    return value


def check_bool(path, obj, where, key):
    value = obj.get(key)
    if value is not None and not isinstance(value, bool):
        complain(path, f"{where}.{key} must be a boolean, got {value!r}")


def check_nodes(path, obj, where, key):
    """A non-empty list of non-negative integer node ids."""
    nodes = obj.get(key)
    if not isinstance(nodes, list) or not nodes:
        complain(path, f"{where}.{key} must be a non-empty list of node ids")
        return None
    for node in nodes:
        if not is_number(node) or node != int(node) or node < 0:
            complain(path, f"{where}.{key} entries must be non-negative integers, got {node!r}")
            return None
    return nodes


def check_window(path, where, entry, start_key, end_key):
    start = check_number(path, entry, where, start_key, minimum=0)
    end = check_number(path, entry, where, end_key, minimum=0)
    if start is not None and end is not None and end <= start:
        complain(path, f"{where}: {end_key} ({end}) must exceed {start_key} ({start})")


def check_entry_list(path, doc, key, fields, validate):
    entries = doc.get(key)
    if entries is None:
        return
    if not isinstance(entries, list):
        complain(path, f"{key} must be a list")
        return
    for index, entry in enumerate(entries):
        where = f"{key}[{index}]"
        if check_keys(path, entry, where, fields):
            validate(where, entry)


def check_file(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        complain(path, f"unreadable: {error}")
        return

    if not check_keys(
            path, doc, "document",
            required=("schema", "name", "topology", "seed", "workload", "system", "run"),
            optional=("resilience", "reconvergence", "governor", "axes", "link_faults",
                      "churn", "node_faults", "regional_outages", "ops")):
        return
    if doc["schema"] != SCHEMA:
        complain(path, f"schema must be '{SCHEMA}', got {doc['schema']!r}")
    if not isinstance(doc["name"], str) or not doc["name"]:
        complain(path, "name must be a non-empty string")
    if not isinstance(doc["topology"], str) or not doc["topology"]:
        complain(path, "topology must be a non-empty spec string")
    check_number(path, doc, "document", "seed", minimum=0, integer=True)

    workload = doc["workload"]
    if check_keys(path, workload, "workload",
                  required=("lambda", "mean_holding_s", "flow_bandwidth_bps", "sources")):
        check_number(path, workload, "workload", "lambda", minimum=0, exclusive_min=True)
        check_number(path, workload, "workload", "mean_holding_s", minimum=0,
                     exclusive_min=True)
        check_number(path, workload, "workload", "flow_bandwidth_bps", minimum=0,
                     exclusive_min=True)
        check_nodes(path, workload, "workload", "sources")

    group = []
    system = doc["system"]
    if check_keys(path, system, "system",
                  required=("algorithm", "max_tries", "alpha", "anycast_share", "group",
                            "failover_readmit", "path_repair")):
        if system["algorithm"] not in ("ED", "WD/D+H", "WD/D+B", "SP"):
            complain(path, f"system.algorithm unknown: {system['algorithm']!r}")
        check_number(path, system, "system", "max_tries", minimum=1, integer=True)
        check_number(path, system, "system", "alpha", minimum=0, maximum=1)
        check_number(path, system, "system", "anycast_share", minimum=0, maximum=1,
                     exclusive_min=True)
        group = check_nodes(path, system, "system", "group") or []
        check_bool(path, system, "system", "failover_readmit")
        check_bool(path, system, "system", "path_repair")
        if system.get("path_repair") is True and "reconvergence" not in doc:
            complain(path, "system.path_repair requires a reconvergence block")

    run = doc["run"]
    if check_keys(path, run, "run",
                  required=("warmup_s", "measure_s", "drain_to_quiescence",
                            "drain_max_events", "drain_max_sim_s")):
        check_number(path, run, "run", "warmup_s", minimum=0)
        check_number(path, run, "run", "measure_s", minimum=0, exclusive_min=True)
        check_bool(path, run, "run", "drain_to_quiescence")
        check_number(path, run, "run", "drain_max_events", minimum=0, integer=True)
        check_number(path, run, "run", "drain_max_sim_s", minimum=0)

    resilience = doc.get("resilience")
    if resilience is not None and check_keys(
            path, resilience, "resilience",
            required=("loss_probability", "hop_delay_s", "hop_jitter_s",
                      "retransmit_timeout_s", "backoff_factor", "backoff_jitter",
                      "max_retransmits", "orphan_hold_s")):
        check_number(path, resilience, "resilience", "loss_probability", minimum=0, maximum=1)
        check_number(path, resilience, "resilience", "hop_delay_s", minimum=0)
        check_number(path, resilience, "resilience", "hop_jitter_s", minimum=0)
        check_number(path, resilience, "resilience", "retransmit_timeout_s", minimum=0,
                     exclusive_min=True)
        check_number(path, resilience, "resilience", "backoff_factor", minimum=1)
        check_number(path, resilience, "resilience", "backoff_jitter", minimum=0, maximum=1)
        check_number(path, resilience, "resilience", "max_retransmits", minimum=0,
                     integer=True)
        check_number(path, resilience, "resilience", "orphan_hold_s", minimum=0,
                     exclusive_min=True)

    reconvergence = doc.get("reconvergence")
    if reconvergence is not None and check_keys(path, reconvergence, "reconvergence",
                                                required=("policy", "param_s")):
        if reconvergence["policy"] not in RECONVERGENCE_POLICIES:
            complain(path, f"reconvergence.policy must be one of {RECONVERGENCE_POLICIES}, "
                           f"got {reconvergence['policy']!r}")
        check_number(path, reconvergence, "reconvergence", "param_s", minimum=0)

    governor = doc.get("governor")
    if governor is not None and check_keys(
            path, governor, "governor",
            required=("adaptive_retrial", "member_breakers", "window_s", "min_tries",
                      "breaker_threshold", "breaker_cooldown_s", "shed_budget_msgs_per_s",
                      "shed_burst_msgs")):
        check_bool(path, governor, "governor", "adaptive_retrial")
        check_bool(path, governor, "governor", "member_breakers")
        check_number(path, governor, "governor", "window_s", minimum=0, exclusive_min=True)
        check_number(path, governor, "governor", "min_tries", minimum=1, integer=True)
        check_number(path, governor, "governor", "breaker_threshold", minimum=1, integer=True)
        check_number(path, governor, "governor", "breaker_cooldown_s", minimum=0,
                     exclusive_min=True)
        check_number(path, governor, "governor", "shed_budget_msgs_per_s", minimum=0)
        check_number(path, governor, "governor", "shed_burst_msgs", minimum=0)

    axes = doc.get("axes")
    if axes is not None and check_keys(
            path, axes, "axes",
            required=("link_rate", "link_mean_repair_s", "churn_rate", "churn_mean_down_s",
                      "node_rate", "node_mean_repair_s")):
        for rate in ("link_rate", "churn_rate", "node_rate"):
            check_number(path, axes, "axes", rate, minimum=0)
        for mean in ("link_mean_repair_s", "churn_mean_down_s", "node_mean_repair_s"):
            check_number(path, axes, "axes", mean, minimum=0, exclusive_min=True)

    def validate_link(where, entry):
        a = check_number(path, entry, where, "a", minimum=0, integer=True)
        b = check_number(path, entry, where, "b", minimum=0, integer=True)
        if a is not None and a == b:
            complain(path, f"{where}: endpoints must differ (a == b == {a})")
        check_window(path, where, entry, "fail_at", "repair_at")

    def validate_churn(where, entry):
        member = check_number(path, entry, where, "member", minimum=0, integer=True)
        if member is not None and group and member >= len(group):
            complain(path, f"{where}: member {int(member)} outside the group "
                           f"(size {len(group)})")
        check_window(path, where, entry, "down_at", "up_at")

    def validate_node(where, entry):
        check_number(path, entry, where, "node", minimum=0, integer=True)
        check_window(path, where, entry, "fail_at", "repair_at")

    def validate_regional(where, entry):
        check_number(path, entry, where, "epicenter", minimum=0, integer=True)
        check_number(path, entry, where, "radius_hops", minimum=0, integer=True)
        check_window(path, where, entry, "fail_at", "repair_at")

    check_entry_list(path, doc, "link_faults", ("a", "b", "fail_at", "repair_at"),
                     validate_link)
    check_entry_list(path, doc, "churn", ("member", "down_at", "up_at"), validate_churn)
    check_entry_list(path, doc, "node_faults", ("node", "fail_at", "repair_at"),
                     validate_node)
    check_entry_list(path, doc, "regional_outages",
                     ("epicenter", "radius_hops", "fail_at", "repair_at"), validate_regional)

    ops = doc.get("ops")
    if ops is not None:
        if not isinstance(ops, list):
            complain(path, "ops must be a list")
            return
        if ops and governor is None:
            complain(path, "ops directives require a governor block")
        last_t = None
        for index, entry in enumerate(ops):
            where = f"ops[{index}]"
            if not check_keys(path, entry, where, ("t", "knob", "value")):
                continue
            t = check_number(path, entry, where, "t", minimum=0)
            if t is not None:
                if last_t is not None and t < last_t:
                    complain(path, f"{where}: ops must be sorted by t "
                                   f"({t} after {last_t})")
                last_t = t
            knob = entry["knob"]
            if knob not in KNOBS:
                complain(path, f"{where}: unknown knob {knob!r}")
                continue
            minimum, integer = KNOBS[knob]
            check_number(path, entry, where, "value", minimum=minimum, integer=integer)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        check_file(path)
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"check-scenario: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print(f"check-scenario: {len(argv) - 1} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
