#!/usr/bin/env bash
# Run clang-tidy over every library source with the project .clang-tidy.
#
#   scripts/run-tidy.sh              # best effort: skip (exit 0) if clang-tidy
#                                    # is not installed
#   scripts/run-tidy.sh --strict     # CI mode: missing clang-tidy is an error
#   scripts/run-tidy.sh --fix        # apply suggested fixes in place
#
# Per-file check waivers come from scripts/tidy-suppressions.txt (format
# documented there) — NOT from inline NOLINT comments, so every exemption
# stays auditable in one place. A malformed or stale suppression entry fails
# the run.
#
# A compile_commands.json is produced on demand in build/tidy/ so the script
# works from a pristine checkout.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build/tidy"
strict=0
fix_args=()
for arg in "$@"; do
  case "${arg}" in
    --strict) strict=1 ;;
    --fix) fix_args=(--fix --fix-errors) ;;
    *)
      echo "usage: scripts/run-tidy.sh [--strict] [--fix]" >&2
      exit 2
      ;;
  esac
done

# Find clang-tidy: plain name first, then versioned installs (newest wins).
tidy=""
if command -v clang-tidy >/dev/null 2>&1; then
  tidy="clang-tidy"
else
  for version in 20 19 18 17 16 15 14; do
    if command -v "clang-tidy-${version}" >/dev/null 2>&1; then
      tidy="clang-tidy-${version}"
      break
    fi
  done
fi
if [[ -z "${tidy}" ]]; then
  if [[ "${strict}" -eq 1 ]]; then
    echo "run-tidy: clang-tidy not found and --strict was given" >&2
    exit 1
  fi
  echo "run-tidy: SKIPPED (clang-tidy not installed; install LLVM or run in CI)"
  exit 0
fi

# Parse the tracked suppression file before spending any time on the build:
# a bad entry should fail fast. Populates suppress_files[] / suppress_checks[]
# as parallel arrays (bash 3 has no associative arrays on every platform).
suppressions_file="${repo_root}/scripts/tidy-suppressions.txt"
suppress_files=()
suppress_checks=()
if [[ -f "${suppressions_file}" ]]; then
  lineno=0
  while IFS= read -r line; do
    lineno=$((lineno + 1))
    # Strip comments and surrounding whitespace; skip blanks.
    entry="${line%%#*}"
    entry="$(echo "${entry}" | xargs || true)"
    [[ -z "${entry}" ]] && continue
    if [[ "${line}" != *"#"* ]]; then
      echo "run-tidy: ${suppressions_file}:${lineno}: entry needs a '# reason' comment" >&2
      exit 2
    fi
    if [[ "${entry}" != *:* ]]; then
      echo "run-tidy: ${suppressions_file}:${lineno}: expected <path>:<check>" >&2
      exit 2
    fi
    entry_path="${entry%%:*}"
    entry_check="${entry#*:}"
    if [[ ! -f "${repo_root}/${entry_path}" ]]; then
      echo "run-tidy: ${suppressions_file}:${lineno}: stale entry, no such file ${entry_path}" >&2
      exit 2
    fi
    suppress_files+=("${entry_path}")
    suppress_checks+=("${entry_check}")
  done < "${suppressions_file}"
fi

# Emit the extra --checks argument (possibly empty) for one source path.
checks_arg_for() {
  local source="$1" disabled="" i
  for i in "${!suppress_files[@]}"; do
    if [[ "${suppress_files[$i]}" == "${source}" ]]; then
      disabled="${disabled},-${suppress_checks[$i]}"
    fi
  done
  if [[ -n "${disabled}" ]]; then
    echo "--checks=${disabled#,}"
  fi
}

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  cmake -S "${repo_root}" -B "${build_dir}" \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DANYQOS_BUILD_BENCH=OFF >/dev/null
fi

# The library sources are the contract surface; tests and benches follow the
# same style but are checked indirectly through the headers they include.
mapfile -t sources < <(cd "${repo_root}" && find src -name '*.cpp' | sort)

echo "run-tidy: ${tidy} over ${#sources[@]} files (config: .clang-tidy," \
     "suppressions: $(basename "${suppressions_file}"), ${#suppress_files[@]} entries)"
status=0
for source in "${sources[@]}"; do
  extra_checks="$(checks_arg_for "${source}")"
  extra_args=()
  if [[ -n "${extra_checks}" ]]; then
    extra_args=("${extra_checks}")
    echo "run-tidy: ${source}: waived ${extra_checks#--checks=}"
  fi
  if ! "${tidy}" -p "${build_dir}" --quiet "${extra_args[@]}" "${fix_args[@]}" \
      "${repo_root}/${source}"; then
    status=1
    echo "run-tidy: FAILED ${source}" >&2
  fi
done

if [[ "${status}" -ne 0 ]]; then
  echo "run-tidy: violations found (see above)" >&2
  exit 1
fi
echo "run-tidy: clean"
