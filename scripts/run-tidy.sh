#!/usr/bin/env bash
# Run clang-tidy over every library source with the project .clang-tidy.
#
#   scripts/run-tidy.sh              # best effort: skip (exit 0) if clang-tidy
#                                    # is not installed
#   scripts/run-tidy.sh --strict     # CI mode: missing clang-tidy is an error
#   scripts/run-tidy.sh --fix        # apply suggested fixes in place
#
# A compile_commands.json is produced on demand in build/tidy/ so the script
# works from a pristine checkout.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build/tidy"
strict=0
fix_args=()
for arg in "$@"; do
  case "${arg}" in
    --strict) strict=1 ;;
    --fix) fix_args=(--fix --fix-errors) ;;
    *)
      echo "usage: scripts/run-tidy.sh [--strict] [--fix]" >&2
      exit 2
      ;;
  esac
done

# Find clang-tidy: plain name first, then versioned installs (newest wins).
tidy=""
if command -v clang-tidy >/dev/null 2>&1; then
  tidy="clang-tidy"
else
  for version in 20 19 18 17 16 15 14; do
    if command -v "clang-tidy-${version}" >/dev/null 2>&1; then
      tidy="clang-tidy-${version}"
      break
    fi
  done
fi
if [[ -z "${tidy}" ]]; then
  if [[ "${strict}" -eq 1 ]]; then
    echo "run-tidy: clang-tidy not found and --strict was given" >&2
    exit 1
  fi
  echo "run-tidy: SKIPPED (clang-tidy not installed; install LLVM or run in CI)"
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  cmake -S "${repo_root}" -B "${build_dir}" \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DANYQOS_BUILD_BENCH=OFF >/dev/null
fi

# The library sources are the contract surface; tests and benches follow the
# same style but are checked indirectly through the headers they include.
mapfile -t sources < <(cd "${repo_root}" && find src -name '*.cpp' | sort)

echo "run-tidy: ${tidy} over ${#sources[@]} files (config: .clang-tidy)"
status=0
for source in "${sources[@]}"; do
  if ! "${tidy}" -p "${build_dir}" --quiet "${fix_args[@]}" \
      "${repo_root}/${source}"; then
    status=1
    echo "run-tidy: FAILED ${source}" >&2
  fi
done

if [[ "${status}" -ne 0 ]]; then
  echo "run-tidy: violations found (see above)" >&2
  exit 1
fi
echo "run-tidy: clean"
