#!/usr/bin/env python3
"""detlint — determinism & hot-path static analysis for the anyqos tree.

The DES engine's headline guarantee is that two runs at the same seed are
byte-identical, and every refactor in this repo leans on that guarantee
(compare-timeline.py, the chaos matrix, the bench gates). detlint machine-
enforces the five properties the compiler never checks — the determinism
contract written down in DESIGN.md §12:

  global-state      no global / function-`static` mutable state in src/
  rng-ownership     no rand()/srand(), std::random_device, or RNG engine
                    construction outside src/des/random.{h,cpp}; every
                    stream is derived from a des::Simulator instance
  wall-clock        no host clock reads (system_clock/steady_clock/
                    high_resolution_clock::now, time(), gettimeofday, ...)
                    in simulation code — the DES clock is the only clock
  unordered-artifact-iteration
                    no iteration over std::unordered_map/std::unordered_set
                    in artifact-writing paths (trace, timeline, metrics,
                    flight recorder, CSV/JSONL writers) — hash order must
                    never reach an artifact byte
  hot-path-std-function
                    no std::function (or <functional>) in files annotated
                    `// detlint: hot-path` — the event hot path dispatches
                    through des::Action's inline storage only

Exceptions are declared in-tree with ANYQOS_DETLINT_ALLOW(rule, "reason")
(src/util/annotations.h) on the finding's line or the line directly above
it; the macro's comment form (`// ANYQOS_DETLINT_ALLOW(...)`) works where a
statement cannot appear (e.g. mem-initializer lists). Unknown rule names,
empty reasons, and suppressions that match nothing are findings themselves,
so stale ALLOWs cannot accumulate.

Analysis is lexical (Python stdlib only): comments and string literals are
masked before rules run, declarations of unordered members are correlated
between a .cpp and its paired header, and the file list is the src/ tree
optionally cross-checked against a compile_commands.json (sources missing
from the build are reported in the JSON summary, not as findings).

Usage:
  tools/detlint/detlint.py [--root DIR] [--format text|json] [--output F]
                           [--compile-commands PATH] [--list-rules]

Exit status: 0 clean, 1 unsuppressed findings, 2 usage/configuration error.
"""

import argparse
import fnmatch
import json
import os
import re
import sys

# --- rule registry ----------------------------------------------------------

RULES = {
    "global-state": "mutable global or function-static state",
    "rng-ownership": "RNG engine constructed outside src/des/random",
    "wall-clock": "host clock read in simulation code",
    "unordered-artifact-iteration":
        "unordered-container iteration on an artifact-writing path",
    "hot-path-std-function": "std::function in a hot-path file",
}

# ANYQOS_DETLINT_ALLOW takes the underscored form of the rule id (it must be
# a valid C++ token); map it back.
ALLOW_TOKEN = {rule.replace("-", "_"): rule for rule in RULES}

# Files that own RNG engine construction (rule rng-ownership's seam).
RNG_OWNERS = ("src/des/random.h", "src/des/random.cpp")

# Artifact-writing paths for rule unordered-artifact-iteration: everything
# that serializes state (trace, timeline, metrics, flight recorder, CSV/JSONL
# writers) plus the state containers those writers walk. A file can also opt
# in with a `// detlint: artifact-path` marker.
ARTIFACT_GLOBS = (
    "src/obs/*",
    "src/audit/*",
    "src/sim/trace.*",
    "src/sim/metrics.*",
    "src/sim/metrics_export.*",
    "src/sim/timeseries.*",
    "src/sim/flow_table.*",
    "src/sim/simulation.*",
    "src/signaling/soft_state.*",
    "src/signaling/resilient.*",
    "src/util/table.*",
)

# Hot-path files for rule hot-path-std-function. The in-file
# `// detlint: hot-path` marker extends this set.
HOT_PATH_GLOBS = (
    "src/des/event_queue.*",
    "src/des/simulator.*",
    "src/des/action.*",
)

SOURCE_EXTENSIONS = (".h", ".hpp", ".cpp", ".cc", ".cxx")

ALLOW_RE = re.compile(
    r"ANYQOS_DETLINT_ALLOW\(\s*([A-Za-z_][A-Za-z0-9_]*)\s*,\s*"
    r'"((?:[^"\\]|\\.)*)"\s*\)')

# The annotations header defines the macro; its docs name every rule token.
ANNOTATION_FILES = ("src/util/annotations.h",)


class Finding:
    def __init__(self, path, line, rule, message, snippet=""):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.snippet = snippet.strip()
        self.suppressed = False
        self.reason = None

    def as_dict(self):
        record = {
            "file": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
            "suppressed": self.suppressed,
        }
        if self.reason is not None:
            record["reason"] = self.reason
        return record


def mask_comments_and_strings(text):
    """Blanks comments, string literals, and char literals, preserving line
    structure so findings keep their line numbers."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal? Look back for R prefix.
                if out and out[-1] == "R" and (len(out) < 2 or not out[-2].isalnum()):
                    match = re.match(r'R"([^\s()\\]{0,16})\(', text[i - 1:])
                    if match:
                        raw_delim = ")" + match.group(1) + '"'
                        state = "raw"
                        out.append('"')
                        i += 1
                        continue
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                # Skip digit separators (1'000) — only treat as char literal
                # when not sandwiched between alphanumerics.
                prev = out[-1] if out else ""
                if prev.isdigit() and nxt.isalnum():
                    out.append(c)
                    i += 1
                    continue
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                out.append('"')
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                out.append("'")
                i += 1
            else:
                out.append(" ")
                i += 1
        else:  # raw string
            if text.startswith(raw_delim, i):
                out.append(raw_delim)
                i += len(raw_delim)
                state = "code"
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def matches_any(path, globs):
    return any(fnmatch.fnmatch(path, pattern) for pattern in globs)


# --- per-rule scanners ------------------------------------------------------

STATIC_LOCAL_RE = re.compile(r"^\s*static\s+(?!assert\b)([A-Za-z_][\w:<>,\s*&]*?)\s*"
                             r"\b([A-Za-z_]\w*)\s*(=|\{|;|\[)")
STATIC_SKIP_RE = re.compile(r"\bstatic\s+(const\b|constexpr\b|inline\s+const|"
                            r"inline\s+constexpr)")
GLOBAL_DEF_RE = re.compile(r"^([A-Za-z_][\w:<>,\s*&]*?)\s+([A-Za-z_]\w*)\s*(=[^=]|\{|;)")
GLOBAL_SKIP_KEYWORDS = (
    "const ", "constexpr ", "using ", "typedef ", "namespace ", "class ",
    "struct ", "enum ", "template", "friend ", "return ", "extern ",
    "#", "public", "private", "protected", "case ", "default:", "goto ",
)


def function_signature_like(line):
    """True for declarations whose name is immediately followed by `(`:
    functions, not variables (heuristic; parenthesized initializers of
    mutable statics are rare and flagged via = / {} forms)."""
    return re.search(r"\b[A-Za-z_]\w*\s*\(", line) is not None


class ScopeTracker:
    """Lexical scope stack: tells namespace scope apart from class bodies and
    function bodies by looking at what introduced each `{`."""

    def __init__(self):
        self.stack = []  # entries: "namespace" | "class" | "function" | "block"
        self.pending = ""  # text since last statement boundary

    def feed(self, line):
        for c in line:
            if c == "{":
                self.stack.append(self._classify(self.pending))
                self.pending = ""
            elif c == "}":
                if self.stack:
                    self.stack.pop()
                self.pending = ""
            elif c in ";":
                self.pending = ""
            else:
                self.pending += c
        self.pending += " "

    def _classify(self, text):
        text = text.strip()
        if re.search(r"\bnamespace\b", text):
            return "namespace"
        if re.search(r"\b(class|struct|union|enum)\b", text) and "(" not in text:
            return "class"
        if "(" in text or re.search(r"\b(if|else|for|while|do|switch|try|catch)\b",
                                    text):
            return "function"
        if not text:
            return "block"  # brace-init or stray block
        if "=" in text:
            return "block"  # initializer list
        return "function"

    def at_namespace_scope(self):
        return all(kind == "namespace" for kind in self.stack)

    def in_function(self):
        return any(kind in ("function", "block") for kind in self.stack)


def scan_global_state(path, lines, findings):
    tracker = ScopeTracker()
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        at_ns = tracker.at_namespace_scope()
        in_fn = tracker.in_function()
        tracker.feed(line)
        if not stripped or stripped.startswith("#"):
            continue
        # `static` declarations: mutable unless const/constexpr. At class
        # scope a `static Foo bar(...)` declaration is a member function —
        # skip signature-like lines.
        if re.match(r"\s*static\s", line) and "static_assert" not in line \
                and "static_cast" not in line:
            if STATIC_SKIP_RE.search(line):
                continue
            match = STATIC_LOCAL_RE.match(line)
            if match is None:
                continue
            if match.group(3) == "[":  # static arrays: still mutable state
                pass
            name_and_rest = line[line.index(match.group(2), match.start(2)):]
            if function_signature_like(stripped) and "=" not in stripped:
                continue
            findings.append(Finding(
                path, lineno, "global-state",
                f"mutable static state `{match.group(2)}` — hoist into "
                "instance state (des::Simulator isolation contract)",
                line))
            continue
        # Namespace-scope definitions: only in .cpp files (headers declare
        # types), only at pure namespace scope, outside functions.
        if not at_ns or in_fn:
            continue
        if not path.endswith((".cpp", ".cc", ".cxx")):
            continue
        if any(stripped.startswith(k) or f" {k}" in f" {stripped}"
               for k in GLOBAL_SKIP_KEYWORDS):
            continue
        match = GLOBAL_DEF_RE.match(stripped)
        if match is None:
            continue
        if function_signature_like(stripped.split("=")[0]):
            continue
        type_part = match.group(1).strip()
        if not type_part or type_part in ("else", "do"):
            continue
        findings.append(Finding(
            path, lineno, "global-state",
            f"mutable namespace-scope variable `{match.group(2)}` — global "
            "state breaks simulator isolation",
            line))


RNG_ENGINE_RE = re.compile(
    r"\b(?:std\s*::\s*)?(mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
    r"ranlux(?:24|48)(?:_base)?|knuth_b|random_device)\b")
RNG_CALL_RE = re.compile(r"(?<![\w.:])s?rand\s*\(")


def scan_rng_ownership(path, lines, findings):
    if path in RNG_OWNERS:
        return
    for lineno, line in enumerate(lines, start=1):
        match = RNG_ENGINE_RE.search(line)
        if match:
            findings.append(Finding(
                path, lineno, "rng-ownership",
                f"`{match.group(1)}` outside src/des/random — draw from a "
                "des::Simulator-owned RandomStream instead",
                line))
            continue
        if RNG_CALL_RE.search(line):
            findings.append(Finding(
                path, lineno, "rng-ownership",
                "C rand()/srand() — globally seeded, not per-instance; use "
                "a des::RandomStream",
                line))


WALL_CLOCK_RE = re.compile(
    r"\b(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now\b|"
    r"\b(?:gettimeofday|clock_gettime|timespec_get|localtime|gmtime|mktime|"
    r"ftime)\s*\(|"
    r"(?<![\w.:>])time\s*\(\s*(?:NULL|nullptr|0|&)|"
    r"(?<![\w.:>])clock\s*\(\s*\)")


def scan_wall_clock(path, lines, findings):
    for lineno, line in enumerate(lines, start=1):
        match = WALL_CLOCK_RE.search(line)
        if match:
            findings.append(Finding(
                path, lineno, "wall-clock",
                "host clock read — simulation code keeps time with "
                "des::Simulator::now() only",
                line))


UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*&?\s*"
    r"([A-Za-z_]\w*)\s*(?:;|=|\{)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;)]*?:\s*([^)]+)\)")
BEGIN_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*c?begin\s*\(")


def unordered_names(lines):
    names = set()
    for line in lines:
        for match in UNORDERED_DECL_RE.finditer(line):
            names.add(match.group(1))
    return names


def scan_unordered_iteration(path, lines, names, findings):
    if not names:
        return
    name_re = re.compile(r"\b(" + "|".join(re.escape(n) for n in sorted(names)) +
                         r")\b")
    for lineno, line in enumerate(lines, start=1):
        range_match = RANGE_FOR_RE.search(line)
        if range_match and name_re.search(range_match.group(1)):
            findings.append(Finding(
                path, lineno, "unordered-artifact-iteration",
                f"iteration over unordered container "
                f"`{name_re.search(range_match.group(1)).group(1)}` on an "
                "artifact path — extract keys and sort, or use std::map",
                line))
            continue
        begin_match = BEGIN_CALL_RE.search(line)
        if begin_match and begin_match.group(1) in names:
            findings.append(Finding(
                path, lineno, "unordered-artifact-iteration",
                f"`{begin_match.group(1)}.begin()` walks hash order on an "
                "artifact path — extract keys and sort, or use std::map",
                line))


STD_FUNCTION_RE = re.compile(r"\bstd\s*::\s*function\s*<")
FUNCTIONAL_INCLUDE_RE = re.compile(r'#\s*include\s*<functional>')


def scan_hot_path(path, lines, findings):
    for lineno, line in enumerate(lines, start=1):
        if STD_FUNCTION_RE.search(line):
            findings.append(Finding(
                path, lineno, "hot-path-std-function",
                "std::function in a hot-path file — use des::Action "
                "(inline storage, no type-erased allocation)",
                line))
        elif FUNCTIONAL_INCLUDE_RE.search(line):
            findings.append(Finding(
                path, lineno, "hot-path-std-function",
                "<functional> included in a hot-path file — the hot path "
                "must not depend on std::function",
                line))


# --- suppression handling ---------------------------------------------------

class Suppression:
    def __init__(self, path, line, rule, reason):
        self.path = path
        self.line = line
        self.rule = rule
        self.reason = reason
        self.used = False


def collect_suppressions(path, raw_lines, findings):
    suppressions = []
    if path in ANNOTATION_FILES:
        return suppressions  # the macro's own definition and docs
    for lineno, line in enumerate(raw_lines, start=1):
        for match in ALLOW_RE.finditer(line):
            token, reason = match.group(1), match.group(2)
            rule = ALLOW_TOKEN.get(token)
            if rule is None:
                findings.append(Finding(
                    path, lineno, "global-state",
                    f"ANYQOS_DETLINT_ALLOW names unknown rule `{token}` "
                    f"(known: {', '.join(sorted(ALLOW_TOKEN))})",
                    line))
                continue
            if not reason.strip():
                findings.append(Finding(
                    path, lineno, rule,
                    "ANYQOS_DETLINT_ALLOW with an empty reason — every "
                    "suppression must say why",
                    line))
                continue
            suppressions.append(Suppression(path, lineno, rule, reason))
        if "ANYQOS_DETLINT_ALLOW" in line and not ALLOW_RE.search(line) \
                and "define" not in line and "#" not in line.split("//")[0]:
            # Malformed macro use (e.g. non-literal reason) — surface it.
            if not line.strip().startswith("r\""):
                findings.append(Finding(
                    path, lineno, "global-state",
                    "unparseable ANYQOS_DETLINT_ALLOW — rule token and a "
                    "string-literal reason are required",
                    line))
    return suppressions


def apply_suppressions(findings, suppressions):
    by_site = {}
    for sup in suppressions:
        by_site.setdefault((sup.path, sup.rule), []).append(sup)
    for finding in findings:
        candidates = by_site.get((finding.path, finding.rule), [])
        for sup in candidates:
            # An ALLOW covers its own line and the next code line after it
            # (annotation-above-statement is the house style; a multi-line
            # statement keeps the finding within two lines in practice).
            if sup.line == finding.line or 0 < finding.line - sup.line <= 2:
                finding.suppressed = True
                finding.reason = sup.reason
                sup.used = True
                break
    unused = []
    for sup in suppressions:
        if not sup.used:
            unused.append(Finding(
                sup.path, sup.line, sup.rule,
                f"unused ANYQOS_DETLINT_ALLOW({sup.rule.replace('-', '_')}) — "
                "the finding it covered is gone; delete the suppression",
                ""))
    return unused


# --- driver -----------------------------------------------------------------

def discover_sources(root):
    sources = []
    src_root = os.path.join(root, "src")
    for dirpath, _, filenames in os.walk(src_root):
        for name in sorted(filenames):
            if name.endswith(SOURCE_EXTENSIONS):
                full = os.path.join(dirpath, name)
                sources.append(os.path.relpath(full, root))
    return sorted(sources)


def load_compile_commands(path, root):
    try:
        with open(path) as f:
            entries = json.load(f)
    except (OSError, ValueError) as error:
        raise SystemExit(f"detlint: cannot read compile commands {path}: {error}")
    compiled = set()
    for entry in entries:
        file_path = entry.get("file", "")
        if not os.path.isabs(file_path):
            file_path = os.path.join(entry.get("directory", ""), file_path)
        file_path = os.path.normpath(file_path)
        try:
            rel = os.path.relpath(file_path, root)
        except ValueError:
            continue
        if not rel.startswith(".."):
            compiled.add(rel)
    return compiled


def find_default_compile_commands(root):
    candidates = [os.path.join(root, "build", "compile_commands.json")]
    build_dir = os.path.join(root, "build")
    if os.path.isdir(build_dir):
        for name in sorted(os.listdir(build_dir)):
            candidates.append(os.path.join(build_dir, name, "compile_commands.json"))
    for candidate in candidates:
        if os.path.isfile(candidate):
            return candidate
    return None


def paired_header_lines(root, path):
    """For foo.cpp, the masked lines of foo.h (member declarations live
    there); empty when there is no paired header."""
    base, ext = os.path.splitext(path)
    if ext not in (".cpp", ".cc", ".cxx"):
        return []
    for header_ext in (".h", ".hpp"):
        header = base + header_ext
        if os.path.isfile(os.path.join(root, header)):
            with open(os.path.join(root, header), encoding="utf-8") as f:
                return mask_comments_and_strings(f.read()).splitlines()
    return []


def analyze_file(root, path, raw_text):
    findings = []
    raw_lines = raw_text.splitlines()
    masked_lines = mask_comments_and_strings(raw_text).splitlines()

    markers = set()
    for line in raw_lines[:5]:
        marker = re.match(r"\s*//\s*detlint:\s*([a-z-]+)", line)
        if marker:
            markers.add(marker.group(1))

    scan_global_state(path, masked_lines, findings)
    scan_rng_ownership(path, masked_lines, findings)
    scan_wall_clock(path, masked_lines, findings)

    if matches_any(path, ARTIFACT_GLOBS) or "artifact-path" in markers:
        names = unordered_names(masked_lines)
        names |= unordered_names(paired_header_lines(root, path))
        scan_unordered_iteration(path, masked_lines, names, findings)

    if matches_any(path, HOT_PATH_GLOBS) or "hot-path" in markers:
        scan_hot_path(path, masked_lines, findings)

    suppressions = collect_suppressions(path, raw_lines, findings)
    findings.extend(apply_suppressions(findings, suppressions))
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="detlint", description="determinism & hot-path lint for src/")
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels above this script)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json to cross-check coverage "
                             "(default: auto-detect under build/)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--output", default=None,
                        help="write the report here as well as stdout")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in RULES.items():
            print(f"{rule}: {description}")
        return 0

    root = args.root or os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"detlint: no src/ under root {root}", file=sys.stderr)
        return 2

    compile_db = args.compile_commands or find_default_compile_commands(root)
    compiled = load_compile_commands(compile_db, root) if compile_db else None

    sources = discover_sources(root)
    all_findings = []
    for path in sources:
        with open(os.path.join(root, path), encoding="utf-8") as f:
            raw_text = f.read()
        all_findings.extend(analyze_file(root, path, raw_text))

    uncompiled = []
    if compiled is not None:
        uncompiled = [p for p in sources
                      if p.endswith((".cpp", ".cc", ".cxx")) and p not in compiled]

    unsuppressed = [f for f in all_findings if not f.suppressed]
    suppressed = [f for f in all_findings if f.suppressed]

    report = {
        "version": 1,
        "root": os.path.abspath(root),
        "files_scanned": len(sources),
        "compile_commands": compile_db,
        "findings": [f.as_dict() for f in all_findings],
        "summary": {
            "unsuppressed": len(unsuppressed),
            "suppressed": len(suppressed),
            "by_rule": {
                rule: sum(1 for f in unsuppressed if f.rule == rule)
                for rule in RULES
            },
            "uncompiled_sources": uncompiled,
        },
    }

    if args.format == "json":
        text = json.dumps(report, indent=2)
        print(text)
    else:
        lines = []
        for finding in all_findings:
            status = f" [suppressed: {finding.reason}]" if finding.suppressed else ""
            lines.append(f"{finding.path}:{finding.line}: [{finding.rule}] "
                         f"{finding.message}{status}")
        lines.append(f"detlint: {len(sources)} files, "
                     f"{len(unsuppressed)} unsuppressed finding(s), "
                     f"{len(suppressed)} suppressed")
        if uncompiled:
            lines.append("detlint: note: sources absent from the compile "
                         "database: " + ", ".join(uncompiled))
        text = "\n".join(lines)
        print(text)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(json.dumps(report, indent=2) if args.format == "json" else text)
            f.write("\n")

    return 1 if unsuppressed else 0


if __name__ == "__main__":
    sys.exit(main())
