#!/usr/bin/env python3
"""flowlens: cross-artifact forensics for anyqos simulation runs.

Joins any subset of the run artifacts --

  --trace     flow trace CSV            (sim::FlowTracer)
  --spans     decision/attempt JSONL    (obs::DecisionTracer)
  --timeline  timeline JSONL            (obs::Timeline)
  --ops       ops directive log JSONL   (control::DirectiveLog)
  --kernel    kernel stats JSONL        (obs::KernelStats)

-- reconstructs per-flow causal chains (request -> attempts -> admit /
reject / shed -> failover / repair -> teardown) and hard-fails on
cross-artifact inconsistencies: a span whose flow never appears in the
trace, a shed flow that entered the offered stream anyway, a repaired
flow that was also counted dropped, a kernel fired-count that disagrees
with the engine's dispatched-event count, and a dozen structural checks
on each artifact in isolation.

Exit codes: 0 = consistent, 1 = at least one inconsistency, 2 = unusable
input (missing file, malformed row, or no artifacts given).

Stdlib only, deterministic output: suitable as a CI gate and for golden
fixture tests (see tests/tools/flowlens/).
"""

import argparse
import csv
import json
import sys

TRACE_HEADER = [
    "time", "kind", "flow", "source", "destination",
    "attempts", "bandwidth_bps", "active",
]

# Per-flow lifecycle kinds. Everything else in the trace (LINK_*, MEMBER_*,
# NODE_*, RECONVERGED) is topology-plane and carries no flow id. A FAILOVER
# is an entry: member churn drops the original flow and re-homes it under a
# fresh request id, so the re-homed flow's chain starts at FAILOVER. A
# REPAIRED flow keeps its id, so REPAIRED continues an existing chain.
TERMINAL_KINDS = {"DEPARTED", "DROPPED", "REPAIR_FAILED"}
CONTINUATION_KINDS = {"REPAIRED"}
ENTRY_KINDS = {"ADMITTED", "REJECTED", "SHED", "FAILOVER"}
LIFECYCLE_KINDS = ENTRY_KINDS | CONTINUATION_KINDS | TERMINAL_KINDS

KERNEL_SCHEMA = "anyqos-kernel-stats/1"


class InputError(Exception):
    """Unusable artifact: missing, truncated, or malformed."""


class Report:
    def __init__(self):
        self.violations = []

    def fail(self, check, message):
        self.violations.append("[%s] %s" % (check, message))


# ---------------------------------------------------------------------------
# parsers


def load_trace(path):
    """Returns (events, chains). events is the row list; chains maps
    flow id -> ordered list of lifecycle rows for that flow."""
    events = []
    chains = {}
    try:
        handle = open(path, newline="")
    except OSError as err:
        raise InputError("trace: %s" % err)
    with handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != TRACE_HEADER:
            raise InputError("trace: unexpected header %r" % (header,))
        for lineno, row in enumerate(reader, start=2):
            if len(row) != len(TRACE_HEADER):
                raise InputError("trace line %d: %d columns" % (lineno, len(row)))
            try:
                event = {
                    "line": lineno,
                    "time": float(row[0]),
                    "kind": row[1],
                    "flow": None if row[2] == "-" else int(row[2]),
                    "active": int(row[7]),
                }
            except ValueError as err:
                raise InputError("trace line %d: %s" % (lineno, err))
            events.append(event)
            if event["flow"] is not None and event["kind"] in LIFECYCLE_KINDS:
                chains.setdefault(event["flow"], []).append(event)
    return events, chains


def load_jsonl(path, label):
    rows = []
    try:
        handle = open(path)
    except OSError as err:
        raise InputError("%s: %s" % (label, err))
    with handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append((lineno, json.loads(line)))
            except ValueError as err:
                raise InputError("%s line %d: %s" % (label, lineno, err))
    return rows


# ---------------------------------------------------------------------------
# single-artifact checks


def check_trace(events, chains, report):
    last_time = None
    for event in events:
        if last_time is not None and event["time"] < last_time:
            report.fail("trace-order",
                        "line %d: time %g before %g" %
                        (event["line"], event["time"], last_time))
        last_time = event["time"]
    for flow, chain in sorted(chains.items()):
        kinds = [e["kind"] for e in chain]
        first = kinds[0]
        if first not in ENTRY_KINDS:
            report.fail("chain-entry",
                        "flow %d: first lifecycle event is %s, not an entry "
                        "(line %d)" % (flow, first, chain[0]["line"]))
            continue
        if first in ("REJECTED", "SHED"):
            if len(kinds) > 1:
                report.fail("chain-%s" % first.lower(),
                            "flow %d: %s flow has %d further events "
                            "(first extra: %s at line %d)" %
                            (flow, first, len(kinds) - 1, kinds[1],
                             chain[1]["line"]))
            continue
        # Admitted-like flow: (ADMITTED|FAILOVER) REPAIRED* terminal?
        terminal_at = None
        for index, event in enumerate(chain[1:], start=1):
            kind = event["kind"]
            if terminal_at is not None:
                report.fail("chain-after-terminal",
                            "flow %d: %s at line %d follows terminal %s — "
                            "flow both %s and %s" %
                            (flow, kind, event["line"],
                             chain[terminal_at]["kind"], kind.lower(),
                             chain[terminal_at]["kind"].lower()))
                break
            if kind in TERMINAL_KINDS:
                terminal_at = index
            elif kind not in CONTINUATION_KINDS:
                report.fail("chain-kind",
                            "flow %d: unexpected %s at line %d after entry %s" %
                            (flow, kind, event["line"], first))


def check_spans(spans, report):
    """Returns (decisions, attempts) keyed by request id."""
    decisions = {}
    attempts = {}
    for lineno, row in spans:
        span = row.get("span")
        if span == "decision":
            required = ("request", "time", "admitted", "attempts")
        elif span == "attempt":
            required = ("request", "time", "admitted", "attempt")
        else:
            report.fail("span-kind", "line %d: unknown span %r" % (lineno, span))
            continue
        missing = [key for key in required if key not in row]
        if missing:
            report.fail("span-fields",
                        "line %d: %s span missing %s" %
                        (lineno, span, ",".join(missing)))
            continue
        target = decisions if span == "decision" else attempts
        target.setdefault(row["request"], []).append((lineno, row))
    for request, rows in sorted(attempts.items()):
        if request not in decisions:
            report.fail("attempt-orphan",
                        "request %d: %d attempt span(s) but no decision span "
                        "(first at line %d)" % (request, len(rows), rows[0][0]))
    for request, rows in sorted(decisions.items()):
        claimed = sum(row["attempts"] for _, row in rows)
        traced = len(attempts.get(request, []))
        if traced != claimed:
            report.fail("attempt-count",
                        "request %d: decision spans claim %d attempt(s) but "
                        "%d attempt span(s) recorded" %
                        (request, claimed, traced))
    return decisions, attempts


def check_timeline(rows, report):
    if not rows:
        raise InputError("timeline: empty file")
    lineno, header = rows[0]
    if header.get("timeline") != "header" or "columns" not in header:
        raise InputError("timeline line %d: expected header row" % lineno)
    width = len(header["columns"])
    last_t = None
    seen_measurement = False
    for lineno, row in rows[1:]:
        if row.get("timeline") != "sample":
            report.fail("timeline-kind",
                        "line %d: expected sample row, got %r" %
                        (lineno, row.get("timeline")))
            continue
        values = row.get("values", [])
        if len(values) != width:
            report.fail("timeline-width",
                        "line %d: %d values for %d columns" %
                        (lineno, len(values), width))
        t = row.get("t")
        if last_t is not None and not (isinstance(t, (int, float)) and t > last_t):
            report.fail("timeline-order",
                        "line %d: t=%r not after %r" % (lineno, t, last_t))
        if isinstance(t, (int, float)):
            last_t = t
        warmup = row.get("warmup", False)
        if seen_measurement and warmup:
            report.fail("timeline-warmup",
                        "line %d: warmup sample after measurement began" % lineno)
        seen_measurement = seen_measurement or not warmup
    return header


def check_ops(rows, report):
    last_t = None
    for lineno, row in rows:
        if "ops" not in row or "t" not in row:
            report.fail("ops-fields", "line %d: missing ops/t fields" % lineno)
            continue
        t = row["t"]
        if last_t is not None and t < last_t:
            report.fail("ops-order",
                        "line %d: t=%g before %g" % (lineno, t, last_t))
        last_t = t


def hist_consistent(hist, where, report):
    counts = hist.get("counts", [])
    bounds = hist.get("bounds", [])
    if len(counts) != len(bounds) + 1:
        report.fail("kernel-hist",
                    "%s: %d buckets for %d bounds" %
                    (where, len(counts), len(bounds)))
        return
    if sum(counts) != hist.get("count"):
        report.fail("kernel-hist",
                    "%s: bucket sum %d != count %s" %
                    (where, sum(counts), hist.get("count")))


def check_kernel(rows, report):
    """Returns the summary row (or None)."""
    if not rows:
        raise InputError("kernel: empty file")
    lineno, header = rows[0]
    if header.get("kernel") != "header" or header.get("schema") != KERNEL_SCHEMA:
        raise InputError("kernel line %d: expected %s header" %
                         (lineno, KERNEL_SCHEMA))
    categories = []
    summary = None
    for lineno, row in rows[1:]:
        kind = row.get("kernel")
        if kind == "category":
            categories.append((lineno, row))
        elif kind == "summary":
            summary = (lineno, row)
        else:
            report.fail("kernel-kind",
                        "line %d: unknown row kind %r" % (lineno, kind))
    if len(categories) != header.get("categories"):
        report.fail("kernel-categories",
                    "header promises %s categories, found %d" %
                    (header.get("categories"), len(categories)))
    totals = {"scheduled": 0, "fired": 0, "cancelled": 0, "pending": 0}
    for lineno, row in categories:
        name = row.get("name", "?")
        if row["scheduled"] != row["fired"] + row["cancelled"] + row["pending"]:
            report.fail("kernel-reconcile",
                        "category %s: scheduled %d != fired %d + cancelled %d "
                        "+ pending %d" %
                        (name, row["scheduled"], row["fired"],
                         row["cancelled"], row["pending"]))
        for key in totals:
            totals[key] += row[key]
        hist_consistent(row.get("horizon", {}), "category %s horizon" % name,
                        report)
        hist_consistent(row.get("wait", {}), "category %s wait" % name, report)
    if summary is None:
        report.fail("kernel-summary", "no summary row")
        return None
    _, srow = summary
    for key, value in totals.items():
        if srow.get(key) != value:
            report.fail("kernel-summary",
                        "summary %s %s != per-category sum %d" %
                        (key, srow.get(key), value))
    if srow.get("fired") != srow.get("dispatched"):
        report.fail("kernel-dispatch",
                    "kernel fired-count %s != engine dispatched-event count %s" %
                    (srow.get("fired"), srow.get("dispatched")))
    hist_consistent(srow.get("burst", {}), "summary burst", report)
    return srow


# ---------------------------------------------------------------------------
# cross-artifact checks


def check_trace_vs_spans(events, chains, decisions, attempts, report):
    # Failed failover re-admissions mint a request id that emits rejected
    # spans but never enters the trace (the original flow is what gets the
    # DROPPED row). They are recognizable: every span is rejected and sits
    # exactly at a fault instant. Times join on the trace's %g rendering.
    fault_instants = {"%g" % e["time"] for e in events
                      if e["kind"] in ("MEMBER_DOWN", "NODE_DOWN", "LINK_DOWN")}

    def failover_rejection(request):
        rows = decisions.get(request, [])
        if not rows or any(row["admitted"] for _, row in rows):
            return False
        return all("%g" % row["time"] in fault_instants
                   for _, row in rows + attempts.get(request, []))

    span_requests = sorted(set(decisions) | set(attempts))
    for request in span_requests:
        if request not in chains and not failover_rejection(request):
            report.fail("span-unmatched",
                        "request %d has signaling spans but never appears in "
                        "the trace" % request)
    for request, rows in sorted(decisions.items()):
        chain = chains.get(request)
        if chain is None:
            continue  # already reported by span-unmatched
        kinds = {e["kind"] for e in chain}
        for lineno, row in rows:
            if row["admitted"] and not (kinds & {"ADMITTED", "FAILOVER",
                                                 "REPAIRED"}):
                report.fail("decision-admit",
                            "request %d: admitted decision span (line %d) but "
                            "trace records no admission-class event (%s)" %
                            (request, lineno, ",".join(sorted(kinds))))
            elif not row["admitted"] and row.get("algorithm") == "shed":
                if "SHED" not in kinds:
                    report.fail("shed-mismatch",
                                "request %d: shed decision span (line %d) but "
                                "trace records %s, not SHED" %
                                (request, lineno, ",".join(sorted(kinds))))
            elif not row["admitted"] and not (kinds & {"REJECTED", "DROPPED",
                                                       "REPAIR_FAILED"}):
                report.fail("decision-reject",
                            "request %d: rejected decision span (line %d) but "
                            "trace records no rejection-class event (%s)" %
                            (request, lineno, ",".join(sorted(kinds))))
    for flow, chain in sorted(chains.items()):
        kinds = [e["kind"] for e in chain]
        if kinds[0] == "SHED":
            # A shed request is rejected before the signaling walk: its only
            # legitimate span is the zero-attempt shed marker.
            if flow in attempts:
                report.fail("shed-offered",
                            "flow %d was SHED before admission but has %d "
                            "attempt span(s) — shed flow entered the offered "
                            "stream" % (flow, len(attempts[flow])))
            for lineno, row in decisions.get(flow, []):
                if (row.get("algorithm") != "shed" or row["admitted"]
                        or row["attempts"] != 0):
                    report.fail("shed-offered",
                                "flow %d was SHED but its decision span (line "
                                "%d) is not a zero-attempt shed marker" %
                                (flow, lineno))
        if flow not in decisions:
            report.fail("trace-unmatched",
                        "flow %d: trace records %s but no decision span" %
                        (flow, kinds[0]))


def summarize(chains, decisions, attempts, events, kernel_summary, out):
    def histogram(kinds):
        table = {}
        for kind in kinds:
            table[kind] = table.get(kind, 0) + 1
        return table

    out.write("flowlens: %d flow(s), %d decision span request(s), "
              "%d trace event(s)\n" %
              (len(chains), len(decisions), len(events)))
    outcomes = {}
    open_flows = 0
    for chain in chains.values():
        kinds = [e["kind"] for e in chain]
        if kinds[0] in ("REJECTED", "SHED"):
            outcomes[kinds[0]] = outcomes.get(kinds[0], 0) + 1
        elif kinds[-1] in TERMINAL_KINDS:
            outcomes[kinds[-1]] = outcomes.get(kinds[-1], 0) + 1
        else:
            open_flows += 1
    for kind in sorted(outcomes):
        out.write("  outcome %-13s %d\n" % (kind, outcomes[kind]))
    if open_flows:
        out.write("  outcome %-13s %d\n" % ("(open at end)", open_flows))
    classes = histogram(e["kind"] for e in events)
    for kind in sorted(classes):
        out.write("  event   %-13s %d\n" % (kind, classes[kind]))
    repairs = sum(1 for c in chains.values()
                  for e in c if e["kind"] == "REPAIRED")
    failovers = sum(1 for c in chains.values()
                    for e in c if e["kind"] == "FAILOVER")
    if repairs or failovers:
        out.write("  continuations: %d failover(s), %d repair(s)\n" %
                  (failovers, repairs))
    if kernel_summary is not None:
        out.write("  kernel: %d scheduled, %d fired, %d cancelled, "
                  "%d pending, hwm %d\n" %
                  (kernel_summary.get("scheduled", 0),
                   kernel_summary.get("fired", 0),
                   kernel_summary.get("cancelled", 0),
                   kernel_summary.get("pending", 0),
                   kernel_summary.get("queue_depth_hwm", 0)))


def print_chains(chains, attempts, count, out):
    for flow in sorted(chains)[:count]:
        chain = chains[flow]
        steps = ["%s@%g" % (e["kind"], e["time"]) for e in chain]
        tries = len(attempts.get(flow, []))
        prefix = "%d attempt(s) -> " % tries if tries else ""
        out.write("  flow %-6d %s%s\n" % (flow, prefix, " -> ".join(steps)))


def main(argv):
    parser = argparse.ArgumentParser(
        prog="flowlens", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--trace", help="flow trace CSV")
    parser.add_argument("--spans", help="decision/attempt span JSONL")
    parser.add_argument("--timeline", help="timeline JSONL")
    parser.add_argument("--ops", help="ops directive log JSONL")
    parser.add_argument("--kernel", help="kernel stats JSONL")
    parser.add_argument("--chains", type=int, default=0, metavar="N",
                        help="print the first N reconstructed flow chains")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary; print violations only")
    args = parser.parse_args(argv)

    if not any((args.trace, args.spans, args.timeline, args.ops, args.kernel)):
        print("flowlens: no artifacts given (need at least one of --trace, "
              "--spans, --timeline, --ops, --kernel)", file=sys.stderr)
        return 2

    report = Report()
    events, chains = [], {}
    decisions, attempts = {}, {}
    kernel_summary = None
    try:
        if args.trace:
            events, chains = load_trace(args.trace)
            check_trace(events, chains, report)
        if args.spans:
            decisions, attempts = check_spans(
                load_jsonl(args.spans, "spans"), report)
        if args.timeline:
            check_timeline(load_jsonl(args.timeline, "timeline"), report)
        if args.ops:
            check_ops(load_jsonl(args.ops, "ops"), report)
        if args.kernel:
            kernel_summary = check_kernel(
                load_jsonl(args.kernel, "kernel"), report)
    except InputError as err:
        print("flowlens: %s" % err, file=sys.stderr)
        return 2

    if args.trace and args.spans:
        check_trace_vs_spans(events, chains, decisions, attempts, report)

    if not args.quiet:
        summarize(chains, decisions, attempts, events, kernel_summary,
                  sys.stdout)
        if args.chains:
            print_chains(chains, attempts, args.chains, sys.stdout)

    for violation in report.violations:
        print("flowlens: FAIL %s" % violation, file=sys.stderr)
    if report.violations:
        print("flowlens: %d inconsistency(ies)" % len(report.violations),
              file=sys.stderr)
        return 1
    if not args.quiet:
        print("flowlens: consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
