// chaosfuzz: deterministic fault-schedule fuzzing with delta-debug
// shrinking over the scenario plane (sim/scenario.h).
//
// The loop is classic search-then-shrink. A seeded generator mutates a base
// Scenario along every fault axis (add/remove/shift/widen entries, overlap
// outages, crank load and loss, inject regional outages); each candidate
// runs through the full oracle stack (audit::run_chaos_oracle). On the
// first violation, a ddmin-style shrinker minimizes the scenario — dropping
// entries, halving windows, lowering rates — while preserving the exact
// violation class, and the minimal scenario is the committed repro.
//
// Everything is deterministic: the fuzz RNG is seeded, every candidate run
// is a seeded simulation, and a written repro replays to the same verdict
// byte-for-byte. No wall clocks, no global state (DESIGN.md §12).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/audit/chaos_oracle.h"
#include "src/des/random.h"
#include "src/net/topology.h"
#include "src/sim/scenario.h"

namespace anyqos::chaosfuzz {

struct FuzzOptions {
  std::uint64_t seed = 1;                 ///< fuzz RNG seed (mutation choices)
  std::size_t iterations = 50;            ///< candidates to generate and run
  std::size_t mutations_per_candidate = 4;
  std::size_t shrink_budget = 150;        ///< max oracle runs while shrinking
  audit::ChaosOracleOptions oracle;       ///< shared gate configuration
};

/// The built-in fuzz base: MCI backbone, five-member group, resilient
/// signaling with mild loss, flooding reconvergence + path repair, a
/// governor with breakers, zero warmup (exact reconciliation), drain with
/// watchdog caps, and a handful of explicit fault entries on every axis so
/// entry-level mutations always have material to work with.
sim::Scenario default_base_scenario();

/// Applies `count` seeded mutations to `scenario` in place. All mutations
/// produce valid scenarios (entries reference real links/members/routers,
/// windows stay ordered). `topology` must be the scenario's own topology.
void mutate(sim::Scenario& scenario, const net::Topology& topology, des::RandomStream& rng,
            std::size_t count);

/// Outcome of one shrink campaign.
struct ShrinkResult {
  sim::Scenario scenario;              ///< the minimized failing scenario
  audit::ChaosOracleOutcome outcome;   ///< its (class-preserving) verdict
  std::size_t oracle_runs = 0;         ///< budget actually spent
  std::size_t initial_entries = 0;     ///< fault entries before shrinking
  std::size_t final_entries = 0;       ///< fault entries after shrinking
};

/// Minimizes `failing` while preserving `violation_class` exactly:
/// ddmin over the concatenated entry list (link faults, churn, node
/// faults, regional outages, ops), then per-entry window halving, then
/// scalar reductions (measure window, lambda, loss). Every candidate is
/// judged by run_chaos_oracle with `oracle`; at most `budget` runs are
/// spent. The input scenario's random axes are materialized first so every
/// fault is individually droppable.
ShrinkResult shrink(const sim::Scenario& failing, const std::string& violation_class,
                    const audit::ChaosOracleOptions& oracle, std::size_t budget);

/// One full fuzz campaign.
struct FuzzReport {
  bool found = false;
  std::size_t iterations_run = 0;      ///< candidates generated
  std::size_t oracle_runs = 0;         ///< total runs including shrinking
  sim::Scenario failing;               ///< first failing candidate (if found)
  audit::ChaosOracleOutcome outcome;   ///< its verdict (if found)
  ShrinkResult shrunk;                 ///< minimized repro (if found)
};

/// Runs the search-then-shrink loop: mutate the base, run the oracle, stop
/// at the first violation and shrink it. `log` (optional) receives one
/// progress line per candidate.
FuzzReport fuzz(const sim::Scenario& base, const FuzzOptions& options,
                std::ostream* log = nullptr);

}  // namespace anyqos::chaosfuzz
