// chaosfuzz: fuzz the fault-schedule plane, shrink what breaks, commit the
// repro.
//
//   # fuzz from the built-in base, write repro artifacts on failure
//   $ ./chaosfuzz --iterations=50 --seed=7 --out-prefix=/tmp/cf
//
//   # replay a (possibly shrunk) repro deterministically
//   $ ./chaosfuzz --replay=/tmp/cf-repro.json
//
//   # save the built-in base scenario for hand editing / linting
//   $ ./chaosfuzz --save-default=base.json
//
// Exit codes: 0 = clean (nothing found / replay clean), 1 = violation found
// (repro written) or replay reproduced a violation, 2 = usage error.
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/audit/chaos_oracle.h"
#include "src/sim/scenario.h"
#include "src/sim/trace.h"
#include "src/util/cli.h"
#include "tools/chaosfuzz/fuzzer.h"

namespace {

using anyqos::audit::ChaosOracleOptions;
using anyqos::audit::ChaosOracleOutcome;
using anyqos::audit::run_chaos_oracle;
using anyqos::sim::load_scenario;
using anyqos::sim::save_scenario;
using anyqos::sim::Scenario;

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::invalid_argument("cannot open for writing: " + path);
  }
  out << contents;
}

Scenario read_scenario(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::invalid_argument("cannot open scenario file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_scenario(buffer.str());
}

/// Writes the repro triple: scenario JSON, flight-recorder JSONL, flow trace
/// CSV. The scenario alone replays the failure; the other two are the
/// forensics that shipped with the failing run.
void write_artifacts(const std::string& prefix, const Scenario& scenario,
                     const ChaosOracleOutcome& outcome, const std::string& trace_csv) {
  write_file(prefix + "-repro.json", save_scenario(scenario));
  std::cout << "wrote " << prefix << "-repro.json\n";
  if (!outcome.flight_dump.empty()) {
    write_file(prefix + "-flight.jsonl", outcome.flight_dump);
    std::cout << "wrote " << prefix << "-flight.jsonl\n";
  }
  if (!trace_csv.empty()) {
    write_file(prefix + "-trace.csv", trace_csv);
    std::cout << "wrote " << prefix << "-trace.csv\n";
  }
}

void print_outcome(const ChaosOracleOutcome& outcome) {
  if (outcome.clean()) {
    std::cout << "verdict: clean\n";
    return;
  }
  std::cout << "verdict: " << outcome.violation_class << "\n";
  if (!outcome.detail.empty()) {
    std::cout << "detail: " << outcome.detail << "\n";
  }
  if (!outcome.audit_log.empty()) {
    std::cout << outcome.audit_log;
  }
}

int run(int argc, const char* const* argv) {
  anyqos::util::CliFlags flags(
      "chaosfuzz",
      "Deterministic fault-schedule fuzzing with delta-debug shrinking. "
      "Mutates a base scenario along every fault axis, runs each candidate "
      "through the full oracle stack (auditor, watchdog, leak/reconciliation/"
      "breaker gates), and shrinks the first failure to a minimal replayable "
      "repro.");
  flags.add_string("base", "", "base scenario file (empty = built-in base)");
  flags.add_string("save-default", "", "write the built-in base scenario here and exit");
  flags.add_string("replay", "", "run one scenario file through the oracle and exit");
  flags.add_unsigned("iterations", 50, "candidates to generate");
  flags.add_unsigned("mutations", 4, "mutations per candidate");
  flags.add_unsigned("seed", 1, "fuzz RNG seed (mutation choices)");
  flags.add_unsigned("shrink-budget", 150, "max oracle runs while shrinking");
  flags.add_string("out-prefix", "chaosfuzz", "artifact path prefix for failures");
  flags.add_bool("defeat-duplex-idempotency", false,
                 "TEST ONLY: disable the duplex-outage idempotency guard (planted bug)");
  flags.add_bool("quiet", false, "suppress per-iteration progress lines");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }

  if (!flags.get_string("save-default").empty()) {
    write_file(flags.get_string("save-default"),
               save_scenario(anyqos::chaosfuzz::default_base_scenario()));
    std::cout << "wrote " << flags.get_string("save-default") << "\n";
    return 0;
  }

  ChaosOracleOptions oracle;
  oracle.defeat_duplex_idempotency = flags.get_bool("defeat-duplex-idempotency");

  if (!flags.get_string("replay").empty()) {
    const Scenario scenario = read_scenario(flags.get_string("replay"));
    std::ostringstream trace_csv;
    anyqos::sim::CsvTraceSink trace(trace_csv);
    oracle.trace = &trace;
    const ChaosOracleOutcome outcome = run_chaos_oracle(scenario, oracle);
    print_outcome(outcome);
    if (!outcome.clean() && !outcome.flight_dump.empty()) {
      write_file(flags.get_string("out-prefix") + "-flight.jsonl", outcome.flight_dump);
      std::cout << "wrote " << flags.get_string("out-prefix") << "-flight.jsonl\n";
    }
    return outcome.clean() ? 0 : 1;
  }

  const Scenario base = flags.get_string("base").empty()
                            ? anyqos::chaosfuzz::default_base_scenario()
                            : read_scenario(flags.get_string("base"));
  anyqos::chaosfuzz::FuzzOptions options;
  options.seed = flags.get_unsigned("seed");
  options.iterations = flags.get_unsigned("iterations");
  options.mutations_per_candidate = flags.get_unsigned("mutations");
  options.shrink_budget = flags.get_unsigned("shrink-budget");
  options.oracle = oracle;

  std::ostream* log = flags.get_bool("quiet") ? nullptr : &std::cout;
  const anyqos::chaosfuzz::FuzzReport report = anyqos::chaosfuzz::fuzz(base, options, log);
  std::cout << "[chaosfuzz] " << report.iterations_run << " candidates, "
            << report.oracle_runs << " oracle runs\n";
  if (!report.found) {
    std::cout << "verdict: clean\n";
    return 0;
  }

  // Re-run the shrunk repro once with a trace sink armed so the committed
  // artifacts describe the minimal scenario, not the original candidate.
  std::ostringstream trace_csv;
  anyqos::sim::CsvTraceSink trace(trace_csv);
  ChaosOracleOptions forensic = oracle;
  forensic.trace = &trace;
  const ChaosOracleOutcome final_outcome =
      run_chaos_oracle(report.shrunk.scenario, forensic);
  print_outcome(final_outcome);
  write_artifacts(flags.get_string("out-prefix"), report.shrunk.scenario, final_outcome,
                  trace_csv.str());
  std::cout << "[chaosfuzz] shrunk " << report.shrunk.initial_entries << " -> "
            << report.shrunk.final_entries << " fault entries\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "chaosfuzz: " << error.what() << "\n";
    return 2;
  }
}
