// The fuzzing engine's own contract: a clean base, deterministic valid
// mutations, and a shrinker that preserves the violation class (the
// property test the issue's satellite asks for). The end-to-end planted-bug
// gate (find -> shrink -> replay twice) lives in
// tests/tools/chaosfuzz_planted_bug.py on the built CLI.
#include "tools/chaosfuzz/fuzzer.h"

#include <gtest/gtest.h>

#include <string>

#include "src/audit/chaos_oracle.h"
#include "src/sim/faults.h"
#include "src/sim/scenario.h"

namespace anyqos::chaosfuzz {
namespace {

/// The planted-bug class (see SimulationConfig::defeat_duplex_idempotency).
constexpr const char* kPlantedClass = "exception:link is already failed";

/// A fast base for engine tests: the built-in base with a shorter window.
sim::Scenario fast_base() {
  sim::Scenario base = default_base_scenario();
  base.measure_s = 120.0;
  return base;
}

/// The planted-bug trigger distilled: two overlapping outages of one duplex
/// link, which the defeated idempotency guard turns into a double fail.
sim::Scenario overlapping_duplex_scenario(std::uint64_t seed) {
  sim::Scenario scenario = fast_base();
  scenario.name = "overlap";
  scenario.seed = seed;
  scenario.link_faults.push_back(sim::single_fault(0, 1, 50.0, 90.0));
  return scenario;  // overlaps the base's (0,1) fault at 40..80
}

TEST(ChaosFuzz, DefaultBaseRunsClean) {
  const audit::ChaosOracleOutcome outcome = audit::run_chaos_oracle(fast_base());
  EXPECT_TRUE(outcome.clean()) << outcome.violation_class << ": " << outcome.detail;
}

TEST(ChaosFuzz, DefaultBaseStaysCleanWithGuardDefeated) {
  // The planted bug only fires on *overlapping* duplex outages; the base has
  // none, so the defeat flag alone must not change the verdict.
  audit::ChaosOracleOptions oracle;
  oracle.defeat_duplex_idempotency = true;
  const audit::ChaosOracleOutcome outcome = audit::run_chaos_oracle(fast_base(), oracle);
  EXPECT_TRUE(outcome.clean()) << outcome.violation_class << ": " << outcome.detail;
}

TEST(ChaosFuzz, MutateIsDeterministic) {
  const sim::Scenario base = fast_base();
  const net::Topology topology = sim::build_scenario_topology(base.topology);
  sim::Scenario first = base;
  sim::Scenario second = base;
  des::RandomStream rng_first(42);
  des::RandomStream rng_second(42);
  mutate(first, topology, rng_first, 16);
  mutate(second, topology, rng_second, 16);
  EXPECT_EQ(sim::save_scenario(first), sim::save_scenario(second));
}

TEST(ChaosFuzz, MutationsAlwaysProduceValidScenarios) {
  const sim::Scenario base = fast_base();
  const net::Topology topology = sim::build_scenario_topology(base.topology);
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    sim::Scenario candidate = base;
    des::RandomStream rng(seed);
    mutate(candidate, topology, rng, 12);
    // Valid means: it lowers onto the simulation API and survives a
    // serialization round trip (the repro-file contract).
    EXPECT_NO_THROW(sim::make_scenario_run(candidate)) << "seed " << seed;
    EXPECT_NO_THROW(sim::load_scenario(sim::save_scenario(candidate))) << "seed " << seed;
  }
}

TEST(ChaosFuzz, OverlapTriggersPlantedBugOnlyWhenDefeated) {
  const sim::Scenario scenario = overlapping_duplex_scenario(1);
  EXPECT_TRUE(audit::run_chaos_oracle(scenario).clean());
  audit::ChaosOracleOptions oracle;
  oracle.defeat_duplex_idempotency = true;
  const audit::ChaosOracleOutcome outcome = audit::run_chaos_oracle(scenario, oracle);
  EXPECT_EQ(outcome.violation_class, kPlantedClass);
}

// The satellite property test: over a seed grid, shrinking a failing
// scenario preserves the violation class exactly and never grows the
// entry count.
TEST(ChaosFuzz, ShrinkPreservesViolationClassAcrossSeeds) {
  audit::ChaosOracleOptions oracle;
  oracle.defeat_duplex_idempotency = true;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const sim::Scenario failing = overlapping_duplex_scenario(seed);
    const audit::ChaosOracleOutcome outcome = audit::run_chaos_oracle(failing, oracle);
    ASSERT_EQ(outcome.violation_class, kPlantedClass) << "seed " << seed;

    const ShrinkResult shrunk = shrink(failing, outcome.violation_class, oracle, 60);
    EXPECT_EQ(shrunk.outcome.violation_class, kPlantedClass) << "seed " << seed;
    EXPECT_LE(shrunk.final_entries, shrunk.initial_entries) << "seed " << seed;
    EXPECT_LE(shrunk.oracle_runs, 60U) << "seed " << seed;

    // The shrunk scenario is itself a committed repro: replaying it (fresh
    // oracle, same options) reproduces the same class.
    const audit::ChaosOracleOutcome replay = audit::run_chaos_oracle(shrunk.scenario, oracle);
    EXPECT_EQ(replay.violation_class, kPlantedClass) << "seed " << seed;
  }
}

TEST(ChaosFuzz, ShrinkDropsIrrelevantEntries) {
  // The double-fault needs exactly the two overlapping (0,1) faults; the
  // base's other entries (churn, node fault, second link fault) are noise
  // the shrinker must remove.
  audit::ChaosOracleOptions oracle;
  oracle.defeat_duplex_idempotency = true;
  const sim::Scenario failing = overlapping_duplex_scenario(1);
  const ShrinkResult shrunk = shrink(failing, kPlantedClass, oracle, 80);
  ASSERT_EQ(shrunk.outcome.violation_class, kPlantedClass);
  EXPECT_EQ(shrunk.scenario.fault_entries(), 2U)
      << sim::save_scenario(shrunk.scenario);
  EXPECT_EQ(shrunk.scenario.churn.size(), 0U);
  EXPECT_EQ(shrunk.scenario.node_faults.size(), 0U);
}

}  // namespace
}  // namespace anyqos::chaosfuzz
