#include "tools/chaosfuzz/fuzzer.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <ostream>
#include <utility>
#include <vector>

#include "src/sim/churn.h"
#include "src/sim/faults.h"
#include "src/util/require.h"

namespace anyqos::chaosfuzz {
namespace {

/// Where a fault entry lives inside a Scenario; the shrinker's ddmin runs
/// over the concatenation of all five lists so one pass can drop any mix.
enum class EntryKind : std::uint8_t { kLink, kChurn, kNode, kRegional, kOps };

struct EntryRef {
  EntryKind kind = EntryKind::kLink;
  std::size_t index = 0;  ///< into the scenario's list for `kind`
};

std::vector<EntryRef> flatten(const sim::Scenario& scenario) {
  std::vector<EntryRef> entries;
  entries.reserve(scenario.fault_entries() + scenario.ops.size());
  for (std::size_t i = 0; i < scenario.link_faults.size(); ++i) {
    entries.push_back({EntryKind::kLink, i});
  }
  for (std::size_t i = 0; i < scenario.churn.size(); ++i) {
    entries.push_back({EntryKind::kChurn, i});
  }
  for (std::size_t i = 0; i < scenario.node_faults.size(); ++i) {
    entries.push_back({EntryKind::kNode, i});
  }
  for (std::size_t i = 0; i < scenario.regional_outages.size(); ++i) {
    entries.push_back({EntryKind::kRegional, i});
  }
  for (std::size_t i = 0; i < scenario.ops.size(); ++i) {
    entries.push_back({EntryKind::kOps, i});
  }
  return entries;
}

/// Rebuilds `base` keeping only the referenced entries. `keep` is in flatten
/// order, so per-list relative order (and the ops sort invariant) survives.
sim::Scenario with_entries(const sim::Scenario& base, const std::vector<EntryRef>& keep) {
  sim::Scenario result = base;
  result.link_faults.clear();
  result.churn.clear();
  result.node_faults.clear();
  result.regional_outages.clear();
  result.ops.clear();
  for (const EntryRef& ref : keep) {
    switch (ref.kind) {
      case EntryKind::kLink:
        result.link_faults.push_back(base.link_faults[ref.index]);
        break;
      case EntryKind::kChurn:
        result.churn.push_back(base.churn[ref.index]);
        break;
      case EntryKind::kNode:
        result.node_faults.push_back(base.node_faults[ref.index]);
        break;
      case EntryKind::kRegional:
        result.regional_outages.push_back(base.regional_outages[ref.index]);
        break;
      case EntryKind::kOps:
        result.ops.push_back(base.ops[ref.index]);
        break;
    }
  }
  return result;
}

/// (start, end) accessors over every timed entry kind, so window mutations
/// and the shrinker's duration pass need no per-kind code.
std::pair<double, double> window_of(const sim::Scenario& scenario, const EntryRef& ref) {
  switch (ref.kind) {
    case EntryKind::kLink: {
      const sim::LinkFault& fault = scenario.link_faults[ref.index];
      return {fault.fail_at, fault.repair_at};
    }
    case EntryKind::kChurn: {
      const sim::MemberChurnEvent& event = scenario.churn[ref.index];
      return {event.down_at, event.up_at};
    }
    case EntryKind::kNode: {
      const sim::NodeFault& fault = scenario.node_faults[ref.index];
      return {fault.fail_at, fault.repair_at};
    }
    case EntryKind::kRegional: {
      const sim::RegionalOutageSpec& outage = scenario.regional_outages[ref.index];
      return {outage.fail_at, outage.repair_at};
    }
    case EntryKind::kOps: {
      const control::TimedDirective& directive = scenario.ops[ref.index];
      return {directive.apply_at, directive.apply_at};
    }
  }
  util::unreachable("unhandled entry kind");
}

void set_window(sim::Scenario& scenario, const EntryRef& ref, double start, double end) {
  switch (ref.kind) {
    case EntryKind::kLink: {
      sim::LinkFault& fault = scenario.link_faults[ref.index];
      fault.fail_at = start;
      fault.repair_at = end;
      return;
    }
    case EntryKind::kChurn: {
      sim::MemberChurnEvent& event = scenario.churn[ref.index];
      event.down_at = start;
      event.up_at = end;
      return;
    }
    case EntryKind::kNode: {
      sim::NodeFault& fault = scenario.node_faults[ref.index];
      fault.fail_at = start;
      fault.repair_at = end;
      return;
    }
    case EntryKind::kRegional: {
      sim::RegionalOutageSpec& outage = scenario.regional_outages[ref.index];
      outage.fail_at = start;
      outage.repair_at = end;
      return;
    }
    case EntryKind::kOps:
      scenario.ops[ref.index].apply_at = start;
      return;
  }
  util::unreachable("unhandled entry kind");
}

/// A random outage window inside [0, horizon): starts in the first 90%,
/// lasts 2%..25% of the horizon.
std::pair<double, double> random_window(des::RandomStream& rng, double horizon) {
  const double start = rng.uniform(0.0, horizon * 0.9);
  const double length = rng.uniform(horizon * 0.02, horizon * 0.25);
  return {start, start + length};
}

/// Picks a random duplex link's endpoints (via one of its directed arcs).
std::pair<net::NodeId, net::NodeId> random_duplex(const net::Topology& topology,
                                                  des::RandomStream& rng) {
  const net::Arc& arc = topology.link(
      static_cast<net::LinkId>(rng.uniform_index(topology.link_count())));
  return {arc.from, arc.to};
}

/// The mutation catalogue. Every op keeps the scenario valid: entries
/// reference real links/members/routers and windows stay ordered, so the
/// oracle's "invalid:" class can only ever mean a generator bug.
enum class MutationOp : std::uint8_t {
  kAddLinkFault,
  kAddChurn,
  kAddNodeFault,
  kAddRegionalOutage,
  kRemoveEntry,
  kShiftWindow,
  kWidenWindow,
  kOverlapDuplicate,
  kCrankLambda,
  kCrankLoss,
  kAddOpsDirective,
  kCount,
};

void apply_mutation(sim::Scenario& scenario, const net::Topology& topology,
                    des::RandomStream& rng, MutationOp op) {
  const double horizon = scenario.warmup_s + scenario.measure_s;
  switch (op) {
    case MutationOp::kAddLinkFault: {
      const auto [a, b] = random_duplex(topology, rng);
      const auto [start, end] = random_window(rng, horizon);
      scenario.link_faults.push_back(sim::single_fault(a, b, start, end));
      return;
    }
    case MutationOp::kAddChurn: {
      const auto [start, end] = random_window(rng, horizon);
      scenario.churn.push_back(
          sim::single_churn(rng.uniform_index(scenario.group.size()), start, end));
      return;
    }
    case MutationOp::kAddNodeFault: {
      const auto node = static_cast<net::NodeId>(rng.uniform_index(topology.router_count()));
      const auto [start, end] = random_window(rng, horizon);
      scenario.node_faults.push_back(sim::single_node_fault(node, start, end));
      return;
    }
    case MutationOp::kAddRegionalOutage: {
      sim::RegionalOutageSpec outage;
      outage.epicenter = static_cast<net::NodeId>(rng.uniform_index(topology.router_count()));
      outage.radius_hops = 1;
      const auto [start, end] = random_window(rng, horizon);
      outage.fail_at = start;
      outage.repair_at = end;
      scenario.regional_outages.push_back(outage);
      return;
    }
    case MutationOp::kRemoveEntry: {
      const std::vector<EntryRef> entries = flatten(scenario);
      if (entries.empty()) {
        return;
      }
      std::vector<EntryRef> keep = entries;
      keep.erase(keep.begin() + static_cast<std::ptrdiff_t>(rng.uniform_index(keep.size())));
      scenario = with_entries(scenario, keep);
      return;
    }
    case MutationOp::kShiftWindow: {
      const std::vector<EntryRef> entries = flatten(scenario);
      if (entries.empty()) {
        return;
      }
      const EntryRef& ref = entries[rng.uniform_index(entries.size())];
      const auto [start, end] = window_of(scenario, ref);
      const double shift = rng.uniform(-0.2, 0.2) * horizon;
      const double shifted = std::max(0.0, start + shift);
      set_window(scenario, ref, shifted, shifted + (end - start));
      if (ref.kind == EntryKind::kOps) {
        // The scenario plane requires ops sorted by application time.
        std::stable_sort(scenario.ops.begin(), scenario.ops.end(),
                         [](const control::TimedDirective& lhs,
                            const control::TimedDirective& rhs) {
                           return lhs.apply_at < rhs.apply_at;
                         });
      }
      return;
    }
    case MutationOp::kWidenWindow: {
      const std::vector<EntryRef> entries = flatten(scenario);
      if (entries.empty()) {
        return;
      }
      const EntryRef& ref = entries[rng.uniform_index(entries.size())];
      if (ref.kind == EntryKind::kOps) {
        return;  // directives are instants; nothing to widen
      }
      const auto [start, end] = window_of(scenario, ref);
      set_window(scenario, ref, start, start + (end - start) * rng.uniform(1.5, 3.0));
      return;
    }
    case MutationOp::kOverlapDuplicate: {
      // Duplicate a timed entry with a window that starts inside the
      // original and ends after it. Same-element overlapping outages are
      // legal (the simulation hold-counts them) — this op exists to probe
      // exactly that idempotency machinery.
      std::vector<EntryRef> entries = flatten(scenario);
      std::erase_if(entries, [](const EntryRef& ref) { return ref.kind == EntryKind::kOps; });
      if (entries.empty()) {
        return;
      }
      const EntryRef& ref = entries[rng.uniform_index(entries.size())];
      const auto [start, end] = window_of(scenario, ref);
      const double overlap_start = rng.uniform(start, end);
      const double overlap_end = end + rng.uniform(0.1, 0.5) * (end - start);
      switch (ref.kind) {
        case EntryKind::kLink: {
          const sim::LinkFault& fault = scenario.link_faults[ref.index];
          scenario.link_faults.push_back(
              sim::single_fault(fault.a, fault.b, overlap_start, overlap_end));
          return;
        }
        case EntryKind::kChurn:
          scenario.churn.push_back(sim::single_churn(
              scenario.churn[ref.index].member_index, overlap_start, overlap_end));
          return;
        case EntryKind::kNode:
          scenario.node_faults.push_back(sim::single_node_fault(
              scenario.node_faults[ref.index].node, overlap_start, overlap_end));
          return;
        case EntryKind::kRegional: {
          sim::RegionalOutageSpec outage = scenario.regional_outages[ref.index];
          outage.fail_at = overlap_start;
          outage.repair_at = overlap_end;
          scenario.regional_outages.push_back(outage);
          return;
        }
        case EntryKind::kOps:
          return;  // filtered above
      }
      return;
    }
    case MutationOp::kCrankLambda:
      scenario.lambda = std::min(200.0, scenario.lambda * rng.uniform(1.2, 2.0));
      return;
    case MutationOp::kCrankLoss: {
      if (!scenario.resilience.has_value()) {
        scenario.resilience.emplace();
      }
      scenario.resilience->loss_probability =
          std::min(0.5, scenario.resilience->loss_probability + rng.uniform(0.05, 0.2));
      return;
    }
    case MutationOp::kAddOpsDirective: {
      if (!scenario.governor.has_value()) {
        return;  // ops replay requires the governor plane
      }
      control::TimedDirective directive;
      directive.apply_at = rng.uniform(0.0, horizon);
      switch (rng.uniform_index(4)) {
        case 0:
          directive.directive.knob = control::Knob::kRetrialCeiling;
          directive.directive.value = 1.0 + static_cast<double>(rng.uniform_index(8));
          break;
        case 1:
          directive.directive.knob = control::Knob::kBreakerThreshold;
          directive.directive.value = 1.0 + static_cast<double>(rng.uniform_index(10));
          break;
        case 2:
          directive.directive.knob = control::Knob::kBreakerCooldown;
          directive.directive.value = rng.uniform(5.0, 120.0);
          break;
        default:
          directive.directive.knob = control::Knob::kShedBudget;
          directive.directive.value = static_cast<double>(rng.uniform_index(200));
          break;
      }
      // The scenario plane requires ops sorted by application time.
      const auto at = std::upper_bound(
          scenario.ops.begin(), scenario.ops.end(), directive.apply_at,
          [](double t, const control::TimedDirective& other) { return t < other.apply_at; });
      scenario.ops.insert(at, directive);
      return;
    }
    case MutationOp::kCount:
      break;
  }
  util::unreachable("unhandled mutation op");
}

/// One class-preserving oracle probe, budget-counted.
class ShrinkJudge {
 public:
  ShrinkJudge(std::string target_class, const audit::ChaosOracleOptions& oracle,
              std::size_t budget)
      : target_class_(std::move(target_class)), oracle_(oracle), budget_(budget) {}

  /// Runs the oracle on `candidate`; returns the outcome when the violation
  /// class matches the target exactly, nullopt otherwise (including when
  /// the budget is gone — callers just see "no").
  std::optional<audit::ChaosOracleOutcome> matches(const sim::Scenario& candidate) {
    if (runs_ >= budget_) {
      return std::nullopt;
    }
    ++runs_;
    audit::ChaosOracleOutcome outcome = audit::run_chaos_oracle(candidate, oracle_);
    if (outcome.violation_class != target_class_) {
      return std::nullopt;
    }
    return outcome;
  }

  [[nodiscard]] std::size_t runs() const { return runs_; }
  [[nodiscard]] bool exhausted() const { return runs_ >= budget_; }

 private:
  std::string target_class_;
  const audit::ChaosOracleOptions& oracle_;
  std::size_t budget_;
  std::size_t runs_ = 0;
};

}  // namespace

sim::Scenario default_base_scenario() {
  sim::Scenario scenario;
  scenario.name = "chaosfuzz-base";
  scenario.topology = "mci";
  scenario.seed = 1;
  scenario.lambda = 25.0;
  scenario.mean_holding_s = 60.0;
  scenario.sources = {0, 3, 5, 9, 13, 16};
  scenario.group = {2, 7, 11, 15, 18};
  scenario.max_tries = 2;
  scenario.warmup_s = 0.0;  // exact hop reconciliation stays checkable
  scenario.measure_s = 300.0;
  scenario.drain_to_quiescence = true;
  scenario.drain_max_events = 2'000'000;
  scenario.drain_max_sim_s = 2'000.0;

  scenario.resilience.emplace();
  scenario.resilience->loss_probability = 0.05;
  scenario.resilience->hop_delay_s = 0.01;
  scenario.resilience->hop_jitter_s = 0.005;

  scenario.reconvergence.emplace();
  scenario.reconvergence->policy = "flooding";
  scenario.reconvergence->param_s = 0.05;
  scenario.path_repair = true;

  scenario.governor.emplace();
  scenario.governor->min_tries = 1;
  scenario.governor->breaker_cooldown_s = 30.0;

  // Seed material on every entry axis so entry-level mutations (shift,
  // widen, overlap-duplicate) always have something to act on.
  scenario.link_faults.push_back(sim::single_fault(0, 1, 40.0, 80.0));
  scenario.link_faults.push_back(sim::single_fault(7, 11, 120.0, 160.0));
  scenario.churn.push_back(sim::single_churn(1, 60.0, 100.0));
  scenario.node_faults.push_back(sim::single_node_fault(9, 150.0, 190.0));
  return scenario;
}

void mutate(sim::Scenario& scenario, const net::Topology& topology, des::RandomStream& rng,
            std::size_t count) {
  util::require(!scenario.group.empty(), "mutate needs a non-empty anycast group");
  for (std::size_t i = 0; i < count; ++i) {
    apply_mutation(scenario, topology, rng,
                   static_cast<MutationOp>(
                       rng.uniform_index(static_cast<std::size_t>(MutationOp::kCount))));
  }
}

ShrinkResult shrink(const sim::Scenario& failing, const std::string& violation_class,
                    const audit::ChaosOracleOptions& oracle, std::size_t budget) {
  ShrinkResult result;
  // Materialize the random axes first so every drawn fault becomes an
  // individually droppable entry (the expansion runs identically).
  sim::Scenario current = failing;
  sim::materialize_random_axes(current, sim::build_scenario_topology(current.topology));
  result.initial_entries = current.fault_entries() + current.ops.size();

  ShrinkJudge judge(violation_class, oracle, budget);

  // Pass 1: ddmin over the flattened entry list — try dropping ever-finer
  // chunks, re-coarsening after every successful reduction.
  std::vector<EntryRef> entries = flatten(current);
  std::optional<audit::ChaosOracleOutcome> best;
  std::size_t granularity = 2;
  while (entries.size() >= 2 && !judge.exhausted()) {
    const std::size_t chunk = (entries.size() + granularity - 1) / granularity;
    bool reduced = false;
    for (std::size_t start = 0; start < entries.size() && !judge.exhausted(); start += chunk) {
      std::vector<EntryRef> keep;
      keep.reserve(entries.size());
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (i < start || i >= start + chunk) {
          keep.push_back(entries[i]);
        }
      }
      if (auto outcome = judge.matches(with_entries(current, keep))) {
        entries = std::move(keep);
        best = std::move(outcome);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= entries.size()) {
        break;
      }
      granularity = std::min(granularity * 2, entries.size());
    }
  }
  current = with_entries(current, entries);

  // Pass 2: halve each surviving entry's outage window.
  for (const EntryRef& ref : flatten(current)) {
    if (ref.kind == EntryKind::kOps || judge.exhausted()) {
      continue;
    }
    const auto [start, end] = window_of(current, ref);
    const double halved = start + (end - start) / 2.0;
    if (halved <= start) {
      continue;
    }
    sim::Scenario candidate = current;
    set_window(candidate, ref, start, halved);
    if (auto outcome = judge.matches(candidate)) {
      current = std::move(candidate);
      best = std::move(outcome);
    }
  }

  // Pass 3: scalar reductions — shorter run, lighter load, less loss. Each
  // knob halves repeatedly while the class survives.
  const auto try_scalar = [&](auto&& reduce) {
    while (!judge.exhausted()) {
      sim::Scenario candidate = current;
      if (!reduce(candidate)) {
        return;
      }
      auto outcome = judge.matches(candidate);
      if (!outcome.has_value()) {
        return;
      }
      current = std::move(candidate);
      best = std::move(outcome);
    }
  };
  try_scalar([](sim::Scenario& candidate) {
    if (candidate.measure_s <= 30.0) {
      return false;
    }
    candidate.measure_s = std::max(30.0, candidate.measure_s / 2.0);
    return true;
  });
  try_scalar([](sim::Scenario& candidate) {
    if (candidate.lambda <= 1.0) {
      return false;
    }
    candidate.lambda = std::max(1.0, candidate.lambda / 2.0);
    return true;
  });
  try_scalar([](sim::Scenario& candidate) {
    if (!candidate.resilience.has_value() || candidate.resilience->loss_probability < 0.01) {
      return false;
    }
    candidate.resilience->loss_probability /= 2.0;
    return true;
  });

  result.scenario = std::move(current);
  result.scenario.name = failing.name + "-shrunk";
  if (best.has_value()) {
    result.outcome = std::move(*best);
  } else {
    // No candidate was accepted; re-run the (materialized) original so the
    // reported outcome always describes result.scenario. One extra run,
    // outside the budget by design.
    result.outcome = audit::run_chaos_oracle(result.scenario, oracle);
  }
  result.oracle_runs = judge.runs();
  result.final_entries = result.scenario.fault_entries() + result.scenario.ops.size();
  return result;
}

FuzzReport fuzz(const sim::Scenario& base, const FuzzOptions& options, std::ostream* log) {
  FuzzReport report;
  const net::Topology topology = sim::build_scenario_topology(base.topology);
  des::RandomStream rng(options.seed);
  for (std::size_t i = 0; i < options.iterations; ++i) {
    sim::Scenario candidate = base;
    candidate.name = base.name + "-" + std::to_string(i);
    candidate.seed = base.seed + i;
    mutate(candidate, topology, rng, options.mutations_per_candidate);
    audit::ChaosOracleOutcome outcome = audit::run_chaos_oracle(candidate, options.oracle);
    ++report.oracle_runs;
    ++report.iterations_run;
    if (log != nullptr) {
      *log << "[chaosfuzz] iter " << i << " seed " << candidate.seed << " entries "
           << candidate.fault_entries() << " -> "
           << (outcome.clean() ? "clean" : outcome.violation_class) << "\n";
    }
    if (!outcome.clean()) {
      report.found = true;
      report.failing = candidate;
      report.outcome = outcome;
      report.shrunk =
          shrink(candidate, outcome.violation_class, options.oracle, options.shrink_budget);
      report.oracle_runs += report.shrunk.oracle_runs;
      if (log != nullptr) {
        *log << "[chaosfuzz] shrunk " << report.shrunk.initial_entries << " -> "
             << report.shrunk.final_entries << " entries in " << report.shrunk.oracle_runs
             << " oracle runs (class " << report.shrunk.outcome.violation_class << ")\n";
      }
      return report;
    }
  }
  return report;
}

}  // namespace anyqos::chaosfuzz
