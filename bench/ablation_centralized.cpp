// Ablation A5: the centralized-admission alternative the paper argues
// against (Section 1). CTRL has a global view over the fixed routes, so its
// AP upper-bounds every DAC system while staying below GDI (no free path
// choice) — but each request pays a round trip to the agency and queues at
// its finite decision rate. This bench puts numbers on that argument.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyqos;
  util::CliFlags flags("ablation_centralized",
                       "centralized agency vs DAC vs GDI (AP and overheads)");
  bench::add_run_flags(flags);
  flags.add_unsigned("controller-node", 8, "router hosting the agency (8 = central CHI)");
  flags.add_double("controller-rate", 1e6, "agency decisions per second");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }
  const auto node = static_cast<net::NodeId>(flags.get_unsigned("controller-node"));
  const double rate = flags.get_double("controller-rate");

  const sim::ExperimentModel model = sim::paper_model();
  const sim::RunControls controls = bench::run_controls(flags);
  const std::vector<double> lambdas = bench::lambda_grid(flags);

  util::TablePrinter table({"lambda", "AP <WD/D+B,2>", "AP CTRL", "AP GDI",
                            "msgs/req WD/D+B", "msgs/req CTRL"});
  for (const double lambda : lambdas) {
    std::vector<double> row = {lambda};
    sim::SimulationResult wdb;
    sim::SimulationResult ctrl;
    sim::SimulationResult gdi;
    {
      sim::SimulationConfig config = model.base_config(lambda);
      sim::apply_run_controls(config, controls);
      config.algorithm = core::SelectionAlgorithm::kDistanceBandwidth;
      config.max_tries = 2;
      wdb = sim::Simulation(model.topology, config).run();
    }
    {
      sim::SimulationConfig config = model.base_config(lambda);
      sim::apply_run_controls(config, controls);
      config.use_centralized = true;
      config.controller_node = node;
      config.controller_rate = rate;
      ctrl = sim::Simulation(model.topology, config).run();
    }
    {
      sim::SimulationConfig config = model.base_config(lambda);
      sim::apply_run_controls(config, controls);
      config.use_gdi = true;
      gdi = sim::Simulation(model.topology, config).run();
    }
    table.add_numeric_row({lambda, wdb.admission_probability, ctrl.admission_probability,
                           gdi.admission_probability, wdb.average_messages,
                           ctrl.average_messages},
                          4);
    std::cerr << "  lambda " << lambda << " done\n";
  }
  std::cout << (flags.get_bool("csv") ? table.to_csv() : table.to_text());
  std::cout << "\n(Ablation A5: centralized agency at router " << node
            << ". Expected ordering WD/D+B <= CTRL <= GDI in AP; CTRL's message\n"
            << "column shows the control round trips the paper's scalability\n"
            << "argument is about.)\n";
  return 0;
}
