// Figure 3: admission probability of systems <ED,R>, R = 1..5, versus the
// flow arrival rate. Reproduces the retrial-sensitivity curves: AP rises
// with R, with the biggest jump from R=1 to R=2 and saturation by R=5 (= K).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyqos;
  util::CliFlags flags("fig3_ed_sensitivity",
                       "Figure 3: AP of <ED,R> vs arrival rate, R = 1..5");
  bench::add_run_flags(flags);
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }

  std::vector<bench::SystemColumn> systems;
  for (std::size_t r = 1; r <= 5; ++r) {
    systems.push_back({"<ED," + std::to_string(r) + ">", [r](sim::SimulationConfig& config) {
                         config.algorithm = core::SelectionAlgorithm::kEvenDistribution;
                         config.max_tries = r;
                       }});
  }
  bench::run_figure(flags, "Figure 3: admission probability of <ED,R>", systems,
                    [](const sim::SimulationResult& r) { return r.admission_probability; });
  return 0;
}
