// Table 2: admission probability of the SP baseline at lambda = 5, 20, 35,
// 50 by mathematical analysis and by computer simulation, mirroring Table 1.
#include "bench/bench_common.h"
#include "src/analysis/ap_analysis.h"

int main(int argc, char** argv) {
  using namespace anyqos;
  util::CliFlags flags("table2_sp_analysis_vs_sim", "Table 2: SP analysis vs simulation");
  bench::add_run_flags(flags);
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }

  const sim::ExperimentModel model = sim::paper_model();
  const sim::RunControls controls = bench::run_controls(flags);
  std::vector<double> lambdas = {5.0, 20.0, 35.0, 50.0};
  if (flags.get_string("lambdas") != "5,10,15,20,25,30,35,40,45,50") {
    lambdas = bench::lambda_grid(flags);
  }

  std::vector<std::string> header = {"method"};
  for (const double lambda : lambdas) {
    header.push_back("lambda=" + util::format_fixed(lambda, 1));
  }
  util::TablePrinter table(std::move(header));

  std::vector<std::string> analytic_row = {"Mathematical Analysis (UAA)"};
  std::vector<std::string> erlang_row = {"Mathematical Analysis (exact Erlang-B)"};
  std::vector<std::string> sim_row = {"Computer Simulation"};
  for (const double lambda : lambdas) {
    analysis::AnalyticModel analytic;
    analytic.topology = &model.topology;
    analytic.sources = model.sources;
    analytic.members = model.group_members;
    analytic.lambda_total = lambda;
    analytic.mean_holding_s = model.mean_holding_s;
    analytic.flow_bandwidth_bps = model.flow_bandwidth_bps;
    analytic.anycast_share = model.anycast_share;

    analysis::FixedPointOptions uaa;
    uaa.model = analysis::BlockingModel::kUaa;
    analytic_row.push_back(
        util::format_fixed(analysis::analyze_sp(analytic, uaa).admission_probability, 6));
    analysis::FixedPointOptions exact;
    exact.model = analysis::BlockingModel::kErlangB;
    erlang_row.push_back(
        util::format_fixed(analysis::analyze_sp(analytic, exact).admission_probability, 6));

    sim::SimulationConfig config = model.base_config(lambda);
    sim::apply_run_controls(config, controls);
    config.algorithm = core::SelectionAlgorithm::kShortestPath;
    config.max_tries = 1;
    sim::Simulation simulation(model.topology, config);
    sim_row.push_back(util::format_fixed(simulation.run().admission_probability, 6));
    std::cerr << "  lambda " << lambda << " done\n";
  }
  table.add_row(std::move(analytic_row));
  table.add_row(std::move(erlang_row));
  table.add_row(std::move(sim_row));
  std::cout << (flags.get_bool("csv") ? table.to_csv() : table.to_text());
  std::cout << "\n(Table 2: AP of SP. Paper values for its Figure-2 topology:\n"
            << " analysis 1.000000/0.771044/0.444341/0.311417,\n"
            << " simulation 1.000000/0.781039/0.451598/0.317420 — see Table 1 note.)\n";
  return 0;
}
