// Ablation A9: delay-constrained anycast admission (Section 6 end to end).
//
// Sweeps the end-to-end deadline for flows admitted by the delay-aware DAC
// (WFQ delay -> per-member bandwidth mapping). Tighter deadlines force
// larger reservations — especially toward distant members — so acceptance
// falls and traffic gravitates to near mirrors. The bench reports AP, the
// mean reserved rate per admitted flow, and the near-member share.
#include <functional>
#include <iostream>

#include "bench/bench_common.h"
#include "src/core/delay_admission.h"

namespace {

using namespace anyqos;

struct Outcome {
  double ap = 0.0;
  double mean_reserved_kbps = 0.0;
  double near_member_share = 0.0;  // fraction pinned to each source's closest member
};

Outcome run(const sim::ExperimentModel& model, double lambda, double deadline_s,
            const sim::RunControls& controls) {
  const core::AnycastGroup group("g", model.group_members);
  const net::RouteTable routes(model.topology, model.group_members);
  net::BandwidthLedger ledger(model.topology, model.anycast_share);
  signaling::MessageCounter counter;
  signaling::ReservationProtocol rsvp(ledger, counter);
  core::SchedulerModel scheduler;
  scheduler.max_packet_bits = 1500.0 * 8.0;
  scheduler.per_hop_latency_s = 0.004;

  des::SeedSequence seeds(controls.seed);
  des::Simulator simulator;
  sim::TrafficModel traffic;
  traffic.arrival_rate = lambda;
  traffic.mean_holding_s = model.mean_holding_s;
  traffic.flow_bandwidth_bps = model.flow_bandwidth_bps;
  traffic.sources = model.sources;
  sim::ArrivalProcess arrivals(traffic, seeds);
  des::RandomStream selection = seeds.stream("selection");

  std::vector<std::unique_ptr<core::DelayAdmissionController>> acs(
      model.topology.router_count());
  const auto ac_for = [&](net::NodeId s) -> core::DelayAdmissionController& {
    if (acs[s] == nullptr) {
      acs[s] = std::make_unique<core::DelayAdmissionController>(
          s, group, routes, rsvp, scheduler,
          std::make_unique<core::CounterRetrialPolicy>(2));
    }
    return *acs[s];
  };

  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t near_hits = 0;
  double reserved_total = 0.0;
  bool measuring = false;
  std::function<void()> arrival = [&] {
    simulator.schedule_in(arrivals.next_interarrival(), arrival);
    core::DelayFlowRequest request;
    request.source = arrivals.draw_source();
    request.qos.min_bandwidth_bps = model.flow_bandwidth_bps;
    request.qos.max_delay_s = deadline_s;
    const core::DelayAdmissionDecision decision =
        ac_for(request.source).admit(request, selection);
    if (measuring) {
      ++offered;
      if (decision.admitted) {
        ++admitted;
        reserved_total += decision.reserved_bps;
        if (*decision.destination_index == routes.shortest_destination(request.source)) {
          ++near_hits;
        }
      }
    }
    if (decision.admitted) {
      auto& controller = ac_for(request.source);
      // Init-capture keeps the closure member mutable so des::Action can
      // relocate it with a move instead of a reallocating copy.
      simulator.schedule_in(arrivals.draw_holding(),
                            [&controller, kept = decision] { controller.release(kept); });
    }
  };
  simulator.schedule_in(arrivals.next_interarrival(), arrival);
  simulator.run_until(controls.warmup_s);
  measuring = true;
  simulator.run_until(controls.warmup_s + controls.measure_s);

  Outcome outcome;
  outcome.ap = offered == 0 ? 0.0 : static_cast<double>(admitted) / static_cast<double>(offered);
  outcome.mean_reserved_kbps =
      admitted == 0 ? 0.0 : reserved_total / static_cast<double>(admitted) / 1000.0;
  outcome.near_member_share =
      admitted == 0 ? 0.0 : static_cast<double>(near_hits) / static_cast<double>(admitted);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags("ablation_delay", "deadline sweep for delay-aware DAC");
  bench::add_run_flags(flags);
  flags.add_double("lambda", 15.0, "arrival rate, requests/s");
  flags.add_string("deadlines-ms", "1000,500,300,200,150,100",
                   "comma-separated end-to-end deadlines (milliseconds)");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }
  const sim::ExperimentModel model = sim::paper_model();
  const sim::RunControls controls = bench::run_controls(flags);
  const double lambda = flags.get_double("lambda");

  util::TablePrinter table({"deadline (ms)", "AP", "mean reserved kbit/s",
                            "nearest-member share"});
  for (const std::string& field : util::split(flags.get_string("deadlines-ms"), ',')) {
    const double deadline_ms = util::parse_double(field).value();
    const Outcome outcome = run(model, lambda, deadline_ms / 1000.0, controls);
    table.add_row({util::format_fixed(deadline_ms, 0), util::format_fixed(outcome.ap, 6),
                   util::format_fixed(outcome.mean_reserved_kbps, 1),
                   util::format_fixed(outcome.near_member_share, 4)});
    std::cerr << "  deadline " << deadline_ms << " ms done\n";
  }
  std::cout << (flags.get_bool("csv") ? table.to_csv() : table.to_text());
  std::cout << "\n(Ablation A9 at lambda = " << lambda
            << ": tighter deadlines inflate per-flow reservations (hops x L / D),\n"
            << "so AP falls and admitted flows concentrate on near mirrors — the\n"
            << "delay/anycast coupling Section 6 sketches.)\n";
  return 0;
}
