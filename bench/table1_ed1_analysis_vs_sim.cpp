// Table 1: admission probability of system <ED,1> at lambda = 5, 20, 35, 50
// by mathematical analysis (Appendix A fixed point with UAA link blocking)
// and by computer simulation. Reproduction target: the two methods agree to
// within ~0.01 at every rate, as in the paper's Table 1. We additionally
// print the exact-Erlang-B variant of the analysis as a cross-check.
#include "bench/bench_common.h"
#include "src/analysis/ap_analysis.h"

int main(int argc, char** argv) {
  using namespace anyqos;
  util::CliFlags flags("table1_ed1_analysis_vs_sim",
                       "Table 1: <ED,1> analysis vs simulation");
  bench::add_run_flags(flags);
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }

  const sim::ExperimentModel model = sim::paper_model();
  const sim::RunControls controls = bench::run_controls(flags);
  // The paper's Table 1 grid unless overridden.
  std::vector<double> lambdas = {5.0, 20.0, 35.0, 50.0};
  if (flags.get_string("lambdas") != "5,10,15,20,25,30,35,40,45,50") {
    lambdas = bench::lambda_grid(flags);
  }

  std::vector<std::string> header = {"method"};
  for (const double lambda : lambdas) {
    header.push_back("lambda=" + util::format_fixed(lambda, 1));
  }
  util::TablePrinter table(std::move(header));
  std::vector<std::string> analytic_row = {"Mathematical Analysis (UAA)"};
  std::vector<std::string> erlang_row = {"Mathematical Analysis (exact Erlang-B)"};
  std::vector<std::string> sim_row = {"Computer Simulation"};

  for (const double lambda : lambdas) {
    analysis::AnalyticModel analytic;
    analytic.topology = &model.topology;
    analytic.sources = model.sources;
    analytic.members = model.group_members;
    analytic.lambda_total = lambda;
    analytic.mean_holding_s = model.mean_holding_s;
    analytic.flow_bandwidth_bps = model.flow_bandwidth_bps;
    analytic.anycast_share = model.anycast_share;

    analysis::FixedPointOptions uaa;
    uaa.model = analysis::BlockingModel::kUaa;
    analytic_row.push_back(
        util::format_fixed(analysis::analyze_ed1(analytic, uaa).admission_probability, 6));
    analysis::FixedPointOptions exact;
    exact.model = analysis::BlockingModel::kErlangB;
    erlang_row.push_back(
        util::format_fixed(analysis::analyze_ed1(analytic, exact).admission_probability, 6));

    sim::SimulationConfig config = model.base_config(lambda);
    sim::apply_run_controls(config, controls);
    config.algorithm = core::SelectionAlgorithm::kEvenDistribution;
    config.max_tries = 1;
    sim::Simulation simulation(model.topology, config);
    sim_row.push_back(util::format_fixed(simulation.run().admission_probability, 6));
    std::cerr << "  lambda " << lambda << " done\n";
  }
  table.add_row(std::move(analytic_row));
  table.add_row(std::move(erlang_row));
  table.add_row(std::move(sim_row));
  std::cout << (flags.get_bool("csv") ? table.to_csv() : table.to_text());
  std::cout << "\n(Table 1: AP of <ED,1>. Paper values for its Figure-2 topology:\n"
            << " analysis 1.000000/0.833933/0.584068/0.435654,\n"
            << " simulation 1.000000/0.837443/0.591091/0.439993 — our topology is an\n"
            << " MCI-like substitute, so levels shift; analysis==simulation is the claim.)\n";
  return 0;
}
