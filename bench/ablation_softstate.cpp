// Ablation A8: RSVP soft-state refresh overhead vs robustness.
//
// The paper's reservation messages are counted at setup/teardown only;
// standard RSVP additionally refreshes every session periodically. This
// bench sweeps the refresh interval and network loss rate over a population
// of anycast sessions and reports the resulting signaling rate and the
// probability a live flow is spuriously expired — the knob a deployment
// actually has to tune.
#include <iostream>

#include "src/net/topologies.h"
#include "src/sim/experiment.h"
#include "src/signaling/soft_state.h"
#include "src/util/cli.h"
#include "src/util/strings.h"
#include "src/util/table.h"

namespace {

using namespace anyqos;

struct Outcome {
  double refresh_messages_per_flow_second = 0.0;
  double spurious_expiry_fraction = 0.0;
};

Outcome run(double refresh_interval, double loss, double horizon, std::uint64_t seed) {
  const sim::ExperimentModel model = sim::paper_model();
  net::BandwidthLedger ledger(model.topology, model.anycast_share);
  signaling::MessageCounter counter;
  signaling::ReservationProtocol rsvp(ledger, counter);
  const net::RouteTable routes(model.topology, model.group_members);

  des::SeedSequence seeds(seed);
  des::Simulator simulator;
  des::RandomStream arrivals = seeds.stream("arrivals");
  des::RandomStream loss_rng = seeds.stream("loss");

  signaling::SoftStateOptions options;
  options.refresh_interval_s = refresh_interval;
  options.lifetime_refreshes = 3;
  options.refresh_loss_probability = loss;
  signaling::SoftStateManager manager(simulator, ledger, counter, loss_rng, options);

  // A fixed population of long-lived sessions: arrivals at 2/s for the first
  // tenth of the horizon, all living until the end unless expired.
  std::uint64_t installed = 0;
  std::function<void()> arrival = [&] {
    const net::NodeId source = model.sources[arrivals.uniform_index(model.sources.size())];
    const std::size_t member = arrivals.uniform_index(model.group_members.size());
    const net::Path& route = routes.route(source, member);
    if (rsvp.reserve(route, model.flow_bandwidth_bps).admitted) {
      static_cast<void>(manager.install(route, model.flow_bandwidth_bps));
      ++installed;
    }
    if (simulator.now() < horizon / 10.0) {
      simulator.schedule_in(arrivals.exponential(0.5), arrival);
    }
  };
  simulator.schedule_in(0.0, arrival);
  simulator.run_until(horizon);

  Outcome outcome;
  const double refresh_hops = static_cast<double>(
      counter.by_kind(signaling::MessageKind::kPath) +
      counter.by_kind(signaling::MessageKind::kResv));
  outcome.refresh_messages_per_flow_second =
      installed == 0 ? 0.0 : refresh_hops / static_cast<double>(installed) / horizon;
  outcome.spurious_expiry_fraction =
      installed == 0
          ? 0.0
          : static_cast<double>(manager.expired_count()) / static_cast<double>(installed);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags("ablation_softstate", "RSVP refresh interval / loss sweep");
  flags.add_double("horizon", 3'600.0, "simulated seconds");
  flags.add_unsigned("seed", 1, "master RNG seed");
  flags.add_bool("csv", false, "emit CSV");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }
  const double horizon = flags.get_double("horizon");
  const auto seed = flags.get_unsigned("seed");

  util::TablePrinter table({"refresh interval (s)", "loss", "refresh msgs/flow/s",
                            "spuriously expired"});
  for (const double interval : {5.0, 15.0, 30.0, 60.0}) {
    for (const double loss : {0.0, 0.05, 0.2}) {
      const Outcome outcome = run(interval, loss, horizon, seed);
      table.add_row({util::format_fixed(interval, 0), util::format_fixed(loss, 2),
                     util::format_fixed(outcome.refresh_messages_per_flow_second, 4),
                     util::format_fixed(100.0 * outcome.spurious_expiry_fraction, 2) + "%"});
    }
    std::cerr << "  interval " << interval << " done\n";
  }
  std::cout << (flags.get_bool("csv") ? table.to_csv() : table.to_text());
  std::cout << "\n(Ablation A8: K = 3 *consecutive* missed refreshes expire a session.\n"
            << "Short intervals cost signaling linearly AND expire more sessions under\n"
            << "loss — each period is another chance at a 3-loss streak. With this\n"
            << "RSVP-style consecutive-loss rule, longer intervals dominate on both\n"
            << "axes; the real trade-off reappears only when the timeout is a fixed\n"
            << "wall-clock budget (K x interval), where long intervals react slowly.)\n";
  return 0;
}
