// Ablation A4: WD/D+B infeasibility masking.
//
// Eq. (12) weights members by B_i/D_i even when B_i is smaller than the flow
// demand b — such a member can be selected and then fail reservation. The
// natural refinement (not in the paper) zeroes the weight of members whose
// probed bottleneck cannot fit b. This bench quantifies what that refinement
// buys in AP and in saved retries.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyqos;
  util::CliFlags flags("ablation_wdb_masking",
                       "WD/D+B with and without infeasible-member masking");
  bench::add_run_flags(flags);
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }

  const sim::ExperimentModel model = sim::paper_model();
  const sim::RunControls controls = bench::run_controls(flags);
  const std::vector<double> lambdas = bench::lambda_grid(flags);

  util::TablePrinter table({"lambda", "AP eq.(12)", "AP masked", "tries eq.(12)",
                            "tries masked"});
  for (const double lambda : lambdas) {
    std::vector<std::string> row = {util::format_fixed(lambda, 1)};
    std::vector<double> ap;
    std::vector<double> tries;
    for (const bool mask : {false, true}) {
      sim::SimulationConfig config = model.base_config(lambda);
      sim::apply_run_controls(config, controls);
      config.algorithm = core::SelectionAlgorithm::kDistanceBandwidth;
      config.max_tries = 2;
      config.wdb_mask_infeasible = mask;
      sim::Simulation simulation(model.topology, config);
      const sim::SimulationResult result = simulation.run();
      ap.push_back(result.admission_probability);
      tries.push_back(result.average_attempts);
    }
    row.push_back(util::format_fixed(ap[0], 6));
    row.push_back(util::format_fixed(ap[1], 6));
    row.push_back(util::format_fixed(tries[0], 4));
    row.push_back(util::format_fixed(tries[1], 4));
    table.add_row(std::move(row));
    std::cerr << "  lambda " << lambda << " done\n";
  }
  std::cout << (flags.get_bool("csv") ? table.to_csv() : table.to_text());
  std::cout << "\n(Ablation A4: masking members whose probed bottleneck < b. Expect\n"
            << "slightly fewer tries at high load; AP changes little because a masked\n"
            << "member would have failed reservation anyway and R=2 usually recovers.)\n";
  return 0;
}
