// Ablation A10: admission under link failures.
//
// Section 3 assumes a fault-free network and claims the approach extends.
// This bench sweeps the per-link failure rate and reports AP and fault-drop
// counts for <WD/D+H,2> (fixed routes — outages blind whole routes until
// repair) against GDI (free path choice — it reroutes around any single
// failure). The gap is the availability price of fixed routes.
#include "bench/bench_common.h"
#include "src/sim/faults.h"

int main(int argc, char** argv) {
  using namespace anyqos;
  util::CliFlags flags("ablation_faults", "AP vs link failure rate, DAC vs GDI");
  bench::add_run_flags(flags);
  flags.add_double("lambda", 20.0, "arrival rate, requests/s");
  flags.add_double("repair", 300.0, "mean outage duration, seconds");
  flags.add_string("failure-rates", "0,0.00002,0.0001,0.0005",
                   "per-link failures per second (comma list; 0 = none)");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }
  const sim::ExperimentModel model = sim::paper_model();
  const sim::RunControls controls = bench::run_controls(flags);
  const double lambda = flags.get_double("lambda");

  util::TablePrinter table({"failures/link/s", "mean outages", "AP <WD/D+H,2>",
                            "dropped", "AP GDI", "dropped GDI"});
  for (const std::string& field : util::split(flags.get_string("failure-rates"), ',')) {
    const double rate = util::parse_double(field).value();
    std::vector<sim::LinkFault> faults;
    if (rate > 0.0) {
      faults = sim::random_fault_schedule(model.topology,
                                          controls.warmup_s + controls.measure_s, rate,
                                          flags.get_double("repair"), controls.seed + 17);
    }
    std::vector<std::string> row = {util::format_fixed(rate, 5),
                                    std::to_string(faults.size())};
    for (const bool gdi : {false, true}) {
      sim::SimulationConfig config = model.base_config(lambda);
      sim::apply_run_controls(config, controls);
      config.algorithm = core::SelectionAlgorithm::kDistanceHistory;
      config.max_tries = 2;
      config.use_gdi = gdi;
      config.faults = faults;
      sim::Simulation simulation(model.topology, config);
      const sim::SimulationResult result = simulation.run();
      row.push_back(util::format_fixed(result.admission_probability, 6));
      row.push_back(std::to_string(result.dropped));
    }
    table.add_row(std::move(row));
    std::cerr << "  rate " << rate << " done\n";
  }
  std::cout << (flags.get_bool("csv") ? table.to_csv() : table.to_text());
  std::cout << "\n(Ablation A10 at lambda = " << lambda
            << ": group diversity + retrials keep DAC admitting through outages,\n"
            << "and GDI's rerouting keeps its AP near 1 even at high failure rates.\n"
            << "Drop counts rise with the admitted population — established flows on\n"
            << "a failed link are always lost; admission control only protects new\n"
            << "arrivals. Restoring them would need re-routing of live flows, which\n"
            << "is outside the paper's model.)\n";
  return 0;
}
