// Shared plumbing for the figure/table benches: run-control flags, system
// sweep execution, and paper-style table printing.
//
// Every bench regenerates one table or figure of the paper on the Section 5.1
// experiment model. Absolute values depend on the MCI-like topology
// substitution (see DESIGN.md); the *shapes* are the reproduction target and
// are recorded against the paper in EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "src/sim/experiment.h"
#include "src/stats/accumulator.h"
#include "src/util/cli.h"
#include "src/util/require.h"
#include "src/util/strings.h"
#include "src/util/table.h"

namespace anyqos::bench {

/// Declares the flags every simulation bench shares.
inline void add_run_flags(util::CliFlags& flags) {
  flags.add_double("warmup", 2'000.0, "simulated seconds discarded as warm-up");
  flags.add_double("measure", 12'000.0, "simulated seconds measured");
  flags.add_unsigned("seed", 1, "master RNG seed (common random numbers)");
  flags.add_string("lambdas", "5,10,15,20,25,30,35,40,45,50",
                   "comma-separated arrival-rate grid");
  flags.add_bool("csv", false, "emit CSV instead of an aligned table");
  flags.add_unsigned("replications", 1,
                     "independent replications per point (mean reported; >1 "
                     "multiplies runtime)");
  flags.add_string("perf-out", "",
                   "write an engine performance record (events/s, wall time, "
                   "peak queue depth) as JSON to this file");
}

/// Parses --lambdas into a rate grid.
inline std::vector<double> lambda_grid(const util::CliFlags& flags) {
  std::vector<double> grid;
  for (const std::string& field : util::split(flags.get_string("lambdas"), ',')) {
    const auto value = util::parse_double(field);
    util::require(value.has_value() && *value > 0.0,
                  "--lambdas must be positive numbers, got '" + field + "'");
    grid.push_back(*value);
  }
  util::require(!grid.empty(), "--lambdas must not be empty");
  return grid;
}

inline sim::RunControls run_controls(const util::CliFlags& flags) {
  sim::RunControls controls;
  controls.warmup_s = flags.get_double("warmup");
  controls.measure_s = flags.get_double("measure");
  controls.seed = flags.get_unsigned("seed");
  return controls;
}

/// A column of a figure bench: one system configuration.
struct SystemColumn {
  std::string label;
  std::function<void(sim::SimulationConfig&)> configure;
};

/// Runs every system at every rate and prints a table whose rows are rates
/// and whose columns are systems, using `extract` to pull the plotted metric.
inline void run_figure(const util::CliFlags& flags, const std::string& metric_name,
                       const std::vector<SystemColumn>& systems,
                       const std::function<double(const sim::SimulationResult&)>& extract) {
  const sim::ExperimentModel model = sim::paper_model();
  const sim::RunControls controls = run_controls(flags);
  const std::vector<double> lambdas = lambda_grid(flags);

  std::vector<std::string> header = {"lambda"};
  for (const SystemColumn& system : systems) {
    header.push_back(system.label);
  }
  util::TablePrinter table(std::move(header));

  const std::size_t replications =
      static_cast<std::size_t>(flags.get_unsigned("replications"));
  util::require(replications >= 1, "--replications must be at least 1");
  std::uint64_t total_events = 0;
  std::size_t total_simulations = 0;
  std::size_t peak_queue_depth = 0;
  const auto wall_start = std::chrono::steady_clock::now();
  for (const double lambda : lambdas) {
    std::vector<std::string> row = {util::format_fixed(lambda, 1)};
    for (const SystemColumn& system : systems) {
      stats::Accumulator across_seeds;
      for (std::size_t r = 0; r < replications; ++r) {
        sim::SimulationConfig config = model.base_config(lambda);
        sim::apply_run_controls(config, controls);
        config.seed = controls.seed + r;
        system.configure(config);
        sim::Simulation simulation(model.topology, config);
        across_seeds.add(extract(simulation.run()));
        total_events += simulation.simulator().dispatched_events();
        peak_queue_depth =
            std::max(peak_queue_depth, simulation.simulator().peak_pending_events());
        ++total_simulations;
      }
      row.push_back(util::format_fixed(across_seeds.mean(), 6));
    }
    table.add_row(std::move(row));
    std::cerr << "  lambda " << lambda << " done\n";
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  std::cout << (flags.get_bool("csv") ? table.to_csv() : table.to_text());
  std::cout << "\n(" << metric_name << "; model: Section 5.1 on the MCI-like backbone, "
            << "warmup " << controls.warmup_s << " s, measured " << controls.measure_s
            << " s, seed " << controls.seed << ")\n";

  if (!flags.get_string("perf-out").empty()) {
    const double events_per_second =
        wall_seconds > 0.0 ? static_cast<double>(total_events) / wall_seconds : 0.0;
    std::ofstream perf(flags.get_string("perf-out"));
    util::require(perf.good(), "cannot open --perf-out file");
    perf << "{\"bench\":\"" << util::json_escape(flags.program())
         << "\",\"simulations\":" << total_simulations << ",\"events\":" << total_events
         << ",\"wall_seconds\":" << wall_seconds
         << ",\"events_per_second\":" << events_per_second
         << ",\"peak_queue_depth\":" << peak_queue_depth << "}\n";
    std::cerr << "perf record written to " << flags.get_string("perf-out") << "\n";
  }
}

}  // namespace anyqos::bench
