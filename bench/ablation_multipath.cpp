// Ablation A7: multiple fixed paths per member (future-work extension).
//
// GDI owes part of its Figure-6 lead to free path choice, not to global
// knowledge. Giving the DAC procedure k precomputed loopless paths per
// member (net::MultiPathRouteTable) isolates that factor: k = 1 is the
// paper's fixed-route world, larger k closes the path-diversity share of
// the GDI gap while staying a local, fixed-route procedure.
#include "bench/bench_common.h"
#include "src/core/multipath_admission.h"
#include "src/core/retrial.h"
#include "src/net/multipath.h"

namespace {

using namespace anyqos;

// A lean flow-level loop driving MultiPathAdmissionController directly (the
// Simulation class wires the single-path controllers).
double run_multipath(const sim::ExperimentModel& model, double lambda, std::size_t k,
                     std::size_t max_tries, const sim::RunControls& controls) {
  const core::AnycastGroup group("g", model.group_members);
  const net::MultiPathRouteTable routes(model.topology, model.group_members, k);
  net::BandwidthLedger ledger(model.topology, model.anycast_share);
  signaling::MessageCounter counter;
  signaling::ReservationProtocol rsvp(ledger, counter);

  des::SeedSequence seeds(controls.seed);
  des::Simulator simulator;
  sim::TrafficModel traffic;
  traffic.arrival_rate = lambda;
  traffic.mean_holding_s = model.mean_holding_s;
  traffic.flow_bandwidth_bps = model.flow_bandwidth_bps;
  traffic.sources = model.sources;
  sim::ArrivalProcess arrivals(traffic, seeds);
  des::RandomStream selection = seeds.stream("selection");

  std::vector<std::unique_ptr<core::MultiPathAdmissionController>> acs(
      model.topology.router_count());
  const auto ac_for = [&](net::NodeId s) -> core::MultiPathAdmissionController& {
    if (acs[s] == nullptr) {
      acs[s] = std::make_unique<core::MultiPathAdmissionController>(
          s, group, routes, rsvp, std::make_unique<core::CounterRetrialPolicy>(max_tries));
    }
    return *acs[s];
  };

  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  bool measuring = false;
  std::function<void()> arrival = [&] {
    simulator.schedule_in(arrivals.next_interarrival(), arrival);
    const net::NodeId source = arrivals.draw_source();
    const core::MultiPathDecision decision =
        ac_for(source).admit(traffic.flow_bandwidth_bps, selection);
    if (measuring) {
      ++offered;
      if (decision.admitted) {
        ++admitted;
      }
    }
    if (decision.admitted) {
      // Init-capture keeps the closure member mutable so des::Action can
      // relocate it with a move instead of a reallocating copy.
      simulator.schedule_in(arrivals.draw_holding(),
                            [&rsvp, route = decision.route, &traffic] {
                              rsvp.teardown(route, traffic.flow_bandwidth_bps);
                            });
    }
  };
  simulator.schedule_in(arrivals.next_interarrival(), arrival);
  simulator.run_until(controls.warmup_s);
  measuring = true;
  simulator.run_until(controls.warmup_s + controls.measure_s);
  return offered == 0 ? 0.0 : static_cast<double>(admitted) / static_cast<double>(offered);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags("ablation_multipath",
                       "k fixed paths per member: closing the GDI path-diversity gap");
  bench::add_run_flags(flags);
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }
  const sim::ExperimentModel model = sim::paper_model();
  const sim::RunControls controls = bench::run_controls(flags);
  const std::vector<double> lambdas = bench::lambda_grid(flags);

  util::TablePrinter table({"lambda", "k=1 R=2", "k=2 R=3", "k=3 R=4", "GDI"});
  for (const double lambda : lambdas) {
    std::vector<std::string> row = {util::format_fixed(lambda, 1)};
    row.push_back(util::format_fixed(run_multipath(model, lambda, 1, 2, controls), 6));
    row.push_back(util::format_fixed(run_multipath(model, lambda, 2, 3, controls), 6));
    row.push_back(util::format_fixed(run_multipath(model, lambda, 3, 4, controls), 6));
    sim::SimulationConfig config = model.base_config(lambda);
    sim::apply_run_controls(config, controls);
    config.use_gdi = true;
    sim::Simulation gdi(model.topology, config);
    row.push_back(util::format_fixed(gdi.run().admission_probability, 6));
    table.add_row(std::move(row));
    std::cerr << "  lambda " << lambda << " done\n";
  }
  std::cout << (flags.get_bool("csv") ? table.to_csv() : table.to_text());
  std::cout << "\n(Ablation A7: inverse-hops weighting over (member, path) pairs; more\n"
            << "alternatives per member approach GDI's AP without global state.)\n";
  return 0;
}
