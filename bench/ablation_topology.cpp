// Ablation A6: topology robustness of the Figure-6 ordering.
//
// Section 5.2 claims "the conclusions we draw here generally hold for many
// other cases we have evaluated". This bench re-runs the Figure-6 comparison
// on structurally different networks (grid, random Waxman, ring) with
// proportionally placed groups/sources, checking that the qualitative
// ordering SP <= ED <= WD/D+H <= WD/D+B <= GDI survives the topology swap.
#include "bench/bench_common.h"

namespace {

using namespace anyqos;

struct Scenario {
  std::string name;
  net::Topology topology;
  std::vector<net::NodeId> sources;
  std::vector<net::NodeId> members;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> list;
  {
    Scenario s;
    s.name = "mci";
    s.topology = net::topologies::mci_backbone();
    for (net::NodeId id = 1; id < s.topology.router_count(); id += 2) {
      s.sources.push_back(id);
    }
    s.members = {0, 4, 8, 12, 16};
    list.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "grid4x5";
    s.topology = net::topologies::grid(4, 5);
    s.sources = {1, 3, 6, 8, 11, 13, 16, 18};
    s.members = {0, 4, 9, 10, 19};
    list.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "waxman24";
    s.topology = net::topologies::waxman(24, 0.6, 0.5, 42);
    s.sources = {1, 3, 5, 7, 9, 11, 13, 15};
    s.members = {0, 6, 12, 18, 23};
    list.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "ring12";
    s.topology = net::topologies::ring(12);
    s.sources = {1, 3, 5, 7, 9, 11};
    s.members = {0, 4, 8};
    list.push_back(std::move(s));
  }
  return list;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags("ablation_topology",
                       "Figure-6 ordering across structurally different topologies");
  bench::add_run_flags(flags);
  flags.add_double("lambda", 35.0, "arrival rate used for every topology");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }
  const double lambda = flags.get_double("lambda");
  const sim::RunControls controls = bench::run_controls(flags);

  util::TablePrinter table(
      {"topology", "SP", "<ED,2>", "<WD/D+H,2>", "<WD/D+B,2>", "GDI", "ordering holds"});
  for (Scenario& scenario : scenarios()) {
    const auto run = [&](core::SelectionAlgorithm algorithm, std::size_t r, bool gdi) {
      sim::SimulationConfig config;
      config.traffic.arrival_rate = lambda;
      config.traffic.mean_holding_s = 180.0;
      config.traffic.flow_bandwidth_bps = 64'000.0;
      config.traffic.sources = scenario.sources;
      config.group_members = scenario.members;
      config.anycast_share = 0.2;
      config.algorithm = algorithm;
      config.max_tries = r;
      config.use_gdi = gdi;
      sim::apply_run_controls(config, controls);
      sim::Simulation simulation(scenario.topology, config);
      return simulation.run().admission_probability;
    };
    const double sp = run(core::SelectionAlgorithm::kShortestPath, 1, false);
    const double ed = run(core::SelectionAlgorithm::kEvenDistribution, 2, false);
    const double wdh = run(core::SelectionAlgorithm::kDistanceHistory, 2, false);
    const double wdb = run(core::SelectionAlgorithm::kDistanceBandwidth, 2, false);
    const double gdi = run(core::SelectionAlgorithm::kEvenDistribution, 2, true);
    const double slack = 0.02;
    const bool holds = sp <= ed + slack && ed <= wdh + slack && wdh <= wdb + slack &&
                       wdb <= gdi + slack;
    table.add_row({scenario.name, util::format_fixed(sp, 4), util::format_fixed(ed, 4),
                   util::format_fixed(wdh, 4), util::format_fixed(wdb, 4),
                   util::format_fixed(gdi, 4), holds ? "yes" : "NO"});
    std::cerr << "  " << scenario.name << " done\n";
  }
  std::cout << (flags.get_bool("csv") ? table.to_csv() : table.to_text());
  std::cout << "\n(Ablation A6 at lambda = " << lambda
            << ": the paper's \"conclusions generally hold for many other cases\"\n"
            << "claim, stress-tested across topology families with 0.02 slack between\n"
            << "adjacent systems. Expect the strict chain on mesh-like backbones (the\n"
            << "paper's setting); known honest deviations elsewhere: WD/D+H's history\n"
            << "herding can undercut ED on sparse random graphs, and on a ring SP's\n"
            << "concentration beats ED's long-detour spreading at heavy load. GDI\n"
            << "remains the upper bound everywhere.)\n";
  return 0;
}
