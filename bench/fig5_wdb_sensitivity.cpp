// Figure 5: admission probability of systems <WD/D+B,R>, R = 1..5, versus
// the flow arrival rate. The bandwidth-informed selector has the weakest
// R-sensitivity of the three (Section 5.2.1 observation 3: systems with
// higher AP gain less from retries).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyqos;
  util::CliFlags flags("fig5_wdb_sensitivity",
                       "Figure 5: AP of <WD/D+B,R> vs arrival rate, R = 1..5");
  bench::add_run_flags(flags);
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }

  std::vector<bench::SystemColumn> systems;
  for (std::size_t r = 1; r <= 5; ++r) {
    systems.push_back(
        {"<WD/D+B," + std::to_string(r) + ">", [r](sim::SimulationConfig& config) {
           config.algorithm = core::SelectionAlgorithm::kDistanceBandwidth;
           config.max_tries = r;
         }});
  }
  bench::run_figure(flags, "Figure 5: admission probability of <WD/D+B,R>", systems,
                    [](const sim::SimulationResult& r) { return r.admission_probability; });
  return 0;
}
