// Figure 4: admission probability of systems <WD/D+H,R>, R = 1..5, versus
// the flow arrival rate. Same shape as Figure 3 but at higher AP levels and
// with weaker R-sensitivity (informed selection makes fewer first-try
// mistakes). The history discount alpha is unstated in the paper; we default
// to 0.5 (see DESIGN.md and bench/ablation_alpha).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyqos;
  util::CliFlags flags("fig4_wdh_sensitivity",
                       "Figure 4: AP of <WD/D+H,R> vs arrival rate, R = 1..5");
  bench::add_run_flags(flags);
  flags.add_double("alpha", 0.5, "history discount alpha in [0,1]");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }
  const double alpha = flags.get_double("alpha");

  std::vector<bench::SystemColumn> systems;
  for (std::size_t r = 1; r <= 5; ++r) {
    systems.push_back(
        {"<WD/D+H," + std::to_string(r) + ">", [r, alpha](sim::SimulationConfig& config) {
           config.algorithm = core::SelectionAlgorithm::kDistanceHistory;
           config.max_tries = r;
           config.alpha = alpha;
         }});
  }
  bench::run_figure(flags, "Figure 4: admission probability of <WD/D+H,R>", systems,
                    [](const sim::SimulationResult& r) { return r.admission_probability; });
  return 0;
}
