// Figure 7: average number of retrials of <ED,2>, <WD/D+H,2> and <WD/D+B,2>
// as a function of the flow arrival rate. Reported as average destinations
// tried per request (1.0 = always first try). Reproduction target: ED worst
// (most tries), WD/D+B best, WD/D+H between — Section 5.2.2 observation 3.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyqos;
  util::CliFlags flags("fig7_retrials",
                       "Figure 7: average number of tries per request vs arrival rate");
  bench::add_run_flags(flags);
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }

  const std::vector<bench::SystemColumn> systems = {
      {"<ED,2>",
       [](sim::SimulationConfig& config) {
         config.algorithm = core::SelectionAlgorithm::kEvenDistribution;
         config.max_tries = 2;
       }},
      {"<WD/D+H,2>",
       [](sim::SimulationConfig& config) {
         config.algorithm = core::SelectionAlgorithm::kDistanceHistory;
         config.max_tries = 2;
       }},
      {"<WD/D+B,2>",
       [](sim::SimulationConfig& config) {
         config.algorithm = core::SelectionAlgorithm::kDistanceBandwidth;
         config.max_tries = 2;
       }},
  };
  bench::run_figure(flags, "Figure 7: average destinations tried per request", systems,
                    [](const sim::SimulationResult& r) { return r.average_attempts; });
  return 0;
}
