// Figure 6: admission probabilities of <ED,2>, <WD/D+H,2>, <WD/D+B,2> against
// the SP and GDI baselines, versus the flow arrival rate. The reproduction
// target is the ordering GDI >= WD/D+B >= WD/D+H >= ED >= SP at moderate and
// high load, with all systems ~1 at very low rates and the DAC systems close
// to GDI throughout.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyqos;
  util::CliFlags flags("fig6_comparison",
                       "Figure 6: AP of the three <A,2> systems vs SP and GDI");
  bench::add_run_flags(flags);
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }

  const std::vector<bench::SystemColumn> systems = {
      {"SP",
       [](sim::SimulationConfig& config) {
         config.algorithm = core::SelectionAlgorithm::kShortestPath;
         config.max_tries = 1;
       }},
      {"<ED,2>",
       [](sim::SimulationConfig& config) {
         config.algorithm = core::SelectionAlgorithm::kEvenDistribution;
         config.max_tries = 2;
       }},
      {"<WD/D+H,2>",
       [](sim::SimulationConfig& config) {
         config.algorithm = core::SelectionAlgorithm::kDistanceHistory;
         config.max_tries = 2;
       }},
      {"<WD/D+B,2>",
       [](sim::SimulationConfig& config) {
         config.algorithm = core::SelectionAlgorithm::kDistanceBandwidth;
         config.max_tries = 2;
       }},
      {"GDI", [](sim::SimulationConfig& config) { config.use_gdi = true; }},
  };
  bench::run_figure(flags, "Figure 6: admission probability comparison", systems,
                    [](const sim::SimulationResult& r) { return r.admission_probability; });
  return 0;
}
