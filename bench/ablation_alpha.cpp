// Ablation A1: sensitivity of <WD/D+H,2> to the history discount alpha.
//
// The paper defines alpha in [0,1] (eq. 8-9: 0 = maximal history impact,
// 1 = none) but never states the value used in its experiments. This bench
// sweeps alpha at several loads to show the headline conclusions do not hinge
// on the choice — and that alpha = 1 degrades WD/D+H toward pure
// distance-weighting, while small alpha reacts fastest.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyqos;
  util::CliFlags flags("ablation_alpha", "alpha sweep for <WD/D+H,2>");
  bench::add_run_flags(flags);
  flags.add_string("alphas", "0,0.25,0.5,0.75,1", "comma-separated alpha grid");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }

  std::vector<double> alphas;
  for (const std::string& field : util::split(flags.get_string("alphas"), ',')) {
    const auto value = util::parse_double(field);
    util::require(value.has_value() && *value >= 0.0 && *value <= 1.0,
                  "--alphas must be numbers in [0,1]");
    alphas.push_back(*value);
  }

  std::vector<bench::SystemColumn> systems;
  for (const double alpha : alphas) {
    systems.push_back({"alpha=" + util::format_fixed(alpha, 2),
                       [alpha](sim::SimulationConfig& config) {
                         config.algorithm = core::SelectionAlgorithm::kDistanceHistory;
                         config.max_tries = 2;
                         config.alpha = alpha;
                       }});
  }
  bench::run_figure(flags, "Ablation A1: AP of <WD/D+H,2> across alpha", systems,
                    [](const sim::SimulationResult& r) { return r.admission_probability; });
  return 0;
}
