// Ablation A2: how the anycast group size K shapes admission probability.
//
// The paper fixes K = 5 (members at routers 0/4/8/12/16). This bench varies
// K by truncating/extending that placement and runs <ED,2> and <WD/D+H,2>:
// more members = more path diversity = higher AP at equal demand, with
// diminishing returns — quantifying the value of each additional mirror.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyqos;
  util::CliFlags flags("ablation_group_size", "group-size sweep for ED and WD/D+H");
  bench::add_run_flags(flags);
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }

  // Nested placements: K=1 {8}, K=2 {8,16}, K=3 {0,8,16}, K=5 paper's,
  // K=7 adds two more spread routers.
  const std::vector<std::vector<net::NodeId>> groups = {
      {8}, {8, 16}, {0, 8, 16}, {0, 4, 8, 12, 16}, {0, 4, 8, 12, 16, 2, 18}};

  const sim::ExperimentModel model = sim::paper_model();
  const sim::RunControls controls = bench::run_controls(flags);
  const std::vector<double> lambdas = bench::lambda_grid(flags);

  std::vector<std::string> header = {"lambda"};
  for (const auto& members : groups) {
    header.push_back("ED K=" + std::to_string(members.size()));
    header.push_back("WDH K=" + std::to_string(members.size()));
  }
  util::TablePrinter table(std::move(header));

  for (const double lambda : lambdas) {
    std::vector<std::string> row = {util::format_fixed(lambda, 1)};
    for (const auto& members : groups) {
      for (const auto algorithm : {core::SelectionAlgorithm::kEvenDistribution,
                                   core::SelectionAlgorithm::kDistanceHistory}) {
        sim::SimulationConfig config = model.base_config(lambda);
        sim::apply_run_controls(config, controls);
        config.group_members = members;
        config.algorithm = algorithm;
        config.max_tries = std::min<std::size_t>(2, members.size());
        sim::Simulation simulation(model.topology, config);
        row.push_back(util::format_fixed(simulation.run().admission_probability, 4));
      }
    }
    table.add_row(std::move(row));
    std::cerr << "  lambda " << lambda << " done\n";
  }
  std::cout << (flags.get_bool("csv") ? table.to_csv() : table.to_text());
  std::cout << "\n(Ablation A2: AP vs anycast group size K; K=1 is plain unicast\n"
            << "admission control — the anycast gain is the gap above that column.)\n";
  return 0;
}
