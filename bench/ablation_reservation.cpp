// Ablation A3: sensitivity to the anycast bandwidth share.
//
// Section 5.1 reserves 20% of each 100 Mbit/s link for anycast flows. This
// bench sweeps that share for <WD/D+H,2>: AP curves shift horizontally in
// proportion to the share (capacity scaling), a useful sanity check that the
// saturation points in Figures 3-6 are pure capacity effects.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace anyqos;
  util::CliFlags flags("ablation_reservation", "anycast-share sweep for <WD/D+H,2>");
  bench::add_run_flags(flags);
  flags.add_string("shares", "0.1,0.2,0.3,0.5", "comma-separated anycast shares in (0,1]");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.help_text();
    return 0;
  }

  std::vector<double> shares;
  for (const std::string& field : util::split(flags.get_string("shares"), ',')) {
    const auto value = util::parse_double(field);
    util::require(value.has_value() && *value > 0.0 && *value <= 1.0,
                  "--shares must be numbers in (0,1]");
    shares.push_back(*value);
  }

  std::vector<bench::SystemColumn> systems;
  for (const double share : shares) {
    systems.push_back({"share=" + util::format_fixed(share, 2),
                       [share](sim::SimulationConfig& config) {
                         config.algorithm = core::SelectionAlgorithm::kDistanceHistory;
                         config.max_tries = 2;
                         config.anycast_share = share;
                       }});
  }
  bench::run_figure(flags, "Ablation A3: AP of <WD/D+H,2> across anycast shares", systems,
                    [](const sim::SimulationResult& r) { return r.admission_probability; });
  return 0;
}
