// Engine microbenchmarks (google-benchmark): the per-operation costs behind
// the simulation — event queue churn, RNG draws, routing, reservation walks,
// selector decisions, and whole-admission latency. These quantify the
// "runtime overhead" axis the paper discusses qualitatively: WD/D+B's probe
// cost shows up directly in the admission benchmarks.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/analysis/ap_analysis.h"
#include "src/core/admission.h"
#include "src/core/retrial.h"
#include "src/des/simulator.h"
#include "src/net/topologies.h"
#include "src/obs/kernel_stats.h"
#include "src/sim/experiment.h"

namespace {

using namespace anyqos;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  des::EventQueue queue;
  des::RandomStream rng(1);
  // Keep a standing population of events; each iteration pops one, pushes one.
  for (int i = 0; i < 1024; ++i) {
    queue.schedule(rng.uniform01(), [] {});
  }
  double t = 1.0;
  for (auto _ : state) {
    auto fired = queue.pop();
    benchmark::DoNotOptimize(fired.time);
    queue.schedule(t, [] {});
    t += 1e-6;
  }
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  // Tombstone churn: every iteration schedules two events, cancels one, and
  // pops one — half of all heap entries become lazy-cancel garbage the pop
  // path must walk over. Prices the cancellation scheme the soft-state
  // refresh and orphan timers lean on.
  des::EventQueue queue;
  des::RandomStream rng(7);
  std::vector<des::EventHandle> victims;
  for (int i = 0; i < 1024; ++i) {
    queue.schedule(rng.uniform01(), [] {});
    victims.push_back(queue.schedule(rng.uniform01(), [] {}));
  }
  double t = 1.0;
  std::size_t next_victim = 0;
  for (auto _ : state) {
    auto fired = queue.pop();
    benchmark::DoNotOptimize(fired.time);
    queue.cancel(victims[next_victim]);
    queue.schedule(t, [] {});
    victims[next_victim] = queue.schedule(t, [] {});
    next_victim = (next_victim + 1) % victims.size();
    t += 1e-6;
  }
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_EventQueueSameTimestampBurst(benchmark::State& state) {
  // FIFO tie-break cost: drain a burst of events scheduled at one identical
  // timestamp (the shape fault handlers and reconvergence sweeps produce).
  const int burst = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    des::EventQueue queue;
    for (int i = 0; i < burst; ++i) {
      queue.schedule(1.0, [] {});
    }
    state.ResumeTiming();
    while (!queue.empty()) {
      auto fired = queue.pop();
      benchmark::DoNotOptimize(fired.id);
    }
  }
  state.SetItemsProcessed(state.iterations() * burst);
}
BENCHMARK(BM_EventQueueSameTimestampBurst)->Arg(16)->Arg(256);

void BM_SimulatorEventChain(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulator sim;
    int remaining = 1000;
    std::function<void()> hop = [&] {
      if (--remaining > 0) {
        sim.schedule_in(1.0, hop);
      }
    };
    sim.schedule_in(1.0, hop);
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventChain);

void BM_SimulatorEventChainAttached(benchmark::State& state) {
  // The same chain with the kernel telemetry sink attached — a worst case:
  // the events do nothing, so this ratio is the sink's cost against a bare
  // dispatch. The CI overhead budget is held on the realistic pair
  // (BM_SimulatedSecondKernelStats vs BM_SimulatedSecond); this one exists
  // to see sink-cost drift early, before the model hides it.
  for (auto _ : state) {
    des::Simulator sim;
    obs::KernelStats stats;
    stats.attach(sim);
    const des::EventCategory cat = sim.category("bench.chain");
    int remaining = 1000;
    std::function<void()> hop = [&] {
      if (--remaining > 0) {
        sim.schedule_in(1.0, cat, hop);
      }
    };
    sim.schedule_in(1.0, cat, hop);
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventChainAttached);

void BM_RandomExponential(benchmark::State& state) {
  des::RandomStream rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.exponential(180.0));
  }
}
BENCHMARK(BM_RandomExponential);

void BM_WeightedIndexK5(benchmark::State& state) {
  des::RandomStream rng(3);
  const std::vector<double> weights = {0.4, 0.25, 0.15, 0.12, 0.08};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.weighted_index(weights));
  }
}
BENCHMARK(BM_WeightedIndexK5);

void BM_ShortestPathMci(benchmark::State& state) {
  const net::Topology topo = net::topologies::mci_backbone();
  net::NodeId s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::shortest_path(topo, s, 16));
    s = (s + 1) % 19;
  }
}
BENCHMARK(BM_ShortestPathMci);

void BM_RouteTableConstructionMci(benchmark::State& state) {
  const net::Topology topo = net::topologies::mci_backbone();
  for (auto _ : state) {
    net::RouteTable table(topo, {0, 4, 8, 12, 16});
    benchmark::DoNotOptimize(table.destination_count());
  }
}
BENCHMARK(BM_RouteTableConstructionMci);

void BM_ReserveReleaseCycle(benchmark::State& state) {
  const net::Topology topo = net::topologies::mci_backbone();
  net::BandwidthLedger ledger(topo, 0.2);
  const net::RouteTable table(topo, {16});
  const net::Path& route = table.route(1, 0);
  signaling::MessageCounter counter;
  signaling::ReservationProtocol rsvp(ledger, counter);
  for (auto _ : state) {
    auto result = rsvp.reserve(route, 64'000.0);
    benchmark::DoNotOptimize(result.admitted);
    rsvp.teardown(route, 64'000.0);
  }
}
BENCHMARK(BM_ReserveReleaseCycle);

void admission_bench(benchmark::State& state, core::SelectionAlgorithm algorithm) {
  const net::Topology topo = net::topologies::mci_backbone();
  net::BandwidthLedger ledger(topo, 0.2);
  const core::AnycastGroup group("g", {0, 4, 8, 12, 16});
  const net::RouteTable routes(topo, group.members());
  signaling::MessageCounter counter;
  signaling::ReservationProtocol rsvp(ledger, counter);
  signaling::ProbeService probe(ledger, counter);
  core::SelectorEnvironment env;
  env.source = 9;
  env.group = &group;
  env.routes = &routes;
  env.probe = &probe;
  env.flow_bandwidth = 64'000.0;
  core::AdmissionController ac(9, group, routes, rsvp, core::make_selector(algorithm, env),
                               std::make_unique<core::CounterRetrialPolicy>(2));
  des::RandomStream rng(5);
  core::FlowRequest request;
  request.source = 9;
  request.bandwidth_bps = 64'000.0;
  for (auto _ : state) {
    const auto decision = ac.admit(request, rng);
    benchmark::DoNotOptimize(decision.admitted);
    if (decision.admitted) {
      ac.release(decision, request.bandwidth_bps);
    }
  }
}

void BM_AdmissionEd(benchmark::State& state) {
  admission_bench(state, core::SelectionAlgorithm::kEvenDistribution);
}
BENCHMARK(BM_AdmissionEd);

void BM_AdmissionWdh(benchmark::State& state) {
  admission_bench(state, core::SelectionAlgorithm::kDistanceHistory);
}
BENCHMARK(BM_AdmissionWdh);

void BM_AdmissionWdb(benchmark::State& state) {
  // Expect this one visibly slower: every selection probes all five routes.
  admission_bench(state, core::SelectionAlgorithm::kDistanceBandwidth);
}
BENCHMARK(BM_AdmissionWdb);

void BM_GdiOracleAdmission(benchmark::State& state) {
  const net::Topology topo = net::topologies::mci_backbone();
  net::BandwidthLedger ledger(topo, 0.2);
  const core::AnycastGroup group("g", {0, 4, 8, 12, 16});
  core::GlobalAdmissionOracle oracle(topo, ledger, group);
  core::FlowRequest request;
  request.source = 9;
  request.bandwidth_bps = 64'000.0;
  for (auto _ : state) {
    const auto decision = oracle.admit(request);
    benchmark::DoNotOptimize(decision.admitted);
    if (decision.admitted) {
      oracle.release(decision, request.bandwidth_bps);
    }
  }
}
BENCHMARK(BM_GdiOracleAdmission);

void BM_FixedPointEd1(benchmark::State& state) {
  const sim::ExperimentModel model = sim::paper_model();
  analysis::AnalyticModel analytic;
  analytic.topology = &model.topology;
  analytic.sources = model.sources;
  analytic.members = model.group_members;
  analytic.lambda_total = 35.0;
  for (auto _ : state) {
    const auto result = analysis::analyze_ed1(analytic, analysis::FixedPointOptions{});
    benchmark::DoNotOptimize(result.admission_probability);
  }
}
BENCHMARK(BM_FixedPointEd1);

void BM_SimulatedSecond(benchmark::State& state) {
  // Cost of one simulated second of the full paper model at lambda = 35.
  const sim::ExperimentModel model = sim::paper_model();
  for (auto _ : state) {
    sim::SimulationConfig config = model.base_config(35.0);
    config.algorithm = core::SelectionAlgorithm::kDistanceHistory;
    config.warmup_s = 0.0;
    config.measure_s = 50.0;
    config.seed = 11;
    sim::Simulation simulation(model.topology, config);
    benchmark::DoNotOptimize(simulation.run().offered);
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_SimulatedSecond)->Unit(benchmark::kMillisecond);

void BM_SimulatedSecondKernelStats(benchmark::State& state) {
  // The same simulated second with kernel telemetry attached — the
  // realistic overhead measurement, where real event work amortizes the
  // sink's counter bumps. compare-bench.py --attached-overhead holds the
  // ratio of this to BM_SimulatedSecond at <= 5% in CI.
  const sim::ExperimentModel model = sim::paper_model();
  for (auto _ : state) {
    sim::SimulationConfig config = model.base_config(35.0);
    config.algorithm = core::SelectionAlgorithm::kDistanceHistory;
    config.warmup_s = 0.0;
    config.measure_s = 50.0;
    config.seed = 11;
    obs::KernelStats stats;
    config.kernel_stats = &stats;
    sim::Simulation simulation(model.topology, config);
    benchmark::DoNotOptimize(simulation.run().offered);
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_SimulatedSecondKernelStats)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
