// detlint: hot-path
// Event-driven simulation kernel.
//
// Replaces the paper's Mesquite CSIM (process-oriented, commercial) with an
// event-driven core: a virtual clock plus an event queue. Model code
// schedules closures at absolute or relative virtual times; `run` dispatches
// them in timestamp order. Single-threaded by design — determinism matters
// more than parallelism at this model size.
//
// A Simulator instance is fully self-contained: it owns its clock, its
// pending-event set, and its randomness (a SeedSequence every model stream
// derives from). Nothing in the kernel reads global state or the host
// clock, so two instances at the same seed replay byte-identically and many
// instances can run side by side — the isolation contract conservative
// parallel DES builds on (DESIGN.md §12).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "src/des/category.h"
#include "src/des/event_queue.h"
#include "src/des/kernel_sink.h"
#include "src/des/random.h"

namespace anyqos::des {

/// The simulation kernel: owns the virtual clock, the pending-event set, and
/// the per-instance seed universe.
class Simulator {
 public:
  using Action = EventQueue::Action;

  /// `seed` is this instance's RNG master seed: every stochastic component
  /// of a model must draw from a stream derived via seeds()/stream(), never
  /// from an engine it constructed itself (DESIGN.md §12, rule 2).
  explicit Simulator(std::uint64_t seed = 0) : seeds_(seed) {}

  /// Current virtual time (seconds). Starts at 0.
  [[nodiscard]] double now() const { return now_; }

  /// The per-instance seed universe model streams derive from.
  [[nodiscard]] const SeedSequence& seeds() const { return seeds_; }
  /// A fresh named stream from this instance's seed universe.
  [[nodiscard]] RandomStream stream(std::string_view name) const {
    return seeds_.stream(name);
  }

  /// Schedules `action` at absolute virtual time `time` (>= now()).
  EventHandle schedule_at(double time, Action action) {
    return schedule_at(time, EventCategory{}, std::move(action));
  }
  /// Schedules `action` `delay` seconds from now (delay >= 0).
  EventHandle schedule_in(double delay, Action action) {
    return schedule_in(delay, EventCategory{}, std::move(action));
  }
  /// Tagged variants: `category` names the event class for an attached
  /// KernelSink (from this instance's category(name)). With no sink the tag
  /// is dead weight in one register — zero cost on the unattached path.
  EventHandle schedule_at(double time, EventCategory category, Action action);
  EventHandle schedule_in(double delay, EventCategory category, Action action);
  /// Cancels a pending event; returns false if it already fired/cancelled.
  bool cancel(EventHandle handle);

  /// Interns `name` in this instance's category table and returns its tag.
  /// Repeated interning of the same name returns the same id; ids are
  /// assigned in first-intern order, which deterministic model wiring fixes.
  EventCategory category(std::string_view name);
  /// Category names indexed by EventCategory::id. Index 0 is the reserved
  /// "uncategorized" bucket untagged schedule calls land in.
  [[nodiscard]] const std::vector<std::string>& category_names() const {
    return category_names_;
  }

  /// Attaches (nullptr detaches) a kernel telemetry sink. Attach before the
  /// first schedule call — a sink only sees operations from attach onward.
  /// Unattached, every schedule/fire/cancel pays one null-pointer test.
  void set_kernel_sink(KernelSink* sink) { kernel_sink_ = sink; }
  [[nodiscard]] KernelSink* kernel_sink() const { return kernel_sink_; }

  /// Dispatches events in timestamp order until the queue is empty or the
  /// next event is strictly after `until`. The clock ends at
  /// min(until, last event time) — or `until` exactly when events remain.
  /// Returns the number of events dispatched.
  std::size_t run_until(double until);

  /// Runs until the event queue is empty. Returns events dispatched.
  std::size_t run() { return run_until(std::numeric_limits<double>::infinity()); }

  /// run_until with an event budget: dispatches at most `max_events` events
  /// (0 = unlimited, identical to run_until). A drain that would otherwise
  /// spin forever — a self-rescheduling timer that never stops, a
  /// ping-ponging pair — exhausts the budget and returns with the remaining
  /// events still queued, so callers can diagnose instead of hang
  /// (sim::Simulation's drain watchdog). Unlike run_until, an emptied queue
  /// leaves the clock at the last dispatched event rather than advancing to
  /// `until`: a bounded drain that completes ends at quiescence, exactly
  /// like run(). Off the hot path by construction: bounded runs are for
  /// drains, run_until stays branch-free.
  std::size_t run_bounded(double until, std::size_t max_events);

  /// Stops the current run_until loop after the in-flight event completes.
  /// Pending events stay queued; a later run_until resumes them.
  void stop() { stop_requested_ = true; }

  /// Live events still queued.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  /// Total events dispatched over the simulator's lifetime.
  [[nodiscard]] std::uint64_t dispatched_events() const { return dispatched_; }
  /// High-water mark of the pending-event set over the simulator's lifetime
  /// (engine profiling: how deep the calendar actually got).
  [[nodiscard]] std::size_t peak_pending_events() const { return peak_pending_; }
  /// Cumulative tombstoned heap entries the queue skipped (lazy cancels).
  [[nodiscard]] std::uint64_t tombstones_popped() const {
    return queue_.tombstones_popped();
  }

 private:
  SeedSequence seeds_;
  EventQueue queue_;
  double now_ = 0.0;
  std::uint64_t dispatched_ = 0;
  std::size_t peak_pending_ = 0;
  bool stop_requested_ = false;
  KernelSink* kernel_sink_ = nullptr;
  std::vector<std::string> category_names_{std::string("uncategorized")};
};

}  // namespace anyqos::des
