// Event-driven simulation kernel.
//
// Replaces the paper's Mesquite CSIM (process-oriented, commercial) with an
// event-driven core: a virtual clock plus an event queue. Model code
// schedules closures at absolute or relative virtual times; `run` dispatches
// them in timestamp order. Single-threaded by design — determinism matters
// more than parallelism at this model size.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "src/des/event_queue.h"

namespace anyqos::des {

/// The simulation kernel: owns the virtual clock and the pending-event set.
class Simulator {
 public:
  using Action = EventQueue::Action;

  /// Current virtual time (seconds). Starts at 0.
  [[nodiscard]] double now() const { return now_; }

  /// Schedules `action` at absolute virtual time `time` (>= now()).
  EventHandle schedule_at(double time, Action action);
  /// Schedules `action` `delay` seconds from now (delay >= 0).
  EventHandle schedule_in(double delay, Action action);
  /// Cancels a pending event; returns false if it already fired/cancelled.
  bool cancel(EventHandle handle);

  /// Dispatches events in timestamp order until the queue is empty or the
  /// next event is strictly after `until`. The clock ends at
  /// min(until, last event time) — or `until` exactly when events remain.
  /// Returns the number of events dispatched.
  std::size_t run_until(double until);

  /// Runs until the event queue is empty. Returns events dispatched.
  std::size_t run() { return run_until(std::numeric_limits<double>::infinity()); }

  /// Stops the current run_until loop after the in-flight event completes.
  /// Pending events stay queued; a later run_until resumes them.
  void stop() { stop_requested_ = true; }

  /// Live events still queued.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  /// Total events dispatched over the simulator's lifetime.
  [[nodiscard]] std::uint64_t dispatched_events() const { return dispatched_; }
  /// High-water mark of the pending-event set over the simulator's lifetime
  /// (engine profiling: how deep the calendar actually got).
  [[nodiscard]] std::size_t peak_pending_events() const { return peak_pending_; }

 private:
  EventQueue queue_;
  double now_ = 0.0;
  std::uint64_t dispatched_ = 0;
  std::size_t peak_pending_ = 0;
  bool stop_requested_ = false;
};

}  // namespace anyqos::des
