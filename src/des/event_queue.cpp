#include "src/des/event_queue.h"

#include "src/util/require.h"

namespace anyqos::des {

EventHandle EventQueue::schedule(double time, Action action, EventCategory category,
                                 double scheduled_at) {
  util::require(static_cast<bool>(action), "cannot schedule an empty action");
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{time, next_sequence_++, id});
  pending_.emplace(id, Stored{std::move(action), category, scheduled_at});
  ++live_;
  return EventHandle{id};
}

bool EventQueue::cancel(EventHandle handle) {
  EventCategory ignored;
  return cancel(handle, ignored);
}

bool EventQueue::cancel(EventHandle handle, EventCategory& category) {
  if (!handle.valid()) {
    return false;
  }
  const auto it = pending_.find(handle.id);
  if (it == pending_.end()) {
    return false;
  }
  category = it->second.category;
  pending_.erase(it);
  --live_;
  return true;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && pending_.find(heap_.top().id) == pending_.end()) {
    heap_.pop();
    ++tombstones_popped_;
  }
}

double EventQueue::next_time() const {
  util::require(!empty(), "next_time on an empty event queue");
  drop_cancelled();
  util::ensure(!heap_.empty(), "live count positive but heap exhausted");
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  util::require(!empty(), "pop on an empty event queue");
  drop_cancelled();
  util::ensure(!heap_.empty(), "live count positive but heap exhausted");
  const Entry top = heap_.top();
  heap_.pop();
  const auto it = pending_.find(top.id);
  util::ensure(it != pending_.end(), "live heap top has no pending action");
  Fired fired{top.time, top.id, std::move(it->second.action), it->second.category,
              it->second.scheduled_at};
  pending_.erase(it);
  --live_;
  return fired;
}

}  // namespace anyqos::des
