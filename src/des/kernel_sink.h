// detlint: hot-path
// Observer interface for kernel event telemetry.
#pragma once

#include "src/des/category.h"

namespace anyqos::des {

/// Kernel telemetry hook. When a sink is attached the simulator reports
/// every schedule / fire / cancel; with no sink the cost is one null-pointer
/// test per operation (the attach-gating contract: unattached runs behave
/// and perform exactly as before). The interface is a plain virtual class —
/// no std::function on the hot path (DESIGN.md §12, rule 5).
///
/// The callbacks are stateless by design: the event queue carries each
/// event's category and schedule-time through to fire/cancel, so a sink
/// needs no per-event shadow state — every call hands it everything a
/// tally or histogram wants. All arguments are virtual-clock values, so an
/// implementation that derives its statistics from them alone keeps
/// attached runs byte-identical at equal seed.
class KernelSink {
 public:
  virtual ~KernelSink() = default;

  /// Event of class `category` scheduled at virtual time `now`, due at
  /// virtual time `when` (when >= now; when - now is the scheduling horizon).
  virtual void on_scheduled(EventCategory category, double now, double when) = 0;

  /// Event popped for dispatch at virtual time `now` (its due time);
  /// `scheduled_at` is the clock value when it was scheduled, so
  /// now - scheduled_at is its time in the queue.
  virtual void on_fired(EventCategory category, double scheduled_at, double now) = 0;

  /// Event cancelled while still pending, at virtual time `now`.
  virtual void on_cancelled(EventCategory category, double now) = 0;

 protected:
  KernelSink() = default;
  KernelSink(const KernelSink&) = default;
  KernelSink& operator=(const KernelSink&) = default;
};

}  // namespace anyqos::des
