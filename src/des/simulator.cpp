#include "src/des/simulator.h"

#include <algorithm>
#include <cmath>

#include "src/util/require.h"

namespace anyqos::des {

EventHandle Simulator::schedule_at(double time, Action action) {
  util::require(!std::isnan(time), "event time must not be NaN");
  util::require(time >= now_, "cannot schedule an event in the past");
  EventHandle handle = queue_.schedule(time, std::move(action));
  peak_pending_ = std::max(peak_pending_, queue_.size());
  return handle;
}

EventHandle Simulator::schedule_in(double delay, Action action) {
  util::require(!std::isnan(delay) && delay >= 0.0, "event delay must be non-negative");
  EventHandle handle = queue_.schedule(now_ + delay, std::move(action));
  peak_pending_ = std::max(peak_pending_, queue_.size());
  return handle;
}

bool Simulator::cancel(EventHandle handle) { return queue_.cancel(handle); }

std::size_t Simulator::run_until(double until) {
  util::require(until >= now_, "run_until target precedes current time");
  stop_requested_ = false;
  std::size_t fired = 0;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > until) {
      now_ = until;
      return fired;
    }
    EventQueue::Fired event = queue_.pop();
    now_ = event.time;
    event.action();
    ++dispatched_;
    ++fired;
  }
  if (queue_.empty() && std::isfinite(until)) {
    now_ = until;
  }
  return fired;
}

}  // namespace anyqos::des
