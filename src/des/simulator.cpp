#include "src/des/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/require.h"

namespace anyqos::des {

EventHandle Simulator::schedule_at(double time, EventCategory category, Action action) {
  util::require(!std::isnan(time), "event time must not be NaN");
  util::require(time >= now_, "cannot schedule an event in the past");
  EventHandle handle = queue_.schedule(time, std::move(action), category, now_);
  peak_pending_ = std::max(peak_pending_, queue_.size());
  if (kernel_sink_ != nullptr) {
    kernel_sink_->on_scheduled(category, now_, time);
  }
  return handle;
}

EventHandle Simulator::schedule_in(double delay, EventCategory category, Action action) {
  util::require(!std::isnan(delay) && delay >= 0.0, "event delay must be non-negative");
  const double when = now_ + delay;
  EventHandle handle = queue_.schedule(when, std::move(action), category, now_);
  peak_pending_ = std::max(peak_pending_, queue_.size());
  if (kernel_sink_ != nullptr) {
    kernel_sink_->on_scheduled(category, now_, when);
  }
  return handle;
}

bool Simulator::cancel(EventHandle handle) {
  EventCategory category;
  const bool cancelled = queue_.cancel(handle, category);
  if (cancelled && kernel_sink_ != nullptr) {
    kernel_sink_->on_cancelled(category, now_);
  }
  return cancelled;
}

EventCategory Simulator::category(std::string_view name) {
  util::require(!name.empty(), "category name must be non-empty");
  for (std::size_t i = 0; i < category_names_.size(); ++i) {
    if (category_names_[i] == name) {
      return EventCategory{static_cast<std::uint16_t>(i)};
    }
  }
  util::require(category_names_.size() <= std::numeric_limits<std::uint16_t>::max(),
                "category table full");
  category_names_.emplace_back(name);
  return EventCategory{static_cast<std::uint16_t>(category_names_.size() - 1)};
}

std::size_t Simulator::run_until(double until) {
  util::require(until >= now_, "run_until target precedes current time");
  stop_requested_ = false;
  std::size_t fired = 0;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > until) {
      now_ = until;
      return fired;
    }
    EventQueue::Fired event = queue_.pop();
    now_ = event.time;
    if (kernel_sink_ != nullptr) {
      kernel_sink_->on_fired(event.category, event.scheduled_at, now_);
    }
    event.action();
    ++dispatched_;
    ++fired;
  }
  if (queue_.empty() && std::isfinite(until)) {
    now_ = until;
  }
  return fired;
}

std::size_t Simulator::run_bounded(double until, std::size_t max_events) {
  util::require(until >= now_, "run_bounded target precedes current time");
  stop_requested_ = false;
  std::size_t fired = 0;
  while (!queue_.empty() && !stop_requested_ &&
         (max_events == 0 || fired < max_events)) {
    if (queue_.next_time() > until) {
      now_ = until;
      return fired;
    }
    EventQueue::Fired event = queue_.pop();
    now_ = event.time;
    if (kernel_sink_ != nullptr) {
      kernel_sink_->on_fired(event.category, event.scheduled_at, now_);
    }
    event.action();
    ++dispatched_;
    ++fired;
  }
  // Unlike run_until, an emptied queue leaves the clock at the last event: a
  // bounded drain ends at quiescence, not at the cap, so a watchdog-enabled
  // run that drains cleanly matches an unbounded run() exactly.
  return fired;
}

}  // namespace anyqos::des
