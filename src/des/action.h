// detlint: hot-path
//
// Fixed-capacity, move-only callable for the event hot path.
//
// Every scheduled event used to be a std::function<void()>: type-erased,
// copyable, and heap-allocating for any capture past the implementation's
// small-buffer limit (typically 16 bytes — almost every model closure here
// captures more). At ~1.5M events/s that allocation and the double
// indirection are pure kernel overhead, and the determinism contract
// (DESIGN.md §12, rule 5) bans std::function from hot-path files outright.
//
// des::Action replaces it with a flat inline buffer and two function
// pointers. Invariants:
//   * storage is always inline — no allocation, ever; a callable that does
//     not fit is a compile error at the schedule site (box the capture),
//   * move-only, so captures may own move-only resources (unique_ptr),
//   * trivially relocatable from the kernel's point of view: moving an
//     Action moves the wrapped callable via its manager function.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace anyqos::des {

/// A move-only `void()` callable with guaranteed inline storage.
class Action {
 public:
  /// Inline capture budget, bytes. Two cache lines total for the whole
  /// Action (capacity + invoke/manage pointers). The largest model closure
  /// today captures an ActiveFlow by value (~100 bytes); anything bigger
  /// should box its state rather than grow every queued event.
  static constexpr std::size_t kCapacity = 112;

  Action() = default;

  /// Wraps any callable invocable as `void()`. Participates only for
  /// non-Action types so it never hijacks the move constructor.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cv_t<std::remove_reference_t<F>>, Action> &&
                std::is_invocable_r_v<void, std::remove_reference_t<F>&>>>
  Action(F&& callable) {  // NOLINT(bugprone-forwarding-reference-overload)
    using Fn = std::remove_cv_t<std::remove_reference_t<F>>;
    static_assert(sizeof(Fn) <= kCapacity,
                  "callable capture exceeds des::Action inline storage; "
                  "box the large state (e.g. capture a std::unique_ptr)");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "callable is over-aligned for des::Action inline storage");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "des::Action relocates callables under noexcept moves");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(callable));
    invoke_ = [](void* storage) { (*static_cast<Fn*>(storage))(); };
    manage_ = [](void* dst, void* src) {
      if (dst != nullptr) {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      }
      static_cast<Fn*>(src)->~Fn();
    };
  }

  Action(Action&& other) noexcept { steal(other); }

  Action& operator=(Action&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  Action(const Action&) = delete;
  Action& operator=(const Action&) = delete;

  ~Action() { reset(); }

  /// True when a callable is held.
  explicit operator bool() const { return invoke_ != nullptr; }

  /// Invokes the wrapped callable; requires a callable to be held.
  void operator()() { invoke_(static_cast<void*>(storage_)); }

 private:
  using Invoke = void (*)(void*);
  /// Relocates the callable from `src` into `dst` (move-construct) and
  /// destroys the source; with dst == nullptr it only destroys.
  using Manage = void (*)(void* dst, void* src);

  void reset() {
    if (manage_ != nullptr) {
      manage_(nullptr, static_cast<void*>(storage_));
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  void steal(Action& other) {
    if (other.manage_ != nullptr) {
      other.manage_(static_cast<void*>(storage_), static_cast<void*>(other.storage_));
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kCapacity];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace anyqos::des
