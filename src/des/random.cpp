#include "src/des/random.h"

#include "src/util/require.h"

namespace anyqos::des {

double RandomStream::uniform01() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double RandomStream::uniform(double lo, double hi) {
  util::require(hi > lo, "uniform range must be non-empty");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::size_t RandomStream::uniform_index(std::size_t n) {
  util::require(n > 0, "uniform_index requires a non-empty range");
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

double RandomStream::exponential(double mean) {
  util::require(mean > 0.0, "exponential mean must be positive");
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

bool RandomStream::bernoulli(double p) {
  util::require(p >= 0.0 && p <= 1.0, "bernoulli probability must be in [0,1]");
  return uniform01() < p;
}

std::size_t RandomStream::weighted_index(std::span<const double> weights) {
  util::require(!weights.empty(), "weighted_index requires at least one weight");
  double total = 0.0;
  for (const double w : weights) {
    util::require(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  util::require(total > 0.0, "weighted_index requires a positive total weight");
  const double target = uniform01() * total;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) {
      return i;
    }
  }
  // Floating-point rounding can leave target marginally above the final
  // cumulative sum; attribute that mass to the last positive weight.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) {
      return i - 1;
    }
  }
  util::unreachable("weighted_index: positive total with no positive weight");
}

namespace {

// SplitMix64 finalizer; excellent avalanche, used for seed derivation only.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t SeedSequence::derive(std::string_view name) const {
  std::uint64_t h = mix64(master_seed_ ^ 0xA5A5A5A55A5A5A5AULL);
  for (const char c : name) {
    h = mix64(h ^ static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  return h;
}

RandomStream SeedSequence::stream(std::string_view name) const {
  return RandomStream(derive(name));
}

}  // namespace anyqos::des
