// detlint: hot-path
// Interned category tag for scheduled events.
//
// Every schedule call can carry a small tag naming the class of the event
// (arrival, holding timer, soft-state refresh, breaker cooldown, ...). The
// tag is a plain 16-bit id: the Simulator instance owns the name table
// (Simulator::category interns names in first-use order, which model wiring
// fixes deterministically), so passing a category costs one register and
// nothing reads it unless a KernelSink is attached. Id 0 is the reserved
// "uncategorized" bucket every untagged schedule call lands in.
#pragma once

#include <cstdint>

namespace anyqos::des {

/// Instance-local interned identifier for an event class. Obtain via
/// Simulator::category(name); only meaningful to the simulator (and any
/// attached KernelSink) that interned it.
struct EventCategory {
  std::uint16_t id = 0;

  [[nodiscard]] bool uncategorized() const { return id == 0; }
};

}  // namespace anyqos::des
