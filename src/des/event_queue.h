// detlint: hot-path
// Pending-event set for the discrete-event simulator.
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/des/action.h"

namespace anyqos::des {

/// Opaque handle identifying a scheduled event, usable for cancellation.
struct EventHandle {
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const { return id != 0; }
};

/// Min-heap of timestamped callbacks with deterministic FIFO tie-breaking:
/// two events at the same time fire in the order they were scheduled.
/// Cancellation is lazy (tombstoned) so it stays O(log n) amortized.
class EventQueue {
 public:
  /// Scheduled callbacks are des::Action — inline storage, move-only, no
  /// type-erased std::function on the hot path (DESIGN.md §12, rule 5).
  using Action = des::Action;

  /// Schedules `action` at absolute time `time`; returns a cancellation handle.
  EventHandle schedule(double time, Action action);

  /// Cancels a pending event. Returns false when the event already fired,
  /// was already cancelled, or the handle is invalid.
  bool cancel(EventHandle handle);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }
  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_; }
  /// Timestamp of the earliest live event; requires !empty().
  [[nodiscard]] double next_time() const;

  /// Removes and returns the earliest live event; requires !empty().
  struct Fired {
    double time;
    std::uint64_t id;
    Action action;
  };
  Fired pop();

 private:
  struct Entry {
    double time;
    std::uint64_t sequence;
    std::uint64_t id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.sequence > b.sequence;
    }
  };

  /// Pops heap entries whose action was cancelled until the top is live.
  void drop_cancelled() const;

  // Actions live in `pending_` keyed by event id; the heap stores plain
  // (time, sequence, id) entries, so cancelling is just erasing from the map
  // and the heap entry becomes a tombstone skipped by drop_cancelled().
  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<std::uint64_t, Action> pending_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_sequence_ = 0;
  std::size_t live_ = 0;
};

}  // namespace anyqos::des
