// detlint: hot-path
// Pending-event set for the discrete-event simulator.
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/des/action.h"
#include "src/des/category.h"

namespace anyqos::des {

/// Opaque handle identifying a scheduled event, usable for cancellation.
struct EventHandle {
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const { return id != 0; }
};

/// Min-heap of timestamped callbacks with deterministic FIFO tie-breaking:
/// two events at the same time fire in the order they were scheduled.
/// Cancellation is lazy (tombstoned) so it stays O(log n) amortized.
class EventQueue {
 public:
  /// Scheduled callbacks are des::Action — inline storage, move-only, no
  /// type-erased std::function on the hot path (DESIGN.md §12, rule 5).
  using Action = des::Action;

  /// Schedules `action` at absolute time `time`; returns a cancellation
  /// handle. `category` and `scheduled_at` (the caller's clock at schedule
  /// time) ride along with the stored entry and come back out through
  /// Fired / the telemetry cancel overload — the queue itself never reads
  /// them, so kernel telemetry needs no shadow bookkeeping of its own.
  EventHandle schedule(double time, Action action, EventCategory category = {},
                       double scheduled_at = 0.0);

  /// Cancels a pending event. Returns false when the event already fired,
  /// was already cancelled, or the handle is invalid.
  bool cancel(EventHandle handle);
  /// Cancel variant reporting the cancelled event's category (set only on
  /// success) — what the simulator feeds an attached kernel sink.
  bool cancel(EventHandle handle, EventCategory& category);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }
  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_; }
  /// Timestamp of the earliest live event; requires !empty().
  [[nodiscard]] double next_time() const;

  /// Removes and returns the earliest live event; requires !empty().
  struct Fired {
    double time;
    std::uint64_t id;
    Action action;
    EventCategory category;
    double scheduled_at;
  };
  Fired pop();

  /// Cumulative count of tombstoned (already-cancelled) heap entries skipped
  /// by drop_cancelled() — the garbage the lazy-cancellation scheme trades
  /// for O(log n) cancel. Monotone over the queue's lifetime.
  [[nodiscard]] std::uint64_t tombstones_popped() const { return tombstones_popped_; }
  /// Raw heap entries, live plus not-yet-collected tombstones. The excess
  /// over size() is the current tombstone backlog.
  [[nodiscard]] std::size_t heap_entries() const { return heap_.size(); }

 private:
  struct Entry {
    double time;
    std::uint64_t sequence;
    std::uint64_t id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.sequence > b.sequence;
    }
  };

  /// Pops heap entries whose action was cancelled until the top is live.
  void drop_cancelled() const;

  struct Stored {
    Action action;
    EventCategory category;
    double scheduled_at;
  };

  // Stored events live in `pending_` keyed by event id; the heap stores
  // plain (time, sequence, id) entries, so cancelling is just erasing from
  // the map and the heap entry becomes a tombstone skipped by
  // drop_cancelled().
  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<std::uint64_t, Stored> pending_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_sequence_ = 0;
  std::size_t live_ = 0;
  mutable std::uint64_t tombstones_popped_ = 0;
};

}  // namespace anyqos::des
