// Random number infrastructure for reproducible simulation.
//
// The paper's experiments ran on Mesquite CSIM; we replace it with our own
// engine (see DESIGN.md). Every stochastic component draws from a named
// RandomStream derived deterministically from a master seed, so that runs are
// reproducible and changing one component's consumption pattern does not
// perturb the others (common random numbers across compared systems).
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <string>
#include <string_view>

namespace anyqos::des {

/// A self-contained mt19937_64 stream with convenience draws.
class RandomStream {
 public:
  explicit RandomStream(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform01();
  /// Uniform double in [lo, hi); requires hi > lo.
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n); requires n > 0.
  std::size_t uniform_index(std::size_t n);
  /// Exponential with the given mean; requires mean > 0.
  double exponential(double mean);
  /// Bernoulli trial with probability p of true; requires p in [0,1].
  bool bernoulli(double p);

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(std::span<const double> weights);

  /// Access to the raw engine for std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Derives independent named streams from one master seed.
///
/// The derivation hashes (seed, name) with SplitMix64-style mixing, so streams
/// are stable across runs and uncorrelated for distinct names.
class SeedSequence {
 public:
  explicit SeedSequence(std::uint64_t master_seed) : master_seed_(master_seed) {}

  /// Deterministic sub-seed for `name`.
  [[nodiscard]] std::uint64_t derive(std::string_view name) const;
  /// A fresh stream seeded with derive(name).
  [[nodiscard]] RandomStream stream(std::string_view name) const;

  [[nodiscard]] std::uint64_t master_seed() const { return master_seed_; }

 private:
  std::uint64_t master_seed_;
};

}  // namespace anyqos::des
