// Runtime invariant auditor for the admission pipeline.
//
// The paper states invariants the code maintains only implicitly; the
// auditor makes them machine-checked at runtime:
//
//   * Ledger conservation — per directed link, 0 <= reserved <= capacity,
//     and the ledger's totals match an independently maintained shadow
//     account of every reserve/release it observed (drift detection).
//   * Ledger pairing — every release() matches a prior reserve() with the
//     same (path, amount); a double release is caught even when other
//     flows' reservations mask it from the ledger's own bounds checks.
//   * Weight normalization — every active selector's weight vector
//     satisfies constraint (1): |sum W_i - 1| < epsilon (eqs. (2), (4)-(12)).
//   * Retrial disjointness — within one request, no destination is tried
//     twice and the attempt count c never exceeds the retry budget R
//     (Section 4.5) or the group size K.
//   * Soft-state expiry consistency — every live RSVP session has missed
//     fewer refreshes than its expiry budget and still holds its bandwidth
//     in the ledger.
//
// Violations are appended to a structured ViolationLog and (by default)
// escalated through util::InvariantError so a corrupted simulation stops at
// the first inconsistency instead of producing plausible-but-wrong results.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/audit/violation.h"
#include "src/des/category.h"
#include "src/core/admission.h"
#include "src/net/bandwidth.h"
#include "src/signaling/soft_state.h"

namespace anyqos::sim {
class Simulation;
}  // namespace anyqos::sim

namespace anyqos::audit {

/// Tuning knobs for the auditor.
struct AuditorOptions {
  /// Tolerance for |sum W_i - 1| in the weight-normalization check.
  double weight_epsilon = 1e-6;
  /// Relative tolerance for bandwidth comparisons (floating-point slack on
  /// ledger sums); absolute slack is `bandwidth_epsilon * (capacity + 1)`.
  double bandwidth_epsilon = 1e-6;
  /// Escalate every violation as util::InvariantError (after logging it).
  bool throw_on_violation = true;
  /// Period of the self-rescheduling checkpoint event attach() installs;
  /// <= 0 disables periodic checkpoints (call checkpoint() manually).
  double checkpoint_interval_s = 100.0;
};

/// Attachable invariant auditor. One instance audits one ledger (and
/// optionally one simulation plus any number of soft-state managers).
class InvariantAuditor final : public net::LedgerObserver, public core::AdmissionObserver {
 public:
  explicit InvariantAuditor(AuditorOptions options = {});
  ~InvariantAuditor() override;

  InvariantAuditor(const InvariantAuditor&) = delete;
  InvariantAuditor& operator=(const InvariantAuditor&) = delete;

  /// Starts shadow-accounting `ledger` (registers this as its observer).
  /// The ledger must be idle (nothing reserved) or the shadow would start
  /// out of sync. `ledger` must outlive the auditor or the auditor detaches
  /// itself on destruction first.
  void watch_ledger(net::BandwidthLedger& ledger);

  /// Adds `manager`'s sessions to the checkpoint checks. The manager must
  /// share the watched ledger for the bandwidth-backing check to hold.
  void watch_soft_state(const signaling::SoftStateManager& manager);

  /// Full wiring for a simulation: shadows its ledger, observes every
  /// AC-router's DAC loop, and (when checkpoint_interval_s > 0) installs a
  /// periodic checkpoint event on the simulation's kernel. Call before
  /// Simulation::run(). The auditor must outlive the run; it detaches on
  /// destruction.
  void attach(sim::Simulation& simulation);

  /// Runs every enabled check now; returns the number of violations this
  /// pass found (0 when clean). With throw_on_violation the first finding
  /// throws util::InvariantError instead of returning.
  std::size_t checkpoint(double sim_time);

  /// Everything found so far (never cleared by the auditor itself).
  [[nodiscard]] const ViolationLog& log() const { return log_; }

  /// Registers a callback fired for every violation, after it is logged and
  /// *before* any throw_on_violation escalation — the hook observes the
  /// failure even when the run is about to abort. Used to trigger the
  /// flight recorder so a violation dumps its causal snapshot. nullptr
  /// detaches; the hook must not mutate the audited simulation.
  void set_violation_hook(std::function<void(const Violation&)> hook) {
    violation_hook_ = std::move(hook);
  }

  /// Reserve/release pairs currently open in the shadow account.
  [[nodiscard]] std::size_t open_reservations() const;

  // --- net::LedgerObserver ---
  void on_reserve(const net::Path& path, net::Bandwidth amount) override;
  void on_release(const net::Path& path, net::Bandwidth amount) override;
  void on_reservation_narrowed(const net::Path& from, const net::Path& to,
                               net::Bandwidth amount) override;
  void on_link_failed(net::LinkId id) override;
  void on_link_restored(net::LinkId id) override;

  // --- core::AdmissionObserver ---
  void on_request_begin(net::NodeId source) override;
  void on_attempt(net::NodeId source, std::size_t member_index) override;
  void on_decision(net::NodeId source, const core::AdmissionDecision& decision,
                   std::size_t max_attempts, std::size_t group_size) override;

 private:
  /// (path links, amount) identifying one reservation for pairing purposes.
  struct ReservationKey {
    std::vector<net::LinkId> links;
    net::Bandwidth amount = 0.0;
    bool operator<(const ReservationKey& other) const;
  };

  void report(AuditCheck check, std::string detail);
  [[nodiscard]] double now() const;
  void schedule_checkpoint();
  void check_ledger(double sim_time);
  void check_weights(double sim_time);
  void check_soft_state(double sim_time);
  /// Violations found since `before`, for checkpoint()'s return value.
  std::size_t violations_since(std::size_t before) const { return log_.size() - before; }

  AuditorOptions options_;
  ViolationLog log_;
  std::function<void(const Violation&)> violation_hook_;

  net::BandwidthLedger* ledger_ = nullptr;
  std::vector<net::Bandwidth> shadow_reserved_;         // per directed link
  std::map<ReservationKey, std::size_t> open_;          // reserve/release pairing

  sim::Simulation* simulation_ = nullptr;
  des::EventCategory category_;  // "audit.checkpoint" kernel tag
  std::vector<const signaling::SoftStateManager*> soft_state_;

  // Per-source tried-set of the request currently inside the DAC loop.
  std::unordered_map<net::NodeId, std::unordered_set<std::size_t>> in_flight_;
};

}  // namespace anyqos::audit
