// Structured invariant-violation records (the audit subsystem's output).
//
// Every check the InvariantAuditor performs is named by an AuditCheck; a
// failed check produces one Violation carrying the simulated time and a
// human-readable detail line. The log is the machine-checkable artifact:
// tests assert on counts per check, tools print to_text().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace anyqos::audit {

/// Which paper invariant a violation record refers to.
enum class AuditCheck : std::uint8_t {
  kLedgerConservation,   // per-link 0 <= reserved <= capacity, shadow match
  kLedgerPairing,        // every release matches a prior reserve
  kWeightNormalization,  // constraint (1): |sum W_i - 1| < epsilon
  kRetrialDisjointness,  // no destination tried twice per request, c <= R
  kSoftStateExpiry,      // soft-state sessions consistent with their ledger
};

std::string to_string(AuditCheck check);

/// One detected invariant violation.
struct Violation {
  AuditCheck check = AuditCheck::kLedgerConservation;
  double sim_time = 0.0;   ///< simulator clock when detected (0 outside a sim)
  std::string detail;      ///< human-readable description of the failure
};

/// Append-only collection of violations with per-check tallies.
class ViolationLog {
 public:
  void add(Violation violation);

  [[nodiscard]] bool empty() const { return violations_.empty(); }
  [[nodiscard]] std::size_t size() const { return violations_.size(); }
  [[nodiscard]] const std::vector<Violation>& entries() const { return violations_; }
  /// Violations recorded against one specific check.
  [[nodiscard]] std::size_t count(AuditCheck check) const;

  /// One line per violation: "t=<time> <check>: <detail>".
  [[nodiscard]] std::string to_text() const;

  void clear() { violations_.clear(); }

 private:
  std::vector<Violation> violations_;
};

}  // namespace anyqos::audit
