#include "src/audit/chaos_oracle.h"

#include <memory>
#include <sstream>
#include <utility>

#include "src/audit/auditor.h"
#include "src/control/governor.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/span.h"
#include "src/util/require.h"

namespace anyqos::audit {
namespace {

/// The hop-count mirror reconciles exactly only when nothing but the
/// resilient protocol charges the MessageCounter: zero warmup (the counter
/// resets at the boundary but the mirror does not), ED selection (WD/D+B
/// probes share the counter), and the resilient plane present at all.
bool reconciliation_checkable(const sim::Scenario& scenario) {
  return scenario.warmup_s == 0.0 && scenario.algorithm == "ED" &&
         scenario.resilience.has_value();
}

}  // namespace

ChaosOracleOutcome run_chaos_oracle(const sim::Scenario& scenario,
                                    const ChaosOracleOptions& options) {
  ChaosOracleOutcome outcome;

  // Phase 1: lower the scenario onto the simulation API. Failures here are
  // the scenario's fault (bad member index, unknown knob, fault on a
  // missing link), not the model's — classified separately so the shrinker
  // can never "minimize" a model bug into a validation error.
  std::unique_ptr<sim::ScenarioRun> run;
  std::unique_ptr<sim::Simulation> simulation;
  obs::DecisionTracer tracer;
  std::ostringstream flight_buffer;
  obs::FlightRecorderOptions flight_options;
  flight_options.depth = options.flight_depth;
  obs::FlightRecorder recorder(flight_options);
  recorder.set_output(&flight_buffer);
  tracer.set_sink(&recorder.span_sink());
  AuditorOptions audit_options;
  audit_options.throw_on_violation = true;
  audit_options.checkpoint_interval_s = options.checkpoint_interval_s;
  InvariantAuditor auditor(audit_options);
  try {
    run = sim::make_scenario_run(scenario);
    run->config.defeat_duplex_idempotency = options.defeat_duplex_idempotency;
    if (run->config.drain_to_quiescence) {
      if (run->config.drain_max_events == 0) {
        run->config.drain_max_events = options.fallback_drain_max_events;
      }
      if (run->config.drain_max_sim_s == 0.0) {
        run->config.drain_max_sim_s = options.fallback_drain_max_sim_s;
      }
    }
    run->config.trace = options.trace;
    run->config.tracer = &tracer;
    run->config.flight_recorder = &recorder;
    simulation = std::make_unique<sim::Simulation>(run->topology, run->config);
    auditor.attach(*simulation);
  } catch (const std::exception& error) {
    outcome.violation_class = std::string("invalid:") + error.what();
    outcome.detail = "scenario rejected before run";
    return outcome;
  }
  auditor.set_violation_hook([&recorder](const Violation& violation) {
    recorder.trigger(violation.sim_time, "audit " + to_string(violation.check));
  });

  // Phase 2: run under the throwing auditor. An InvariantError with a
  // non-empty audit log is an audit violation; anything else the model
  // threw is its own class (the ledger's preconditions, most notably).
  try {
    outcome.result = simulation->run();
    outcome.ran = true;
  } catch (const std::exception& error) {
    outcome.audit_log = auditor.log().to_text();
    if (!auditor.log().empty()) {
      outcome.violation_class =
          "audit:" + to_string(auditor.log().entries().back().check);
    } else {
      outcome.violation_class = std::string("exception:") + error.what();
    }
    outcome.detail = error.what();
    outcome.flight_dump = flight_buffer.str();
    return outcome;
  }

  // Phase 3: post-run gates, most severe first. The flight dump (if any
  // trigger fired mid-run) rides along either way.
  outcome.flight_dump = flight_buffer.str();
  const sim::DrainWatchdogReport& watchdog = simulation->drain_watchdog();
  if (watchdog.tripped) {
    outcome.violation_class = "hang:" + watchdog.reason;
    std::ostringstream detail;
    detail << "drain watchdog tripped at t=" << watchdog.sim_time_s << " with "
           << watchdog.pending_events << " pending events, " << watchdog.active_flows
           << " active flows after " << watchdog.drained_events << " drained events";
    outcome.detail = detail.str();
    return outcome;
  }
  if (run->config.drain_to_quiescence) {
    auto leak = [&outcome](const char* kind, std::uint64_t amount) {
      outcome.violation_class = std::string("leak:") + kind;
      outcome.detail = std::string(kind) + " survived the drain (" +
                       std::to_string(amount) + ")";
    };
    auto* resilient = simulation->resilient();
    if (simulation->ledger().total_reserved() > 0.0) {
      leak("reserved", static_cast<std::uint64_t>(simulation->ledger().total_reserved()));
      return outcome;
    }
    if (simulation->active_flows() > 0) {
      leak("flows", simulation->active_flows());
      return outcome;
    }
    if (resilient != nullptr && resilient->pending_orphans() > 0) {
      leak("orphans", resilient->pending_orphans());
      return outcome;
    }
    if (simulation->pending_repairs() > 0) {
      leak("repairs", simulation->pending_repairs());
      return outcome;
    }
  }
  if (reconciliation_checkable(scenario) &&
      outcome.result.resilience.hops_counted != outcome.result.messages.total()) {
    outcome.violation_class = "unreconciled";
    outcome.detail = "hop mirror " + std::to_string(outcome.result.resilience.hops_counted) +
                     " != message counter " +
                     std::to_string(outcome.result.messages.total());
    return outcome;
  }
  if (run->governor != nullptr && run->governor->open_breakers() > 0) {
    outcome.violation_class = "breaker-open";
    outcome.detail = std::to_string(run->governor->open_breakers()) +
                     " breakers still Open after the drain";
    return outcome;
  }
  return outcome;
}

}  // namespace anyqos::audit
