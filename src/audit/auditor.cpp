#include "src/audit/auditor.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "src/sim/simulation.h"
#include "src/util/require.h"
#include "src/util/strings.h"

namespace anyqos::audit {

namespace {

std::string describe_path(const net::Path& path, net::Bandwidth amount) {
  std::string text = "path ";
  text += std::to_string(path.source);
  text += "->";
  text += std::to_string(path.destination);
  text += " (";
  text += std::to_string(path.hops());
  text += " hops, ";
  text += util::format_fixed(amount, 0);
  text += " bps)";
  return text;
}

}  // namespace

bool InvariantAuditor::ReservationKey::operator<(const ReservationKey& other) const {
  if (amount != other.amount) {
    return amount < other.amount;
  }
  return links < other.links;
}

InvariantAuditor::InvariantAuditor(AuditorOptions options) : options_(options) {
  util::require(options_.weight_epsilon > 0.0, "weight epsilon must be positive");
  util::require(options_.bandwidth_epsilon > 0.0, "bandwidth epsilon must be positive");
}

InvariantAuditor::~InvariantAuditor() {
  if (ledger_ != nullptr && ledger_->observer() == this) {
    ledger_->set_observer(nullptr);
  }
  if (simulation_ != nullptr) {
    simulation_->set_admission_observer(nullptr);
  }
}

void InvariantAuditor::watch_ledger(net::BandwidthLedger& ledger) {
  util::require(ledger_ == nullptr, "auditor already watches a ledger");
  util::require(ledger.total_reserved() == 0.0,
                "auditor must attach to an idle ledger (shadow starts empty)");
  ledger_ = &ledger;
  shadow_reserved_.assign(ledger.link_count(), 0.0);
  ledger.set_observer(this);
}

void InvariantAuditor::watch_soft_state(const signaling::SoftStateManager& manager) {
  soft_state_.push_back(&manager);
}

void InvariantAuditor::attach(sim::Simulation& simulation) {
  util::require(simulation_ == nullptr, "auditor already attached to a simulation");
  simulation_ = &simulation;
  category_ = simulation.simulator().category("audit.checkpoint");
  watch_ledger(simulation.ledger());
  simulation.set_admission_observer(this);
  if (options_.checkpoint_interval_s > 0.0) {
    schedule_checkpoint();
  }
}

void InvariantAuditor::schedule_checkpoint() {
  // Self-rescheduling like SoftStateManager's refresh timer: one pending
  // event at all times, so run_until() leaves it parked past the horizon.
  simulation_->simulator().schedule_in(options_.checkpoint_interval_s, category_, [this] {
    checkpoint(now());
    // A draining run (drain_to_quiescence) ends when the calendar empties;
    // parking another checkpoint would keep it spinning forever. The final
    // checkpoint above still audits the drain in progress.
    if (!simulation_->draining()) {
      schedule_checkpoint();
    }
  });
}

double InvariantAuditor::now() const {
  return simulation_ != nullptr ? simulation_->simulator().now() : 0.0;
}

void InvariantAuditor::report(AuditCheck check, std::string detail) {
  Violation violation;
  violation.check = check;
  violation.sim_time = now();
  violation.detail = std::move(detail);
  log_.add(violation);
  if (violation_hook_ != nullptr) {
    violation_hook_(log_.entries().back());
  }
  if (options_.throw_on_violation) {
    const Violation& recorded = log_.entries().back();
    throw util::InvariantError("invariant audit [" + to_string(recorded.check) +
                               "] at t=" + util::format_fixed(recorded.sim_time, 3) + ": " +
                               recorded.detail);
  }
}

std::size_t InvariantAuditor::open_reservations() const {
  std::size_t total = 0;
  for (const auto& [key, count] : open_) {
    total += count;
  }
  return total;
}

// --- LedgerObserver ---------------------------------------------------------

void InvariantAuditor::on_reserve(const net::Path& path, net::Bandwidth amount) {
  for (const net::LinkId id : path.links) {
    shadow_reserved_[id] += amount;
  }
  ++open_[ReservationKey{path.links, amount}];
}

void InvariantAuditor::on_release(const net::Path& path, net::Bandwidth amount) {
  const auto it = open_.find(ReservationKey{path.links, amount});
  if (it == open_.end() || it->second == 0) {
    report(AuditCheck::kLedgerPairing,
           "release with no matching open reservation (double release?) on " +
               describe_path(path, amount));
    return;  // only reached with throw_on_violation off; skip shadow update
  }
  if (--it->second == 0) {
    open_.erase(it);
  }
  for (const net::LinkId id : path.links) {
    shadow_reserved_[id] -= amount;
    if (shadow_reserved_[id] < 0.0) {
      shadow_reserved_[id] = 0.0;  // floating-point slack only; drift is
    }                              // caught by the checkpoint comparison
  }
}

void InvariantAuditor::on_reservation_narrowed(const net::Path& from, const net::Path& to,
                                               net::Bandwidth amount) {
  // A narrow re-keys one open reservation from `from` to `to` and returns
  // `amount` on the dropped links. Pairing must match the *original* key —
  // narrowing a reservation that was never opened is the same defect class
  // as a double release.
  const auto it = open_.find(ReservationKey{from.links, amount});
  if (it == open_.end() || it->second == 0) {
    report(AuditCheck::kLedgerPairing,
           "narrow with no matching open reservation on " + describe_path(from, amount));
    return;  // only reached with throw_on_violation off; skip shadow update
  }
  if (--it->second == 0) {
    open_.erase(it);
  }
  if (!to.links.empty()) {
    ++open_[ReservationKey{to.links, amount}];
  }
  // Shadow: the dropped links (multiset difference from \ to) give back
  // `amount`; the kept links are untouched.
  std::vector<net::LinkId> keep = to.links;
  for (const net::LinkId id : from.links) {
    const auto kept = std::find(keep.begin(), keep.end(), id);
    if (kept != keep.end()) {
      keep.erase(kept);
      continue;
    }
    shadow_reserved_[id] -= amount;
    if (shadow_reserved_[id] < 0.0) {
      shadow_reserved_[id] = 0.0;  // floating-point slack only
    }
  }
}

void InvariantAuditor::on_link_failed(net::LinkId id) {
  const double slack = options_.bandwidth_epsilon * (ledger_->capacity(id) + 1.0);
  if (shadow_reserved_[id] > slack) {
    report(AuditCheck::kLedgerConservation,
           "link " + std::to_string(id) + " failed while the shadow account holds " +
               util::format_fixed(shadow_reserved_[id], 0) + " bps reserved");
  }
}

void InvariantAuditor::on_link_restored(net::LinkId id) {
  shadow_reserved_[id] = 0.0;  // a restored link comes back fully idle
}

// --- AdmissionObserver ------------------------------------------------------

void InvariantAuditor::on_request_begin(net::NodeId source) { in_flight_[source].clear(); }

void InvariantAuditor::on_attempt(net::NodeId source, std::size_t member_index) {
  const auto [it, inserted] = in_flight_[source].insert(member_index);
  (void)it;
  if (!inserted) {
    report(AuditCheck::kRetrialDisjointness,
           "AC-router " + std::to_string(source) + " retried member " +
               std::to_string(member_index) + " within one request");
  }
}

void InvariantAuditor::on_decision(net::NodeId source, const core::AdmissionDecision& decision,
                                   std::size_t max_attempts, std::size_t group_size) {
  if (decision.attempts > max_attempts) {
    report(AuditCheck::kRetrialDisjointness,
           "AC-router " + std::to_string(source) + " made " +
               std::to_string(decision.attempts) + " attempts, exceeding R=" +
               std::to_string(max_attempts));
  }
  if (decision.attempts > group_size) {
    report(AuditCheck::kRetrialDisjointness,
           "AC-router " + std::to_string(source) + " made " +
               std::to_string(decision.attempts) + " attempts against only K=" +
               std::to_string(group_size) + " members");
  }
  in_flight_.erase(source);
}

// --- checkpoint checks ------------------------------------------------------

std::size_t InvariantAuditor::checkpoint(double sim_time) {
  const std::size_t before = log_.size();
  if (ledger_ != nullptr) {
    check_ledger(sim_time);
  }
  if (simulation_ != nullptr) {
    check_weights(sim_time);
  }
  check_soft_state(sim_time);
  return violations_since(before);
}

void InvariantAuditor::check_ledger(double sim_time) {
  (void)sim_time;
  for (net::LinkId id = 0; id < ledger_->link_count(); ++id) {
    const net::Bandwidth capacity = ledger_->capacity(id);
    const net::Bandwidth reserved = ledger_->reserved(id);
    const double slack = options_.bandwidth_epsilon * (capacity + 1.0);
    if (reserved < -slack || reserved > capacity + slack) {
      report(AuditCheck::kLedgerConservation,
             "link " + std::to_string(id) + " reserved " + util::format_fixed(reserved, 0) +
                 " bps outside [0, " + util::format_fixed(capacity, 0) + "]");
    }
    // On failed links capacity is 0 and reserved reads 0 - available = 0.
    if (std::abs(shadow_reserved_[id] - reserved) > slack + options_.bandwidth_epsilon *
                                                                (shadow_reserved_[id] + 1.0)) {
      report(AuditCheck::kLedgerConservation,
             "link " + std::to_string(id) + " ledger reserved " +
                 util::format_fixed(reserved, 0) + " bps but observed reserve/release " +
                 "traffic accounts for " + util::format_fixed(shadow_reserved_[id], 0) +
                 " bps (drift)");
    }
  }
}

void InvariantAuditor::check_weights(double sim_time) {
  (void)sim_time;
  for (const auto& [source, selector] : simulation_->active_selectors()) {
    const std::vector<double> weights = selector->weights();
    if (weights.empty()) {
      continue;
    }
    double sum = 0.0;
    double minimum = weights.front();
    for (const double w : weights) {
      sum += w;
      minimum = std::min(minimum, w);
    }
    if (minimum < 0.0) {
      report(AuditCheck::kWeightNormalization,
             "AC-router " + std::to_string(source) + " selector " + selector->name() +
                 " has a negative weight " + util::format_fixed(minimum, 9));
      continue;
    }
    if (std::abs(sum - 1.0) >= options_.weight_epsilon) {
      report(AuditCheck::kWeightNormalization,
             "AC-router " + std::to_string(source) + " selector " + selector->name() +
                 " weights sum to " + util::format_fixed(sum, 9) +
                 ", violating constraint (1)");
    }
  }
}

void InvariantAuditor::check_soft_state(double sim_time) {
  (void)sim_time;
  for (const signaling::SoftStateManager* manager : soft_state_) {
    const std::size_t lifetime = manager->options().lifetime_refreshes;
    manager->for_each_session([&](const signaling::SoftStateManager::SessionView& session) {
      if (session.missed >= lifetime) {
        report(AuditCheck::kSoftStateExpiry,
               "session " + std::to_string(session.id) + " missed " +
                   std::to_string(session.missed) + " refreshes but outlived K=" +
                   std::to_string(lifetime));
      }
      if (session.bandwidth <= 0.0) {
        report(AuditCheck::kSoftStateExpiry,
               "session " + std::to_string(session.id) + " holds non-positive bandwidth");
      }
      if (ledger_ != nullptr) {
        for (const net::LinkId id : session.route->links) {
          const double slack = options_.bandwidth_epsilon * (ledger_->capacity(id) + 1.0);
          if (ledger_->reserved(id) + slack < session.bandwidth) {
            report(AuditCheck::kSoftStateExpiry,
                   "session " + std::to_string(session.id) + " claims " +
                       util::format_fixed(session.bandwidth, 0) + " bps on link " +
                       std::to_string(id) + " but the ledger holds only " +
                       util::format_fixed(ledger_->reserved(id), 0) + " bps reserved");
          }
        }
      }
    });
  }
}

}  // namespace anyqos::audit
