#include "src/audit/violation.h"

#include <algorithm>

#include "src/util/require.h"
#include "src/util/strings.h"

namespace anyqos::audit {

std::string to_string(AuditCheck check) {
  switch (check) {
    case AuditCheck::kLedgerConservation:
      return "ledger-conservation";
    case AuditCheck::kLedgerPairing:
      return "ledger-pairing";
    case AuditCheck::kWeightNormalization:
      return "weight-normalization";
    case AuditCheck::kRetrialDisjointness:
      return "retrial-disjointness";
    case AuditCheck::kSoftStateExpiry:
      return "soft-state-expiry";
  }
  util::unreachable("AuditCheck");
}

void ViolationLog::add(Violation violation) { violations_.push_back(std::move(violation)); }

std::size_t ViolationLog::count(AuditCheck check) const {
  return static_cast<std::size_t>(
      std::count_if(violations_.begin(), violations_.end(),
                    [check](const Violation& v) { return v.check == check; }));
}

std::string ViolationLog::to_text() const {
  std::string text;
  for (const Violation& violation : violations_) {
    text += "t=" + util::format_fixed(violation.sim_time, 3) + ' ' +
            to_string(violation.check) + ": " + violation.detail + '\n';
  }
  return text;
}

}  // namespace anyqos::audit
