// The chaos oracle: run one Scenario through every correctness gate the
// repo has and return a single classified verdict.
//
// chaossim's per-cell verdict logic and tools/chaosfuzz need the exact same
// judgement — "did this fault schedule break anything, and what class of
// breakage was it?" — so it lives here, once. The oracle runs the scenario
// under a throwing InvariantAuditor with a flight recorder armed, then
// applies the post-drain gates in a fixed severity order:
//
//   invalid:<what>      scenario failed validation/construction (not a bug)
//   audit:<check>       an invariant auditor check fired
//   exception:<what>    the model threw outside the auditor (e.g. ledger
//                       preconditions — the planted-bug class)
//   hang:<reason>       the drain watchdog tripped (no quiescence)
//   leak:<kind>         reserved bandwidth / flows / orphans / repairs
//                       survived a clean drain
//   unreconciled        hop mirror != MessageCounter (exact-count runs only)
//   breaker-open        a circuit breaker survived the drain Open
//
// The class string is the shrinker's preservation target: a shrunk scenario
// reproduces the original failure only if its class matches exactly.
#pragma once

#include <string>

#include "src/sim/scenario.h"
#include "src/sim/simulation.h"
#include "src/sim/trace.h"

namespace anyqos::audit {

struct ChaosOracleOptions {
  /// Auditor checkpoint period (simulated seconds).
  double checkpoint_interval_s = 50.0;
  /// Flight-recorder ring depth for the violation dump.
  std::size_t flight_depth = 256;
  /// Watchdog fallbacks applied when the scenario itself sets no cap — the
  /// oracle never runs an unbounded drain (unattended fuzzing must not
  /// hang). 0 disables the fallback.
  std::size_t fallback_drain_max_events = 10'000'000;
  double fallback_drain_max_sim_s = 10'000.0;
  /// TEST ONLY: forwarded to SimulationConfig::defeat_duplex_idempotency
  /// (the chaosfuzz planted-bug gate).
  bool defeat_duplex_idempotency = false;
  /// Optional flow-event observer (e.g. a CsvTraceSink so a failing run
  /// leaves a flowlens-able artifact). Must outlive the call.
  sim::TraceSink* trace = nullptr;
};

/// One classified run. `violation_class` empty = clean.
struct ChaosOracleOutcome {
  std::string violation_class;
  std::string detail;          ///< human diagnostic (counts, messages)
  bool ran = false;            ///< run() returned (false for invalid:/audit:/exception:)
  sim::SimulationResult result;  ///< valid when `ran`
  std::string flight_dump;     ///< buffered flight JSONL ("" when nothing dumped)
  std::string audit_log;       ///< auditor findings text ("" when clean)

  [[nodiscard]] bool clean() const { return violation_class.empty(); }
};

/// Runs `scenario` to completion under the full oracle stack. Deterministic:
/// equal scenarios produce byte-equal outcomes.
ChaosOracleOutcome run_chaos_oracle(const sim::Scenario& scenario,
                                    const ChaosOracleOptions& options = {});

}  // namespace anyqos::audit
