// anyqos — umbrella header.
//
// Distributed Admission Control for anycast flows with QoS requirements
// (Xuan & Jia, ICDCS 2001), implemented as a C++20 library. Include this
// to get the whole public API; production users typically include the
// individual module headers instead.
//
// Layer map (each namespace is independently usable):
//
//   anyqos::util       contracts, CLI flags, table printing
//   anyqos::stats      accumulators, confidence intervals, quantiles
//   anyqos::des        discrete-event kernel + reproducible RNG streams
//   anyqos::net        topology, bandwidth ledger, routing (+DV/LS protocols)
//   anyqos::obs        metrics registry, decision spans, engine profiler
//   anyqos::sched      WFQ / Virtual Clock packet schedulers
//   anyqos::signaling  RSVP-like reservation, probes, soft state
//   anyqos::core       the DAC procedure, selectors, baselines, QoS mapping
//   anyqos::sim        flow-level simulation, metrics, faults, experiments
//   anyqos::analysis   Erlang fixed point, UAA, AP analysis, capacity
//   anyqos::audit      runtime invariant auditing (ledger, weights, retrials)
//
// Start with examples/quickstart.cpp for the canonical wiring.
#pragma once

#include "src/analysis/ap_analysis.h"
#include "src/analysis/capacity.h"
#include "src/analysis/erlang.h"
#include "src/analysis/fixed_point.h"
#include "src/analysis/retry_extension.h"
#include "src/analysis/uaa.h"
#include "src/analysis/wdb_meanfield.h"
#include "src/audit/auditor.h"
#include "src/audit/violation.h"
#include "src/core/admission.h"
#include "src/core/centralized.h"
#include "src/core/delay_admission.h"
#include "src/core/group.h"
#include "src/core/history.h"
#include "src/core/multipath_admission.h"
#include "src/core/qos.h"
#include "src/core/retrial.h"
#include "src/core/selector.h"
#include "src/core/selectors.h"
#include "src/core/weights.h"
#include "src/des/event_queue.h"
#include "src/des/random.h"
#include "src/des/simulator.h"
#include "src/net/bandwidth.h"
#include "src/net/distance_vector.h"
#include "src/net/graph.h"
#include "src/net/link_state.h"
#include "src/net/metrics.h"
#include "src/net/multipath.h"
#include "src/net/reconvergence.h"
#include "src/net/routing.h"
#include "src/net/topologies.h"
#include "src/net/topology.h"
#include "src/net/topology_io.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/profiler.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/obs/timeline.h"
#include "src/sched/token_bucket.h"
#include "src/sched/wfq.h"
#include "src/signaling/message.h"
#include "src/signaling/path_repair.h"
#include "src/signaling/probe.h"
#include "src/signaling/rsvp.h"
#include "src/signaling/soft_state.h"
#include "src/sim/experiment.h"
#include "src/sim/faults.h"
#include "src/sim/flow_table.h"
#include "src/sim/metrics.h"
#include "src/sim/metrics_export.h"
#include "src/sim/multi_group.h"
#include "src/sim/replicate.h"
#include "src/sim/simulation.h"
#include "src/sim/timeseries.h"
#include "src/sim/trace.h"
#include "src/sim/traffic.h"
#include "src/stats/accumulator.h"
#include "src/stats/confidence.h"
#include "src/stats/fairness.h"
#include "src/stats/histogram.h"
#include "src/stats/quantile.h"
#include "src/stats/time_weighted.h"
#include "src/util/cli.h"
#include "src/util/require.h"
#include "src/util/strings.h"
#include "src/util/table.h"
