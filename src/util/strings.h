// Small string helpers used by CLI parsing and report formatting.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace anyqos::util {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Parses a decimal double; returns nullopt on any trailing garbage.
std::optional<double> parse_double(std::string_view text);

/// Parses a decimal non-negative integer; returns nullopt on any trailing
/// garbage or a minus sign.
std::optional<unsigned long long> parse_unsigned(std::string_view text);

/// True when `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// True when `text` ends with `suffix`.
bool ends_with(std::string_view text, std::string_view suffix);

/// Formats `value` with `digits` digits after the decimal point.
std::string format_fixed(double value, int digits);

/// Escapes `text` for embedding inside a JSON string literal: backslash,
/// double quote, and control characters (\b \f \n \r \t, \u00XX otherwise).
std::string json_escape(std::string_view text);

}  // namespace anyqos::util
