#include "src/util/cli.h"

#include <sstream>

#include "src/util/require.h"
#include "src/util/strings.h"

namespace anyqos::util {

CliFlags::CliFlags(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliFlags::declare(std::string name, Flag flag) {
  require(!name.empty(), "flag name must not be empty");
  const auto [it, inserted] = flags_.emplace(std::move(name), std::move(flag));
  require(inserted, "duplicate flag declaration: " + it->first);
}

void CliFlags::add_double(std::string name, double default_value, std::string help) {
  Flag flag;
  flag.kind = Kind::kDouble;
  flag.help = std::move(help);
  flag.as_double = default_value;
  declare(std::move(name), std::move(flag));
}

void CliFlags::add_probability(std::string name, double default_value, std::string help) {
  require(default_value >= 0.0 && default_value <= 1.0,
          "default for probability flag --" + name + " must be in [0,1]");
  Flag flag;
  flag.kind = Kind::kDouble;
  flag.help = std::move(help);
  flag.as_double = default_value;
  flag.min_value = 0.0;
  flag.max_value = 1.0;
  flag.value_desc = "a probability in [0,1]";
  declare(std::move(name), std::move(flag));
}

void CliFlags::add_duration(std::string name, double default_value, std::string help) {
  require(default_value >= 0.0,
          "default for duration flag --" + name + " must be non-negative");
  Flag flag;
  flag.kind = Kind::kDouble;
  flag.help = std::move(help);
  flag.as_double = default_value;
  flag.min_value = 0.0;
  flag.value_desc = "a non-negative duration in seconds";
  declare(std::move(name), std::move(flag));
}

void CliFlags::add_unsigned(std::string name, unsigned long long default_value, std::string help) {
  Flag flag;
  flag.kind = Kind::kUnsigned;
  flag.help = std::move(help);
  flag.as_unsigned = default_value;
  declare(std::move(name), std::move(flag));
}

void CliFlags::add_string(std::string name, std::string default_value, std::string help) {
  Flag flag;
  flag.kind = Kind::kString;
  flag.help = std::move(help);
  flag.as_string = std::move(default_value);
  declare(std::move(name), std::move(flag));
}

void CliFlags::add_bool(std::string name, bool default_value, std::string help) {
  Flag flag;
  flag.kind = Kind::kBool;
  flag.help = std::move(help);
  flag.as_bool = default_value;
  declare(std::move(name), std::move(flag));
}

void CliFlags::assign(const std::string& name, std::string_view value) {
  const auto it = flags_.find(name);
  require(it != flags_.end(), "unknown flag: --" + name);
  Flag& flag = it->second;
  switch (flag.kind) {
    case Kind::kDouble: {
      const std::string expects =
          flag.value_desc.empty() ? std::string("a number") : flag.value_desc;
      const auto parsed = parse_double(value);
      require(parsed.has_value(),
              "flag --" + name + " expects " + expects + ", got '" + std::string(value) + "'");
      require(!flag.min_value.has_value() || *parsed >= *flag.min_value,
              "flag --" + name + " expects " + expects + ", got " + std::string(value));
      require(!flag.max_value.has_value() || *parsed <= *flag.max_value,
              "flag --" + name + " expects " + expects + ", got " + std::string(value));
      flag.as_double = *parsed;
      return;
    }
    case Kind::kUnsigned: {
      const auto parsed = parse_unsigned(value);
      require(parsed.has_value(),
              "flag --" + name + " expects a non-negative integer, got '" + std::string(value) + "'");
      flag.as_unsigned = *parsed;
      return;
    }
    case Kind::kString:
      flag.as_string = std::string(value);
      return;
    case Kind::kBool:
      if (value == "true" || value == "1") {
        flag.as_bool = true;
      } else if (value == "false" || value == "0") {
        flag.as_bool = false;
      } else {
        require(false, "flag --" + name + " expects true/false, got '" + std::string(value) + "'");
      }
      return;
  }
  unreachable("CliFlags::assign kind");
}

void CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    require(starts_with(arg, "--"), "arguments must be --flag[=value], got '" + std::string(arg) + "'");
    arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      assign(std::string(arg.substr(0, eq)), arg.substr(eq + 1));
      continue;
    }
    const std::string name(arg);
    const auto it = flags_.find(name);
    require(it != flags_.end(), "unknown flag: --" + name);
    if (it->second.kind == Kind::kBool) {
      it->second.as_bool = true;
      continue;
    }
    require(i + 1 < argc, "flag --" + name + " requires a value");
    assign(name, argv[++i]);
  }
}

std::string CliFlags::help_text() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name;
    switch (flag.kind) {
      case Kind::kDouble:
        out << " (double";
        if (flag.min_value.has_value() && flag.max_value.has_value()) {
          out << " in [" << *flag.min_value << "," << *flag.max_value << "]";
        } else if (flag.min_value.has_value()) {
          out << " >= " << *flag.min_value;
        }
        out << ", default " << flag.as_double << ")";
        break;
      case Kind::kUnsigned:
        out << " (uint, default " << flag.as_unsigned << ")";
        break;
      case Kind::kString:
        out << " (string, default '" << flag.as_string << "')";
        break;
      case Kind::kBool:
        out << " (bool, default " << (flag.as_bool ? "true" : "false") << ")";
        break;
    }
    out << "\n      " << flag.help << "\n";
  }
  return out.str();
}

const CliFlags::Flag& CliFlags::find(std::string_view name, Kind kind) const {
  const auto it = flags_.find(name);
  require(it != flags_.end(), "flag was never declared: " + std::string(name));
  require(it->second.kind == kind, "flag accessed with wrong type: " + std::string(name));
  return it->second;
}

double CliFlags::get_double(std::string_view name) const { return find(name, Kind::kDouble).as_double; }

unsigned long long CliFlags::get_unsigned(std::string_view name) const {
  return find(name, Kind::kUnsigned).as_unsigned;
}

const std::string& CliFlags::get_string(std::string_view name) const {
  return find(name, Kind::kString).as_string;
}

bool CliFlags::get_bool(std::string_view name) const { return find(name, Kind::kBool).as_bool; }

}  // namespace anyqos::util
