// In-tree annotations consumed by tools/detlint (see DESIGN.md §12).
//
// The determinism contract over src/ is machine-enforced: detlint scans the
// tree and fails CI on any unsuppressed finding. Real exceptions exist — the
// wall-clock engine profiler is the canonical one — and they are documented
// where they live with ANYQOS_DETLINT_ALLOW(rule, "reason"). The macro
// compiles away to a compile-time check that the reason is non-empty, so a
// suppression can never silently lose its justification.
//
// Usage (same line as the finding, or the line directly above it):
//
//   ANYQOS_DETLINT_ALLOW(wall_clock, "profiler reports real throughput");
//   attach_wall_ = std::chrono::steady_clock::now();
//
// Rule identifiers (underscored forms of the detlint rule ids):
//   global_state                  mutable global / function-static state
//   rng_ownership                 RNG engine constructed outside des/random
//   wall_clock                    host clock read in simulation code
//   unordered_artifact_iteration  unordered-container iteration on an
//                                 artifact-writing path
//   hot_path_std_function         std::function in a hot-path file
//
// detlint reports unknown rule ids and unused suppressions as findings of
// their own, so stale ALLOWs cannot accumulate.
#pragma once

// The rule identifier is consumed by detlint, not by the compiler; the
// static_assert only pins the reason to a non-empty string literal.
#define ANYQOS_DETLINT_ALLOW(rule, reason) \
  static_assert((reason)[0] != '\0', "detlint suppression requires a reason")
