#include "src/util/require.h"

namespace anyqos::util {

void require(bool condition, std::string_view message) {
  if (!condition) {
    throw std::invalid_argument(std::string(message));
  }
}

void ensure(bool condition, std::string_view message) {
  if (!condition) {
    throw InvariantError(std::string(message));
  }
}

void unreachable(std::string_view message) {
  throw InvariantError("unreachable: " + std::string(message));
}

}  // namespace anyqos::util
