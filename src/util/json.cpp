#include "src/util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdint>
#include <stdexcept>

#include "src/util/require.h"
#include "src/util/strings.h"

namespace anyqos::util {
namespace {

// Parse recursion cap: scenario documents nest a handful of levels; anything
// deeper is an adversarial input, not a scenario.
constexpr int kMaxDepth = 64;

[[noreturn]] void fail_at(std::size_t offset, const std::string& what) {
  throw std::invalid_argument("json: " + what + " at byte " +
                              std::to_string(offset));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail_at(pos_, "trailing garbage after document");
    }
    return value;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail_at(pos_, "unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail_at(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) {
      fail_at(pos_, "nesting too deep");
    }
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return JsonValue::string(parse_string());
      case 't':
        if (consume_literal("true")) {
          return JsonValue::boolean(true);
        }
        fail_at(pos_, "invalid literal");
      case 'f':
        if (consume_literal("false")) {
          return JsonValue::boolean(false);
        }
        fail_at(pos_, "invalid literal");
      case 'n':
        if (consume_literal("null")) {
          return JsonValue::null();
        }
        fail_at(pos_, "invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue value = JsonValue::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      if (value.find(key) != nullptr) {
        fail_at(pos_, "duplicate object key \"" + key + "\"");
      }
      skip_whitespace();
      expect(':');
      value.as_object().emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return value;
      }
      fail_at(pos_, "expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue value = JsonValue::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return value;
      }
      fail_at(pos_, "expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail_at(pos_, "unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail_at(pos_ - 1, "raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        fail_at(pos_, "unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u':
          append_utf8(out, parse_hex4());
          break;
        default:
          fail_at(pos_ - 1, "invalid escape");
      }
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) {
        fail_at(pos_, "unterminated \\u escape");
      }
      const char c = text_[pos_++];
      value <<= 4U;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail_at(pos_ - 1, "invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    // BMP only; surrogate pairs are not needed for scenario content, and an
    // unpaired surrogate is rejected rather than silently mangled.
    if (cp >= 0xD800 && cp <= 0xDFFF) {
      throw std::invalid_argument("json: surrogate \\u escapes unsupported");
    }
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0U | (cp >> 6U)));
      out.push_back(static_cast<char>(0x80U | (cp & 0x3FU)));
    } else {
      out.push_back(static_cast<char>(0xE0U | (cp >> 12U)));
      out.push_back(static_cast<char>(0x80U | ((cp >> 6U) & 0x3FU)));
      out.push_back(static_cast<char>(0x80U | (cp & 0x3FU)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    auto eat_digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      return pos_ > before;
    };
    if (!eat_digits()) {
      fail_at(pos_, "invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!eat_digits()) {
        fail_at(pos_, "digits required after decimal point");
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!eat_digits()) {
        fail_at(pos_, "digits required in exponent");
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    const auto parsed = parse_double(token);
    if (!parsed.has_value() || !std::isfinite(*parsed)) {
      fail_at(start, "unrepresentable number");
    }
    return JsonValue::number(*parsed);
  }
};

}  // namespace

JsonValue JsonValue::null() { return JsonValue{}; }

JsonValue JsonValue::boolean(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::number(double value) {
  require(std::isfinite(value), "json numbers must be finite");
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  require(is_bool(), "json value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  require(is_number(), "json value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  require(is_string(), "json value is not a string");
  return string_;
}

const JsonArray& JsonValue::as_array() const {
  require(is_array(), "json value is not an array");
  return array_;
}

JsonArray& JsonValue::as_array() {
  require(is_array(), "json value is not an array");
  return array_;
}

const JsonMembers& JsonValue::as_object() const {
  require(is_object(), "json value is not an object");
  return members_;
}

JsonMembers& JsonValue::as_object() {
  require(is_object(), "json value is not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  require(is_object(), "json value is not an object");
  for (const auto& [name, value] : members_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) {
    throw std::invalid_argument("json: missing key \"" + std::string(key) +
                                "\"");
  }
  return *value;
}

void JsonValue::set(std::string_view key, JsonValue value) {
  require(is_object(), "json value is not an object");
  for (auto& [name, existing] : members_) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
}

void JsonValue::push_back(JsonValue value) {
  require(is_array(), "json value is not an array");
  array_.push_back(std::move(value));
}

std::string json_number(double value) {
  // Same convention as the ops log (control/directive.cpp): integral values
  // render as integers so "2" survives a round-trip as "2", everything else
  // uses %.17g which round-trips IEEE doubles exactly.
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void JsonValue::write(std::string& out, bool pretty, int indent) const {
  auto newline = [&](int level) {
    if (pretty) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(level) * 2, ' ');
    }
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      out += json_number(number_);
      return;
    case Kind::kString:
      out.push_back('"');
      out += json_escape(string_);
      out.push_back('"');
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      bool first = true;
      for (const JsonValue& element : array_) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        newline(indent + 1);
        element.write(out, pretty, indent + 1);
      }
      newline(indent);
      out.push_back(']');
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [name, value] : members_) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        newline(indent + 1);
        out.push_back('"');
        out += json_escape(name);
        out += pretty ? "\": " : "\":";
        value.write(out, pretty, indent + 1);
      }
      newline(indent);
      out.push_back('}');
      return;
    }
  }
  unreachable("corrupt json kind");
}

std::string JsonValue::dump(bool pretty) const {
  std::string out;
  write(out, pretty, 0);
  if (pretty) {
    out.push_back('\n');
  }
  return out;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace anyqos::util
