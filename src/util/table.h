// Plain-text and CSV table rendering for benchmark/report output.
//
// Benches print results in the same row/column layout as the paper's tables
// and figure series; TablePrinter keeps the formatting in one place.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace anyqos::util {

/// Accumulates rows of string cells and renders them either as an aligned
/// monospace table (for the console) or as CSV (for plotting).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience for mixed numeric rows: values are formatted with
  /// `digits` decimal places.
  void add_numeric_row(const std::vector<double>& row, int digits);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const { return header_.size(); }

  /// Renders an aligned table with a header separator line.
  [[nodiscard]] std::string to_text() const;
  /// Renders RFC-4180-ish CSV (fields containing comma/quote are quoted).
  [[nodiscard]] std::string to_csv() const;

  /// Writes to_text() to `out`.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace anyqos::util
