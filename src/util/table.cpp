#include "src/util/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "src/util/require.h"
#include "src/util/strings.h"

namespace anyqos::util {

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string escaped = "\"";
  for (const char c : field) {
    if (c == '"') {
      escaped += "\"\"";
    } else {
      escaped += c;
    }
  }
  escaped += '"';
  return escaped;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "table header must have at least one column");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(), "table row width must match header width");
  rows_.push_back(std::move(row));
}

void TablePrinter::add_numeric_row(const std::vector<double>& row, int digits) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (const double value : row) {
    cells.push_back(format_fixed(value, digits));
  }
  add_row(std::move(cells));
}

std::string TablePrinter::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (const std::size_t w : widths) {
    total += w;
  }
  total += 2 * (widths.size() - 1);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string TablePrinter::to_csv() const {
  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        out << ',';
      }
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

void TablePrinter::print(std::ostream& out) const { out << to_text(); }

}  // namespace anyqos::util
