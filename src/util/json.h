// Minimal deterministic JSON value model: parse, build, serialize.
//
// Built for the scenario plane (sim/scenario.h): a scenario file must
// round-trip byte-identically through save -> load -> save, so objects
// preserve insertion order (a sorted or hashed map would either reorder
// user files or trip the determinism contract's unordered-iteration rule).
// Numbers render with the same convention as the ops log
// (control/directive.cpp): integral values via integer formatting,
// everything else via "%.17g", which round-trips IEEE doubles exactly.
//
// This is not a general-purpose JSON library: no comments, no trailing
// commas, UTF-8 passthrough (\uXXXX escapes are emitted for control
// characters only and parsed for the BMP), parse depth capped to keep
// adversarial fuzz inputs from overflowing the stack.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace anyqos::util {

class JsonValue;

/// Insertion-ordered object representation; lookup is linear, which is fine
/// for the tens-of-keys documents this library exists for.
using JsonMembers = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue null();
  static JsonValue boolean(bool value);
  static JsonValue number(double value);
  static JsonValue string(std::string value);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::invalid_argument on a kind mismatch so the
  /// scenario loader surfaces schema errors with context instead of UB.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  JsonArray& as_array();
  const JsonMembers& as_object() const;
  JsonMembers& as_object();

  /// Object helpers. `find` returns nullptr when absent; `at` throws.
  const JsonValue* find(std::string_view key) const;
  const JsonValue& at(std::string_view key) const;
  /// Appends (or overwrites, preserving position) a member.
  void set(std::string_view key, JsonValue value);
  /// Appends an array element.
  void push_back(JsonValue value);

  /// Serializes compactly (no whitespace) or pretty-printed with two-space
  /// indentation; both are deterministic for a given value.
  std::string dump(bool pretty = false) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonMembers members_;

  void write(std::string& out, bool pretty, int indent) const;
};

/// Formats a double the way the ops log does: integer rendering when the
/// value is integral and fits, "%.17g" otherwise (exact double round-trip).
std::string json_number(double value);

/// Parses a complete JSON document. Throws std::invalid_argument with a
/// byte-offset diagnostic on malformed input or trailing garbage.
JsonValue parse_json(std::string_view text);

}  // namespace anyqos::util
