#include "src/util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace anyqos::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::optional<double> parse_double(std::string_view text) {
  text = trim(text);
  if (text.empty()) {
    return std::nullopt;
  }
  double value = 0.0;
  const char* const first = text.data();
  const char* const last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) {
    return std::nullopt;
  }
  return value;
}

std::optional<unsigned long long> parse_unsigned(std::string_view text) {
  text = trim(text);
  if (text.empty() || text.front() == '-' || text.front() == '+') {
    return std::nullopt;
  }
  unsigned long long value = 0;
  const char* const first = text.data();
  const char* const last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) {
    return std::nullopt;
  }
  return value;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string format_fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return std::string(buffer);
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

}  // namespace anyqos::util
