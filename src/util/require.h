// Precondition / invariant checking helpers.
//
// The library uses exceptions for contract violations so that misuse of the
// public API is reported loudly instead of corrupting simulation state.
// `require` is for caller-supplied preconditions (throws std::invalid_argument),
// `ensure` is for internal invariants (throws std::logic_error).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace anyqos::util {

/// Exception thrown when an internal invariant is violated. Catching this
/// (other than at a top-level error boundary) is almost always a bug.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Throws std::invalid_argument with `message` when `condition` is false.
/// Use for validating caller-supplied arguments at public API boundaries.
void require(bool condition, std::string_view message);

/// Throws InvariantError with `message` when `condition` is false.
/// Use for internal consistency checks.
void ensure(bool condition, std::string_view message);

/// Unconditionally reports an unreachable code path.
[[noreturn]] void unreachable(std::string_view message);

}  // namespace anyqos::util
