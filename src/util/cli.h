// Minimal command-line flag parser for example and benchmark binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` forms. Flags
// are declared up front with defaults and help text; `parse` validates that
// every argument matches a declared flag so typos fail fast instead of being
// silently ignored.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace anyqos::util {

/// Declarative command-line flag set.
///
/// Usage:
///   CliFlags flags("fig6_comparison", "Regenerates Figure 6");
///   flags.add_double("lambda-max", 50.0, "largest arrival rate swept");
///   flags.parse(argc, argv);           // throws std::invalid_argument on bad input
///   double m = flags.get_double("lambda-max");
class CliFlags {
 public:
  CliFlags(std::string program, std::string description);

  /// Declares a double-valued flag. Name must be unique across all types.
  void add_double(std::string name, double default_value, std::string help);
  /// Declares a probability flag: a double constrained to [0, 1]. Values
  /// outside the range are rejected at parse time with a clear error.
  /// Read it back with get_double.
  void add_probability(std::string name, double default_value, std::string help);
  /// Declares a duration flag (seconds): a double constrained to be
  /// non-negative. Negative values are rejected at parse time with a clear
  /// error. Read it back with get_double.
  void add_duration(std::string name, double default_value, std::string help);
  /// Declares an unsigned-integer-valued flag.
  void add_unsigned(std::string name, unsigned long long default_value, std::string help);
  /// Declares a string-valued flag.
  void add_string(std::string name, std::string default_value, std::string help);
  /// Declares a boolean flag (present => true, or --name=false).
  void add_bool(std::string name, bool default_value, std::string help);

  /// Parses argv. Throws std::invalid_argument on unknown flags or
  /// malformed values. Recognizes --help and sets help_requested().
  void parse(int argc, const char* const* argv);

  [[nodiscard]] bool help_requested() const { return help_requested_; }
  /// The program name given at construction (e.g. for perf-record labels).
  [[nodiscard]] const std::string& program() const { return program_; }
  /// Renders the flag table for --help output.
  [[nodiscard]] std::string help_text() const;

  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] unsigned long long get_unsigned(std::string_view name) const;
  [[nodiscard]] const std::string& get_string(std::string_view name) const;
  [[nodiscard]] bool get_bool(std::string_view name) const;

 private:
  enum class Kind { kDouble, kUnsigned, kString, kBool };
  struct Flag {
    Kind kind;
    std::string help;
    double as_double = 0.0;
    unsigned long long as_unsigned = 0;
    std::string as_string;
    bool as_bool = false;
    /// Inclusive range constraint for kDouble flags (probability/duration).
    std::optional<double> min_value;
    std::optional<double> max_value;
    /// What the flag expects, for error messages ("a probability in [0,1]").
    std::string value_desc;
  };

  void declare(std::string name, Flag flag);
  [[nodiscard]] const Flag& find(std::string_view name, Kind kind) const;
  void assign(const std::string& name, std::string_view value);

  std::string program_;
  std::string description_;
  std::map<std::string, Flag, std::less<>> flags_;
  bool help_requested_ = false;
};

}  // namespace anyqos::util
