// Distributed route computation: link-state protocol simulation.
//
// The OSPF-flavoured counterpart to DistanceVectorProtocol: every router
// originates link-state advertisements (LSAs) for its attached links,
// flooding propagates them one hop per synchronous round, and each router
// runs shortest-path-first over its own link-state database (LSDB). After
// flooding completes, every router's view equals the real topology and the
// computed routes coincide with the centrally computed ones — asserted by
// tests. Link failures bump the LSA sequence number and re-flood, so
// reconvergence takes O(diameter) rounds instead of distance-vector's
// slower count-down.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/net/routing.h"
#include "src/net/topology.h"

namespace anyqos::net {

/// One router's knowledge of one duplex link.
struct LinkStateRecord {
  std::uint32_t sequence = 0;  ///< 0 = never heard of the link
  bool up = false;
};

/// Simulates synchronous LSA flooding plus per-router SPF.
class LinkStateProtocol {
 public:
  /// `topology` must outlive the protocol. Routers start knowing only their
  /// own attached links.
  explicit LinkStateProtocol(const Topology& topology);

  /// One synchronous flooding round: every router forwards the freshest LSAs
  /// it holds to its neighbours. Returns true when any LSDB changed.
  bool step();

  /// Floods until a fixed point (or `max_rounds`); returns rounds executed.
  std::size_t converge(std::size_t max_rounds = 1'000);
  [[nodiscard]] bool converged() const { return converged_; }

  /// True when `router`'s LSDB holds the current LSA of every duplex link.
  [[nodiscard]] bool database_complete(NodeId router) const;

  /// Hop-count shortest path computed on `router`'s own LSDB (SPF). Returns
  /// nullopt when the destination is unreachable in that view. With complete
  /// databases the result equals net::shortest_path on the real topology.
  [[nodiscard]] std::optional<Path> spf_path(NodeId router, NodeId destination) const;

  /// Takes a duplex link down: both endpoints originate a higher-sequence
  /// "down" LSA. converge() propagates it.
  void fail_duplex_link(LinkId link);

  /// Brings a failed duplex link back with a fresh "up" LSA.
  void restore_duplex_link(LinkId link);

  /// The record `router` holds for the duplex link containing `link`.
  [[nodiscard]] const LinkStateRecord& record(NodeId router, LinkId link) const;

 private:
  /// Duplex index of a directed link (links come in forward/backward pairs).
  [[nodiscard]] std::size_t duplex_index(LinkId link) const { return link / 2; }
  LinkStateRecord& record_mut(NodeId router, std::size_t duplex);
  void originate(LinkId link, bool up);

  const Topology* topology_;
  std::size_t duplex_count_;
  std::vector<LinkStateRecord> lsdb_;  // router-major [router][duplex link]
  std::vector<std::uint32_t> current_sequence_;  // per duplex link
  std::vector<char> link_up_;                    // ground truth per duplex link
  bool converged_ = false;
};

}  // namespace anyqos::net
