#include "src/net/graph.h"

#include <algorithm>
#include <queue>

#include "src/util/require.h"

namespace anyqos::net {

Graph::Graph(std::size_t node_count) : out_(node_count), in_(node_count) {}

NodeId Graph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

LinkId Graph::add_arc(NodeId from, NodeId to) {
  check_node(from);
  check_node(to);
  util::require(from != to, "self-loop arcs are not allowed");
  const auto id = static_cast<LinkId>(arcs_.size());
  arcs_.push_back(Arc{from, to});
  out_[from].push_back(id);
  in_[to].push_back(id);
  return id;
}

const Arc& Graph::arc(LinkId id) const {
  util::require(id < arcs_.size(), "arc id out of range");
  return arcs_[id];
}

std::span<const LinkId> Graph::out_arcs(NodeId node) const {
  check_node(node);
  return out_[node];
}

std::span<const LinkId> Graph::in_arcs(NodeId node) const {
  check_node(node);
  return in_[node];
}

LinkId Graph::find_arc(NodeId from, NodeId to) const {
  check_node(from);
  check_node(to);
  for (const LinkId id : out_[from]) {
    if (arcs_[id].to == to) {
      return id;
    }
  }
  return kInvalidLink;
}

bool Graph::strongly_connected() const {
  if (node_count() <= 1) {
    return true;
  }
  const auto reaches_all = [this](bool forward) {
    std::vector<char> seen(node_count(), 0);
    std::queue<NodeId> frontier;
    frontier.push(0);
    seen[0] = 1;
    std::size_t visited = 1;
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      const auto& adjacency = forward ? out_[u] : in_[u];
      for (const LinkId id : adjacency) {
        const NodeId v = forward ? arcs_[id].to : arcs_[id].from;
        if (seen[v] == 0) {
          seen[v] = 1;
          ++visited;
          frontier.push(v);
        }
      }
    }
    return visited == node_count();
  };
  return reaches_all(true) && reaches_all(false);
}

void Graph::check_node(NodeId node) const {
  util::require(node < out_.size(), "node id out of range");
}

}  // namespace anyqos::net
