#include "src/net/distance_vector.h"

#include <algorithm>

#include "src/util/require.h"

namespace anyqos::net {

DistanceVectorProtocol::DistanceVectorProtocol(const Topology& topology,
                                               std::size_t max_diameter)
    : topology_(&topology),
      max_diameter_(max_diameter),
      table_(topology.router_count() * topology.router_count()),
      link_down_(topology.link_count(), 0) {
  util::require(max_diameter >= 1, "max diameter must be at least 1");
  // Seed: every router knows itself at distance 0.
  for (NodeId r = 0; r < topology.router_count(); ++r) {
    entry_mut(r, r).distance = 0;
  }
}

RoutingTableEntry& DistanceVectorProtocol::entry_mut(NodeId router, NodeId destination) {
  return table_[router * topology_->router_count() + destination];
}

const RoutingTableEntry& DistanceVectorProtocol::entry(NodeId router,
                                                       NodeId destination) const {
  util::require(router < topology_->router_count(), "router out of range");
  util::require(destination < topology_->router_count(), "destination out of range");
  return table_[router * topology_->router_count() + destination];
}

bool DistanceVectorProtocol::link_usable(LinkId link) const {
  return link_down_[link] == 0;
}

bool DistanceVectorProtocol::step() {
  const std::size_t n = topology_->router_count();
  bool changed = false;
  // Synchronous exchange: relax against the *previous* round's tables so the
  // round semantics match simultaneous advertisements.
  const std::vector<RoutingTableEntry> snapshot = table_;
  const auto snapshot_entry = [&](NodeId router, NodeId destination) -> const RoutingTableEntry& {
    return snapshot[router * n + destination];
  };
  for (NodeId r = 0; r < n; ++r) {
    for (NodeId dest = 0; dest < n; ++dest) {
      if (dest == r) {
        continue;
      }
      // Best offer among neighbours' advertised distances + 1.
      std::size_t best = kUnreachable;
      LinkId best_link = kInvalidLink;
      for (const LinkId out : topology_->graph().out_arcs(r)) {
        if (!link_usable(out)) {
          continue;
        }
        const NodeId neighbour = topology_->link(out).to;
        const std::size_t advertised = snapshot_entry(neighbour, dest).distance;
        if (advertised == kUnreachable) {
          continue;
        }
        const std::size_t via = advertised + 1;
        if (via > max_diameter_) {
          continue;  // infinity metric: beyond the diameter bound is "unreachable"
        }
        // Deterministic tie-break: first (lowest-id) outgoing link wins.
        if (via < best) {
          best = via;
          best_link = out;
        }
      }
      RoutingTableEntry& current = entry_mut(r, dest);
      if (current.distance != best || current.next_hop != best_link) {
        current.distance = best;
        current.next_hop = best_link;
        changed = true;
      }
    }
  }
  converged_ = !changed;
  return changed;
}

std::size_t DistanceVectorProtocol::converge(std::size_t max_rounds) {
  util::require(max_rounds >= 1, "need at least one round");
  for (std::size_t round = 1; round <= max_rounds; ++round) {
    if (!step()) {
      return round;
    }
  }
  return max_rounds;
}

std::optional<Path> DistanceVectorProtocol::path(NodeId source, NodeId destination) const {
  util::require(source < topology_->router_count(), "source out of range");
  util::require(destination < topology_->router_count(), "destination out of range");
  Path path;
  path.source = source;
  path.destination = destination;
  NodeId at = source;
  std::size_t hops = 0;
  while (at != destination) {
    const RoutingTableEntry& e = entry(at, destination);
    if (e.distance == kUnreachable || e.next_hop == kInvalidLink) {
      return std::nullopt;
    }
    path.links.push_back(e.next_hop);
    at = topology_->link(e.next_hop).to;
    if (++hops > max_diameter_) {
      return std::nullopt;  // transient loop in unconverged tables
    }
  }
  return path;
}

void DistanceVectorProtocol::fail_duplex_link(LinkId link) {
  util::require(link < topology_->link_count(), "link out of range");
  const LinkId reverse = topology_->reverse_link(link);
  util::require(link_usable(link) && link_usable(reverse), "link already failed");
  link_down_[link] = 1;
  link_down_[reverse] = 1;
  // Poison: both endpoint routers drop every route that used the dead link,
  // as the loss of keepalives would trigger.
  const std::size_t n = topology_->router_count();
  for (const LinkId dead : {link, reverse}) {
    const NodeId router = topology_->link(dead).from;
    for (NodeId dest = 0; dest < n; ++dest) {
      RoutingTableEntry& e = entry_mut(router, dest);
      if (e.next_hop == dead) {
        e.distance = kUnreachable;
        e.next_hop = kInvalidLink;
      }
    }
  }
  converged_ = false;
}

void DistanceVectorProtocol::restore_duplex_link(LinkId link) {
  util::require(link < topology_->link_count(), "link out of range");
  const LinkId reverse = topology_->reverse_link(link);
  util::require(!link_usable(link) && !link_usable(reverse), "link is not failed");
  link_down_[link] = 0;
  link_down_[reverse] = 0;
  converged_ = false;
}

std::vector<Path> distance_vector_routes(const Topology& topology,
                                         const std::vector<NodeId>& destinations) {
  util::require(!destinations.empty(), "need at least one destination");
  DistanceVectorProtocol protocol(topology);
  protocol.converge();
  util::require(protocol.converged(), "distance-vector protocol failed to converge");
  std::vector<Path> routes;
  routes.reserve(topology.router_count() * destinations.size());
  for (NodeId source = 0; source < topology.router_count(); ++source) {
    for (const NodeId dest : destinations) {
      auto path = protocol.path(source, dest);
      util::require(path.has_value(), "topology is disconnected: no route from " +
                                          std::to_string(source) + " to " +
                                          std::to_string(dest));
      routes.push_back(std::move(*path));
    }
  }
  return routes;
}

}  // namespace anyqos::net
