#include "src/net/topology.h"

#include "src/util/require.h"

namespace anyqos::net {

NodeId Topology::add_router(std::string name) {
  const NodeId id = graph_.add_node();
  names_.push_back(std::move(name));
  return id;
}

std::pair<LinkId, LinkId> Topology::add_duplex_link(NodeId a, NodeId b, Bandwidth capacity_bps) {
  util::require(capacity_bps > 0.0, "link capacity must be positive");
  util::require(graph_.find_arc(a, b) == kInvalidLink, "duplicate duplex link");
  const LinkId forward = graph_.add_arc(a, b);
  const LinkId backward = graph_.add_arc(b, a);
  capacity_.push_back(capacity_bps);
  capacity_.push_back(capacity_bps);
  reverse_.push_back(backward);
  reverse_.push_back(forward);
  return {forward, backward};
}

Bandwidth Topology::capacity(LinkId id) const {
  util::require(id < capacity_.size(), "link id out of range");
  return capacity_[id];
}

std::string Topology::router_name(NodeId id) const {
  util::require(id < names_.size(), "router id out of range");
  if (names_[id].empty()) {
    // Built as append rather than `"r" + to_string(id)`, which trips GCC 12's
    // -Wrestrict false positive (libstdc++ PR 105329) under -Werror.
    std::string name = "r";
    name += std::to_string(id);
    return name;
  }
  return names_[id];
}

std::optional<LinkId> Topology::find_link(NodeId a, NodeId b) const {
  const LinkId id = graph_.find_arc(a, b);
  if (id == kInvalidLink) {
    return std::nullopt;
  }
  return id;
}

LinkId Topology::reverse_link(LinkId id) const {
  util::require(id < reverse_.size(), "link id out of range");
  return reverse_[id];
}

void Topology::validate_path(const Path& path) const {
  util::require(path.source < router_count(), "path source out of range");
  util::require(path.destination < router_count(), "path destination out of range");
  if (path.links.empty()) {
    util::require(path.source == path.destination,
                  "empty path must have source == destination");
    return;
  }
  NodeId at = path.source;
  for (const LinkId id : path.links) {
    const Arc& arc = graph_.arc(id);
    util::require(arc.from == at, "path links are not contiguous");
    at = arc.to;
  }
  util::require(at == path.destination, "path does not end at its destination");
}

}  // namespace anyqos::net
