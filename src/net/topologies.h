// Topology builders: the paper's MCI-like evaluation backbone plus standard
// synthetic families used by tests and ablations.
#pragma once

#include <cstdint>

#include "src/net/topology.h"

namespace anyqos::net::topologies {

/// Default per-direction raw link capacity: 100 Mbit/s (Section 5.1).
inline constexpr Bandwidth kDefaultCapacityBps = 100.0e6;

/// The 19-node, 33-duplex-link backbone used for all paper experiments.
///
/// Figure 2 of the paper shows the MCI ISP backbone but the figure's edge
/// list is not recoverable from the text; this builder encodes a 19-node,
/// 33-link mesh matching the node/link counts of the MCI topology used across
/// that era's QoS-routing literature (see DESIGN.md, "Substitutions").
/// Node ids 0..18; every node is a router with one attached host.
Topology mci_backbone(Bandwidth capacity_bps = kDefaultCapacityBps);

/// n routers in a line: 0-1-2-...-(n-1). n >= 2.
Topology line(std::size_t n, Bandwidth capacity_bps = kDefaultCapacityBps);

/// n routers in a cycle. n >= 3.
Topology ring(std::size_t n, Bandwidth capacity_bps = kDefaultCapacityBps);

/// Hub-and-spoke: router 0 is the hub, 1..n-1 are leaves. n >= 2.
Topology star(std::size_t n, Bandwidth capacity_bps = kDefaultCapacityBps);

/// rows x cols grid with 4-neighbour links. rows, cols >= 1, rows*cols >= 2.
Topology grid(std::size_t rows, std::size_t cols, Bandwidth capacity_bps = kDefaultCapacityBps);

/// Waxman random graph on n nodes placed uniformly in the unit square:
/// P(link u,v) = alpha * exp(-d(u,v) / (beta * sqrt(2))). A spanning tree is
/// added first so the result is always connected. Deterministic in `seed`.
Topology waxman(std::size_t n, double alpha, double beta, std::uint64_t seed,
                Bandwidth capacity_bps = kDefaultCapacityBps);

}  // namespace anyqos::net::topologies
