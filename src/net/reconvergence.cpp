#include "src/net/reconvergence.h"

#include <algorithm>

#include "src/net/routing.h"
#include "src/util/require.h"

namespace anyqos::net {

FixedReconvergence::FixedReconvergence(double delay_s) : delay_s_(delay_s) {
  util::require(delay_s >= 0.0, "reconvergence delay must be non-negative");
}

FloodingReconvergence::FloodingReconvergence(double per_round_s) : per_round_s_(per_round_s) {
  util::require(per_round_s > 0.0, "per-round flooding delay must be positive");
}

double FloodingReconvergence::delay_s(const Topology& topology) const {
  if (cached_diameter_ == 0) {
    cached_diameter_ = topology_diameter(topology);
  }
  return static_cast<double>(cached_diameter_ + 1) * per_round_s_;
}

std::size_t topology_diameter(const Topology& topology) {
  std::size_t diameter = 0;
  for (NodeId s = 0; s < topology.router_count(); ++s) {
    for (const std::size_t d : hop_distances(topology, s)) {
      if (d != kUnreachable) {
        diameter = std::max(diameter, d);
      }
    }
  }
  return diameter;
}

}  // namespace anyqos::net
